package repro_test

import (
	"fmt"
	"sort"

	"repro"
)

// A tiny fixed dataset keeps the example output deterministic.
func exampleObjects() []repro.Object {
	return []repro.Object{
		{ID: 1, MBR: repro.R(0.10, 0.10, 0.12, 0.12), Size: 1000},
		{ID: 2, MBR: repro.R(0.20, 0.20, 0.22, 0.22), Size: 1000},
		{ID: 3, MBR: repro.R(0.80, 0.80, 0.82, 0.82), Size: 1000},
		{ID: 4, MBR: repro.R(0.15, 0.15, 0.17, 0.17), Size: 1000},
	}
}

func ExampleNewClient() {
	srv := repro.NewServer(exampleObjects(), repro.ServerConfig{})
	cl, err := repro.NewClient(srv.Transport(), repro.ClientConfig{CacheBytes: 1 << 20})
	if err != nil {
		fmt.Println(err)
		return
	}

	rep, err := cl.Query(repro.NewKNN(repro.Pt(0.11, 0.11), 2))
	if err != nil {
		fmt.Println(err)
		return
	}
	ids := append([]repro.ObjectID(nil), rep.Results...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Println("nearest two:", ids)

	// The same query again is answered from the proactive cache.
	rep, _ = cl.Query(repro.NewKNN(repro.Pt(0.11, 0.11), 2))
	fmt.Println("second time local:", rep.LocalOnly)
	// Output:
	// nearest two: [1 4]
	// second time local: true
}

func ExampleClient_Query_range() {
	srv := repro.NewServer(exampleObjects(), repro.ServerConfig{})
	cl, _ := repro.NewClient(srv.Transport(), repro.ClientConfig{CacheBytes: 1 << 20})

	rep, _ := cl.Query(repro.NewRange(repro.R(0.0, 0.0, 0.3, 0.3)))
	ids := append([]repro.ObjectID(nil), rep.Results...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Println("in window:", ids)
	// Output:
	// in window: [1 2 4]
}

func ExampleClient_Query_join() {
	srv := repro.NewServer(exampleObjects(), repro.ServerConfig{})
	cl, _ := repro.NewClient(srv.Transport(), repro.ClientConfig{CacheBytes: 1 << 20})

	// Pairs (1,4) and (2,4) lie within 0.05 of each other; 1-2 is farther.
	rep, _ := cl.Query(repro.NewJoin(repro.R(0, 0, 0.5, 0.5), 0.05))
	pairs := make([][2]repro.ObjectID, 0, len(rep.Pairs))
	for _, p := range rep.Pairs {
		a, b := p[0], p[1]
		if b < a {
			a, b = b, a
		}
		pairs = append(pairs, [2]repro.ObjectID{a, b})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
	for _, p := range pairs {
		fmt.Println("close pair:", p[0], p[1])
	}
	// Output:
	// close pair: 1 4
	// close pair: 2 4
}
