package repro

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/wire"
)

// edgeMirror is one client identity driven down both paths: the same
// request sequence goes through the edge tier and directly to the router
// under distinct client ids, and every response must be byte-identical —
// including epochs and invalidation windows — or the edge is detectably a
// cache, not a proxy.
type edgeMirror struct {
	edgeID, directID wire.ClientID
	epochE, epochD   uint64
}

// TestEdgeEquivalence is the edge tier's core correctness gate: a
// randomized interleaving of canonical hot-tile queries, background
// queries, catalogs, taint-inducing baseline requests, and live update
// batches through the edge, with every query response compared byte-for-
// byte against the direct router answer for a mirrored client. It must
// finish with actual cache hits, or it proved nothing.
func TestEdgeEquivalence(t *testing.T) {
	objects := GenerateNE(4_000, 11)
	cs, err := NewClusterServer(objects, ClusterConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	eg, err := cs.Edge(EdgeOptions{AdmitThreshold: 1, Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	direct := cs.Transport()

	// Canonical tile queries: the crowd's repeated questions, concentrated
	// enough that the edge admits and serves them.
	var tiles []Query
	for i := 0; i < 4; i++ {
		c := Pt(0.40+0.05*float64(i), 0.55)
		tiles = append(tiles, NewRange(RectFromCenter(c, 0.03, 0.03)))
		tiles = append(tiles, NewKNN(c, 4+i))
	}

	mirrors := []*edgeMirror{
		{edgeID: 1, directID: 101},
		{edgeID: 2, directID: 102},
		{edgeID: 3, directID: 103},
	}
	var writerEpoch uint64
	rng := rand.New(rand.NewSource(7))

	// compare sends the same request shape down both paths and fails on the
	// first byte of divergence.
	compare := func(step int, m *edgeMirror, build func(id wire.ClientID, epoch uint64) *wire.Request) {
		t.Helper()
		reqE := build(m.edgeID, m.epochE)
		reqD := build(m.directID, m.epochD)
		respE, errE := eg.RoundTrip(reqE)
		respD, errD := direct.RoundTrip(reqD)
		if (errE == nil) != (errD == nil) {
			t.Fatalf("step %d: edge err %v vs direct err %v", step, errE, errD)
		}
		if errE != nil {
			return
		}
		be := wire.EncodeResponse(nil, respE)
		bd := wire.EncodeResponse(nil, respD)
		if !bytes.Equal(be, bd) {
			t.Fatalf("step %d: responses diverge (client %d/%d):\nedge   %+v\ndirect %+v",
				step, m.edgeID, m.directID, respE, respD)
		}
		m.epochE, m.epochD = respE.Epoch, respD.Epoch
		if m.epochE != m.epochD {
			t.Fatalf("step %d: epochs diverged: %d vs %d", step, m.epochE, m.epochD)
		}
		cs.ReleaseResponse(respD)
		cs.ReleaseResponse(respE)
	}

	var inserted uint32
	for step := 0; step < 800; step++ {
		m := mirrors[rng.Intn(len(mirrors))]
		x := rng.Float64()
		switch {
		case x < 0.05:
			// A live update batch through the edge: the invalidation stream
			// both paths ride on advances mid-run.
			inserted++
			obj := Object{
				ID:   ObjectID(1<<22 | inserted),
				MBR:  RectFromCenter(Pt(0.40+rng.Float64()*0.2, 0.50+rng.Float64()*0.1), 0.001, 0.001),
				Size: 64,
			}
			req := &wire.Request{Client: 50, Epoch: writerEpoch}
			req.Updates = []wire.UpdateOp{{Kind: wire.UpdateInsert, Obj: obj.ID, To: obj.MBR, Size: obj.Size}}
			resp, err := eg.RoundTrip(req)
			if err != nil {
				t.Fatalf("step %d: update: %v", step, err)
			}
			if len(resp.UpdateResults) != 1 || !resp.UpdateResults[0] {
				t.Fatalf("step %d: update rejected: %v", step, resp.UpdateResults)
			}
			writerEpoch = resp.Epoch
			cs.ReleaseResponse(resp)
		case x < 0.12:
			compare(step, m, func(id wire.ClientID, epoch uint64) *wire.Request {
				return &wire.Request{Client: id, Epoch: epoch, Catalog: true}
			})
		case x < 0.15:
			// Baseline fields taint the client at the edge; responses must
			// still match exactly (both sides claim the same cached ids).
			q := tiles[rng.Intn(len(tiles))]
			claim := []ObjectID{objects[rng.Intn(len(objects))].ID}
			compare(step, m, func(id wire.ClientID, epoch uint64) *wire.Request {
				return &wire.Request{Client: id, Epoch: epoch, Q: q, CachedIDs: claim}
			})
		case x < 0.85:
			q := tiles[rng.Intn(len(tiles))]
			compare(step, m, func(id wire.ClientID, epoch uint64) *wire.Request {
				return &wire.Request{Client: id, Epoch: epoch, Q: q}
			})
		default:
			q := NewRange(RectFromCenter(Pt(rng.Float64(), rng.Float64()), 0.02, 0.02))
			compare(step, m, func(id wire.ClientID, epoch uint64) *wire.Request {
				return &wire.Request{Client: id, Epoch: epoch, Q: q}
			})
		}
	}

	snap := eg.Stats().Snapshot()
	if snap.Hits == 0 {
		t.Fatalf("equivalence run never hit the cache (stats %+v): the test proved nothing", snap)
	}
	if snap.Admissions == 0 || snap.Syncs == 0 {
		t.Fatalf("edge machinery idle: %+v", snap)
	}
	t.Logf("edge equivalence: %s", snap)
}

// TestEdgeConcurrent hammers one edge from many goroutines — queries from
// distinct clients racing update batches and syncs — so the race detector
// sees every lock order the proxy has. Responses are only sanity-checked;
// byte-equivalence under concurrency is TestEdgeEquivalence's serialized
// job.
func TestEdgeConcurrent(t *testing.T) {
	objects := GenerateNE(3_000, 13)
	cs, err := NewClusterServer(objects, ClusterConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	eg, err := cs.Edge(EdgeOptions{AdmitThreshold: 1, Window: 32})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 6
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 271))
			var epoch uint64
			for i := 0; i < 300; i++ {
				var req *wire.Request
				if g == 0 && i%10 == 0 {
					req = &wire.Request{Client: 99, Epoch: epoch, Updates: []wire.UpdateOp{{
						Kind: wire.UpdateInsert,
						Obj:  ObjectID(1<<23 | uint32(i)),
						To:   RectFromCenter(Pt(rng.Float64(), rng.Float64()), 0.001, 0.001),
						Size: 64,
					}}}
				} else {
					req = &wire.Request{
						Client: wire.ClientID(g + 1),
						Epoch:  epoch,
						Q:      NewRange(RectFromCenter(Pt(0.4+0.01*float64(i%8), 0.55), 0.03, 0.03)),
					}
				}
				resp, err := eg.RoundTrip(req)
				if err != nil {
					errc <- fmt.Errorf("goroutine %d op %d: %w", g, i, err)
					return
				}
				if resp.Epoch < epoch {
					errc <- fmt.Errorf("goroutine %d op %d: epoch went backwards %d -> %d", g, i, epoch, resp.Epoch)
					return
				}
				epoch = resp.Epoch
				cs.ReleaseResponse(resp)
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
