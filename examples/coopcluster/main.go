// Coopcluster: the paper's future-work MANET scenario — a group of clients
// walking together shares cached index and objects over a cheap local link.
// The second member's queries about the area the first member just explored
// never touch the expensive wireless WAN.
//
//	go run ./examples/coopcluster
package main

import (
	"fmt"
	"log"

	"repro/internal/coop"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/wire"
)

func main() {
	ds := dataset.GenerateNE(dataset.Params{N: 25_000, Seed: 13})
	tree := ds.BuildTree(rtree.DefaultParams(), 0.7)
	srv := server.New(tree, ds.SizeOf, server.Config{})
	transport := wire.TransportFunc(func(req *wire.Request) (*wire.Response, error) {
		resp, _ := srv.Execute(req)
		return resp, nil
	})

	// Three friends exploring the same neighborhood.
	alice := coop.NewClient(coop.Config{ID: 1, Root: srv.RootRef()}, 2<<20, transport)
	bob := coop.NewClient(coop.Config{ID: 2, Root: srv.RootRef()}, 2<<20, transport)
	carol := coop.NewClient(coop.Config{ID: 3, Root: srv.RootRef()}, 2<<20, transport)
	coop.NewGroup(alice, bob, carol)

	spot := geom.Pt(0.55, 0.45)

	// Alice looks around: pays the WAN price once.
	repA, err := alice.Query(query.NewRange(geom.RectFromCenter(spot, 0.02, 0.02)))
	if err != nil {
		log.Fatal(err)
	}
	show("alice range", repA)

	// Bob asks for the nearest cafes at the same spot: Alice's cache answers
	// over the LAN — across clients AND across query types.
	repB, err := bob.Query(query.NewKNN(spot, 5))
	if err != nil {
		log.Fatal(err)
	}
	show("bob 5-NN", repB)

	// Carol checks close pairs: still no WAN needed if coverage suffices.
	repC, err := carol.Query(query.NewJoin(geom.RectFromCenter(spot, 0.01, 0.01), 1e-3))
	if err != nil {
		log.Fatal(err)
	}
	show("carol join", repC)

	fmt.Println("\nwithout the group, bob and carol would each have paid the WAN round trip")
}

func show(tag string, rep coop.Report) {
	src := "server"
	if !rep.ServerContact {
		src = "neighborhood"
	}
	fmt.Printf("%-12s via %-12s results=%-3d pairs=%-2d WAN=%5dB LAN=%5dB peers=%d resp=%.3fs\n",
		tag, src, len(rep.Results), len(rep.Pairs), rep.WANDownlink, rep.LANBytes, rep.PeersUsed, rep.RespTime)
}
