// Clustergrid: the spatial sharding layer end to end, in one process. It
// builds the same dataset twice — behind a single server and behind a
// 4-shard cluster router — drives an identical proactive-caching client
// against each, verifies the answers agree, and prints what the router did:
// per-shard fan-out, the single-shard fast path, kNN re-issues, cross-shard
// join scans.
//
//	go run ./examples/clustergrid
//	go run ./examples/clustergrid -shards 8 -n 60000
//
// The cluster speaks the unmodified wire protocol (shard node ids and
// epochs are re-keyed into a virtual namespace, docs/CLUSTER.md), so the
// client code is byte-for-byte the one from examples/quickstart.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro"
)

func main() {
	n := flag.Int("n", 30_000, "dataset objects")
	shards := flag.Int("shards", 4, "spatial shards")
	queries := flag.Int("queries", 120, "queries per client")
	flag.Parse()

	objects := repro.GenerateNE(*n, 3)
	single := repro.NewServer(objects, repro.ServerConfig{})
	defer single.Close()
	clustered, err := repro.NewClusterServer(objects, repro.ClusterConfig{Shards: *shards})
	if err != nil {
		log.Fatal(err)
	}
	defer clustered.Close()
	fmt.Printf("dataset: %d objects; cluster: %d shards owning %v\n",
		*n, clustered.Shards(), clustered.ShardObjects())

	mk := func(t repro.Transport, id uint32) *repro.Client {
		cl, err := repro.NewClient(t, repro.ClientConfig{ID: id, CacheBytes: 1 << 20})
		if err != nil {
			log.Fatal(err)
		}
		return cl
	}
	clSingle := mk(single.Transport(), 1)
	clCluster := mk(clustered.Transport(), 1)

	r := rand.New(rand.NewSource(9))
	hot := repro.Pt(0.5, 0.5)
	mismatches := 0
	for i := 0; i < *queries; i++ {
		// A drifting hotspot keeps the caches warm and the remainder
		// queries real: handed-over state crosses shard boundaries.
		hot = repro.Pt(walk(r, hot.X), walk(r, hot.Y))
		var q repro.Query
		switch i % 3 {
		case 0:
			q = repro.NewRange(repro.RectFromCenter(hot, 0.04, 0.04))
		case 1:
			q = repro.NewKNN(hot, 8)
		default:
			q = repro.NewJoin(repro.RectFromCenter(hot, 0.1, 0.1), 0.004)
		}
		a, err := clSingle.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		b, err := clCluster.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		if !sameIDs(a.Results, b.Results) {
			mismatches++
		}
	}
	fmt.Printf("%d mixed queries against both backends, %d result mismatches\n", *queries, mismatches)
	fmt.Println(clustered.ClusterStats())
	if mismatches > 0 {
		log.Fatal("cluster answers diverged from the single node")
	}
}

func walk(r *rand.Rand, v float64) float64 {
	v += (r.Float64() - 0.5) * 0.12
	if v < 0.05 {
		v = 0.05
	}
	if v > 0.95 {
		v = 0.95
	}
	return v
}

func sameIDs(a, b []repro.ObjectID) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]repro.ObjectID(nil), a...)
	bs := append([]repro.ObjectID(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
