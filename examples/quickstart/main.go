// Quickstart: stand up a spatial server, attach a proactive-caching mobile
// client, and watch the cache turn remote queries into local ones.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A city's worth of points of interest (synthetic NE-like data:
	// clustered rectangles with Zipf-sized payloads, ids 1..N).
	objects := repro.GenerateNE(20_000, 1)
	srv := repro.NewServer(objects, repro.ServerConfig{})
	st := srv.IndexStats()
	fmt.Printf("server: %d objects indexed in %d R*-tree nodes (height %d)\n\n",
		st.Objects, st.Nodes, st.Height)

	// A mobile client with a 2 MB proactive cache.
	cl, err := repro.NewClient(srv.Transport(), repro.ClientConfig{CacheBytes: 2 << 20})
	if err != nil {
		log.Fatal(err)
	}

	me := repro.Pt(0.42, 0.58)
	cl.SetPosition(me)

	// 1. A range query: "what is within this window around me?"
	window := repro.RectFromCenter(me, 0.01, 0.01)
	rep, err := cl.Query(repro.NewRange(window))
	if err != nil {
		log.Fatal(err)
	}
	describe("range (cold)", rep)

	// 2. A kNN query at the same spot: proactive caching reuses the range
	// query's objects AND index — something semantic caching cannot do.
	rep, err = cl.Query(repro.NewKNN(me, 5))
	if err != nil {
		log.Fatal(err)
	}
	describe("5-NN (warm area)", rep)

	// 3. The same kNN again: fully local.
	rep, err = cl.Query(repro.NewKNN(me, 5))
	if err != nil {
		log.Fatal(err)
	}
	describe("5-NN (repeat)", rep)

	// 4. A distance self-join: "which pairs of objects near me are within
	// 0.002 of each other?"
	rep, err = cl.Query(repro.NewJoin(repro.RectFromCenter(me, 0.02, 0.02), 0.002))
	if err != nil {
		log.Fatal(err)
	}
	describe(fmt.Sprintf("join (%d pairs)", len(rep.Pairs)), rep)

	fmt.Printf("\ncache: %d bytes used, %d of them index\n", cl.CacheUsed(), cl.CacheIndexBytes())
}

func describe(tag string, rep repro.Report) {
	mode := "remote"
	if rep.LocalOnly {
		mode = "LOCAL"
	}
	fmt.Printf("%-18s %-6s results=%-3d hit=%4.0f%%  up=%dB down=%dB resp=%.3fs\n",
		tag, mode, len(rep.Results), rep.HitRate()*100,
		rep.UplinkBytes, rep.DownlinkBytes, rep.RespTime)
}
