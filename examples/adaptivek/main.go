// Adaptivek: the Section 4.3 feedback loop in action. A client issues only
// kNN queries while the typical k drifts from large to small; small k needs
// more precise index around each cached object, so the false-miss rate
// rises and the server reacts by raising the client's refinement level d —
// shipping finer compact forms — then lowers it again when k grows back.
//
//	go run ./examples/adaptivek
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mobility"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/wire"
)

func main() {
	ds := dataset.GenerateNE(dataset.Params{N: 30_000, Seed: 5})
	tree := ds.BuildTree(rtree.DefaultParams(), 0.7)
	srv := server.New(tree, ds.SizeOf, server.Config{Form: server.AdaptiveForm})

	sizes := wire.DefaultSizeModel()
	cache := core.NewCache(int(ds.TotalBytes/1000), core.GRD3, sizes) // 0.1%: tiny
	cl := core.NewClient(core.ClientConfig{
		ID:        1,
		Root:      srv.RootRef(),
		Sizes:     sizes,
		FMRPeriod: 40,
	}, cache, wire.TransportFunc(func(req *wire.Request) (*wire.Response, error) {
		resp, _ := srv.Execute(req)
		return resp, nil
	}))

	rng := rand.New(rand.NewSource(11))
	mob := mobility.NewRandomWaypoint(mobility.Config{Speed: 1e-4, PauseMean: 50}, rng)

	const queries = 1200
	fmt.Printf("%8s %6s %6s %8s %8s\n", "queries", "avg-k", "d", "fmr", "i/c")
	var fm, cached int
	for i := 1; i <= queries; i++ {
		pos := mob.Advance(rng.ExpFloat64() * 50)
		cl.SetPosition(pos)

		// k drifts 10 -> 1 -> 10 over the run.
		half := float64(queries) / 2
		avg := 10 - 9*float64(i)/half
		if float64(i) > half {
			avg = 1 + 9*(float64(i)-half)/half
		}
		k := int(avg + rng.Float64()*2 - 1)
		if k < 1 {
			k = 1
		}
		rep, err := cl.Query(query.NewKNN(pos, k))
		if err != nil {
			log.Fatal(err)
		}
		fm += rep.FalseMissBytes
		cached += rep.SavedBytes + rep.FalseMissBytes

		if i%120 == 0 {
			fmr := 0.0
			if cached > 0 {
				fmr = float64(fm) / float64(cached)
			}
			ic := 0.0
			if cache.Used() > 0 {
				ic = float64(cache.IndexBytes()) / float64(cache.Used())
			}
			fmt.Printf("%8d %6.1f %6d %8.3f %8.3f\n", i, avg, srv.ClientD(1), fmr, ic)
			fm, cached = 0, 0
		}
	}
}
