// Mobiletour: a client drives through the map under the random-waypoint
// mobility model, issuing mixed spatial queries about its neighborhood —
// the paper's simulation workload in miniature. Watch the hit rate climb as
// the proactive cache warms up, then stabilize as replacement kicks in.
//
//	go run ./examples/mobiletour
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/mobility"
)

func main() {
	objects := repro.GenerateNE(30_000, 7)
	srv := repro.NewServer(objects, repro.ServerConfig{})

	var total int64
	for _, o := range objects {
		total += int64(o.Size)
	}
	cacheBytes := int(total / 100) // the paper's default: |C| = 1%
	cl, err := repro.NewClient(srv.Transport(), repro.ClientConfig{CacheBytes: cacheBytes})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %.0f MB, cache %.1f MB (1%%)\n\n", float64(total)/(1<<20), float64(cacheBytes)/(1<<20))

	rng := rand.New(rand.NewSource(42))
	mob := mobility.NewRandomWaypoint(mobility.Config{Speed: 1e-4, PauseMean: 50}, rng)

	const queries = 600
	const leg = 100
	var saved, result, up, down int64
	var local int
	fmt.Printf("%8s %8s %10s %12s %12s\n", "queries", "hitc", "local", "uplink B/q", "downlink B/q")
	for i := 1; i <= queries; i++ {
		think := rng.ExpFloat64() * 50
		pos := mob.Advance(think)
		cl.SetPosition(pos)

		var q repro.Query
		switch rng.Intn(3) {
		case 0:
			q = repro.NewRange(repro.RectFromCenter(pos, 0.002, 0.002))
		case 1:
			q = repro.NewKNN(pos, 1+rng.Intn(5))
		default:
			q = repro.NewJoin(repro.RectFromCenter(pos, 0.004, 0.004), 5e-5)
		}
		rep, err := cl.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		saved += int64(rep.SavedBytes)
		result += int64(rep.ResultBytes)
		up += int64(rep.UplinkBytes)
		down += int64(rep.DownlinkBytes)
		if rep.LocalOnly {
			local++
		}

		if i%leg == 0 {
			hitc := 0.0
			if result > 0 {
				hitc = float64(saved) / float64(result)
			}
			fmt.Printf("%8d %7.1f%% %9d%% %12.0f %12.0f\n",
				i, hitc*100, local*100/leg, float64(up)/float64(leg), float64(down)/float64(leg))
			saved, result, up, down, local = 0, 0, 0, 0, 0
		}
	}
	fmt.Printf("\nfinal cache: %d bytes (%.0f%% index)\n",
		cl.CacheUsed(), 100*float64(cl.CacheIndexBytes())/float64(cl.CacheUsed()))
}
