// Joinfinder: the spatial-join scenario that semantic caching cannot serve
// at all (the paper forwards every join to the server) but proactive caching
// accelerates, because join processing reuses the same cached R*-tree nodes
// and objects as any other query type.
//
// A field engineer inspects sites pair-by-pair: "which pairs of assets near
// me are closer than the safety distance?" — after surveying the area with
// range and kNN queries, the joins run almost entirely from cache.
//
//	go run ./examples/joinfinder
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	objects := repro.GenerateRD(40_000, 3) // road-segment assets
	srv := repro.NewServer(objects, repro.ServerConfig{})
	cl, err := repro.NewClient(srv.Transport(), repro.ClientConfig{CacheBytes: 4 << 20})
	if err != nil {
		log.Fatal(err)
	}

	site := repro.Pt(0.31, 0.47)
	cl.SetPosition(site)
	const safety = 2e-4

	// Cold join: everything comes from the server.
	cold, err := cl.Query(repro.NewJoin(repro.RectFromCenter(site, 0.01, 0.01), safety))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold join:   %3d pairs, %6d B down, resp %.3fs\n",
		len(cold.Pairs), cold.DownlinkBytes, cold.RespTime)

	// Survey the area with other query types — this is what a technician
	// does anyway, and it proactively loads index and objects.
	if _, err := cl.Query(repro.NewRange(repro.RectFromCenter(site, 0.012, 0.012))); err != nil {
		log.Fatal(err)
	}
	if _, err := cl.Query(repro.NewKNN(site, 5)); err != nil {
		log.Fatal(err)
	}

	// Warm join: the cached index confirms pairs locally.
	warm, err := cl.Query(repro.NewJoin(repro.RectFromCenter(site, 0.01, 0.01), safety))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm join:   %3d pairs, %6d B down, resp %.3fs, hit %.0f%%\n",
		len(warm.Pairs), warm.DownlinkBytes, warm.RespTime, warm.HitRate()*100)

	// Tighter threshold on the same area: still served by the same cache —
	// object-level reuse means parameters can change freely.
	tight, err := cl.Query(repro.NewJoin(repro.RectFromCenter(site, 0.008, 0.008), safety/2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tight join:  %3d pairs, %6d B down, resp %.3fs, hit %.0f%%\n",
		len(tight.Pairs), tight.DownlinkBytes, tight.RespTime, tight.HitRate()*100)

	if len(cold.Pairs) != len(warm.Pairs) {
		log.Fatalf("warm join changed the answer: %d vs %d pairs", len(warm.Pairs), len(cold.Pairs))
	}
	fmt.Println("\nwarm results verified identical to cold results")
}
