// Netclient: the full client/server protocol over a real TCP socket — the
// architecture of Figure 3 with an actual wire in the middle. It starts an
// in-process prodb-style server on a loopback port, connects a proactive-
// caching client through repro.Dial, and runs a warm-up sequence.
//
// To run against a standalone server instead:
//
//	go run ./cmd/prodb -addr :7001 &
//	go run ./examples/netclient -addr 127.0.0.1:7001
//
// With -clients N it becomes a small load generator: N concurrent clients,
// each on its own TCP connection, hammer the server and print aggregate
// throughput — a quick way to watch the concurrent serving layer work.
//
// With -pipeline the N clients instead share ONE TCP connection: the binary
// protocol tags every request with a correlation id, so all N clients keep
// their queries in flight simultaneously and the server answers out of
// order. Comparing the two modes on the same -clients count shows what
// request pipelining buys over the serial one-round-trip-at-a-time path:
//
//	go run ./examples/netclient -clients 32            # 32 connections
//	go run ./examples/netclient -clients 32 -pipeline  # 1 connection
//
// With -updates M the load test becomes a mixed read/write measurement: M
// updater connections stream batched MoveObject operations (the wire
// protocol's Request.Updates message) while the query clients run, and the
// tool reports query p50/p99 latency both without and with the update
// stream — the snapshot-isolated server is expected to hold query latency
// nearly flat:
//
//	go run ./examples/netclient -clients 16 -queries 200 -updates 4
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", "", "connect to an existing prodb server instead of self-hosting")
	clients := flag.Int("clients", 1, "concurrent clients (each on its own connection)")
	queries := flag.Int("queries", 50, "queries per client in multi-client mode")
	pipeline := flag.Bool("pipeline", false, "multiplex all clients over one pipelined connection")
	updaters := flag.Int("updates", 0, "updater connections streaming batched moves (mixed read/write mode)")
	updBatch := flag.Int("upd-batch", 32, "move operations per update request in -updates mode")
	updRate := flag.Int("upd-rate", 10, "update requests per second per updater (0 = unthrottled saturation test)")
	flag.Parse()

	target := *addr
	if target == "" {
		// Self-host a server on a random loopback port.
		srv := repro.NewServer(repro.GenerateNE(15_000, 9), repro.ServerConfig{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go func() { _ = srv.Serve(ln) }()
		target = ln.Addr().String()
		fmt.Printf("self-hosted server on %s\n", target)
	}

	if *updaters > 0 {
		mixedLoad(target, *clients, *queries, *updaters, *updBatch, *updRate)
		return
	}
	if *clients > 1 {
		loadTest(target, *clients, *queries, *pipeline)
		return
	}

	transport, err := repro.Dial(target)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := repro.NewClient(transport, repro.ClientConfig{CacheBytes: 1 << 21})
	if err != nil {
		log.Fatal(err)
	}

	me := repro.Pt(0.5, 0.5)
	cl.SetPosition(me)
	for round := 1; round <= 3; round++ {
		rep, err := cl.Query(repro.NewKNN(me, 4))
		if err != nil {
			log.Fatal(err)
		}
		mode := "remote"
		if rep.LocalOnly {
			mode = "LOCAL"
		}
		fmt.Printf("round %d: 4-NN %-6s results=%d hit=%3.0f%% up=%dB down=%dB\n",
			round, mode, len(rep.Results), rep.HitRate()*100, rep.UplinkBytes, rep.DownlinkBytes)
	}
	rep, err := cl.Query(repro.NewRange(repro.RectFromCenter(me, 0.01, 0.01)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range around the warm spot: %d results, hit=%3.0f%%\n",
		len(rep.Results), rep.HitRate()*100)
}

// loadTest runs n concurrent clients over real TCP and prints aggregate
// throughput. With pipeline set, all clients share one pipelined binary
// connection (requests in flight are correlated by id); otherwise each
// client dials its own connection and round-trips serially.
func loadTest(target string, n, queriesPer int, pipeline bool) {
	mode := fmt.Sprintf("%d connections", n)
	var shared repro.Transport
	if pipeline {
		mode = "1 pipelined connection"
		var err error
		if shared, err = repro.Dial(target); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("load test: %d clients x %d queries against %s (%s)\n", n, queriesPer, target, mode)
	var done, local atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			transport := shared
			if transport == nil {
				var err error
				if transport, err = repro.Dial(target); err != nil {
					log.Printf("client %d: %v", c, err)
					return
				}
			}
			cl, err := repro.NewClient(transport, repro.ClientConfig{
				ID:         uint32(c + 1),
				CacheBytes: 1 << 20,
			})
			if err != nil {
				log.Printf("client %d: %v", c, err)
				return
			}
			r := rand.New(rand.NewSource(int64(c + 1)))
			for i := 0; i < queriesPer; i++ {
				p := repro.Pt(r.Float64(), r.Float64())
				var rep repro.Report
				if i%2 == 0 {
					rep, err = cl.Query(repro.NewRange(repro.RectFromCenter(p, 0.02, 0.02)))
				} else {
					rep, err = cl.Query(repro.NewKNN(p, 4))
				}
				if err != nil {
					log.Printf("client %d query %d: %v", c, i, err)
					return
				}
				done.Add(1)
				if rep.LocalOnly {
					local.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("%d queries in %v (%.0f q/s), %d answered fully from cache\n",
		done.Load(), elapsed.Round(time.Millisecond),
		float64(done.Load())/elapsed.Seconds(), local.Load())
}

// q32rect quantizes a rectangle to the wire's float32 precision: an updater
// must remember exactly what the server stored, or its next move's From
// rectangle will not match the indexed entry.
func q32rect(r geom.Rect) geom.Rect {
	q := func(v float64) float64 { return float64(float32(v)) }
	return geom.Rect{MinX: q(r.MinX), MinY: q(r.MinY), MaxX: q(r.MaxX), MaxY: q(r.MaxY)}
}

// percentile returns the p-th percentile of sorted durations.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// queryPhase runs n query workers, each on its own connection, issuing
// wire-level range/kNN requests and timing every round trip. It returns the
// sorted latencies and the aggregate throughput.
func queryPhase(target string, workers, queriesPer int) ([]time.Duration, float64) {
	var mu sync.Mutex
	var all []time.Duration
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < workers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			transport, err := repro.Dial(target)
			if err != nil {
				log.Printf("query worker %d: %v", c, err)
				return
			}
			r := rand.New(rand.NewSource(int64(1000 + c)))
			lats := make([]time.Duration, 0, queriesPer)
			var epoch uint64 // a live client tracks the server epoch
			for i := 0; i < queriesPer; i++ {
				p := geom.Pt(r.Float64(), r.Float64())
				var q query.Query
				if i%2 == 0 {
					q = query.NewRange(geom.RectFromCenter(p, 0.02, 0.02))
				} else {
					q = query.NewKNN(p, 4)
				}
				t0 := time.Now()
				resp, err := transport.RoundTrip(&wire.Request{Client: wire.ClientID(c + 1), Q: q, Epoch: epoch})
				if err != nil {
					log.Printf("query worker %d: %v", c, err)
					return
				}
				epoch = resp.Epoch
				lats = append(lats, time.Since(t0))
			}
			mu.Lock()
			all = append(all, lats...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	qps := float64(len(all)) / time.Since(start).Seconds()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all, qps
}

// mixedLoad measures query latency with and without a concurrent update
// stream. Each updater owns a private flock of objects: it inserts them once,
// then streams paced batches of moves (Request.Updates) over its own
// connection until the query phase completes. The default pacing models a
// sustained moving-object feed; -upd-rate 0 removes the throttle and turns
// the run into a saturation test of the writer instead.
func mixedLoad(target string, clients, queriesPer, updaters, updBatch, updRate int) {
	if clients < 1 {
		clients = 1
	}
	fmt.Printf("mixed load: %d query clients x %d queries, %d updaters (%d moves/request, %d req/s each)\n",
		clients, queriesPer, updaters, updBatch, updRate)

	base, qps := queryPhase(target, clients, queriesPer)
	fmt.Printf("no updates:   %6.0f q/s   p50 %8v   p99 %8v\n",
		qps, percentile(base, 0.50).Round(time.Microsecond), percentile(base, 0.99).Round(time.Microsecond))

	stop := make(chan struct{})
	var updOps atomic.Int64
	var uwg, ready sync.WaitGroup
	ready.Add(updaters)
	for u := 0; u < updaters; u++ {
		uwg.Add(1)
		go func(u int) {
			defer uwg.Done()
			inserted := false
			defer func() {
				if !inserted {
					ready.Done() // errored out before finishing the flock
				}
			}()
			transport, err := repro.Dial(target)
			if err != nil {
				log.Printf("updater %d: %v", u, err)
				return
			}
			r := rand.New(rand.NewSource(int64(5000 + u)))
			const flock = 512
			baseID := uint32(1<<20 + u*flock)
			rects := make([]geom.Rect, flock)
			ops := make([]wire.UpdateOp, 0, updBatch)
			for i := range rects {
				rects[i] = q32rect(geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.001, 0.001))
				ops = append(ops, wire.UpdateOp{
					Kind: wire.UpdateInsert, Obj: repro.ObjectID(baseID + uint32(i)),
					To: rects[i], Size: 256,
				})
				if len(ops) == updBatch || i == flock-1 {
					if _, err := transport.RoundTrip(&wire.Request{Updates: ops}); err != nil {
						log.Printf("updater %d insert: %v", u, err)
						return
					}
					ops = ops[:0]
				}
			}
			inserted = true
			ready.Done() // flock in place; the measured phase may start
			var tick *time.Ticker
			if updRate > 0 {
				tick = time.NewTicker(time.Second / time.Duration(updRate))
				defer tick.Stop()
			}
			next := 0
			for {
				if tick != nil {
					select {
					case <-stop:
						return
					case <-tick.C:
					}
				} else {
					select {
					case <-stop:
						return
					default:
					}
				}
				ops = ops[:0]
				for k := 0; k < updBatch; k++ {
					i := next % flock
					next++
					to := q32rect(geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.001, 0.001))
					ops = append(ops, wire.UpdateOp{
						Kind: wire.UpdateMove, Obj: repro.ObjectID(baseID + uint32(i)),
						From: rects[i], To: to,
					})
					rects[i] = to
				}
				resp, err := transport.RoundTrip(&wire.Request{Updates: ops})
				if err != nil {
					log.Printf("updater %d: %v", u, err)
					return
				}
				for k, ok := range resp.UpdateResults {
					if !ok {
						log.Printf("updater %d: move %d rejected", u, k)
						return
					}
				}
				updOps.Add(int64(len(ops)))
			}
		}(u)
	}

	ready.Wait() // every updater's flock is inserted; measure moves only
	updStart := time.Now()
	mixed, mqps := queryPhase(target, clients, queriesPer)
	close(stop)
	uwg.Wait()
	sustained := float64(updOps.Load()) / time.Since(updStart).Seconds()
	fmt.Printf("with updates: %6.0f q/s   p50 %8v   p99 %8v   (%.0f moves/s sustained)\n",
		mqps, percentile(mixed, 0.50).Round(time.Microsecond), percentile(mixed, 0.99).Round(time.Microsecond), sustained)
}
