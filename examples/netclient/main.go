// Netclient: the full client/server protocol over a real TCP socket — the
// architecture of Figure 3 with an actual wire in the middle. It starts an
// in-process prodb-style server on a loopback port, connects a proactive-
// caching client through repro.Dial, and runs a warm-up sequence.
//
// To run against a standalone server instead:
//
//	go run ./cmd/prodb -addr :7001 &
//	go run ./examples/netclient -addr 127.0.0.1:7001
//
// With -clients N it becomes a small load generator: N concurrent clients,
// each on its own TCP connection, hammer the server and print aggregate
// throughput — a quick way to watch the concurrent serving layer work.
//
// With -pipeline the N clients instead share ONE TCP connection: the binary
// protocol tags every request with a correlation id, so all N clients keep
// their queries in flight simultaneously and the server answers out of
// order. Comparing the two modes on the same -clients count shows what
// request pipelining buys over the serial one-round-trip-at-a-time path:
//
//	go run ./examples/netclient -clients 32            # 32 connections
//	go run ./examples/netclient -clients 32 -pipeline  # 1 connection
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

func main() {
	addr := flag.String("addr", "", "connect to an existing prodb server instead of self-hosting")
	clients := flag.Int("clients", 1, "concurrent clients (each on its own connection)")
	queries := flag.Int("queries", 50, "queries per client in multi-client mode")
	pipeline := flag.Bool("pipeline", false, "multiplex all clients over one pipelined connection")
	flag.Parse()

	target := *addr
	if target == "" {
		// Self-host a server on a random loopback port.
		srv := repro.NewServer(repro.GenerateNE(15_000, 9), repro.ServerConfig{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go func() { _ = srv.Serve(ln) }()
		target = ln.Addr().String()
		fmt.Printf("self-hosted server on %s\n", target)
	}

	if *clients > 1 {
		loadTest(target, *clients, *queries, *pipeline)
		return
	}

	transport, err := repro.Dial(target)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := repro.NewClient(transport, repro.ClientConfig{CacheBytes: 1 << 21})
	if err != nil {
		log.Fatal(err)
	}

	me := repro.Pt(0.5, 0.5)
	cl.SetPosition(me)
	for round := 1; round <= 3; round++ {
		rep, err := cl.Query(repro.NewKNN(me, 4))
		if err != nil {
			log.Fatal(err)
		}
		mode := "remote"
		if rep.LocalOnly {
			mode = "LOCAL"
		}
		fmt.Printf("round %d: 4-NN %-6s results=%d hit=%3.0f%% up=%dB down=%dB\n",
			round, mode, len(rep.Results), rep.HitRate()*100, rep.UplinkBytes, rep.DownlinkBytes)
	}
	rep, err := cl.Query(repro.NewRange(repro.RectFromCenter(me, 0.01, 0.01)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range around the warm spot: %d results, hit=%3.0f%%\n",
		len(rep.Results), rep.HitRate()*100)
}

// loadTest runs n concurrent clients over real TCP and prints aggregate
// throughput. With pipeline set, all clients share one pipelined binary
// connection (requests in flight are correlated by id); otherwise each
// client dials its own connection and round-trips serially.
func loadTest(target string, n, queriesPer int, pipeline bool) {
	mode := fmt.Sprintf("%d connections", n)
	var shared repro.Transport
	if pipeline {
		mode = "1 pipelined connection"
		var err error
		if shared, err = repro.Dial(target); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("load test: %d clients x %d queries against %s (%s)\n", n, queriesPer, target, mode)
	var done, local atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			transport := shared
			if transport == nil {
				var err error
				if transport, err = repro.Dial(target); err != nil {
					log.Printf("client %d: %v", c, err)
					return
				}
			}
			cl, err := repro.NewClient(transport, repro.ClientConfig{
				ID:         uint32(c + 1),
				CacheBytes: 1 << 20,
			})
			if err != nil {
				log.Printf("client %d: %v", c, err)
				return
			}
			r := rand.New(rand.NewSource(int64(c + 1)))
			for i := 0; i < queriesPer; i++ {
				p := repro.Pt(r.Float64(), r.Float64())
				var rep repro.Report
				if i%2 == 0 {
					rep, err = cl.Query(repro.NewRange(repro.RectFromCenter(p, 0.02, 0.02)))
				} else {
					rep, err = cl.Query(repro.NewKNN(p, 4))
				}
				if err != nil {
					log.Printf("client %d query %d: %v", c, i, err)
					return
				}
				done.Add(1)
				if rep.LocalOnly {
					local.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("%d queries in %v (%.0f q/s), %d answered fully from cache\n",
		done.Load(), elapsed.Round(time.Millisecond),
		float64(done.Load())/elapsed.Seconds(), local.Load())
}
