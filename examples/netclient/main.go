// Netclient: the full client/server protocol over a real TCP socket — the
// architecture of Figure 3 with an actual wire in the middle. It starts an
// in-process prodb-style server on a loopback port, connects a proactive-
// caching client through repro.Dial, and runs a warm-up sequence.
//
// To run against a standalone server instead:
//
//	go run ./cmd/prodb -addr :7001 &
//	go run ./examples/netclient -addr 127.0.0.1:7001
package main

import (
	"flag"
	"fmt"
	"log"
	"net"

	"repro"
)

func main() {
	addr := flag.String("addr", "", "connect to an existing prodb server instead of self-hosting")
	flag.Parse()

	target := *addr
	if target == "" {
		// Self-host a server on a random loopback port.
		srv := repro.NewServer(repro.GenerateNE(15_000, 9), repro.ServerConfig{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go func() { _ = srv.Serve(ln) }()
		target = ln.Addr().String()
		fmt.Printf("self-hosted server on %s\n", target)
	}

	transport, err := repro.Dial(target)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := repro.NewClient(transport, repro.ClientConfig{CacheBytes: 1 << 21})
	if err != nil {
		log.Fatal(err)
	}

	me := repro.Pt(0.5, 0.5)
	cl.SetPosition(me)
	for round := 1; round <= 3; round++ {
		rep, err := cl.Query(repro.NewKNN(me, 4))
		if err != nil {
			log.Fatal(err)
		}
		mode := "remote"
		if rep.LocalOnly {
			mode = "LOCAL"
		}
		fmt.Printf("round %d: 4-NN %-6s results=%d hit=%3.0f%% up=%dB down=%dB\n",
			round, mode, len(rep.Results), rep.HitRate()*100, rep.UplinkBytes, rep.DownlinkBytes)
	}
	rep, err := cl.Query(repro.NewRange(repro.RectFromCenter(me, 0.01, 0.01)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range around the warm spot: %d results, hit=%3.0f%%\n",
		len(rep.Results), rep.HitRate()*100)
}
