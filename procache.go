// Package repro is a from-scratch Go implementation of "Proactive Caching
// for Spatial Queries in Mobile Environments" (Hu, Xu, Wong, Zheng, Lee,
// Lee — ICDE 2005).
//
// Proactive caching lets a mobile client answer range, k-nearest-neighbor
// and distance self-join queries locally by caching not just query results
// but the R*-tree index nodes that prove those results. A query that cannot
// finish locally hands its execution state (the best-first priority queue)
// to the server as a remainder query; the server resumes it and ships back
// the remaining results plus a supporting index in full, compact, or
// adaptively refined form (binary partition trees / super entries).
//
// This package is the facade over the building blocks in internal/:
//
//	Server     — R*-tree + partition forest + remainder-query processor
//	Client     — proactive cache + Algorithm 1 local processor
//	NewRange / NewKNN / NewJoin — query constructors
//
// A minimal session:
//
//	srv := repro.NewServer(objects, repro.ServerConfig{})
//	cl := repro.NewClient(srv.Transport(), repro.ClientConfig{CacheBytes: 1 << 20})
//	rep, err := cl.Query(repro.NewKNN(repro.Pt(0.5, 0.5), 3))
//
// See examples/ for runnable programs and internal/sim for the experiment
// harness that regenerates the paper's figures.
package repro

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/wire"
)

// Re-exported building-block types. The aliases keep the public API surface
// in one place while the implementations live in internal packages.
type (
	// Point is a location in the unit square.
	Point = geom.Point
	// Rect is an axis-aligned rectangle (an MBR).
	Rect = geom.Rect
	// ObjectID identifies a data object.
	ObjectID = rtree.ObjectID
	// Object is one spatial object: id, bounding rectangle, payload size.
	Object = dataset.Object
	// Query is a spatial query (range, kNN, or windowed distance self-join).
	Query = query.Query
	// Report is the per-query outcome: results, byte and timing accounting.
	Report = core.Report
	// Policy selects the cache replacement scheme.
	Policy = core.Policy
	// Transport carries requests to a server (in-process or remote).
	Transport = wire.Transport
	// IndexForm selects how the server represents shipped index nodes.
	IndexForm = server.IndexForm
	// UpdateOp is one index mutation in a batched update request.
	UpdateOp = wire.UpdateOp
)

// Batched update operation kinds (Request.Updates).
const (
	UpdateInsert = wire.UpdateInsert
	UpdateDelete = wire.UpdateDelete
	UpdateMove   = wire.UpdateMove
)

// Replacement policies (Section 5).
const (
	GRD3 = core.GRD3
	GRD2 = core.GRD2
	LRU  = core.LRU
	MRU  = core.MRU
	FAR  = core.FAR
)

// Index forms (Section 4).
const (
	FullForm     = server.FullForm
	CompactForm  = server.CompactForm
	AdaptiveForm = server.AdaptiveForm
)

// Pt is shorthand for a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// R is shorthand for a Rect.
func R(minX, minY, maxX, maxY float64) Rect { return geom.R(minX, minY, maxX, maxY) }

// RectFromCenter builds the w-by-h rectangle centered at c.
func RectFromCenter(c Point, w, h float64) Rect { return geom.RectFromCenter(c, w, h) }

// NewRange builds a range query over a window.
func NewRange(window Rect) Query { return query.NewRange(window) }

// NewKNN builds a k-nearest-neighbor query around a point.
func NewKNN(center Point, k int) Query { return query.NewKNN(center, k) }

// NewJoin builds a distance self-join over the window with the given
// distance threshold.
func NewJoin(window Rect, dist float64) Query { return query.NewJoin(window, dist) }

// ServerConfig parameterizes NewServer.
type ServerConfig struct {
	// Form selects the supporting-index representation; default adaptive.
	Form IndexForm
	// Sensitivity is the adaptive s parameter; default 0.20.
	Sensitivity float64
	// PageBytes sizes index pages; default 4096 (about 204 entries).
	PageBytes int
	// BulkFill is the bulk-load fill factor; default 0.7.
	BulkFill float64
}

// Server owns a spatial dataset, its R*-tree, and the proactive-caching
// remainder-query processor. Query execution (Transport, Serve, NetServer)
// is safe for any number of concurrent clients and never locks the index:
// queries pin an immutable snapshot while a single writer goroutine batches
// updates and publishes fresh snapshots (see docs/UPDATES.md). The facade
// mutators (InsertObject, DeleteObject, MoveObject) are safe to call
// concurrently with queries, but must not race with each other or with
// wire-level batched updates — they track object rectangles in an auxiliary
// map that assumes one updater. Remote clients can ship batched updates over
// the wire (Request.Updates); SetRemoteUpdates gates that path.
type Server struct {
	inner *server.Server
	// sizes is the build-time size map; it is never written after
	// NewServer (post-build sizes live inside the inner server), so
	// concurrent queries may read it freely.
	sizes map[ObjectID]int
	// mbrs tracks current object rectangles; only the mutators touch it.
	mbrs          map[ObjectID]Rect
	stats         metrics.ServerStats
	remoteUpdates atomic.Bool
	follower      atomic.Bool
}

// NewServer indexes the objects and stands up a server.
func NewServer(objects []Object, cfg ServerConfig) *Server {
	if cfg.PageBytes <= 0 {
		cfg.PageBytes = 4096
	}
	if cfg.BulkFill <= 0 {
		cfg.BulkFill = 0.7
	}
	entrySize := wire.DefaultSizeModel().Entry
	params := rtree.Params{MaxEntries: cfg.PageBytes / entrySize}

	items := make([]rtree.Item, len(objects))
	sizes := make(map[ObjectID]int, len(objects))
	mbrs := make(map[ObjectID]Rect, len(objects))
	for i, o := range objects {
		items[i] = rtree.Item{Obj: o.ID, MBR: o.MBR}
		sizes[o.ID] = o.Size
		mbrs[o.ID] = o.MBR
	}
	tree := rtree.BulkLoad(params, items, cfg.BulkFill)
	inner := server.New(tree, func(id ObjectID) int { return sizes[id] }, server.Config{
		Form:        cfg.Form,
		Sensitivity: cfg.Sensitivity,
	})
	s := &Server{inner: inner, sizes: sizes, mbrs: mbrs}
	s.remoteUpdates.Store(true)
	return s
}

// SetRemoteUpdates enables or disables wire-level batched updates
// (Request.Updates). Enabled by default; a read-only deployment (cmd/prodb
// -updates=false) rejects update requests with an error response while local
// mutators keep working.
func (s *Server) SetRemoteUpdates(on bool) { s.remoteUpdates.Store(on) }

// SetFollower puts the server in warm-standby mode (cmd/prodb -follower):
// only the primary's replication stream may mutate it — wire updates must
// carry the Request.Replica flag or they are rejected — while queries keep
// answering normally, so a router can promote it the moment the primary
// dies (docs/DURABILITY.md). Off by default.
func (s *Server) SetFollower(on bool) { s.follower.Store(on) }

// Close stops the server's background update writer, waiting for queued
// update batches to be applied. Call it after the serving layer has drained;
// queries remain answerable afterwards, further updates are dropped.
func (s *Server) Close() { s.inner.Close() }

// InsertObject adds a new object to the live index. Connected clients learn
// about it through the epoch-based invalidation protocol.
func (s *Server) InsertObject(o Object) {
	s.inner.InsertObject(o.ID, o.MBR, o.Size)
	s.mbrs[o.ID] = o.MBR
}

// DeleteObject removes an object from the live index; it reports whether
// the object existed.
func (s *Server) DeleteObject(id ObjectID) bool {
	mbr, ok := s.mbrs[id]
	if !ok {
		return false
	}
	if !s.inner.DeleteObject(id, mbr) {
		return false
	}
	delete(s.mbrs, id)
	return true
}

// MoveObject relocates an object to a new bounding rectangle.
func (s *Server) MoveObject(id ObjectID, to Rect) bool {
	from, ok := s.mbrs[id]
	if !ok {
		return false
	}
	if !s.inner.MoveObject(id, from, to) {
		return false
	}
	s.mbrs[id] = to
	return true
}

// Epoch returns the server's current update epoch.
func (s *Server) Epoch() uint64 { return s.inner.Epoch() }

// Transport returns an in-process transport to this server. Transports are
// safe for concurrent use; each simulated client may hold its own.
func (s *Server) Transport() Transport {
	return wire.TransportFunc(s.Handler())
}

// ErrUpdatesDisabled is returned to wire clients shipping batched updates to
// a server running with remote updates disabled.
var ErrUpdatesDisabled = errors.New("repro: remote updates disabled")

// ErrNotPrimary is returned to wire clients shipping batched updates to a
// follower: only the primary's replication stream (Request.Replica) may
// mutate a warm standby.
var ErrNotPrimary = errors.New("repro: follower: updates accepted only from the primary's replication stream")

// rejectUpdate is the shared gate for the update path: reads always pass,
// writes pass only when remote updates are on and, in follower mode, the
// request is a replication-stream message.
func (s *Server) rejectUpdate(req *wire.Request) error {
	if !s.remoteUpdates.Load() {
		return ErrUpdatesDisabled
	}
	if s.follower.Load() && !req.Replica {
		return ErrNotPrimary
	}
	return nil
}

// Handler returns the server's request handler for use with a custom
// wire.NetServer. A request carrying Updates is routed through the batched
// single-writer update path; everything else executes as a query.
func (s *Server) Handler() wire.Handler {
	return func(req *wire.Request) (*wire.Response, error) {
		if len(req.Updates) > 0 {
			if err := s.rejectUpdate(req); err != nil {
				return nil, err
			}
			return s.inner.ExecuteUpdates(req), nil
		}
		resp, _ := s.inner.Execute(req)
		return resp, nil
	}
}

// BatchHandler returns the server's batched request handler for
// wire.ServeConfig.HandleBatch: the serving layer hands it runs of
// pipelined requests drained from one connection, update messages are
// answered through the single-writer path, and everything else goes through
// server.ExecuteBatch, which runs groupable range queries in one shared
// traversal of the packed index image.
func (s *Server) BatchHandler() wire.BatchHandler {
	return func(reqs []*wire.Request) ([]*wire.Response, []error) {
		resps := make([]*wire.Response, len(reqs))
		var errs []error
		qIdx := make([]int, 0, len(reqs))
		qreqs := make([]*wire.Request, 0, len(reqs))
		for i, req := range reqs {
			if len(req.Updates) > 0 {
				if err := s.rejectUpdate(req); err != nil {
					if errs == nil {
						errs = make([]error, len(reqs))
					}
					errs[i] = err
					continue
				}
				resps[i] = s.inner.ExecuteUpdates(req)
				continue
			}
			qIdx = append(qIdx, i)
			qreqs = append(qreqs, req)
		}
		qresps, _ := s.inner.ExecuteBatch(qreqs)
		for j, i := range qIdx {
			resps[i] = qresps[j]
		}
		return resps, errs
	}
}

// ApplyUpdates applies a batch of index updates through the single-writer
// queue, blocking until the batch's snapshot is published. It returns one
// applied/failed flag per operation. Unlike the single-object facade
// mutators it does not maintain the rectangle-tracking map, so it composes
// with wire-fed updates but not with DeleteObject/MoveObject bookkeeping.
func (s *Server) ApplyUpdates(ops []wire.UpdateOp) []bool {
	return s.inner.ApplyUpdates(ops, nil)
}

// ServeOptions tunes the network serving layer (see wire.ServeConfig for
// field semantics). The zero value applies production defaults.
type ServeOptions struct {
	// MaxConns caps concurrently open connections (default 4096).
	MaxConns int
	// MaxInflight caps concurrently executing requests (default
	// 4*GOMAXPROCS).
	MaxInflight int
	// MaxPipeline caps requests in flight on one binary connection
	// (default 64).
	MaxPipeline int
	// ReadTimeout reaps connections idle between requests (default 5m;
	// negative disables). Dialed transports do not reconnect: a client
	// that may sit idle longer than this must either send periodic
	// Sync heartbeats, redial on error, or be served with a negative
	// ReadTimeout.
	ReadTimeout time.Duration
}

// NetServer builds a concurrent TCP server over this spatial database: a
// goroutine per connection behind a connection limit, a bounded worker pool
// for request execution, idle-connection reaping, and graceful Shutdown.
// Serving statistics accumulate in Stats.
func (s *Server) NetServer(opts ServeOptions) *wire.NetServer {
	return wire.NewNetServer(s.Handler(), wire.ServeConfig{
		MaxConns:    opts.MaxConns,
		MaxInflight: opts.MaxInflight,
		MaxPipeline: opts.MaxPipeline,
		ReadTimeout: opts.ReadTimeout,
		Stats:       &s.stats,
		// Responses are recycled once their bytes are on the wire, keeping
		// the warm serving path allocation-free end to end.
		Release: s.inner.ReleaseResponse,
		// Pipelined bursts drain into grouped execution (server-side batching
		// over the packed index image).
		HandleBatch: s.BatchHandler(),
	})
}

// Serve answers proactive-caching clients on a listener with default
// options until the listener closes (the TCP wire protocol of cmd/prodb:
// binary with pipelining, gob as negotiated fallback). It blocks. For
// shutdown control, use NetServer instead.
func (s *Server) Serve(ln net.Listener) error {
	if err := s.NetServer(ServeOptions{}).Serve(ln); err != nil && err != wire.ErrServerClosed {
		return fmt.Errorf("repro: serve: %w", err)
	}
	return nil
}

// Stats returns a snapshot of the serving-layer counters: connection churn,
// requests served, and request latency quantiles.
func (s *Server) Stats() metrics.ServerSnapshot { return s.stats.Snapshot() }

// IndexStats describes the server-side R*-tree, measured against a pinned
// snapshot so it is safe to call while updates are streaming in.
func (s *Server) IndexStats() rtree.Stats {
	var st rtree.Stats
	s.inner.View(func(t *rtree.Tree, _ uint64) { st = t.Stats() })
	return st
}

// ClientConfig parameterizes NewClient.
type ClientConfig struct {
	// ID distinguishes clients for per-client adaptive state; default 1.
	ID uint32
	// CacheBytes is the proactive cache capacity. Required.
	CacheBytes int
	// Policy is the replacement scheme; default GRD3.
	Policy Policy
	// FMRPeriod is the feedback cadence in queries; default 50.
	FMRPeriod int
	// BandwidthBps models the wireless channel; default 384 kbps.
	BandwidthBps float64
	// LatencySec is the fixed per-message latency; default 0.
	LatencySec float64
}

// Client is a proactive-caching mobile client.
type Client struct {
	inner *core.Client
}

// NewClient connects a proactive-caching client to a server via transport.
// It performs a catalog round trip to learn the index root.
func NewClient(t Transport, cfg ClientConfig) (*Client, error) {
	if cfg.CacheBytes <= 0 {
		return nil, fmt.Errorf("repro: ClientConfig.CacheBytes must be positive")
	}
	if cfg.ID == 0 {
		cfg.ID = 1
	}
	if cfg.Policy == 0 {
		cfg.Policy = GRD3
	}
	if cfg.FMRPeriod <= 0 {
		cfg.FMRPeriod = 50
	}
	ch := wire.DefaultChannel()
	if cfg.BandwidthBps > 0 {
		ch.BytesPerSec = cfg.BandwidthBps / 8
	}
	ch.Latency = cfg.LatencySec

	cat, err := t.RoundTrip(&wire.Request{Client: wire.ClientID(cfg.ID), Catalog: true})
	if err != nil {
		return nil, fmt.Errorf("repro: catalog: %w", err)
	}
	sizes := wire.DefaultSizeModel()
	cache := core.NewCache(cfg.CacheBytes, cfg.Policy, sizes)
	inner := core.NewClient(core.ClientConfig{
		ID:        wire.ClientID(cfg.ID),
		Root:      query.NodeRef(cat.RootID, cat.RootMBR),
		Sizes:     sizes,
		Channel:   ch,
		FMRPeriod: cfg.FMRPeriod,
	}, cache, t)
	return &Client{inner: inner}, nil
}

// Query processes one spatial query: local execution against the proactive
// cache, a remainder round trip when needed, and cache integration.
func (c *Client) Query(q Query) (Report, error) { return c.inner.Query(q) }

// SetPosition updates the client's location (used by the FAR policy).
func (c *Client) SetPosition(p Point) { c.inner.SetPosition(p) }

// Sync pulls the server's invalidation report without running a query — a
// cheap consistency heartbeat under server updates. It returns the number
// of cache items dropped.
func (c *Client) Sync() (int, error) { return c.inner.Sync() }

// CacheUsed returns the occupied cache bytes.
func (c *Client) CacheUsed() int { return c.inner.Cache().Used() }

// CacheIndexBytes returns the bytes of cached index (vs objects).
func (c *Client) CacheIndexBytes() int { return c.inner.Cache().IndexBytes() }

// Dial connects to a cmd/prodb server over TCP and returns a Transport.
// It negotiates the compact binary protocol (pipelined: concurrent
// RoundTrip calls share the connection with many requests in flight) and
// falls back to the serial gob protocol when the server predates the binary
// codec. The returned Transport is safe for concurrent use either way.
func Dial(addr string) (Transport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("repro: dial %s: %w", addr, err)
	}
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	bc, err := wire.NewBinaryClientConn(conn)
	if err == nil {
		conn.SetDeadline(time.Time{})
		return bc, nil
	}
	// A gob-only server chokes on the binary preamble and hangs up, which
	// surfaces here as a handshake error; redial and speak gob.
	conn.Close()
	return DialGob(addr)
}

// DialGob connects with the serial gob protocol, skipping binary
// negotiation. Useful against old servers or for comparing the two paths;
// new code should prefer Dial.
func DialGob(addr string) (Transport, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("repro: dial %s: %w", addr, err)
	}
	return wire.NewClientConn(conn), nil
}

// GenerateNE and GenerateRD expose the synthetic datasets used by the
// experiments (see internal/dataset for the substitution rationale).
func GenerateNE(n int, seed int64) []Object {
	return dataset.GenerateNE(dataset.Params{N: n, Seed: seed}).Objects
}

// GenerateRD generates the road-segment dataset.
func GenerateRD(n int, seed int64) []Object {
	return dataset.GenerateRD(dataset.Params{N: n, Seed: seed}).Objects
}
