#!/usr/bin/env bash
# bench.sh — run the serving hot-path benchmarks and emit a JSON snapshot.
#
# Usage:
#   scripts/bench.sh                  # print JSON to stdout
#   scripts/bench.sh BENCH_4.json     # write the snapshot for PR 4
#   BENCHTIME=3s scripts/bench.sh     # longer runs for quieter numbers
#   BENCHCOUNT=3 scripts/bench.sh     # run each benchmark N times, snapshot
#                                     # the per-benchmark median (quietest
#                                     # option on shared hardware)
#
# The tracked benchmarks are the per-request allocation budget of the warm
# serving path (docs/PERF.md). Compare a fresh run against the newest
# checked-in BENCH_*.json before merging a PR that touches the query engine,
# the R*-tree, or the server: allocs/op is expected to stay at its floor and
# ns/op should not regress materially.
#
# After the benchmarks, the open-loop scenario matrix (cmd/proload,
# docs/LOAD.md) runs against a 4-shard in-process cluster and its scenario
# reports are merged into the snapshot under "load", so SLO-level numbers
# (achieved QPS, p99/p999, shed/error counts per scenario) are tracked
# across PRs alongside the microbenchmarks. Set PROLOAD_SKIP=1 to emit a
# benchmarks-only snapshot. When writing BENCH_<pr>.json, each scenario's
# p99, achieved QPS, and error count are also compared against the previous
# snapshot's load section, warning beyond LOAD_WARN_PCT percent (default 25).
#
# Regression gate: when writing BENCH_<pr>.json, the fresh numbers are
# diffed against the newest previously checked-in BENCH_*.json. Any tracked
# benchmark whose ns/op regressed by more than GATE_PCT percent (default
# 15) fails the run after the snapshot is written, so the numbers are still
# there to look at. Set BENCH_GATE_SKIP=1 to write a snapshot without
# gating (e.g. when switching benchmark machines — absolute ns/op is
# hardware-bound, see docs/PERF.md).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-}"
BENCHTIME="${BENCHTIME:-1s}"
BENCHCOUNT="${BENCHCOUNT:-1}"
PATTERN='^(BenchmarkServerExecuteParallel|BenchmarkWarmRangeExecute|BenchmarkWarmKNNExecute|BenchmarkWarmJoinExecute|BenchmarkAPROBuild|BenchmarkMixedQueryBaseline|BenchmarkMixedQueryUnderUpdates|BenchmarkUpdateThroughput|BenchmarkClusterRange|BenchmarkClusterKNN)$'

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" -count "$BENCHCOUNT" . | tee "$RAW" >&2

# With BENCHCOUNT > 1 each benchmark reports several lines; the snapshot
# records the per-benchmark median of each column, which shrugs off a
# single noisy draw on shared hardware.
JSON="$(awk -v go_version="$(go version | awk '{print $3}')" -v benchtime="$BENCHTIME" '
function fmtnum(v) { return (v == int(v)) ? sprintf("%d", v) : sprintf("%g", v) }
function median(arr, name,    m, i, k, v, tmp) {
    m = cnt[name]
    for (i = 1; i <= m; i++) tmp[i] = arr[name, i]
    for (i = 2; i <= m; i++) {
        v = tmp[i]
        for (k = i - 1; k >= 1 && tmp[k] > v; k--) tmp[k + 1] = tmp[k]
        tmp[k + 1] = v
    }
    return tmp[int((m + 1) / 2)]
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (!(name in cnt)) order[++n] = name
    cnt[name]++
    nsv[name, cnt[name]] = ns + 0
    bv[name, cnt[name]] = bytes + 0
    av[name, cnt[name]] = allocs + 0
}
END {
    printf "{\n  \"go\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": {\n", go_version, benchtime
    for (j = 1; j <= n; j++) {
        name = order[j]
        printf "    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}%s\n", \
            name, fmtnum(median(nsv, name)), fmtnum(median(bv, name)), \
            fmtnum(median(av, name)), (j < n) ? "," : ""
    }
    printf "  }\n}\n"
}
' "$RAW")"

if [ "${PROLOAD_SKIP:-0}" != "1" ]; then
    PROLOAD_QPS="${PROLOAD_QPS:-1000}"
    PROLOAD_DURATION="${PROLOAD_DURATION:-2s}"
    EDGE_QPS="${EDGE_QPS:-1500}"
    EDGE_DURATION="${EDGE_DURATION:-3s}"
    LOADJSON="$(mktemp)"
    EDGEDIRJSON="$(mktemp)"
    EDGEJSON="$(mktemp)"
    trap 'rm -f "$RAW" "$LOADJSON" "$EDGEDIRJSON" "$EDGEJSON"' EXIT
    go run ./cmd/proload -inprocess 4 -scenario all \
        -qps "$PROLOAD_QPS" -duration "$PROLOAD_DURATION" \
        -users 1000000 -workers 4 -json "$LOADJSON" >&2
    # The benchmark JSON ends with a lone "}"; splice the scenario report
    # in as a sibling "load" key.
    JSON="$(printf '%s' "$JSON" | sed '$d'; printf '  ,"load": '; cat "$LOADJSON"; printf '}\n')"
    # Edge A/B over a real wire hop: the hotspot scenarios run twice against
    # the loopback TCP serving layer (-nethop) — once with workers dialing
    # the cluster directly ("load_edge_direct"), once through the edge cache
    # tier ("load_edge"), back to back at identical elevated settings
    # (docs/EDGE.md). Comparing a scenario across the two keys is the
    # tracked edge-vs-direct record: the edge_hits/edge_forwards counters
    # give the upstream query-volume cut, and client-observed p99 should
    # improve on the edge side because cache hits never cross the wire.
    go run ./cmd/proload -inprocess 4 -nethop -scenario flash-crowd,edge-hotspot \
        -qps "$EDGE_QPS" -duration "$EDGE_DURATION" \
        -users 1000000 -workers 4 -json "$EDGEDIRJSON" >&2
    JSON="$(printf '%s' "$JSON" | sed '$d'; printf '  ,"load_edge_direct": '; cat "$EDGEDIRJSON"; printf '}\n')"
    go run ./cmd/proload -inprocess 4 -nethop -edge -scenario flash-crowd,edge-hotspot \
        -qps "$EDGE_QPS" -duration "$EDGE_DURATION" \
        -users 1000000 -workers 4 -json "$EDGEJSON" >&2
    JSON="$(printf '%s' "$JSON" | sed '$d'; printf '  ,"load_edge": '; cat "$EDGEJSON"; printf '}\n')"
    # Elastic A/B on the skewed-growth workload: shard-skew runs twice past
    # the hot shard's single-writer knee — once on the static 4-shard
    # cluster ("load_skew_static"), once with the load-driven rebalancer
    # splitting the hot shard online ("load_skew_elastic"), docs/ELASTIC.md.
    # The seed pins the hotspot inside one KD cell so the skew is real; the
    # static run is expected to miss the scenario envelope (achieved QPS
    # sags as the hot writer backlogs) and the elastic run to hold it. The
    # p99 comparison between the two keys is gated below.
    SKEW_QPS="${SKEW_QPS:-600}"
    SKEW_DURATION="${SKEW_DURATION:-20s}"
    SKEW_SEED="${SKEW_SEED:-2}"
    SKEWSTATICJSON="$(mktemp)"
    SKEWELASTICJSON="$(mktemp)"
    trap 'rm -f "$RAW" "$LOADJSON" "$EDGEDIRJSON" "$EDGEJSON" "$SKEWSTATICJSON" "$SKEWELASTICJSON"' EXIT
    go run ./cmd/proload -inprocess 4 -scenario shard-skew \
        -qps "$SKEW_QPS" -duration "$SKEW_DURATION" -seed "$SKEW_SEED" \
        -users 1000000 -workers 96 -json "$SKEWSTATICJSON" >&2
    JSON="$(printf '%s' "$JSON" | sed '$d'; printf '  ,"load_skew_static": '; cat "$SKEWSTATICJSON"; printf '}\n')"
    go run ./cmd/proload -inprocess 4 -scenario shard-skew -elastic -split-objects 5500 \
        -qps "$SKEW_QPS" -duration "$SKEW_DURATION" -seed "$SKEW_SEED" \
        -users 1000000 -workers 96 -json "$SKEWELASTICJSON" >&2
    JSON="$(printf '%s' "$JSON" | sed '$d'; printf '  ,"load_skew_elastic": '; cat "$SKEWELASTICJSON"; printf '}\n')"
fi

if [ -n "$OUT" ]; then
    printf '%s' "$JSON" > "$OUT"
    echo "wrote $OUT" >&2
else
    printf '%s' "$JSON"
fi

# --- load-scenario SLO comparison ------------------------------------------
# Compare each scenario's SLO metrics (p99 latency, achieved QPS, error
# count) in the "load" section against the newest previous snapshot: warn
# on material movement (p99 up or achieved QPS down by more than
# LOAD_WARN_PCT percent, default 25, or errors growing at all) and FAIL the
# run when the drift crosses LOAD_GATE_PCT percent (default 50). Scenario
# numbers on shared CI hardware are noisier than the microbenchmark floor,
# so the hard threshold sits well above the warning one and p99 movements
# smaller than LOAD_FLOOR_US microseconds absolute (default 10000) are
# ignored outright; set SLO_GATE_SKIP=1 to record a snapshot without the
# hard gate (e.g. when switching benchmark machines) — warnings still print.
if [ -n "$OUT" ] && [ "${PROLOAD_SKIP:-0}" != "1" ]; then
    PREV="$(ls BENCH_*.json 2>/dev/null | grep -vFx "$OUT" | sort -t_ -k2 -n | tail -1 || true)"
    if [ -z "$PREV" ]; then
        echo "load: no previous BENCH_*.json snapshot, skipping SLO comparison" >&2
    else
        LOAD_WARN_PCT="${LOAD_WARN_PCT:-25}"
        LOAD_GATE_PCT="${LOAD_GATE_PCT:-50}"
        # Percentage drift on a 2ms p99 is dominated by scheduler/GC jitter:
        # a single late goroutine wakeup doubles it. Only treat a p99
        # regression as signal when the absolute change also clears
        # LOAD_FLOOR_US; real collapses (a scenario going from ms to
        # hundreds of ms) sail past the floor.
        LOAD_FLOOR_US="${LOAD_FLOOR_US:-10000}"
        echo "load: comparing scenario SLO metrics in $OUT against $PREV (warn beyond ${LOAD_WARN_PCT}%, fail beyond ${LOAD_GATE_PCT}%, p99 deltas under ${LOAD_FLOOR_US}us ignored)" >&2
        if ! awk -v pct="$LOAD_WARN_PCT" -v gatepct="$LOAD_GATE_PCT" -v floorus="$LOAD_FLOOR_US" '
            function num(s) { sub(/.*: /, "", s); sub(/,.*/, "", s); return s + 0 }
            function rec(s, k, v) {
                if (s == "") return
                if (FILENAME == ARGV[1]) prev[s, k] = v
                else cur[s, k] = v
            }
            /"load_edge_direct":/  { sec = "edgedirect:" }
            /"load_edge":/         { sec = "edge:" }
            /"load_skew_static":/  { sec = "skewstatic:" }
            /"load_skew_elastic":/ { sec = "skewelastic:" }
            /"load":/              { sec = "" }
            /^[[:space:]]*"scenario":/ {
                s = $0; sub(/.*"scenario": "/, "", s); sub(/".*/, "", s); scen = sec s
            }
            /^[[:space:]]*"achieved_qps":/ { rec(scen, "qps", num($0)) }
            /^[[:space:]]*"p99_us":/       { rec(scen, "p99", num($0)) }
            /^[[:space:]]*"errors":/       { rec(scen, "err", num($0)) }
            END {
                warned = 0; fail = 0
                for (key in cur) {
                    split(key, a, SUBSEP); s = a[1]; k = a[2]
                    if (!((s, k) in prev)) continue
                    p = prev[s, k]; c = cur[s, k]
                    if (k == "err") {
                        if (c > p) {
                            printf "load: FAIL %s: errors %.0f -> %.0f\n", s, p, c
                            warned = 1; fail = 1
                        }
                        continue
                    }
                    if (p <= 0) continue
                    delta = (c - p) / p * 100
                    if (k == "p99" && delta > pct && c - p > floorus) {
                        printf "load: %s %s: p99 %.0fus -> %.0fus (%+.1f%%)\n", (delta > gatepct) ? "FAIL" : "WARN", s, p, c, delta
                        warned = 1; if (delta > gatepct) fail = 1
                    }
                    if (k == "qps" && delta < -pct) {
                        printf "load: %s %s: achieved qps %.0f -> %.0f (%+.1f%%)\n", (delta < -gatepct) ? "FAIL" : "WARN", s, p, c, delta
                        warned = 1; if (delta < -gatepct) fail = 1
                    }
                }
                if (!warned) printf "load: scenario SLO metrics within %s%% of the previous snapshot\n", pct
                exit fail
            }
        ' "$PREV" "$OUT" >&2; then
            if [ "${SLO_GATE_SKIP:-0}" = "1" ]; then
                echo "load: SLO regression beyond ${LOAD_GATE_PCT}% ignored (SLO_GATE_SKIP=1)" >&2
            else
                echo "load: scenario SLO regression beyond ${LOAD_GATE_PCT}% — investigate before merging (SLO_GATE_SKIP=1 to override)" >&2
                exit 1
            fi
        fi
    fi
fi

# --- elastic A/B gate ------------------------------------------------------
# The shard-skew scenario must do better WITH the rebalancer than without:
# the elastic run's p99 has to beat the static run's in this very snapshot
# (docs/ELASTIC.md). This is an absolute within-snapshot comparison, so it
# holds on any hardware; SLO_GATE_SKIP=1 also bypasses it.
if [ -n "$OUT" ] && [ "${PROLOAD_SKIP:-0}" != "1" ]; then
    if ! awk '
        /"load_skew_static":/  { sec = "static" }
        /"load_skew_elastic":/ { sec = "elastic" }
        /^[[:space:]]*"p99_us":/ {
            v = $0; sub(/.*: /, "", v); sub(/,.*/, "", v)
            if (sec != "") p99[sec] = v + 0
            sec = ""
        }
        END {
            if (!("static" in p99) || !("elastic" in p99)) {
                print "elastic: A/B sections missing from snapshot, skipping"
                exit 0
            }
            printf "elastic: shard-skew p99 static %.0fus vs elastic %.0fus\n", p99["static"], p99["elastic"]
            if (p99["elastic"] >= p99["static"]) {
                print "elastic: FAIL rebalancer did not beat the static cluster"
                exit 1
            }
        }
    ' "$OUT" >&2; then
        if [ "${SLO_GATE_SKIP:-0}" = "1" ]; then
            echo "elastic: A/B regression ignored (SLO_GATE_SKIP=1)" >&2
        else
            echo "elastic: shard-skew with the rebalancer must beat static-N p99 (SLO_GATE_SKIP=1 to override)" >&2
            exit 1
        fi
    fi
fi

# --- regression gate -------------------------------------------------------
# Compare ns/op per benchmark against the newest previous snapshot.
if [ -n "$OUT" ] && [ "${BENCH_GATE_SKIP:-0}" != "1" ]; then
    PREV="$(ls BENCH_*.json 2>/dev/null | grep -vFx "$OUT" | sort -t_ -k2 -n | tail -1 || true)"
    if [ -z "$PREV" ]; then
        echo "gate: no previous BENCH_*.json snapshot, skipping" >&2
    else
        GATE_PCT="${GATE_PCT:-15}"
        echo "gate: comparing $OUT against $PREV (fail above +${GATE_PCT}% ns/op)" >&2
        if ! awk -v pct="$GATE_PCT" '
            # Benchmark lines in our snapshots look like:
            #   "BenchmarkName/case=x": {"ns_op": 1234, ...}
            # The "load" section carries no ns_op keys, so this pattern
            # only matches the tracked benchmark set.
            match($0, /"Benchmark[^"]*": \{"ns_op": [0-9.]+/) {
                s = substr($0, RSTART, RLENGTH)
                name = s; sub(/^"/, "", name); sub(/": .*/, "", name)
                ns = s; sub(/.*"ns_op": /, "", ns)
                if (FILENAME == ARGV[1]) prev[name] = ns + 0
                else cur[name] = ns + 0
            }
            END {
                fail = 0
                for (name in cur) {
                    if (!(name in prev) || prev[name] <= 0) continue
                    delta = (cur[name] - prev[name]) / prev[name] * 100
                    if (delta > pct) {
                        printf "gate: FAIL %s: %.0f -> %.0f ns/op (%+.1f%%)\n", name, prev[name], cur[name], delta
                        fail = 1
                    } else {
                        printf "gate: ok   %s: %.0f -> %.0f ns/op (%+.1f%%)\n", name, prev[name], cur[name], delta
                    }
                }
                exit fail
            }
        ' "$PREV" "$OUT" >&2; then
            echo "gate: ns/op regression beyond ${GATE_PCT}% — investigate before merging (BENCH_GATE_SKIP=1 to override)" >&2
            exit 1
        fi
    fi
fi
