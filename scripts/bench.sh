#!/usr/bin/env bash
# bench.sh — run the serving hot-path benchmarks and emit a JSON snapshot.
#
# Usage:
#   scripts/bench.sh                  # print JSON to stdout
#   scripts/bench.sh BENCH_4.json     # write the snapshot for PR 4
#   BENCHTIME=3s scripts/bench.sh     # longer runs for quieter numbers
#
# The tracked benchmarks are the per-request allocation budget of the warm
# serving path (docs/PERF.md). Compare a fresh run against the newest
# checked-in BENCH_*.json before merging a PR that touches the query engine,
# the R*-tree, or the server: allocs/op is expected to stay at its floor and
# ns/op should not regress materially.
#
# After the benchmarks, the open-loop scenario matrix (cmd/proload,
# docs/LOAD.md) runs against a 4-shard in-process cluster and its scenario
# reports are merged into the snapshot under "load", so SLO-level numbers
# (achieved QPS, p99/p999, shed/error counts per scenario) are tracked
# across PRs alongside the microbenchmarks. Set PROLOAD_SKIP=1 to emit a
# benchmarks-only snapshot.
#
# Regression gate: when writing BENCH_<pr>.json, the fresh numbers are
# diffed against the newest previously checked-in BENCH_*.json. Any tracked
# benchmark whose ns/op regressed by more than GATE_PCT percent (default
# 15) fails the run after the snapshot is written, so the numbers are still
# there to look at. Set BENCH_GATE_SKIP=1 to write a snapshot without
# gating (e.g. when switching benchmark machines — absolute ns/op is
# hardware-bound, see docs/PERF.md).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-}"
BENCHTIME="${BENCHTIME:-1s}"
PATTERN='^(BenchmarkServerExecuteParallel|BenchmarkWarmRangeExecute|BenchmarkWarmKNNExecute|BenchmarkWarmJoinExecute|BenchmarkAPROBuild|BenchmarkMixedQueryBaseline|BenchmarkMixedQueryUnderUpdates|BenchmarkUpdateThroughput|BenchmarkClusterRange|BenchmarkClusterKNN)$'

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$PATTERN" -benchtime "$BENCHTIME" . | tee "$RAW" >&2

JSON="$(awk -v go_version="$(go version | awk '{print $3}')" -v benchtime="$BENCHTIME" '
BEGIN {
    printf "{\n  \"go\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": {\n", go_version, benchtime
    first = 1
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "    \"%s\": {\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", name, ns, bytes, allocs
}
END { printf "\n  }\n}\n" }
' "$RAW")"

if [ "${PROLOAD_SKIP:-0}" != "1" ]; then
    PROLOAD_QPS="${PROLOAD_QPS:-1000}"
    PROLOAD_DURATION="${PROLOAD_DURATION:-2s}"
    LOADJSON="$(mktemp)"
    trap 'rm -f "$RAW" "$LOADJSON"' EXIT
    go run ./cmd/proload -inprocess 4 -scenario all \
        -qps "$PROLOAD_QPS" -duration "$PROLOAD_DURATION" \
        -users 1000000 -workers 4 -json "$LOADJSON" >&2
    # The benchmark JSON ends with a lone "}"; splice the scenario report
    # in as a sibling "load" key.
    JSON="$(printf '%s' "$JSON" | sed '$d'; printf '  ,"load": '; cat "$LOADJSON"; printf '}\n')"
fi

if [ -n "$OUT" ]; then
    printf '%s' "$JSON" > "$OUT"
    echo "wrote $OUT" >&2
else
    printf '%s' "$JSON"
fi

# --- regression gate -------------------------------------------------------
# Compare ns/op per benchmark against the newest previous snapshot.
if [ -n "$OUT" ] && [ "${BENCH_GATE_SKIP:-0}" != "1" ]; then
    PREV="$(ls BENCH_*.json 2>/dev/null | grep -vFx "$OUT" | sort -t_ -k2 -n | tail -1 || true)"
    if [ -z "$PREV" ]; then
        echo "gate: no previous BENCH_*.json snapshot, skipping" >&2
    else
        GATE_PCT="${GATE_PCT:-15}"
        echo "gate: comparing $OUT against $PREV (fail above +${GATE_PCT}% ns/op)" >&2
        if ! awk -v pct="$GATE_PCT" '
            # Benchmark lines in our snapshots look like:
            #   "BenchmarkName/case=x": {"ns_op": 1234, ...}
            # The "load" section carries no ns_op keys, so this pattern
            # only matches the tracked benchmark set.
            match($0, /"Benchmark[^"]*": \{"ns_op": [0-9.]+/) {
                s = substr($0, RSTART, RLENGTH)
                name = s; sub(/^"/, "", name); sub(/": .*/, "", name)
                ns = s; sub(/.*"ns_op": /, "", ns)
                if (FILENAME == ARGV[1]) prev[name] = ns + 0
                else cur[name] = ns + 0
            }
            END {
                fail = 0
                for (name in cur) {
                    if (!(name in prev) || prev[name] <= 0) continue
                    delta = (cur[name] - prev[name]) / prev[name] * 100
                    if (delta > pct) {
                        printf "gate: FAIL %s: %.0f -> %.0f ns/op (%+.1f%%)\n", name, prev[name], cur[name], delta
                        fail = 1
                    } else {
                        printf "gate: ok   %s: %.0f -> %.0f ns/op (%+.1f%%)\n", name, prev[name], cur[name], delta
                    }
                }
                exit fail
            }
        ' "$PREV" "$OUT" >&2; then
            echo "gate: ns/op regression beyond ${GATE_PCT}% — investigate before merging (BENCH_GATE_SKIP=1 to override)" >&2
            exit 1
        fi
    fi
fi
