package repro

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/edge"
	"repro/internal/elastic"
	"repro/internal/metrics"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/wire"
)

// ClusterConfig parameterizes NewClusterServer.
type ClusterConfig struct {
	// Shards is the number of spatial shards; default 4, max
	// cluster.MaxShards (255).
	Shards int
	// Form, Sensitivity, PageBytes, BulkFill apply to every shard exactly
	// as in ServerConfig.
	Form        IndexForm
	Sensitivity float64
	PageBytes   int
	BulkFill    float64

	// WALDir enables per-shard durability: shard s write-ahead-logs every
	// applied update batch under WALDir/shard-<s> and checkpoints its
	// packed image periodically, and Kill/Restart crash-recovers shards
	// from those logs (docs/DURABILITY.md). Empty disables durability.
	WALDir string
	// WALNoSync skips the per-batch fsync. For harnesses and CI on
	// throwaway directories only — a crash can lose unsynced batches.
	WALNoSync bool
	// Replicas runs one warm standby per shard, fed the primary's acked
	// batches, which the router promotes when the primary stays dead.
	Replicas bool
	// RetryAttempts, RetryBackoff and FailThreshold tune the router's
	// transient-failure retry and its failover trigger (zero = defaults;
	// see cluster.Config).
	RetryAttempts int
	RetryBackoff  time.Duration
	FailThreshold int
}

// ClusterServer is a spatially sharded spatial database behind one
// endpoint: the dataset is KD-partitioned into N in-process single-node
// servers, and a cluster.Router serves the whole wire protocol over them —
// scatter-gathering queries, routing updates to owning shards, and
// re-keying node ids and epochs into the virtual namespace clients see —
// so proactive-caching clients drive it exactly like a single Server
// (docs/CLUSTER.md). Start one with prodb -cluster N.
type ClusterServer struct {
	cluster       *cluster.InProcess
	stats         metrics.ServerStats
	remoteUpdates atomic.Bool

	// edgeMu guards edges: every edge tier built over this cluster, so
	// topology changes can rebind their partition cells (edge.Repartition).
	edgeMu sync.Mutex
	edges  []*edge.Edge
}

// NewClusterServer partitions the objects into cfg.Shards spatial shards,
// indexes each, and stands up the scatter-gather router over them. Every
// shard must receive at least one object; datasets smaller than the shard
// count should shard less.
func NewClusterServer(objects []Object, cfg ClusterConfig) (*ClusterServer, error) {
	sizes := make(map[ObjectID]int, len(objects))
	for _, o := range objects {
		sizes[o.ID] = o.Size
	}
	pageBytes := cfg.PageBytes
	if pageBytes <= 0 {
		pageBytes = 4096
	}
	p, err := cluster.NewInProcess(objects, cluster.InProcessConfig{
		Shards:   cfg.Shards,
		Tree:     rtree.Params{MaxEntries: pageBytes / wire.DefaultSizeModel().Entry},
		BulkFill: cfg.BulkFill,
		Server: server.Config{
			Form:        cfg.Form,
			Sensitivity: cfg.Sensitivity,
		},
		Sizer:         func(id ObjectID) int { return sizes[id] },
		WALDir:        cfg.WALDir,
		WAL:           wal.Options{NoSync: cfg.WALNoSync},
		Replicas:      cfg.Replicas,
		RetryAttempts: cfg.RetryAttempts,
		RetryBackoff:  cfg.RetryBackoff,
		FailThreshold: cfg.FailThreshold,
	})
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	cs := &ClusterServer{cluster: p}
	cs.remoteUpdates.Store(true)
	return cs, nil
}

// SetRemoteUpdates enables or disables wire-level batched updates, exactly
// like Server.SetRemoteUpdates. Enabled by default.
func (cs *ClusterServer) SetRemoteUpdates(on bool) { cs.remoteUpdates.Store(on) }

// Handler returns the cluster's request handler: queries scatter-gather,
// updates route to owning shards.
func (cs *ClusterServer) Handler() wire.Handler {
	return func(req *wire.Request) (*wire.Response, error) {
		if len(req.Updates) > 0 && !cs.remoteUpdates.Load() {
			return nil, ErrUpdatesDisabled
		}
		return cs.cluster.Router.RoundTrip(req)
	}
}

// Transport returns an in-process transport to the cluster; it is safe for
// concurrent use.
func (cs *ClusterServer) Transport() Transport {
	return wire.TransportFunc(cs.Handler())
}

// NetServer builds the concurrent TCP serving layer over the cluster, with
// the same options and semantics as Server.NetServer.
func (cs *ClusterServer) NetServer(opts ServeOptions) *wire.NetServer {
	return wire.NewNetServer(cs.Handler(), wire.ServeConfig{
		MaxConns:    opts.MaxConns,
		MaxInflight: opts.MaxInflight,
		MaxPipeline: opts.MaxPipeline,
		ReadTimeout: opts.ReadTimeout,
		Stats:       &cs.stats,
		Release:     cs.cluster.Router.ReleaseResponse,
	})
}

// Serve answers clients on a listener with default options until the
// listener closes. It blocks; use NetServer for shutdown control.
func (cs *ClusterServer) Serve(ln net.Listener) error {
	if err := cs.NetServer(ServeOptions{}).Serve(ln); err != nil && err != wire.ErrServerClosed {
		return fmt.Errorf("repro: cluster serve: %w", err)
	}
	return nil
}

// Stats returns the serving-layer counters (connections, requests,
// latency quantiles) of the cluster endpoint.
func (cs *ClusterServer) Stats() metrics.ServerSnapshot { return cs.stats.Snapshot() }

// ClusterStats returns the router's scatter-gather counters: fan-out,
// single-shard fast-path hits, kNN re-issues, cross-shard join scans, and
// per-shard sub-query totals.
func (cs *ClusterServer) ClusterStats() metrics.ClusterSnapshot {
	return cs.cluster.Router.Stats().Snapshot()
}

// ReleaseResponse recycles a response obtained from Handler or Transport
// into the router's pool (the serving layer does this automatically).
func (cs *ClusterServer) ReleaseResponse(resp *wire.Response) {
	cs.cluster.Router.ReleaseResponse(resp)
}

// Kill crash-stops one shard (chaos testing): its transport fails
// immediately and the router rides it out via retry, replica promotion, or
// redial after Restart. Requires ClusterConfig.WALDir for Restart to work.
func (cs *ClusterServer) Kill(shard int) { cs.cluster.Kill(shard) }

// Restart recovers a killed shard from its WAL (checkpoint + tail replay)
// and returns it to service; the router's next redial binds to it.
func (cs *ClusterServer) Restart(shard int) error { return cs.cluster.Restart(shard) }

// Shards returns the shard slot count, dead slots included. Splits grow it;
// merges retire slots without renumbering, so it never shrinks. LiveShards
// lists the slots that currently own a region.
func (cs *ClusterServer) Shards() int { return cs.cluster.Router.Shards() }

// LiveShards returns the ordinals of the slots currently owning a region.
func (cs *ClusterServer) LiveShards() []int { return cs.cluster.LiveShards() }

// SiblingOf returns the slot sharing s's KD parent when both are leaves —
// the only pair MergeShards accepts.
func (cs *ClusterServer) SiblingOf(s int) (int, bool) { return cs.cluster.SiblingOf(s) }

// SplitShard splits shard s online: the split plane re-runs KD partitioning
// over s's live objects, the upper half bulk-transfers to a freshly spawned
// shard as a packed image plus update tail, and the router cuts over behind
// an epoch fence — clients keep their caches modulo the crossing
// invalidation window (docs/ELASTIC.md). Any edge tiers built by Edge are
// repartitioned onto the new cut.
func (cs *ClusterServer) SplitShard(s int) error {
	if err := cs.cluster.SplitShard(s); err != nil {
		return fmt.Errorf("repro: %w", err)
	}
	cs.repartitionEdges()
	return nil
}

// MergeShards folds shard t back into its KD sibling s and retires t's
// slot. Merging re-keys every object in t, so it flushes all client caches
// (FlushAll on their next catalog); the rebalancer only merges clearly cold
// pairs for this reason.
func (cs *ClusterServer) MergeShards(s, t int) error {
	if err := cs.cluster.MergeShards(s, t); err != nil {
		return fmt.Errorf("repro: %w", err)
	}
	cs.repartitionEdges()
	return nil
}

// repartitionEdges rebinds every edge tier to the current partition after a
// topology change: hotness cells follow the new cut and entries admitted
// under a boundary that moved are dropped.
func (cs *ClusterServer) repartitionEdges() {
	part := cs.cluster.Router.Partition()
	cs.edgeMu.Lock()
	edges := append([]*edge.Edge(nil), cs.edges...)
	cs.edgeMu.Unlock()
	for _, e := range edges {
		_ = e.Repartition(part.Locate, part.Shards())
	}
}

// elasticView adapts the cluster facade to elastic.Cluster. It is a
// separate view because ClusterServer.Stats already names the serving-layer
// snapshot; the rebalancer needs the live router counters.
type elasticView struct{ cs *ClusterServer }

func (v elasticView) LiveShards() []int            { return v.cs.LiveShards() }
func (v elasticView) SiblingOf(s int) (int, bool)  { return v.cs.SiblingOf(s) }
func (v elasticView) SplitShard(s int) error       { return v.cs.SplitShard(s) }
func (v elasticView) MergeShards(s, t int) error   { return v.cs.MergeShards(s, t) }
func (v elasticView) Stats() *metrics.ClusterStats { return v.cs.cluster.Stats() }

// Elastic returns the topology surface the load-driven rebalancer drives
// (elastic.New): live slots, sibling pairs, online split/merge, and the
// router counters the policy reads. Operations through this view also
// repartition any edge tiers.
func (cs *ClusterServer) Elastic() elastic.Cluster { return elasticView{cs} }

// StartRebalancer runs a load-driven rebalancer over this cluster in a
// background goroutine: shards whose object count or sub-query rate crosses
// the split thresholds are split, cold sibling pairs are folded back
// (docs/ELASTIC.md). The returned stop function halts it; the Rebalancer is
// returned for its Splits/Merges counters.
func (cs *ClusterServer) StartRebalancer(cfg elastic.Config) (*elastic.Rebalancer, func(), error) {
	rb, err := elastic.New(cs.Elastic(), cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("repro: %w", err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		rb.Run(stop)
	}()
	return rb, func() { close(stop); <-done }, nil
}

// ShardObjects returns how many objects each shard owned at build time.
func (cs *ClusterServer) ShardObjects() []int {
	return append([]int(nil), cs.cluster.Counts...)
}

// Close stops every shard's background update writer, waiting for queued
// batches to be applied.
func (cs *ClusterServer) Close() { cs.cluster.Close() }

// EdgeOptions parameterizes an edge cache tier in front of the cluster;
// zero values take the edge package defaults.
type EdgeOptions struct {
	// ByteBudget caps the edge cache (SizeModel bytes; default 32 MiB).
	ByteBudget int
	// AdmitThreshold is the per-cell hotness admission bar and Window the
	// hotness window length in queries.
	AdmitThreshold float64
	Window         int
	// SyncInterval bounds staleness against writers that bypass the edge;
	// zero keeps the subscription purely evidence/update-driven (correct
	// whenever all updates flow through the edge).
	SyncInterval time.Duration
	// Upstream overrides the transport the edge forwards to; nil uses the
	// in-process router directly. A remote edge node sets this to a pool of
	// pipelined wire connections back to the router (edge.NewUpstreamPool),
	// keeping the cluster's partition geometry for its cache cells.
	Upstream Transport
	// ReleaseUpstream recycles forwarded responses the edge has finished
	// with; must match Upstream's allocation discipline. Nil with a non-nil
	// Upstream leaves responses to the garbage collector (correct for
	// decoded wire responses, which are not pooled).
	ReleaseUpstream func(*wire.Response)
}

// Edge builds an edge cache tier fronting this cluster: a wire.Transport
// that answers popular cold range/kNN queries from a snapshot-pinned cache
// keyed by the cluster's own KD partition cells and forwards everything
// else to the router (docs/EDGE.md). Responses returned by the edge are
// owned by the caller; ReleaseResponse still accepts them.
func (cs *ClusterServer) Edge(opts EdgeOptions) (*edge.Edge, error) {
	part := cs.cluster.Router.Partition()
	upstream, release := Transport(cs.Transport()), cs.ReleaseResponse
	if opts.Upstream != nil {
		upstream, release = opts.Upstream, opts.ReleaseUpstream
	}
	e, err := edge.New(edge.Config{
		Upstream:        upstream,
		Locate:          part.Locate,
		Cells:           part.Shards(),
		ReleaseUpstream: release,
		ByteBudget:      opts.ByteBudget,
		AdmitThreshold:  opts.AdmitThreshold,
		Window:          opts.Window,
		SyncInterval:    opts.SyncInterval,
	})
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	cs.edgeMu.Lock()
	cs.edges = append(cs.edges, e)
	cs.edgeMu.Unlock()
	return e, nil
}

// EdgeNetServer builds the TCP serving layer with an edge cache tier
// between the listener and the router: prodb -edge. Clients speak the
// identical wire protocol; popular queries never reach the shards.
func (cs *ClusterServer) EdgeNetServer(e *edge.Edge, opts ServeOptions) *wire.NetServer {
	handler := func(req *wire.Request) (*wire.Response, error) {
		if len(req.Updates) > 0 && !cs.remoteUpdates.Load() {
			return nil, ErrUpdatesDisabled
		}
		return e.RoundTrip(req)
	}
	return wire.NewNetServer(handler, wire.ServeConfig{
		MaxConns:    opts.MaxConns,
		MaxInflight: opts.MaxInflight,
		MaxPipeline: opts.MaxPipeline,
		ReadTimeout: opts.ReadTimeout,
		Stats:       &cs.stats,
		// Edge responses are caller-owned (hits are freshly built, misses
		// come from the router pool but were deep-copied on admission), so
		// recycling them into the router pool stays safe.
		Release: cs.cluster.Router.ReleaseResponse,
	})
}

// DialCluster connects to independently served shard processes (one prodb
// per shard) and returns a client-side scatter-gather transport over them:
// the cluster.Dial facade. The partition is derived from the shards' root
// rectangles (see cluster.Dial for the exactness caveat on updates);
// clusters served behind one prodb -cluster endpoint need plain Dial.
func DialCluster(addrs ...string) (Transport, error) {
	return cluster.Dial(addrs, cluster.Config{})
}
