package repro

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/wire"
)

// ClusterConfig parameterizes NewClusterServer.
type ClusterConfig struct {
	// Shards is the number of spatial shards; default 4, max
	// cluster.MaxShards (255).
	Shards int
	// Form, Sensitivity, PageBytes, BulkFill apply to every shard exactly
	// as in ServerConfig.
	Form        IndexForm
	Sensitivity float64
	PageBytes   int
	BulkFill    float64

	// WALDir enables per-shard durability: shard s write-ahead-logs every
	// applied update batch under WALDir/shard-<s> and checkpoints its
	// packed image periodically, and Kill/Restart crash-recovers shards
	// from those logs (docs/DURABILITY.md). Empty disables durability.
	WALDir string
	// WALNoSync skips the per-batch fsync. For harnesses and CI on
	// throwaway directories only — a crash can lose unsynced batches.
	WALNoSync bool
	// Replicas runs one warm standby per shard, fed the primary's acked
	// batches, which the router promotes when the primary stays dead.
	Replicas bool
	// RetryAttempts, RetryBackoff and FailThreshold tune the router's
	// transient-failure retry and its failover trigger (zero = defaults;
	// see cluster.Config).
	RetryAttempts int
	RetryBackoff  time.Duration
	FailThreshold int
}

// ClusterServer is a spatially sharded spatial database behind one
// endpoint: the dataset is KD-partitioned into N in-process single-node
// servers, and a cluster.Router serves the whole wire protocol over them —
// scatter-gathering queries, routing updates to owning shards, and
// re-keying node ids and epochs into the virtual namespace clients see —
// so proactive-caching clients drive it exactly like a single Server
// (docs/CLUSTER.md). Start one with prodb -cluster N.
type ClusterServer struct {
	cluster       *cluster.InProcess
	stats         metrics.ServerStats
	remoteUpdates atomic.Bool
}

// NewClusterServer partitions the objects into cfg.Shards spatial shards,
// indexes each, and stands up the scatter-gather router over them. Every
// shard must receive at least one object; datasets smaller than the shard
// count should shard less.
func NewClusterServer(objects []Object, cfg ClusterConfig) (*ClusterServer, error) {
	sizes := make(map[ObjectID]int, len(objects))
	for _, o := range objects {
		sizes[o.ID] = o.Size
	}
	pageBytes := cfg.PageBytes
	if pageBytes <= 0 {
		pageBytes = 4096
	}
	p, err := cluster.NewInProcess(objects, cluster.InProcessConfig{
		Shards:   cfg.Shards,
		Tree:     rtree.Params{MaxEntries: pageBytes / wire.DefaultSizeModel().Entry},
		BulkFill: cfg.BulkFill,
		Server: server.Config{
			Form:        cfg.Form,
			Sensitivity: cfg.Sensitivity,
		},
		Sizer:         func(id ObjectID) int { return sizes[id] },
		WALDir:        cfg.WALDir,
		WAL:           wal.Options{NoSync: cfg.WALNoSync},
		Replicas:      cfg.Replicas,
		RetryAttempts: cfg.RetryAttempts,
		RetryBackoff:  cfg.RetryBackoff,
		FailThreshold: cfg.FailThreshold,
	})
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	cs := &ClusterServer{cluster: p}
	cs.remoteUpdates.Store(true)
	return cs, nil
}

// SetRemoteUpdates enables or disables wire-level batched updates, exactly
// like Server.SetRemoteUpdates. Enabled by default.
func (cs *ClusterServer) SetRemoteUpdates(on bool) { cs.remoteUpdates.Store(on) }

// Handler returns the cluster's request handler: queries scatter-gather,
// updates route to owning shards.
func (cs *ClusterServer) Handler() wire.Handler {
	return func(req *wire.Request) (*wire.Response, error) {
		if len(req.Updates) > 0 && !cs.remoteUpdates.Load() {
			return nil, ErrUpdatesDisabled
		}
		return cs.cluster.Router.RoundTrip(req)
	}
}

// Transport returns an in-process transport to the cluster; it is safe for
// concurrent use.
func (cs *ClusterServer) Transport() Transport {
	return wire.TransportFunc(cs.Handler())
}

// NetServer builds the concurrent TCP serving layer over the cluster, with
// the same options and semantics as Server.NetServer.
func (cs *ClusterServer) NetServer(opts ServeOptions) *wire.NetServer {
	return wire.NewNetServer(cs.Handler(), wire.ServeConfig{
		MaxConns:    opts.MaxConns,
		MaxInflight: opts.MaxInflight,
		MaxPipeline: opts.MaxPipeline,
		ReadTimeout: opts.ReadTimeout,
		Stats:       &cs.stats,
		Release:     cs.cluster.Router.ReleaseResponse,
	})
}

// Serve answers clients on a listener with default options until the
// listener closes. It blocks; use NetServer for shutdown control.
func (cs *ClusterServer) Serve(ln net.Listener) error {
	if err := cs.NetServer(ServeOptions{}).Serve(ln); err != nil && err != wire.ErrServerClosed {
		return fmt.Errorf("repro: cluster serve: %w", err)
	}
	return nil
}

// Stats returns the serving-layer counters (connections, requests,
// latency quantiles) of the cluster endpoint.
func (cs *ClusterServer) Stats() metrics.ServerSnapshot { return cs.stats.Snapshot() }

// ClusterStats returns the router's scatter-gather counters: fan-out,
// single-shard fast-path hits, kNN re-issues, cross-shard join scans, and
// per-shard sub-query totals.
func (cs *ClusterServer) ClusterStats() metrics.ClusterSnapshot {
	return cs.cluster.Router.Stats().Snapshot()
}

// ReleaseResponse recycles a response obtained from Handler or Transport
// into the router's pool (the serving layer does this automatically).
func (cs *ClusterServer) ReleaseResponse(resp *wire.Response) {
	cs.cluster.Router.ReleaseResponse(resp)
}

// Kill crash-stops one shard (chaos testing): its transport fails
// immediately and the router rides it out via retry, replica promotion, or
// redial after Restart. Requires ClusterConfig.WALDir for Restart to work.
func (cs *ClusterServer) Kill(shard int) { cs.cluster.Kill(shard) }

// Restart recovers a killed shard from its WAL (checkpoint + tail replay)
// and returns it to service; the router's next redial binds to it.
func (cs *ClusterServer) Restart(shard int) error { return cs.cluster.Restart(shard) }

// Shards returns the cluster size.
func (cs *ClusterServer) Shards() int { return len(cs.cluster.Servers) }

// ShardObjects returns how many objects each shard owned at build time.
func (cs *ClusterServer) ShardObjects() []int {
	return append([]int(nil), cs.cluster.Counts...)
}

// Close stops every shard's background update writer, waiting for queued
// batches to be applied.
func (cs *ClusterServer) Close() { cs.cluster.Close() }

// DialCluster connects to independently served shard processes (one prodb
// per shard) and returns a client-side scatter-gather transport over them:
// the cluster.Dial facade. The partition is derived from the shards' root
// rectangles (see cluster.Dial for the exactness caveat on updates);
// clusters served behind one prodb -cluster endpoint need plain Dial.
func DialCluster(addrs ...string) (Transport, error) {
	return cluster.Dial(addrs, cluster.Config{})
}
