package pagecache

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/wire"
)

type world struct {
	items []rtree.Item
	sizes map[rtree.ObjectID]int
	srv   *server.Server
}

func newWorld(seed int64, n int) *world {
	r := rand.New(rand.NewSource(seed))
	w := &world{sizes: make(map[rtree.ObjectID]int)}
	for i := 0; i < n; i++ {
		id := rtree.ObjectID(i + 1)
		c := geom.Pt(r.Float64(), r.Float64())
		w.items = append(w.items, rtree.Item{Obj: id, MBR: geom.RectFromCenter(c, 0.005, 0.005)})
		w.sizes[id] = 1000
	}
	tree := rtree.BulkLoad(rtree.Params{MaxEntries: 16}, w.items, 0.7)
	w.srv = server.New(tree, func(id rtree.ObjectID) int { return w.sizes[id] }, server.Config{})
	return w
}

func (w *world) client(capacity int) *Client {
	return New(3, capacity, wire.TransportFunc(func(req *wire.Request) (*wire.Response, error) {
		resp, _ := w.srv.Execute(req)
		return resp, nil
	}), wire.SizeModel{}, wire.Channel{})
}

func (w *world) bruteRange(win geom.Rect) map[rtree.ObjectID]bool {
	out := make(map[rtree.ObjectID]bool)
	for _, it := range w.items {
		if it.MBR.Intersects(win) {
			out[it.Obj] = true
		}
	}
	return out
}

func TestCorrectness(t *testing.T) {
	w := newWorld(31, 600)
	cl := w.client(1 << 20)
	r := rand.New(rand.NewSource(32))
	for i := 0; i < 60; i++ {
		win := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.08, 0.08)
		rep, err := cl.Query(query.NewRange(win))
		if err != nil {
			t.Fatal(err)
		}
		want := w.bruteRange(win)
		if len(rep.Results) != len(want) {
			t.Fatalf("query %d: got %d, want %d", i, len(rep.Results), len(want))
		}
		for _, id := range rep.Results {
			if !want[id] {
				t.Fatalf("query %d: unexpected %d", i, id)
			}
		}
	}
}

func TestHitRateZeroButByteHitsGrow(t *testing.T) {
	w := newWorld(33, 600)
	cl := w.client(1 << 20)
	win := geom.RectFromCenter(geom.Pt(0.5, 0.5), 0.15, 0.15)

	first, err := cl.Query(query.NewRange(win))
	if err != nil {
		t.Fatal(err)
	}
	if first.SavedBytes != 0 || first.FalseMissBytes != 0 {
		t.Error("cold query should have no cached bytes")
	}
	second, err := cl.Query(query.NewRange(win))
	if err != nil {
		t.Fatal(err)
	}
	if second.SavedBytes != 0 {
		t.Error("page caching can never confirm locally (hitc must be 0)")
	}
	if second.FalseMissBytes == 0 {
		t.Error("repeat query should find cached result bytes (hitb > 0)")
	}
	if second.DownlinkBytes >= first.DownlinkBytes {
		t.Errorf("cached ids should shrink downlink: %d vs %d", second.DownlinkBytes, first.DownlinkBytes)
	}
	if second.UplinkBytes <= first.UplinkBytes {
		t.Errorf("uplink should grow with cache population: %d vs %d", second.UplinkBytes, first.UplinkBytes)
	}
	if second.RespTime <= 0 {
		t.Error("page caching response time must include the round trip")
	}
}

func TestLRUEviction(t *testing.T) {
	w := newWorld(34, 600)
	cl := w.client(20_000) // room for 20 objects
	r := rand.New(rand.NewSource(35))
	for i := 0; i < 40; i++ {
		win := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.1, 0.1)
		if _, err := cl.Query(query.NewRange(win)); err != nil {
			t.Fatal(err)
		}
		if cl.Used() > 20_000 {
			t.Fatalf("query %d: used %d over capacity", i, cl.Used())
		}
	}
	if cl.Len() == 0 {
		t.Error("cache empty after workload")
	}
}

func TestUplinkProportionalToCache(t *testing.T) {
	w := newWorld(36, 600)
	small := w.client(10_000)
	big := w.client(1 << 20)
	r := rand.New(rand.NewSource(37))
	var smallUp, bigUp int
	for i := 0; i < 30; i++ {
		win := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.1, 0.1)
		rs, err := small.Query(query.NewRange(win))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := big.Query(query.NewRange(win))
		if err != nil {
			t.Fatal(err)
		}
		smallUp += rs.UplinkBytes
		bigUp += rb.UplinkBytes
	}
	if bigUp <= smallUp {
		t.Errorf("bigger cache must cost more uplink: %d vs %d", bigUp, smallUp)
	}
}
