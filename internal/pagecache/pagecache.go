// Package pagecache implements the page/object caching baseline (PAG in the
// experiments): the client caches result objects by identifier only, with no
// supporting knowledge. Every query goes to the server accompanied by the
// full list of cached identifiers (the paper's "submit the identifiers of
// all cached objects"), so the cache saves downlink bytes but never answers
// anything locally — its cache hit rate is zero by construction.
package pagecache

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wire"
)

type entry struct {
	size     int
	lastUsed uint64
}

// Client is a page-caching mobile client with LRU replacement.
type Client struct {
	id        wire.ClientID
	capacity  int
	used      int
	objects   map[rtree.ObjectID]*entry
	clock     uint64
	transport wire.Transport
	sizes     wire.SizeModel
	channel   wire.Channel

	// Ops models CPU cost: the flat cache is scanned sequentially per query
	// to assemble the identifier list and during replacement.
	Ops int
}

// New builds a page-caching client.
func New(id wire.ClientID, capacity int, transport wire.Transport, sizes wire.SizeModel, ch wire.Channel) *Client {
	if sizes == (wire.SizeModel{}) {
		sizes = wire.DefaultSizeModel()
	}
	if ch == (wire.Channel{}) {
		ch = wire.DefaultChannel()
	}
	return &Client{
		id:        id,
		capacity:  capacity,
		objects:   make(map[rtree.ObjectID]*entry),
		transport: transport,
		sizes:     sizes,
		channel:   ch,
	}
}

// Used returns occupied cache bytes.
func (c *Client) Used() int { return c.used }

// Len returns the number of cached objects.
func (c *Client) Len() int { return len(c.objects) }

// SetPosition is a no-op: page caching is location-oblivious.
func (c *Client) SetPosition(geom.Point) {}

// Query ships the query plus all cached identifiers, downloads only the
// missing result objects, and LRU-caches what arrives.
func (c *Client) Query(q query.Query) (core.Report, error) {
	c.clock++
	opsStart := c.Ops
	var rep core.Report

	// Sequential scan to assemble the identifier list (deterministic order).
	ids := make([]rtree.ObjectID, 0, len(c.objects))
	for id := range c.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	c.Ops += len(ids)

	req := &wire.Request{Client: c.id, Q: q, CachedIDs: ids, NoIndex: true}
	rep.UplinkBytes = c.sizes.RequestBytes(req)
	resp, err := c.transport.RoundTrip(req)
	if err != nil {
		return rep, fmt.Errorf("pagecache: %w", err)
	}
	rep.DownlinkBytes = c.sizes.ResponseBytes(resp)

	// Nothing is ever confirmed locally: hitc = 0. Cached results count
	// toward the byte hit rate (they skip retransmission).
	for _, o := range resp.Objects {
		rep.ResultBytes += o.Size
		if !o.Payload {
			rep.FalseMissBytes += o.Size
		}
		rep.Results = append(rep.Results, o.ID)
	}
	rep.Pairs = append(rep.Pairs, resp.Pairs...)

	objDone, total := c.sizes.ResponseTimeline(c.channel, rep.UplinkBytes, resp)
	rep.TotalTime = total
	if rep.ResultBytes > 0 {
		weighted := 0.0
		for i, o := range resp.Objects {
			weighted += float64(o.Size) * objDone[i]
		}
		rep.RespTime = weighted / float64(rep.ResultBytes)
	} else {
		rep.RespTime = total
	}

	for _, o := range resp.Objects {
		c.insert(o)
	}
	c.evict()
	rep.CacheOps = c.Ops - opsStart
	return rep, nil
}

func (c *Client) insert(o wire.ObjectRep) {
	if e, ok := c.objects[o.ID]; ok {
		e.lastUsed = c.clock
		return
	}
	if !o.Payload {
		// The server skipped the payload because we reported the id as
		// cached; mark the use.
		return
	}
	c.objects[o.ID] = &entry{size: o.Size, lastUsed: c.clock}
	c.used += o.Size
}

// evict applies LRU until the cache fits, scanning the flat cache.
func (c *Client) evict() {
	for c.used > c.capacity && len(c.objects) > 0 {
		var victim rtree.ObjectID
		first := true
		var oldest uint64
		for id, e := range c.objects {
			if first || e.lastUsed < oldest || (e.lastUsed == oldest && id < victim) {
				victim, oldest, first = id, e.lastUsed, false
			}
		}
		c.used -= c.objects[victim].size
		delete(c.objects, victim)
		c.Ops += len(c.objects) + 1
	}
}
