package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/bpt"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
)

// The binary codec is the hot-path wire format: a hand-rolled, versioned,
// length-prefixed encoding of every protocol message. It replaces gob on the
// serving path (gob remains as a negotiated fallback, see codec.go) and is
// deliberately shaped after the paper's byte-size model: coordinates travel
// as float32 (SizeModel prices 20-byte entries of four float32 coordinates
// plus a pointer), identifiers and counts as varints, and partition-tree
// codes as packed bits. Priority keys of handed-over queue elements are not
// shipped at all — the server recomputes them from the MBRs (Server.rekey
// treats client keys as untrusted anyway).
//
// Stream layout (see docs/WIRE.md for the full specification):
//
//	preamble  "PRW" <version>            once per direction
//	frame     length:uint32le            bytes after the length field
//	          type:byte                  1=request 2=response 3=error
//	          id:uvarint                 request correlation id
//	          body                       message-specific encoding
//
// Frames are self-delimiting, so a connection can carry many requests in
// flight: the client tags each request with a fresh id and the server may
// answer out of order (see BinaryClientConn and NetServer).

// ProtoVersion is the binary protocol version carried in the handshake
// preamble. Peers with different versions must not talk binary to each
// other; the gob fallback remains version-agnostic.
const ProtoVersion = 1

// handshakeMagic is the per-direction stream preamble: it distinguishes the
// binary protocol from a gob stream and pins the protocol version. The
// leading 0xF8 is deliberate poison for gob: a pre-binary server feeds the
// preamble to its gob decoder, which parses it as an 8-byte message-length
// of ~5.8e18, errors out immediately, and hangs up — so a binary client
// probing an old server fails fast (and falls back to gob) instead of
// waiting out a handshake deadline. Byte 5 carries the connection role
// (RoleClient or RoleEdge); bytes 6..8 are reserved (zero). Old peers wrote
// zero in byte 5, which is exactly RoleClient, so pre-role streams decode
// unchanged; servers always ack with the plain client preamble, which old
// clients already accept (they check only bytes 0..4).
var handshakeMagic = [9]byte{0xF8, 'P', 'R', 'W', ProtoVersion, 0, 0, 0, 0}

// Connection roles, carried in handshake preamble byte 5. An edge proxy
// announces itself so the server can account for edge-tier connections
// separately from end clients; the framing and message encodings are
// identical for both roles.
const (
	RoleClient byte = 0
	RoleEdge   byte = 1
)

// handshakePreamble returns the 9-byte preamble announcing the given role.
func handshakePreamble(role byte) [9]byte {
	p := handshakeMagic
	p[5] = role
	return p
}

// Frame types.
const (
	frameRequest  byte = 1
	frameResponse byte = 2
	frameError    byte = 3
)

// MaxFrameBytes is the hard cap on one frame's payload; readFrame rejects
// anything larger before allocating, so a corrupt or hostile length prefix
// cannot balloon memory.
const MaxFrameBytes = 16 << 20

// frameChunk bounds how much readFrame allocates ahead of data actually
// arriving: large frames are read in chunks, so a lying length prefix on a
// short stream over-allocates at most one chunk.
const frameChunk = 64 << 10

// maxCodeBits caps the length of a partition-tree code on the wire; real
// codes are bounded by the partition-tree depth (about log2 of the node
// fanout, well under 64).
const maxCodeBits = 512

// ErrDecode wraps every malformed-message error produced by the binary
// decoder. Decoding never panics and never allocates more than a small
// multiple of the input size, no matter the bytes.
var ErrDecode = errors.New("wire: malformed binary message")

// Request flag bits.
const (
	reqNoIndex byte = 1 << iota
	reqCatalog
	reqHasFMR
	reqHasUpdates
	reqHasBound
	reqReplica
)

// Query field-presence bits (zero-valued fields are elided).
const (
	qfWindow byte = 1 << iota
	qfCenter
	qfK
	qfJoinWindow
	qfDist
)

// Queued-element flag bits.
const (
	elemPair byte = 1 << iota
	elemDeferred
)

// Response flag bits.
const (
	respFlushAll byte = 1 << iota
	respHasRoot
	respHasUpdates
)

// Cut-element flag bits.
const (
	ceSuper byte = 1 << iota
	ceChild
)

// Minimum encoded sizes, used to bound slice pre-allocation against the
// remaining input before trusting a decoded count.
const (
	minRefBytes     = 1 + 16 + 1           // kind + rect + id
	minElemBytes    = 1 + minRefBytes      // flags + single ref
	minRectBytes    = 16                   // four float32
	minObjRepBytes  = 1 + 16 + 1 + 1       // id + rect + size + flags
	minNodeRepBytes = 1 + 1 + 1            // id + level + count
	minCutElemBytes = 1 + 1 + minRectBytes // flags + code length + rect
	minIDBytes      = 1
	minPairBytes    = 2
	minUpdateBytes  = 1 + 1 + minRectBytes // kind + object id + one rect
)

// appendF32 encodes a coordinate as IEEE-754 float32, little endian. The
// quantization to float32 is deliberate: it is exactly what the paper's
// size model assumes (20-byte entries of four float32 coordinates), and all
// experiment coordinates live in the unit square where float32 resolution
// is ~1e-7.
func appendF32(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint32(b, math.Float32bits(float32(v)))
}

// f32ceil quantizes a value to the smallest float32 not below it. The kNN
// pruning bound must never round DOWN on the wire: a shard pruning at a
// bound half an ulp under the router's true k-th-best distance could drop
// a genuine nearest neighbor. Rounding up only ever under-prunes.
func f32ceil(v float64) float64 {
	f := float32(v)
	if float64(f) < v {
		f = math.Nextafter32(f, float32(math.Inf(1)))
	}
	return float64(f)
}

func appendRect(b []byte, r geom.Rect) []byte {
	b = appendF32(b, r.MinX)
	b = appendF32(b, r.MinY)
	b = appendF32(b, r.MaxX)
	return appendF32(b, r.MaxY)
}

func appendPoint(b []byte, p geom.Point) []byte {
	return appendF32(appendF32(b, p.X), p.Y)
}

// appendCode packs a partition-tree code ('0'/'1' string) as a uvarint bit
// count followed by the bits, LSB first.
func appendCode(b []byte, c bpt.Code) []byte {
	b = binary.AppendUvarint(b, uint64(len(c)))
	var cur byte
	for i := 0; i < len(c); i++ {
		if c[i] == '1' {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			b = append(b, cur)
			cur = 0
		}
	}
	if len(c)%8 != 0 {
		b = append(b, cur)
	}
	return b
}

func appendQuery(b []byte, q query.Query) []byte {
	b = append(b, byte(q.Kind))
	var p byte
	if q.Window != (geom.Rect{}) {
		p |= qfWindow
	}
	if q.Center != (geom.Point{}) {
		p |= qfCenter
	}
	if q.K != 0 {
		p |= qfK
	}
	if q.JoinWindow != (geom.Rect{}) {
		p |= qfJoinWindow
	}
	if q.Dist != 0 {
		p |= qfDist
	}
	b = append(b, p)
	if p&qfWindow != 0 {
		b = appendRect(b, q.Window)
	}
	if p&qfCenter != 0 {
		b = appendPoint(b, q.Center)
	}
	if p&qfK != 0 {
		b = binary.AppendVarint(b, int64(q.K))
	}
	if p&qfJoinWindow != 0 {
		b = appendRect(b, q.JoinWindow)
	}
	if p&qfDist != 0 {
		b = appendF32(b, q.Dist)
	}
	return b
}

func appendRef(b []byte, r query.Ref) []byte {
	b = append(b, byte(r.Kind))
	b = appendRect(b, r.MBR)
	switch r.Kind {
	case query.RefSuper:
		b = binary.AppendUvarint(b, uint64(r.Node))
		b = appendCode(b, r.Code)
	case query.RefObject:
		b = binary.AppendUvarint(b, uint64(r.Obj))
	default: // RefNode (unknown kinds encode like nodes and fail on decode)
		b = binary.AppendUvarint(b, uint64(r.Node))
	}
	return b
}

// EncodeRequest appends the binary body of req to dst and returns the
// extended slice. Queue-element priority keys are intentionally not encoded:
// the server rekeys every handed-over element from its MBR.
func EncodeRequest(dst []byte, req *Request) []byte {
	b := binary.AppendUvarint(dst, uint64(req.Client))
	var fl byte
	if req.NoIndex {
		fl |= reqNoIndex
	}
	if req.Catalog {
		fl |= reqCatalog
	}
	if req.HasFMR {
		fl |= reqHasFMR
	}
	if len(req.Updates) > 0 {
		fl |= reqHasUpdates
	}
	if req.Bound > 0 {
		fl |= reqHasBound
	}
	if req.Replica {
		fl |= reqReplica
	}
	b = append(b, fl)
	b = binary.AppendUvarint(b, req.Epoch)
	b = appendQuery(b, req.Q)
	b = binary.AppendUvarint(b, uint64(len(req.H)))
	for _, qe := range req.H {
		var ef byte
		if qe.Elem.Pair {
			ef |= elemPair
		}
		if qe.Deferred {
			ef |= elemDeferred
		}
		b = append(b, ef)
		b = appendRef(b, qe.Elem.A)
		if qe.Elem.Pair {
			b = appendRef(b, qe.Elem.B)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(req.CachedIDs)))
	for _, id := range req.CachedIDs {
		b = binary.AppendUvarint(b, uint64(id))
	}
	b = binary.AppendUvarint(b, uint64(len(req.SemWindows)))
	for _, w := range req.SemWindows {
		b = appendRect(b, w)
	}
	if req.HasFMR {
		b = appendF32(b, req.FMR)
	}
	// The updates section is appended only when present (flagged), so
	// query-request encodings are byte-identical to protocol version 1
	// streams (the golden files pin this).
	if len(req.Updates) > 0 {
		b = binary.AppendUvarint(b, uint64(len(req.Updates)))
		for _, u := range req.Updates {
			b = append(b, byte(u.Kind))
			b = binary.AppendUvarint(b, uint64(u.Obj))
			switch u.Kind {
			case UpdateInsert:
				b = appendRect(b, u.To)
				b = binary.AppendVarint(b, int64(u.Size))
			case UpdateMove:
				b = appendRect(b, u.From)
				b = appendRect(b, u.To)
			default: // UpdateDelete and unknown kinds ship one rectangle
				b = appendRect(b, u.From)
			}
		}
	}
	// The shard-routing bound is appended last and only when flagged, so
	// every pre-cluster request encodes byte-identically to protocol
	// version 1 streams (the golden files pin this). It quantizes upward
	// (f32ceil), unlike geometry: a bound must never tighten in transit.
	if req.Bound > 0 {
		b = appendF32(b, f32ceil(req.Bound))
	}
	return b
}

// EncodeResponse appends the binary body of resp to dst and returns the
// extended slice.
func EncodeResponse(dst []byte, resp *Response) []byte {
	var fl byte
	if resp.FlushAll {
		fl |= respFlushAll
	}
	hasRoot := resp.RootID != rtree.InvalidNode || resp.RootMBR != (geom.Rect{})
	if hasRoot {
		fl |= respHasRoot
	}
	if len(resp.UpdateResults) > 0 {
		fl |= respHasUpdates
	}
	b := append(dst, fl)
	b = binary.AppendVarint(b, int64(resp.K))
	b = binary.AppendUvarint(b, resp.Epoch)
	if hasRoot {
		b = binary.AppendUvarint(b, uint64(resp.RootID))
		b = appendRect(b, resp.RootMBR)
	}
	b = binary.AppendUvarint(b, uint64(len(resp.Objects)))
	for _, o := range resp.Objects {
		b = binary.AppendUvarint(b, uint64(o.ID))
		b = appendRect(b, o.MBR)
		b = binary.AppendVarint(b, int64(o.Size))
		var of byte
		if o.Payload {
			of = 1
		}
		b = append(b, of)
	}
	b = binary.AppendUvarint(b, uint64(len(resp.Pairs)))
	for _, p := range resp.Pairs {
		b = binary.AppendUvarint(b, uint64(p[0]))
		b = binary.AppendUvarint(b, uint64(p[1]))
	}
	b = binary.AppendUvarint(b, uint64(len(resp.Index)))
	for _, rep := range resp.Index {
		b = binary.AppendUvarint(b, uint64(rep.ID))
		b = binary.AppendVarint(b, int64(rep.Level))
		b = binary.AppendUvarint(b, uint64(len(rep.Elems)))
		for _, e := range rep.Elems {
			var ef byte
			if e.Super {
				ef |= ceSuper
			} else if e.Child != rtree.InvalidNode {
				ef |= ceChild
			}
			b = append(b, ef)
			b = appendCode(b, e.Code)
			b = appendRect(b, e.MBR)
			switch {
			case e.Super:
				// The node id lives on the enclosing NodeRep.
			case e.Child != rtree.InvalidNode:
				b = binary.AppendUvarint(b, uint64(e.Child))
			default:
				b = binary.AppendUvarint(b, uint64(e.Obj))
			}
		}
	}
	b = binary.AppendUvarint(b, uint64(len(resp.InvalidNodes)))
	for _, id := range resp.InvalidNodes {
		b = binary.AppendUvarint(b, uint64(id))
	}
	b = binary.AppendUvarint(b, uint64(len(resp.InvalidObjs)))
	for _, id := range resp.InvalidObjs {
		b = binary.AppendUvarint(b, uint64(id))
	}
	if len(resp.UpdateResults) > 0 {
		b = binary.AppendUvarint(b, uint64(len(resp.UpdateResults)))
		for _, ok := range resp.UpdateResults {
			var v byte
			if ok {
				v = 1
			}
			b = append(b, v)
		}
	}
	return b
}

// bdec is a bounds-checked, panic-free decoder over one message body. After
// the first error every accessor returns a zero value and the error sticks.
type bdec struct {
	b   []byte
	err error
}

func (d *bdec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrDecode}, args...)...)
	}
}

func (d *bdec) u8() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *bdec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *bdec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *bdec) f32() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 4 {
		d.fail("truncated float32")
		return 0
	}
	v := math.Float32frombits(binary.LittleEndian.Uint32(d.b))
	d.b = d.b[4:]
	return float64(v)
}

func (d *bdec) rect() geom.Rect {
	return geom.Rect{MinX: d.f32(), MinY: d.f32(), MaxX: d.f32(), MaxY: d.f32()}
}

func (d *bdec) point() geom.Point {
	return geom.Point{X: d.f32(), Y: d.f32()}
}

func (d *bdec) code() bpt.Code {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxCodeBits {
		d.fail("code of %d bits exceeds limit %d", n, maxCodeBits)
		return ""
	}
	nb := (int(n) + 7) / 8
	if nb > len(d.b) {
		d.fail("truncated code")
		return ""
	}
	bits := d.b[:nb]
	d.b = d.b[nb:]
	buf := make([]byte, n)
	for i := range buf {
		if bits[i/8]&(1<<(i%8)) != 0 {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return bpt.Code(buf)
}

// count reads a collection length and rejects it unless minBytes per element
// still fit in the remaining input — a decoded count can therefore never
// force an allocation larger than the bytes actually received.
func (d *bdec) count(minBytes int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(len(d.b))/uint64(minBytes) {
		d.fail("count %d exceeds %d remaining bytes", n, len(d.b))
		return 0
	}
	return int(n)
}

func (d *bdec) query() query.Query {
	var q query.Query
	q.Kind = query.Kind(d.u8())
	p := d.u8()
	if p&qfWindow != 0 {
		q.Window = d.rect()
	}
	if p&qfCenter != 0 {
		q.Center = d.point()
	}
	if p&qfK != 0 {
		q.K = int(d.varint())
	}
	if p&qfJoinWindow != 0 {
		q.JoinWindow = d.rect()
	}
	if p&qfDist != 0 {
		q.Dist = d.f32()
	}
	return q
}

func (d *bdec) ref() query.Ref {
	kind := query.RefKind(d.u8())
	mbr := d.rect()
	switch kind {
	case query.RefNode:
		return query.NodeRef(rtree.NodeID(d.uvarint()), mbr)
	case query.RefSuper:
		n := rtree.NodeID(d.uvarint())
		return query.SuperRef(n, d.code(), mbr)
	case query.RefObject:
		return query.ObjectRef(rtree.ObjectID(d.uvarint()), mbr)
	default:
		d.fail("unknown ref kind %d", kind)
		return query.Ref{}
	}
}

// done returns the accumulated decode error, treating unconsumed trailing
// bytes as an error so a desynchronized stream cannot pass silently.
func (d *bdec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrDecode, len(d.b))
	}
	return nil
}

// DecodeRequest parses a binary request body. Malformed input returns an
// error wrapping ErrDecode; it never panics. Priority keys of H come back
// zero (the server rekeys).
func DecodeRequest(body []byte) (*Request, error) {
	d := &bdec{b: body}
	req := &Request{}
	req.Client = ClientID(d.uvarint())
	fl := d.u8()
	req.NoIndex = fl&reqNoIndex != 0
	req.Catalog = fl&reqCatalog != 0
	req.HasFMR = fl&reqHasFMR != 0
	req.Replica = fl&reqReplica != 0
	req.Epoch = d.uvarint()
	req.Q = d.query()
	if n := d.count(minElemBytes); n > 0 {
		req.H = make([]query.QueuedElem, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			ef := d.u8()
			a := d.ref()
			var e query.Elem
			if ef&elemPair != 0 {
				e = query.PairOf(a, d.ref())
			} else {
				e = query.Single(a)
			}
			req.H = append(req.H, query.QueuedElem{Elem: e, Deferred: ef&elemDeferred != 0})
		}
	}
	if n := d.count(minIDBytes); n > 0 {
		req.CachedIDs = make([]rtree.ObjectID, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			req.CachedIDs = append(req.CachedIDs, rtree.ObjectID(d.uvarint()))
		}
	}
	if n := d.count(minRectBytes); n > 0 {
		req.SemWindows = make([]geom.Rect, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			req.SemWindows = append(req.SemWindows, d.rect())
		}
	}
	if req.HasFMR {
		req.FMR = d.f32()
	}
	if fl&reqHasUpdates != 0 {
		if n := d.count(minUpdateBytes); n > 0 {
			req.Updates = make([]UpdateOp, 0, n)
			for i := 0; i < n && d.err == nil; i++ {
				u := UpdateOp{Kind: UpdateKind(d.u8()), Obj: rtree.ObjectID(d.uvarint())}
				switch u.Kind {
				case UpdateInsert:
					u.To = d.rect()
					u.Size = int(d.varint())
				case UpdateMove:
					u.From = d.rect()
					u.To = d.rect()
				case UpdateDelete:
					u.From = d.rect()
				default:
					d.fail("unknown update kind %d", u.Kind)
				}
				req.Updates = append(req.Updates, u)
			}
		}
	}
	if fl&reqHasBound != 0 {
		req.Bound = d.f32()
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return req, nil
}

// DecodeResponse parses a binary response body. Malformed input returns an
// error wrapping ErrDecode; it never panics.
func DecodeResponse(body []byte) (*Response, error) {
	d := &bdec{b: body}
	resp := &Response{}
	fl := d.u8()
	resp.FlushAll = fl&respFlushAll != 0
	resp.K = int(d.varint())
	resp.Epoch = d.uvarint()
	if fl&respHasRoot != 0 {
		resp.RootID = rtree.NodeID(d.uvarint())
		resp.RootMBR = d.rect()
	}
	if n := d.count(minObjRepBytes); n > 0 {
		resp.Objects = make([]ObjectRep, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			o := ObjectRep{
				ID:   rtree.ObjectID(d.uvarint()),
				MBR:  d.rect(),
				Size: int(d.varint()),
			}
			o.Payload = d.u8()&1 != 0
			resp.Objects = append(resp.Objects, o)
		}
	}
	if n := d.count(minPairBytes); n > 0 {
		resp.Pairs = make([][2]rtree.ObjectID, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			resp.Pairs = append(resp.Pairs, [2]rtree.ObjectID{
				rtree.ObjectID(d.uvarint()), rtree.ObjectID(d.uvarint()),
			})
		}
	}
	if n := d.count(minNodeRepBytes); n > 0 {
		resp.Index = make([]NodeRep, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			rep := NodeRep{
				ID:    rtree.NodeID(d.uvarint()),
				Level: int(d.varint()),
			}
			if ne := d.count(minCutElemBytes); ne > 0 {
				rep.Elems = make([]CutElem, 0, ne)
				for j := 0; j < ne && d.err == nil; j++ {
					ef := d.u8()
					e := CutElem{Code: d.code(), MBR: d.rect()}
					switch {
					case ef&ceSuper != 0:
						e.Super = true
					case ef&ceChild != 0:
						e.Child = rtree.NodeID(d.uvarint())
					default:
						e.Obj = rtree.ObjectID(d.uvarint())
					}
					rep.Elems = append(rep.Elems, e)
				}
			}
			resp.Index = append(resp.Index, rep)
		}
	}
	if n := d.count(minIDBytes); n > 0 {
		resp.InvalidNodes = make([]rtree.NodeID, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			resp.InvalidNodes = append(resp.InvalidNodes, rtree.NodeID(d.uvarint()))
		}
	}
	if n := d.count(minIDBytes); n > 0 {
		resp.InvalidObjs = make([]rtree.ObjectID, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			resp.InvalidObjs = append(resp.InvalidObjs, rtree.ObjectID(d.uvarint()))
		}
	}
	if fl&respHasUpdates != 0 {
		if n := d.count(1); n > 0 {
			resp.UpdateResults = make([]bool, 0, n)
			for i := 0; i < n && d.err == nil; i++ {
				resp.UpdateResults = append(resp.UpdateResults, d.u8()&1 != 0)
			}
		}
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return resp, nil
}

// sniffBinary reports whether the stream opens with the binary handshake
// preamble, consuming it when present, and returns the announced connection
// role. This is the single negotiation rule shared by every serving path
// (NetServer, ServeConn, the reject path). Only known roles are accepted;
// an unknown role byte falls through to the gob path and dies there, which
// is the same fate any non-preamble byte stream meets.
func sniffBinary(br *bufio.Reader) (bool, byte, error) {
	first, err := br.Peek(len(handshakeMagic))
	if err != nil {
		return false, 0, err
	}
	role := first[5]
	if !bytes.Equal(first[:5], handshakeMagic[:5]) ||
		(role != RoleClient && role != RoleEdge) ||
		first[6] != 0 || first[7] != 0 || first[8] != 0 {
		return false, 0, nil
	}
	_, err = br.Discard(len(handshakeMagic))
	return true, role, err
}

// writeFrame emits one length-prefixed frame and flushes, so the message
// leaves the process immediately (responses are awaited by a live client).
func writeFrame(bw interface {
	io.Writer
	Flush() error
}, typ byte, id uint64, body []byte) error {
	var head [4 + 1 + binary.MaxVarintLen64]byte
	n := 5 + binary.PutUvarint(head[5:], id)
	binary.LittleEndian.PutUint32(head[:4], uint32(n-4+len(body)))
	head[4] = typ
	if _, err := bw.Write(head[:n]); err != nil {
		return err
	}
	if _, err := bw.Write(body); err != nil {
		return err
	}
	return bw.Flush()
}

// readFrame reads one frame. The length prefix is validated against
// MaxFrameBytes before any allocation, and large frames are read in chunks
// so a lying prefix on a truncated stream cannot over-allocate.
func readFrame(r io.Reader) (typ byte, id uint64, body []byte, err error) {
	var head [4]byte
	if _, err = io.ReadFull(r, head[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(head[:])
	if n < 2 {
		return 0, 0, nil, fmt.Errorf("%w: frame of %d bytes", ErrDecode, n)
	}
	if n > MaxFrameBytes {
		return 0, 0, nil, fmt.Errorf("%w: frame of %d bytes exceeds limit %d", ErrDecode, n, MaxFrameBytes)
	}
	buf, err := readCapped(r, int(n))
	if err != nil {
		return 0, 0, nil, err
	}
	typ = buf[0]
	id, vn := binary.Uvarint(buf[1:])
	if vn <= 0 {
		return 0, 0, nil, fmt.Errorf("%w: bad frame id", ErrDecode)
	}
	return typ, id, buf[1+vn:], nil
}

// readCapped reads exactly n bytes, allocating at most frameChunk ahead of
// the data that has actually arrived.
func readCapped(r io.Reader, n int) ([]byte, error) {
	if n <= frameChunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	buf := make([]byte, 0, frameChunk)
	for len(buf) < n {
		c := min(frameChunk, n-len(buf))
		start := len(buf)
		buf = append(buf, make([]byte, c)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}
