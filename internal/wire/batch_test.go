package wire

import (
	"bufio"
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"
)

// pipeServe runs a NetServer connection handler over one end of an
// in-memory pipe. net.Pipe is unbuffered, so a client that writes the
// handshake preamble and several frames in a single Write hands the server
// all of them in its first buffered read — the batch drain is deterministic,
// unlike over loopback TCP.
func pipeServe(t *testing.T, cfg ServeConfig, handle Handler) (net.Conn, *NetServer) {
	t.Helper()
	c1, c2 := net.Pipe()
	srv := NewNetServer(handle, cfg)
	if !srv.track(c2) {
		t.Fatal("track refused")
	}
	go srv.serveConn(c2)
	t.Cleanup(func() {
		c1.Close()
		srv.Close()
	})
	return c1, srv
}

// TestBatchDrainGroupsBufferedFrames pipelines a burst of requests in one
// write and checks that the server hands them to the batch handler as one
// run, answers each with its own correlation id, and counts the batch.
func TestBatchDrainGroupsBufferedFrames(t *testing.T) {
	const burst = 8
	var (
		mu     sync.Mutex
		widths []int
	)
	cfg := ServeConfig{
		HandleBatch: func(reqs []*Request) ([]*Response, []error) {
			mu.Lock()
			widths = append(widths, len(reqs))
			mu.Unlock()
			resps := make([]*Response, len(reqs))
			for i, req := range reqs {
				resps[i] = &Response{Epoch: req.Epoch}
			}
			return resps, nil
		},
	}
	client, srv := pipeServe(t, cfg, echoHandler)

	// One write: preamble plus the whole burst.
	buf := append([]byte(nil), handshakeMagic[:]...)
	for i := 0; i < burst; i++ {
		body := EncodeRequest(nil, &Request{Epoch: uint64(100 + i), Catalog: true})
		var head [4 + 1 + binary.MaxVarintLen64]byte
		n := 5 + binary.PutUvarint(head[5:], uint64(i+1))
		head[4] = frameRequest
		binary.LittleEndian.PutUint32(head[:4], uint32(n-4+len(body)))
		buf = append(buf, head[:n]...)
		buf = append(buf, body...)
	}
	writeErr := make(chan error, 1)
	go func() {
		_, err := client.Write(buf)
		writeErr <- err
	}()

	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	br := bufio.NewReader(client)
	var ack [len(handshakeMagic)]byte
	if _, err := readFull(br, ack[:]); err != nil {
		t.Fatalf("handshake ack: %v", err)
	}
	got := map[uint64]uint64{} // correlation id -> epoch
	for i := 0; i < burst; i++ {
		typ, id, body, err := readFrame(br)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if typ != frameResponse {
			t.Fatalf("response %d: frame type %d", i, typ)
		}
		resp, err := DecodeResponse(body)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		got[id] = resp.Epoch
	}
	if err := <-writeErr; err != nil {
		t.Fatalf("client write: %v", err)
	}
	for i := 0; i < burst; i++ {
		if got[uint64(i+1)] != uint64(100+i) {
			t.Errorf("id %d answered with epoch %d, want %d", i+1, got[uint64(i+1)], 100+i)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if len(widths) != 1 || widths[0] != burst {
		t.Errorf("batch widths = %v, want one batch of %d", widths, burst)
	}
	snap := srv.Stats().Snapshot()
	if snap.Batches != 1 {
		t.Errorf("batches = %d, want 1", snap.Batches)
	}
	if snap.Requests != burst {
		t.Errorf("requests = %d, want %d", snap.Requests, burst)
	}
}

// TestBatchDrainRespectsPipelineCap verifies that MaxPipeline bounds a
// drained batch: a burst larger than the cap is split, never exceeding the
// configured in-flight limit per connection.
func TestBatchDrainRespectsPipelineCap(t *testing.T) {
	const burst = 6
	var (
		mu     sync.Mutex
		widths []int
	)
	cfg := ServeConfig{
		MaxPipeline: 3,
		HandleBatch: func(reqs []*Request) ([]*Response, []error) {
			mu.Lock()
			widths = append(widths, len(reqs))
			mu.Unlock()
			resps := make([]*Response, len(reqs))
			for i, req := range reqs {
				resps[i] = &Response{Epoch: req.Epoch}
			}
			return resps, nil
		},
	}
	client, _ := pipeServe(t, cfg, echoHandler)

	buf := append([]byte(nil), handshakeMagic[:]...)
	for i := 0; i < burst; i++ {
		body := EncodeRequest(nil, &Request{Epoch: uint64(i), Catalog: true})
		var head [4 + 1 + binary.MaxVarintLen64]byte
		n := 5 + binary.PutUvarint(head[5:], uint64(i+1))
		head[4] = frameRequest
		binary.LittleEndian.PutUint32(head[:4], uint32(n-4+len(body)))
		buf = append(buf, head[:n]...)
		buf = append(buf, body...)
	}
	go client.Write(buf)

	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	br := bufio.NewReader(client)
	var ack [len(handshakeMagic)]byte
	if _, err := readFull(br, ack[:]); err != nil {
		t.Fatalf("handshake ack: %v", err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < burst; i++ {
		typ, id, _, err := readFrame(br)
		if err != nil || typ != frameResponse {
			t.Fatalf("response %d: type %d err %v", i, typ, err)
		}
		seen[id] = true
	}
	if len(seen) != burst {
		t.Fatalf("got %d distinct responses, want %d", len(seen), burst)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, w := range widths {
		if w > 3 {
			t.Errorf("batch of %d exceeds MaxPipeline 3", w)
		}
	}
}

// readFull is io.ReadFull over the test's buffered reader (avoids importing
// io for one call site).
func readFull(br *bufio.Reader, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := br.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
