package wire

import (
	"bufio"
	"context"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func dialBinary(t *testing.T, addr string) *BinaryClientConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := NewBinaryClientConn(conn)
	if err != nil {
		conn.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { bc.Close() })
	return bc
}

func TestBinaryRoundTripNetServer(t *testing.T) {
	srv, addr := startServer(t, ServeConfig{}, echoHandler)
	bc := dialBinary(t, addr)
	resp, err := bc.RoundTrip(&Request{Epoch: 99, Catalog: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != 99 {
		t.Fatalf("epoch = %d, want 99", resp.Epoch)
	}
	snap := srv.Stats().Snapshot()
	if snap.Requests != 1 {
		t.Errorf("requests = %d, want 1", snap.Requests)
	}
	if snap.BytesIn == 0 || snap.BytesOut == 0 {
		t.Errorf("byte counters not populated: in=%d out=%d", snap.BytesIn, snap.BytesOut)
	}
}

// TestPipelinedClientsCorrelateResponses is the pipelined counterpart of
// TestNetServerConcurrentClients: several clients, each with one connection
// shared by several goroutines, many requests in flight at once. The
// handler's response echoes the request epoch, so any mis-correlated
// response is caught. Run under -race this exercises the whole pipelined
// path: concurrent frame writes, out-of-order completion, response routing.
func TestPipelinedClientsCorrelateResponses(t *testing.T) {
	// Stagger handler latency by epoch parity so completion order actually
	// scrambles relative to issue order.
	srv, addr := startServer(t, ServeConfig{}, func(req *Request) (*Response, error) {
		if req.Epoch%3 == 0 {
			time.Sleep(time.Duration(req.Epoch%5) * time.Millisecond)
		}
		return &Response{Epoch: req.Epoch}, nil
	})

	const clients, workers, perWorker = 4, 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, clients*workers)
	for c := 0; c < clients; c++ {
		bc := dialBinary(t, addr)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(c, w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					epoch := uint64(c*1_000_000 + w*1_000 + i)
					resp, err := bc.RoundTrip(&Request{Epoch: epoch, Catalog: true})
					if err != nil {
						errs <- err
						return
					}
					if resp.Epoch != epoch {
						t.Errorf("client %d worker %d: got epoch %d, want %d", c, w, resp.Epoch, epoch)
						return
					}
				}
			}(c, w)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	snap := srv.Stats().Snapshot()
	if want := int64(clients * workers * perWorker); snap.Requests != want {
		t.Errorf("requests = %d, want %d", snap.Requests, want)
	}
	if snap.TotalConns != clients {
		t.Errorf("total conns = %d, want %d (one pipelined conn per client)", snap.TotalConns, clients)
	}
}

// TestOutOfOrderCompletion proves responses really overtake each other on
// one connection: a slow request issued first must finish after a fast
// request issued second.
func TestOutOfOrderCompletion(t *testing.T) {
	slowArrived := make(chan struct{})
	release := make(chan struct{})
	_, addr := startServer(t, ServeConfig{}, func(req *Request) (*Response, error) {
		if req.Epoch == 1 {
			close(slowArrived)
			<-release
		}
		return &Response{Epoch: req.Epoch}, nil
	})
	bc := dialBinary(t, addr)

	slowDone := make(chan error, 1)
	go func() {
		_, err := bc.RoundTrip(&Request{Epoch: 1})
		slowDone <- err
	}()
	<-slowArrived

	// The slow request is parked inside its handler; a second request on
	// the same connection must complete around it.
	if _, err := bc.RoundTrip(&Request{Epoch: 2}); err != nil {
		t.Fatalf("fast request behind a parked one: %v", err)
	}
	select {
	case err := <-slowDone:
		t.Fatalf("slow request finished before release (err=%v)", err)
	default:
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow request: %v", err)
	}
}

// TestMaxPipelineBackpressure: with MaxPipeline 1 the server stops reading
// past one in-flight request, but every request still completes once the
// pipeline drains.
func TestMaxPipelineBackpressure(t *testing.T) {
	_, addr := startServer(t, ServeConfig{MaxPipeline: 1}, func(req *Request) (*Response, error) {
		time.Sleep(time.Millisecond)
		return &Response{Epoch: req.Epoch}, nil
	})
	bc := dialBinary(t, addr)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := bc.RoundTrip(&Request{Epoch: uint64(i)})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			if resp.Epoch != uint64(i) {
				t.Errorf("request %d: got epoch %d", i, resp.Epoch)
			}
		}(i)
	}
	wg.Wait()
}

func TestBinaryConnLimitReject(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	srv, addr := startServer(t, ServeConfig{MaxConns: 1}, func(req *Request) (*Response, error) {
		<-block
		return &Response{}, nil
	})
	first := dialBinary(t, addr)
	go func() { _, _ = first.RoundTrip(&Request{Catalog: true}) }()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().ActiveConns.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first connection never became active")
		}
		time.Sleep(time.Millisecond)
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The handshake itself succeeds (the reject path acks the preamble so
	// it can deliver a structured error) and the first round trip carries
	// the connection-scoped rejection.
	bc, err := NewBinaryClientConn(conn)
	if err != nil {
		t.Fatalf("handshake with full server: %v", err)
	}
	if _, err := bc.RoundTrip(&Request{Catalog: true}); err == nil ||
		!strings.Contains(err.Error(), "connection limit") {
		t.Fatalf("round trip on full server = %v, want connection limit rejection", err)
	}
	if got := srv.Stats().RejectedConns.Load(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
}

func TestBinaryIdleTimeout(t *testing.T) {
	_, addr := startServer(t, ServeConfig{ReadTimeout: 50 * time.Millisecond}, echoHandler)
	bc := dialBinary(t, addr)
	if _, err := bc.RoundTrip(&Request{Catalog: true}); err != nil {
		t.Fatalf("warm request: %v", err)
	}
	time.Sleep(200 * time.Millisecond)
	if _, err := bc.RoundTrip(&Request{Catalog: true}); err == nil {
		t.Fatal("request after idle timeout should fail: server must have hung up")
	}
}

// TestBinaryInflightSurvivesIdleTimeout: a connection waiting on a slow
// handler is busy, not idle — the read deadline must not reap it while a
// request is in flight.
func TestBinaryInflightSurvivesIdleTimeout(t *testing.T) {
	_, addr := startServer(t, ServeConfig{ReadTimeout: 50 * time.Millisecond}, func(req *Request) (*Response, error) {
		time.Sleep(250 * time.Millisecond) // several idle timeouts long
		return &Response{Epoch: req.Epoch}, nil
	})
	bc := dialBinary(t, addr)
	resp, err := bc.RoundTrip(&Request{Epoch: 5})
	if err != nil {
		t.Fatalf("slow request reaped by idle timeout: %v", err)
	}
	if resp.Epoch != 5 {
		t.Fatalf("epoch = %d, want 5", resp.Epoch)
	}
}

// TestBinaryShutdownDrains mirrors the gob drain test on the pipelined
// path: a request parked in its handler is answered before Shutdown
// returns.
func TestBinaryShutdownDrains(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	srv, addr := startServer(t, ServeConfig{}, func(req *Request) (*Response, error) {
		if !req.Catalog {
			close(started)
			<-release
		}
		return &Response{Epoch: req.Epoch}, nil
	})
	bc := dialBinary(t, addr)
	if _, err := bc.RoundTrip(&Request{Catalog: true}); err != nil {
		t.Fatal(err)
	}
	inflight := make(chan error, 1)
	go func() {
		resp, err := bc.RoundTrip(&Request{Epoch: 42})
		if err == nil && resp.Epoch != 42 {
			t.Errorf("drained response epoch = %d, want 42", resp.Epoch)
		}
		inflight <- err
	}()
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	time.Sleep(20 * time.Millisecond)
	release <- struct{}{}
	if err := <-inflight; err != nil {
		t.Errorf("in-flight pipelined request was not drained: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// TestBinaryDecodeErrorKeepsConnAlive: a garbage request body inside a
// well-formed frame yields an error frame for that id, and the connection
// keeps serving.
func TestBinaryDecodeErrorKeepsConnAlive(t *testing.T) {
	_, addr := startServer(t, ServeConfig{}, echoHandler)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	if _, err := bw.Write(handshakeMagic[:]); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	var ack [len(handshakeMagic)]byte
	if _, err := io.ReadFull(br, ack[:]); err != nil {
		t.Fatal(err)
	}

	if err := writeFrame(bw, frameRequest, 1, []byte{0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	typ, id, _, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameError || id != 1 {
		t.Fatalf("garbage body: got frame type %d id %d, want error frame id 1", typ, id)
	}

	if err := writeFrame(bw, frameRequest, 2, EncodeRequest(nil, &Request{Epoch: 8, Catalog: true})); err != nil {
		t.Fatal(err)
	}
	typ, id, body, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := DecodeResponse(body)
	if err != nil || typ != frameResponse || id != 2 || resp.Epoch != 8 {
		t.Fatalf("connection did not survive decode error: typ=%d id=%d err=%v", typ, id, err)
	}
}

// TestServeConnBinarySerial covers the library-level ServeConn negotiation
// and serial binary loop over an in-memory pipe.
func TestServeConnBinarySerial(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	served := make(chan error, 1)
	go func() { served <- ServeConn(c2, echoHandler) }()

	bc, err := NewBinaryClientConn(c1)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		resp, err := bc.RoundTrip(&Request{Epoch: i, Catalog: true})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Epoch != i {
			t.Fatalf("epoch = %d, want %d", resp.Epoch, i)
		}
	}
	c1.Close()
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
}
