// Package wire defines the client/server protocol of the proactive caching
// architecture (Figure 3 of the paper) and the byte-accounting model used by
// the simulation: every uplink and downlink metric in the experiments is the
// size of these messages under SizeModel.
//
// The remainder query Qr = {Q, H} ships the query descriptor plus the
// priority-queue snapshot; the response ships the remainder result objects
// Rr followed by the supporting index Ir (node representations as partition
// -tree cuts). Results stream before the index so index shipping never
// delays result delivery, matching the cost model of Section 4.1.
package wire

import (
	"repro/internal/bpt"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
)

// ClientID identifies a mobile client to the server (adaptive state is kept
// per client).
type ClientID uint32

// Transport delivers a request to the server and returns its response. In
// the simulation this is a direct call into the server; cmd/prodb provides a
// TCP implementation.
type Transport interface {
	RoundTrip(*Request) (*Response, error)
}

// TransportFunc adapts a function to the Transport interface.
type TransportFunc func(*Request) (*Response, error)

// RoundTrip implements Transport.
func (f TransportFunc) RoundTrip(r *Request) (*Response, error) { return f(r) }

// Request is the uplink message.
type Request struct {
	Client ClientID
	Q      query.Query

	// H is the handed-over execution state (empty for a fresh query, e.g.
	// from baselines or a cold client; then the server seeds from the root).
	H []query.QueuedElem

	// CachedIDs lists the client's cached object ids (page-caching baseline
	// only; proactive caching never ships it).
	CachedIDs []rtree.ObjectID

	// SemWindows carries the trimmed remainder regions of the semantic
	// caching baseline: when non-empty (with Q.Kind == Range), the server
	// evaluates the union of these windows instead of Q.Window.
	SemWindows []geom.Rect

	// NoIndex asks the server not to ship a supporting index (page and
	// semantic caching baselines).
	NoIndex bool

	// Catalog asks only for the index root descriptor (client bootstrap);
	// Q and H are ignored.
	Catalog bool

	// Epoch is the client's last-seen update epoch; the response carries
	// invalidations for everything that changed since.
	Epoch uint64

	// FMR carries the client's recent false-miss rate when HasFMR is set
	// (the periodic feedback of the adaptive scheme, Section 4.3).
	FMR    float64
	HasFMR bool

	// Updates, when non-empty, turns the request into a batched index-update
	// message: the server applies the operations through its single-writer
	// update queue and answers with per-operation results instead of query
	// results (Q, H, and the caching fields are ignored). Shipping many
	// operations per frame is how a moving-object feed amortizes framing and
	// queueing costs — the writer coalesces whole batches into one published
	// snapshot.
	Updates []UpdateOp

	// Replica marks a replication-stream message: a primary shard forwarding
	// its acked update batches (or catalog probes) to a warm follower
	// (docs/DURABILITY.md). A follower-mode server rejects client updates
	// that do not carry this flag, so only its primary can mutate it; the
	// flag is carried as a bare bit on the wire and ordinary clients never
	// set it.
	Replica bool

	// Bound, when positive, is shard-routing metadata from a cluster router
	// (internal/cluster): a priority-key upper bound on the query. A kNN
	// sub-query carries the router's current global k-th-best distance, so a
	// shard whose nearest unexplored entry already exceeds the bound stops
	// descending instead of solving its full local top-k (docs/CLUSTER.md).
	// Zero means unbounded; single-node clients never set it.
	Bound float64
}

// UpdateKind selects an index mutation.
type UpdateKind uint8

const (
	// UpdateInsert adds an object (To rectangle, Size payload bytes).
	UpdateInsert UpdateKind = iota + 1
	// UpdateDelete removes an object identified by its current From rectangle.
	UpdateDelete
	// UpdateMove relocates an object from its From to its To rectangle.
	UpdateMove
)

// UpdateOp is one index mutation in a batched update request. Rectangles are
// matched exactly against the stored entry (the R-tree delete contract), so
// clients must echo rectangles at wire precision — see docs/UPDATES.md.
type UpdateOp struct {
	Kind UpdateKind
	Obj  rtree.ObjectID
	From geom.Rect // delete/move: the object's current rectangle
	To   geom.Rect // insert/move: the object's new rectangle
	Size int       // insert: payload bytes
}

// CutElem is one element of a shipped node representation: a real entry
// (child node or object) or a super entry of the node's partition tree.
type CutElem struct {
	Code  bpt.Code
	MBR   geom.Rect
	Super bool
	Child rtree.NodeID   // real entry referencing a child node
	Obj   rtree.ObjectID // real entry referencing an object
}

// Ref converts the element to a query engine reference, given the node it
// belongs to.
func (e CutElem) Ref(node rtree.NodeID) query.Ref {
	switch {
	case e.Super:
		return query.SuperRef(node, e.Code, e.MBR)
	case e.Child != rtree.InvalidNode:
		return query.NodeRef(e.Child, e.MBR)
	default:
		return query.ObjectRef(e.Obj, e.MBR)
	}
}

// NodeRep is the shipped representation of one index node: a cut of its
// binary partition tree (Section 4.2). Full form is the cut of all real
// entries.
type NodeRep struct {
	ID    rtree.NodeID
	Level int
	Elems []CutElem
}

// ObjectRep is one result object. Payload reports whether the object's bytes
// ride along (false when the server knows the client already holds them,
// i.e. deferred confirmations).
type ObjectRep struct {
	ID      rtree.ObjectID
	MBR     geom.Rect
	Size    int
	Payload bool
}

// Response is the downlink message.
type Response struct {
	// Objects are the remainder result objects Rr in server confirmation
	// order (ascending distance for kNN), streamed first.
	Objects []ObjectRep

	// Pairs lists join result pairs by object id; every id appears in
	// Objects or was locally confirmed by the client.
	Pairs [][2]rtree.ObjectID

	// Index is the supporting index Ir, parents before children.
	Index []NodeRep

	// K echoes the remainder kNN count the server solved (diagnostics).
	K int

	// RootID and RootMBR answer catalog requests and track root changes
	// after index updates.
	RootID  rtree.NodeID
	RootMBR geom.Rect

	// Epoch is the server's current update epoch; InvalidNodes and
	// InvalidObjs list what changed since the request's epoch. FlushAll
	// tells a client that fell off the update-log horizon to drop its
	// entire cache.
	Epoch        uint64
	FlushAll     bool
	InvalidNodes []rtree.NodeID
	InvalidObjs  []rtree.ObjectID

	// UpdateResults answers a batched update request: one entry per
	// Request.Updates operation, true when it was applied (a delete or move
	// whose From rectangle matched nothing reports false). Epoch above is the
	// epoch after the batch was published.
	UpdateResults []bool
}

// SizeModel assigns wire sizes in bytes. The defaults model the paper's
// setup: 4 KB pages of 20-byte entries (four float32 coordinates plus a
// 4-byte pointer), 4-byte object identifiers, and compact binary headers.
type SizeModel struct {
	Entry      int // node entry / cut element (super entries: MBR + code)
	NodeHeader int // per shipped NodeRep
	Query      int // query descriptor (kind + parameters)
	Elem       int // queued element reference in H (id + flags)
	PairElem   int // queued pair element in H
	ObjHeader  int // per ObjectRep (id + MBR + size)
	MsgHeader  int // fixed per request/response framing
	ID         int // bare object id (page-caching uplink)
	PairID     int // join pair (two ids)
	Feedback   int // piggybacked fmr feedback
}

// DefaultSizeModel returns the byte model used throughout the experiments.
func DefaultSizeModel() SizeModel {
	return SizeModel{
		Entry:      20,
		NodeHeader: 8,
		Query:      24,
		Elem:       10,
		PairElem:   18,
		ObjHeader:  24,
		MsgHeader:  16,
		ID:         4,
		PairID:     8,
		Feedback:   4,
	}
}

// RequestBytes returns the uplink size of a request.
func (m SizeModel) RequestBytes(r *Request) int {
	n := m.MsgHeader + m.Query
	for _, qe := range r.H {
		if qe.Elem.Pair {
			n += m.PairElem
		} else {
			n += m.Elem
		}
	}
	n += len(r.CachedIDs) * m.ID
	n += len(r.SemWindows) * 16 // four float32 coordinates per window
	if r.HasFMR {
		n += m.Feedback
	}
	for _, u := range r.Updates {
		n += 1 + m.ID + 16 // kind + object id + one rectangle
		if u.Kind == UpdateMove {
			n += 16 // second rectangle
		}
		if u.Kind == UpdateInsert {
			n += 4 // payload size
		}
	}
	if r.Bound > 0 {
		n += 4 // float32 shard-routing bound
	}
	return n
}

// IndexBytes returns the size of the supporting index portion of a response.
func (m SizeModel) IndexBytes(r *Response) int {
	n := 0
	for _, rep := range r.Index {
		n += m.NodeHeader + len(rep.Elems)*m.Entry
	}
	return n
}

// ResponseBytes returns the total downlink size of a response.
func (m SizeModel) ResponseBytes(r *Response) int {
	n := m.MsgHeader
	for _, o := range r.Objects {
		n += m.ObjHeader
		if o.Payload {
			n += o.Size
		}
	}
	n += len(r.Pairs) * m.PairID
	n += m.IndexBytes(r)
	n += (len(r.InvalidNodes) + len(r.InvalidObjs)) * m.ID
	n += len(r.UpdateResults) // one status byte per acknowledged operation
	return n
}

// Channel models the wireless link: a fixed bandwidth plus an optional fixed
// per-message latency. The paper's 3G setting is 384 Kbps with negligible
// latency.
type Channel struct {
	BytesPerSec float64
	Latency     float64
}

// DefaultChannel returns the paper's 384 Kbps channel.
func DefaultChannel() Channel {
	return Channel{BytesPerSec: 384_000 / 8}
}

// TransferTime returns the time to move n bytes over the channel.
func (c Channel) TransferTime(n int) float64 {
	if c.BytesPerSec <= 0 {
		return c.Latency
	}
	return c.Latency + float64(n)/c.BytesPerSec
}

// ResponseTimeline computes, for each response object, the elapsed time from
// query issue until the object is fully delivered, assuming the request is
// sent first and the response streams objects in order (results before
// index). It returns the per-object completion times aligned with
// resp.Objects, and the time at which the whole response (including Ir)
// finishes.
func (m SizeModel) ResponseTimeline(ch Channel, reqBytes int, resp *Response) (objDone []float64, total float64) {
	down := func(n int) float64 {
		if ch.BytesPerSec <= 0 {
			return 0
		}
		return float64(n) / ch.BytesPerSec
	}
	start := ch.TransferTime(reqBytes) + ch.Latency // uplink, then downlink latency
	objDone = make([]float64, len(resp.Objects))
	bytes := m.MsgHeader
	for i, o := range resp.Objects {
		bytes += m.ObjHeader
		if o.Payload {
			bytes += o.Size
		}
		objDone[i] = start + down(bytes)
	}
	bytes += len(resp.Pairs) * m.PairID
	bytes += m.IndexBytes(resp)
	total = start + down(bytes)
	return objDone, total
}
