package wire

import (
	"encoding/binary"
	"math"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// WAL record payload codec. A durable shard (internal/wal) logs the update
// operations its writer goroutine actually applied, and replays them on
// restart to reconstruct the exact in-memory index — same NodeIDs, same
// epochs — so warm client caches survive the crash (docs/DURABILITY.md).
//
// The layout mirrors the request Updates encoding, with one deliberate
// difference: rectangles are stored as float64 bits, not the wire's float32
// quantization. In-process transports hand the server full-precision
// rectangles, and the R-tree delete contract matches them exactly; a replay
// that quantized them would rebuild a different tree. The payload leads with
// the epoch the batch was applied at, so recovery can verify the log is a
// gapless continuation of the checkpoint.

const (
	minF64RectBytes   = 32                      // four float64
	minWALUpdateBytes = 1 + 1 + minF64RectBytes // kind + object id + one rect
)

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendRect64(b []byte, r geom.Rect) []byte {
	b = appendF64(b, r.MinX)
	b = appendF64(b, r.MinY)
	b = appendF64(b, r.MaxX)
	return appendF64(b, r.MaxY)
}

func (d *bdec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *bdec) rect64() geom.Rect {
	return geom.Rect{MinX: d.f64(), MinY: d.f64(), MaxX: d.f64(), MaxY: d.f64()}
}

// AppendWALPayload appends one WAL record payload — the epoch the batch was
// applied at followed by the applied operations at full float64 precision —
// to dst and returns the extended slice.
func AppendWALPayload(dst []byte, epochBefore uint64, ops []UpdateOp) []byte {
	b := binary.AppendUvarint(dst, epochBefore)
	b = binary.AppendUvarint(b, uint64(len(ops)))
	for _, u := range ops {
		b = append(b, byte(u.Kind))
		b = binary.AppendUvarint(b, uint64(u.Obj))
		switch u.Kind {
		case UpdateInsert:
			b = appendRect64(b, u.To)
			b = binary.AppendVarint(b, int64(u.Size))
		case UpdateMove:
			b = appendRect64(b, u.From)
			b = appendRect64(b, u.To)
		default: // UpdateDelete
			b = appendRect64(b, u.From)
		}
	}
	return b
}

// DecodeWALPayload decodes one WAL record payload. Malformed input returns
// ErrDecode; decoding never panics and never allocates beyond a small
// multiple of the input size.
func DecodeWALPayload(body []byte) (epochBefore uint64, ops []UpdateOp, err error) {
	d := &bdec{b: body}
	epochBefore = d.uvarint()
	if n := d.count(minWALUpdateBytes); n > 0 {
		ops = make([]UpdateOp, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			u := UpdateOp{Kind: UpdateKind(d.u8()), Obj: rtree.ObjectID(d.uvarint())}
			switch u.Kind {
			case UpdateInsert:
				u.To = d.rect64()
				u.Size = int(d.varint())
			case UpdateMove:
				u.From = d.rect64()
				u.To = d.rect64()
			case UpdateDelete:
				u.From = d.rect64()
			default:
				d.fail("unknown update kind %d", u.Kind)
			}
			ops = append(ops, u)
		}
	}
	if err := d.done(); err != nil {
		return 0, nil, err
	}
	return epochBefore, ops, nil
}
