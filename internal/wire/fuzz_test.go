package wire

import (
	"bufio"
	"bytes"
	"testing"
)

// Fuzz seed corpus: the canonical bodies of every message shape, plus a few
// deliberately hostile frames. `go test -fuzz` grows it from here; CI runs a
// short -fuzztime smoke over both targets.

func seedBodies() [][]byte {
	var seeds [][]byte
	for _, req := range testRequests() {
		seeds = append(seeds, EncodeRequest(nil, req))
	}
	for _, resp := range testResponses() {
		seeds = append(seeds, EncodeResponse(nil, resp))
	}
	return seeds
}

// FuzzDecodeFrame hammers the framing and both body decoders with arbitrary
// bytes: malformed or truncated input must return an error — never panic and
// never allocate past the bytes actually supplied (the decoder validates
// every count against the remaining input, and readFrame reads oversized
// frames in bounded chunks).
func FuzzDecodeFrame(f *testing.F) {
	for _, body := range seedBodies() {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := writeFrame(bw, frameRequest, 1, body); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:len(buf.Bytes())/2]) // truncated frame
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})       // absurd length prefix
	f.Add([]byte{0, 0, 0x80, 0, 1, 1})          // 8 MiB claim, 2 bytes sent
	f.Add([]byte{2, 0, 0, 0, frameResponse, 0}) // minimal frame, empty body
	f.Add(append([]byte{8, 0, 0, 0}, handshakeMagic[:]...))
	edgePreamble := handshakePreamble(RoleEdge)
	f.Add(append([]byte{8, 0, 0, 0}, edgePreamble[:]...))
	f.Add(edgePreamble[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, _, body, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		_ = typ
		// A structurally valid frame may still carry garbage: both decoders
		// must reject it gracefully.
		if req, err := DecodeRequest(body); err == nil && req == nil {
			t.Fatal("nil request without error")
		}
		if resp, err := DecodeResponse(body); err == nil && resp == nil {
			t.Fatal("nil response without error")
		}
	})
}

// FuzzCodecRoundTrip checks encode∘decode idempotence: any bytes the decoder
// accepts must re-encode to a stable canonical form (decoding that form and
// encoding again yields identical bytes). This pins down lossiness to the
// documented cases only (float32 geometry, dropped priority keys) and proves
// the codec cannot silently corrupt a message it accepted.
func FuzzCodecRoundTrip(f *testing.F) {
	for _, body := range seedBodies() {
		f.Add(body)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := DecodeRequest(data); err == nil {
			b1 := EncodeRequest(nil, req)
			req2, err := DecodeRequest(b1)
			if err != nil {
				t.Fatalf("re-decode of accepted request failed: %v", err)
			}
			if b2 := EncodeRequest(nil, req2); !bytes.Equal(b1, b2) {
				t.Fatalf("request encoding not canonical:\n b1 %x\n b2 %x", b1, b2)
			}
		}
		if resp, err := DecodeResponse(data); err == nil {
			b1 := EncodeResponse(nil, resp)
			resp2, err := DecodeResponse(b1)
			if err != nil {
				t.Fatalf("re-decode of accepted response failed: %v", err)
			}
			if b2 := EncodeResponse(nil, resp2); !bytes.Equal(b1, b2) {
				t.Fatalf("response encoding not canonical:\n b1 %x\n b2 %x", b1, b2)
			}
		}
	})
}
