package wire

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/metrics"
)

// NetServer runs the gob protocol on a listener with the concerns a real
// deployment needs: a goroutine per connection behind a connection limit, a
// bounded pool of concurrently executing requests (so a burst of thousands
// of connections cannot stampede the query engine), per-request read
// deadlines that reap idle connections, live serving statistics, and a
// graceful Shutdown that stops accepting, lets in-flight requests finish,
// and then closes everything.

// Defaults applied by NewNetServer when a ServeConfig field is zero.
const (
	// DefaultMaxConns bounds concurrently open client connections.
	DefaultMaxConns = 4096
	// DefaultReadTimeout reaps connections idle for this long between
	// requests.
	DefaultReadTimeout = 5 * time.Minute
)

// ErrServerClosed is returned by NetServer.Serve after Shutdown or Close.
var ErrServerClosed = errors.New("wire: server closed")

// ServeConfig parameterizes a NetServer.
type ServeConfig struct {
	// MaxConns is the maximum number of concurrently open connections;
	// connections beyond it are sent an error envelope and closed.
	// Default DefaultMaxConns. Negative means unlimited.
	MaxConns int
	// MaxInflight bounds requests executing at once across all
	// connections (the worker pool). Default 4*GOMAXPROCS. Negative means
	// unlimited.
	MaxInflight int
	// ReadTimeout is how long a connection may sit idle between requests
	// before it is closed. Default DefaultReadTimeout. Negative disables
	// the deadline.
	ReadTimeout time.Duration
	// Stats receives serving counters; nil allocates a private one.
	Stats *metrics.ServerStats
}

// NetServer is a concurrent gob-protocol server. Create one with
// NewNetServer; Serve blocks until the listener fails or Shutdown/Close is
// called.
type NetServer struct {
	handle  Handler
	cfg     ServeConfig
	stats   *metrics.ServerStats
	sem     chan struct{} // in-flight request tokens; nil = unlimited
	connSem chan struct{} // connection tokens; nil = unlimited

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	shutdown bool
	wg       sync.WaitGroup // live connection handlers
}

// NewNetServer builds a server around a request handler.
func NewNetServer(handle Handler, cfg ServeConfig) *NetServer {
	if cfg.MaxConns == 0 {
		cfg.MaxConns = DefaultMaxConns
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 4 * runtime.GOMAXPROCS(0)
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = DefaultReadTimeout
	}
	s := &NetServer{
		handle: handle,
		cfg:    cfg,
		stats:  cfg.Stats,
		conns:  make(map[net.Conn]struct{}),
	}
	if s.stats == nil {
		s.stats = &metrics.ServerStats{}
	}
	if cfg.MaxInflight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInflight)
	}
	if cfg.MaxConns > 0 {
		s.connSem = make(chan struct{}, cfg.MaxConns)
	}
	return s
}

// Stats returns the server's counters (live; snapshot before printing).
func (s *NetServer) Stats() *metrics.ServerStats { return s.stats }

// Serve accepts connections on ln until the listener errors or the server
// is shut down, in which case it returns ErrServerClosed.
func (s *NetServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.shuttingDown() {
				return ErrServerClosed
			}
			return err
		}
		s.stats.TotalConns.Add(1)

		if s.connSem != nil {
			select {
			case s.connSem <- struct{}{}:
			default:
				s.stats.RejectedConns.Add(1)
				go rejectConn(conn)
				continue
			}
		}
		if !s.track(conn) {
			if s.connSem != nil {
				<-s.connSem
			}
			conn.Close()
			continue
		}
		go s.serveConn(conn)
	}
}

// rejectConn tells a client the server is full, then hangs up.
func rejectConn(conn net.Conn) {
	defer conn.Close()
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	_ = gob.NewEncoder(conn).Encode(envelope{Err: "server at connection limit"})
}

// track registers a live connection; it refuses during shutdown. The
// WaitGroup increment happens under the same lock that Shutdown takes to
// set the flag, so Shutdown can never observe a tracked-but-uncounted
// connection.
func (s *NetServer) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shutdown {
		return false
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	return true
}

func (s *NetServer) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *NetServer) shuttingDown() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shutdown
}

// serveConn runs the request loop for one connection.
func (s *NetServer) serveConn(conn net.Conn) {
	s.stats.ActiveConns.Add(1)
	defer func() {
		s.untrack(conn)
		conn.Close()
		if s.connSem != nil {
			<-s.connSem
		}
		s.stats.ActiveConns.Add(-1)
		s.wg.Done()
	}()

	bw := bufio.NewWriter(conn)
	enc := gob.NewEncoder(writeFlusher{bw})
	dec := gob.NewDecoder(bufio.NewReader(conn))
	for {
		if s.cfg.ReadTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		// Re-check after arming the deadline: Shutdown sets the flag and
		// nudges deadlines in one critical section, so if the deadline
		// write above clobbered the nudge, the flag is already visible
		// here — without this check a racing idle connection would sleep
		// out its full ReadTimeout and turn graceful drain into a
		// ctx-timeout force close.
		if s.shuttingDown() {
			return
		}
		var env envelope
		if err := dec.Decode(&env); err != nil {
			// EOF, idle timeout, or the shutdown nudge: hang up quietly.
			return
		}
		if env.Req == nil {
			if err := enc.Encode(envelope{Err: "empty request envelope"}); err != nil {
				return
			}
			continue
		}

		if s.sem != nil {
			s.sem <- struct{}{}
		}
		start := time.Now()
		resp, err := s.handle(env.Req)
		s.stats.Latency.Observe(time.Since(start))
		if s.sem != nil {
			<-s.sem
		}
		s.stats.Requests.Add(1)

		out := envelope{Resp: resp}
		if err != nil {
			s.stats.Errors.Add(1)
			out = envelope{Err: err.Error()}
		}
		if err := enc.Encode(out); err != nil {
			return
		}
		if s.shuttingDown() {
			// The in-flight request is answered; drain by refusing the next.
			return
		}
	}
}

// Shutdown gracefully stops the server: it closes the listener, nudges idle
// connections awake, waits for in-flight requests to be answered, and then
// closes the remaining connections. If ctx expires first, lingering
// connections are force-closed and ctx.Err() is returned.
func (s *NetServer) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.shutdown = true
	if s.ln != nil {
		s.ln.Close()
	}
	// Interrupt reads blocked waiting for the next request. A connection
	// mid-request keeps running: its handler finishes and the response is
	// written before the loop notices the shutdown flag.
	for conn := range s.conns {
		_ = conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Force-close the sockets and give up: a handler stuck in
		// user code cannot be interrupted, so waiting further could
		// block forever (same contract as net/http.Server.Shutdown).
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// Close immediately closes the listener and every connection without
// waiting for in-flight requests.
func (s *NetServer) Close() error {
	s.mu.Lock()
	s.shutdown = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	return err
}
