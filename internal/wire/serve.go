package wire

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// NetServer runs the wire protocol on a listener with the concerns a real
// deployment needs: a goroutine per connection behind a connection limit, a
// bounded pool of concurrently executing requests (so a burst of thousands
// of connections cannot stampede the query engine), per-request read
// deadlines that reap idle connections, live serving statistics, and a
// graceful Shutdown that stops accepting, lets in-flight requests finish,
// and then closes everything.
//
// Each connection's protocol is negotiated from its first bytes: binary
// clients open with the handshake preamble and get framed, pipelined,
// out-of-order service (many requests in flight per connection, responses
// correlated by id); gob clients get the serial fallback loop.

// Defaults applied by NewNetServer when a ServeConfig field is zero.
const (
	// DefaultMaxConns bounds concurrently open client connections.
	DefaultMaxConns = 4096
	// DefaultReadTimeout reaps connections idle for this long between
	// requests.
	DefaultReadTimeout = 5 * time.Minute
	// DefaultMaxPipeline bounds requests in flight on one binary
	// connection before the server stops reading further frames from it
	// (natural backpressure against a client that pipelines faster than
	// the server answers).
	DefaultMaxPipeline = 64
)

// ErrServerClosed is returned by NetServer.Serve after Shutdown or Close.
var ErrServerClosed = errors.New("wire: server closed")

// respBodyPool recycles binary response encode buffers: a frame body is
// dead as soon as writeFrame copies it into the connection's bufio writer.
var respBodyPool = sync.Pool{New: func() any { return new([]byte) }}

// ServeConfig parameterizes a NetServer.
type ServeConfig struct {
	// MaxConns is the maximum number of concurrently open connections;
	// connections beyond it are sent an error envelope and closed.
	// Default DefaultMaxConns. Negative means unlimited.
	MaxConns int
	// MaxInflight bounds requests executing at once across all
	// connections (the worker pool). Default 4*GOMAXPROCS. Negative means
	// unlimited.
	MaxInflight int
	// MaxPipeline bounds requests in flight on one binary connection;
	// when reached the server stops reading frames from that connection
	// until a response is written. Default DefaultMaxPipeline. Negative
	// means unlimited.
	MaxPipeline int
	// ReadTimeout is how long a connection may sit idle between requests
	// before it is closed. Default DefaultReadTimeout. Negative disables
	// the deadline.
	ReadTimeout time.Duration
	// Stats receives serving counters; nil allocates a private one.
	Stats *metrics.ServerStats
	// Release, when set, is called with each response after its bytes are
	// on the wire, letting a pooling handler (server.ReleaseResponse)
	// recycle response memory. The server must not touch a response after
	// releasing it.
	Release func(*Response)
	// HandleBatch, when set, receives runs of pipelined requests that were
	// already fully buffered on a binary connection (drained without
	// blocking after the first frame of a read pass, up to MaxPipeline or
	// MaxBatch, whichever is smaller). Single requests and the gob protocol
	// keep using the plain handler.
	HandleBatch BatchHandler
}

// MaxBatch caps requests per HandleBatch call regardless of MaxPipeline.
const MaxBatch = 64

// NetServer is a concurrent wire-protocol server. Create one with
// NewNetServer; Serve blocks until the listener fails or Shutdown/Close is
// called.
type NetServer struct {
	handle  Handler
	cfg     ServeConfig
	stats   *metrics.ServerStats
	sem     chan struct{} // in-flight request tokens; nil = unlimited
	connSem chan struct{} // connection tokens; nil = unlimited

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	shutdown bool
	wg       sync.WaitGroup // live connection handlers
}

// NewNetServer builds a server around a request handler.
func NewNetServer(handle Handler, cfg ServeConfig) *NetServer {
	if cfg.MaxConns == 0 {
		cfg.MaxConns = DefaultMaxConns
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 4 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxPipeline == 0 {
		cfg.MaxPipeline = DefaultMaxPipeline
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = DefaultReadTimeout
	}
	s := &NetServer{
		handle: handle,
		cfg:    cfg,
		stats:  cfg.Stats,
		conns:  make(map[net.Conn]struct{}),
	}
	if s.stats == nil {
		s.stats = &metrics.ServerStats{}
	}
	if cfg.MaxInflight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInflight)
	}
	if cfg.MaxConns > 0 {
		s.connSem = make(chan struct{}, cfg.MaxConns)
	}
	return s
}

// Stats returns the server's counters (live; snapshot before printing).
func (s *NetServer) Stats() *metrics.ServerStats { return s.stats }

// Serve accepts connections on ln until the listener errors or the server
// is shut down, in which case it returns ErrServerClosed.
func (s *NetServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.shuttingDown() {
				return ErrServerClosed
			}
			return err
		}
		s.stats.TotalConns.Add(1)

		if s.connSem != nil {
			select {
			case s.connSem <- struct{}{}:
			default:
				s.stats.RejectedConns.Add(1)
				go rejectConn(conn)
				continue
			}
		}
		if !s.track(conn) {
			if s.connSem != nil {
				<-s.connSem
			}
			conn.Close()
			continue
		}
		go s.serveConn(conn)
	}
}

// rejectConn tells a client the server is full — in whichever protocol the
// client opened with — then hangs up.
func rejectConn(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	const limitMsg = "server at connection limit"
	br := bufio.NewReaderSize(conn, len(handshakeMagic))
	if isBinary, _, err := sniffBinary(br); err == nil && isBinary {
		bw := bufio.NewWriter(conn)
		if _, err := bw.Write(handshakeMagic[:]); err != nil {
			return
		}
		// Error frame id 0 is connection-scoped: the client fails every
		// round trip on this connection with the message.
		_ = writeFrame(bw, frameError, 0, []byte(limitMsg))
		return
	}
	_ = gob.NewEncoder(conn).Encode(envelope{Err: limitMsg})
}

// track registers a live connection; it refuses during shutdown. The
// WaitGroup increment happens under the same lock that Shutdown takes to
// set the flag, so Shutdown can never observe a tracked-but-uncounted
// connection.
func (s *NetServer) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shutdown {
		return false
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	return true
}

func (s *NetServer) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *NetServer) shuttingDown() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shutdown
}

// countingConn counts bytes crossing the socket into the serving stats, for
// either protocol, underneath any buffering.
type countingConn struct {
	net.Conn
	stats *metrics.ServerStats
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.stats.BytesIn.Add(int64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.stats.BytesOut.Add(int64(n))
	return n, err
}

// serveConn sniffs the connection's protocol and runs the matching request
// loop.
func (s *NetServer) serveConn(conn net.Conn) {
	s.stats.ActiveConns.Add(1)
	defer func() {
		s.untrack(conn)
		conn.Close()
		if s.connSem != nil {
			<-s.connSem
		}
		s.stats.ActiveConns.Add(-1)
		s.wg.Done()
	}()

	cc := countingConn{Conn: conn, stats: s.stats}
	br := bufio.NewReader(cc)
	if s.cfg.ReadTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	}
	isBinary, role, err := sniffBinary(br)
	if err != nil {
		return
	}
	if isBinary {
		if role == RoleEdge {
			s.stats.EdgeConns.Add(1)
			defer s.stats.EdgeConns.Add(-1)
		}
		s.serveBinary(conn, cc, br)
		return
	}
	s.serveGob(conn, cc, br)
}

// serveBinary is the pipelined request loop: frames are read as fast as they
// arrive (up to MaxPipeline in flight), each request executes on its own
// goroutine gated by the shared worker pool, and responses are written in
// completion order tagged with the request's correlation id.
func (s *NetServer) serveBinary(conn net.Conn, cc countingConn, br *bufio.Reader) {
	bw := bufio.NewWriter(cc)
	if _, err := bw.Write(handshakeMagic[:]); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	var (
		wmu         sync.Mutex
		workers     sync.WaitGroup
		inflight    atomic.Int64
		writeFailed atomic.Bool
	)
	// Let in-flight handlers finish and their responses drain before
	// serveConn's deferred Close tears the connection down.
	defer workers.Wait()

	var pipeSem chan struct{}
	if s.cfg.MaxPipeline > 0 {
		pipeSem = make(chan struct{}, s.cfg.MaxPipeline)
	}

	writeResp := func(typ byte, id uint64, body []byte) bool {
		wmu.Lock()
		defer wmu.Unlock()
		if writeFailed.Load() {
			return false
		}
		if s.cfg.ReadTimeout > 0 {
			// Bound how long a stalled client can wedge response writers.
			_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		if err := writeFrame(bw, typ, id, body); err != nil {
			writeFailed.Store(true)
			return false
		}
		return true
	}

	for {
		if s.cfg.ReadTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		if s.shuttingDown() || writeFailed.Load() {
			return
		}
		// Idle wait: Peek consumes nothing, so a deadline here leaves the
		// stream intact and the loop can keep waiting while responses for
		// pipelined requests are still in flight. Once a frame has begun
		// to arrive it must complete within the read timeout.
		if _, err := br.Peek(1); err != nil {
			if isTimeout(err) && inflight.Load() > 0 && !s.shuttingDown() {
				continue
			}
			return
		}
		typ, id, body, err := readFrame(br)
		if err != nil {
			return
		}
		if typ != frameRequest {
			writeResp(frameError, 0, []byte("unexpected frame type"))
			return
		}
		req, err := DecodeRequest(body)
		if err != nil {
			// Frame boundaries held; the stream is still in sync.
			s.stats.Errors.Add(1)
			if !writeResp(frameError, id, []byte(err.Error())) {
				return
			}
			continue
		}

		// Batch drain: when the application installed a batch handler and the
		// client's pipeline burst landed more complete frames in the read
		// buffer, hand the whole run over in one call instead of a goroutine
		// per request.
		if s.cfg.HandleBatch != nil && br.Buffered() >= 4 {
			ids, reqs, fatal := s.drainBuffered(br, writeResp, id, req)
			if fatal {
				return
			}
			if len(reqs) > 1 {
				for range reqs {
					if pipeSem != nil {
						pipeSem <- struct{}{}
					}
				}
				workers.Add(1)
				inflight.Add(int64(len(reqs)))
				go func(ids []uint64, reqs []*Request) {
					defer func() {
						inflight.Add(-int64(len(reqs)))
						workers.Done()
						if pipeSem != nil {
							for range reqs {
								<-pipeSem
							}
						}
					}()
					// One worker-pool token serves the whole batch: the
					// batch is one unit of execution on the application side.
					if s.sem != nil {
						s.sem <- struct{}{}
					}
					start := time.Now()
					resps, errs := s.cfg.HandleBatch(reqs)
					elapsed := time.Since(start)
					if s.sem != nil {
						<-s.sem
					}
					s.stats.Batches.Add(1)
					s.stats.Requests.Add(int64(len(reqs)))
					for i := range reqs {
						s.stats.Latency.Observe(elapsed)
						if errs != nil && errs[i] != nil {
							s.stats.Errors.Add(1)
							writeResp(frameError, ids[i], []byte(errs[i].Error()))
							continue
						}
						var resp *Response
						if i < len(resps) {
							resp = resps[i]
						}
						if resp == nil {
							s.stats.Errors.Add(1)
							writeResp(frameError, ids[i], []byte("batch handler returned no response"))
							continue
						}
						body := respBodyPool.Get().(*[]byte)
						*body = EncodeResponse((*body)[:0], resp)
						if s.cfg.Release != nil {
							s.cfg.Release(resp)
						}
						writeResp(frameResponse, ids[i], *body)
						respBodyPool.Put(body)
					}
				}(ids, reqs)
				continue
			}
		}

		if pipeSem != nil {
			pipeSem <- struct{}{}
		}
		workers.Add(1)
		inflight.Add(1)
		go func(id uint64, req *Request) {
			defer func() {
				inflight.Add(-1)
				workers.Done()
				if pipeSem != nil {
					<-pipeSem
				}
			}()
			if s.sem != nil {
				s.sem <- struct{}{}
			}
			start := time.Now()
			resp, err := s.handle(req)
			s.stats.Latency.Observe(time.Since(start))
			if s.sem != nil {
				<-s.sem
			}
			s.stats.Requests.Add(1)
			if err != nil {
				s.stats.Errors.Add(1)
				writeResp(frameError, id, []byte(err.Error()))
				return
			}
			body := respBodyPool.Get().(*[]byte)
			*body = EncodeResponse((*body)[:0], resp)
			if s.cfg.Release != nil {
				s.cfg.Release(resp)
			}
			writeResp(frameResponse, id, *body)
			respBodyPool.Put(body)
		}(id, req)
	}
}

// drainBuffered collects request frames that are already fully buffered on a
// binary connection — never touching the socket — and returns them together
// with the first decoded request of the read pass. A pipelining client's
// burst typically lands in one read, so everything behind the first frame is
// sitting in the bufio buffer by the time it is decoded. Batches are capped
// at MaxBatch and MaxPipeline. fatal reports a protocol violation or write
// failure; the caller must tear the connection down.
func (s *NetServer) drainBuffered(br *bufio.Reader, writeResp func(byte, uint64, []byte) bool, firstID uint64, first *Request) (ids []uint64, reqs []*Request, fatal bool) {
	max := MaxBatch
	if s.cfg.MaxPipeline > 0 && s.cfg.MaxPipeline < max {
		max = s.cfg.MaxPipeline
	}
	ids = append(ids, firstID)
	reqs = append(reqs, first)
	for len(reqs) < max {
		buffered := br.Buffered()
		if buffered < 4 {
			break
		}
		head, err := br.Peek(4)
		if err != nil {
			break
		}
		// The 4-byte prefix counts the frame's remaining bytes; only a frame
		// whose every byte is already buffered is consumed (readFrame on it
		// cannot block).
		if n := binary.LittleEndian.Uint32(head); uint64(buffered) < 4+uint64(n) {
			break
		}
		typ, id, body, err := readFrame(br)
		if err != nil {
			return nil, nil, true
		}
		if typ != frameRequest {
			writeResp(frameError, 0, []byte("unexpected frame type"))
			return nil, nil, true
		}
		req, err := DecodeRequest(body)
		if err != nil {
			s.stats.Errors.Add(1)
			if !writeResp(frameError, id, []byte(err.Error())) {
				return nil, nil, true
			}
			continue
		}
		ids = append(ids, id)
		reqs = append(reqs, req)
	}
	return ids, reqs, false
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// serveGob is the serial gob fallback loop (one request per round trip).
func (s *NetServer) serveGob(conn net.Conn, cc countingConn, br *bufio.Reader) {
	bw := bufio.NewWriter(cc)
	enc := gob.NewEncoder(writeFlusher{bw})
	dec := gob.NewDecoder(br)
	for {
		if s.cfg.ReadTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		// Re-check after arming the deadline: Shutdown sets the flag and
		// nudges deadlines in one critical section, so if the deadline
		// write above clobbered the nudge, the flag is already visible
		// here — without this check a racing idle connection would sleep
		// out its full ReadTimeout and turn graceful drain into a
		// ctx-timeout force close.
		if s.shuttingDown() {
			return
		}
		var env envelope
		if err := dec.Decode(&env); err != nil {
			// EOF, idle timeout, or the shutdown nudge: hang up quietly.
			return
		}
		if env.Req == nil {
			if err := enc.Encode(envelope{Err: "empty request envelope"}); err != nil {
				return
			}
			continue
		}

		if s.sem != nil {
			s.sem <- struct{}{}
		}
		start := time.Now()
		resp, err := s.handle(env.Req)
		s.stats.Latency.Observe(time.Since(start))
		if s.sem != nil {
			<-s.sem
		}
		s.stats.Requests.Add(1)

		out := envelope{Resp: resp}
		if err != nil {
			s.stats.Errors.Add(1)
			out = envelope{Err: err.Error()}
		}
		if s.cfg.ReadTimeout > 0 {
			// Same guard as the binary path: a client that stops reading
			// must not wedge this goroutine (and its connSem slot) forever,
			// or graceful Shutdown degrades to a force close.
			_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		encErr := enc.Encode(out)
		if resp != nil && s.cfg.Release != nil {
			s.cfg.Release(resp)
		}
		if encErr != nil {
			return
		}
		if s.shuttingDown() {
			// The in-flight request is answered; drain by refusing the next.
			return
		}
	}
}

// Shutdown gracefully stops the server: it closes the listener, nudges idle
// connections awake, waits for in-flight requests to be answered, and then
// closes the remaining connections. If ctx expires first, lingering
// connections are force-closed and ctx.Err() is returned.
func (s *NetServer) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.shutdown = true
	if s.ln != nil {
		s.ln.Close()
	}
	// Interrupt reads blocked waiting for the next request. A connection
	// mid-request keeps running: its handler finishes and the response is
	// written before the loop notices the shutdown flag.
	for conn := range s.conns {
		_ = conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Force-close the sockets and give up: a handler stuck in
		// user code cannot be interrupted, so waiting further could
		// block forever (same contract as net/http.Server.Shutdown).
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// Close immediately closes the listener and every connection without
// waiting for in-flight requests.
func (s *NetServer) Close() error {
	s.mu.Lock()
	s.shutdown = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	return err
}
