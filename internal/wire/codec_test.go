package wire

import (
	"math/rand"
	"net"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bpt"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
)

func randRequest(r *rand.Rand) *Request {
	req := &Request{
		Client: ClientID(r.Uint32()),
		Epoch:  r.Uint64() % 1000,
	}
	switch r.Intn(3) {
	case 0:
		req.Q = query.NewRange(geom.R(r.Float64(), r.Float64(), 1+r.Float64(), 1+r.Float64()))
	case 1:
		req.Q = query.NewKNN(geom.Pt(r.Float64(), r.Float64()), 1+r.Intn(9))
	default:
		req.Q = query.NewJoin(geom.R(0, 0, r.Float64(), r.Float64()), r.Float64()*0.01)
	}
	for i := 0; i < r.Intn(5); i++ {
		ref := query.NodeRef(rtree.NodeID(r.Uint32()%1000+1), geom.R(0, 0, r.Float64(), r.Float64()))
		if r.Intn(2) == 0 {
			ref = query.SuperRef(rtree.NodeID(r.Uint32()%1000+1), bpt.Code("0110"[:r.Intn(4)+1]), geom.R(0, 0, 1, 1))
		}
		req.H = append(req.H, query.QueuedElem{Key: r.Float64(), Elem: query.Single(ref), Deferred: r.Intn(2) == 0})
	}
	for i := 0; i < r.Intn(4); i++ {
		req.CachedIDs = append(req.CachedIDs, rtree.ObjectID(r.Uint32()))
	}
	if r.Intn(2) == 0 {
		req.HasFMR = true
		req.FMR = r.Float64()
	}
	if r.Intn(3) == 0 {
		req.Bound = r.Float64() // cluster sub-query distance bound
	}
	if r.Intn(3) == 0 {
		for i := 0; i < 1+r.Intn(4); i++ {
			u := UpdateOp{Obj: rtree.ObjectID(r.Uint32())}
			switch r.Intn(3) {
			case 0:
				u.Kind = UpdateInsert
				u.To = geom.R(0, 0, r.Float64(), r.Float64())
				u.Size = r.Intn(10000)
			case 1:
				u.Kind = UpdateDelete
				u.From = geom.R(0, 0, r.Float64(), r.Float64())
			default:
				u.Kind = UpdateMove
				u.From = geom.R(0, 0, r.Float64(), r.Float64())
				u.To = geom.R(0, 0, r.Float64(), r.Float64())
			}
			req.Updates = append(req.Updates, u)
		}
	}
	return req
}

func randResponse(r *rand.Rand) *Response {
	resp := &Response{
		K:      r.Intn(10),
		Epoch:  r.Uint64() % 1000,
		RootID: rtree.NodeID(r.Uint32() % 100),
	}
	for i := 0; i < r.Intn(6); i++ {
		resp.Objects = append(resp.Objects, ObjectRep{
			ID:      rtree.ObjectID(r.Uint32()),
			MBR:     geom.R(0, 0, r.Float64(), r.Float64()),
			Size:    r.Intn(10000),
			Payload: r.Intn(2) == 0,
		})
	}
	for i := 0; i < r.Intn(3); i++ {
		resp.Pairs = append(resp.Pairs, [2]rtree.ObjectID{rtree.ObjectID(r.Uint32()), rtree.ObjectID(r.Uint32())})
	}
	for i := 0; i < r.Intn(3); i++ {
		rep := NodeRep{ID: rtree.NodeID(r.Uint32() % 1000), Level: r.Intn(4)}
		for j := 0; j < 1+r.Intn(5); j++ {
			rep.Elems = append(rep.Elems, CutElem{
				Code:  bpt.Code("01011"[:r.Intn(5)+1]),
				MBR:   geom.R(0, 0, r.Float64(), r.Float64()),
				Super: r.Intn(2) == 0,
				Child: rtree.NodeID(r.Uint32() % 100),
			})
		}
		resp.Index = append(resp.Index, rep)
	}
	if r.Intn(4) == 0 {
		resp.FlushAll = true
	}
	for i := 0; i < r.Intn(3); i++ {
		resp.InvalidNodes = append(resp.InvalidNodes, rtree.NodeID(r.Uint32()))
		resp.InvalidObjs = append(resp.InvalidObjs, rtree.ObjectID(r.Uint32()))
	}
	for i := 0; i < r.Intn(4); i++ {
		resp.UpdateResults = append(resp.UpdateResults, r.Intn(2) == 0)
	}
	return resp
}

// Property: arbitrary protocol messages survive the gob codec bit-for-bit.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		req := randRequest(r)
		wantResp := randResponse(r)

		c1, c2 := net.Pipe()
		defer c1.Close()
		defer c2.Close()

		var gotReq *Request
		served := make(chan error, 1)
		go func() {
			served <- ServeConn(c2, func(q *Request) (*Response, error) {
				gotReq = q
				return wantResp, nil
			})
		}()

		client := NewClientConn(c1)
		resp, err := client.RoundTrip(req)
		if err != nil {
			t.Logf("roundtrip: %v", err)
			return false
		}
		c1.Close()
		if err := <-served; err != nil {
			t.Logf("serve: %v", err)
			return false
		}
		if !reflect.DeepEqual(gotReq, req) {
			t.Logf("request mangled:\n got %+v\nwant %+v", gotReq, req)
			return false
		}
		if !reflect.DeepEqual(resp, wantResp) {
			t.Logf("response mangled:\n got %+v\nwant %+v", resp, wantResp)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
