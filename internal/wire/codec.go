package wire

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// The gob codec carries the protocol over a real byte stream (cmd/prodb and
// examples/netclient). The simulation never uses it — byte accounting there
// comes from SizeModel — but the encodings round-trip every message type, so
// the repository doubles as a working networked spatial database.

// envelope tags each message on the stream.
type envelope struct {
	Req  *Request
	Resp *Response
	Err  string
}

// ClientConn is a Transport over a network connection (or any
// io.ReadWriter). It serializes concurrent RoundTrip calls.
type ClientConn struct {
	mu  sync.Mutex
	enc *gob.Encoder
	dec *gob.Decoder
	rw  io.ReadWriter
}

// NewClientConn wraps a connection as a Transport.
func NewClientConn(rw io.ReadWriter) *ClientConn {
	bw := bufio.NewWriter(rw)
	return &ClientConn{
		enc: gob.NewEncoder(writeFlusher{bw}),
		dec: gob.NewDecoder(bufio.NewReader(rw)),
		rw:  rw,
	}
}

type writeFlusher struct{ *bufio.Writer }

// Write forwards to the buffered writer and flushes, so each gob message
// leaves the process as soon as it is encoded.
func (w writeFlusher) Write(p []byte) (int, error) {
	n, err := w.Writer.Write(p)
	if err != nil {
		return n, err
	}
	return n, w.Flush()
}

// RoundTrip implements Transport.
func (c *ClientConn) RoundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(envelope{Req: req}); err != nil {
		return nil, fmt.Errorf("wire: send request: %w", err)
	}
	var env envelope
	if err := c.dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("wire: read response: %w", err)
	}
	if env.Err != "" {
		return nil, fmt.Errorf("wire: server error: %s", env.Err)
	}
	if env.Resp == nil {
		return nil, errors.New("wire: empty response envelope")
	}
	return env.Resp, nil
}

// Handler processes one request on the server side.
type Handler func(*Request) (*Response, error)

// ServeConn answers requests on a connection until it closes.
func ServeConn(rw io.ReadWriter, handle Handler) error {
	bw := bufio.NewWriter(rw)
	enc := gob.NewEncoder(writeFlusher{bw})
	dec := gob.NewDecoder(bufio.NewReader(rw))
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("wire: decode: %w", err)
		}
		if env.Req == nil {
			if err := enc.Encode(envelope{Err: "empty request envelope"}); err != nil {
				return err
			}
			continue
		}
		resp, err := handle(env.Req)
		out := envelope{Resp: resp}
		if err != nil {
			out = envelope{Err: err.Error()}
		}
		if err := enc.Encode(out); err != nil {
			return fmt.Errorf("wire: encode: %w", err)
		}
	}
}
