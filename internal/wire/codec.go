package wire

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// The gob codec is the compatibility fallback of the wire protocol: it
// predates the binary codec (binary.go) and remains fully supported so old
// clients keep working. Servers sniff the first bytes of a connection — the
// binary protocol always opens with the handshake preamble, a gob stream
// never does — and speak whichever protocol the client chose. The
// simulation never uses either codec (byte accounting there comes from
// SizeModel), but both round-trip every message type, so the repository
// doubles as a working networked spatial database.

// envelope tags each message on the stream.
type envelope struct {
	Req  *Request
	Resp *Response
	Err  string
}

// ClientConn is a gob-protocol Transport over a network connection (or any
// io.ReadWriter). It serializes concurrent RoundTrip calls — one request per
// round trip, in order. New code should prefer BinaryClientConn, which
// pipelines; ClientConn remains for compatibility with gob-only servers.
type ClientConn struct {
	mu  sync.Mutex
	enc *gob.Encoder
	dec *gob.Decoder
	rw  io.ReadWriter
}

// NewClientConn wraps a connection as a Transport.
func NewClientConn(rw io.ReadWriter) *ClientConn {
	bw := bufio.NewWriter(rw)
	return &ClientConn{
		enc: gob.NewEncoder(writeFlusher{bw}),
		dec: gob.NewDecoder(bufio.NewReader(rw)),
		rw:  rw,
	}
}

type writeFlusher struct{ *bufio.Writer }

// Write forwards to the buffered writer and flushes, so each gob message
// leaves the process as soon as it is encoded.
func (w writeFlusher) Write(p []byte) (int, error) {
	n, err := w.Writer.Write(p)
	if err != nil {
		return n, err
	}
	return n, w.Flush()
}

// RoundTrip implements Transport.
func (c *ClientConn) RoundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(envelope{Req: req}); err != nil {
		return nil, fmt.Errorf("wire: send request: %w", err)
	}
	var env envelope
	if err := c.dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("wire: read response: %w", err)
	}
	if env.Err != "" {
		return nil, fmt.Errorf("wire: server error: %s", env.Err)
	}
	if env.Resp == nil {
		return nil, errors.New("wire: empty response envelope")
	}
	return env.Resp, nil
}

// Handler processes one request on the server side.
type Handler func(*Request) (*Response, error)

// BatchHandler processes a contiguous run of decoded requests drained from
// one connection's pipeline in a single call, letting the application
// amortize per-request setup (snapshot pinning, execution-state checkout,
// shared traversal work) across the batch. It must return exactly
// len(reqs) responses: resps[i] answers reqs[i], and a per-request failure
// is reported through errs[i] (with resps[i] ignored). errs may be nil when
// every request succeeded.
type BatchHandler func(reqs []*Request) (resps []*Response, errs []error)

// ServeConn answers requests on a connection until it closes, negotiating
// the protocol from the client's opening bytes: a binary preamble selects
// the framed binary codec, anything else the gob fallback. Requests are
// handled serially in arrival order (responses still echo the request's
// correlation id, so pipelined binary clients work correctly); NetServer
// provides the concurrent, out-of-order serving path.
func ServeConn(rw io.ReadWriter, handle Handler) error {
	br := bufio.NewReader(rw)
	isBinary, _, err := sniffBinary(br)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
			return nil
		}
		return fmt.Errorf("wire: sniff protocol: %w", err)
	}
	if isBinary {
		return serveBinarySerial(rw, br, handle)
	}
	return serveGobSerial(rw, br, handle)
}

// serveBinarySerial is the binary-protocol request loop of ServeConn: ack
// the handshake, then answer frames one at a time.
func serveBinarySerial(rw io.ReadWriter, br *bufio.Reader, handle Handler) error {
	bw := bufio.NewWriter(rw)
	if _, err := bw.Write(handshakeMagic[:]); err != nil {
		return fmt.Errorf("wire: handshake ack: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("wire: handshake ack: %w", err)
	}
	for {
		typ, id, body, err := readFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("wire: read frame: %w", err)
		}
		if typ != frameRequest {
			return fmt.Errorf("wire: unexpected frame type %d", typ)
		}
		req, err := DecodeRequest(body)
		if err != nil {
			// Frame boundaries held, so the stream is still in sync:
			// report and keep serving.
			if werr := writeFrame(bw, frameError, id, []byte(err.Error())); werr != nil {
				return werr
			}
			continue
		}
		resp, err := handle(req)
		if err != nil {
			if werr := writeFrame(bw, frameError, id, []byte(err.Error())); werr != nil {
				return werr
			}
			continue
		}
		if err := writeFrame(bw, frameResponse, id, EncodeResponse(nil, resp)); err != nil {
			return fmt.Errorf("wire: write frame: %w", err)
		}
	}
}

// serveGobSerial is the gob-protocol request loop of ServeConn.
func serveGobSerial(rw io.ReadWriter, br *bufio.Reader, handle Handler) error {
	bw := bufio.NewWriter(rw)
	enc := gob.NewEncoder(writeFlusher{bw})
	dec := gob.NewDecoder(br)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("wire: decode: %w", err)
		}
		if env.Req == nil {
			if err := enc.Encode(envelope{Err: "empty request envelope"}); err != nil {
				return err
			}
			continue
		}
		resp, err := handle(env.Req)
		out := envelope{Resp: resp}
		if err != nil {
			out = envelope{Err: err.Error()}
		}
		if err := enc.Encode(out); err != nil {
			return fmt.Errorf("wire: encode: %w", err)
		}
	}
}
