package wire

import (
	"testing"
)

// The byte-size model of wire.go (SizeModel, the paper's transmission-cost
// model) and the binary codec are kept in agreement by these tests. The
// codec was shaped after the model — float32 coordinates (the model's
// 20-byte entries assume four float32s plus a pointer), varint ids, packed
// partition-tree codes — so the encoded length of a message must track the
// model's prediction. Two structural differences are documented and priced
// in explicitly rather than hidden inside a loose tolerance:
//
//   - Handed-over queue elements ship their MBRs (16 bytes per ref) so the
//     server can rekey and resume them; the model's Elem/PairElem prices
//     only id + flags. The adjusted model adds 16 bytes per shipped ref.
//   - Object payload bytes are virtual: ObjectRep carries metadata and a
//     Payload flag, while SizeModel.ResponseBytes adds o.Size for the
//     simulated payload transfer. The comparison therefore runs against a
//     copy with Payload cleared (the structural bytes).
//
// With those adjustments every representative message must land within
// sizeModelRelTol of the model plus a small constant (varint width jitter
// and frame overhead vs the fixed MsgHeader).
const (
	sizeModelRelTol   = 0.30
	sizeModelAbsSlack = 16
)

// shippedRefs counts the MBR-carrying refs in a request's H.
func shippedRefs(req *Request) int {
	n := 0
	for _, qe := range req.H {
		n++
		if qe.Elem.Pair {
			n++
		}
	}
	return n
}

// frameLen is the on-the-wire size of a body: length prefix, type byte and
// a correlation id (modeled by SizeModel.MsgHeader on the model side).
func frameLen(body []byte) int { return 4 + 1 + 1 + len(body) }

func checkAgreement(t *testing.T, name string, actual, model int) {
	t.Helper()
	lo := int(float64(model)*(1-sizeModelRelTol)) - sizeModelAbsSlack
	hi := int(float64(model)*(1+sizeModelRelTol)) + sizeModelAbsSlack
	if actual < lo || actual > hi {
		t.Errorf("%s: encoded %d bytes, size model predicts %d (allowed [%d, %d])",
			name, actual, model, lo, hi)
	} else {
		t.Logf("%s: encoded %d bytes vs model %d", name, actual, model)
	}
}

func TestRequestBytesMatchesSizeModel(t *testing.T) {
	m := DefaultSizeModel()
	for name, req := range testRequests() {
		actual := frameLen(EncodeRequest(nil, req))
		model := m.RequestBytes(req) + 16*shippedRefs(req)
		checkAgreement(t, "request/"+name, actual, model)
	}
}

func TestResponseBytesMatchesSizeModel(t *testing.T) {
	m := DefaultSizeModel()
	for name, resp := range testResponses() {
		actual := frameLen(EncodeResponse(nil, resp))
		structural := *resp
		structural.Objects = append([]ObjectRep(nil), resp.Objects...)
		for i := range structural.Objects {
			structural.Objects[i].Payload = false
		}
		model := m.ResponseBytes(&structural)
		checkAgreement(t, "response/"+name, actual, model)
	}
}

// TestIndexBytesMatchesSizeModel isolates the supporting-index section —
// the dominant downlink cost in the paper's experiments — by differencing
// against the same response without its index. Per 20-byte model entry the
// codec spends flags + packed code + four float32s + a varint id.
func TestIndexBytesMatchesSizeModel(t *testing.T) {
	m := DefaultSizeModel()
	resp := testResponses()["apro"]
	with := len(EncodeResponse(nil, resp))
	bare := *resp
	bare.Index = nil
	without := len(EncodeResponse(nil, &bare))
	actual := with - without
	model := m.IndexBytes(resp)
	checkAgreement(t, "index-section", actual, model)
}
