package wire

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/geom"
)

// walOps are full-precision float64 rectangles: the WAL codec must round
// them through the payload bit-for-bit, unlike the float32 request codec.
func walOps() []UpdateOp {
	r := func(a, b, c, d float64) geom.Rect {
		return geom.Rect{MinX: a, MinY: b, MaxX: c, MaxY: d}
	}
	return []UpdateOp{
		{Kind: UpdateInsert, Obj: 90001, To: r(0.1, 0.2, 0.30000000000000004, 0.4), Size: 2048},
		{Kind: UpdateDelete, Obj: 42, From: r(1.0/3, 2.0/3, 0.7, 0.9)},
		{Kind: UpdateMove, Obj: 7,
			From: r(math.Nextafter(0.25, 1), 0.25, 0.375, 0.375),
			To:   r(0.75, 0.75, 0.875, math.Nextafter(0.875, 1))},
	}
}

func TestWALPayloadRoundTrip(t *testing.T) {
	ops := walOps()
	enc := AppendWALPayload(nil, 17, ops)
	epoch, got, err := DecodeWALPayload(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if epoch != 17 {
		t.Fatalf("epochBefore = %d, want 17", epoch)
	}
	if !reflect.DeepEqual(got, ops) {
		t.Fatalf("round trip mangled\n got %+v\nwant %+v", got, ops)
	}
}

func TestWALPayloadEmpty(t *testing.T) {
	enc := AppendWALPayload(nil, 0, nil)
	epoch, ops, err := DecodeWALPayload(enc)
	if err != nil || epoch != 0 || len(ops) != 0 {
		t.Fatalf("empty payload: epoch=%d ops=%v err=%v", epoch, ops, err)
	}
}

func TestWALPayloadRejectsMalformed(t *testing.T) {
	enc := AppendWALPayload(nil, 9, walOps())
	cases := map[string][]byte{
		"empty":      {},
		"truncated":  enc[:len(enc)-3],
		"trailing":   append(append([]byte(nil), enc...), 0),
		"bad-kind":   func() []byte { b := append([]byte(nil), enc...); b[2] = 0xff; return b }(),
		"count-lies": {9, 200},
	}
	for name, b := range cases {
		if _, _, err := DecodeWALPayload(b); err == nil {
			t.Errorf("%s: malformed payload decoded without error", name)
		}
	}
}
