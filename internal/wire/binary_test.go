package wire

import (
	"bufio"
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bpt"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
)

// q32 quantizes a coordinate the way the wire does (float32).
func q32(v float64) float64 { return float64(float32(v)) }

func q32r(r geom.Rect) geom.Rect {
	return geom.Rect{MinX: q32(r.MinX), MinY: q32(r.MinY), MaxX: q32(r.MaxX), MaxY: q32(r.MaxY)}
}

func q32p(p geom.Point) geom.Point { return geom.Point{X: q32(p.X), Y: q32(p.Y)} }

func q32ref(r query.Ref) query.Ref {
	r.MBR = q32r(r.MBR)
	return r
}

// canonRequest maps a request to what the binary codec preserves: float32
// geometry, zeroed H priority keys (the server rekeys), and empty slices
// normalized to nil.
func canonRequest(req *Request) *Request {
	out := *req
	out.Q.Window = q32r(req.Q.Window)
	out.Q.Center = q32p(req.Q.Center)
	out.Q.JoinWindow = q32r(req.Q.JoinWindow)
	out.Q.Dist = q32(req.Q.Dist)
	out.FMR = 0
	if req.HasFMR {
		out.FMR = q32(req.FMR)
	}
	out.Bound = 0
	if req.Bound > 0 {
		out.Bound = f32ceil(req.Bound) // the bound quantizes upward, never down
	}
	out.H = nil
	for _, qe := range req.H {
		qe.Key = 0
		qe.Elem.A = q32ref(qe.Elem.A)
		if qe.Elem.Pair {
			qe.Elem.B = q32ref(qe.Elem.B)
		}
		out.H = append(out.H, qe)
	}
	out.CachedIDs = append([]rtree.ObjectID(nil), req.CachedIDs...)
	out.SemWindows = nil
	for _, w := range req.SemWindows {
		out.SemWindows = append(out.SemWindows, q32r(w))
	}
	out.Updates = nil
	for _, u := range req.Updates {
		u.From = q32r(u.From)
		u.To = q32r(u.To)
		// The codec ships only the rectangles the kind uses.
		switch u.Kind {
		case UpdateInsert:
			u.From = geom.Rect{}
		case UpdateDelete:
			u.To = geom.Rect{}
			u.Size = 0
		case UpdateMove:
			u.Size = 0
		}
		out.Updates = append(out.Updates, u)
	}
	return &out
}

// canonResponse maps a response to what the binary codec preserves: float32
// geometry and, for super cut elements, no child/object ids (the node id
// lives on the enclosing NodeRep).
func canonResponse(resp *Response) *Response {
	out := *resp
	out.RootMBR = q32r(resp.RootMBR)
	out.Objects = nil
	for _, o := range resp.Objects {
		o.MBR = q32r(o.MBR)
		out.Objects = append(out.Objects, o)
	}
	out.Pairs = append([][2]rtree.ObjectID(nil), resp.Pairs...)
	out.Index = nil
	for _, rep := range resp.Index {
		cp := NodeRep{ID: rep.ID, Level: rep.Level}
		for _, e := range rep.Elems {
			e.MBR = q32r(e.MBR)
			if e.Super {
				e.Child, e.Obj = rtree.InvalidNode, 0
			} else if e.Child != rtree.InvalidNode {
				e.Obj = 0
			}
			cp.Elems = append(cp.Elems, e)
		}
		out.Index = append(out.Index, cp)
	}
	out.InvalidNodes = append([]rtree.NodeID(nil), resp.InvalidNodes...)
	out.InvalidObjs = append([]rtree.ObjectID(nil), resp.InvalidObjs...)
	return &out
}

// testRequests returns hand-built messages covering every request shape.
// Coordinates are float32-exact so round trips compare bit-for-bit.
func testRequests() map[string]*Request {
	return map[string]*Request{
		"catalog": {Client: 7, Catalog: true, Epoch: 42},
		"range-fresh": {
			Client: 1,
			Q:      query.NewRange(geom.R(0.25, 0.25, 0.75, 0.5)),
		},
		"knn-remainder": {
			Client: 9,
			Q:      query.NewKNN(geom.Pt(0.5, 0.5), 4),
			Epoch:  3,
			H: []query.QueuedElem{
				{Elem: query.Single(query.NodeRef(12, geom.R(0, 0, 0.5, 0.5)))},
				{Elem: query.Single(query.SuperRef(12, bpt.Code("011"), geom.R(0.25, 0, 0.5, 0.25)))},
				{Elem: query.Single(query.ObjectRef(991, geom.R(0.5, 0.5, 0.5, 0.5))), Deferred: true},
			},
			HasFMR: true,
			FMR:    0.25,
		},
		"join-remainder": {
			Client: 3,
			Q:      query.NewJoin(geom.R(0, 0, 1, 1), 0.125),
			H: []query.QueuedElem{
				{Elem: query.PairOf(
					query.NodeRef(4, geom.R(0, 0, 0.25, 0.25)),
					query.NodeRef(8, geom.R(0.25, 0.25, 0.5, 0.5)),
				)},
			},
		},
		"page-baseline": {
			Client:    2,
			Q:         query.NewRange(geom.R(0, 0, 0.25, 0.25)),
			CachedIDs: []rtree.ObjectID{5, 9, 1024, 70000},
			NoIndex:   true,
		},
		"sem-baseline": {
			Client:     2,
			Q:          query.NewRange(geom.R(0, 0, 0.5, 0.5)),
			SemWindows: []geom.Rect{geom.R(0, 0, 0.25, 0.5), geom.R(0.25, 0, 0.5, 0.125)},
			NoIndex:    true,
		},
		"knn-bound": {
			Client: 5,
			Q:      query.NewKNN(geom.Pt(0.25, 0.75), 8),
			Epoch:  12,
			Bound:  0.125,
		},
		"replica-batch": {
			Client:  13,
			Epoch:   8,
			Replica: true,
			Updates: []UpdateOp{
				{Kind: UpdateInsert, Obj: 80001, To: geom.R(0.125, 0.25, 0.25, 0.375), Size: 512},
				{Kind: UpdateMove, Obj: 19, From: geom.R(0.5, 0.5, 0.625, 0.625), To: geom.R(0.625, 0.5, 0.75, 0.625)},
			},
		},
		"update-batch": {
			Client: 11,
			Epoch:  64,
			Updates: []UpdateOp{
				{Kind: UpdateInsert, Obj: 90001, To: geom.R(0.5, 0.5, 0.625, 0.625), Size: 2048},
				{Kind: UpdateDelete, Obj: 42, From: geom.R(0, 0, 0.125, 0.125)},
				{Kind: UpdateMove, Obj: 7, From: geom.R(0.25, 0.25, 0.375, 0.375), To: geom.R(0.75, 0.75, 0.875, 0.875)},
			},
		},
	}
}

// testResponses returns hand-built messages covering every response shape.
func testResponses() map[string]*Response {
	return map[string]*Response{
		"catalog": {RootID: 1, RootMBR: geom.R(0, 0, 1, 1), Epoch: 9},
		"apro": {
			K:     2,
			Epoch: 17,
			Objects: []ObjectRep{
				{ID: 101, MBR: geom.R(0.5, 0.5, 0.5, 0.5), Size: 900, Payload: true},
				{ID: 102, MBR: geom.R(0.25, 0.5, 0.375, 0.625), Size: 4096, Payload: false},
				{ID: 70001, MBR: geom.R(0, 0, 0.125, 0.125), Size: 64, Payload: true},
			},
			Pairs: [][2]rtree.ObjectID{{101, 102}},
			Index: []NodeRep{
				{ID: 1, Level: 2, Elems: []CutElem{
					{Code: "0", MBR: geom.R(0, 0, 0.5, 1), Super: true},
					{Code: "10", MBR: geom.R(0.5, 0, 1, 0.5), Child: 7},
					{Code: "11", MBR: geom.R(0.5, 0.5, 1, 1), Child: 8},
				}},
				{ID: 8, Level: 1, Elems: []CutElem{
					{Code: "000", MBR: geom.R(0.5, 0.5, 0.625, 0.625), Obj: 101},
					{Code: "001", MBR: geom.R(0.625, 0.625, 0.75, 0.75), Obj: 102},
					{Code: "01", MBR: geom.R(0.75, 0.5, 1, 0.75), Super: true},
				}},
			},
			RootID:       1,
			RootMBR:      geom.R(0, 0, 1, 1),
			InvalidNodes: []rtree.NodeID{3, 9},
			InvalidObjs:  []rtree.ObjectID{55},
		},
		"flush-all": {Epoch: 1000, FlushAll: true},
		"empty":     {},
		"update-ack": {
			Epoch:         128,
			RootID:        1,
			RootMBR:       geom.R(0, 0, 1, 1),
			InvalidObjs:   []rtree.ObjectID{42},
			UpdateResults: []bool{true, false, true},
		},
	}
}

func TestBinaryRequestRoundTrip(t *testing.T) {
	for name, req := range testRequests() {
		enc := EncodeRequest(nil, req)
		got, err := DecodeRequest(enc)
		if err != nil {
			t.Errorf("%s: decode: %v", name, err)
			continue
		}
		if want := canonRequest(req); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: round trip mangled\n got %+v\nwant %+v", name, got, want)
		}
	}
}

func TestBinaryResponseRoundTrip(t *testing.T) {
	for name, resp := range testResponses() {
		enc := EncodeResponse(nil, resp)
		got, err := DecodeResponse(enc)
		if err != nil {
			t.Errorf("%s: decode: %v", name, err)
			continue
		}
		if want := canonResponse(resp); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: round trip mangled\n got %+v\nwant %+v", name, got, want)
		}
	}
}

// TestBinaryQuickRoundTrip feeds the codec the same randomized messages as
// the gob property test: after canonicalization (float32 geometry, zeroed
// keys, super elements stripped of ids) the round trip must be exact.
func TestBinaryQuickRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		r := rand.New(rand.NewSource(seed))
		req := randRequest(r)
		gotReq, err := DecodeRequest(EncodeRequest(nil, req))
		if err != nil {
			t.Fatalf("seed %d: decode request: %v", seed, err)
		}
		if want := canonRequest(req); !reflect.DeepEqual(gotReq, want) {
			t.Fatalf("seed %d: request mangled\n got %+v\nwant %+v", seed, gotReq, want)
		}
		resp := randResponse(r)
		gotResp, err := DecodeResponse(EncodeResponse(nil, resp))
		if err != nil {
			t.Fatalf("seed %d: decode response: %v", seed, err)
		}
		if want := canonResponse(resp); !reflect.DeepEqual(gotResp, want) {
			t.Fatalf("seed %d: response mangled\n got %+v\nwant %+v", seed, gotResp, want)
		}
	}
}

// TestBinaryQuantizesToFloat32 documents the deliberate float32 quantization
// of coordinates (the paper's size model prices four-float32 entries).
func TestBinaryQuantizesToFloat32(t *testing.T) {
	v := 0.1 // not float32-representable
	req := &Request{Q: query.NewRange(geom.R(v, v, 1, 1))}
	got, err := DecodeRequest(EncodeRequest(nil, req))
	if err != nil {
		t.Fatal(err)
	}
	if got.Q.Window.MinX == v {
		t.Fatal("expected float32 quantization, got exact float64")
	}
	if got.Q.Window.MinX != float64(float32(v)) {
		t.Fatalf("MinX = %v, want %v", got.Q.Window.MinX, float64(float32(v)))
	}
}

// TestBinaryBoundNeverRoundsDown: the shard-routing kNN bound must survive
// quantization without tightening — a wire-rounded-down bound would let a
// shard prune a genuine nearest neighbor half an ulp inside it.
func TestBinaryBoundNeverRoundsDown(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for i := 0; i < 5000; i++ {
		v := r.Float64() * r.Float64() // bias toward small distances
		if v == 0 {
			continue
		}
		req := &Request{Q: query.NewKNN(geom.Pt(0.5, 0.5), 3), Bound: v}
		got, err := DecodeRequest(EncodeRequest(nil, req))
		if err != nil {
			t.Fatal(err)
		}
		if got.Bound < v {
			t.Fatalf("bound %v rounded down to %v on the wire", v, got.Bound)
		}
		if got.Bound != f32ceil(v) {
			t.Fatalf("bound %v decoded as %v, want %v", v, got.Bound, f32ceil(v))
		}
	}
}

// TestDecodeTruncated: every strict prefix of a valid body must fail with a
// decode error — never panic, never succeed (trailing-byte accounting makes
// the full body the only valid parse).
func TestDecodeTruncated(t *testing.T) {
	for name, req := range testRequests() {
		enc := EncodeRequest(nil, req)
		for i := 0; i < len(enc); i++ {
			if _, err := DecodeRequest(enc[:i]); err == nil {
				t.Fatalf("%s: prefix of %d/%d bytes decoded cleanly", name, i, len(enc))
			}
		}
	}
	for name, resp := range testResponses() {
		enc := EncodeResponse(nil, resp)
		for i := 0; i < len(enc); i++ {
			if _, err := DecodeResponse(enc[:i]); err == nil {
				t.Fatalf("%s: prefix of %d/%d bytes decoded cleanly", name, i, len(enc))
			}
		}
	}
}

// TestDecodeRejectsLyingCounts: a tiny body claiming a gigantic collection
// must error out before allocating for it.
func TestDecodeRejectsLyingCounts(t *testing.T) {
	// client=1, flags=0, epoch=0, kind=1, presence=0, then H count 2^40.
	body := []byte{1, 0, 0, 1, 0, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20}
	if _, err := DecodeRequest(body); err == nil {
		t.Fatal("lying H count decoded cleanly")
	}
	// Same for a response object count.
	body = []byte{0, 0, 0, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20}
	if _, err := DecodeResponse(body); err == nil {
		t.Fatal("lying object count decoded cleanly")
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	enc := EncodeRequest(nil, &Request{Client: 1, Catalog: true})
	if _, err := DecodeRequest(append(enc, 0xff)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestDecodeRejectsOversizedCode(t *testing.T) {
	// A super ref whose code claims more bits than maxCodeBits allows.
	b := []byte{1, 0, 0, 1, 0, 1} // header + H count 1
	b = append(b, 0)              // elem flags
	b = append(b, byte(query.RefSuper))
	b = appendRect(b, geom.R(0, 0, 1, 1))
	b = append(b, 5)          // node id
	b = append(b, 0xFF, 0x7F) // code length 16383 bits
	if _, err := DecodeRequest(b); err == nil || !strings.Contains(err.Error(), "code") {
		t.Fatalf("oversized code: err = %v", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	body := EncodeRequest(nil, testRequests()["knn-remainder"])
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeFrame(bw, frameRequest, 123456, body); err != nil {
		t.Fatal(err)
	}
	typ, id, got, err := readFrame(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameRequest || id != 123456 || !bytes.Equal(got, body) {
		t.Fatalf("frame mangled: typ=%d id=%d len=%d", typ, id, len(got))
	}
}

func TestReadFrameRejectsOversizedLength(t *testing.T) {
	head := []byte{0xff, 0xff, 0xff, 0xff} // ~4 GiB frame
	if _, _, _, err := readFrame(bytes.NewReader(head)); err == nil {
		t.Fatal("oversized frame length accepted")
	}
	head = []byte{1, 0, 0, 0} // 1-byte frame cannot hold type + id
	if _, _, _, err := readFrame(bytes.NewReader(head)); err == nil {
		t.Fatal("undersized frame length accepted")
	}
}

// TestReadFrameTruncatedLargeFrame: a frame header promising megabytes on a
// stream that ends early must error after chunked reads, not allocate the
// whole claimed size up front (readCapped grows with the data).
func TestReadFrameTruncatedLargeFrame(t *testing.T) {
	var buf bytes.Buffer
	head := []byte{0, 0, 0x80, 0} // 8 MiB claim
	buf.Write(head)
	buf.Write(make([]byte, 1000)) // only 1000 bytes follow
	if _, _, _, err := readFrame(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("truncated large frame accepted")
	}
}
