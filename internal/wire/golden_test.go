package wire

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// The golden files under testdata/ are the canonical bytes of the binary
// wire format, one file per message shape. Any codec change that moves the
// encoding fails these tests; an intentional format change must bump
// ProtoVersion and regenerate with
//
//	go test ./internal/wire -run TestGolden -update

var updateGolden = flag.Bool("update", false, "rewrite golden wire-format files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire format drifted from %s\n got: %s\nwant: %s",
			path, hex.EncodeToString(got), hex.EncodeToString(want))
	}
}

func TestGoldenRequests(t *testing.T) {
	for name, req := range testRequests() {
		enc := EncodeRequest(nil, req)
		checkGolden(t, "req_"+name+".bin", enc)
		// The checked-in bytes must also decode back to the message (not
		// just byte-compare), so a drifted decoder cannot hide behind a
		// drifted encoder.
		got, err := DecodeRequest(enc)
		if err != nil {
			t.Errorf("%s: decode golden: %v", name, err)
			continue
		}
		if want := canonRequest(req); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: golden decode mismatch\n got %+v\nwant %+v", name, got, want)
		}
	}
}

func TestGoldenResponses(t *testing.T) {
	for name, resp := range testResponses() {
		enc := EncodeResponse(nil, resp)
		checkGolden(t, "resp_"+name+".bin", enc)
		got, err := DecodeResponse(enc)
		if err != nil {
			t.Errorf("%s: decode golden: %v", name, err)
			continue
		}
		if want := canonResponse(resp); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: golden decode mismatch\n got %+v\nwant %+v", name, got, want)
		}
	}
}

// TestGoldenFrame locks the frame layout (length prefix, type byte,
// correlation id) and the handshake preamble bytes.
func TestGoldenFrame(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if _, err := bw.Write(handshakeMagic[:]); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(bw, frameRequest, 1, EncodeRequest(nil, testRequests()["catalog"])); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(bw, frameError, 7, []byte("boom")); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "frame_stream.bin", buf.Bytes())
}

// TestGoldenEdgeHandshake locks the edge-role preamble: identical to the
// client preamble except byte 5 = RoleEdge. The server's ack stays the plain
// client preamble (covered by frame_stream.bin), so old clients never see a
// role byte they did not send.
func TestGoldenEdgeHandshake(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	preamble := handshakePreamble(RoleEdge)
	if _, err := bw.Write(preamble[:]); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(bw, frameRequest, 1, EncodeRequest(nil, testRequests()["catalog"])); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "frame_stream_edge.bin", buf.Bytes())

	// Both role preambles must negotiate binary; the roles must differ.
	for _, tc := range []struct {
		role byte
	}{{RoleClient}, {RoleEdge}} {
		p := handshakePreamble(tc.role)
		ok, role, err := sniffBinary(bufio.NewReader(bytes.NewReader(p[:])))
		if err != nil || !ok || role != tc.role {
			t.Errorf("sniff role %d: ok=%v role=%d err=%v", tc.role, ok, role, err)
		}
	}
	// An unknown role byte must fall through to the gob path, not decode as
	// a binary peer with a garbled role.
	bad := handshakePreamble(0x7f)
	if ok, _, err := sniffBinary(bufio.NewReader(bytes.NewReader(bad[:]))); err != nil || ok {
		t.Errorf("unknown role accepted as binary: ok=%v err=%v", ok, err)
	}
}
