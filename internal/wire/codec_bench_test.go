package wire

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"net"
	"sync"
	"testing"

	"repro/internal/bpt"
	"repro/internal/geom"
	"repro/internal/rtree"
)

// benchResponse builds a representative APRO response: a few dozen result
// objects plus a supporting index of partition-tree cuts — the shape of the
// dominant downlink message in the paper's experiments.
func benchResponse() *Response {
	r := rand.New(rand.NewSource(42))
	resp := &Response{K: 8, Epoch: 12345, RootID: 1, RootMBR: geom.R(0, 0, 1, 1)}
	for i := 0; i < 40; i++ {
		p := geom.Pt(r.Float64(), r.Float64())
		resp.Objects = append(resp.Objects, ObjectRep{
			ID:      rtree.ObjectID(r.Intn(100_000) + 1),
			MBR:     geom.RectFromCenter(p, 0.001, 0.001),
			Size:    200 + r.Intn(4000),
			Payload: i%5 != 0,
		})
	}
	codes := []bpt.Code{"0", "10", "110", "111", "00", "01", "1010"}
	for n := 0; n < 8; n++ {
		rep := NodeRep{ID: rtree.NodeID(n + 1), Level: 1 + n%3}
		for e := 0; e < 24; e++ {
			p := geom.Pt(r.Float64(), r.Float64())
			ce := CutElem{Code: codes[e%len(codes)], MBR: geom.RectFromCenter(p, 0.01, 0.01)}
			switch e % 3 {
			case 0:
				ce.Super = true
			case 1:
				ce.Child = rtree.NodeID(r.Intn(1000) + 1)
			default:
				ce.Obj = rtree.ObjectID(r.Intn(100_000) + 1)
			}
			rep.Elems = append(rep.Elems, ce)
		}
		resp.Index = append(resp.Index, rep)
	}
	for i := 0; i < 6; i++ {
		resp.InvalidNodes = append(resp.InvalidNodes, rtree.NodeID(r.Intn(1000)+1))
		resp.InvalidObjs = append(resp.InvalidObjs, rtree.ObjectID(r.Intn(100_000)+1))
	}
	return resp
}

// BenchmarkCodecGobVsBinary compares the two codecs on the representative
// APRO response, reporting encoded bytes per message alongside ns/op. Gob
// is measured in its steady state (persistent stream encoder / a decoder
// amortized over a long stream), which is how the serving path uses it.
func BenchmarkCodecGobVsBinary(b *testing.B) {
	resp := benchResponse()

	b.Run("gob/encode", func(b *testing.B) {
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		if err := enc.Encode(envelope{Resp: resp}); err != nil {
			b.Fatal(err)
		}
		steady := buf.Len()
		if err := enc.Encode(envelope{Resp: resp}); err != nil {
			b.Fatal(err)
		}
		steady = buf.Len() - steady // second message: no type descriptors
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Truncate(0)
			if err := enc.Encode(envelope{Resp: resp}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(steady), "bytes/msg")
	})

	b.Run("gob/decode", func(b *testing.B) {
		const streamLen = 256
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		for i := 0; i < streamLen; i++ {
			if err := enc.Encode(envelope{Resp: resp}); err != nil {
				b.Fatal(err)
			}
		}
		data := buf.Bytes()
		b.ResetTimer()
		for i := 0; i < b.N; {
			dec := gob.NewDecoder(bytes.NewReader(data))
			for j := 0; j < streamLen && i < b.N; j++ {
				var env envelope
				if err := dec.Decode(&env); err != nil {
					b.Fatal(err)
				}
				i++
			}
		}
	})

	b.Run("binary/encode", func(b *testing.B) {
		buf := EncodeResponse(nil, resp)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = EncodeResponse(buf[:0], resp)
		}
		b.ReportMetric(float64(len(buf)), "bytes/msg")
	})

	b.Run("binary/decode", func(b *testing.B) {
		data := EncodeResponse(nil, resp)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeResponse(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTransportThroughput measures queries/sec over one real TCP
// connection against a NetServer: the serial gob round-trip path, the
// binary codec still serialized one-at-a-time, and the pipelined binary
// path with many requests in flight. The deltas separate how much of the
// win comes from the codec and how much from pipelining.
func BenchmarkTransportThroughput(b *testing.B) {
	resp := benchResponse()
	handler := func(req *Request) (*Response, error) {
		out := *resp
		out.Epoch = req.Epoch
		return &out, nil
	}
	start := func(b *testing.B) (string, func()) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := NewNetServer(handler, ServeConfig{})
		go func() { _ = srv.Serve(ln) }()
		return ln.Addr().String(), func() { srv.Close() }
	}

	b.Run("serial-gob", func(b *testing.B) {
		addr, stop := start(b)
		defer stop()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		cc := NewClientConn(conn) // RoundTrip serializes internally
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := cc.RoundTrip(&Request{Catalog: true}); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})

	b.Run("serial-binary", func(b *testing.B) {
		addr, stop := start(b)
		defer stop()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		bc, err := NewBinaryClientConn(conn)
		if err != nil {
			b.Fatal(err)
		}
		var mu sync.Mutex // forbid pipelining: one request per round trip
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				mu.Lock()
				_, err := bc.RoundTrip(&Request{Catalog: true})
				mu.Unlock()
				if err != nil {
					b.Error(err)
					return
				}
			}
		})
	})

	b.Run("pipelined-binary", func(b *testing.B) {
		addr, stop := start(b)
		defer stop()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		bc, err := NewBinaryClientConn(conn)
		if err != nil {
			b.Fatal(err)
		}
		b.SetParallelism(8) // many workers share the one connection
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := bc.RoundTrip(&Request{Catalog: true}); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}
