package wire

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
)

// ErrProtocolMismatch is returned by NewBinaryClientConn when the peer does
// not answer the binary handshake with a matching preamble — typically a
// gob-only server. Dialers use it to fall back to the gob protocol.
var ErrProtocolMismatch = errors.New("wire: peer does not speak the binary protocol")

// BinaryClientConn is a pipelined Transport over the binary protocol: any
// number of goroutines may call RoundTrip concurrently on one connection,
// each request is tagged with a fresh correlation id, and responses are
// matched back to their callers regardless of the order the server answers
// in. This is the request pipelining the paper's transmission-cost model
// rewards: one connection, many queries in flight, no head-of-line
// round-trip wait between them.
type BinaryClientConn struct {
	rw io.ReadWriter

	wmu    sync.Mutex // serializes frame writes and id assignment
	bw     *bufio.Writer
	nextID uint64

	pmu     sync.Mutex // guards pending and connErr
	pending map[uint64]chan frameResult
	connErr error
}

type frameResult struct {
	resp *Response
	err  error
}

// NewBinaryClientConn performs the binary handshake on rw and starts the
// response reader. It returns ErrProtocolMismatch (possibly wrapped) when
// the peer answers with anything but the expected preamble, and the caller
// should then fall back to NewClientConn (gob).
func NewBinaryClientConn(rw io.ReadWriter) (*BinaryClientConn, error) {
	return NewBinaryClientConnRole(rw, RoleClient)
}

// NewBinaryClientConnRole is NewBinaryClientConn announcing a specific
// connection role in the handshake preamble (an edge proxy's upstream pool
// uses RoleEdge). Servers ack with the plain client preamble either way.
func NewBinaryClientConnRole(rw io.ReadWriter, role byte) (*BinaryClientConn, error) {
	preamble := handshakePreamble(role)
	bw := bufio.NewWriter(rw)
	if _, err := bw.Write(preamble[:]); err != nil {
		return nil, fmt.Errorf("wire: handshake send: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return nil, fmt.Errorf("wire: handshake send: %w", err)
	}
	br := bufio.NewReader(rw)
	var ack [len(handshakeMagic)]byte
	if _, err := io.ReadFull(br, ack[:]); err != nil {
		return nil, fmt.Errorf("%w: reading preamble ack: %v", ErrProtocolMismatch, err)
	}
	if !bytes.Equal(ack[:4], handshakeMagic[:4]) {
		return nil, fmt.Errorf("%w: bad preamble % x", ErrProtocolMismatch, ack)
	}
	if ack[4] != ProtoVersion {
		return nil, fmt.Errorf("%w: peer speaks version %d, want %d", ErrProtocolMismatch, ack[4], ProtoVersion)
	}
	c := &BinaryClientConn{
		rw:      rw,
		bw:      bw,
		pending: make(map[uint64]chan frameResult),
	}
	go c.readLoop(br)
	return c, nil
}

// RoundTrip implements Transport. Unlike the gob ClientConn, concurrent
// calls do not serialize on the round trip: each caller's request is framed
// and flushed immediately, and the caller only blocks until its own
// response arrives.
func (c *BinaryClientConn) RoundTrip(req *Request) (*Response, error) {
	ch := make(chan frameResult, 1)

	c.wmu.Lock()
	c.pmu.Lock()
	if err := c.connErr; err != nil {
		c.pmu.Unlock()
		c.wmu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.pmu.Unlock()
	body := EncodeRequest(nil, req)
	err := writeFrame(c.bw, frameRequest, id, body)
	c.wmu.Unlock()
	if err != nil {
		err = fmt.Errorf("wire: send request: %w", err)
		c.fail(err)
		return nil, err
	}

	res := <-ch
	return res.resp, res.err
}

// Close tears down the transport; if the underlying stream is an io.Closer
// (a net.Conn is) it is closed, which also stops the read loop. In-flight
// round trips fail with the close error.
func (c *BinaryClientConn) Close() error {
	c.fail(errors.New("wire: connection closed"))
	if cl, ok := c.rw.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// readLoop receives frames and correlates them to waiting callers by id.
func (c *BinaryClientConn) readLoop(br *bufio.Reader) {
	for {
		typ, id, body, err := readFrame(br)
		if err != nil {
			c.fail(fmt.Errorf("wire: read response: %w", err))
			return
		}
		switch typ {
		case frameResponse:
			resp, derr := DecodeResponse(body)
			if derr != nil {
				// The frame boundary held, so the stream is still in
				// sync; only this request is poisoned.
				c.deliver(id, frameResult{err: fmt.Errorf("wire: decode response: %w", derr)})
				continue
			}
			c.deliver(id, frameResult{resp: resp})
		case frameError:
			msg := fmt.Errorf("wire: server error: %s", body)
			if id == 0 {
				// Connection-scoped error (e.g. the server is at its
				// connection limit): fatal for every request on this conn.
				c.fail(msg)
				return
			}
			c.deliver(id, frameResult{err: msg})
		default:
			c.fail(fmt.Errorf("wire: unexpected frame type %d", typ))
			return
		}
	}
}

// deliver hands a result to the caller waiting on id; a response for an
// unknown id is a protocol violation and poisons the connection.
func (c *BinaryClientConn) deliver(id uint64, res frameResult) {
	c.pmu.Lock()
	ch, ok := c.pending[id]
	if ok {
		delete(c.pending, id)
	}
	c.pmu.Unlock()
	if !ok {
		c.fail(fmt.Errorf("wire: response for unknown request id %d", id))
		return
	}
	ch <- res
}

// fail marks the connection broken and unblocks every pending caller. The
// first error wins; later calls are no-ops.
func (c *BinaryClientConn) fail(err error) {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	if c.connErr != nil {
		return
	}
	c.connErr = err
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- frameResult{err: err}
	}
}
