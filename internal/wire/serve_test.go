package wire

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoHandler answers with the request's epoch, so tests can match
// responses to requests.
func echoHandler(req *Request) (*Response, error) {
	return &Response{Epoch: req.Epoch}, nil
}

func startServer(t *testing.T, cfg ServeConfig, handle Handler) (*NetServer, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewNetServer(handle, cfg)
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func dialT(t *testing.T, addr string) *ClientConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return NewClientConn(conn)
}

func TestNetServerConcurrentClients(t *testing.T) {
	srv, addr := startServer(t, ServeConfig{}, echoHandler)
	const clients, perClient = 10, 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			cc := NewClientConn(conn)
			for i := 0; i < perClient; i++ {
				epoch := uint64(c*1000 + i)
				resp, err := cc.RoundTrip(&Request{Client: ClientID(c), Epoch: epoch, Catalog: true})
				if err != nil {
					errs <- err
					return
				}
				if resp.Epoch != epoch {
					t.Errorf("client %d: got epoch %d, want %d", c, resp.Epoch, epoch)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	snap := srv.Stats().Snapshot()
	if snap.Requests != clients*perClient {
		t.Errorf("requests = %d, want %d", snap.Requests, clients*perClient)
	}
	if snap.TotalConns != clients {
		t.Errorf("total conns = %d, want %d", snap.TotalConns, clients)
	}
}

func TestNetServerConnLimit(t *testing.T) {
	block := make(chan struct{})
	srv, addr := startServer(t, ServeConfig{MaxConns: 1}, func(req *Request) (*Response, error) {
		<-block
		return &Response{}, nil
	})

	// First connection occupies the only slot.
	first := dialT(t, addr)
	firstDone := make(chan error, 1)
	go func() {
		_, err := first.RoundTrip(&Request{Catalog: true})
		firstDone <- err
	}()

	// Wait until the server has the first connection tracked.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().ActiveConns.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first connection never became active")
		}
		time.Sleep(time.Millisecond)
	}

	second := dialT(t, addr)
	if _, err := second.RoundTrip(&Request{Catalog: true}); err == nil ||
		!strings.Contains(err.Error(), "connection limit") {
		t.Fatalf("second conn error = %v, want connection limit rejection", err)
	}
	if got := srv.Stats().RejectedConns.Load(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	close(block)
	if err := <-firstDone; err != nil {
		t.Errorf("first conn round trip: %v", err)
	}
}

func TestNetServerIdleTimeout(t *testing.T) {
	_, addr := startServer(t, ServeConfig{ReadTimeout: 50 * time.Millisecond}, echoHandler)
	cc := dialT(t, addr)
	if _, err := cc.RoundTrip(&Request{Catalog: true}); err != nil {
		t.Fatalf("warm request: %v", err)
	}
	time.Sleep(200 * time.Millisecond)
	if _, err := cc.RoundTrip(&Request{Catalog: true}); err == nil {
		t.Fatal("request after idle timeout should fail: server must have hung up")
	}
}

func TestNetServerGracefulShutdownDrains(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	srv, addr := startServer(t, ServeConfig{}, func(req *Request) (*Response, error) {
		if !req.Catalog {
			close(started)
			<-release
		}
		return &Response{Epoch: req.Epoch}, nil
	})

	cc := dialT(t, addr)
	// Warm request proves the pipe works.
	if _, err := cc.RoundTrip(&Request{Catalog: true}); err != nil {
		t.Fatal(err)
	}

	inflight := make(chan error, 1)
	go func() {
		resp, err := cc.RoundTrip(&Request{Epoch: 42})
		if err == nil && resp.Epoch != 42 {
			t.Errorf("drained response epoch = %d, want 42", resp.Epoch)
		}
		inflight <- err
	}()
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// New connections must be refused while draining.
	time.Sleep(20 * time.Millisecond)
	if conn, err := net.Dial("tcp", addr); err == nil {
		conn.Close()
		// Accept may race with the listener close; what matters is that a
		// round trip cannot succeed.
		cc2 := dialT(t, addr)
		if _, err := cc2.RoundTrip(&Request{Catalog: true}); err == nil {
			t.Error("round trip succeeded during shutdown")
		}
	}

	release <- struct{}{}
	if err := <-inflight; err != nil {
		t.Errorf("in-flight request was not drained: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

func TestNetServerShutdownTimeoutForcesClose(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	srv, addr := startServer(t, ServeConfig{}, func(req *Request) (*Response, error) {
		close(started)
		<-release
		return &Response{}, nil
	})
	cc := dialT(t, addr)
	go func() { _, _ = cc.RoundTrip(&Request{}) }()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("shutdown = %v, want deadline exceeded", err)
	}
}
