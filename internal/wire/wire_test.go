package wire

import (
	"math"
	"net"
	"testing"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
)

func TestRequestBytes(t *testing.T) {
	m := DefaultSizeModel()
	req := &Request{Q: query.NewKNN(geom.Pt(0.5, 0.5), 3)}
	base := m.RequestBytes(req)
	if base != m.MsgHeader+m.Query {
		t.Errorf("base request = %d", base)
	}
	req.H = []query.QueuedElem{
		{Elem: query.Single(query.NodeRef(1, geom.R(0, 0, 1, 1)))},
		{Elem: query.PairOf(query.NodeRef(1, geom.R(0, 0, 1, 1)), query.NodeRef(2, geom.R(0, 0, 1, 1)))},
	}
	if got := m.RequestBytes(req); got != base+m.Elem+m.PairElem {
		t.Errorf("with H = %d, want %d", got, base+m.Elem+m.PairElem)
	}
	req.H = nil
	req.CachedIDs = make([]rtree.ObjectID, 10)
	if got := m.RequestBytes(req); got != base+10*m.ID {
		t.Errorf("with ids = %d", got)
	}
	req.CachedIDs = nil
	req.SemWindows = []geom.Rect{{}, {}}
	if got := m.RequestBytes(req); got != base+32 {
		t.Errorf("with windows = %d", got)
	}
	req.SemWindows = nil
	req.HasFMR = true
	if got := m.RequestBytes(req); got != base+m.Feedback {
		t.Errorf("with fmr = %d", got)
	}
}

func TestResponseBytes(t *testing.T) {
	m := DefaultSizeModel()
	resp := &Response{
		Objects: []ObjectRep{
			{ID: 1, Size: 1000, Payload: true},
			{ID: 2, Size: 5000, Payload: false}, // header only
		},
		Pairs: [][2]rtree.ObjectID{{1, 2}},
		Index: []NodeRep{
			{ID: 3, Elems: make([]CutElem, 4)},
		},
	}
	want := m.MsgHeader + 2*m.ObjHeader + 1000 + m.PairID + m.NodeHeader + 4*m.Entry
	if got := m.ResponseBytes(resp); got != want {
		t.Errorf("ResponseBytes = %d, want %d", got, want)
	}
	if got := m.IndexBytes(resp); got != m.NodeHeader+4*m.Entry {
		t.Errorf("IndexBytes = %d", got)
	}
}

func TestResponseTimeline(t *testing.T) {
	m := DefaultSizeModel()
	ch := Channel{BytesPerSec: 1000, Latency: 0.1}
	resp := &Response{
		Objects: []ObjectRep{
			{ID: 1, Size: 1000, Payload: true},
			{ID: 2, Size: 2000, Payload: true},
		},
	}
	objDone, total := m.ResponseTimeline(ch, 500, resp)
	if len(objDone) != 2 {
		t.Fatal("need one completion per object")
	}
	// Uplink 500B at 1000B/s + latency, plus downlink latency.
	start := 0.1 + 0.5 + 0.1
	want0 := start + float64(m.MsgHeader+m.ObjHeader+1000)/1000
	if math.Abs(objDone[0]-want0) > 1e-9 {
		t.Errorf("objDone[0] = %v, want %v", objDone[0], want0)
	}
	if objDone[1] <= objDone[0] {
		t.Error("completions must be monotone")
	}
	if total < objDone[1] {
		t.Error("total precedes last object")
	}
	// Payload=false objects add only their header.
	resp.Objects[1].Payload = false
	objDone2, _ := m.ResponseTimeline(ch, 500, resp)
	if objDone2[1] >= objDone[1] {
		t.Error("headerless object should complete sooner")
	}
}

func TestTransferTimeZeroBandwidth(t *testing.T) {
	ch := Channel{BytesPerSec: 0, Latency: 0.2}
	if got := ch.TransferTime(1_000_000); got != 0.2 {
		t.Errorf("zero-bandwidth transfer = %v", got)
	}
}

func TestDefaultChannel(t *testing.T) {
	ch := DefaultChannel()
	if ch.BytesPerSec != 48000 {
		t.Errorf("default channel %v B/s, want 48000 (384 Kbps)", ch.BytesPerSec)
	}
}

func TestCutElemRef(t *testing.T) {
	e := CutElem{Code: "01", MBR: geom.R(0, 0, 1, 1), Super: true}
	if r := e.Ref(7); r.Kind != query.RefSuper || r.Node != 7 || r.Code != "01" {
		t.Errorf("super ref = %+v", r)
	}
	e = CutElem{Child: 9, MBR: geom.R(0, 0, 1, 1)}
	if r := e.Ref(7); r.Kind != query.RefNode || r.Node != 9 {
		t.Errorf("node ref = %+v", r)
	}
	e = CutElem{Obj: 4, MBR: geom.R(0, 0, 1, 1)}
	if r := e.Ref(7); r.Kind != query.RefObject || r.Obj != 4 {
		t.Errorf("obj ref = %+v", r)
	}
}

// TestCodecRoundTripTCP exercises the gob transport over a real socket.
func TestCodecRoundTripTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		done <- ServeConn(conn, func(req *Request) (*Response, error) {
			return &Response{
				K: req.Q.K,
				Objects: []ObjectRep{
					{ID: 42, Size: 10, Payload: true, MBR: geom.R(0, 0, 1, 1)},
				},
				Index: []NodeRep{{ID: 3, Level: 1, Elems: []CutElem{{Code: "0", Super: true}}}},
			}, nil
		})
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	tr := NewClientConn(conn)
	req := &Request{
		Client: 5,
		Q:      query.NewKNN(geom.Pt(0.25, 0.75), 4),
		H: []query.QueuedElem{
			{Key: 0.5, Elem: query.Single(query.SuperRef(9, "011", geom.R(0, 0, 0.5, 0.5))), Deferred: true},
		},
	}
	for i := 0; i < 3; i++ {
		resp, err := tr.RoundTrip(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.K != 4 || len(resp.Objects) != 1 || resp.Objects[0].ID != 42 {
			t.Fatalf("bad response: %+v", resp)
		}
		if len(resp.Index) != 1 || !resp.Index[0].Elems[0].Super {
			t.Fatalf("index lost in transit: %+v", resp.Index)
		}
	}
	conn.Close()
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
}
