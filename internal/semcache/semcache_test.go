package semcache

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/wire"
)

type world struct {
	items []rtree.Item
	sizes map[rtree.ObjectID]int
	srv   *server.Server
}

func newWorld(seed int64, n int) *world {
	r := rand.New(rand.NewSource(seed))
	w := &world{sizes: make(map[rtree.ObjectID]int)}
	for i := 0; i < n; i++ {
		id := rtree.ObjectID(i + 1)
		c := geom.Pt(r.Float64(), r.Float64())
		w.items = append(w.items, rtree.Item{Obj: id, MBR: geom.RectFromCenter(c, r.Float64()*0.01, r.Float64()*0.01)})
		w.sizes[id] = 500 + r.Intn(1500)
	}
	tree := rtree.BulkLoad(rtree.Params{MaxEntries: 16}, w.items, 0.7)
	w.srv = server.New(tree, func(id rtree.ObjectID) int { return w.sizes[id] }, server.Config{})
	return w
}

func (w *world) client(capacity int) *Client {
	return New(Config{ID: 2, Capacity: capacity}, wire.TransportFunc(func(req *wire.Request) (*wire.Response, error) {
		resp, _ := w.srv.Execute(req)
		return resp, nil
	}))
}

func (w *world) bruteRange(win geom.Rect) map[rtree.ObjectID]bool {
	out := make(map[rtree.ObjectID]bool)
	for _, it := range w.items {
		if it.MBR.Intersects(win) {
			out[it.Obj] = true
		}
	}
	return out
}

func (w *world) bruteKNNDists(p geom.Point, k int) []float64 {
	ds := make([]float64, len(w.items))
	for i, it := range w.items {
		ds[i] = geom.MinDist(p, it.MBR)
	}
	sort.Float64s(ds)
	return ds[:k]
}

func TestRangeCorrectnessAndTrimming(t *testing.T) {
	w := newWorld(21, 700)
	cl := w.client(1 << 22)
	r := rand.New(rand.NewSource(22))
	for i := 0; i < 120; i++ {
		// Overlapping drift to exercise trimming.
		p := geom.Pt(0.3+r.Float64()*0.4, 0.3+r.Float64()*0.4)
		win := geom.RectFromCenter(p, 0.05+r.Float64()*0.05, 0.05+r.Float64()*0.05)
		rep, err := cl.Query(query.NewRange(win))
		if err != nil {
			t.Fatal(err)
		}
		want := w.bruteRange(win)
		got := make(map[rtree.ObjectID]bool, len(rep.Results))
		for _, id := range rep.Results {
			got[id] = true
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d distinct results, want %d", i, len(got), len(want))
		}
		for id := range got {
			if !want[id] {
				t.Fatalf("query %d: unexpected result %d", i, id)
			}
		}
	}
}

func TestRangeReuseSavesBytes(t *testing.T) {
	w := newWorld(23, 700)
	cl := w.client(1 << 22)
	win := geom.RectFromCenter(geom.Pt(0.5, 0.5), 0.1, 0.1)

	first, err := cl.Query(query.NewRange(win))
	if err != nil {
		t.Fatal(err)
	}
	if first.SavedBytes != 0 {
		t.Error("cold range query saved bytes")
	}
	second, err := cl.Query(query.NewRange(win))
	if err != nil {
		t.Fatal(err)
	}
	if !second.LocalOnly {
		t.Error("identical range query not answered locally")
	}
	if second.ResultBytes != second.SavedBytes {
		t.Error("local answer accounting broken")
	}
}

func TestKNNValidityCorrectness(t *testing.T) {
	w := newWorld(24, 800)
	cl := w.client(1 << 22)
	r := rand.New(rand.NewSource(25))
	base := geom.Pt(0.5, 0.5)
	localHits := 0
	for i := 0; i < 100; i++ {
		// Small drift so validity circles get reused.
		p := geom.Pt(base.X+(r.Float64()-0.5)*0.01, base.Y+(r.Float64()-0.5)*0.01)
		k := 1 + r.Intn(4)
		rep, err := cl.Query(query.NewKNN(p, k))
		if err != nil {
			t.Fatal(err)
		}
		if rep.LocalOnly {
			localHits++
		}
		wantD := w.bruteKNNDists(p, k)
		if len(rep.Results) != len(wantD) {
			t.Fatalf("query %d: %d results, want %d", i, len(rep.Results), len(wantD))
		}
		gotD := make([]float64, len(rep.Results))
		for j, id := range rep.Results {
			gotD[j] = geom.MinDist(p, w.items[int(id)-1].MBR)
		}
		sort.Float64s(gotD)
		for j := range wantD {
			if math.Abs(gotD[j]-wantD[j]) > 1e-12 {
				t.Fatalf("query %d: dist[%d]=%v want %v", i, j, gotD[j], wantD[j])
			}
		}
	}
	if localHits == 0 {
		t.Error("validity circles never reused under heavy locality")
	}
}

func TestJoinPassThrough(t *testing.T) {
	w := newWorld(26, 600)
	cl := w.client(1 << 22)
	win := geom.RectFromCenter(geom.Pt(0.5, 0.5), 0.3, 0.3)
	rep, err := cl.Query(query.NewJoin(win, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if rep.SavedBytes != 0 || rep.LocalOnly {
		t.Error("join must pass through entirely")
	}
	// Same join again: still a full pass-through (nothing was cached).
	again, err := cl.Query(query.NewJoin(win, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if again.SavedBytes != 0 {
		t.Error("join reused cache; semantic caching cannot do that")
	}
	if len(again.Pairs) != len(rep.Pairs) {
		t.Errorf("pair counts differ: %d vs %d", len(again.Pairs), len(rep.Pairs))
	}
}

func TestFAREvictionRespectsCapacity(t *testing.T) {
	w := newWorld(27, 800)
	cl := w.client(60_000)
	r := rand.New(rand.NewSource(28))
	for i := 0; i < 60; i++ {
		p := geom.Pt(r.Float64(), r.Float64())
		cl.SetPosition(p)
		if _, err := cl.Query(query.NewRange(geom.RectFromCenter(p, 0.08, 0.08))); err != nil {
			t.Fatal(err)
		}
		if cl.Used() > 60_000 {
			t.Fatalf("query %d: used %d over capacity", i, cl.Used())
		}
	}
	if cl.Regions() == 0 {
		t.Error("cache empty after workload")
	}
}

func TestCrossTypeNoReuse(t *testing.T) {
	// The motivating drawback: a range query's objects do not help a kNN.
	w := newWorld(29, 800)
	cl := w.client(1 << 22)
	center := geom.Pt(0.5, 0.5)
	if _, err := cl.Query(query.NewRange(geom.RectFromCenter(center, 0.2, 0.2))); err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Query(query.NewKNN(center, 3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.SavedBytes != 0 {
		t.Error("semantic cache reused range results for kNN; that is proactive caching's trick, not SEM's")
	}
	if rep.FalseMissBytes == 0 {
		t.Error("expected false misses: results were cached but unusable")
	}
}
