// Package semcache implements the semantic caching baseline (SEM in the
// experiments), following the schemes the paper compares against: range
// queries are trimmed against cached regions à la Ren & Dunham, kNN queries
// are answered from cached kNN results when the Zheng & Lee validity
// condition holds, and join queries pass straight through to the server
// (no semantic caching technique exists for them). Replacement is FAR:
// the cached region farthest from the client's current position goes first.
//
// The defining limitation — and the paper's motivation — is that a cached
// region can only serve queries of its own type: cached range results never
// help a kNN query and vice versa, which shows up as a high false-miss rate.
package semcache

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// regionKind discriminates cached semantic regions.
type regionKind uint8

const (
	rangeRegion regionKind = iota + 1
	knnRegion
)

// region is one cached semantic description plus its associated result ids.
type region struct {
	kind regionKind

	rect geom.Rect // range window (rangeRegion)

	center geom.Point // query point (knnRegion)
	k      int
	radius float64 // distance of the k-th neighbor

	objs     []rtree.ObjectID
	lastUsed uint64
}

// footprint returns the rectangle FAR measures distance to.
func (r *region) footprint() geom.Rect {
	if r.kind == rangeRegion {
		return r.rect
	}
	return geom.RectFromCenter(r.center, 2*r.radius, 2*r.radius)
}

type objInfo struct {
	size int
	mbr  geom.Rect
	refs int
}

// Config parameterizes the semantic cache client.
type Config struct {
	ID       wire.ClientID
	Capacity int
	Sizes    wire.SizeModel
	Channel  wire.Channel
	// MaxFragments caps the remainder decomposition per range query;
	// further cached regions are simply not trimmed (their objects come
	// back as duplicates, which is the realistic cost of limiting cache
	// description complexity). Default 8.
	MaxFragments int
	// RegionDescriptorBytes is the cache overhead per semantic region.
	// Default 24.
	RegionDescriptorBytes int
}

// Client is the semantic-caching mobile client.
type Client struct {
	cfg       Config
	transport wire.Transport

	regions  []*region
	objects  map[rtree.ObjectID]*objInfo
	used     int
	clock    uint64
	position geom.Point

	// Ops models CPU cost: the region list is scanned sequentially for
	// every query (the paper's "plain organization" criticism).
	Ops int
}

// New builds a semantic-caching client.
func New(cfg Config, transport wire.Transport) *Client {
	if cfg.Sizes == (wire.SizeModel{}) {
		cfg.Sizes = wire.DefaultSizeModel()
	}
	if cfg.Channel == (wire.Channel{}) {
		cfg.Channel = wire.DefaultChannel()
	}
	if cfg.MaxFragments <= 0 {
		cfg.MaxFragments = 8
	}
	if cfg.RegionDescriptorBytes <= 0 {
		cfg.RegionDescriptorBytes = 24
	}
	return &Client{cfg: cfg, transport: transport, objects: make(map[rtree.ObjectID]*objInfo)}
}

// Used returns occupied cache bytes.
func (c *Client) Used() int { return c.used }

// Regions returns the number of cached semantic regions.
func (c *Client) Regions() int { return len(c.regions) }

// SetPosition records the client location for FAR replacement.
func (c *Client) SetPosition(p geom.Point) { c.position = p }

// Query processes one query through the semantic cache.
func (c *Client) Query(q query.Query) (core.Report, error) {
	c.clock++
	opsStart := c.Ops
	var rep core.Report
	var err error
	switch q.Kind {
	case query.Range:
		rep, err = c.rangeQuery(q)
	case query.KNN:
		rep, err = c.knnQuery(q)
	default:
		rep, err = c.passThrough(q)
	}
	rep.CacheOps -= opsStart
	return rep, err
}

// rangeQuery trims q against cached range regions and fetches the remainder.
func (c *Client) rangeQuery(q query.Query) (core.Report, error) {
	var rep core.Report

	// Local part: objects of cached range regions that intersect the window.
	saved := make(map[rtree.ObjectID]int)
	fragments := []geom.Rect{q.Window}
	trimmed := 0
	c.Ops += len(c.regions)
	for _, r := range c.regions {
		if r.kind != rangeRegion || !r.rect.Intersects(q.Window) {
			continue
		}
		r.lastUsed = c.clock
		for _, id := range r.objs {
			info := c.objects[id]
			if info != nil && info.mbr.Intersects(q.Window) {
				saved[id] = info.size
			}
		}
		// Trim the remainder while the fragment budget lasts.
		if trimmed < c.cfg.MaxFragments {
			var next []geom.Rect
			for _, f := range fragments {
				next = append(next, f.Subtract(r.rect)...)
			}
			if len(next) <= c.cfg.MaxFragments {
				fragments = next
				trimmed++
			}
		}
	}
	savedIDs := make([]rtree.ObjectID, 0, len(saved))
	for id := range saved {
		savedIDs = append(savedIDs, id)
	}
	sort.Slice(savedIDs, func(i, j int) bool { return savedIDs[i] < savedIDs[j] })
	for _, id := range savedIDs {
		rep.SavedBytes += saved[id]
		rep.Results = append(rep.Results, id)
	}

	if len(fragments) == 0 { // fully covered
		rep.LocalOnly = true
		rep.ResultBytes = rep.SavedBytes
		rep.CacheOps = c.Ops
		return rep, nil
	}

	req := &wire.Request{Client: c.cfg.ID, Q: q, SemWindows: fragments, NoIndex: true}
	resp, err := c.roundTrip(req, &rep, saved)
	if err != nil {
		return rep, err
	}

	// Cache each fragment as a new region holding the returned objects that
	// intersect it.
	for _, f := range fragments {
		var ids []rtree.ObjectID
		for _, o := range resp.Objects {
			if o.MBR.Intersects(f) {
				ids = append(ids, o.ID)
			}
		}
		c.addRegion(&region{kind: rangeRegion, rect: f, objs: ids, lastUsed: c.clock}, resp.Objects)
	}
	c.evict()
	rep.CacheOps = c.Ops
	return rep, nil
}

// knnQuery answers from a cached kNN region when the validity condition
// d(p,q) + rho <= radius holds; otherwise the full query goes to the server.
func (c *Client) knnQuery(q query.Query) (core.Report, error) {
	var rep core.Report
	c.Ops += len(c.regions)
	for _, r := range c.regions {
		if r.kind != knnRegion || r.k < q.K || len(r.objs) < q.K {
			continue
		}
		ids, rho := c.kNearestAmong(r.objs, q.Center, q.K)
		if ids == nil || geom.Dist(q.Center, r.center)+rho > r.radius {
			continue
		}
		r.lastUsed = c.clock
		rep.LocalOnly = true
		for _, id := range ids {
			rep.Results = append(rep.Results, id)
			rep.SavedBytes += c.objects[id].size
		}
		rep.ResultBytes = rep.SavedBytes
		rep.CacheOps = c.Ops
		return rep, nil
	}

	req := &wire.Request{Client: c.cfg.ID, Q: q, NoIndex: true}
	resp, err := c.roundTrip(req, &rep, nil)
	if err != nil {
		return rep, err
	}
	if len(resp.Objects) > 0 {
		ids := make([]rtree.ObjectID, len(resp.Objects))
		for i, o := range resp.Objects {
			ids[i] = o.ID
		}
		last := resp.Objects[len(resp.Objects)-1]
		c.addRegion(&region{
			kind:     knnRegion,
			center:   q.Center,
			k:        q.K,
			radius:   geom.MinDist(q.Center, last.MBR),
			objs:     ids,
			lastUsed: c.clock,
		}, resp.Objects)
	}
	c.evict()
	rep.CacheOps = c.Ops
	return rep, nil
}

// passThrough forwards joins untouched; results are not cacheable
// semantically.
func (c *Client) passThrough(q query.Query) (core.Report, error) {
	var rep core.Report
	req := &wire.Request{Client: c.cfg.ID, Q: q, NoIndex: true}
	if _, err := c.roundTrip(req, &rep, nil); err != nil {
		return rep, err
	}
	rep.CacheOps = c.Ops
	return rep, nil
}

// roundTrip sends the request, merges results into rep, and computes byte
// and timing metrics. saved lists locally confirmed objects (id -> size).
func (c *Client) roundTrip(req *wire.Request, rep *core.Report, saved map[rtree.ObjectID]int) (*wire.Response, error) {
	rep.UplinkBytes = c.cfg.Sizes.RequestBytes(req)
	resp, err := c.transport.RoundTrip(req)
	if err != nil {
		return nil, fmt.Errorf("semcache: %w", err)
	}
	rep.DownlinkBytes = c.cfg.Sizes.ResponseBytes(resp)

	rep.ResultBytes = rep.SavedBytes
	for _, o := range resp.Objects {
		if saved != nil {
			if _, ok := saved[o.ID]; ok {
				continue // duplicate of a locally answered object
			}
		}
		rep.ResultBytes += o.Size
		if _, cached := c.objects[o.ID]; cached {
			rep.FalseMissBytes += o.Size
		}
		rep.Results = append(rep.Results, o.ID)
	}
	rep.Pairs = append(rep.Pairs, resp.Pairs...)

	objDone, total := c.cfg.Sizes.ResponseTimeline(c.cfg.Channel, rep.UplinkBytes, resp)
	rep.TotalTime = total
	if rep.ResultBytes > 0 {
		weighted := 0.0
		for i, o := range resp.Objects {
			if saved != nil {
				if _, ok := saved[o.ID]; ok {
					continue
				}
			}
			weighted += float64(o.Size) * objDone[i]
		}
		rep.RespTime = weighted / float64(rep.ResultBytes)
	} else {
		rep.RespTime = total
	}
	return resp, nil
}

// kNearestAmong returns the k cached objects nearest to p and the distance
// of the k-th, or nil when fewer than k are available.
func (c *Client) kNearestAmong(ids []rtree.ObjectID, p geom.Point, k int) ([]rtree.ObjectID, float64) {
	type cand struct {
		id rtree.ObjectID
		d  float64
	}
	cands := make([]cand, 0, len(ids))
	for _, id := range ids {
		if info, ok := c.objects[id]; ok {
			cands = append(cands, cand{id, geom.MinDist(p, info.mbr)})
		}
	}
	if len(cands) < k {
		return nil, 0
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
	out := make([]rtree.ObjectID, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].id
	}
	return out, cands[k-1].d
}

// addRegion inserts a region and reference-counts its objects, caching
// payloads that are not yet present.
func (c *Client) addRegion(r *region, objs []wire.ObjectRep) {
	byID := make(map[rtree.ObjectID]wire.ObjectRep, len(objs))
	for _, o := range objs {
		byID[o.ID] = o
	}
	kept := r.objs[:0]
	for _, id := range r.objs {
		info, ok := c.objects[id]
		if !ok {
			o, have := byID[id]
			if !have {
				continue
			}
			info = &objInfo{size: o.Size, mbr: o.MBR}
			c.objects[id] = info
			c.used += o.Size
		}
		info.refs++
		kept = append(kept, id)
	}
	r.objs = kept
	c.regions = append(c.regions, r)
	c.used += c.cfg.RegionDescriptorBytes
	c.Ops += len(r.objs) + 1
}

// evict applies FAR: drop the region farthest from the current position
// until the cache fits; objects leave when their last region does.
func (c *Client) evict() {
	for c.used > c.cfg.Capacity && len(c.regions) > 0 {
		c.Ops += len(c.regions)
		worst, worstDist := -1, -1.0
		for i, r := range c.regions {
			d := geom.MinDist(c.position, r.footprint())
			if d > worstDist {
				worst, worstDist = i, d
			}
		}
		c.dropRegion(worst)
	}
}

func (c *Client) dropRegion(i int) {
	r := c.regions[i]
	for _, id := range r.objs {
		info := c.objects[id]
		info.refs--
		if info.refs <= 0 {
			c.used -= info.size
			delete(c.objects, id)
		}
	}
	c.used -= c.cfg.RegionDescriptorBytes
	c.regions = append(c.regions[:i], c.regions[i+1:]...)
	c.Ops += len(r.objs)
}
