// Package bpt implements the binary partition trees of Section 4.2 of the
// paper: per-R-tree-node binary trees that recursively split a node's entries
// with the R*-tree split algorithm, enabling "super entries" (n, code) that
// coarsely summarize the entries a query did not access.
//
// A cached or shipped representation of an R-tree node is a Cut: an antichain
// of partition-tree positions that together cover every entry of the node
// exactly once. The normal compact form CF(n, Q) is the frontier of the
// positions a query expanded; the d+-level compact form refines every cut
// element by up to d further levels; the full form is the cut of all leaves.
package bpt

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// Code addresses a position in a binary partition tree: the empty string is
// the root, and each '0'/'1' descends to the left/right child (the paper's
// (n, code) super-entry designator).
type Code string

// Child returns the code of the left (bit 0) or right (bit 1) child.
func (c Code) Child(right bool) Code {
	if right {
		return c + "1"
	}
	return c + "0"
}

// Parent returns the code of the parent position; the root returns itself.
func (c Code) Parent() Code {
	if len(c) == 0 {
		return c
	}
	return c[:len(c)-1]
}

// IsStrictAncestorOf reports whether d lies strictly below c.
func (c Code) IsStrictAncestorOf(d Code) bool {
	return len(d) > len(c) && strings.HasPrefix(string(d), string(c))
}

// PNode is one position of a partition tree. Leaf positions carry the real
// R-tree entry they stand for; internal positions group the entries beneath
// them under a combined MBR (the super entry's MBR).
type PNode struct {
	Code        Code
	MBR         geom.Rect
	Left, Right *PNode
	Entry       rtree.Entry // valid iff Leaf()
	Count       int         // number of real entries beneath (1 for leaves)
}

// Leaf reports whether the position stands for a single real entry.
func (p *PNode) Leaf() bool { return p.Left == nil }

// Tree is the binary partition tree of one R-tree node.
type Tree struct {
	NodeID rtree.NodeID
	Root   *PNode
	Height int // edges on the longest root-leaf path; 0 for a single entry
	byCode map[Code]*PNode
}

// Build constructs the partition tree over the given entries (the entry list
// of R-tree node nodeID). It panics on an empty entry list: partition trees
// exist only for non-empty nodes.
//
// Construction is the hot cost of index updates (every touched page's tree
// is rebuilt), so the recursive splitting runs in place over one private
// copy of the entries with shared split scratch, instead of copying the two
// halves at every level.
func Build(nodeID rtree.NodeID, entries []rtree.Entry) *Tree {
	if len(entries) == 0 {
		panic("bpt: cannot build partition tree over zero entries")
	}
	t := &Tree{NodeID: nodeID, byCode: make(map[Code]*PNode, 2*len(entries))}
	work := append(make([]rtree.Entry, 0, len(entries)), entries...)
	t.Root = t.build("", work, rtree.NewSplitScratch(len(entries)))
	return t
}

func (t *Tree) build(code Code, entries []rtree.Entry, scratch *rtree.SplitScratch) *PNode {
	p := &PNode{Code: code, Count: len(entries)}
	t.byCode[code] = p
	if len(t.byCode) > 0 && len(code) > t.Height {
		t.Height = len(code)
	}
	if len(entries) == 1 {
		p.Entry = entries[0]
		p.MBR = entries[0].MBR
		return p
	}
	k := scratch.Split(entries, 1)
	p.Left = t.build(code.Child(false), entries[:k], scratch)
	p.Right = t.build(code.Child(true), entries[k:], scratch)
	p.MBR = p.Left.MBR.Union(p.Right.MBR)
	return p
}

// Node returns the position with the given code.
func (t *Tree) Node(c Code) (*PNode, bool) {
	p, ok := t.byCode[c]
	return p, ok
}

// EntryCount returns the number of real entries in the underlying R-tree node.
func (t *Tree) EntryCount() int { return t.Root.Count }

// Cut is a set of partition-tree positions, kept sorted by code. A valid cut
// is an antichain that covers every entry of the node exactly once.
type Cut []Code

// normalize sorts and deduplicates in place, returning the result.
func (c Cut) normalize() Cut {
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	out := c[:0]
	for i, code := range c {
		if i == 0 || code != c[i-1] {
			out = append(out, code)
		}
	}
	return out
}

// Contains reports whether code is an element of the cut.
func (c Cut) Contains(code Code) bool {
	i := sort.Search(len(c), func(i int) bool { return c[i] >= code })
	return i < len(c) && c[i] == code
}

// FullCut returns the finest cut: every leaf position (the paper's full form).
func (t *Tree) FullCut() Cut {
	return t.FullCutInto(nil)
}

// RootCut returns the coarsest cut: the root alone (the whole node as one
// super entry).
func (t *Tree) RootCut() Cut { return Cut{""} }

// MergeCuts combines two cuts of the same tree into their finest common
// refinement: the deepest positions of the union survive. This is how the
// cache integrates a newly shipped representation of a node with the one it
// already holds — knowledge only ever gets finer.
func MergeCuts(a, b Cut) Cut {
	u := make(Cut, 0, len(a)+len(b))
	u = append(u, a...)
	u = append(u, b...)
	u = u.normalize()
	out := u[:0]
	for i, code := range u {
		// In lexicographic order every strict descendant of code follows it
		// immediately (all codes sharing the prefix are contiguous), so one
		// look-ahead decides survival.
		if i+1 < len(u) && code.IsStrictAncestorOf(u[i+1]) {
			continue
		}
		out = append(out, code)
	}
	return out
}

// ExpandCut refines each cut element by up to d further levels of the
// partition tree — the paper's d+-level compact form. d = 0 returns the cut
// unchanged; d >= Height from any element reaches the real entries.
func (t *Tree) ExpandCut(cut Cut, d int) Cut {
	if d <= 0 {
		return append(Cut(nil), cut...)
	}
	// Normalize because, unlike ExpandCutInto, this entry point accepts an
	// arbitrarily ordered cut.
	return t.ExpandCutInto(nil, cut, d).normalize()
}

// --------------------------------------------------------------------------
// Scratch-buffer cut construction. The serving hot path builds one cut per
// visited node per request; the *Into variants append into a caller-owned
// buffer instead of allocating, and skip normalization: a left-to-right
// depth-first walk of the partition tree emits codes in lexicographic order
// already (for an antichain, order is decided before any extension), so the
// result equals the normalized form of the allocating methods.

// FullCutInto appends the finest cut (every leaf position) to dst and
// returns it. The result is sorted; dst's contents are preserved.
func (t *Tree) FullCutInto(dst Cut) Cut {
	return appendLeafCodes(dst, t.Root)
}

func appendLeafCodes(dst Cut, p *PNode) Cut {
	if p.Leaf() {
		return append(dst, p.Code)
	}
	dst = appendLeafCodes(dst, p.Left)
	return appendLeafCodes(dst, p.Right)
}

// FrontierInto is Frontier appending into dst; the result is sorted.
func (t *Tree) FrontierInto(dst Cut, expanded map[Code]bool) Cut {
	if len(expanded) == 0 || !expanded[t.Root.Code] {
		return append(dst, t.Root.Code)
	}
	return appendFrontier(dst, t.Root, expanded)
}

func appendFrontier(dst Cut, p *PNode, expanded map[Code]bool) Cut {
	if !p.Leaf() && expanded[p.Code] {
		dst = appendFrontier(dst, p.Left, expanded)
		return appendFrontier(dst, p.Right, expanded)
	}
	return append(dst, p.Code)
}

// ExpandCutInto is ExpandCut appending into dst. cut must be a sorted
// antichain (every Cut this package produces is); the result is sorted.
func (t *Tree) ExpandCutInto(dst Cut, cut Cut, d int) Cut {
	if d <= 0 {
		return append(dst, cut...)
	}
	for _, code := range cut {
		p, ok := t.byCode[code]
		if !ok {
			continue
		}
		dst = appendDescend(dst, p, d)
	}
	return dst
}

func appendDescend(dst Cut, p *PNode, depth int) Cut {
	if p.Leaf() || depth == 0 {
		return append(dst, p.Code)
	}
	dst = appendDescend(dst, p.Left, depth-1)
	return appendDescend(dst, p.Right, depth-1)
}

// Frontier derives the normal compact form from the set of positions a query
// expanded (popped and replaced by their children). The root counts as
// expanded whenever the set is non-empty; an empty set yields the root cut.
// Leaf positions are always frontier elements of their branch.
func (t *Tree) Frontier(expanded map[Code]bool) Cut {
	return t.FrontierInto(nil, expanded)
}

// PartialFrontier generalizes Frontier to expansion sets that do not start
// at the root: the server may resume a remainder query from a client's super
// entry (n, code) and expand only the subtree below it. For every expansion
// region (an expanded position with no expanded ancestor) the unexpanded
// frontier beneath it is emitted. The result is an antichain covering
// exactly the explored regions — merging it into the client's existing cut
// refines precisely the parts the query touched.
func (t *Tree) PartialFrontier(expanded map[Code]bool) Cut {
	var out Cut
	var walk func(p *PNode)
	walk = func(p *PNode) {
		if !p.Leaf() && expanded[p.Code] {
			walk(p.Left)
			walk(p.Right)
			return
		}
		out = append(out, p.Code)
	}
	for code := range expanded {
		isRoot := code == "" || !expanded[code.Parent()]
		if !isRoot {
			continue
		}
		if p, ok := t.byCode[code]; ok && !p.Leaf() {
			walk(p)
		}
	}
	return out.normalize()
}

// ValidateCut checks that cut is an antichain of existing positions covering
// every real entry exactly once.
func (t *Tree) ValidateCut(cut Cut) error {
	covered := 0
	for i, code := range cut {
		p, ok := t.byCode[code]
		if !ok {
			return fmt.Errorf("bpt: cut element %q does not exist", code)
		}
		covered += p.Count
		for j := i + 1; j < len(cut); j++ {
			if code.IsStrictAncestorOf(cut[j]) || cut[j].IsStrictAncestorOf(code) {
				return fmt.Errorf("bpt: cut elements %q and %q are related", code, cut[j])
			}
		}
	}
	if covered != t.Root.Count {
		return fmt.Errorf("bpt: cut covers %d entries, node has %d", covered, t.Root.Count)
	}
	return nil
}

// Size returns the number of positions (2N-1 for N entries).
func (t *Tree) Size() int { return len(t.byCode) }

// Forest lazily builds and caches partition trees for the nodes of an R-tree.
// It is safe for concurrent use: any number of goroutines may call Get while
// others Invalidate. Callers must still ensure the R-tree nodes themselves
// are not mutated while a Get is in flight (the server does this with its
// index RWMutex); call Invalidate after any structural mutation of a node.
type Forest struct {
	mu    sync.RWMutex
	trees map[rtree.NodeID]*Tree
}

// NewForest returns an empty forest.
func NewForest() *Forest {
	return &Forest{trees: make(map[rtree.NodeID]*Tree)}
}

// Get returns the partition tree for node n, building it on first use. Two
// goroutines racing on a cold node may both build; one result wins and the
// other is dropped — partition trees for the same entries are equivalent.
func (f *Forest) Get(n *rtree.Node) *Tree {
	f.mu.RLock()
	t, ok := f.trees[n.ID]
	f.mu.RUnlock()
	if ok && t.Root.Count == len(n.Entries) {
		return t
	}
	built := Build(n.ID, n.Entries)
	f.mu.Lock()
	defer f.mu.Unlock()
	if t, ok := f.trees[n.ID]; ok && t.Root.Count == len(n.Entries) {
		return t
	}
	f.trees[n.ID] = built
	return built
}

// Invalidate drops the cached tree for a node after its entries changed.
func (f *Forest) Invalidate(id rtree.NodeID) {
	f.mu.Lock()
	delete(f.trees, id)
	f.mu.Unlock()
}

// Len returns the number of cached partition trees.
func (f *Forest) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.trees)
}

// TotalPositions sums Size over all cached trees (the paper's "no more than
// two times the R-tree index" space bound, §4.2).
func (f *Forest) TotalPositions() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	total := 0
	for _, t := range f.trees {
		total += t.Size()
	}
	return total
}
