package bpt

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// TestIntoVariantsMatchAllocating pins the contract the serving hot path
// relies on: the scratch-buffer cut builders emit exactly the cuts of the
// allocating methods — a left-to-right DFS already yields the normalized
// (sorted, deduplicated) order, so skipping normalize must never change a
// response.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(40)
		entries := make([]rtree.Entry, n)
		for i := range entries {
			c := geom.Pt(r.Float64(), r.Float64())
			entries[i] = rtree.Entry{MBR: geom.RectFromCenter(c, 0.01, 0.01), Obj: rtree.ObjectID(i + 1)}
		}
		pt := Build(1, entries)

		if got, want := pt.FullCutInto(nil), pt.FullCut(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: FullCutInto %v != FullCut %v", trial, got, want)
		}

		// Random upward-closed expansion set, the shape markExpanded builds.
		expanded := map[Code]bool{}
		var descend func(p *PNode)
		descend = func(p *PNode) {
			if p.Leaf() || r.Intn(3) == 0 {
				return
			}
			expanded[p.Code] = true
			descend(p.Left)
			descend(p.Right)
		}
		descend(pt.Root)

		frontier := pt.Frontier(expanded)
		if got := pt.FrontierInto(nil, expanded); !reflect.DeepEqual(got, frontier) {
			t.Fatalf("trial %d: FrontierInto %v != Frontier %v (expanded %v)", trial, got, frontier, expanded)
		}
		for d := 0; d <= 3; d++ {
			want := pt.ExpandCut(frontier, d)
			if got := pt.ExpandCutInto(nil, frontier, d); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d d=%d: ExpandCutInto %v != ExpandCut %v", trial, d, got, want)
			}
		}
	}
}
