package bpt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rtree"
)

func randEntries(r *rand.Rand, n int) []rtree.Entry {
	entries := make([]rtree.Entry, n)
	for i := range entries {
		c := geom.Pt(r.Float64(), r.Float64())
		entries[i] = rtree.Entry{
			MBR: geom.RectFromCenter(c, r.Float64()*0.05, r.Float64()*0.05),
			Obj: rtree.ObjectID(i + 1),
		}
	}
	return entries
}

func TestCodeOps(t *testing.T) {
	root := Code("")
	l, r := root.Child(false), root.Child(true)
	if l != "0" || r != "1" {
		t.Fatalf("children = %q, %q", l, r)
	}
	if l.Parent() != root || root.Parent() != root {
		t.Error("parent broken")
	}
	if !root.IsStrictAncestorOf("01") || root.IsStrictAncestorOf(root) {
		t.Error("ancestor of root broken")
	}
	if Code("0").IsStrictAncestorOf("1") || !Code("0").IsStrictAncestorOf("00") {
		t.Error("ancestor relation broken")
	}
}

func TestBuildStructure(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for _, n := range []int{1, 2, 3, 5, 17, 64} {
		entries := randEntries(r, n)
		pt := Build(1, entries)
		if pt.Root.Count != n {
			t.Fatalf("n=%d: root count %d", n, pt.Root.Count)
		}
		// 2N-1 positions for N entries.
		if pt.Size() != 2*n-1 {
			t.Fatalf("n=%d: size %d, want %d", n, pt.Size(), 2*n-1)
		}
		// Every leaf carries a distinct object; MBRs nest upward.
		seen := map[rtree.ObjectID]bool{}
		var walk func(p *PNode)
		walk = func(p *PNode) {
			if p.Leaf() {
				if seen[p.Entry.Obj] {
					t.Fatalf("duplicate object %d", p.Entry.Obj)
				}
				seen[p.Entry.Obj] = true
				return
			}
			if !p.MBR.Contains(p.Left.MBR) || !p.MBR.Contains(p.Right.MBR) {
				t.Fatalf("MBR %v does not contain children", p.MBR)
			}
			if p.Count != p.Left.Count+p.Right.Count {
				t.Fatalf("count mismatch at %q", p.Code)
			}
			walk(p.Left)
			walk(p.Right)
		}
		walk(pt.Root)
		if len(seen) != n {
			t.Fatalf("n=%d: %d distinct leaves", n, len(seen))
		}
	}
}

func TestFullAndRootCutsValid(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	pt := Build(1, randEntries(r, 23))
	if err := pt.ValidateCut(pt.FullCut()); err != nil {
		t.Errorf("full cut invalid: %v", err)
	}
	if err := pt.ValidateCut(pt.RootCut()); err != nil {
		t.Errorf("root cut invalid: %v", err)
	}
	if len(pt.FullCut()) != 23 {
		t.Errorf("full cut size %d", len(pt.FullCut()))
	}
}

// randomCut draws a random valid cut by stochastic descent from the root.
func randomCut(r *rand.Rand, pt *Tree) Cut {
	var cut Cut
	var walk func(p *PNode)
	walk = func(p *PNode) {
		if p.Leaf() || r.Intn(3) == 0 {
			cut = append(cut, p.Code)
			return
		}
		walk(p.Left)
		walk(p.Right)
	}
	walk(pt.Root)
	return cut.normalize()
}

func TestMergeCutsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for trial := 0; trial < 200; trial++ {
		pt := Build(1, randEntries(r, 2+r.Intn(40)))
		a, b := randomCut(r, pt), randomCut(r, pt)
		m := MergeCuts(a, b)
		if err := pt.ValidateCut(m); err != nil {
			t.Fatalf("merged cut invalid: %v (a=%v b=%v m=%v)", err, a, b, m)
		}
		// Refinement: every element of m is a descendant-or-equal of some
		// element in each input cut.
		for _, code := range m {
			if !coveredBy(code, a) || !coveredBy(code, b) {
				t.Fatalf("merge not a refinement: %q vs a=%v b=%v", code, a, b)
			}
		}
		// Idempotent and commutative.
		if !equalCuts(MergeCuts(m, a), m) || !equalCuts(MergeCuts(b, a), m) {
			t.Fatal("merge not idempotent/commutative")
		}
	}
}

func coveredBy(code Code, cut Cut) bool {
	for _, c := range cut {
		if c == code || c.IsStrictAncestorOf(code) {
			return true
		}
	}
	return false
}

func equalCuts(a, b Cut) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestExpandCut(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	pt := Build(1, randEntries(r, 32))

	// 0-level expansion is the identity.
	root := pt.RootCut()
	if !equalCuts(pt.ExpandCut(root, 0), root) {
		t.Error("0-level expansion changed cut")
	}
	// 1-level expansion of the root yields its two children.
	one := pt.ExpandCut(root, 1)
	if len(one) != 2 {
		t.Fatalf("1-level expansion = %v", one)
	}
	if err := pt.ValidateCut(one); err != nil {
		t.Errorf("1-level cut invalid: %v", err)
	}
	// Deep expansion reaches the full form.
	deep := pt.ExpandCut(root, pt.Height+1)
	if !equalCuts(deep, pt.FullCut()) {
		t.Errorf("deep expansion != full cut")
	}
	// Every intermediate d stays valid and monotonically refines.
	prev := root
	for d := 1; d <= pt.Height; d++ {
		cur := pt.ExpandCut(root, d)
		if err := pt.ValidateCut(cur); err != nil {
			t.Fatalf("d=%d invalid: %v", d, err)
		}
		for _, code := range cur {
			if !coveredBy(code, prev) {
				t.Fatalf("d=%d not a refinement of d=%d", d, d-1)
			}
		}
		prev = cur
	}
}

// Paper example, Figure 5: expanding the root's compact form by one level
// approximately doubles the granularity.
func TestPaperFigure5Shape(t *testing.T) {
	// Five entries roughly placed like r1..r5 in Figure 5(a).
	entries := []rtree.Entry{
		{MBR: geom.R(0.05, 0.60, 0.20, 0.90), Obj: 1}, // r1
		{MBR: geom.R(0.15, 0.35, 0.30, 0.55), Obj: 2}, // r2
		{MBR: geom.R(0.55, 0.65, 0.75, 0.85), Obj: 3}, // r3
		{MBR: geom.R(0.60, 0.35, 0.80, 0.55), Obj: 4}, // r4
		{MBR: geom.R(0.80, 0.05, 0.95, 0.25), Obj: 5}, // r5
	}
	pt := Build(7, entries)
	if pt.Size() != 9 {
		t.Fatalf("size %d, want 9 (= 2*5-1)", pt.Size())
	}
	full := pt.FullCut()
	if len(full) != 5 {
		t.Fatalf("full cut %v", full)
	}
	// The normal form {(n,0),(n,1)} expanded one level gives ~4 elements.
	oneUp := pt.ExpandCut(Cut{"0", "1"}, 1)
	if err := pt.ValidateCut(oneUp); err != nil {
		t.Fatalf("1+ cut invalid: %v", err)
	}
	if len(oneUp) < 3 || len(oneUp) > 5 {
		t.Errorf("1+-level form has %d elements, want ~4", len(oneUp))
	}
}

func TestFrontier(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	pt := Build(1, randEntries(r, 16))

	// Nothing expanded -> root cut.
	if !equalCuts(pt.Frontier(nil), pt.RootCut()) {
		t.Error("empty frontier should be root cut")
	}
	// Only root expanded -> its two children.
	f := pt.Frontier(map[Code]bool{"": true})
	if len(f) != 2 || f[0] != "0" || f[1] != "1" {
		t.Errorf("root-only frontier = %v", f)
	}
	if err := pt.ValidateCut(f); err != nil {
		t.Errorf("frontier invalid: %v", err)
	}
	// Random downward-closed expansion sets always yield valid cuts.
	for trial := 0; trial < 100; trial++ {
		expanded := map[Code]bool{}
		var walk func(p *PNode)
		walk = func(p *PNode) {
			if p.Leaf() || r.Intn(2) == 0 {
				return
			}
			expanded[p.Code] = true
			walk(p.Left)
			walk(p.Right)
		}
		walk(pt.Root)
		f := pt.Frontier(expanded)
		if err := pt.ValidateCut(f); err != nil {
			t.Fatalf("frontier invalid: %v (expanded=%v)", err, expanded)
		}
		// No frontier element may be expanded-internal.
		for _, code := range f {
			p, _ := pt.Node(code)
			if !p.Leaf() && expanded[code] {
				t.Fatalf("expanded internal %q in frontier", code)
			}
		}
	}
}

func TestValidateCutRejects(t *testing.T) {
	r := rand.New(rand.NewSource(36))
	pt := Build(1, randEntries(r, 8))
	if err := pt.ValidateCut(Cut{"0"}); err == nil {
		t.Error("partial cut accepted")
	}
	if err := pt.ValidateCut(Cut{"", "0"}); err == nil {
		t.Error("related elements accepted")
	}
	if err := pt.ValidateCut(Cut{"0101010101"}); err == nil {
		t.Error("nonexistent code accepted")
	}
}

// Property (testing/quick): merging any two random cuts of any random tree
// yields a valid cut that refines both inputs; expansion of the merge stays
// valid at every level.
func TestQuickCutAlgebra(t *testing.T) {
	f := func(seed int64, nRaw uint8, d uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%40
		pt := Build(1, randEntries(r, n))
		a, b := randomCut(r, pt), randomCut(r, pt)
		m := MergeCuts(a, b)
		if pt.ValidateCut(m) != nil {
			return false
		}
		for _, code := range m {
			if !coveredBy(code, a) || !coveredBy(code, b) {
				return false
			}
		}
		expanded := pt.ExpandCut(m, int(d)%4)
		return pt.ValidateCut(expanded) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): PartialFrontier of any downward-closed expansion
// subset is an antichain whose elements exist, and closing the set upward
// turns it into a full cover.
func TestQuickPartialFrontier(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%40
		pt := Build(1, randEntries(r, n))
		// Random expansion region: pick a random internal position and
		// expand a random downward-closed subset beneath it.
		expanded := map[Code]bool{}
		var walk func(p *PNode, on bool)
		walk = func(p *PNode, on bool) {
			if p.Leaf() {
				return
			}
			if on {
				expanded[p.Code] = true
			}
			walk(p.Left, on && r.Intn(2) == 0)
			walk(p.Right, on && r.Intn(2) == 0)
		}
		walk(pt.Root, true)
		delete(expanded, "") // may leave a partial region set
		partial := pt.PartialFrontier(expanded)
		for i, c := range partial {
			if _, ok := pt.Node(c); !ok {
				return false
			}
			for j := i + 1; j < len(partial); j++ {
				if c.IsStrictAncestorOf(partial[j]) || partial[j].IsStrictAncestorOf(c) {
					return false
				}
			}
		}
		// Upward closure must produce a full cover.
		closed := map[Code]bool{}
		for c := range expanded {
			closed[c] = true
			for p := c; len(p) > 0; {
				p = p.Parent()
				closed[p] = true
			}
		}
		if len(closed) == 0 {
			return true
		}
		return pt.ValidateCut(pt.Frontier(closed)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestForest(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	items := make([]rtree.Item, 300)
	for i := range items {
		items[i] = rtree.Item{
			Obj: rtree.ObjectID(i + 1),
			MBR: geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01),
		}
	}
	tr := rtree.BulkLoad(rtree.Params{MaxEntries: 16}, items, 0.7)
	f := NewForest()
	tr.Nodes(func(n *rtree.Node) bool {
		pt := f.Get(n)
		if pt.Root.Count != len(n.Entries) {
			t.Fatalf("node %d: partition count %d != %d", n.ID, pt.Root.Count, len(n.Entries))
		}
		// Second Get hits the cache.
		if f.Get(n) != pt {
			t.Fatal("forest did not cache")
		}
		return true
	})
	if f.Len() != tr.NodeCount() {
		t.Errorf("forest len %d, want %d", f.Len(), tr.NodeCount())
	}
	// Paper bound: partition positions <= 2x entries (2N-1 per node).
	totalEntries := 0
	tr.Nodes(func(n *rtree.Node) bool { totalEntries += len(n.Entries); return true })
	if f.TotalPositions() > 2*totalEntries {
		t.Errorf("positions %d exceed 2x entries %d", f.TotalPositions(), totalEntries)
	}
	f.Invalidate(tr.Root())
	if f.Len() != tr.NodeCount()-1 {
		t.Error("invalidate did not drop")
	}
}
