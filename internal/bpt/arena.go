package bpt

import (
	"sync/atomic"

	"repro/internal/rtree"
)

// Lock-free partition-forest cache for the snapshot-isolated server.
//
// Forest (bpt.go) guards its map with an RWMutex and relies on explicit
// Invalidate calls under the index write lock — exactly the coupling the
// snapshot refactor removes. ForestArena instead keys each cached partition
// tree by the R-tree page's generation counter (rtree.Node.Gen, bumped on
// every content change): a lookup is one atomic load plus a generation
// compare, with no lock, no invalidation traffic, and no coordination with
// the writer. Readers pinned to different snapshots can share one arena
// because a (NodeID, Gen) pair names immutable page content.

// genTree is one cached partition tree stamped with the page generation it
// was built from.
type genTree struct {
	gen  uint32
	tree *Tree
}

// ForestArena is the writer-owned cache: a dense slot array indexed by
// NodeID. The writer grows it (EnsureSpan) before publishing a snapshot
// whose arena issued new ids; readers go through the ForestView captured in
// their snapshot.
type ForestArena struct {
	slots []atomic.Pointer[genTree]
}

// NewForestArena returns an arena sized for the given id span.
func NewForestArena(span rtree.NodeID) *ForestArena {
	return &ForestArena{slots: make([]atomic.Pointer[genTree], span)}
}

// EnsureSpan grows the slot array to cover ids below span. Only the writer
// may call it, and only between publishes: views handed to earlier snapshots
// keep the old array (their trees never contain the new ids), and cached
// entries are carried over. A CAS racing into the old array during the copy
// is lost, which costs one rebuild, never correctness.
func (f *ForestArena) EnsureSpan(span rtree.NodeID) {
	if int(span) <= len(f.slots) {
		return
	}
	grown := make([]atomic.Pointer[genTree], span)
	for i := range f.slots {
		grown[i].Store(f.slots[i].Load())
	}
	f.slots = grown
}

// View captures the current slot array for publication inside a snapshot.
func (f *ForestArena) View() ForestView { return ForestView{slots: f.slots} }

// ForestView is the read-side handle published with each snapshot.
type ForestView struct {
	slots []atomic.Pointer[genTree]
}

// Get returns the partition tree for page n, building it when the cached one
// is missing or from a different generation. A build triggered by a current
// snapshot (the cached generation is older or absent) is published for later
// readers with a CAS; a build triggered by a reader pinned to a retired
// snapshot (the cached generation is newer) is used once and dropped, so the
// cache always converges toward the newest published content. The warm path
// — page unchanged since last queried — is one atomic load.
func (v ForestView) Get(n *rtree.Node) *Tree {
	if int(n.ID) >= len(v.slots) {
		return Build(n.ID, n.Entries)
	}
	slot := &v.slots[n.ID]
	p := slot.Load()
	if p != nil && p.gen == n.Gen {
		return p.tree
	}
	t := Build(n.ID, n.Entries)
	if p == nil || genBefore(p.gen, n.Gen) {
		slot.CompareAndSwap(p, &genTree{gen: n.Gen, tree: t})
	}
	return t
}

// genBefore reports whether a precedes b in wraparound-safe generation order.
func genBefore(a, b uint32) bool { return int32(b-a) > 0 }
