package metrics

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// ClusterStats are the live counters of a cluster router (internal/cluster):
// how client requests fan out into shard sub-queries, how often the kNN
// re-issue protocol fires, and how much cross-shard join work the merge
// layer performs. All fields are atomic; one ClusterStats is shared by every
// request the router serves.
type ClusterStats struct {
	// Requests counts client requests routed (queries, catalogs, updates).
	Requests atomic.Int64
	// SubQueries counts shard sub-requests issued (all kinds).
	SubQueries atomic.Int64
	// SingleShard counts client queries answered by exactly one shard —
	// the fan-out-free fast path.
	SingleShard atomic.Int64
	// Reissues counts kNN sub-queries re-issued because a shard's initial
	// probe under-fetched (its local bound still beat the global k-th best).
	Reissues atomic.Int64
	// CrossPairTasks counts cross-shard join candidate scans (one per shard
	// pair whose boundary band intersected the join window).
	CrossPairTasks atomic.Int64
	// Flushes counts responses that told a client to drop its cache (epoch
	// fell off the per-client table, or a shard demanded it).
	Flushes atomic.Int64

	// PerShard holds one counter block per shard, indexed by shard ordinal.
	PerShard []ShardCounters
}

// ShardCounters are the per-shard slice of the router's counters.
type ShardCounters struct {
	// SubQueries counts sub-requests routed to this shard.
	SubQueries atomic.Int64
	// Errors counts sub-requests this shard failed.
	Errors atomic.Int64
	// Retries counts sub-requests re-sent after a transport error.
	Retries atomic.Int64
	// Failovers counts promotions of this shard's warm replica.
	Failovers atomic.Int64
	// Redials counts reconnects to this shard's primary endpoint.
	Redials atomic.Int64
}

// NewClusterStats returns counters for a router over n shards.
func NewClusterStats(n int) *ClusterStats {
	return &ClusterStats{PerShard: make([]ShardCounters, n)}
}

// ClusterSnapshot is a point-in-time copy of ClusterStats for printing.
type ClusterSnapshot struct {
	Requests       int64
	SubQueries     int64
	SingleShard    int64
	Reissues       int64
	CrossPairTasks int64
	Flushes        int64
	PerShard       []ShardSnapshot
}

// ShardSnapshot is one shard's counter copy.
type ShardSnapshot struct {
	SubQueries int64
	Errors     int64
	Retries    int64
	Failovers  int64
	Redials    int64
}

// Snapshot copies the live counters.
func (s *ClusterStats) Snapshot() ClusterSnapshot {
	snap := ClusterSnapshot{
		Requests:       s.Requests.Load(),
		SubQueries:     s.SubQueries.Load(),
		SingleShard:    s.SingleShard.Load(),
		Reissues:       s.Reissues.Load(),
		CrossPairTasks: s.CrossPairTasks.Load(),
		Flushes:        s.Flushes.Load(),
		PerShard:       make([]ShardSnapshot, len(s.PerShard)),
	}
	for i := range s.PerShard {
		snap.PerShard[i] = ShardSnapshot{
			SubQueries: s.PerShard[i].SubQueries.Load(),
			Errors:     s.PerShard[i].Errors.Load(),
			Retries:    s.PerShard[i].Retries.Load(),
			Failovers:  s.PerShard[i].Failovers.Load(),
			Redials:    s.PerShard[i].Redials.Load(),
		}
	}
	return snap
}

// FanOut returns the mean shard sub-queries per routed request.
func (s ClusterSnapshot) FanOut() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.SubQueries) / float64(s.Requests)
}

// String renders a one-line summary plus a per-shard breakdown.
func (s ClusterSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d reqs, %d subqueries (%.2f fan-out), %d single-shard, %d reissues, %d cross-pair scans, %d flushes; shards:",
		s.Requests, s.SubQueries, s.FanOut(), s.SingleShard, s.Reissues, s.CrossPairTasks, s.Flushes)
	for i, sh := range s.PerShard {
		fmt.Fprintf(&b, " %d=%d", i, sh.SubQueries)
		if sh.Errors > 0 {
			fmt.Fprintf(&b, "(%derr)", sh.Errors)
		}
		if sh.Retries > 0 || sh.Failovers > 0 || sh.Redials > 0 {
			fmt.Fprintf(&b, "[%dretry/%dfo/%dredial]", sh.Retries, sh.Failovers, sh.Redials)
		}
	}
	return b.String()
}

// Retries sums sub-request retries across shards.
func (s ClusterSnapshot) Retries() int64 {
	return s.sum(func(sh ShardSnapshot) int64 { return sh.Retries })
}

// Failovers sums replica promotions across shards.
func (s ClusterSnapshot) Failovers() int64 {
	return s.sum(func(sh ShardSnapshot) int64 { return sh.Failovers })
}

// Redials sums primary reconnects across shards.
func (s ClusterSnapshot) Redials() int64 {
	return s.sum(func(sh ShardSnapshot) int64 { return sh.Redials })
}

func (s ClusterSnapshot) sum(f func(ShardSnapshot) int64) int64 {
	var t int64
	for _, sh := range s.PerShard {
		t += f(sh)
	}
	return t
}
