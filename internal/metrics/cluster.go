package metrics

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// ClusterStats are the live counters of a cluster router (internal/cluster):
// how client requests fan out into shard sub-queries, how often the kNN
// re-issue protocol fires, how much cross-shard join work the merge layer
// performs, and — since the cluster went elastic — how the shard topology
// itself moves (splits, merges, handover time) and how load sits on each
// shard slot (object-count and QPS gauges). All fields are atomic; one
// ClusterStats is shared by every request the router serves.
//
// The per-shard blocks live behind an atomic pointer so the router can grow
// the slot count during an online split without synchronizing readers:
// Shard(i) is always safe, and a block, once created, is never replaced —
// counters survive the slot going dead and coming back.
type ClusterStats struct {
	// Requests counts client requests routed (queries, catalogs, updates).
	Requests atomic.Int64
	// SubQueries counts shard sub-requests issued (all kinds).
	SubQueries atomic.Int64
	// SingleShard counts client queries answered by exactly one shard —
	// the fan-out-free fast path.
	SingleShard atomic.Int64
	// Reissues counts kNN sub-queries re-issued because a shard's initial
	// probe under-fetched (its local bound still beat the global k-th best).
	Reissues atomic.Int64
	// CrossPairTasks counts cross-shard join candidate scans (one per shard
	// pair whose boundary band intersected the join window).
	CrossPairTasks atomic.Int64
	// Flushes counts responses that told a client to drop its cache (epoch
	// fell off the per-client table, or a shard demanded it).
	Flushes atomic.Int64

	// Splits and Merges count completed elastic topology changes
	// (docs/ELASTIC.md); HandoverNanos accumulates the time requests were
	// fenced out during their cutovers, so mean handover pause is
	// HandoverNanos / (Splits + Merges).
	Splits        atomic.Int64
	Merges        atomic.Int64
	HandoverNanos atomic.Int64

	// perShard holds one counter block per shard slot, swapped atomically
	// when the topology grows.
	perShard atomic.Pointer[[]*ShardCounters]
}

// ShardCounters are the per-shard slice of the router's counters, plus the
// load gauges the elastic rebalancer triggers on.
type ShardCounters struct {
	// SubQueries counts sub-requests routed to this shard.
	SubQueries atomic.Int64
	// Errors counts sub-requests this shard failed.
	Errors atomic.Int64
	// Retries counts sub-requests re-sent after a transport error.
	Retries atomic.Int64
	// Failovers counts promotions of this shard's warm replica.
	Failovers atomic.Int64
	// Redials counts reconnects to this shard's primary endpoint.
	Redials atomic.Int64

	// Objects gauges how many objects the shard currently owns: seeded at
	// build/spawn, maintained from acked inserts and deletes, and adjusted
	// wholesale when a split or merge moves a region.
	Objects atomic.Int64
	// QPSMilli gauges the shard's recent sub-query rate in thousandths of a
	// query per second, written by whoever watches the cluster (the elastic
	// rebalancer each tick). Zero when nothing is watching.
	QPSMilli atomic.Int64
	// Dead marks a retired slot (its region was merged away). The slot's
	// counters remain readable; a later split may revive the slot.
	Dead atomic.Bool
}

// NewClusterStats returns counters for a router over n shards.
func NewClusterStats(n int) *ClusterStats {
	s := &ClusterStats{}
	s.Grow(n)
	return s
}

// Shards returns the current shard slot count.
func (s *ClusterStats) Shards() int {
	if p := s.perShard.Load(); p != nil {
		return len(*p)
	}
	return 0
}

// Shard returns slot i's counter block, growing the table if the slot is
// new. Blocks are never replaced, so a retained pointer stays valid across
// topology changes.
func (s *ClusterStats) Shard(i int) *ShardCounters {
	p := s.perShard.Load()
	if p == nil || i >= len(*p) {
		s.Grow(i + 1)
		p = s.perShard.Load()
	}
	return (*p)[i]
}

// Grow extends the per-shard table to at least n slots. Concurrent growers
// race benignly: existing blocks are carried over by pointer, so whichever
// swap wins preserves every block already handed out.
func (s *ClusterStats) Grow(n int) {
	for {
		old := s.perShard.Load()
		if old != nil && len(*old) >= n {
			return
		}
		next := make([]*ShardCounters, n)
		if old != nil {
			copy(next, *old)
		}
		for i := range next {
			if next[i] == nil {
				next[i] = &ShardCounters{}
			}
		}
		if s.perShard.CompareAndSwap(old, &next) {
			return
		}
	}
}

// ClusterSnapshot is a point-in-time copy of ClusterStats for printing.
type ClusterSnapshot struct {
	Requests       int64
	SubQueries     int64
	SingleShard    int64
	Reissues       int64
	CrossPairTasks int64
	Flushes        int64
	Splits         int64
	Merges         int64
	HandoverNanos  int64
	PerShard       []ShardSnapshot
}

// ShardSnapshot is one shard's counter copy.
type ShardSnapshot struct {
	SubQueries int64
	Errors     int64
	Retries    int64
	Failovers  int64
	Redials    int64
	Objects    int64
	QPSMilli   int64
	Dead       bool
}

// Snapshot copies the live counters.
func (s *ClusterStats) Snapshot() ClusterSnapshot {
	snap := ClusterSnapshot{
		Requests:       s.Requests.Load(),
		SubQueries:     s.SubQueries.Load(),
		SingleShard:    s.SingleShard.Load(),
		Reissues:       s.Reissues.Load(),
		CrossPairTasks: s.CrossPairTasks.Load(),
		Flushes:        s.Flushes.Load(),
		Splits:         s.Splits.Load(),
		Merges:         s.Merges.Load(),
		HandoverNanos:  s.HandoverNanos.Load(),
	}
	if p := s.perShard.Load(); p != nil {
		snap.PerShard = make([]ShardSnapshot, len(*p))
		for i, sh := range *p {
			snap.PerShard[i] = ShardSnapshot{
				SubQueries: sh.SubQueries.Load(),
				Errors:     sh.Errors.Load(),
				Retries:    sh.Retries.Load(),
				Failovers:  sh.Failovers.Load(),
				Redials:    sh.Redials.Load(),
				Objects:    sh.Objects.Load(),
				QPSMilli:   sh.QPSMilli.Load(),
				Dead:       sh.Dead.Load(),
			}
		}
	}
	return snap
}

// FanOut returns the mean shard sub-queries per routed request.
func (s ClusterSnapshot) FanOut() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.SubQueries) / float64(s.Requests)
}

// String renders a one-line summary plus a per-shard breakdown.
func (s ClusterSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d reqs, %d subqueries (%.2f fan-out), %d single-shard, %d reissues, %d cross-pair scans, %d flushes",
		s.Requests, s.SubQueries, s.FanOut(), s.SingleShard, s.Reissues, s.CrossPairTasks, s.Flushes)
	if s.Splits > 0 || s.Merges > 0 {
		fmt.Fprintf(&b, ", %d splits/%d merges (%.1fms handover)",
			s.Splits, s.Merges, float64(s.HandoverNanos)/1e6)
	}
	b.WriteString("; shards:")
	for i, sh := range s.PerShard {
		if sh.Dead {
			fmt.Fprintf(&b, " %d=dead", i)
			continue
		}
		fmt.Fprintf(&b, " %d=%d", i, sh.SubQueries)
		if sh.Objects > 0 || sh.QPSMilli > 0 {
			fmt.Fprintf(&b, "{%dobj,%.1fqps}", sh.Objects, float64(sh.QPSMilli)/1e3)
		}
		if sh.Errors > 0 {
			fmt.Fprintf(&b, "(%derr)", sh.Errors)
		}
		if sh.Retries > 0 || sh.Failovers > 0 || sh.Redials > 0 {
			fmt.Fprintf(&b, "[%dretry/%dfo/%dredial]", sh.Retries, sh.Failovers, sh.Redials)
		}
	}
	return b.String()
}

// Retries sums sub-request retries across shards.
func (s ClusterSnapshot) Retries() int64 {
	return s.sum(func(sh ShardSnapshot) int64 { return sh.Retries })
}

// Failovers sums replica promotions across shards.
func (s ClusterSnapshot) Failovers() int64 {
	return s.sum(func(sh ShardSnapshot) int64 { return sh.Failovers })
}

// Redials sums primary reconnects across shards.
func (s ClusterSnapshot) Redials() int64 {
	return s.sum(func(sh ShardSnapshot) int64 { return sh.Redials })
}

// LiveShards counts slots that are not dead.
func (s ClusterSnapshot) LiveShards() int {
	var n int64
	for _, sh := range s.PerShard {
		if !sh.Dead {
			n++
		}
	}
	return int(n)
}

func (s ClusterSnapshot) sum(f func(ShardSnapshot) int64) int64 {
	var t int64
	for _, sh := range s.PerShard {
		t += f(sh)
	}
	return t
}
