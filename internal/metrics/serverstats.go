package metrics

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Server-side counters for the concurrent serving layer. Unlike Summary
// (which aggregates one simulated client's measurements single-threadedly),
// ServerStats is written from many goroutines at once, so every field is an
// atomic and the latency distribution is a fixed-bucket histogram of atomic
// counters.

// histBuckets is the number of exponential latency buckets: bucket i covers
// (2^(i-1), 2^i] microseconds, with bucket 0 covering (0, 1µs] and the last
// bucket absorbing everything slower (~67s and up).
const histBuckets = 27

// Histogram is a lock-free latency histogram with exponential bucket bounds.
// The zero value is ready to use; all methods are safe for concurrent use.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64 // nanoseconds
}

// bucketFor maps a duration to its bucket index: ceil(log2(microseconds)),
// with the microsecond count rounded up so a duration never lands in a
// bucket whose upper bound is below it (Quantile never reports past the
// crossing bucket's upper edge).
func bucketFor(d time.Duration) int {
	us := int64((d + time.Microsecond - 1) / time.Microsecond)
	if us <= 1 {
		return 0
	}
	b := bits.Len64(uint64(us - 1)) // ceil(log2(us)) for us >= 2
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) time.Duration {
	return time.Duration(1<<uint(i)) * time.Microsecond
}

// Observe records one measurement.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketFor(d)].Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Mean returns the average observed duration.
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observed durations
// by locating the bucket where the cumulative count crosses q and
// interpolating linearly inside it by rank position, assuming observations
// are spread uniformly across the bucket. The estimate never exceeds the
// crossing bucket's upper edge, so with base-2 buckets it stays within 2x
// of the true value — and two distributions whose quantile falls in the
// same bucket still report distinguishable values instead of both snapping
// to the shared upper edge.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			var lower time.Duration
			if i > 0 {
				lower = bucketUpper(i - 1)
			}
			frac := float64(rank-cum) / float64(c)
			return lower + time.Duration(frac*float64(bucketUpper(i)-lower))
		}
		cum += c
	}
	return bucketUpper(histBuckets - 1)
}

// ServerStats aggregates the serving-layer counters: connection churn,
// request volume, and request latency. All fields and methods are safe for
// concurrent use; the zero value is ready.
type ServerStats struct {
	// ActiveConns is the number of currently open client connections.
	ActiveConns atomic.Int64
	// TotalConns counts every accepted connection.
	TotalConns atomic.Int64
	// RejectedConns counts connections turned away at the MaxConns limit.
	RejectedConns atomic.Int64
	// EdgeConns is the number of currently open connections that announced
	// the edge-proxy handshake role (a subset of ActiveConns).
	EdgeConns atomic.Int64
	// Requests counts requests served (including ones that returned an
	// application error to the client).
	Requests atomic.Int64
	// Batches counts grouped pipeline drains handed to a batch handler
	// (each covers two or more of the requests counted above).
	Batches atomic.Int64
	// Errors counts requests whose handler returned an error.
	Errors atomic.Int64
	// BytesIn counts bytes read from client connections, measured at the
	// socket boundary (framing and handshake included, both protocols).
	// Together with BytesOut it is the real-traffic counterpart of the
	// wire.SizeModel byte accounting the experiments use.
	BytesIn atomic.Int64
	// BytesOut counts bytes written to client connections.
	BytesOut atomic.Int64
	// Latency is the request service-time distribution (handler execution,
	// excluding network transfer).
	Latency Histogram
}

// ServerSnapshot is a point-in-time copy of ServerStats, cheap to pass
// around and print.
type ServerSnapshot struct {
	ActiveConns   int64
	TotalConns    int64
	RejectedConns int64
	EdgeConns     int64
	Requests      int64
	Batches       int64
	Errors        int64
	BytesIn       int64
	BytesOut      int64
	MeanLatency   time.Duration
	P50           time.Duration
	P99           time.Duration
	P999          time.Duration
}

// Snapshot captures the current counter values and latency quantiles.
func (s *ServerStats) Snapshot() ServerSnapshot {
	return ServerSnapshot{
		ActiveConns:   s.ActiveConns.Load(),
		TotalConns:    s.TotalConns.Load(),
		RejectedConns: s.RejectedConns.Load(),
		EdgeConns:     s.EdgeConns.Load(),
		Requests:      s.Requests.Load(),
		Batches:       s.Batches.Load(),
		Errors:        s.Errors.Load(),
		BytesIn:       s.BytesIn.Load(),
		BytesOut:      s.BytesOut.Load(),
		MeanLatency:   s.Latency.Mean(),
		P50:           s.Latency.Quantile(0.50),
		P99:           s.Latency.Quantile(0.99),
		P999:          s.Latency.Quantile(0.999),
	}
}

// String renders the snapshot as a one-line status report.
func (s ServerSnapshot) String() string {
	return fmt.Sprintf("conns=%d/%d rejected=%d requests=%d batches=%d errors=%d in=%dB out=%dB latency mean=%v p50=%v p99=%v p999=%v",
		s.ActiveConns, s.TotalConns, s.RejectedConns, s.Requests, s.Batches, s.Errors,
		s.BytesIn, s.BytesOut,
		s.MeanLatency.Round(time.Microsecond), s.P50, s.P99, s.P999)
}
