package metrics

import (
	"math"
	"testing"
)

func TestSummaryAccumulation(t *testing.T) {
	var s Summary
	s.Add(100, 1000, 2000, 500, 300, 1.5, 2.0, false)
	s.Add(0, 0, 800, 800, 0, 0, 1.0, true)

	if s.Queries != 2 || s.LocalOnly != 1 {
		t.Fatalf("counts: %+v", s)
	}
	if s.MeanUplink() != 50 {
		t.Errorf("MeanUplink = %v", s.MeanUplink())
	}
	if s.MeanDownlink() != 500 {
		t.Errorf("MeanDownlink = %v", s.MeanDownlink())
	}
	if s.MeanResp() != 0.75 {
		t.Errorf("MeanResp = %v", s.MeanResp())
	}
	if s.MeanCPU() != 1.5 {
		t.Errorf("MeanCPU = %v", s.MeanCPU())
	}
	wantHitC := float64(1300) / 2800
	if math.Abs(s.HitC()-wantHitC) > 1e-12 {
		t.Errorf("HitC = %v, want %v", s.HitC(), wantHitC)
	}
	wantHitB := float64(1600) / 2800
	if math.Abs(s.HitB()-wantHitB) > 1e-12 {
		t.Errorf("HitB = %v, want %v", s.HitB(), wantHitB)
	}
	wantFMR := float64(300) / 1600
	if math.Abs(s.FMR()-wantFMR) > 1e-12 {
		t.Errorf("FMR = %v, want %v", s.FMR(), wantFMR)
	}
}

func TestEmptySummary(t *testing.T) {
	var s Summary
	if s.MeanUplink() != 0 || s.MeanResp() != 0 || s.HitC() != 0 || s.HitB() != 0 || s.FMR() != 0 || s.MeanCPU() != 0 {
		t.Error("empty summary must be all zeros")
	}
}

func TestMerge(t *testing.T) {
	var a, b Summary
	a.Add(10, 20, 30, 10, 5, 1, 1, false)
	b.Add(20, 40, 60, 20, 10, 2, 2, true)
	a.Merge(b)
	if a.Queries != 2 || a.UplinkBytes != 30 || a.FalseMissBytes != 15 || a.LocalOnly != 1 {
		t.Errorf("merge: %+v", a)
	}
}

func TestNormalize(t *testing.T) {
	scaled, max := Normalize([]float64{1, 4, 2})
	if max != 4 {
		t.Errorf("max = %v", max)
	}
	want := []float64{0.25, 1, 0.5}
	for i := range want {
		if scaled[i] != want[i] {
			t.Errorf("scaled[%d] = %v, want %v", i, scaled[i], want[i])
		}
	}
	if s, m := Normalize([]float64{0, 0}); m != 0 || s[0] != 0 {
		t.Error("zero normalize broken")
	}
}

func TestHitRatesBounded(t *testing.T) {
	var s Summary
	s.Add(1, 1, 100, 60, 40, 0.5, 0.1, false)
	if s.HitC() < 0 || s.HitC() > 1 || s.HitB() < 0 || s.HitB() > 1 || s.FMR() < 0 || s.FMR() > 1 {
		t.Error("rates out of [0,1]")
	}
	if s.HitB() < s.HitC() {
		t.Error("hitb must dominate hitc")
	}
}
