package metrics

import (
	"fmt"
	"sync/atomic"
)

// EdgeStats counts the edge cache tier's traffic: what it answered itself,
// what it forwarded upstream, and how its admission/eviction/invalidation
// machinery churned. Written from many proxy goroutines at once, so every
// field is an atomic; the zero value is ready.
type EdgeStats struct {
	// Hits counts queries answered from the edge cache without touching the
	// cluster.
	Hits atomic.Int64
	// Misses counts cacheable queries that had to be forwarded (no entry,
	// cold cell, stale client stamp, or a sync in progress).
	Misses atomic.Int64
	// Forwards counts every client request relayed upstream (cacheable
	// misses, non-cacheable queries, catalogs, updates).
	Forwards atomic.Int64
	// Updates counts relayed update batches (a subset of Forwards); each one
	// triggers an upstream sync before its ack is released.
	Updates atomic.Int64
	// Syncs counts upstream catalog round trips the edge issued for its own
	// invalidation subscription.
	Syncs atomic.Int64
	// Admissions counts responses materialized into the cache.
	Admissions atomic.Int64
	// Evictions counts entries dropped by the byte budget.
	Evictions atomic.Int64
	// Invalidations counts entries dropped because a sync delivered an
	// invalidation hitting their dependency set.
	Invalidations atomic.Int64
	// Flushes counts full cache drops (upstream FlushAll).
	Flushes atomic.Int64
	// Bytes and Entries track the current cache footprint (SizeModel bytes).
	Bytes   atomic.Int64
	Entries atomic.Int64
}

// EdgeSnapshot is a point-in-time copy of EdgeStats.
type EdgeSnapshot struct {
	Hits          int64
	Misses        int64
	Forwards      int64
	Updates       int64
	Syncs         int64
	Admissions    int64
	Evictions     int64
	Invalidations int64
	Flushes       int64
	Bytes         int64
	Entries       int64
}

// Snapshot captures the current counter values.
func (s *EdgeStats) Snapshot() EdgeSnapshot {
	return EdgeSnapshot{
		Hits:          s.Hits.Load(),
		Misses:        s.Misses.Load(),
		Forwards:      s.Forwards.Load(),
		Updates:       s.Updates.Load(),
		Syncs:         s.Syncs.Load(),
		Admissions:    s.Admissions.Load(),
		Evictions:     s.Evictions.Load(),
		Invalidations: s.Invalidations.Load(),
		Flushes:       s.Flushes.Load(),
		Bytes:         s.Bytes.Load(),
		Entries:       s.Entries.Load(),
	}
}

// HitRate returns the fraction of cacheable queries answered at the edge.
func (s EdgeSnapshot) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// String renders the snapshot as a one-line status report.
func (s EdgeSnapshot) String() string {
	return fmt.Sprintf("edge: hits=%d misses=%d (%.1f%%) forwards=%d updates=%d syncs=%d admitted=%d evicted=%d invalidated=%d flushes=%d cache=%dB/%d entries",
		s.Hits, s.Misses, 100*s.HitRate(), s.Forwards, s.Updates, s.Syncs,
		s.Admissions, s.Evictions, s.Invalidations, s.Flushes, s.Bytes, s.Entries)
}
