// Package metrics accumulates the per-query measurements of Section 6.1:
// query-wise uplink and downlink bytes, response time, client CPU cost, and
// the overall cache hit rate (hitc), byte hit rate (hitb) and false miss
// rate (fmr).
package metrics

// Summary aggregates query reports.
type Summary struct {
	Queries   int
	LocalOnly int

	UplinkBytes   int64
	DownlinkBytes int64

	ResultBytes    int64
	SavedBytes     int64
	FalseMissBytes int64

	RespSum float64 // seconds
	CPUSum  float64 // milliseconds
}

// Add records one query's measurements.
func (s *Summary) Add(uplink, downlink, result, saved, falseMiss int, resp, cpuMS float64, local bool) {
	s.Queries++
	if local {
		s.LocalOnly++
	}
	s.UplinkBytes += int64(uplink)
	s.DownlinkBytes += int64(downlink)
	s.ResultBytes += int64(result)
	s.SavedBytes += int64(saved)
	s.FalseMissBytes += int64(falseMiss)
	s.RespSum += resp
	s.CPUSum += cpuMS
}

// Merge folds another summary into s.
func (s *Summary) Merge(o Summary) {
	s.Queries += o.Queries
	s.LocalOnly += o.LocalOnly
	s.UplinkBytes += o.UplinkBytes
	s.DownlinkBytes += o.DownlinkBytes
	s.ResultBytes += o.ResultBytes
	s.SavedBytes += o.SavedBytes
	s.FalseMissBytes += o.FalseMissBytes
	s.RespSum += o.RespSum
	s.CPUSum += o.CPUSum
}

func (s *Summary) perQuery(v int64) float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(v) / float64(s.Queries)
}

// MeanUplink returns average uplink bytes per query.
func (s *Summary) MeanUplink() float64 { return s.perQuery(s.UplinkBytes) }

// MeanDownlink returns average downlink bytes per query.
func (s *Summary) MeanDownlink() float64 { return s.perQuery(s.DownlinkBytes) }

// MeanResp returns average response time per query in seconds.
func (s *Summary) MeanResp() float64 {
	if s.Queries == 0 {
		return 0
	}
	return s.RespSum / float64(s.Queries)
}

// MeanCPU returns average client CPU per query in milliseconds.
func (s *Summary) MeanCPU() float64 {
	if s.Queries == 0 {
		return 0
	}
	return s.CPUSum / float64(s.Queries)
}

// HitC returns the overall cache hit rate |Rs|/|R| (byte-weighted).
func (s *Summary) HitC() float64 {
	if s.ResultBytes == 0 {
		return 0
	}
	return float64(s.SavedBytes) / float64(s.ResultBytes)
}

// HitB returns the overall byte hit rate |R∩C|/|R|.
func (s *Summary) HitB() float64 {
	if s.ResultBytes == 0 {
		return 0
	}
	return float64(s.SavedBytes+s.FalseMissBytes) / float64(s.ResultBytes)
}

// FMR returns the overall false miss rate P(o not in Rs | o in R∩C).
func (s *Summary) FMR() float64 {
	denom := s.SavedBytes + s.FalseMissBytes
	if denom == 0 {
		return 0
	}
	return float64(s.FalseMissBytes) / float64(denom)
}

// Normalize maps values to [0,1] by their maximum (the presentation of
// Figure 6). It returns the scaled values and the maximum.
func Normalize(values []float64) (scaled []float64, max float64) {
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	scaled = make([]float64, len(values))
	if max == 0 {
		return scaled, 0
	}
	for i, v := range values {
		scaled[i] = v / max
	}
	return scaled, max
}
