package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestClusterStatsSnapshot(t *testing.T) {
	s := NewClusterStats(3)
	s.Requests.Add(4)
	s.SubQueries.Add(7)
	s.SingleShard.Add(2)
	s.Reissues.Add(1)
	s.Shard(0).SubQueries.Add(5)
	s.Shard(2).SubQueries.Add(2)
	s.Shard(2).Errors.Add(1)

	snap := s.Snapshot()
	if snap.Requests != 4 || snap.SubQueries != 7 || snap.SingleShard != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if got := snap.FanOut(); got != 7.0/4.0 {
		t.Fatalf("FanOut = %v", got)
	}
	if len(snap.PerShard) != 3 || snap.PerShard[0].SubQueries != 5 || snap.PerShard[2].Errors != 1 {
		t.Fatalf("per-shard = %+v", snap.PerShard)
	}
	str := snap.String()
	for _, want := range []string{"4 reqs", "7 subqueries", "1 reissues", "2=2(1err)"} {
		if !strings.Contains(str, want) {
			t.Fatalf("String() = %q missing %q", str, want)
		}
	}
}

func TestClusterStatsZero(t *testing.T) {
	snap := NewClusterStats(1).Snapshot()
	if snap.FanOut() != 0 {
		t.Fatalf("zero-request FanOut = %v", snap.FanOut())
	}
}

// TestClusterStatsConcurrent hammers the counters from many goroutines; run
// under -race this pins the all-atomic contract.
func TestClusterStatsConcurrent(t *testing.T) {
	s := NewClusterStats(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Requests.Add(1)
				s.Shard(g % 4).SubQueries.Add(1)
				if i%100 == 0 {
					// Elastic splits grow the table mid-flight; counts
					// accumulated through retained *ShardCounters must survive.
					s.Grow(4 + g)
				}
			}
		}(g)
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Requests != 8000 {
		t.Fatalf("Requests = %d", snap.Requests)
	}
	var sub int64
	for _, sh := range snap.PerShard {
		sub += sh.SubQueries
	}
	if sub != 8000 {
		t.Fatalf("per-shard sum = %d", sub)
	}
}
