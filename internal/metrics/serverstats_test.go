package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{1500 * time.Nanosecond, 1}, // rounds up: 2µs bucket covers it
		{2 * time.Microsecond, 1},
		{2900 * time.Nanosecond, 2}, // rounds up to 3µs, bucket upper 4µs
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},
		{time.Second, 20},
	}
	for _, c := range cases {
		if got := bucketFor(c.d); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Durations beyond the last bucket bound must clamp, not panic.
	if got := bucketFor(500 * time.Hour); got != histBuckets-1 {
		t.Errorf("huge duration landed in bucket %d", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 99 fast observations, 1 slow one.
	for i := 0; i < 99; i++ {
		h.Observe(10 * time.Microsecond)
	}
	h.Observe(100 * time.Millisecond)

	if n := h.Count(); n != 100 {
		t.Fatalf("count = %d", n)
	}
	if p50 := h.Quantile(0.50); p50 > 16*time.Microsecond {
		t.Errorf("p50 = %v, want <= 16µs bucket bound", p50)
	}
	// p99 rank is 99, still within the fast bucket; p100 must see the tail.
	if p100 := h.Quantile(1.0); p100 < 100*time.Millisecond {
		t.Errorf("p100 = %v, want >= 100ms", p100)
	}
	if mean := h.Mean(); mean < 500*time.Microsecond || mean > 2*time.Millisecond {
		t.Errorf("mean = %v, want ~1ms", mean)
	}
}

func TestHistogramQuantileInterpolates(t *testing.T) {
	// Two distributions whose p99 lands in the same base-2 bucket must
	// still report distinguishable values: the quantile interpolates by
	// rank position inside the crossing bucket instead of snapping to its
	// shared upper edge.
	var all, mixed Histogram
	for i := 0; i < 100; i++ {
		all.Observe(10 * time.Microsecond) // bucket (8µs, 16µs]
	}
	for i := 0; i < 10; i++ {
		mixed.Observe(time.Microsecond) // bucket (0, 1µs]
	}
	for i := 0; i < 90; i++ {
		mixed.Observe(10 * time.Microsecond)
	}
	// mixed's rank-50 sits at position 40/90 of the slow bucket, all's at
	// 50/100 — the faster distribution must report the smaller p50.
	pm, pa := mixed.Quantile(0.50), all.Quantile(0.50)
	if pm >= pa {
		t.Errorf("p50 mixed=%v all=%v, want mixed < all", pm, pa)
	}
	for _, h := range []*Histogram{&all, &mixed} {
		if q := h.Quantile(0.50); q <= 8*time.Microsecond || q > 16*time.Microsecond {
			t.Errorf("p50 = %v, want within the crossing bucket (8µs, 16µs]", q)
		}
	}
	// Monotone in q even inside one bucket.
	if p50, p99 := all.Quantile(0.50), all.Quantile(0.99); p50 > p99 {
		t.Errorf("quantiles out of order within a bucket: p50=%v p99=%v", p50, p99)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.99); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
	if m := h.Mean(); m != 0 {
		t.Errorf("empty mean = %v", m)
	}
}

func TestServerStatsConcurrent(t *testing.T) {
	var st ServerStats
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				st.Requests.Add(1)
				st.BytesIn.Add(10)
				st.BytesOut.Add(100)
				st.Latency.Observe(time.Duration(i%50) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	snap := st.Snapshot()
	if snap.Requests != goroutines*per {
		t.Errorf("requests = %d, want %d", snap.Requests, goroutines*per)
	}
	if got := st.Latency.Count(); got != goroutines*per {
		t.Errorf("latency count = %d, want %d", got, goroutines*per)
	}
	if snap.BytesIn != goroutines*per*10 || snap.BytesOut != goroutines*per*100 {
		t.Errorf("byte counters = %d/%d, want %d/%d",
			snap.BytesIn, snap.BytesOut, goroutines*per*10, goroutines*per*100)
	}
	if snap.P50 == 0 || snap.P99 < snap.P50 {
		t.Errorf("quantiles inconsistent: p50=%v p99=%v", snap.P50, snap.P99)
	}
	if snap.String() == "" {
		t.Error("empty String()")
	}
}
