package mobility

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestRandomWaypointStaysInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m := NewRandomWaypoint(Config{Speed: 0.01, PauseMean: 5}, rng)
	bounds := geom.R(0, 0, 1, 1)
	for i := 0; i < 5000; i++ {
		p := m.Advance(7)
		if !bounds.ContainsPoint(p) {
			t.Fatalf("step %d: position %v out of bounds", i, p)
		}
	}
}

func TestDirectedStaysInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := NewDirected(Config{Speed: 0.01, PauseMean: 1}, rng)
	bounds := geom.R(0, 0, 1, 1)
	for i := 0; i < 5000; i++ {
		p := m.Advance(11)
		if !bounds.ContainsPoint(p) {
			t.Fatalf("step %d: position %v out of bounds", i, p)
		}
	}
}

func TestSpeedBoundsDisplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := NewRandomWaypoint(Config{Speed: 1e-3, PauseMean: 0, SpeedJitter: 0.5}, rng)
	for i := 0; i < 2000; i++ {
		before := m.Position()
		after := m.Advance(10)
		// Max displacement in 10s at top speed 1.5e-3 units/s.
		if d := geom.Dist(before, after); d > 1.5e-2+1e-9 {
			t.Fatalf("step %d: moved %v in 10s, exceeds max speed", i, d)
		}
	}
}

func TestPauseHoldsStill(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m := NewRandomWaypoint(Config{Speed: 1e-6, PauseMean: 1e9}, rng)
	// Burn in until the walker reaches a waypoint... with tiny speed it will
	// not reach one, so instead verify that zero-dt does not move.
	p1 := m.Position()
	p2 := m.Advance(0)
	if p1 != p2 {
		t.Error("Advance(0) moved the client")
	}
}

// DIR should cover more net distance than RAN over the same time: headings
// persist instead of cancelling out.
func TestDirectedTravelsFartherNet(t *testing.T) {
	netDisplacement := func(m Model, steps int) float64 {
		start := m.Position()
		total := 0.0
		for i := 0; i < steps; i++ {
			p := m.Advance(50)
			total += geom.Dist(start, p)
			start = p
		}
		_ = total
		return geom.Dist(start, m.Position()) // zero; use accumulated path chord below
	}
	_ = netDisplacement

	ranChords, dirChords := 0.0, 0.0
	for trial := 0; trial < 20; trial++ {
		rng1 := rand.New(rand.NewSource(int64(100 + trial)))
		rng2 := rand.New(rand.NewSource(int64(100 + trial)))
		ran := NewRandomWaypoint(Config{Speed: 1e-3, PauseMean: 0}, rng1)
		dir := NewDirected(Config{Speed: 1e-3, PauseMean: 0}, rng2)
		rs, ds := ran.Position(), dir.Position()
		for i := 0; i < 40; i++ {
			ran.Advance(25)
			dir.Advance(25)
		}
		ranChords += geom.Dist(rs, ran.Position())
		dirChords += geom.Dist(ds, dir.Position())
	}
	if dirChords <= ranChords {
		t.Errorf("directed net displacement %.4f not larger than random waypoint %.4f", dirChords, ranChords)
	}
}

func TestAdvanceContinuity(t *testing.T) {
	// Advancing 100x1s must land near advancing 1x100s with the same rng
	// only if no random events intervene; we instead check the path has no
	// teleports: per-second displacement bounded by max speed.
	rng := rand.New(rand.NewSource(45))
	m := NewDirected(Config{Speed: 2e-3, PauseMean: 2}, rng)
	prev := m.Position()
	for i := 0; i < 3000; i++ {
		cur := m.Advance(1)
		if geom.Dist(prev, cur) > 2e-3*1.5+1e-9 {
			t.Fatalf("step %d: teleport from %v to %v", i, prev, cur)
		}
		prev = cur
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.normalized()
	if c.Speed != 1e-4 || c.MaxTurn <= 0 || !c.Bounds.Valid() {
		t.Errorf("defaults not applied: %+v", c)
	}
	if math.Abs(c.SpeedJitter-0.5) > 1e-12 {
		t.Errorf("jitter default = %v", c.SpeedJitter)
	}
}
