// Package mobility implements the client movement models of Section 6.1:
// random waypoint (RAN) and directed movement (DIR). Both move a client
// through the unit square at the paper's spd parameter; DIR roughly
// preserves its heading between legs, which models on-purpose movement and
// exhibits less locality than RAN's back-and-forth wandering.
package mobility

import (
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Model advances a client position through simulated time.
type Model interface {
	// Advance moves the client dt seconds forward and returns the new
	// position.
	Advance(dt float64) geom.Point
	// Position returns the current position without moving.
	Position() geom.Point
}

// Config parameterizes the movement models.
type Config struct {
	// Speed is the paper's spd parameter in units per second (Table 6.1
	// uses 0.0001 in the unit square). Individual legs draw speeds
	// uniformly from [Speed*(1-SpeedJitter), Speed*(1+SpeedJitter)].
	Speed       float64
	SpeedJitter float64
	// PauseMean is the mean of the exponential pause at each waypoint.
	PauseMean float64
	// Bounds is the movement area; default unit square.
	Bounds geom.Rect
	// MaxTurn bounds the heading change between consecutive DIR legs
	// (radians, default pi/6).
	MaxTurn float64
	// LegMin/LegMax bound DIR leg lengths (default 0.05..0.25).
	LegMin, LegMax float64
}

func (c Config) normalized() Config {
	if c.Speed <= 0 {
		c.Speed = 1e-4
	}
	if c.SpeedJitter <= 0 || c.SpeedJitter >= 1 {
		c.SpeedJitter = 0.5
	}
	if c.PauseMean < 0 {
		c.PauseMean = 0
	}
	if !c.Bounds.Valid() || c.Bounds.Area() == 0 {
		c.Bounds = geom.R(0, 0, 1, 1)
	}
	if c.MaxTurn <= 0 {
		c.MaxTurn = math.Pi / 6
	}
	if c.LegMin <= 0 {
		c.LegMin = 0.05
	}
	if c.LegMax <= c.LegMin {
		c.LegMax = c.LegMin + 0.2
	}
	return c
}

// waypointWalker is the shared leg/pause engine; the next-destination rule
// is what distinguishes RAN from DIR.
type waypointWalker struct {
	cfg  Config
	rng  *rand.Rand
	pos  geom.Point
	dest geom.Point
	// speed of the current leg; 0 while paused
	speed     float64
	pauseLeft float64
	nextDest  func() geom.Point
}

// Position implements Model.
func (w *waypointWalker) Position() geom.Point { return w.pos }

// Advance simulates dt seconds of movement, possibly spanning several legs
// and pauses.
func (w *waypointWalker) Advance(dt float64) geom.Point {
	for dt > 0 {
		if w.pauseLeft > 0 {
			if w.pauseLeft >= dt {
				w.pauseLeft -= dt
				return w.pos
			}
			dt -= w.pauseLeft
			w.pauseLeft = 0
			w.startLeg()
			continue
		}
		dist := geom.Dist(w.pos, w.dest)
		if dist == 0 {
			w.arrive()
			continue
		}
		travel := w.speed * dt
		if travel < dist {
			frac := travel / dist
			w.pos = geom.Pt(w.pos.X+(w.dest.X-w.pos.X)*frac, w.pos.Y+(w.dest.Y-w.pos.Y)*frac)
			return w.pos
		}
		// Reach the waypoint and spend the remaining time after it.
		dt -= dist / w.speed
		w.pos = w.dest
		w.arrive()
	}
	return w.pos
}

func (w *waypointWalker) arrive() {
	if w.cfg.PauseMean > 0 {
		w.pauseLeft = w.rng.ExpFloat64() * w.cfg.PauseMean
	}
	if w.pauseLeft == 0 {
		w.startLeg()
	}
}

func (w *waypointWalker) startLeg() {
	w.dest = w.nextDest()
	j := w.cfg.SpeedJitter
	w.speed = w.cfg.Speed * (1 - j + 2*j*w.rng.Float64())
}

// NewRandomWaypoint builds the RAN model: every leg targets an independent
// uniform destination.
func NewRandomWaypoint(cfg Config, rng *rand.Rand) Model {
	cfg = cfg.normalized()
	w := &waypointWalker{cfg: cfg, rng: rng}
	w.pos = randomIn(cfg.Bounds, rng)
	w.nextDest = func() geom.Point { return randomIn(cfg.Bounds, rng) }
	w.startLeg()
	return w
}

// directed implements DIR: the next leg's heading deviates from the current
// one by at most MaxTurn, bouncing off the area boundary.
type directed struct {
	*waypointWalker
	heading float64
}

// NewDirected builds the DIR model.
func NewDirected(cfg Config, rng *rand.Rand) Model {
	cfg = cfg.normalized()
	d := &directed{waypointWalker: &waypointWalker{cfg: cfg, rng: rng}}
	d.pos = randomIn(cfg.Bounds, rng)
	d.heading = rng.Float64() * 2 * math.Pi
	d.nextDest = d.next
	d.startLeg()
	return d
}

func (d *directed) next() geom.Point {
	cfg := d.cfg
	for attempt := 0; attempt < 32; attempt++ {
		turn := (d.rng.Float64()*2 - 1) * cfg.MaxTurn
		heading := d.heading + turn
		leg := cfg.LegMin + d.rng.Float64()*(cfg.LegMax-cfg.LegMin)
		dest := geom.Pt(d.pos.X+leg*math.Cos(heading), d.pos.Y+leg*math.Sin(heading))
		if cfg.Bounds.ContainsPoint(dest) {
			d.heading = heading
			return dest
		}
		// Bounce: turn away from the wall and retry.
		d.heading += math.Pi / 2 * (d.rng.Float64() + 0.5)
	}
	// Fallback: a uniform destination (cornered client).
	dest := randomIn(cfg.Bounds, d.rng)
	d.heading = math.Atan2(dest.Y-d.pos.Y, dest.X-d.pos.X)
	return dest
}

func randomIn(b geom.Rect, rng *rand.Rand) geom.Point {
	return geom.Pt(b.MinX+rng.Float64()*b.Width(), b.MinY+rng.Float64()*b.Height())
}
