package pq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPushPopOrdered(t *testing.T) {
	var q Queue[string]
	q.Push(3, "c")
	q.Push(1, "a")
	q.Push(2, "b")
	want := []string{"a", "b", "c"}
	for i, w := range want {
		k, v := q.Pop()
		if v != w {
			t.Errorf("pop %d = %q (key %v), want %q", i, v, k, w)
		}
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d after draining", q.Len())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 10; i++ {
		q.Push(1.0, i)
	}
	for i := 0; i < 10; i++ {
		if _, v := q.Pop(); v != i {
			t.Fatalf("equal-key pop order broken: got %d, want %d", v, i)
		}
	}
}

func TestMinPeek(t *testing.T) {
	var q Queue[int]
	q.Push(5, 50)
	q.Push(2, 20)
	if k, v := q.Min(); k != 2 || v != 20 {
		t.Errorf("Min = %v,%v", k, v)
	}
	if q.Len() != 2 {
		t.Error("Min must not remove")
	}
}

func TestResetAndItems(t *testing.T) {
	var q Queue[int]
	q.Push(1, 1)
	q.Push(2, 2)
	if got := q.Items(); len(got) != 2 {
		t.Errorf("Items len = %d", len(got))
	}
	q.Reset()
	if q.Len() != 0 {
		t.Error("Reset did not empty queue")
	}
	q.Push(3, 3)
	if _, v := q.Pop(); v != 3 {
		t.Error("queue unusable after Reset")
	}
}

func TestPopAll(t *testing.T) {
	var q Queue[int]
	keys := []float64{9, 1, 5, 3, 7}
	for i, k := range keys {
		q.Push(k, i)
	}
	got := q.PopAll()
	want := []int{1, 3, 2, 4, 0} // indices sorted by their keys
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PopAll = %v, want %v", got, want)
		}
	}
}

// Property: popping yields keys in nondecreasing order, matching sort.
func TestHeapOrderProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(n uint8) bool {
		var q Queue[float64]
		keys := make([]float64, int(n)%64+1)
		for i := range keys {
			keys[i] = float64(r.Intn(16)) // duplicates likely
			q.Push(keys[i], keys[i])
		}
		sort.Float64s(keys)
		for _, want := range keys {
			k, v := q.Pop()
			if k != want || v != want {
				return false
			}
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: interleaved push/pop keeps the min invariant.
func TestInterleavedProperty(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	f := func(seed uint16) bool {
		var q Queue[float64]
		var model []float64
		for op := 0; op < 100; op++ {
			if q.Len() == 0 || r.Intn(2) == 0 {
				k := r.Float64()
				q.Push(k, k)
				model = append(model, k)
				sort.Float64s(model)
			} else {
				k, _ := q.Pop()
				if k != model[0] {
					return false
				}
				model = model[1:]
			}
		}
		return q.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
