package pq

import "testing"

// TestGrowAmortized pins the geometric-growth contract: a loop of single-item
// Grow calls must reallocate O(log n) times, not once per call (the old
// behavior allocated exactly len+n each time, so every call reallocated).
func TestGrowAmortized(t *testing.T) {
	const n = 1024
	allocs := testing.AllocsPerRun(10, func() {
		var q Queue[int]
		for j := 0; j < n; j++ {
			q.Grow(1)
			q.Push(float64(n-j), j)
		}
	})
	// log2(1024) = 10 doublings from the 8-item floor; leave headroom.
	if allocs > 16 {
		t.Fatalf("1024 incremental Grow(1) calls cost %.0f allocations, want O(log n)", allocs)
	}
}

func TestGrowToExact(t *testing.T) {
	var q Queue[int]
	q.GrowTo(100)
	if cap(q.items) < 100 {
		t.Fatalf("GrowTo(100) left capacity %d", cap(q.items))
	}
	q.Push(1, 1)
	before := cap(q.items)
	q.GrowTo(50) // already satisfied: must not shrink or reallocate
	if cap(q.items) != before {
		t.Fatalf("GrowTo with satisfied capacity reallocated: %d -> %d", before, cap(q.items))
	}
	if q.Len() != 1 {
		t.Fatalf("GrowTo disturbed contents: len=%d", q.Len())
	}
}

// BenchmarkGrowIncremental and BenchmarkGrowTo bracket the amortization win:
// before the fix, the incremental variant reallocated the heap on every
// iteration; now both run in a handful of allocations per queue.
func BenchmarkGrowIncremental(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var q Queue[int]
		for j := 0; j < 1024; j++ {
			q.Grow(1)
			q.Push(float64(1024-j), j)
		}
	}
}

func BenchmarkGrowTo(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var q Queue[int]
		q.GrowTo(1024)
		for j := 0; j < 1024; j++ {
			q.Push(float64(1024-j), j)
		}
	}
}
