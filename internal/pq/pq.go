// Package pq implements the small, allocation-friendly priority queues used
// by best-first spatial query processing and by cache replacement.
//
// The queue is a binary min-heap keyed by float64 with deterministic FIFO
// tie-breaking: items pushed earlier pop first among equal keys. Determinism
// matters because experiment runs must be reproducible bit-for-bit and the
// kNN handover protocol serializes queue contents.
package pq

// Queue is a min-heap of T keyed by float64. The zero value is ready to use.
type Queue[T any] struct {
	items []item[T]
	seq   uint64
}

type item[T any] struct {
	key   float64
	seq   uint64
	value T
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push inserts value with the given key.
func (q *Queue[T]) Push(key float64, value T) {
	q.seq++
	q.items = append(q.items, item[T]{key, q.seq, value})
	q.up(len(q.items) - 1)
}

// Min returns the smallest key and its value without removing it.
// It must not be called on an empty queue.
func (q *Queue[T]) Min() (float64, T) {
	return q.items[0].key, q.items[0].value
}

// Pop removes and returns the value with the smallest key.
// It must not be called on an empty queue.
func (q *Queue[T]) Pop() (float64, T) {
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	var zero item[T]
	q.items[last] = zero
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	return top.key, top.value
}

// Reset empties the queue, retaining its backing storage.
func (q *Queue[T]) Reset() {
	clear(q.items)
	q.items = q.items[:0]
}

// Grow ensures capacity for at least n items beyond the current length,
// saving the incremental reallocations of a growing heap when the caller
// can estimate the working-set size up front. Capacity grows geometrically
// (at least doubling), so a loop of small Grow calls costs O(log total)
// reallocations, not one per call.
func (q *Queue[T]) Grow(n int) {
	q.GrowTo(len(q.items) + n)
}

// GrowTo ensures capacity for at least total items, growing geometrically
// like Grow.
func (q *Queue[T]) GrowTo(total int) {
	if cap(q.items) >= total {
		return
	}
	newCap := 2 * cap(q.items)
	if newCap < total {
		newCap = total
	}
	if newCap < 8 {
		newCap = 8
	}
	items := make([]item[T], len(q.items), newCap)
	copy(items, q.items)
	q.items = items
}

// Items returns the queued values in heap order (not sorted). The slice is
// freshly allocated; mutating it does not affect the queue.
func (q *Queue[T]) Items() []T {
	out := make([]T, len(q.items))
	for i, it := range q.items {
		out[i] = it.value
	}
	return out
}

// PopAll drains the queue in ascending key order.
func (q *Queue[T]) PopAll() []T {
	out := make([]T, 0, len(q.items))
	for q.Len() > 0 {
		_, v := q.Pop()
		out = append(out, v)
	}
	return out
}

func (q *Queue[T]) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}
