package query

import (
	"fmt"

	"repro/internal/bpt"
	"repro/internal/geom"
	"repro/internal/rtree"
)

// RefKind discriminates what a Ref points at.
type RefKind uint8

const (
	// RefNode references an R-tree node (the paper's non-leaf entry).
	RefNode RefKind = iota + 1
	// RefSuper references a super entry (n, code) of a node's binary
	// partition tree — a coarse stand-in for the entries beneath it.
	RefSuper
	// RefObject references a data object (the paper's leaf entry).
	RefObject
)

// Ref is one explorable element: an entry of the (possibly partial) index.
type Ref struct {
	Kind RefKind
	MBR  geom.Rect
	Node rtree.NodeID   // RefNode, RefSuper
	Code bpt.Code       // RefSuper
	Obj  rtree.ObjectID // RefObject

	// hint is a provider-local packed-position hint (rtree.Packed index + 1,
	// zero when absent). It is an execution-side shortcut only: never
	// serialized, excluded from Same/Less, and meaningful only to the
	// provider that created the ref within the same request.
	hint uint32
}

// SuperRefHinted is SuperRef carrying a packed-position hint.
func SuperRefHinted(id rtree.NodeID, code bpt.Code, mbr geom.Rect, hint uint32) Ref {
	return Ref{Kind: RefSuper, Node: id, Code: code, MBR: mbr, hint: hint}
}

// PosHint returns the packed-position hint (zero when absent).
func (r Ref) PosHint() uint32 { return r.hint }

// NodeRef builds a node reference.
func NodeRef(id rtree.NodeID, mbr geom.Rect) Ref {
	return Ref{Kind: RefNode, Node: id, MBR: mbr}
}

// SuperRef builds a super-entry reference.
func SuperRef(id rtree.NodeID, code bpt.Code, mbr geom.Rect) Ref {
	return Ref{Kind: RefSuper, Node: id, Code: code, MBR: mbr}
}

// ObjectRef builds an object reference.
func ObjectRef(id rtree.ObjectID, mbr geom.Rect) Ref {
	return Ref{Kind: RefObject, Obj: id, MBR: mbr}
}

// IsObject reports whether the ref is a leaf entry in the paper's sense.
func (r Ref) IsObject() bool { return r.Kind == RefObject }

// FromEntry converts an R-tree entry into a Ref.
func FromEntry(e rtree.Entry) Ref {
	if e.IsLeafEntry() {
		return ObjectRef(e.Obj, e.MBR)
	}
	return NodeRef(e.Child, e.MBR)
}

// Less imposes a deterministic total order on refs, used to canonicalize
// unordered self-join pairs.
func (r Ref) Less(s Ref) bool {
	if r.Kind != s.Kind {
		return r.Kind < s.Kind
	}
	if r.Node != s.Node {
		return r.Node < s.Node
	}
	if r.Code != s.Code {
		return r.Code < s.Code
	}
	return r.Obj < s.Obj
}

// Same reports identity of the referenced target.
func (r Ref) Same(s Ref) bool {
	return r.Kind == s.Kind && r.Node == s.Node && r.Code == s.Code && r.Obj == s.Obj
}

// String implements fmt.Stringer.
func (r Ref) String() string {
	switch r.Kind {
	case RefNode:
		return fmt.Sprintf("node:%d", r.Node)
	case RefSuper:
		return fmt.Sprintf("super:%d/%s", r.Node, r.Code)
	case RefObject:
		return fmt.Sprintf("obj:%d", r.Obj)
	default:
		return "ref:?"
	}
}

// Elem is a priority-queue element: a single ref, or a pair for join queries.
type Elem struct {
	A, B Ref
	Pair bool
}

// Single wraps one ref.
func Single(r Ref) Elem { return Elem{A: r} }

// PairOf wraps an unordered pair in canonical order.
func PairOf(a, b Ref) Elem {
	if b.Less(a) {
		a, b = b, a
	}
	return Elem{A: a, B: b, Pair: true}
}

// IsObjectElem reports whether the element is fully resolved to objects: a
// single object ref, or an object-object pair (the paper's "leaf entry").
func (e Elem) IsObjectElem() bool {
	if e.Pair {
		return e.A.IsObject() && e.B.IsObject()
	}
	return e.A.IsObject()
}

// String implements fmt.Stringer.
func (e Elem) String() string {
	if e.Pair {
		return fmt.Sprintf("<%s,%s>", e.A, e.B)
	}
	return e.A.String()
}

// QueuedElem is an element together with its priority and the reason it could
// not be processed locally. Remainder queries ship slices of QueuedElem.
type QueuedElem struct {
	Key  float64
	Elem Elem

	// Deferred marks a locally available object element that could not be
	// confirmed as a result because a missing non-leaf element preceded it
	// in H (the kNN ordering rule of Section 3.3). The server re-confirms
	// it without resending the payload.
	Deferred bool
}
