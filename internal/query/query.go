// Package query defines the spatial query model and the generic best-first
// processing engine of Section 3.3 of the paper.
//
// Any spatial query on an R-tree is processed by descending the tree with a
// priority queue H of to-be-explored elements (entries, or entry pairs for
// joins). The same engine runs on the server against the full index and on
// the mobile client against a partial, proactively cached index: on the
// client, elements whose target pages or object payloads are not cached
// become "missing entries" that stay in H, and when processing can no longer
// make progress the remaining H is handed to the server as the remainder
// query Qr = {Q, H} (the execution-state handover that makes cache reuse
// work across query types).
package query

import (
	"fmt"

	"repro/internal/geom"
)

// Kind enumerates the supported query types.
type Kind uint8

const (
	// Range returns all objects whose MBR intersects Window.
	Range Kind = iota + 1
	// KNN returns the K objects nearest to Center (by MBR MINDIST).
	KNN
	// Join is a distance self-join scoped to JoinWindow: all object pairs
	// inside the window whose MBR distance is at most Dist.
	Join
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Range:
		return "range"
	case KNN:
		return "knn"
	case Join:
		return "join"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Query describes one spatial query. Only the fields relevant to Kind are
// meaningful.
type Query struct {
	Kind Kind

	// Window is the range-query window.
	Window geom.Rect

	// Center and K parameterize kNN queries.
	Center geom.Point
	K      int

	// JoinWindow scopes the self-join to the client's neighborhood and Dist
	// is the distance threshold.
	JoinWindow geom.Rect
	Dist       float64
}

// NewRange builds a range query.
func NewRange(window geom.Rect) Query { return Query{Kind: Range, Window: window} }

// NewKNN builds a k-nearest-neighbor query.
func NewKNN(center geom.Point, k int) Query { return Query{Kind: KNN, Center: center, K: k} }

// NewJoin builds a windowed distance self-join.
func NewJoin(window geom.Rect, dist float64) Query {
	return Query{Kind: Join, JoinWindow: window, Dist: dist}
}

// accepts reports whether a single element with the given MBR can contain or
// be a result, and is therefore worth exploring.
func (q Query) accepts(mbr geom.Rect) bool {
	switch q.Kind {
	case Range:
		return q.Window.Intersects(mbr)
	case KNN:
		return true // pruning comes from the priority order
	default:
		return false
	}
}

// acceptsPair reports whether a pair element may contain result pairs.
func (q Query) acceptsPair(a, b geom.Rect) bool {
	return a.Intersects(q.JoinWindow) && b.Intersects(q.JoinWindow) &&
		geom.RectMinDist(a, b) <= q.Dist
}

// KeyFor returns the queue priority of a single element with the given MBR
// (exported for remainder-query rekeying on the server).
func (q Query) KeyFor(mbr geom.Rect) float64 { return q.key(mbr) }

// PairKeyFor returns the queue priority of a pair element.
func (q Query) PairKeyFor(a, b geom.Rect) float64 { return q.pairKey(a, b) }

// key returns the priority of a single element (smaller pops first).
func (q Query) key(mbr geom.Rect) float64 {
	if q.Kind == KNN {
		return geom.MinDist(q.Center, mbr)
	}
	return 0
}

// pairKey returns the priority of a pair element.
func (q Query) pairKey(a, b geom.Rect) float64 {
	return geom.RectMinDist(a, b)
}
