package query

import (
	"cmp"
	"math"
	"slices"

	"repro/internal/pq"
	"repro/internal/rtree"
)

// Provider supplies index structure and object availability to the engine.
//
// The server's provider always succeeds; the client's provider consults the
// proactive cache and reports missing pages, super entries (which are by
// definition opaque on the client) and evicted object payloads.
type Provider interface {
	// Expand returns the immediate children of a node or super reference:
	// for a node, its entries (or the elements of its cached cut); for a
	// super entry, the two children of its partition-tree position.
	// ok = false marks the reference as missing.
	//
	// The returned slice is only valid until the next Expand call on the
	// same provider: implementations may reuse one scratch buffer across
	// calls to keep the hot path allocation-free. The engine copies when it
	// must hold children across a second expansion (join pairs).
	Expand(ref Ref) (children []Ref, ok bool)

	// HaveObject reports whether the object's payload is available locally.
	HaveObject(obj rtree.ObjectID) bool
}

// Stats counts the work a run performed; the simulation's client CPU cost
// model is built on these.
type Stats struct {
	Pops    int // priority-queue pops
	Pushes  int // priority-queue pushes
	Expands int // successful Expand calls
	Evals   int // candidate evaluations (predicate checks, incl. join pairs)
}

// Total sums the counters (the per-op CPU model's input).
func (s Stats) Total() int { return s.Pops + s.Pushes + s.Expands + s.Evals }

// Add accumulates another run's counters.
func (s *Stats) Add(o Stats) {
	s.Pops += o.Pops
	s.Pushes += o.Pushes
	s.Expands += o.Expands
	s.Evals += o.Evals
}

// Outcome is the result of one engine run.
type Outcome struct {
	// Results holds confirmed result objects in confirmation order
	// (ascending distance for kNN). On the client these are the saved
	// objects Rs of the paper.
	Results []Ref

	// Pairs holds confirmed join result pairs (canonically ordered).
	Pairs [][2]Ref

	// Remainder is the pruned priority-queue snapshot to hand to the
	// server; empty iff Complete.
	Remainder []QueuedElem

	// Complete reports that the query was fully answered locally.
	Complete bool

	Stats Stats
}

// SeedRoot builds the initial queue contents for a fresh query rooted at the
// given reference (a pair seed for joins).
func SeedRoot(q Query, root Ref) []QueuedElem {
	return AppendSeedRoot(nil, q, root)
}

// AppendSeedRoot is SeedRoot appending into a caller-owned buffer, for hot
// paths that seed a fresh query per request.
func AppendSeedRoot(dst []QueuedElem, q Query, root Ref) []QueuedElem {
	if q.Kind == Join {
		if !q.acceptsPair(root.MBR, root.MBR) {
			return dst
		}
		return append(dst, QueuedElem{Key: q.pairKey(root.MBR, root.MBR), Elem: PairOf(root, root)})
	}
	if !q.accepts(root.MBR) {
		return dst
	}
	return append(dst, QueuedElem{Key: q.key(root.MBR), Elem: Single(root)})
}

// Runner owns the reusable execution state of Algorithm 1: the best-first
// priority queue, the stuck-element accumulator, and the result buffers. A
// warm Runner executes a query without allocating; the server keeps Runners
// in a sync.Pool so each request borrows one.
//
// A Runner is not safe for concurrent use. The Outcome returned by Run
// aliases the Runner's internal buffers: it is valid only until the next Run
// or Reset, and callers that retain results across runs must copy them.
type Runner struct {
	h           pq.Queue[Elem]
	fifo        []Ref // range-query queue (see runRangeFIFO)
	stuck       []QueuedElem
	results     []Ref
	pairs       [][2]Ref
	pairScratch []Ref // holds one side of a double-descend join expansion
}

// Reset clears the runner for the next query, retaining all backing storage.
func (r *Runner) Reset() {
	r.h.Reset()
	clear(r.fifo)
	r.fifo = r.fifo[:0]
	r.stuck = r.stuck[:0]
	r.results = r.results[:0]
	r.pairs = r.pairs[:0]
	r.pairScratch = r.pairScratch[:0]
}

// Run executes q over the provider starting from the seeded queue state.
// It implements Algorithm 1 of the paper, generalized to all three query
// kinds: missing elements accumulate outside the queue, kNN terminates when
// confirmed results plus missing leaf elements reach K, and the remainder is
// the pruned union of missing and unexplored elements.
func (r *Runner) Run(q Query, prov Provider, seed []QueuedElem) Outcome {
	return r.RunBounded(q, prov, seed, 0)
}

// RunBounded is Run with a priority-key upper bound: when bound is positive,
// processing stops as soon as the queue head's key exceeds it. Keys are
// lower bounds on the results beneath an element, so nothing within the
// bound is lost; everything beyond it lands in the remainder as usual. A
// cluster router uses this to stop a kNN sub-query at the global k-th-best
// distance it already holds (wire.Request.Bound). Zero means unbounded.
func (r *Runner) RunBounded(q Query, prov Provider, seed []QueuedElem, bound float64) Outcome {
	r.Reset()
	if q.Kind == Range && rangeFIFOOK(seed) {
		return r.runRangeFIFO(q, prov, seed)
	}
	var out Outcome
	minMissingNonLeaf := math.Inf(1)
	m := 0            // confirmed results
	nMissingLeaf := 0 // popped object elements that could not be confirmed

	// Pre-grow past the handful of doubling reallocations every non-trivial
	// query pays; warm-cache heaps routinely exceed 64 elements.
	r.h.Grow(len(seed) + 64)
	for _, qe := range seed {
		r.h.Push(qe.Key, qe.Elem)
		out.Stats.Pushes++
	}

	for {
		if q.Kind == KNN && m+nMissingLeaf >= q.K {
			break
		}
		if r.h.Len() == 0 {
			break
		}
		if bound > 0 {
			if key, _ := r.h.Min(); key > bound {
				break // every remaining element exceeds the bound
			}
		}
		key, elem := r.h.Pop()
		out.Stats.Pops++

		if elem.IsObjectElem() {
			available := prov.HaveObject(elem.A.Obj) && (!elem.Pair || prov.HaveObject(elem.B.Obj))
			switch {
			case !available:
				r.stuck = append(r.stuck, QueuedElem{Key: key, Elem: elem})
				nMissingLeaf++
			case q.Kind == KNN && minMissingNonLeaf <= key:
				// A missing non-leaf element precedes this object in H, so
				// it cannot be confirmed as the next nearest neighbor.
				r.stuck = append(r.stuck, QueuedElem{Key: key, Elem: elem, Deferred: true})
				nMissingLeaf++
			default:
				if elem.Pair {
					r.pairs = append(r.pairs, [2]Ref{elem.A, elem.B})
				} else {
					r.results = append(r.results, elem.A)
				}
				m++
			}
			continue
		}

		if !r.expandElem(q, prov, elem, &out.Stats) {
			r.stuck = append(r.stuck, QueuedElem{Key: key, Elem: elem})
			if key < minMissingNonLeaf {
				minMissingNonLeaf = key
			}
		}
	}

	out.Results = r.results
	out.Pairs = r.pairs

	needRemainder := len(r.stuck) > 0
	if q.Kind == KNN {
		needRemainder = m < q.K && len(r.stuck) > 0
	}
	if !needRemainder {
		out.Complete = true
		return out
	}

	remainder := r.stuck
	for r.h.Len() > 0 {
		key, elem := r.h.Pop()
		remainder = append(remainder, QueuedElem{Key: key, Elem: elem})
	}
	r.stuck = remainder // keep the grown buffer for the next run
	// Stable, and allocation-free unlike sort.SliceStable's reflect path.
	slices.SortStableFunc(remainder, func(a, b QueuedElem) int {
		return cmp.Compare(a.Key, b.Key)
	})

	if q.Kind == KNN {
		remainder = pruneKNNRemainder(remainder, q.K-m)
	}
	out.Remainder = remainder
	return out
}

// rangeFIFOOK reports whether a range seed admits the FIFO fast path: every
// queued element keyed zero and no pair elements. Range priorities are always
// zero (Query.key), so any handed-over or root seed qualifies unless a client
// shipped something degenerate — then the general heap loop handles it.
func rangeFIFOOK(seed []QueuedElem) bool {
	for _, qe := range seed {
		if qe.Key != 0 || qe.Elem.Pair {
			return false
		}
	}
	return true
}

// runRangeFIFO executes a range query with a plain FIFO queue instead of the
// priority queue. The heap breaks equal keys FIFO by push sequence, and every
// element of a range run carries key zero, so pop order — and with it every
// observable output: result order, stuck order, the remainder, and the stats
// counters — is identical to the heap loop's. What changes is the cost: no
// sift copies of the fat Elem through the heap, no key comparisons.
func (r *Runner) runRangeFIFO(q Query, prov Provider, seed []QueuedElem) Outcome {
	var out Outcome
	if cap(r.fifo) < len(seed)+64 {
		r.fifo = make([]Ref, 0, len(seed)+64)
	}
	for _, qe := range seed {
		r.fifo = append(r.fifo, qe.Elem.A)
		out.Stats.Pushes++
	}

	for head := 0; head < len(r.fifo); head++ {
		ref := r.fifo[head]
		out.Stats.Pops++

		if ref.IsObject() {
			if !prov.HaveObject(ref.Obj) {
				r.stuck = append(r.stuck, QueuedElem{Elem: Single(ref)})
				continue
			}
			r.results = append(r.results, ref)
			continue
		}

		children, ok := prov.Expand(ref)
		if !ok {
			r.stuck = append(r.stuck, QueuedElem{Elem: Single(ref)})
			continue
		}
		out.Stats.Expands++
		out.Stats.Evals += len(children)
		for _, c := range children {
			if q.accepts(c.MBR) {
				r.fifo = append(r.fifo, c)
				out.Stats.Pushes++
			}
		}
	}

	out.Results = r.results
	out.Pairs = r.pairs
	if len(r.stuck) == 0 {
		out.Complete = true
		return out
	}
	// All keys are zero: the heap path's stable sort preserves accumulation
	// order, so the stuck list is the remainder as-is.
	out.Remainder = r.stuck
	return out
}

// Run executes q with a fresh Runner. It is the compatibility entry point for
// one-shot callers (clients, simulations); the returned Outcome owns its
// buffers.
func Run(q Query, prov Provider, seed []QueuedElem) Outcome {
	var r Runner
	return r.Run(q, prov, seed)
}

// pruneKNNRemainder drops every element farther than the want-th object
// element: such elements cannot contain any of the remaining nearest
// neighbors (Example 3.1's pruning). The input must be sorted by key.
func pruneKNNRemainder(rem []QueuedElem, want int) []QueuedElem {
	seen := 0
	for i, qe := range rem {
		if !qe.Elem.IsObjectElem() {
			continue
		}
		seen++
		if seen == want {
			cut := rem[:i+1]
			// Keep ties: elements at exactly the threshold key may still
			// contain equally near objects.
			for j := i + 1; j < len(rem) && rem[j].Key == qe.Key; j++ {
				cut = rem[:j+1]
			}
			return cut
		}
	}
	return rem
}

// expandElem expands a non-object element, pushing its accepted children
// straight into the priority queue (no intermediate slice — expansion is
// the engine's hottest allocation site). It reports false when the element
// is missing from the provider.
func (r *Runner) expandElem(q Query, prov Provider, elem Elem, stats *Stats) bool {
	if !elem.Pair {
		children, ok := prov.Expand(elem.A)
		if !ok {
			return false
		}
		stats.Expands++
		stats.Evals += len(children)
		for _, c := range children {
			if q.accepts(c.MBR) {
				r.h.Push(q.key(c.MBR), Single(c))
				stats.Pushes++
			}
		}
		return true
	}
	return r.expandPair(q, prov, elem, stats)
}

// emitPair evaluates one candidate child pair and pushes it if accepted.
func (r *Runner) emitPair(q Query, x, y Ref, stats *Stats) {
	stats.Evals++
	if x.Same(y) && x.IsObject() {
		return // a distance self-join never pairs an object with itself
	}
	if !q.acceptsPair(x.MBR, y.MBR) {
		return
	}
	r.h.Push(q.pairKey(x.MBR, y.MBR), PairOf(x, y))
	stats.Pushes++
}

// expandPair expands a join pair by descending every expandable side.
// A pair is missing when any side it must descend is missing (footnote 3 of
// the paper).
func (r *Runner) expandPair(q Query, prov Provider, elem Elem, stats *Stats) bool {
	a, b := elem.A, elem.B

	switch {
	case a.IsObject(): // descend b only
		children, ok := prov.Expand(b)
		if !ok {
			return false
		}
		stats.Expands++
		for _, c := range children {
			r.emitPair(q, a, c, stats)
		}
		return true

	case b.IsObject(): // descend a only
		children, ok := prov.Expand(a)
		if !ok {
			return false
		}
		stats.Expands++
		for _, c := range children {
			r.emitPair(q, c, b, stats)
		}
		return true

	case a.Same(b): // one expansion, unordered child pairs
		children, ok := prov.Expand(a)
		if !ok {
			return false
		}
		stats.Expands++
		for i := range children {
			for j := i; j < len(children); j++ {
				r.emitPair(q, children[i], children[j], stats)
			}
		}
		return true

	default: // descend both sides
		ca, okA := prov.Expand(a)
		if !okA {
			return false
		}
		// The provider may reuse its scratch buffer on the next Expand, so
		// copy side a before descending side b.
		r.pairScratch = append(r.pairScratch[:0], ca...)
		cb, okB := prov.Expand(b)
		if !okB {
			return false
		}
		stats.Expands += 2
		for _, x := range r.pairScratch {
			for _, y := range cb {
				r.emitPair(q, x, y, stats)
			}
		}
		return true
	}
}
