package query

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// mockWorld is a hand-built two-level index over point objects, with
// controllable missing nodes and objects.
type mockWorld struct {
	rootRef     Ref
	children    map[rtree.NodeID][]Ref
	missing     map[rtree.NodeID]bool
	haveObject  map[rtree.ObjectID]bool
	objects     map[rtree.ObjectID]geom.Rect
	expandCalls int
}

func (m *mockWorld) Expand(ref Ref) ([]Ref, bool) {
	if ref.Kind != RefNode || m.missing[ref.Node] {
		return nil, false
	}
	m.expandCalls++
	return m.children[ref.Node], true
}

func (m *mockWorld) HaveObject(id rtree.ObjectID) bool { return m.haveObject[id] }

// fullWorld clones m with nothing missing (the "server" view).
func (m *mockWorld) fullWorld() *mockWorld {
	full := &mockWorld{
		rootRef:    m.rootRef,
		children:   m.children,
		missing:    map[rtree.NodeID]bool{},
		haveObject: map[rtree.ObjectID]bool{},
		objects:    m.objects,
	}
	for id := range m.objects {
		full.haveObject[id] = true
	}
	return full
}

// buildMock creates a root with `fan` leaf nodes of `per` objects each, laid
// out on a grid.
func buildMock(r *rand.Rand, fan, per int) *mockWorld {
	m := &mockWorld{
		children:   map[rtree.NodeID][]Ref{},
		missing:    map[rtree.NodeID]bool{},
		haveObject: map[rtree.ObjectID]bool{},
		objects:    map[rtree.ObjectID]geom.Rect{},
	}
	var rootChildren []Ref
	var rootMBR geom.Rect
	id := rtree.ObjectID(1)
	for n := 1; n <= fan; n++ {
		nodeID := rtree.NodeID(n + 1)
		var refs []Ref
		var nodeMBR geom.Rect
		for j := 0; j < per; j++ {
			p := geom.Pt(r.Float64(), r.Float64())
			mbr := geom.RectFromCenter(p, 0.01, 0.01)
			refs = append(refs, ObjectRef(id, mbr))
			m.objects[id] = mbr
			m.haveObject[id] = true
			if j == 0 {
				nodeMBR = mbr
			} else {
				nodeMBR = nodeMBR.Union(mbr)
			}
			id++
		}
		m.children[nodeID] = refs
		if n == 1 {
			rootMBR = nodeMBR
		} else {
			rootMBR = rootMBR.Union(nodeMBR)
		}
		rootChildren = append(rootChildren, NodeRef(nodeID, nodeMBR))
	}
	m.children[1] = rootChildren
	m.rootRef = NodeRef(1, rootMBR)
	return m
}

func (m *mockWorld) bruteRange(win geom.Rect) map[rtree.ObjectID]bool {
	out := map[rtree.ObjectID]bool{}
	for id, mbr := range m.objects {
		if mbr.Intersects(win) {
			out[id] = true
		}
	}
	return out
}

func (m *mockWorld) bruteKNN(p geom.Point, k int) []float64 {
	var ds []float64
	for _, mbr := range m.objects {
		ds = append(ds, geom.MinDist(p, mbr))
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

func TestRangeComplete(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	m := buildMock(r, 8, 20)
	q := NewRange(geom.R(0.2, 0.2, 0.6, 0.6))
	out := Run(q, m, SeedRoot(q, m.rootRef))
	if !out.Complete {
		t.Fatal("fully available index must complete")
	}
	want := m.bruteRange(q.Window)
	if len(out.Results) != len(want) {
		t.Fatalf("got %d, want %d", len(out.Results), len(want))
	}
	for _, ref := range out.Results {
		if !want[ref.Obj] {
			t.Fatalf("unexpected %d", ref.Obj)
		}
	}
}

func TestKNNCompleteOrdered(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	m := buildMock(r, 8, 20)
	p := geom.Pt(0.5, 0.5)
	q := NewKNN(p, 7)
	out := Run(q, m, SeedRoot(q, m.rootRef))
	if !out.Complete || len(out.Results) != 7 {
		t.Fatalf("complete=%v n=%d", out.Complete, len(out.Results))
	}
	want := m.bruteKNN(p, 7)
	for i, ref := range out.Results {
		d := geom.MinDist(p, ref.MBR)
		if d != want[i] {
			t.Fatalf("result %d dist %v, want %v", i, d, want[i])
		}
	}
}

func TestKNNFewerThanKComplete(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	m := buildMock(r, 2, 3)
	q := NewKNN(geom.Pt(0.5, 0.5), 100)
	out := Run(q, m, SeedRoot(q, m.rootRef))
	if !out.Complete || len(out.Results) != 6 {
		t.Fatalf("want all 6 objects complete, got %d complete=%v", len(out.Results), out.Complete)
	}
}

func TestMissingNodeProducesRemainderAndResume(t *testing.T) {
	r := rand.New(rand.NewSource(54))
	m := buildMock(r, 8, 20)
	// Knock out three leaf nodes.
	m.missing[3], m.missing[5], m.missing[7] = true, true, true

	q := NewRange(geom.R(0.1, 0.1, 0.9, 0.9))
	out := Run(q, m, SeedRoot(q, m.rootRef))
	if out.Complete {
		t.Fatal("missing nodes should force a remainder")
	}
	// Remainder contains only the missing node refs (range pops everything
	// poppable before stopping).
	for _, qe := range out.Remainder {
		if qe.Elem.A.Kind == RefNode && !m.missing[qe.Elem.A.Node] {
			t.Fatalf("non-missing node %v in remainder", qe.Elem.A)
		}
	}
	// Resume server-side: union must equal ground truth.
	srv := m.fullWorld()
	resumed := Run(q, srv, out.Remainder)
	if !resumed.Complete {
		t.Fatal("server resume must complete")
	}
	got := map[rtree.ObjectID]bool{}
	for _, ref := range append(out.Results, resumed.Results...) {
		if got[ref.Obj] {
			t.Fatalf("duplicate result %d", ref.Obj)
		}
		got[ref.Obj] = true
	}
	want := m.bruteRange(q.Window)
	if len(got) != len(want) {
		t.Fatalf("got %d, want %d", len(got), len(want))
	}
}

func TestKNNMissingObjectCountsTowardTermination(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	m := buildMock(r, 4, 10)
	// Evict every object payload: all leaf pops become missing leaf entries.
	for id := range m.haveObject {
		m.haveObject[id] = false
	}
	q := NewKNN(geom.Pt(0.5, 0.5), 3)
	out := Run(q, m, SeedRoot(q, m.rootRef))
	if out.Complete || len(out.Results) != 0 {
		t.Fatal("no payloads: nothing confirmable")
	}
	// m + n = k: exactly 3 missing leaf entries before termination, so the
	// remainder's object elements number exactly k (pruning keeps 3).
	objElems := 0
	for _, qe := range out.Remainder {
		if qe.Elem.IsObjectElem() {
			objElems++
		}
	}
	if objElems < 3 {
		t.Fatalf("remainder has %d object elems, want >= 3", objElems)
	}
	// Resume must yield the true 3NN.
	resumed := Run(q, m.fullWorld(), out.Remainder)
	want := m.bruteKNN(geom.Pt(0.5, 0.5), 3)
	if len(resumed.Results) != 3 {
		t.Fatalf("resumed %d results", len(resumed.Results))
	}
	for i, ref := range resumed.Results {
		if geom.MinDist(geom.Pt(0.5, 0.5), ref.MBR) != want[i] {
			t.Fatalf("resumed result %d wrong distance", i)
		}
	}
}

func TestKNNDeferralRule(t *testing.T) {
	// Hand-built: root -> {missing node N (closest), object A (farther)}.
	// A is cached but must be deferred because N could hold closer objects.
	objA := ObjectRef(1, geom.RectFromCenter(geom.Pt(0.30, 0.5), 0.01, 0.01))
	objB := ObjectRef(2, geom.RectFromCenter(geom.Pt(0.05, 0.5), 0.01, 0.01)) // inside N, closest
	m := &mockWorld{
		rootRef: NodeRef(1, geom.R(0, 0, 1, 1)),
		children: map[rtree.NodeID][]Ref{
			1: {NodeRef(2, geom.RectFromCenter(geom.Pt(0.05, 0.5), 0.08, 0.08)), objA},
			2: {objB},
		},
		missing:    map[rtree.NodeID]bool{2: true},
		haveObject: map[rtree.ObjectID]bool{1: true, 2: true},
		objects:    map[rtree.ObjectID]geom.Rect{1: objA.MBR, 2: objB.MBR},
	}
	q := NewKNN(geom.Pt(0, 0.5), 1)
	out := Run(q, m, SeedRoot(q, m.rootRef))
	if out.Complete {
		t.Fatal("must not complete: nearest candidate is behind a missing node")
	}
	if len(out.Results) != 0 {
		t.Fatalf("object A confirmed despite missing closer node: %v", out.Results)
	}
	foundDeferred := false
	for _, qe := range out.Remainder {
		if qe.Deferred {
			if qe.Elem.A.Obj != 1 {
				t.Fatalf("wrong deferred elem %v", qe.Elem)
			}
			foundDeferred = true
		}
	}
	if !foundDeferred {
		t.Fatal("cached object A should be deferred in the remainder")
	}
	// Server resume finds B (the true NN).
	resumed := Run(q, m.fullWorld(), out.Remainder)
	if len(resumed.Results) != 1 || resumed.Results[0].Obj != 2 {
		t.Fatalf("resume = %v, want object 2", resumed.Results)
	}
}

func TestKNNRemainderPruning(t *testing.T) {
	r := rand.New(rand.NewSource(56))
	m := buildMock(r, 10, 30)
	for id := range m.haveObject {
		m.haveObject[id] = false
	}
	q := NewKNN(geom.Pt(0.5, 0.5), 2)
	out := Run(q, m, SeedRoot(q, m.rootRef))
	// Pruning: nothing in the remainder may lie beyond the 2nd object elem.
	var objKeys []float64
	for _, qe := range out.Remainder {
		if qe.Elem.IsObjectElem() {
			objKeys = append(objKeys, qe.Key)
		}
	}
	sort.Float64s(objKeys)
	if len(objKeys) < 2 {
		t.Fatalf("fewer than 2 object elems: %d", len(objKeys))
	}
	threshold := objKeys[1]
	for _, qe := range out.Remainder {
		if qe.Key > threshold {
			t.Fatalf("unpruned element with key %v > threshold %v", qe.Key, threshold)
		}
	}
}

func TestJoinCompleteMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(57))
	m := buildMock(r, 6, 15)
	q := NewJoin(geom.R(0.2, 0.2, 0.8, 0.8), 0.05)
	out := Run(q, m, SeedRoot(q, m.rootRef))
	if !out.Complete {
		t.Fatal("join on full index must complete")
	}
	want := map[[2]rtree.ObjectID]bool{}
	ids := make([]rtree.ObjectID, 0, len(m.objects))
	for id := range m.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a, b := m.objects[ids[i]], m.objects[ids[j]]
			if a.Intersects(q.JoinWindow) && b.Intersects(q.JoinWindow) && geom.RectMinDist(a, b) <= q.Dist {
				want[[2]rtree.ObjectID{ids[i], ids[j]}] = true
			}
		}
	}
	got := map[[2]rtree.ObjectID]bool{}
	for _, p := range out.Pairs {
		a, b := p[0].Obj, p[1].Obj
		if b < a {
			a, b = b, a
		}
		key := [2]rtree.ObjectID{a, b}
		if got[key] {
			t.Fatalf("duplicate pair %v", key)
		}
		got[key] = true
	}
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	for k := range got {
		if !want[k] {
			t.Fatalf("unexpected pair %v", k)
		}
	}
}

func TestJoinMissingSideResume(t *testing.T) {
	r := rand.New(rand.NewSource(58))
	m := buildMock(r, 6, 15)
	m.missing[4] = true
	q := NewJoin(geom.R(0, 0, 1, 1), 0.08)
	out := Run(q, m, SeedRoot(q, m.rootRef))
	if out.Complete {
		t.Fatal("missing node must force a remainder")
	}
	resumed := Run(q, m.fullWorld(), out.Remainder)
	if !resumed.Complete {
		t.Fatal("resume must complete")
	}
	total := map[[2]rtree.ObjectID]bool{}
	for _, p := range append(out.Pairs, resumed.Pairs...) {
		a, b := p[0].Obj, p[1].Obj
		if b < a {
			a, b = b, a
		}
		key := [2]rtree.ObjectID{a, b}
		if total[key] {
			t.Fatalf("pair %v from both local and resume", key)
		}
		total[key] = true
	}
	// Ground truth.
	want := 0
	ids := make([]rtree.ObjectID, 0, len(m.objects))
	for id := range m.objects {
		ids = append(ids, id)
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a, b := m.objects[ids[i]], m.objects[ids[j]]
			if a.Intersects(q.JoinWindow) && b.Intersects(q.JoinWindow) && geom.RectMinDist(a, b) <= q.Dist {
				want++
			}
		}
	}
	if len(total) != want {
		t.Fatalf("got %d pairs, want %d", len(total), want)
	}
}

func TestSeedRootRejectsNonOverlapping(t *testing.T) {
	root := NodeRef(1, geom.R(0, 0, 0.1, 0.1))
	q := NewRange(geom.R(0.5, 0.5, 0.6, 0.6))
	if seed := SeedRoot(q, root); len(seed) != 0 {
		t.Error("non-overlapping window should produce an empty seed")
	}
	jq := NewJoin(geom.R(0.5, 0.5, 0.6, 0.6), 0.01)
	if seed := SeedRoot(jq, root); len(seed) != 0 {
		t.Error("non-overlapping join window should produce an empty seed")
	}
}

func TestEmptySeedCompletes(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	m := buildMock(r, 2, 2)
	q := NewRange(geom.R(2, 2, 3, 3))
	out := Run(q, m, nil)
	if !out.Complete || len(out.Results) != 0 {
		t.Error("empty seed must complete with no results")
	}
}

func TestKindString(t *testing.T) {
	if Range.String() != "range" || KNN.String() != "knn" || Join.String() != "join" {
		t.Error("kind strings")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind string empty")
	}
}

func TestRefAndElemHelpers(t *testing.T) {
	a := ObjectRef(1, geom.R(0, 0, 1, 1))
	b := NodeRef(2, geom.R(0, 0, 1, 1))
	if !b.Less(a) { // nodes sort before objects (RefNode < RefObject)
		t.Error("ordering broken")
	}
	p := PairOf(a, b)
	if p.A != b || p.B != a {
		t.Error("PairOf must canonicalize")
	}
	if !a.Same(a) || a.Same(b) {
		t.Error("Same broken")
	}
	if a.String() == "" || b.String() == "" || p.String() == "" ||
		SuperRef(1, "01", geom.R(0, 0, 1, 1)).String() == "" {
		t.Error("stringers empty")
	}
	e := rtree.Entry{MBR: geom.R(0, 0, 1, 1), Child: 5}
	if FromEntry(e).Kind != RefNode {
		t.Error("FromEntry child")
	}
	e = rtree.Entry{MBR: geom.R(0, 0, 1, 1), Obj: 5}
	if FromEntry(e).Kind != RefObject {
		t.Error("FromEntry object")
	}
}
