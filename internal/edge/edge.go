// Package edge implements an edge cache tier for the proactive-caching
// cluster: a proxy node that terminates the unmodified wire protocol,
// answers popular cold range/kNN queries from its own cache of canonical
// upstream responses, and forwards everything else to the cluster router.
//
// The cache is keyed by the exact query signature and grouped by KD
// partition cell (the same cells the router shards by): per-cell hotness —
// a windowed EWMA of cacheable-query arrivals — drives admission, so only
// cells above a threshold materialize entries, and a byte budget evicts
// from the coldest cells first. Consistency is inherited from the cluster's
// epoch/invalidation machinery rather than re-proven: the edge subscribes
// to the invalidation stream by issuing catalog requests under its own
// reserved client id (exactly the piggybacked window every client already
// receives) and drops cached entries whose dependency set — the node ids of
// the shipped supporting index plus the result object ids — intersects the
// delivered window. docs/EDGE.md states the full consistency argument.
package edge

import (
	"container/list"
	"encoding/binary"
	"errors"
	"math"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// EdgeClientID is the upstream identity the edge uses for its own catalog
// syncs. It is the top of the ClientID space; end clients must not use it.
const EdgeClientID = ^wire.ClientID(0)

// Config parameterizes an Edge.
type Config struct {
	// Upstream is the cluster router (or any wire server) behind the edge;
	// required.
	Upstream wire.Transport
	// Locate maps a query center to its KD partition cell and Cells is the
	// number of cells; required (cluster.Router.Partition provides both).
	Locate func(geom.Point) int
	Cells  int
	// ReleaseUpstream, when set, returns forwarded responses the edge has
	// finished copying from back to the upstream pool. Responses served to
	// clients are never pooled — the client owns them.
	ReleaseUpstream func(*wire.Response)
	// ByteBudget caps the cache footprint in SizeModel bytes (default 32 MiB).
	ByteBudget int
	// AdmitThreshold is the per-cell hotness (EWMA of cacheable queries per
	// window) above which responses are materialized (default 32).
	AdmitThreshold float64
	// Window is the hotness window length in cacheable queries (default 512)
	// and Alpha the EWMA weight of the newest window (default 0.5).
	Window int
	Alpha  float64
	// SyncInterval, when positive, adds a time-based floor under the
	// invalidation subscription: a request arriving more than this after the
	// last sync re-syncs first, bounding the staleness window against
	// writers that bypass the edge. Sole-ingress deployments (every update
	// flows through the edge, which syncs on each ack) can leave it zero.
	SyncInterval time.Duration
	// Sizes is the byte model for budget accounting (zero: DefaultSizeModel).
	Sizes wire.SizeModel
	// Stats receives edge counters (nil: a private instance).
	Stats *metrics.EdgeStats
}

// stamp records what the edge knows one client has been delivered: the
// virtual epoch of the client's last forwarded response, bound to the edge
// state it was observed under. A cache hit is served only to a client whose
// stamp is current — then the empty invalidation window and echoed epoch the
// hit carries are exactly what the router would have produced.
type stamp struct {
	epoch uint64
	state uint64
}

// entry is one materialized response: client-independent content plus the
// dependency set its validity rides on.
//
// With never-reused NodeIDs every shipped node rep is immutable per id —
// except the synthesized virtual root (cluster.VirtualRoot), whose id is
// fixed while its content tracks the shard roots. Storing the vroot rep in
// the entry would force a drop on *every* upstream change (the vroot sits
// in every crossing invalidation window), so entries are kept "stripped":
// the vroot rep is removed from the cached index and the edge's current
// harvested rep is substituted at serve time. Correctness of retention is
// re-checked per hit against the current vroot children (see lookup).
type entry struct {
	key     string
	cell    int
	bytes   int
	objects []wire.ObjectRep
	pairs   [][2]rtree.ObjectID
	index   []wire.NodeRep
	k       int
	rootID  rtree.NodeID
	rootMBR geom.Rect
	deps    map[rtree.NodeID]struct{}
	objDeps map[rtree.ObjectID]struct{}
	elem    *list.Element // position in its cell's LRU list

	stripped bool        // index excludes the vroot rep; substitute at serve
	q        query.Query // the admitted query, for the retention safety check
	rk       float64     // kNN contribution radius: max result distance, +Inf when short of K
}

// cellState is the hotness accounting and LRU chain of one partition cell.
type cellState struct {
	hot float64 // EWMA of cacheable queries per window
	cur float64 // arrivals in the current window
	lru *list.List
}

// Edge is the proxy. It implements wire.Transport, so it slots in anywhere
// a router or server does; callers own the responses it returns (they are
// never pooled).
type Edge struct {
	cfg   Config
	stats *metrics.EdgeStats

	// syncMu serializes upstream catalog syncs (one subscriber, one stream).
	syncMu sync.Mutex

	mu       sync.Mutex
	state    uint64    // bumped on every accepted upstream change
	epoch    uint64    // edge's own last-synced virtual epoch
	dirty    bool      // evidence of an upstream change not yet synced
	lastSync time.Time // for the SyncInterval floor
	inflight int       // relayed update batches not yet acked+synced
	reqCount int       // cacheable queries since the last window roll
	entries  map[string]*entry
	bytes    int
	cells    []cellState
	stamps   map[wire.ClientID]stamp
	tainted  map[wire.ClientID]struct{}

	// The current virtual-root rep, harvested from forwarded responses that
	// shipped index under a current stamp gate. vrootState pins the harvest
	// to an edge state: after any accepted upstream change (state bump) the
	// rep is stale and stripped entries cannot hit until a forward
	// re-harvests it.
	vroot      wire.NodeRep
	vrootMBR   geom.Rect
	vrootState uint64
	vrootOK    bool
}

// maxStamps bounds the per-client maps; beyond it an arbitrary client is
// forgotten (and simply forwarded until re-stamped).
const maxStamps = 1 << 18

// New builds an edge over cfg.Upstream and performs the initial catalog
// sync that establishes its epoch baseline.
func New(cfg Config) (*Edge, error) {
	if cfg.Upstream == nil {
		return nil, errors.New("edge: Config.Upstream is required")
	}
	if cfg.Locate == nil || cfg.Cells <= 0 {
		return nil, errors.New("edge: Config.Locate and Config.Cells are required")
	}
	if cfg.ByteBudget <= 0 {
		cfg.ByteBudget = 32 << 20
	}
	if cfg.AdmitThreshold <= 0 {
		cfg.AdmitThreshold = 32
	}
	if cfg.Window <= 0 {
		cfg.Window = 512
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.5
	}
	if cfg.Sizes == (wire.SizeModel{}) {
		cfg.Sizes = wire.DefaultSizeModel()
	}
	if cfg.Stats == nil {
		cfg.Stats = &metrics.EdgeStats{}
	}
	e := &Edge{
		cfg:     cfg,
		stats:   cfg.Stats,
		entries: make(map[string]*entry),
		cells:   make([]cellState, cfg.Cells),
		stamps:  make(map[wire.ClientID]stamp),
		tainted: make(map[wire.ClientID]struct{}),
	}
	for i := range e.cells {
		e.cells[i].lru = list.New()
	}
	// Baseline sync: learn the cluster's current epoch under the edge's own
	// client id. Whatever window it delivers is moot — the cache is empty.
	resp, err := cfg.Upstream.RoundTrip(&wire.Request{Client: EdgeClientID, Catalog: true})
	if err != nil {
		return nil, err
	}
	e.stats.Syncs.Add(1)
	e.epoch = resp.Epoch
	e.lastSync = time.Now()
	e.releaseUpstream(resp)
	return e, nil
}

// Stats returns the edge's counters.
func (e *Edge) Stats() *metrics.EdgeStats { return e.stats }

func (e *Edge) releaseUpstream(resp *wire.Response) {
	if e.cfg.ReleaseUpstream != nil {
		e.cfg.ReleaseUpstream(resp)
	}
}

// RoundTrip implements wire.Transport.
func (e *Edge) RoundTrip(req *wire.Request) (*wire.Response, error) {
	if len(req.Updates) > 0 {
		return e.roundTripUpdate(req)
	}
	if req.HasFMR || len(req.CachedIDs) > 0 || len(req.SemWindows) > 0 {
		// FMR feedback moves the client's server-side refinement level d, so
		// its responses stop matching the d-at-default content the cache
		// holds; the baseline fields likewise make content client-specific.
		// Taint is forever: cheap, and such clients are rare.
		e.mu.Lock()
		e.taintLocked(req.Client)
		e.mu.Unlock()
	}
	if e.needSync() {
		// Evidence of an upstream change arrived on an earlier forwarded
		// response (or the SyncInterval floor expired): refresh the
		// subscription before answering anything else.
		e.sync(false)
	}
	if cacheable(req) {
		if resp := e.lookup(req); resp != nil {
			return resp, nil
		}
	}
	return e.forward(req)
}

// cacheable reports whether a request's canonical response is
// client-independent (given an untainted client) and therefore servable
// from the shared cache: a pure cold range or kNN query with no handed-over
// state, no baseline fields, and no routing metadata. NoIndex responses are
// excluded — without a shipped index the dependency set is too thin to
// invalidate precisely.
func cacheable(req *wire.Request) bool {
	return !req.Catalog && !req.NoIndex && !req.HasFMR && !req.Replica &&
		len(req.H) == 0 && len(req.CachedIDs) == 0 && len(req.SemWindows) == 0 &&
		len(req.Updates) == 0 && req.Bound == 0 &&
		(req.Q.Kind == query.Range || req.Q.Kind == query.KNN)
}

// cacheKey is the exact query signature: kind, full-precision geometry, K.
// Exact float64 bits, not wire-quantized ones — two queries may only share
// an entry if the upstream server would compute identical responses.
func cacheKey(q query.Query) string {
	var b [1 + 8*7 + 8]byte
	b[0] = byte(q.Kind)
	le := binary.LittleEndian
	le.PutUint64(b[1:], math.Float64bits(q.Window.MinX))
	le.PutUint64(b[9:], math.Float64bits(q.Window.MinY))
	le.PutUint64(b[17:], math.Float64bits(q.Window.MaxX))
	le.PutUint64(b[25:], math.Float64bits(q.Window.MaxY))
	le.PutUint64(b[33:], math.Float64bits(q.Center.X))
	le.PutUint64(b[41:], math.Float64bits(q.Center.Y))
	le.PutUint64(b[49:], math.Float64bits(q.Dist))
	le.PutUint64(b[57:], uint64(q.K))
	return string(b[:])
}

// cellOf maps the query to its hotness cell: the KD partition cell owning
// the query's reference point, mirroring the router's shard routing.
func (e *Edge) cellOf(q query.Query) int {
	pt := q.Center
	if q.Kind == query.Range {
		pt = q.Window.Center()
	}
	c := e.cfg.Locate(pt)
	if c < 0 || c >= len(e.cells) {
		return 0
	}
	return c
}

// needSync reports whether evidence of an un-synced upstream change exists
// or the time-based sync floor expired.
func (e *Edge) needSync() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.needSyncLocked()
}

func (e *Edge) needSyncLocked() bool {
	if e.dirty {
		return true
	}
	return e.cfg.SyncInterval > 0 && time.Since(e.lastSync) >= e.cfg.SyncInterval
}

// lookup serves a cacheable request from the cache when both the entry and
// the client's stamp are current. It also files the request into the cell's
// hotness window — demand is counted whether or not it hits.
func (e *Edge) lookup(req *wire.Request) *wire.Response {
	key := cacheKey(req.Q)
	cell := e.cellOf(req.Q)

	e.mu.Lock()
	defer e.mu.Unlock()
	e.touchLocked(cell)
	if e.dirty || e.inflight > 0 {
		e.stats.Misses.Add(1)
		return nil
	}
	if _, bad := e.tainted[req.Client]; bad {
		e.stats.Misses.Add(1)
		return nil
	}
	st, ok := e.stamps[req.Client]
	if !ok || st.state != e.state || st.epoch != req.Epoch {
		// The client has not yet been delivered the current window under
		// this edge state (or quotes an older epoch); the router must answer
		// so the invalidation protocol stays exact.
		e.stats.Misses.Add(1)
		return nil
	}
	ent := e.entries[key]
	if ent == nil {
		e.stats.Misses.Add(1)
		return nil
	}
	rootMBR := ent.rootMBR
	var vroot *wire.NodeRep
	if ent.stripped {
		// Substituting the current vroot rep requires one harvested under this
		// exact edge state, and the retention safety check must rule out any
		// current shard root the entry never visited reaching into the query.
		if !e.vrootOK || e.vrootState != e.state {
			e.stats.Misses.Add(1)
			return nil
		}
		if !e.retainedSafeLocked(ent) {
			// An unvisited shard grew into the query's reach: the cached
			// response may now miss results, and that shard's growth never
			// touches the entry's dependency set — drop now so the forward
			// this miss causes re-admits fresh content with full deps.
			e.dropLocked(ent)
			e.stats.Invalidations.Add(1)
			e.stats.Misses.Add(1)
			return nil
		}
		vroot = &e.vroot
		rootMBR = e.vrootMBR
	}
	e.cells[ent.cell].lru.MoveToBack(ent.elem)
	e.stats.Hits.Add(1)
	// The hit response is rebuilt fresh — the client owns it, and the echoed
	// epoch plus empty invalidation lists are byte-identical to the router's
	// answer for a current client (epoch commits dedup unchanged vectors).
	index := copyIndex(ent.index)
	if vroot != nil {
		// Re-append where the router put it: last.
		index = append(index, wire.NodeRep{
			ID:    vroot.ID,
			Level: vroot.Level,
			Elems: append([]wire.CutElem(nil), vroot.Elems...),
		})
	}
	return &wire.Response{
		Objects: append([]wire.ObjectRep(nil), ent.objects...),
		Pairs:   append([][2]rtree.ObjectID(nil), ent.pairs...),
		Index:   index,
		K:       ent.k,
		RootID:  ent.rootID,
		RootMBR: rootMBR,
		Epoch:   req.Epoch,
	}
}

// forward relays a request upstream, harvesting the response: the client's
// stamp is refreshed, upstream-change evidence flags a sync, and cacheable
// responses from hot cells are admitted.
func (e *Edge) forward(req *wire.Request) (*wire.Response, error) {
	e.mu.Lock()
	issueState := e.state
	e.mu.Unlock()

	e.stats.Forwards.Add(1)
	resp, err := e.cfg.Upstream.RoundTrip(req)
	if err != nil {
		return nil, err
	}

	e.mu.Lock()
	_, bad := e.tainted[req.Client]
	switch {
	case resp.FlushAll:
		// The router flushed this client (log horizon, failover, restart):
		// treat it as evidence the world moved and re-sync before serving
		// hits again.
		delete(e.stamps, req.Client)
		e.dirty = true
	case bad:
		// Tainted clients never hit; no stamp needed.
	case issueState == e.state && e.inflight == 0 && !e.dirty:
		if st, ok := e.stamps[req.Client]; ok && st.state == e.state &&
			st.epoch == req.Epoch && resp.Epoch != req.Epoch {
			// A client the edge believed fully current was handed a newer
			// epoch: the cluster advanced without us (out-of-band writer).
			e.dirty = true
		} else {
			if len(e.stamps) >= maxStamps {
				for evict := range e.stamps {
					delete(e.stamps, evict)
					break
				}
			}
			e.stamps[req.Client] = stamp{epoch: resp.Epoch, state: e.state}
			e.harvestVrootLocked(resp)
			if cacheable(req) {
				e.admitLocked(req, resp, issueState)
			}
		}
	}
	e.mu.Unlock()
	// The caller owns resp. When the upstream pools responses the edge must
	// not release this one — only copies were taken above.
	return resp, nil
}

// harvestVrootLocked captures the current virtual-root rep from a forwarded
// response that shipped index, pinning it to the current edge state. Called
// only under the same gate that refreshes client stamps (state unchanged
// across the round trip, no inflight updates, no pending sync evidence), so
// the rep describes the same stable upstream state the stamps do.
func (e *Edge) harvestVrootLocked(resp *wire.Response) {
	if e.vrootOK && e.vrootState == e.state {
		return
	}
	n := len(resp.Index)
	if n == 0 || resp.Index[n-1].ID != resp.RootID {
		return
	}
	src := &resp.Index[n-1]
	e.vroot = wire.NodeRep{
		ID:    src.ID,
		Level: src.Level,
		Elems: append([]wire.CutElem(nil), src.Elems...),
	}
	e.vrootMBR = resp.RootMBR
	e.vrootState = e.state
	e.vrootOK = true
}

// retainedSafeLocked re-checks a stripped entry against the *current*
// virtual-root children: the entry was admitted knowing only the shards it
// visited, and a shard root that has since grown into the query's reach
// (window overlap for range, contribution radius for kNN) could now hold
// results the cached response misses — without ever touching the entry's
// dependency set. Any current child the entry did not visit and cannot
// exclude geometrically forces a forward.
func (e *Edge) retainedSafeLocked(ent *entry) bool {
	for i := range e.vroot.Elems {
		el := &e.vroot.Elems[i]
		if el.Child == 0 {
			continue
		}
		if _, visited := ent.deps[el.Child]; visited {
			continue
		}
		switch ent.q.Kind {
		case query.Range:
			if ent.q.Window.Intersects(el.MBR) {
				return false
			}
		case query.KNN:
			if geom.MinDist(ent.q.Center, el.MBR) <= ent.rk {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// touchLocked files one cacheable arrival into the cell's hotness window,
// rolling the EWMA when the window fills.
func (e *Edge) touchLocked(cell int) {
	e.cells[cell].cur++
	e.reqCount++
	if e.reqCount >= e.cfg.Window {
		e.reqCount = 0
		for i := range e.cells {
			cs := &e.cells[i]
			cs.hot = e.cfg.Alpha*cs.cur + (1-e.cfg.Alpha)*cs.hot
			cs.cur = 0
		}
	}
}

// hotLocked is the cell's current demand estimate: the EWMA plus the
// still-accumulating window, so a flash crowd can cross the admission
// threshold mid-window instead of a full window late.
func (e *Edge) hotLocked(cell int) float64 {
	return e.cells[cell].hot + e.cells[cell].cur
}

// admitLocked materializes a forwarded response if its cell is hot enough,
// then enforces the byte budget.
func (e *Edge) admitLocked(req *wire.Request, resp *wire.Response, issueState uint64) {
	if issueState != e.state || e.inflight > 0 || e.dirty {
		return
	}
	cell := e.cellOf(req.Q)
	if e.hotLocked(cell) < e.cfg.AdmitThreshold {
		return
	}
	key := cacheKey(req.Q)
	if e.entries[key] != nil {
		return
	}
	ent := &entry{
		key:     key,
		cell:    cell,
		objects: append([]wire.ObjectRep(nil), resp.Objects...),
		pairs:   append([][2]rtree.ObjectID(nil), resp.Pairs...),
		index:   copyIndex(resp.Index),
		k:       resp.K,
		rootID:  resp.RootID,
		rootMBR: resp.RootMBR,
		q:       req.Q,
		deps:    make(map[rtree.NodeID]struct{}, len(resp.Index)),
		objDeps: make(map[rtree.ObjectID]struct{}, len(resp.Objects)),
	}
	// Strip the virtual-root rep (the router appends it last): its content
	// changes with every shard-root move while its id never does, so keeping
	// it — in the payload or the dependency set — would tie the entry's life
	// to the whole cluster instead of the nodes it actually visited. The
	// current rep is substituted back at serve time.
	if n := len(ent.index); n > 0 && ent.index[n-1].ID == ent.rootID {
		ent.index = ent.index[:n-1]
		ent.stripped = true
		if req.Q.Kind == query.KNN {
			ent.rk = math.Inf(1)
			if req.Q.K > 0 && len(ent.objects) >= req.Q.K {
				ent.rk = 0
				for i := range ent.objects {
					if d := geom.MinDist(req.Q.Center, ent.objects[i].MBR); d > ent.rk {
						ent.rk = d
					}
				}
			}
		}
	}
	for i := range ent.index {
		ent.deps[ent.index[i].ID] = struct{}{}
	}
	for i := range ent.objects {
		ent.objDeps[ent.objects[i].ID] = struct{}{}
	}
	ent.bytes = e.cfg.Sizes.ResponseBytes(resp)
	e.entries[key] = ent
	ent.elem = e.cells[cell].lru.PushBack(ent)
	e.bytes += ent.bytes
	e.stats.Admissions.Add(1)
	e.stats.Bytes.Store(int64(e.bytes))
	e.stats.Entries.Store(int64(len(e.entries)))
	e.evictLocked()
}

// evictLocked enforces the byte budget: while over, drop the LRU entry of
// the coldest cell that still holds entries.
func (e *Edge) evictLocked() {
	for e.bytes > e.cfg.ByteBudget {
		victim := -1
		var coldest float64
		for i := range e.cells {
			if e.cells[i].lru.Len() == 0 {
				continue
			}
			h := e.hotLocked(i)
			if victim < 0 || h < coldest {
				victim, coldest = i, h
			}
		}
		if victim < 0 {
			return
		}
		ent := e.cells[victim].lru.Front().Value.(*entry)
		e.dropLocked(ent)
		e.stats.Evictions.Add(1)
	}
}

func (e *Edge) dropLocked(ent *entry) {
	delete(e.entries, ent.key)
	e.cells[ent.cell].lru.Remove(ent.elem)
	e.bytes -= ent.bytes
	e.stats.Bytes.Store(int64(e.bytes))
	e.stats.Entries.Store(int64(len(e.entries)))
}

func (e *Edge) taintLocked(id wire.ClientID) {
	if _, ok := e.tainted[id]; ok {
		return
	}
	if len(e.tainted) >= maxStamps {
		for evict := range e.tainted {
			delete(e.tainted, evict)
			break
		}
	}
	e.tainted[id] = struct{}{}
	delete(e.stamps, id)
}

// roundTripUpdate relays an update batch and absorbs its consequences
// before releasing the ack: the upstream applies updates synchronously with
// snapshot publish, so once the ack is out, every later direct query sees
// the new epoch — the edge must already have dropped what the batch
// touched. The ack itself carries everything needed: router update acks
// deliver the client's full crossing invalidation window (the single-node
// ExecuteUpdates contract, catalog-ing even shards the batch never touched),
// a superset of this batch's changes, so the edge applies it inline instead
// of paying a second serialized catalog round trip per update. While any
// update is in flight, hits and admissions pause.
func (e *Edge) roundTripUpdate(req *wire.Request) (*wire.Response, error) {
	e.mu.Lock()
	e.inflight++
	e.mu.Unlock()
	e.stats.Forwards.Add(1)
	e.stats.Updates.Add(1)

	resp, err := e.cfg.Upstream.RoundTrip(req)
	e.mu.Lock()
	if err != nil {
		e.dirty = true // upstream state unknown; re-sync before any hit
		e.inflight--
		e.mu.Unlock()
		return nil, err
	}
	e.applyAckLocked(req, resp)
	e.inflight--
	e.mu.Unlock()
	return resp, nil
}

// applyAckLocked applies the invalidation window piggybacked on a relayed
// update's ack. In sole-ingress deployments this keeps the subscription
// exact with zero extra round trips: every change flows through here, and
// each ack's crossing window covers at least its own batch. Changes by
// out-of-band writers are not swept here (the updating client may already
// have been delivered them directly) — those remain covered by the
// stamped-client epoch-mismatch evidence and the SyncInterval floor, as
// before. The edge's own catalog epoch is left untouched; a later
// evidence-driven sync may redeliver already-applied ids, and redundant
// drops are safe.
func (e *Edge) applyAckLocked(req *wire.Request, resp *wire.Response) {
	_, bad := e.tainted[req.Client]
	switch {
	case resp.FlushAll:
		// Log horizon or failover: drop everything and force a real catalog
		// sync to rebase the edge's own subscription epoch.
		for _, ent := range e.entriesList() {
			e.dropLocked(ent)
		}
		e.stats.Flushes.Add(1)
		e.state++
		delete(e.stamps, req.Client)
		e.dirty = true
	case len(resp.InvalidNodes) > 0 || len(resp.InvalidObjs) > 0:
		for _, ent := range e.entriesList() {
			if ent.hitBy(resp.InvalidNodes, resp.InvalidObjs) {
				e.dropLocked(ent)
				e.stats.Invalidations.Add(1)
			}
		}
		e.state++
		// The updating client was just delivered this exact window: it is
		// fully current under the new state and may hit immediately.
		if !bad {
			e.stamps[req.Client] = stamp{epoch: resp.Epoch, state: e.state}
		}
	default:
		// Every op was a no-op (nothing applied, empty window): the world
		// did not move, stamps stay valid.
		if !bad {
			e.stamps[req.Client] = stamp{epoch: resp.Epoch, state: e.state}
		}
	}
}

// sync issues one catalog round trip under the edge's client id and applies
// the delivered invalidation window: targeted drops for entries whose
// dependency set intersects it, a full flush on FlushAll, and a state bump
// whenever anything changed (staling every client stamp, so each client is
// forwarded once to pick up its own window before hitting again).
func (e *Edge) sync(force bool) error {
	e.syncMu.Lock()
	defer e.syncMu.Unlock()

	e.mu.Lock()
	if !force && !e.needSyncLocked() {
		// A racing sibling already synced while this caller waited.
		e.mu.Unlock()
		return nil
	}
	base := e.epoch
	e.mu.Unlock()

	e.stats.Syncs.Add(1)
	resp, err := e.cfg.Upstream.RoundTrip(&wire.Request{
		Client:  EdgeClientID,
		Catalog: true,
		Epoch:   base,
	})
	if err != nil {
		e.mu.Lock()
		e.dirty = true
		e.mu.Unlock()
		return err
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	defer e.releaseUpstream(resp)
	e.lastSync = time.Now()
	switch {
	case resp.FlushAll:
		for _, ent := range e.entriesList() {
			e.dropLocked(ent)
		}
		e.stats.Flushes.Add(1)
		e.state++
		e.epoch = resp.Epoch
		e.dirty = false
	case resp.Epoch != base || len(resp.InvalidNodes) > 0 || len(resp.InvalidObjs) > 0:
		for _, ent := range e.entriesList() {
			if ent.hitBy(resp.InvalidNodes, resp.InvalidObjs) {
				e.dropLocked(ent)
				e.stats.Invalidations.Add(1)
			}
		}
		e.state++
		e.epoch = resp.Epoch
		e.dirty = false
	default:
		// Nothing changed upstream; the evidence was a false alarm (e.g. a
		// racing sibling already absorbed it). Stamps stay valid.
		e.dirty = false
	}
	return nil
}

// Repartition rebinds the edge's hotness cells to a new KD partition after
// an elastic split or merge. Cell indices are router slots and slots are
// never renumbered, so surviving cells keep their hotness history and fresh
// slots start cold. Entries whose query now locates to a different cell were
// admitted under a cut that no longer exists — a split moved part of their
// cell's region to a new shard — so they are dropped and must re-earn
// admission under the new topology. Retained entries stay safe through the
// usual machinery: the topology change's crossing window (split) or FlushAll
// (merge) arrives on the next catalog sync, which the dirty mark forces.
func (e *Edge) Repartition(locate func(geom.Point) int, cells int) error {
	if locate == nil || cells <= 0 {
		return errors.New("edge: Repartition needs a locate function and a positive cell count")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg.Locate = locate
	for len(e.cells) < cells {
		e.cells = append(e.cells, cellState{lru: list.New()})
	}
	for _, ent := range e.entriesList() {
		if e.cellOf(ent.q) != ent.cell {
			e.dropLocked(ent)
			e.stats.Invalidations.Add(1)
		}
	}
	e.dirty = true
	return nil
}

// entriesList snapshots the entry set so drops during iteration are safe.
func (e *Edge) entriesList() []*entry {
	out := make([]*entry, 0, len(e.entries))
	for _, ent := range e.entries {
		out = append(out, ent)
	}
	return out
}

// hitBy reports whether an invalidation window touches the entry's
// dependency set. An update changing this query's result set touches some
// visited node's entries (its lowest MBR-stable ancestor at the latest),
// putting that node id in the window; object removals are caught by the
// object ids directly. The one ancestor a stripped entry does not track is
// the virtual root itself — an update entirely inside a shard the entry
// never visited surfaces only there — which is why stripped hits also pass
// retainedSafeLocked against the current vroot children.
func (ent *entry) hitBy(nodes []rtree.NodeID, objs []rtree.ObjectID) bool {
	for _, id := range nodes {
		if _, ok := ent.deps[id]; ok {
			return true
		}
	}
	for _, id := range objs {
		if _, ok := ent.objDeps[id]; ok {
			return true
		}
	}
	return false
}

// copyIndex deep-copies a shipped supporting index (CutElems are value
// types; bpt codes are immutable strings).
func copyIndex(src []wire.NodeRep) []wire.NodeRep {
	if src == nil {
		return nil
	}
	out := make([]wire.NodeRep, len(src))
	for i := range src {
		out[i] = src[i]
		out[i].Elems = append([]wire.CutElem(nil), src[i].Elems...)
	}
	return out
}
