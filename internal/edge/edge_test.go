package edge

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// change is one epoch's worth of upstream mutation: what a catalog quoting
// an older epoch must have delivered in its invalidation window.
type change struct {
	epoch uint64
	nodes []rtree.NodeID
	objs  []rtree.ObjectID
}

// fakeUpstream is a scripted cluster: it answers catalogs the way the real
// router does — the invalidation window is the union of every change after
// the client's quoted epoch, not a one-shot global queue — and queries with
// a fixed per-cell payload. It counts query forwards so tests can assert
// exactly which requests reached it.
type fakeUpstream struct {
	epoch    uint64
	log      []change
	flushAll bool
	queries  int
	catalogs int
	// vrootElems is the current virtual-root cut, shipped as the last index
	// rep exactly like the router's synthesized vroot; tests mutate it to
	// model shard-root growth.
	vrootElems []wire.CutElem
}

func (f *fakeUpstream) RoundTrip(req *wire.Request) (*wire.Response, error) {
	if req.Catalog {
		f.catalogs++
		resp := &wire.Response{
			Epoch:    f.epoch,
			FlushAll: f.flushAll,
			RootID:   1,
			RootMBR:  geom.Rect{MaxX: 1, MaxY: 1},
		}
		for _, ch := range f.log {
			if ch.epoch > req.Epoch {
				resp.InvalidNodes = append(resp.InvalidNodes, ch.nodes...)
				resp.InvalidObjs = append(resp.InvalidObjs, ch.objs...)
			}
		}
		return resp, nil
	}
	f.queries++
	// Payload derived from the query center so distinct tiles cache
	// distinct dependency sets: node id 100+cellX, object id 200+cellX.
	cx := rtree.NodeID(100)
	ox := rtree.ObjectID(200)
	if pt := refPoint(req.Q); pt.X >= 0.5 {
		cx, ox = 101, 201
	}
	return &wire.Response{
		Objects: []wire.ObjectRep{{ID: ox, MBR: geom.Rect{MaxX: 0.1, MaxY: 0.1}, Size: 64}},
		Index:   []wire.NodeRep{{ID: cx}, {ID: 1, Level: 1, Elems: f.vrootElems}},
		RootID:  1,
		RootMBR: geom.Rect{MaxX: 1, MaxY: 1},
		Epoch:   f.epoch,
	}, nil
}

func refPoint(q query.Query) geom.Point {
	if q.Kind == query.Range {
		return q.Window.Center()
	}
	return q.Center
}

// bump records one upstream change: the epoch advances and catalogs from
// clients behind it will carry the given window.
func (f *fakeUpstream) bump(nodes []rtree.NodeID, objs []rtree.ObjectID) {
	f.epoch++
	f.log = append(f.log, change{epoch: f.epoch, nodes: nodes, objs: objs})
}

func newTestEdge(t *testing.T, f *fakeUpstream, mut func(*Config)) *Edge {
	t.Helper()
	cfg := Config{
		Upstream: f,
		Locate: func(p geom.Point) int {
			if p.X >= 0.5 {
				return 1
			}
			return 0
		},
		Cells:          2,
		AdmitThreshold: 1,
		Window:         1 << 20, // never roll mid-test; cur alone drives hotness
	}
	if mut != nil {
		mut(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func leftQ() query.Query {
	return query.NewRange(geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2})
}
func rightQ() query.Query { return query.NewKNN(geom.Point{X: 0.8, Y: 0.8}, 3) }

// roundTrip drives one client query and returns the response epoch so the
// caller can echo it like a real protocol client.
func roundTrip(t *testing.T, e *Edge, id wire.ClientID, epoch uint64, q query.Query) uint64 {
	t.Helper()
	resp, err := e.RoundTrip(&wire.Request{Client: id, Epoch: epoch, Q: q})
	if err != nil {
		t.Fatal(err)
	}
	return resp.Epoch
}

func TestAdmissionThreshold(t *testing.T) {
	f := &fakeUpstream{epoch: 3}
	e := newTestEdge(t, f, func(c *Config) { c.AdmitThreshold = 3 })

	// Arrivals 1 and 2 leave the cell below threshold: forwarded, nothing
	// materialized. Arrival 3 crosses it (hotLocked counts the in-progress
	// window) and admits; arrival 4 hits.
	var ep uint64
	for i := 0; i < 3; i++ {
		ep = roundTrip(t, e, 7, ep, leftQ())
	}
	if got := e.Stats().Admissions.Load(); got != 1 {
		t.Fatalf("admissions after 3 arrivals = %d, want 1 (threshold 3)", got)
	}
	before := f.queries
	roundTrip(t, e, 7, ep, leftQ())
	if f.queries != before {
		t.Fatalf("4th arrival was forwarded (upstream queries %d -> %d), want cache hit", before, f.queries)
	}
	if e.Stats().Hits.Load() != 1 {
		t.Fatalf("hits = %d, want 1", e.Stats().Hits.Load())
	}
}

func TestHitRequiresCurrentStamp(t *testing.T) {
	f := &fakeUpstream{epoch: 3}
	e := newTestEdge(t, f, nil)

	ep := roundTrip(t, e, 1, 0, leftQ()) // stamps client 1, admits
	// Client 2 has never been forwarded under this state: even though the
	// entry exists, it must be forwarded once to pick up its own window.
	before := f.queries
	ep2 := roundTrip(t, e, 2, ep, leftQ())
	if f.queries != before+1 {
		t.Fatal("unstamped client was served from cache")
	}
	// Now both are stamped and current: hits.
	for _, c := range []struct {
		id wire.ClientID
		ep uint64
	}{{1, ep}, {2, ep2}} {
		before = f.queries
		roundTrip(t, e, c.id, c.ep, leftQ())
		if f.queries != before {
			t.Fatalf("stamped client %d missed", c.id)
		}
	}
	// A client quoting a stale epoch must reach the router for its window.
	before = f.queries
	roundTrip(t, e, 1, ep-1, leftQ())
	if f.queries != before+1 {
		t.Fatal("stale-epoch client was served from cache")
	}
}

func TestInvalidationDropsByDeps(t *testing.T) {
	f := &fakeUpstream{epoch: 1}
	e := newTestEdge(t, f, nil)

	epL := roundTrip(t, e, 1, 0, leftQ())  // deps {100} (vroot stripped), obj {200}
	epR := roundTrip(t, e, 2, 0, rightQ()) // deps {101}, obj {201}
	if e.Stats().Entries.Load() != 2 {
		t.Fatalf("entries = %d, want 2", e.Stats().Entries.Load())
	}

	// An upstream change touching node 100 only: the left entry must drop,
	// the right one survives — but every stamp is staled by the state bump.
	f.bump([]rtree.NodeID{100}, nil)
	if err := e.sync(true); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Invalidations.Load(); got != 1 {
		t.Fatalf("invalidations = %d, want 1 (left entry only)", got)
	}
	if e.Stats().Entries.Load() != 1 {
		t.Fatalf("entries after window = %d, want 1", e.Stats().Entries.Load())
	}

	// The surviving entry does not hit until its client is re-forwarded
	// once under the new state.
	before := f.queries
	epR = roundTrip(t, e, 2, epR, rightQ())
	if f.queries != before+1 {
		t.Fatal("staled stamp was honored after invalidation window")
	}
	before = f.queries
	roundTrip(t, e, 2, epR, rightQ())
	if f.queries != before {
		t.Fatal("re-stamped client missed on surviving entry")
	}

	// Object-id windows invalidate too: drop the right entry via object 201.
	f.bump(nil, []rtree.ObjectID{201})
	if err := e.sync(true); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Entries.Load() != 0 {
		t.Fatalf("entries after object window = %d, want 0", e.Stats().Entries.Load())
	}
	_ = epL
}

func TestFlushAllDropsEverything(t *testing.T) {
	f := &fakeUpstream{epoch: 1}
	e := newTestEdge(t, f, nil)
	roundTrip(t, e, 1, 0, leftQ())
	roundTrip(t, e, 2, 0, rightQ())

	f.epoch++
	f.flushAll = true
	if err := e.sync(true); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Entries.Load() != 0 || e.Stats().Flushes.Load() != 1 {
		t.Fatalf("after FlushAll: entries=%d flushes=%d, want 0/1",
			e.Stats().Entries.Load(), e.Stats().Flushes.Load())
	}
}

func TestByteBudgetEvictsColdestCell(t *testing.T) {
	f := &fakeUpstream{epoch: 1}
	// Budget sized to exactly one entry (both cells cache identical payload
	// shapes): the second admission must evict from the coldest cell.
	one := wire.DefaultSizeModel().ResponseBytes(&wire.Response{
		Objects: []wire.ObjectRep{{ID: 200, MBR: geom.Rect{MaxX: 0.1, MaxY: 0.1}, Size: 64}},
		Index:   []wire.NodeRep{{ID: 100}, {ID: 1}},
	})
	e := newTestEdge(t, f, func(c *Config) { c.ByteBudget = one })

	ep := roundTrip(t, e, 1, 0, leftQ())
	if e.Stats().Entries.Load() != 1 {
		t.Fatalf("entries = %d, want 1", e.Stats().Entries.Load())
	}
	// Heat the right cell hotter than the left, then admit there: the left
	// entry is the eviction victim.
	for i := 0; i < 3; i++ {
		ep = roundTrip(t, e, 1, ep, rightQ())
	}
	if e.Stats().Evictions.Load() == 0 {
		t.Fatalf("no evictions under a 1-byte budget (entries=%d bytes=%d)",
			e.Stats().Entries.Load(), e.Stats().Bytes.Load())
	}
	// The survivor must be the hot right-cell entry; the cold left one went.
	before := f.queries
	roundTrip(t, e, 1, ep, rightQ())
	if f.queries != before {
		t.Fatal("hot right-cell entry was the eviction victim")
	}
	before = f.queries
	roundTrip(t, e, 1, ep, leftQ())
	if f.queries != before+1 {
		t.Fatal("cold left-cell entry survived eviction")
	}
}

func TestTaintedClientNeverHits(t *testing.T) {
	f := &fakeUpstream{epoch: 1}
	e := newTestEdge(t, f, nil)

	ep := roundTrip(t, e, 1, 0, leftQ()) // admit via clean client
	roundTrip(t, e, 1, ep, leftQ())      // sanity: clean client hits
	if e.Stats().Hits.Load() != 1 {
		t.Fatalf("clean client hits = %d, want 1", e.Stats().Hits.Load())
	}

	// Client 9 hands over page-caching state once: tainted forever after.
	resp, err := e.RoundTrip(&wire.Request{Client: 9, Epoch: 0, Q: leftQ(), CachedIDs: []rtree.ObjectID{200}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		before := f.queries
		resp, err = e.RoundTrip(&wire.Request{Client: 9, Epoch: resp.Epoch, Q: leftQ()})
		if err != nil {
			t.Fatal(err)
		}
		if f.queries != before+1 {
			t.Fatalf("tainted client served from cache on clean query %d", i)
		}
	}
}

func TestOutOfBandWriterDetected(t *testing.T) {
	f := &fakeUpstream{epoch: 1}
	e := newTestEdge(t, f, nil)

	ep := roundTrip(t, e, 1, 0, leftQ())
	roundTrip(t, e, 1, ep, leftQ())
	if e.Stats().Hits.Load() != 1 {
		t.Fatal("expected a warm hit before the out-of-band write")
	}

	// A writer bypasses the edge: the upstream epoch advances without any
	// edge-relayed update. The next forwarded response for a current-stamped
	// client reveals the gap (resp.Epoch != req.Epoch) and must flag a sync;
	// after that sync the stale entry is gone.
	f.bump([]rtree.NodeID{100}, nil)
	roundTrip(t, e, 2, 0, rightQ()) // fresh client forward observes the new epoch? stamps under old state
	// Client 1 still stamped current: its forwarded catalog reveals the gap.
	resp, err := e.RoundTrip(&wire.Request{Client: 1, Epoch: ep, Catalog: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Epoch == ep {
		t.Fatal("test premise broken: upstream epoch did not advance")
	}
	// The edge must now refuse hits until it has re-synced and the client
	// re-stamped; the left entry (dep node 100) must be dropped by that sync.
	before := f.queries
	resp2, err := e.RoundTrip(&wire.Request{Client: 1, Epoch: resp.Epoch, Q: leftQ()})
	if err != nil {
		t.Fatal(err)
	}
	if f.queries != before+1 {
		t.Fatal("served a hit from an entry staled by an out-of-band writer")
	}
	_ = resp2
	if e.Stats().Invalidations.Load() == 0 {
		t.Fatal("out-of-band window never invalidated the dependent entry")
	}
}

// TestVrootOnlyWindowRetainsEntries pins the point of stripping: every
// update moves some shard root, so every client window carries the virtual
// root's id — if entries depended on it, one update would flush the whole
// cache. A window touching only the vroot must leave entries standing, and
// hits must resume after one re-stamping forward.
func TestVrootOnlyWindowRetainsEntries(t *testing.T) {
	f := &fakeUpstream{epoch: 1}
	e := newTestEdge(t, f, nil)

	ep := roundTrip(t, e, 1, 0, leftQ())
	roundTrip(t, e, 1, ep, leftQ())
	if e.Stats().Hits.Load() != 1 {
		t.Fatal("expected a warm hit before the vroot-only window")
	}

	// An update entirely inside a shard this query never visited: the only
	// id the crossing window carries is the virtual root's.
	f.bump([]rtree.NodeID{1}, nil)
	if err := e.sync(true); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Invalidations.Load(); got != 0 {
		t.Fatalf("invalidations = %d, want 0 — vroot-only window must not drop stripped entries", got)
	}
	if e.Stats().Entries.Load() != 1 {
		t.Fatalf("entries = %d, want 1 after vroot-only window", e.Stats().Entries.Load())
	}

	// The state bump staled every stamp and the harvested vroot rep: one
	// forward re-stamps the client and re-harvests, then hits resume on the
	// retained entry.
	ep = roundTrip(t, e, 1, ep, leftQ())
	before := f.queries
	roundTrip(t, e, 1, ep, leftQ())
	if f.queries != before {
		t.Fatal("retained entry did not serve after stamp refresh")
	}
}

// TestRetentionSafetyChecksCurrentVrootChildren drives the one hazard
// stripping opens: a shard the query never visited growing into its reach
// surfaces only in the vroot rep. A current vroot child outside the entry's
// deps that cannot be excluded geometrically must force a forward (and drop
// the suspect entry); one that can be excluded must not cost the hit.
func TestRetentionSafetyChecksCurrentVrootChildren(t *testing.T) {
	f := &fakeUpstream{epoch: 1}
	f.vrootElems = []wire.CutElem{
		{Child: 100, MBR: geom.Rect{MaxX: 0.5, MaxY: 1}},
		{Child: 101, MBR: geom.Rect{MinX: 0.5, MaxX: 1, MaxY: 1}},
	}
	e := newTestEdge(t, f, nil)

	ep := roundTrip(t, e, 1, 0, leftQ()) // range over (0.1,0.1)-(0.2,0.2), deps {100}

	// Phase 1: an unvisited shard root appears far from the query window —
	// geometrically excludable, so the retained entry keeps hitting.
	f.vrootElems = append(f.vrootElems,
		wire.CutElem{Child: 103, MBR: geom.Rect{MinX: 2, MinY: 2, MaxX: 3, MaxY: 3}})
	f.bump([]rtree.NodeID{1}, nil)
	if err := e.sync(true); err != nil {
		t.Fatal(err)
	}
	ep = roundTrip(t, e, 1, ep, leftQ()) // re-stamp + harvest the grown vroot
	before := f.queries
	roundTrip(t, e, 1, ep, leftQ())
	if f.queries != before {
		t.Fatal("disjoint unvisited vroot child blocked a safe hit")
	}

	// Phase 2: an unvisited shard root now overlaps the window — it may hold
	// results the cached response misses, so the hit must not be served and
	// the entry must drop for re-admission.
	f.vrootElems = append(f.vrootElems,
		wire.CutElem{Child: 102, MBR: geom.Rect{MinX: 0.05, MinY: 0.05, MaxX: 0.3, MaxY: 0.3}})
	f.bump([]rtree.NodeID{1}, nil)
	if err := e.sync(true); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Entries.Load() != 1 {
		t.Fatal("entry dropped by vroot-only window despite disjoint deps")
	}
	ep = roundTrip(t, e, 1, ep, leftQ()) // re-stamp + harvest
	before = f.queries
	roundTrip(t, e, 1, ep, leftQ())
	if f.queries != before+1 {
		t.Fatal("served a hit despite an unvisited vroot child overlapping the window")
	}

	// A kNN entry short of K keeps an unbounded contribution radius: any
	// unvisited current child at all must force the forward.
	epR := roundTrip(t, e, 2, ep, rightQ()) // K=3, 1 result => rk = +Inf
	before = f.queries
	resp, err := e.RoundTrip(&wire.Request{Client: 2, Epoch: epR, Q: rightQ()})
	if err != nil {
		t.Fatal(err)
	}
	if f.queries != before+1 {
		t.Fatal("served a short-of-K kNN hit despite unvisited vroot children")
	}
	_ = resp
}

// TestRepartitionDropsMovedCellEntries pins the edge's behavior across an
// elastic topology change: entries whose query re-locates to a different
// cell under the new cut must drop (they were admitted under a boundary that
// no longer exists), entries that keep their cell must survive and keep
// hitting, and the moved query must re-earn admission in the fresh cell.
func TestRepartitionDropsMovedCellEntries(t *testing.T) {
	f := &fakeUpstream{epoch: 1}
	e := newTestEdge(t, f, nil)

	if err := e.Repartition(nil, 0); err == nil {
		t.Fatal("nil locate accepted")
	}

	epL := roundTrip(t, e, 1, 0, leftQ())  // cell 0
	epR := roundTrip(t, e, 2, 0, rightQ()) // cell 1
	if e.Stats().Entries.Load() != 2 {
		t.Fatalf("entries = %d, want 2", e.Stats().Entries.Load())
	}

	// A split of cell 0 at x=0.12: the sub-region holding the left query's
	// center moves to fresh cell 2. The left entry was admitted under the old
	// cut and must drop; the right entry keeps its cell and survives.
	err := e.Repartition(func(p geom.Point) int {
		switch {
		case p.X >= 0.5:
			return 1
		case p.X >= 0.12:
			return 2
		default:
			return 0
		}
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Entries.Load(); got != 1 {
		t.Fatalf("entries after repartition = %d, want 1", got)
	}
	if got := e.Stats().Invalidations.Load(); got != 1 {
		t.Fatalf("invalidations = %d, want 1 (moved-cell entry)", got)
	}

	// The moved-cell query is forwarded again — its entry is gone — and the
	// forward re-admits it under the fresh cell, where it hits.
	before := f.queries
	epL = roundTrip(t, e, 1, epL, leftQ())
	if f.queries != before+1 {
		t.Fatal("dropped moved-cell entry was still served")
	}
	before = f.queries
	roundTrip(t, e, 1, epL, leftQ())
	if f.queries != before {
		t.Fatal("re-admitted entry in the fresh cell did not hit")
	}

	// The retained right entry keeps hitting: the forced sync after the
	// repartition found no upstream change, so stamps stayed valid.
	before = f.queries
	roundTrip(t, e, 2, epR, rightQ())
	if f.queries != before {
		t.Fatal("retained entry lost its hit after repartition")
	}
}

func TestCacheableExcludesStatefulRequests(t *testing.T) {
	hand := []query.QueuedElem{{}}
	cases := []struct {
		name string
		req  *wire.Request
		want bool
	}{
		{"cold range", &wire.Request{Q: leftQ()}, true},
		{"cold knn", &wire.Request{Q: rightQ()}, true},
		{"catalog", &wire.Request{Catalog: true}, false},
		{"noindex", &wire.Request{Q: leftQ(), NoIndex: true}, false},
		{"handover", &wire.Request{Q: leftQ(), H: hand}, false},
		{"cachedids", &wire.Request{Q: leftQ(), CachedIDs: []rtree.ObjectID{1}}, false},
		{"semwindows", &wire.Request{Q: leftQ(), SemWindows: []geom.Rect{{}}}, false},
		{"fmr", &wire.Request{Q: leftQ(), HasFMR: true}, false},
		{"update", &wire.Request{Updates: []wire.UpdateOp{{}}}, false},
		{"join", &wire.Request{Q: query.Query{Kind: query.Join}}, false},
	}
	for _, tc := range cases {
		if got := cacheable(tc.req); got != tc.want {
			t.Errorf("cacheable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}
