package edge

import (
	"fmt"
	"sync/atomic"

	"repro/internal/wire"
)

// UpstreamPool is a small pool of pipelined upstream connections: forwarded
// requests are spread round-robin so one slow round trip never head-of-line
// blocks the edge's whole forward path, while the connection count stays
// far below one-per-client (the point of terminating clients at the edge).
// Each member transport must itself be safe for concurrent RoundTrip calls
// (wire.BinaryClientConn is).
type UpstreamPool struct {
	conns []wire.Transport
	next  atomic.Uint64
}

// NewUpstreamPool dials n upstream connections. On any dial error the
// already-opened connections are closed and the error returned.
func NewUpstreamPool(n int, dial func() (wire.Transport, error)) (*UpstreamPool, error) {
	if n <= 0 {
		n = 2
	}
	p := &UpstreamPool{}
	for i := 0; i < n; i++ {
		t, err := dial()
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("edge: upstream dial %d/%d: %w", i+1, n, err)
		}
		p.conns = append(p.conns, t)
	}
	return p, nil
}

// RoundTrip implements wire.Transport.
func (p *UpstreamPool) RoundTrip(req *wire.Request) (*wire.Response, error) {
	i := p.next.Add(1) % uint64(len(p.conns))
	return p.conns[i].RoundTrip(req)
}

// Close closes every pooled connection that exposes a Close method.
func (p *UpstreamPool) Close() error {
	var first error
	for _, t := range p.conns {
		if cl, ok := t.(interface{ Close() error }); ok {
			if err := cl.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
