package server

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// TestSnapshotNoTornReads is the snapshot-isolation equivalence test: a
// writer goroutine flips a flock of tracked objects between a left and a
// right band, one ApplyUpdates batch per flip, while querier goroutines scan
// the whole space. Every response must be internally consistent with some
// published epoch: the epoch is always a batch boundary (snapshots are
// published per batch, never mid-batch), and all tracked objects sit on the
// single side that epoch implies — a query that saw half a batch would mix
// sides or miss objects. Run under -race this also proves the lock-free
// pin/publish protocol clean.
func TestSnapshotNoTornReads(t *testing.T) {
	const (
		tracked  = 64
		fillers  = 2000
		queriers = 8
		queries  = 150
	)
	trackedRect := func(i int, side int) geom.Rect {
		x := 0.15
		if side == 1 {
			x = 0.85
		}
		y := 0.05 + 0.9*float64(i)/float64(tracked)
		return geom.RectFromCenter(geom.Pt(x, y), 0.01, 0.01)
	}

	r := rand.New(rand.NewSource(400))
	items := make([]rtree.Item, 0, tracked+fillers)
	for i := 0; i < tracked; i++ {
		items = append(items, rtree.Item{Obj: rtree.ObjectID(i + 1), MBR: trackedRect(i, 0)})
	}
	for i := 0; i < fillers; i++ {
		items = append(items, rtree.Item{
			Obj: rtree.ObjectID(1000 + i),
			MBR: geom.RectFromCenter(geom.Pt(0.3+0.4*r.Float64(), r.Float64()), 0.01, 0.01),
		})
	}
	tree := rtree.BulkLoad(rtree.Params{MaxEntries: 8}, items, 0.7)
	srv := New(tree, func(rtree.ObjectID) int { return 1000 }, Config{InitialD: 1})
	defer srv.Close()

	stop := make(chan struct{})
	errs := make(chan error, queriers+1)

	var mover sync.WaitGroup
	mover.Add(1)
	go func() {
		defer mover.Done()
		side := 0
		ops := make([]wire.UpdateOp, tracked)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < tracked; i++ {
				ops[i] = wire.UpdateOp{
					Kind: wire.UpdateMove,
					Obj:  rtree.ObjectID(i + 1),
					From: trackedRect(i, side),
					To:   trackedRect(i, 1-side),
				}
			}
			res := srv.ApplyUpdates(ops, nil)
			for i, ok := range res {
				if !ok {
					select {
					case errs <- fmt.Errorf("flip move %d failed", i):
					default:
					}
					return
				}
			}
			side = 1 - side
		}
	}()

	all := query.NewRange(geom.R(0, 0, 1, 1))
	var wg sync.WaitGroup
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var lastEpoch uint64
			for i := 0; i < queries; i++ {
				req := &wire.Request{Client: wire.ClientID(g + 1), Q: all, NoIndex: i%2 == 0}
				resp, _ := srv.Execute(req)
				if resp.Epoch%tracked != 0 {
					errs <- fmt.Errorf("querier %d: epoch %d is not a batch boundary", g, resp.Epoch)
					return
				}
				if resp.Epoch < lastEpoch {
					errs <- fmt.Errorf("querier %d: epoch went backwards (%d < %d)", g, resp.Epoch, lastEpoch)
					return
				}
				lastEpoch = resp.Epoch
				wantRight := (resp.Epoch/tracked)%2 == 1
				seen := 0
				for _, o := range resp.Objects {
					if o.ID > tracked {
						continue
					}
					seen++
					right := o.MBR.Center().X > 0.5
					if right != wantRight {
						errs <- fmt.Errorf("querier %d: torn read at epoch %d: object %d on the %v side",
							g, resp.Epoch, o.ID, right)
						return
					}
				}
				if seen != tracked {
					errs <- fmt.Errorf("querier %d: epoch %d saw %d of %d tracked objects", g, resp.Epoch, seen, tracked)
					return
				}
				srv.ReleaseResponse(resp)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	mover.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestApplyUpdatesBatchSemantics checks the batched entry point against a
// model: random batches of inserts, deletes, and moves, each acknowledged
// per operation, with a full-space query verifying the object set after
// every batch. Repeated rotation through the writer's tree buffers must
// never lose or duplicate state.
func TestApplyUpdatesBatchSemantics(t *testing.T) {
	srv, items := updServer(t, 400, 0)
	defer srv.Close()
	r := rand.New(rand.NewSource(401))
	live := make(map[rtree.ObjectID]geom.Rect, len(items))
	for _, it := range items {
		live[it.Obj] = it.MBR
	}
	next := rtree.ObjectID(len(items) + 1)

	var ops []wire.UpdateOp
	var want []bool
	for round := 0; round < 40; round++ {
		ops, want = ops[:0], want[:0]
		model := make(map[rtree.ObjectID]geom.Rect, len(live))
		for id, mbr := range live {
			model[id] = mbr
		}
		for k := 0; k < 16; k++ {
			switch r.Intn(4) {
			case 0:
				mbr := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01)
				ops = append(ops, wire.UpdateOp{Kind: wire.UpdateInsert, Obj: next, To: mbr, Size: 700})
				want = append(want, true)
				model[next] = mbr
				next++
			case 1:
				for id, mbr := range model {
					ops = append(ops, wire.UpdateOp{Kind: wire.UpdateDelete, Obj: id, From: mbr})
					want = append(want, true)
					delete(model, id)
					break
				}
			case 2:
				for id, mbr := range model {
					to := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01)
					ops = append(ops, wire.UpdateOp{Kind: wire.UpdateMove, Obj: id, From: mbr, To: to})
					want = append(want, true)
					model[id] = to
					break
				}
			default:
				// A miss: the object is not where From claims.
				ops = append(ops, wire.UpdateOp{Kind: wire.UpdateDelete, Obj: 999_999, From: geom.R(0, 0, 1, 1)})
				want = append(want, false)
			}
		}
		res := srv.ApplyUpdates(ops, nil)
		if len(res) != len(want) {
			t.Fatalf("round %d: %d results for %d ops", round, len(res), len(ops))
		}
		for i := range want {
			if res[i] != want[i] {
				t.Fatalf("round %d: op %d (%+v) result %v, want %v", round, i, ops[i], res[i], want[i])
			}
		}
		live = model

		resp, _ := srv.Execute(&wire.Request{Q: query.NewRange(geom.R(0, 0, 1, 1)), NoIndex: true})
		if len(resp.Objects) != len(live) {
			t.Fatalf("round %d: query sees %d objects, model has %d", round, len(resp.Objects), len(live))
		}
		for _, o := range resp.Objects {
			if mbr, ok := live[o.ID]; !ok || mbr != o.MBR {
				t.Fatalf("round %d: object %d at %+v, model says %+v (present %v)", round, o.ID, o.MBR, mbr, ok)
			}
		}
		if err := srv.Tree().Validate(false); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestReadYourWrites pins the synchronous mutator contract: the moment
// MoveObject returns, the published snapshot contains the move.
func TestReadYourWrites(t *testing.T) {
	srv, items := updServer(t, 300, 0)
	defer srv.Close()
	it := items[0]
	to := geom.RectFromCenter(geom.Pt(0.99, 0.99), 0.001, 0.001)
	if !srv.MoveObject(it.Obj, it.MBR, to) {
		t.Fatal("move failed")
	}
	resp, _ := srv.Execute(&wire.Request{Q: query.NewKNN(geom.Pt(0.99, 0.99), 1), NoIndex: true})
	if len(resp.Objects) != 1 || resp.Objects[0].ID != it.Obj {
		t.Fatalf("moved object not visible immediately: %+v", resp.Objects)
	}
	if resp.Epoch == 0 {
		t.Fatal("epoch did not advance")
	}
}

// TestExecuteUpdatesResponse drives the wire-facing batched update entry
// point: per-op results, post-batch epoch, root descriptor, and the
// invalidation report for the updater's own epoch.
func TestExecuteUpdatesResponse(t *testing.T) {
	srv, items := updServer(t, 300, 0)
	defer srv.Close()
	req := &wire.Request{
		Client: 9,
		Epoch:  0,
		Updates: []wire.UpdateOp{
			{Kind: wire.UpdateInsert, Obj: 50_000, To: geom.R(0.5, 0.5, 0.51, 0.51), Size: 123},
			{Kind: wire.UpdateDelete, Obj: items[3].Obj, From: items[3].MBR},
			{Kind: wire.UpdateDelete, Obj: 777_777, From: geom.R(0, 0, 0.1, 0.1)},
		},
	}
	resp := srv.ExecuteUpdates(req)
	wantRes := []bool{true, true, false}
	if len(resp.UpdateResults) != len(wantRes) {
		t.Fatalf("results = %v", resp.UpdateResults)
	}
	for i, w := range wantRes {
		if resp.UpdateResults[i] != w {
			t.Fatalf("result %d = %v, want %v", i, resp.UpdateResults[i], w)
		}
	}
	if resp.Epoch != srv.Epoch() || resp.Epoch != 2 {
		t.Fatalf("epoch = %d (server %d), want 2", resp.Epoch, srv.Epoch())
	}
	if resp.RootID != srv.Tree().Root() {
		t.Fatal("root descriptor missing")
	}
	// The deleting client's own report mentions the deleted object.
	found := false
	for _, id := range resp.InvalidObjs {
		if id == items[3].Obj {
			found = true
		}
	}
	if !found {
		t.Fatalf("invalidation report %v misses the deletion", resp.InvalidObjs)
	}
	srv.ReleaseResponse(resp)

	// The inserted object's size overlay is live.
	qresp, _ := srv.Execute(&wire.Request{Q: query.NewKNN(geom.Pt(0.505, 0.505), 1), NoIndex: true})
	if len(qresp.Objects) != 1 || qresp.Objects[0].ID != 50_000 || qresp.Objects[0].Size != 123 {
		t.Fatalf("inserted object not served: %+v", qresp.Objects)
	}
}

// TestCloseDrainsWriter checks that Close applies everything already queued,
// is idempotent (including concurrently), and that a server remains
// queryable afterwards.
func TestCloseDrainsWriter(t *testing.T) {
	srv, items := updServer(t, 200, 0)
	for i := 0; i < 10; i++ {
		if !srv.DeleteObject(items[i].Obj, items[i].MBR) {
			t.Fatalf("delete %d failed", i)
		}
	}
	var closers sync.WaitGroup
	for i := 0; i < 3; i++ {
		closers.Add(1)
		go func() {
			defer closers.Done()
			srv.Close()
		}()
	}
	closers.Wait()
	srv.Close()
	resp, _ := srv.Execute(&wire.Request{Q: query.NewRange(geom.R(0, 0, 1, 1)), NoIndex: true})
	if len(resp.Objects) != len(items)-10 {
		t.Fatalf("post-close query sees %d objects, want %d", len(resp.Objects), len(items)-10)
	}
	if srv.Epoch() != 10 {
		t.Fatalf("post-close epoch %d", srv.Epoch())
	}
}
