package server

import (
	"bytes"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// quant32 snaps a coordinate to its nearest float32, the wire's precision:
// windows built from it sit exactly on the values the packed image's
// outward-rounded float32 planes must treat conservatively.
func quant32(v float64) float64 { return float64(float32(v)) }

// diffRequests builds the differential workload: range windows (random,
// float32-quantized, and anchored exactly on stored entry edges so
// touching-boundary comparisons are exercised), kNN at entry corners, and
// join windows.
func diffRequests(r *rand.Rand, items []rtree.Item, n int) []*wire.Request {
	reqs := make([]*wire.Request, n)
	for i := range reqs {
		req := &wire.Request{Client: wire.ClientID(i%13 + 1)}
		a := items[r.Intn(len(items))].MBR
		switch i % 5 {
		case 0: // random window
			c := geom.Pt(r.Float64(), r.Float64())
			req.Q = query.NewRange(geom.RectFromCenter(c, 0.01+0.1*r.Float64(), 0.01+0.1*r.Float64()))
		case 1: // window edges exactly on a stored entry's edges
			b := items[r.Intn(len(items))].MBR
			req.Q = query.NewRange(geom.R(
				min(a.MinX, b.MinX), min(a.MinY, b.MinY),
				max(a.MaxX, b.MaxX), max(a.MaxY, b.MaxY)))
		case 2: // float32-boundary window: edges are exact float32 values
			c := geom.Pt(r.Float64(), r.Float64())
			w := geom.RectFromCenter(c, 0.05, 0.05)
			req.Q = query.NewRange(geom.R(
				quant32(w.MinX), quant32(w.MinY), quant32(w.MaxX), quant32(w.MaxY)))
		case 3: // kNN centered on a stored entry corner
			req.Q = query.NewKNN(geom.Pt(a.MinX, a.MaxY), 1+r.Intn(8))
		default: // join
			c := geom.Pt(r.Float64(), r.Float64())
			req.Q = query.NewJoin(geom.RectFromCenter(c, 0.04, 0.04), 0.004)
		}
		reqs[i] = req
	}
	return reqs
}

// TestPackedMatchesArenaDifferential is the randomized differential suite:
// every query must encode to byte-identical wire responses whether it runs
// through the packed read-optimized image or the arena tree, across epochs
// (updates dirty nodes into the un-packed delta, then a repack folds them
// back in) and across index forms.
func TestPackedMatchesArenaDifferential(t *testing.T) {
	for _, form := range []IndexForm{AdaptiveForm, CompactForm} {
		srv, items := buildServer(t, 101, 4000, Config{Form: form})
		r := rand.New(rand.NewSource(int64(form) + 5))
		live := append([]rtree.Item(nil), items...)

		for round := 0; round < 3; round++ {
			// Wait out any in-flight background repack so the packed image
			// is stable for the round (no update runs during the queries,
			// so no new repack can start mid-comparison).
			for srv.packing.Load() {
				runtime.Gosched()
			}
			pk := srv.packed.Load()
			if pk == nil {
				t.Fatalf("form %d round %d: no packed image", form, round)
			}
			for i, req := range diffRequests(r, live, 150) {
				respP, infoP := srv.Execute(req)
				packed := wire.EncodeResponse(nil, respP)
				srv.packed.Store(nil)
				respA, infoA := srv.Execute(req)
				srv.packed.Store(pk)
				arena := wire.EncodeResponse(nil, respA)
				if !bytes.Equal(packed, arena) {
					t.Errorf("form %d round %d req %d (%v): packed response differs from arena",
						form, round, i, req.Q.Kind)
				}
				if infoP != infoA {
					t.Errorf("form %d round %d req %d: exec info %+v (packed) vs %+v (arena)",
						form, round, i, infoP, infoA)
				}
			}
			// Advance the epoch: move a slice of objects so part of the tree
			// is served from the delta next round (and, past the repack
			// threshold, from a freshly packed image the round after).
			var ops []wire.UpdateOp
			for i := 0; i < 250; i++ {
				j := r.Intn(len(live))
				from := live[j].MBR
				to := geom.R(
					quant32(from.MinX+0.002), quant32(from.MinY-0.001),
					quant32(from.MaxX+0.002), quant32(from.MaxY-0.001))
				ops = append(ops, wire.UpdateOp{
					Kind: wire.UpdateMove, Obj: live[j].Obj, From: from, To: to})
				live[j].MBR = to
			}
			results := make([]bool, len(ops))
			srv.ApplyUpdates(ops, results)
			for i, ok := range results {
				if !ok {
					t.Fatalf("form %d round %d: move %d rejected", form, round, i)
				}
			}
		}
	}
}

// TestPackedConcurrentPublish races queries (solo and batched) against a
// writer that keeps mutating the index and publishing fresh packed images.
// Run under -race in CI: the per-(NodeID, Gen) validation contract means a
// query may observe any published image, old or new, but never a torn one.
func TestPackedConcurrentPublish(t *testing.T) {
	srv, items := buildServer(t, 103, 3000, Config{})
	deadline := time.Now().Add(400 * time.Millisecond)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the single writer: move objects, forcing repacks
		defer wg.Done()
		live := append([]rtree.Item(nil), items...)
		r := rand.New(rand.NewSource(7))
		for time.Now().Before(deadline) {
			var ops []wire.UpdateOp
			for i := 0; i < 120; i++ {
				j := r.Intn(len(live))
				from := live[j].MBR
				to := geom.R(
					quant32(from.MinX+0.001), quant32(from.MinY+0.001),
					quant32(from.MaxX+0.001), quant32(from.MaxY+0.001))
				ops = append(ops, wire.UpdateOp{
					Kind: wire.UpdateMove, Obj: live[j].Obj, From: from, To: to})
				live[j].MBR = to
			}
			srv.ApplyUpdates(ops, nil)
		}
	}()

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g) + 11))
			for time.Now().Before(deadline) {
				if g%2 == 0 {
					reqs := batchRequests(r, 12)
					resps, _ := srv.ExecuteBatch(reqs)
					for _, resp := range resps {
						if resp == nil {
							t.Error("batch under concurrent publish returned nil response")
							return
						}
						srv.ReleaseResponse(resp)
					}
					continue
				}
				c := geom.Pt(r.Float64(), r.Float64())
				req := &wire.Request{Client: wire.ClientID(g + 1),
					Q: query.NewRange(geom.RectFromCenter(c, 0.05, 0.05))}
				resp, _ := srv.Execute(req)
				if resp == nil {
					t.Error("query under concurrent publish returned nil response")
					return
				}
				srv.ReleaseResponse(resp)
			}
		}(g)
	}
	wg.Wait()
}
