package server

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// poolTestRequests builds an interleaved mix of range, kNN, and join
// requests, several distinct clients, some resuming from a handed-over H.
func poolTestRequests(srv *Server, n int, seed int64) []*wire.Request {
	r := rand.New(rand.NewSource(seed))
	reqs := make([]*wire.Request, n)
	for i := range reqs {
		p := geom.Pt(r.Float64(), r.Float64())
		var q query.Query
		switch i % 3 {
		case 0:
			q = query.NewRange(geom.RectFromCenter(p, 0.05, 0.05))
		case 1:
			q = query.NewKNN(p, 1+i%7)
		default:
			q = query.NewJoin(geom.RectFromCenter(p, 0.03, 0.03), 0.002)
		}
		req := &wire.Request{Client: wire.ClientID(1 + i%5), Q: q}
		if i%4 == 3 {
			// Resume from a root-seeded H: exercises the rekey buffer.
			req.H = query.SeedRoot(q, srv.RootRef())
		}
		reqs[i] = req
	}
	return reqs
}

// encodeExecute runs one request and returns the canonical encoded bytes,
// optionally recycling the response (the pooled serving path).
func encodeExecute(srv *Server, req *wire.Request, release bool) []byte {
	resp, _ := srv.Execute(req)
	out := wire.EncodeResponse(nil, resp)
	if release {
		srv.ReleaseResponse(resp)
	}
	return out
}

// TestPooledStateMatchesFresh guards against scratch-buffer leakage between
// requests: 8 goroutines hammer one server with interleaved range/kNN/join
// requests (pooled exec state and released responses, so pool reuse is
// constant), and every response must be byte-identical to the one a
// fresh-state server produces for the same request.
func TestPooledStateMatchesFresh(t *testing.T) {
	const nReq = 240
	srv, items := buildServer(t, 77, 2000, Config{})
	reqs := poolTestRequests(srv, nReq, 78)

	// Reference bytes from a server whose pools are never reused: a brand
	// new server per request, over the identical dataset.
	want := make([][]byte, nReq)
	for i, req := range reqs {
		want[i] = encodeExecute(serverFromItems(items), req, false)
	}

	const goroutines = 8
	const rounds = 4 // revisit every request so state reuse is guaranteed
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for i := g; i < nReq; i += goroutines {
					got := encodeExecute(srv, reqs[(i+round*3)%nReq], true)
					if !bytes.Equal(got, want[(i+round*3)%nReq]) {
						select {
						case errCh <- fmt.Errorf("goroutine %d round %d: response %d differs from fresh-state server", g, round, (i+round*3)%nReq):
						default:
						}
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// serverFromItems stands up a fresh server over prebuilt items, with the
// same tree shape as buildServer.
func serverFromItems(items []rtree.Item) *Server {
	tree := rtree.BulkLoad(rtree.Params{MaxEntries: 16}, items, 0.7)
	return New(tree, func(rtree.ObjectID) int { return 1000 }, Config{})
}
