package server

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bpt"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wire"
)

func buildServer(t *testing.T, seed int64, n int, cfg Config) (*Server, []rtree.Item) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	items := make([]rtree.Item, n)
	for i := range items {
		c := geom.Pt(r.Float64(), r.Float64())
		items[i] = rtree.Item{Obj: rtree.ObjectID(i + 1), MBR: geom.RectFromCenter(c, 0.01, 0.01)}
	}
	tree := rtree.BulkLoad(rtree.Params{MaxEntries: 16}, items, 0.7)
	return New(tree, func(rtree.ObjectID) int { return 1000 }, cfg), items
}

func TestFreshRangeMatchesTree(t *testing.T) {
	srv, items := buildServer(t, 61, 500, Config{})
	win := geom.R(0.3, 0.3, 0.7, 0.7)
	resp, info := srv.Execute(&wire.Request{Q: query.NewRange(win)})
	want := 0
	for _, it := range items {
		if it.MBR.Intersects(win) {
			want++
		}
	}
	if len(resp.Objects) != want {
		t.Fatalf("got %d objects, want %d", len(resp.Objects), want)
	}
	if info.VisitedNodes == 0 || info.Engine.Pops == 0 {
		t.Error("no work recorded")
	}
	for _, o := range resp.Objects {
		if !o.Payload || o.Size != 1000 {
			t.Errorf("object rep %+v", o)
		}
	}
}

func TestFreshKNNOrdered(t *testing.T) {
	srv, items := buildServer(t, 62, 500, Config{})
	p := geom.Pt(0.5, 0.5)
	resp, _ := srv.Execute(&wire.Request{Q: query.NewKNN(p, 5)})
	if len(resp.Objects) != 5 {
		t.Fatalf("got %d", len(resp.Objects))
	}
	var all []float64
	for _, it := range items {
		all = append(all, geom.MinDist(p, it.MBR))
	}
	sort.Float64s(all)
	for i, o := range resp.Objects {
		if d := geom.MinDist(p, o.MBR); d != all[i] {
			t.Fatalf("result %d at distance %v, want %v", i, d, all[i])
		}
	}
}

func TestIndexParentsBeforeChildren(t *testing.T) {
	srv, _ := buildServer(t, 63, 1000, Config{Form: CompactForm})
	resp, _ := srv.Execute(&wire.Request{Q: query.NewRange(geom.R(0.4, 0.4, 0.6, 0.6))})
	if len(resp.Index) == 0 {
		t.Fatal("no index shipped")
	}
	seen := map[rtree.NodeID]bool{}
	lastLevel := 1 << 30
	for _, rep := range resp.Index {
		if rep.Level > lastLevel {
			t.Fatal("index not ordered parents-first")
		}
		lastLevel = rep.Level
		seen[rep.ID] = true
	}
	// The root must be among the shipped nodes for a fresh query.
	if !seen[srv.Tree().Root()] {
		t.Error("fresh query index must include the root")
	}
}

func TestFullFormShipsAllEntries(t *testing.T) {
	srv, _ := buildServer(t, 64, 800, Config{Form: FullForm})
	resp, _ := srv.Execute(&wire.Request{Q: query.NewRange(geom.R(0.4, 0.4, 0.6, 0.6))})
	for _, rep := range resp.Index {
		n, ok := srv.Tree().Node(rep.ID)
		if !ok {
			t.Fatalf("index names unknown node %d", rep.ID)
		}
		if len(rep.Elems) != len(n.Entries) {
			t.Fatalf("node %d: %d elems, want full %d", rep.ID, len(rep.Elems), len(n.Entries))
		}
		for _, e := range rep.Elems {
			if e.Super {
				t.Fatal("full form must not contain super entries")
			}
		}
	}
}

func TestCompactFormShipsValidCuts(t *testing.T) {
	srv, _ := buildServer(t, 65, 800, Config{Form: CompactForm})
	resp, _ := srv.Execute(&wire.Request{Q: query.NewKNN(geom.Pt(0.5, 0.5), 3)})
	supers := 0
	for _, rep := range resp.Index {
		n, _ := srv.Tree().Node(rep.ID)
		pt := bpt.Build(rep.ID, n.Entries)
		cut := make(bpt.Cut, 0, len(rep.Elems))
		for _, e := range rep.Elems {
			cut = append(cut, e.Code)
			if e.Super {
				supers++
			}
		}
		// Fresh-query expansions start at the root, so cuts are full covers.
		if err := pt.ValidateCut(cut); err != nil {
			t.Fatalf("node %d cut invalid: %v", rep.ID, err)
		}
	}
	if supers == 0 {
		t.Error("compact form shipped no super entries at all")
	}
}

func TestAdaptiveDRefinesCuts(t *testing.T) {
	sizes := map[int]int{}
	for _, d := range []int{0, 2, 6} {
		srv, _ := buildServer(t, 66, 800, Config{Form: AdaptiveForm, InitialD: d})
		resp, info := srv.Execute(&wire.Request{Client: 1, Q: query.NewKNN(geom.Pt(0.5, 0.5), 3)})
		if info.D != d {
			t.Fatalf("info.D = %d, want %d", info.D, d)
		}
		total := 0
		for _, rep := range resp.Index {
			total += len(rep.Elems)
		}
		sizes[d] = total
	}
	if !(sizes[0] < sizes[2] && sizes[2] <= sizes[6]) {
		t.Errorf("element counts must grow with d: %v", sizes)
	}
}

func TestNoIndexSuppressesIr(t *testing.T) {
	srv, _ := buildServer(t, 67, 500, Config{})
	resp, _ := srv.Execute(&wire.Request{Q: query.NewRange(geom.R(0.4, 0.4, 0.6, 0.6)), NoIndex: true})
	if len(resp.Index) != 0 {
		t.Error("NoIndex request still shipped an index")
	}
}

func TestCachedIDsSkipPayload(t *testing.T) {
	srv, items := buildServer(t, 68, 500, Config{})
	win := geom.R(0.3, 0.3, 0.7, 0.7)
	var inWin []rtree.ObjectID
	for _, it := range items {
		if it.MBR.Intersects(win) {
			inWin = append(inWin, it.Obj)
		}
	}
	if len(inWin) < 3 {
		t.Skip("window too sparse")
	}
	cached := inWin[:2]
	resp, _ := srv.Execute(&wire.Request{Q: query.NewRange(win), CachedIDs: cached, NoIndex: true})
	cachedSet := map[rtree.ObjectID]bool{cached[0]: true, cached[1]: true}
	for _, o := range resp.Objects {
		if cachedSet[o.ID] == o.Payload {
			t.Errorf("object %d payload=%v, cached=%v", o.ID, o.Payload, cachedSet[o.ID])
		}
	}
}

func TestSemWindowsUnionDedup(t *testing.T) {
	srv, items := buildServer(t, 69, 500, Config{})
	w1 := geom.R(0.3, 0.3, 0.55, 0.7)
	w2 := geom.R(0.45, 0.3, 0.7, 0.7) // overlaps w1
	resp, _ := srv.Execute(&wire.Request{
		Q:          query.NewRange(w1.Union(w2)),
		SemWindows: []geom.Rect{w1, w2},
		NoIndex:    true,
	})
	seen := map[rtree.ObjectID]bool{}
	for _, o := range resp.Objects {
		if seen[o.ID] {
			t.Fatalf("object %d returned twice", o.ID)
		}
		seen[o.ID] = true
	}
	want := 0
	for _, it := range items {
		if it.MBR.Intersects(w1) || it.MBR.Intersects(w2) {
			want++
		}
	}
	if len(seen) != want {
		t.Fatalf("got %d objects, want %d", len(seen), want)
	}
}

func TestDeferredObjectsSkipPayload(t *testing.T) {
	srv, items := buildServer(t, 70, 500, Config{})
	p := geom.Pt(0.5, 0.5)
	// Find the true nearest object and pretend the client has it deferred.
	best, bestD := rtree.ObjectID(0), 2.0
	for _, it := range items {
		if d := geom.MinDist(p, it.MBR); d < bestD {
			best, bestD = it.Obj, d
		}
	}
	h := []query.QueuedElem{
		{Key: bestD, Elem: query.Single(query.ObjectRef(best, items[best-1].MBR)), Deferred: true},
		{Key: 0, Elem: query.Single(query.FromEntry(srv.Tree().RootEntry()))},
	}
	resp, _ := srv.Execute(&wire.Request{Q: query.NewKNN(p, 1), H: h})
	if len(resp.Objects) != 1 {
		t.Fatalf("got %d objects", len(resp.Objects))
	}
	if resp.Objects[0].ID != best {
		t.Fatalf("wrong NN: %d vs %d", resp.Objects[0].ID, best)
	}
	if resp.Objects[0].Payload {
		t.Error("deferred object must not ship its payload again")
	}
}

func TestClientDFeedbackClamped(t *testing.T) {
	srv, _ := buildServer(t, 71, 300, Config{MaxD: 2})
	req := func(fmr float64) {
		srv.Execute(&wire.Request{Client: 3, Q: query.NewKNN(geom.Pt(0.5, 0.5), 1), FMR: fmr, HasFMR: true})
	}
	// The rule reacts to relative *changes*: keep the fmr growing.
	fmr := 0.01
	req(fmr)
	for i := 0; i < 10; i++ {
		fmr *= 2
		req(fmr)
	}
	if d := srv.ClientD(3); d != 2 {
		t.Errorf("d = %d, want clamp at 2", d)
	}
	for i := 0; i < 10; i++ {
		fmr /= 2
		req(fmr)
	}
	if d := srv.ClientD(3); d != 0 {
		t.Errorf("d = %d, want clamp at 0", d)
	}
	// A steady fmr leaves d untouched.
	req(fmr)
	req(fmr)
	if d := srv.ClientD(3); d != 0 {
		t.Errorf("steady fmr moved d to %d", d)
	}
}
