package server

import (
	"repro/internal/bpt"
	"repro/internal/query"
	"repro/internal/rtree"
)

// provider implements query.Provider over the full index. In partitioned
// mode, node expansion navigates the node's binary partition tree (the
// embedded compact-form computation of Section 4.2), recording which
// positions were expanded so Ir can ship exactly the explored frontier.
// In flat mode (full-form index or index-less baselines) node expansion
// returns entries directly.
type provider struct {
	s           *Server
	partitioned bool

	visited    []rtree.NodeID
	visitedSet map[rtree.NodeID]bool
	expanded   map[rtree.NodeID]map[bpt.Code]bool
}

func newProvider(s *Server, partitioned bool) *provider {
	return &provider{
		s:           s,
		partitioned: partitioned,
		visitedSet:  make(map[rtree.NodeID]bool),
		expanded:    make(map[rtree.NodeID]map[bpt.Code]bool),
	}
}

func (p *provider) visit(id rtree.NodeID) {
	if !p.visitedSet[id] {
		p.visitedSet[id] = true
		p.visited = append(p.visited, id)
	}
}

// markExpanded records that a partition-tree position was expanded, closing
// the set upward on the fly: every ancestor of an expanded position counts
// as expanded too. A remainder query resumed from a client's super entry
// (n, code) expands only the subtree below code; closing the set upward
// makes the shipped frontier a full cover of the node — the unexplored
// siblings ride along as super entries. Shipping partial covers would let a
// client whose copy of the node was just invalidated install a
// representation that silently hides entries, losing results forever.
// Expansion proceeds top-down, so the ancestor walk almost always stops at
// the immediate parent.
func (p *provider) markExpanded(id rtree.NodeID, code bpt.Code) {
	m, ok := p.expanded[id]
	if !ok {
		m = make(map[bpt.Code]bool)
		p.expanded[id] = m
	}
	if m[code] {
		return
	}
	m[code] = true
	for c := code; len(c) > 0; {
		c = c.Parent()
		if m[c] {
			break
		}
		m[c] = true
	}
}

// Expand implements query.Provider. The server never reports missing
// targets; a dangling reference returns an empty expansion.
func (p *provider) Expand(ref query.Ref) ([]query.Ref, bool) {
	switch ref.Kind {
	case query.RefNode:
		n, ok := p.s.tree.Node(ref.Node)
		if !ok {
			return nil, true
		}
		p.visit(n.ID)
		if len(n.Entries) == 0 {
			return nil, true
		}
		if !p.partitioned {
			out := make([]query.Ref, len(n.Entries))
			for i, e := range n.Entries {
				out[i] = query.FromEntry(e)
			}
			return out, true
		}
		pt := p.s.forest.Get(n)
		p.markExpanded(n.ID, pt.Root.Code)
		return pnodeChildren(n.ID, pt.Root), true

	case query.RefSuper:
		n, ok := p.s.tree.Node(ref.Node)
		if !ok {
			return nil, true
		}
		p.visit(n.ID)
		pt := p.s.forest.Get(n)
		pn, ok := pt.Node(ref.Code)
		if !ok || pn.Leaf() {
			return nil, true
		}
		p.markExpanded(n.ID, ref.Code)
		return pnodeChildren(n.ID, pn), true

	default:
		return nil, true
	}
}

// HaveObject implements query.Provider; the server holds every object.
func (p *provider) HaveObject(rtree.ObjectID) bool { return true }

// pnodeChildren converts a partition node's children into engine references:
// leaves become real entries, internal positions become super entries.
func pnodeChildren(node rtree.NodeID, pn *bpt.PNode) []query.Ref {
	if pn.Leaf() {
		return []query.Ref{query.FromEntry(pn.Entry)}
	}
	out := make([]query.Ref, 0, 2)
	for _, c := range []*bpt.PNode{pn.Left, pn.Right} {
		if c.Leaf() {
			out = append(out, query.FromEntry(c.Entry))
		} else {
			out = append(out, query.SuperRef(node, c.Code, c.MBR))
		}
	}
	return out
}
