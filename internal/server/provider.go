package server

import (
	"repro/internal/bpt"
	"repro/internal/query"
	"repro/internal/rtree"
)

// provider implements query.Provider over the full index. In partitioned
// mode, node expansion navigates the node's binary partition tree (the
// embedded compact-form computation of Section 4.2), recording which
// positions were expanded so Ir can ship exactly the explored frontier.
// In flat mode (full-form index or index-less baselines) node expansion
// returns entries directly.
//
// A provider is reusable request-to-request: reset clears the per-request
// state while keeping every backing structure (the visited bitset, the
// visit-order list, the expanded-position maps, and the Expand scratch
// buffer), so a warm provider serves a request without allocating. It lives
// inside the server's pooled execState and is never shared between
// concurrent requests.
type provider struct {
	tree        *rtree.Tree
	forest      bpt.ForestView
	partitioned bool

	visitedCount int            // traversal counter behind ExecInfo.VisitedNodes
	visited      []rtree.NodeID // first-visit order (buildIndex and bitset reset)
	visitedBits  []uint64       // bitset indexed by NodeID over the tree's NodeSpan

	expanded   map[rtree.NodeID]map[bpt.Code]bool
	spareCodes []map[bpt.Code]bool // cleared inner maps ready for reuse

	scratch []query.Ref // Expand result buffer; valid until the next Expand
}

// reset binds the provider to a pinned snapshot for one request. The bitset
// is sized to the snapshot arena's NodeSpan; the caller must keep the
// snapshot pinned for the provider's whole lifetime.
func (p *provider) reset(v *snapshot, partitioned bool) {
	p.tree = v.tree
	p.forest = v.forest
	p.partitioned = partitioned

	words := (int(v.tree.NodeSpan()) + 63) / 64
	if cap(p.visitedBits) < words {
		p.visitedBits = make([]uint64, words)
	} else {
		p.visitedBits = p.visitedBits[:words]
		// Clearing only previously set bits keeps reset O(visited nodes),
		// not O(index size).
		for _, id := range p.visited {
			p.visitedBits[id>>6] &^= 1 << (id & 63)
		}
	}
	p.visitedCount = 0
	p.visited = p.visited[:0]

	for id, m := range p.expanded {
		clear(m)
		p.spareCodes = append(p.spareCodes, m)
		delete(p.expanded, id)
	}
	if p.expanded == nil {
		p.expanded = make(map[rtree.NodeID]map[bpt.Code]bool)
	}
	p.scratch = p.scratch[:0]
}

func (p *provider) visit(id rtree.NodeID) {
	w, bit := id>>6, uint64(1)<<(id&63)
	if p.visitedBits[w]&bit != 0 {
		return
	}
	p.visitedBits[w] |= bit
	p.visitedCount++
	p.visited = append(p.visited, id)
}

// markExpanded records that a partition-tree position was expanded, closing
// the set upward on the fly: every ancestor of an expanded position counts
// as expanded too. A remainder query resumed from a client's super entry
// (n, code) expands only the subtree below code; closing the set upward
// makes the shipped frontier a full cover of the node — the unexplored
// siblings ride along as super entries. Shipping partial covers would let a
// client whose copy of the node was just invalidated install a
// representation that silently hides entries, losing results forever.
// Expansion proceeds top-down, so the ancestor walk almost always stops at
// the immediate parent.
func (p *provider) markExpanded(id rtree.NodeID, code bpt.Code) {
	m, ok := p.expanded[id]
	if !ok {
		if k := len(p.spareCodes); k > 0 {
			m = p.spareCodes[k-1]
			p.spareCodes = p.spareCodes[:k-1]
		} else {
			m = make(map[bpt.Code]bool)
		}
		p.expanded[id] = m
	}
	if m[code] {
		return
	}
	m[code] = true
	for c := code; len(c) > 0; {
		c = c.Parent()
		if m[c] {
			break
		}
		m[c] = true
	}
}

// Expand implements query.Provider. The server never reports missing
// targets; a dangling reference returns an empty expansion. The returned
// slice is the provider's scratch buffer: valid until the next Expand call.
func (p *provider) Expand(ref query.Ref) ([]query.Ref, bool) {
	switch ref.Kind {
	case query.RefNode:
		n, ok := p.tree.Node(ref.Node)
		if !ok {
			return nil, true
		}
		p.visit(n.ID)
		if len(n.Entries) == 0 {
			return nil, true
		}
		if !p.partitioned {
			p.scratch = p.scratch[:0]
			for _, e := range n.Entries {
				p.scratch = append(p.scratch, query.FromEntry(e))
			}
			return p.scratch, true
		}
		pt := p.forest.Get(n)
		p.markExpanded(n.ID, pt.Root.Code)
		p.scratch = appendPNodeChildren(p.scratch[:0], n.ID, pt.Root)
		return p.scratch, true

	case query.RefSuper:
		n, ok := p.tree.Node(ref.Node)
		if !ok {
			return nil, true
		}
		p.visit(n.ID)
		pt := p.forest.Get(n)
		pn, ok := pt.Node(ref.Code)
		if !ok || pn.Leaf() {
			return nil, true
		}
		p.markExpanded(n.ID, ref.Code)
		p.scratch = appendPNodeChildren(p.scratch[:0], n.ID, pn)
		return p.scratch, true

	default:
		return nil, true
	}
}

// HaveObject implements query.Provider; the server holds every object.
func (p *provider) HaveObject(rtree.ObjectID) bool { return true }

// appendPNodeChildren converts a partition node's children into engine
// references: leaves become real entries, internal positions become super
// entries.
func appendPNodeChildren(dst []query.Ref, node rtree.NodeID, pn *bpt.PNode) []query.Ref {
	if pn.Leaf() {
		return append(dst, query.FromEntry(pn.Entry))
	}
	for _, c := range [2]*bpt.PNode{pn.Left, pn.Right} {
		if c.Leaf() {
			dst = append(dst, query.FromEntry(c.Entry))
		} else {
			dst = append(dst, query.SuperRef(node, c.Code, c.MBR))
		}
	}
	return dst
}
