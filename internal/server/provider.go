package server

import (
	"repro/internal/bpt"
	"repro/internal/query"
	"repro/internal/rtree"
)

// provider implements query.Provider over the full index. In partitioned
// mode, node expansion navigates the node's binary partition tree (the
// embedded compact-form computation of Section 4.2), recording which
// positions were expanded so Ir can ship exactly the explored frontier.
// In flat mode (full-form index or index-less baselines) node expansion
// returns entries directly.
//
// Expansion prefers the packed read-only image published alongside the
// snapshot (rtree.Packed): position topology, codes, and MBRs live in flat
// arrays there, so expanding a super entry is a bit-walk over contiguous
// int32s instead of a string-keyed map lookup, and the expanded set is a
// bitset with O(1) ancestor closure instead of nested maps. A node the image
// does not cover at the snapshot's generation — the un-packed delta — falls
// back to the arena tree and the partition forest transparently, per node.
//
// A provider is reusable request-to-request: reset clears the per-request
// state while keeping every backing structure (the visited bitset, the
// visit-order list, the expanded-position maps and bitsets, and the Expand
// scratch buffer), so a warm provider serves a request without allocating. It
// lives inside the server's pooled execState and is never shared between
// concurrent requests.
type provider struct {
	tree        *rtree.Tree
	forest      bpt.ForestView
	packed      *rtree.Packed
	partitioned bool

	visitedCount int            // traversal counter behind ExecInfo.VisitedNodes
	visited      []rtree.NodeID // first-visit order (buildIndex and bitset reset)
	visitedBits  []uint64       // bitset indexed by NodeID over the tree's NodeSpan

	expanded   map[rtree.NodeID]map[bpt.Code]bool
	spareCodes []map[bpt.Code]bool // cleared inner maps ready for reuse

	// Packed-path expanded positions: per node, a bitset over the node's
	// packed position span. Disjoint from expanded — within one request a
	// node is served either from the packed image or from the forest, never
	// both (the Covers decision is a pure function of the pinned snapshot).
	pexp      map[rtree.NodeID][]uint64
	spareBits [][]uint64
	// One-entry cache over pexp: expansions of one node's positions arrive
	// in runs (the queue drains a node's supers together), so the common
	// mark skips the map entirely.
	lastPexpID   rtree.NodeID
	lastPexpBits []uint64

	scratch []query.Ref // Expand result buffer; valid until the next Expand
}

// reset binds the provider to a pinned snapshot for one request. The bitset
// is sized to the snapshot arena's NodeSpan; the caller must keep the
// snapshot pinned for the provider's whole lifetime.
func (p *provider) reset(v *snapshot, packed *rtree.Packed, partitioned bool) {
	p.tree = v.tree
	p.forest = v.forest
	p.packed = packed
	p.partitioned = partitioned

	words := (int(v.tree.NodeSpan()) + 63) / 64
	if cap(p.visitedBits) < words {
		p.visitedBits = make([]uint64, words)
	} else {
		p.visitedBits = p.visitedBits[:words]
		// Clearing only previously set bits keeps reset O(visited nodes),
		// not O(index size).
		for _, id := range p.visited {
			p.visitedBits[id>>6] &^= 1 << (id & 63)
		}
	}
	p.visitedCount = 0
	p.visited = p.visited[:0]

	for id, m := range p.expanded {
		clear(m)
		p.spareCodes = append(p.spareCodes, m)
		delete(p.expanded, id)
	}
	if p.expanded == nil {
		p.expanded = make(map[rtree.NodeID]map[bpt.Code]bool)
	}
	for id, bits := range p.pexp {
		clear(bits)
		p.spareBits = append(p.spareBits, bits)
		delete(p.pexp, id)
	}
	if p.pexp == nil {
		p.pexp = make(map[rtree.NodeID][]uint64)
	}
	p.lastPexpID = rtree.InvalidNode
	p.lastPexpBits = nil
	p.scratch = p.scratch[:0]
}

func (p *provider) visit(id rtree.NodeID) {
	w, bit := id>>6, uint64(1)<<(id&63)
	if p.visitedBits[w]&bit != 0 {
		return
	}
	p.visitedBits[w] |= bit
	p.visitedCount++
	p.visited = append(p.visited, id)
}

// packedSpan returns the node's packed position span when the image covers
// its current content.
func (p *provider) packedSpan(n *rtree.Node) (rtree.PackedSpan, bool) {
	if p.packed == nil {
		return rtree.PackedSpan{}, false
	}
	return p.packed.Covers(n.ID, n.Gen)
}

// markExpanded records that a partition-tree position was expanded, closing
// the set upward on the fly: every ancestor of an expanded position counts
// as expanded too. A remainder query resumed from a client's super entry
// (n, code) expands only the subtree below code; closing the set upward
// makes the shipped frontier a full cover of the node — the unexplored
// siblings ride along as super entries. Shipping partial covers would let a
// client whose copy of the node was just invalidated install a
// representation that silently hides entries, losing results forever.
// Expansion proceeds top-down, so the ancestor walk almost always stops at
// the immediate parent.
func (p *provider) markExpanded(id rtree.NodeID, code bpt.Code) {
	m, ok := p.expanded[id]
	if !ok {
		if k := len(p.spareCodes); k > 0 {
			m = p.spareCodes[k-1]
			p.spareCodes = p.spareCodes[:k-1]
		} else {
			m = make(map[bpt.Code]bool)
		}
		p.expanded[id] = m
	}
	if m[code] {
		return
	}
	m[code] = true
	for c := code; len(c) > 0; {
		c = c.Parent()
		if m[c] {
			break
		}
		m[c] = true
	}
}

// markPackedExpanded is markExpanded for packed positions: a bitset over the
// node's span with the same upward closure, walking the packed parent array.
func (p *provider) markPackedExpanded(id rtree.NodeID, sp rtree.PackedSpan, pos int32) {
	bits := p.lastPexpBits
	if p.lastPexpID != id {
		var ok bool
		bits, ok = p.pexp[id]
		if !ok {
			words := (int(sp.Count) + 63) / 64
			if k := len(p.spareBits); k > 0 {
				bits = p.spareBits[k-1]
				p.spareBits = p.spareBits[:k-1]
			}
			if cap(bits) < words {
				bits = make([]uint64, words)
			}
			bits = bits[:words]
			clear(bits)
			p.pexp[id] = bits
		}
		p.lastPexpID, p.lastPexpBits = id, bits
	}
	for pos >= 0 {
		rel := uint32(pos - sp.Off)
		w, bit := rel>>6, uint64(1)<<(rel&63)
		if bits[w]&bit != 0 {
			return
		}
		bits[w] |= bit
		pos = p.packed.Parent(pos)
	}
}

// Expand implements query.Provider. The server never reports missing
// targets; a dangling reference returns an empty expansion. The returned
// slice is the provider's scratch buffer: valid until the next Expand call.
func (p *provider) Expand(ref query.Ref) ([]query.Ref, bool) {
	switch ref.Kind {
	case query.RefNode:
		n, ok := p.tree.Node(ref.Node)
		if !ok {
			return nil, true
		}
		p.visit(n.ID)
		if len(n.Entries) == 0 {
			return nil, true
		}
		if !p.partitioned {
			p.scratch = p.scratch[:0]
			for _, e := range n.Entries {
				p.scratch = append(p.scratch, query.FromEntry(e))
			}
			return p.scratch, true
		}
		if sp, ok := p.packedSpan(n); ok {
			p.markPackedExpanded(n.ID, sp, sp.Off)
			p.scratch = p.appendPackedChildren(p.scratch[:0], n.ID, sp.Off)
			return p.scratch, true
		}
		pt := p.forest.Get(n)
		p.markExpanded(n.ID, pt.Root.Code)
		p.scratch = appendPNodeChildren(p.scratch[:0], n.ID, pt.Root)
		return p.scratch, true

	case query.RefSuper:
		n, ok := p.tree.Node(ref.Node)
		if !ok {
			return nil, true
		}
		p.visit(n.ID)
		if sp, ok := p.packedSpan(n); ok {
			// Super refs the provider itself created carry their packed
			// position; only client-handed refs pay the code bit-walk.
			var pos int32
			if h := ref.PosHint(); h != 0 {
				pos = int32(h - 1)
			} else if fp, found := p.packed.FindCode(sp, string(ref.Code)); found {
				pos = fp
			} else {
				return nil, true
			}
			if p.packed.IsLeaf(pos) {
				return nil, true
			}
			p.markPackedExpanded(n.ID, sp, pos)
			p.scratch = p.appendPackedChildren(p.scratch[:0], n.ID, pos)
			return p.scratch, true
		}
		pt := p.forest.Get(n)
		pn, ok := pt.Node(ref.Code)
		if !ok || pn.Leaf() {
			return nil, true
		}
		p.markExpanded(n.ID, ref.Code)
		p.scratch = appendPNodeChildren(p.scratch[:0], n.ID, pn)
		return p.scratch, true

	default:
		return nil, true
	}
}

// HaveObject implements query.Provider; the server holds every object.
func (p *provider) HaveObject(rtree.ObjectID) bool { return true }

// packedRef converts a leaf position of the packed image into an engine
// reference — the flat-array twin of query.FromEntry.
func packedRef(pk *rtree.Packed, pos int32) query.Ref {
	if c := pk.ChildID(pos); c != rtree.InvalidNode {
		return query.NodeRef(c, pk.Rect(pos))
	}
	return query.ObjectRef(pk.ObjID(pos), pk.Rect(pos))
}

// appendPackedChildren is appendPNodeChildren over the packed image: the two
// children of position pos become engine references — leaves as real
// entries, internal positions as super entries. A leaf pos (single-entry
// node root) stands for its entry itself.
func (p *provider) appendPackedChildren(dst []query.Ref, node rtree.NodeID, pos int32) []query.Ref {
	pk := p.packed
	r := pk.Right(pos)
	if r == 0 {
		return append(dst, packedRef(pk, pos))
	}
	for _, c := range [2]int32{pos + 1, r} {
		if pk.IsLeaf(c) {
			dst = append(dst, packedRef(pk, c))
		} else {
			dst = append(dst, query.SuperRefHinted(node, bpt.Code(pk.Code(c)), pk.Rect(c), uint32(c)+1))
		}
	}
	return dst
}

// appendPNodeChildren converts a partition node's children into engine
// references: leaves become real entries, internal positions become super
// entries.
func appendPNodeChildren(dst []query.Ref, node rtree.NodeID, pn *bpt.PNode) []query.Ref {
	if pn.Leaf() {
		return append(dst, query.FromEntry(pn.Entry))
	}
	for _, c := range [2]*bpt.PNode{pn.Left, pn.Right} {
		if c.Leaf() {
			dst = append(dst, query.FromEntry(c.Entry))
		} else {
			dst = append(dst, query.SuperRef(node, c.Code, c.MBR))
		}
	}
	return dst
}
