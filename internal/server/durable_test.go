package server

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wal"
	"repro/internal/wire"
)

// durableBatch generates one randomized move/insert/delete batch against the
// pool of known-live objects, echoing exact stored rectangles (the delete
// contract).
type durablePool struct {
	rng  *rand.Rand
	live map[rtree.ObjectID]geom.Rect
	next rtree.ObjectID
}

func newDurablePool(seed int64, items []rtree.Item) *durablePool {
	p := &durablePool{
		rng:  rand.New(rand.NewSource(seed)),
		live: make(map[rtree.ObjectID]geom.Rect, len(items)),
		next: 1 << 20,
	}
	for _, it := range items {
		p.live[it.Obj] = it.MBR
	}
	return p
}

func (p *durablePool) batch(n int) []wire.UpdateOp {
	ops := make([]wire.UpdateOp, 0, n)
	for i := 0; i < n; i++ {
		x := p.rng.Float64()
		to := geom.RectFromCenter(geom.Pt(p.rng.Float64(), p.rng.Float64()), 0.004, 0.004)
		switch {
		case x < 0.5 && len(p.live) > 0:
			id, from := p.pick()
			ops = append(ops, wire.UpdateOp{Kind: wire.UpdateMove, Obj: id, From: from, To: to})
			p.live[id] = to
		case x < 0.7 && len(p.live) > 0:
			id, from := p.pick()
			ops = append(ops, wire.UpdateOp{Kind: wire.UpdateDelete, Obj: id, From: from})
			delete(p.live, id)
		default:
			id := p.next
			p.next++
			ops = append(ops, wire.UpdateOp{Kind: wire.UpdateInsert, Obj: id, To: to, Size: 64})
			p.live[id] = to
		}
	}
	return ops
}

func (p *durablePool) pick() (rtree.ObjectID, geom.Rect) {
	for id, r := range p.live {
		return id, r
	}
	panic("empty pool")
}

// TestRestoreEquivalence "crashes" a durable server partway through an
// update stream (closing only the log: every ApplyUpdates has returned, so
// all its batches are already appended — the server itself keeps running as
// the uninterrupted reference) and restores a second server from WAL +
// checkpoint: the restored arena must be byte-identical (same image bytes,
// same epoch, same invalidation log) and must keep evolving identically
// under further updates.
func TestRestoreEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		dir := t.TempDir()
		l, err := wal.Open(dir, wal.Options{NoSync: true, CheckpointBytes: 1 << 14})
		if err != nil {
			t.Fatal(err)
		}
		srv, items := buildServer(t, seed, 800, Config{WAL: l})
		if err := srv.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		pool := newDurablePool(seed*7+1, items)
		for round := 0; round < 30; round++ {
			srv.ApplyUpdates(pool.batch(20), nil)
		}
		if err := srv.DurabilityErr(); err != nil {
			t.Fatal(err)
		}
		l.Close() // the crash: disk state is frozen here; srv lives on in memory

		l2, err := wal.Open(dir, wal.Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		rec := l2.Recovered()
		if rec.Checkpoint == nil {
			t.Fatal("no checkpoint recovered")
		}
		tail := make([]ReplayRecord, len(rec.Tail))
		for i, r := range rec.Tail {
			tail[i] = ReplayRecord{EpochBefore: r.EpochBefore, Ops: r.Ops}
		}
		restored, err := Restore(rec.Checkpoint, tail, func(rtree.ObjectID) int { return 1000 }, Config{WAL: l2})
		if err != nil {
			t.Fatal(err)
		}

		if got, want := restored.Epoch(), srv.Epoch(); got != want {
			t.Fatalf("seed %d: restored epoch %d, want %d", seed, got, want)
		}
		a := srv.cur.Load()
		b := restored.cur.Load()
		if !bytes.Equal(a.tree.AppendImage(nil), b.tree.AppendImage(nil)) {
			t.Fatalf("seed %d: restored arena differs from the uninterrupted one", seed)
		}
		if a.logFloor < b.logFloor {
			// The restored log starts at the newest checkpoint; everything
			// from there on must match the survivor's records exactly.
			off := 0
			for off < len(a.updates) && a.updates[off].epoch <= b.logFloor {
				off++
			}
			if !reflect.DeepEqual(a.updates[off:], b.updates) {
				t.Fatalf("seed %d: invalidation log tail differs", seed)
			}
		} else if !reflect.DeepEqual(a.updates, b.updates) {
			t.Fatalf("seed %d: invalidation log differs", seed)
		}

		// Identical query results, including supporting index NodeIDs. The
		// requests carry the current epoch: invalidation lists for stale
		// client epochs legitimately differ (the restored log floor is the
		// checkpoint epoch, so pre-checkpoint clients get FlushAll), which is
		// a documented caveat, not a divergence.
		for i := 0; i < 10; i++ {
			c := geom.Pt(pool.rng.Float64(), pool.rng.Float64())
			q := query.NewRange(geom.RectFromCenter(c, 0.1, 0.1))
			reqA := &wire.Request{Client: 7, Q: q, Epoch: srv.Epoch()}
			reqB := &wire.Request{Client: 7, Q: q, Epoch: srv.Epoch()}
			respA, _ := srv.Execute(reqA)
			respB, _ := restored.Execute(reqB)
			if !bytes.Equal(wire.EncodeResponse(nil, respA), wire.EncodeResponse(nil, respB)) {
				t.Fatalf("seed %d: query %d responses differ", seed, i)
			}
		}

		// The restored server keeps evolving identically: same epochs, same
		// results, same arena. srv's appends to the closed log latch a
		// durability error but availability wins — it keeps applying.
		ops := pool.batch(25)
		resA := srv.ApplyUpdates(ops, nil)
		resB := restored.ApplyUpdates(ops, nil)
		if !reflect.DeepEqual(resA, resB) {
			t.Fatalf("seed %d: post-restore update results differ", seed)
		}
		if restored.Epoch() != srv.Epoch() {
			t.Fatalf("seed %d: post-restore epochs differ: %d vs %d", seed, restored.Epoch(), srv.Epoch())
		}
		if !bytes.Equal(srv.cur.Load().tree.AppendImage(nil), restored.cur.Load().tree.AppendImage(nil)) {
			t.Fatalf("seed %d: post-restore arenas diverged", seed)
		}
		if err := restored.DurabilityErr(); err != nil {
			t.Fatal(err)
		}
		restored.Close()
		srv.Close()
		l2.Close()
	}
}

// TestRestoreAfterWriterCheckpoint drives enough bytes through the WAL that
// the writer goroutine checkpoints on its own (ShouldCheckpoint), then
// crash-restores and verifies the arena.
func TestRestoreAfterWriterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{NoSync: true, CheckpointBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	srv, items := buildServer(t, 11, 400, Config{WAL: l})
	if err := srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	pool := newDurablePool(99, items)
	for round := 0; round < 60; round++ {
		srv.ApplyUpdates(pool.batch(16), nil)
	}
	if err := srv.DurabilityErr(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	l.Close()

	l2, err := wal.Open(dir, wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rec := l2.Recovered()
	if rec.CheckpointEpoch == 0 {
		t.Fatal("writer never checkpointed despite the byte threshold")
	}
	tail := make([]ReplayRecord, len(rec.Tail))
	for i, r := range rec.Tail {
		tail[i] = ReplayRecord{EpochBefore: r.EpochBefore, Ops: r.Ops}
	}
	restored, err := Restore(rec.Checkpoint, tail, func(rtree.ObjectID) int { return 1000 }, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if restored.Epoch() != srv.Epoch() {
		t.Fatalf("epoch %d != %d", restored.Epoch(), srv.Epoch())
	}
	if !bytes.Equal(srv.cur.Load().tree.AppendImage(nil), restored.cur.Load().tree.AppendImage(nil)) {
		t.Fatal("restored arena differs")
	}
}

// TestOnAppliedObservesEveryEpoch checks the replication tap: the observed
// (epochBefore, ops) stream reconstructs the server's epoch sequence with no
// gaps and no rejected operations.
func TestOnAppliedObservesEveryEpoch(t *testing.T) {
	type batchTap struct {
		epochBefore uint64
		ops         []wire.UpdateOp
	}
	var taps []batchTap
	cfg := Config{OnApplied: func(e uint64, ops []wire.UpdateOp) {
		taps = append(taps, batchTap{e, append([]wire.UpdateOp(nil), ops...)})
	}}
	srv, items := buildServer(t, 21, 300, cfg)
	defer srv.Close()
	pool := newDurablePool(5, items)
	for round := 0; round < 10; round++ {
		srv.ApplyUpdates(pool.batch(8), nil)
	}
	srv.Close() // drain so every ack (and tap) has fired
	next := uint64(0)
	for i, tap := range taps {
		if tap.epochBefore != next {
			t.Fatalf("tap %d: epochBefore %d, want %d", i, tap.epochBefore, next)
		}
		next += uint64(len(tap.ops))
	}
	if next != srv.Epoch() {
		t.Fatalf("taps cover epochs up to %d, server at %d", next, srv.Epoch())
	}
}

// TestDurabilityErrLatches wires a failing log and checks the server keeps
// applying updates while latching the first error.
func TestDurabilityErrLatches(t *testing.T) {
	srv, items := buildServer(t, 31, 200, Config{WAL: failingLog{}})
	defer srv.Close()
	pool := newDurablePool(3, items)
	res := srv.ApplyUpdates(pool.batch(4), nil)
	if len(res) != 4 {
		t.Fatalf("results: %v", res)
	}
	if err := srv.DurabilityErr(); err == nil {
		t.Fatal("WAL failure not latched")
	}
	// Updates keep flowing after the failure.
	srv.ApplyUpdates(pool.batch(4), nil)
}

type failingLog struct{}

func (failingLog) Append(uint64, []wire.UpdateOp) error { return errFail }
func (failingLog) ShouldCheckpoint() bool               { return false }
func (failingLog) Checkpoint(uint64, []byte) error      { return errFail }

var errFail = &walTestError{}

type walTestError struct{}

func (*walTestError) Error() string { return "synthetic wal failure" }
