package server

import (
	"math/bits"

	"repro/internal/bpt"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// Server-side batch execution: when the serving layer drains several
// pipelined requests from one connection in a single read pass
// (wire.ServeConfig.HandleBatch), ExecuteBatch runs the groupable ones —
// fresh partitioned range queries — through one shared traversal of the
// packed image instead of one traversal each. The snapshot pin, root
// descent, and per-position MBR loads are paid once per group; membership
// masks track which requests each queue element still concerns.
//
// Responses are byte-identical to solo execution. The grouped walk is the
// same FIFO expansion as query.Runner's range fast path, and each request's
// subsequence of the shared queue is exactly its solo queue: a child element
// concerns request i only if its parent did (child MBRs are contained in
// the parent's), and FIFO order preserves the relative order of any
// per-request subsequence. Engine counters are maintained per request with
// the same accounting as the solo path.

// groupLimit caps requests per shared traversal, matching the width of the
// membership mask.
const groupLimit = 64

// groupable reports whether a request can join a shared range traversal:
// a fresh (no handed-over state), unbounded, index-shipping range query in
// a partitioned form. Everything else takes the solo path.
func groupable(req *wire.Request, form IndexForm) bool {
	return !req.Catalog &&
		len(req.Updates) == 0 &&
		req.Q.Kind == query.Range &&
		len(req.H) == 0 &&
		len(req.SemWindows) == 0 &&
		!req.NoIndex &&
		form != FullForm &&
		req.Bound == 0
}

// ExecuteBatch processes a batch of requests against one pinned snapshot,
// running groupable range requests through shared traversals of up to
// groupLimit requests each and everything else through the solo path.
// resps[i] answers reqs[i]; the ReleaseResponse contract is the same as
// Execute's. A group that reaches a node outside the packed image (the
// un-packed delta) is replayed solo, so batching never changes results.
func (s *Server) ExecuteBatch(reqs []*wire.Request) ([]*wire.Response, []ExecInfo) {
	resps := make([]*wire.Response, len(reqs))
	infos := make([]ExecInfo, len(reqs))
	if len(reqs) == 0 {
		return resps, infos
	}
	s.reads.Add(int64(len(reqs)))

	ds := make([]int, len(reqs))
	for i, req := range reqs {
		ds[i] = s.feedbackAndD(req)
	}

	group := make([]int, 0, len(reqs))
	for i, req := range reqs {
		if groupable(req, s.cfg.Form) {
			group = append(group, i)
		} else {
			resps[i], infos[i] = s.executeWithD(req, ds[i])
		}
	}
	if len(group) == 0 {
		return resps, infos
	}

	v := s.pinSnapshot()
	defer v.unpin()
	pk := s.packed.Load()
	for len(group) > 0 {
		chunk := group
		if len(chunk) > groupLimit {
			chunk = chunk[:groupLimit]
		}
		group = group[len(chunk):]
		if pk == nil || !s.executeGroup(v, pk, reqs, ds, chunk, resps, infos) {
			for _, i := range chunk {
				resps[i], infos[i] = s.executeWithD(reqs[i], ds[i])
			}
		}
	}
	return resps, infos
}

// gElem is one element of the shared traversal queue: an engine reference
// plus the set of requests (bits indexing the chunk) it still concerns.
type gElem struct {
	ref  query.Ref
	mask uint64
}

// executeGroup runs one shared traversal for chunk (indices into reqs) and
// fills resps/infos at those indices. It returns false — releasing every
// partially built response and execution state — when the walk reaches a
// node the packed image does not cover; the caller replays those requests
// solo. The per-request accounting below mirrors query.Runner's range FIFO
// path and provider.Expand step for step; keep them in sync.
func (s *Server) executeGroup(v *snapshot, pk *rtree.Packed, reqs []*wire.Request, ds []int, chunk []int, resps []*wire.Response, infos []ExecInfo) bool {
	n := len(chunk)
	sts := make([]*execState, n)
	out := make([]*wire.Response, n)
	wins := make([]geom.Rect, n)
	w32 := make([]rtree.Window32, n)
	for j, i := range chunk {
		req := reqs[i]
		sts[j] = s.getExec(v, pk, true, true)
		out[j] = s.acquireResponse()
		out[j].K = req.Q.K
		infos[i] = ExecInfo{D: ds[i]}
		wins[j] = req.Q.Window
		w32[j] = rtree.MakeWindow32(req.Q.Window)
		for _, id := range req.CachedIDs {
			sts[j].noPay[id] = true
		}
	}
	abort := func() bool {
		for j := range sts {
			s.ReleaseResponse(out[j])
			s.putExec(sts[j])
		}
		return false
	}

	root := rootRef(v)
	queue := make([]gElem, 0, 8*n+64)
	var seedMask uint64
	for j, i := range chunk {
		if wins[j].Intersects(root.MBR) {
			seedMask |= 1 << uint(j)
			infos[i].Engine.Pushes++
		}
	}
	if seedMask != 0 {
		queue = append(queue, gElem{ref: root, mask: seedMask})
	}

	// pushChild evaluates one packed child position against every window in
	// mask — branchless float32 planes first, exact rect to confirm — and
	// enqueues the element for the accepting subset.
	pushChild := func(node rtree.NodeID, c int32, mask uint64) {
		rect := pk.Rect(c)
		var cm uint64
		for b := mask; b != 0; b &= b - 1 {
			j := bits.TrailingZeros64(b)
			eng := &infos[chunk[j]].Engine
			eng.Evals++
			if !pk.MayIntersect(c, w32[j]) || !wins[j].Intersects(rect) {
				continue
			}
			eng.Pushes++
			cm |= 1 << uint(j)
		}
		if cm == 0 {
			return
		}
		var ref query.Ref
		if pk.IsLeaf(c) {
			ref = packedRef(pk, c)
		} else {
			ref = query.SuperRefHinted(node, bpt.Code(pk.Code(c)), rect, uint32(c)+1)
		}
		queue = append(queue, gElem{ref: ref, mask: cm})
	}

	for head := 0; head < len(queue); head++ {
		e := queue[head]
		for b := e.mask; b != 0; b &= b - 1 {
			infos[chunk[bits.TrailingZeros64(b)]].Engine.Pops++
		}
		ref := e.ref
		if ref.IsObject() {
			for b := e.mask; b != 0; b &= b - 1 {
				j := bits.TrailingZeros64(b)
				st := sts[j]
				if !st.seen[ref.Obj] {
					st.seen[ref.Obj] = true
					out[j].Objects = append(out[j].Objects, s.objectRep(ref, st.noPay))
				}
			}
			continue
		}

		nd, ok := v.tree.Node(ref.Node)
		if !ok {
			// Dangling reference: the solo provider answers an empty
			// expansion without a visit.
			for b := e.mask; b != 0; b &= b - 1 {
				infos[chunk[bits.TrailingZeros64(b)]].Engine.Expands++
			}
			continue
		}
		for b := e.mask; b != 0; b &= b - 1 {
			sts[bits.TrailingZeros64(b)].prov.visit(nd.ID)
		}
		if ref.Kind == query.RefNode && len(nd.Entries) == 0 {
			for b := e.mask; b != 0; b &= b - 1 {
				infos[chunk[bits.TrailingZeros64(b)]].Engine.Expands++
			}
			continue
		}
		sp, covered := pk.Covers(nd.ID, nd.Gen)
		if !covered {
			return abort()
		}
		pos := sp.Off
		if ref.Kind == query.RefSuper {
			// Grouped super refs always carry their packed position.
			pos = int32(ref.PosHint() - 1)
		}
		for b := e.mask; b != 0; b &= b - 1 {
			j := bits.TrailingZeros64(b)
			sts[j].prov.markPackedExpanded(nd.ID, sp, pos)
			infos[chunk[j]].Engine.Expands++
		}
		if r := pk.Right(pos); r == 0 {
			pushChild(nd.ID, pos, e.mask)
		} else {
			pushChild(nd.ID, pos+1, e.mask)
			pushChild(nd.ID, r, e.mask)
		}
	}

	for j, i := range chunk {
		req := reqs[i]
		st := sts[j]
		resp := out[j]
		buildIndexInto(v, resp, st, s.cfg.Form, ds[i])
		resp.RootID, resp.RootMBR = root.Node, root.MBR
		attachInvalidations(v, st, req, resp)
		infos[i].VisitedNodes = st.prov.visitedCount
		resps[i] = resp
		s.putExec(st)
	}
	return true
}
