// Package server implements the mobile application server of the proactive
// caching architecture (Figure 3): it resumes remainder queries from the
// client's handed-over priority queue, and ships back the remainder results
// Rr together with the supporting index Ir in full, normal-compact, or
// d+-level compact form (the adaptive scheme of Section 4.3).
package server

import (
	"cmp"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/bpt"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// IndexForm selects how the supporting index is represented on the wire.
type IndexForm uint8

const (
	// FullForm ships every accessed node with all its entries (FPRO).
	FullForm IndexForm = iota + 1
	// CompactForm ships the normal compact form CF(n, Qr) (CPRO).
	CompactForm
	// AdaptiveForm ships the d+-level compact form with a per-client d
	// driven by false-miss-rate feedback (APRO).
	AdaptiveForm
)

// Config parameterizes a server.
type Config struct {
	// Form selects the supporting-index representation. Default AdaptiveForm.
	Form IndexForm
	// Sensitivity is the adaptive scheme's s parameter (relative fmr change
	// that triggers a d adjustment). Default 0.20 (Table 6.1).
	Sensitivity float64
	// InitialD is the starting refinement level for adaptive clients.
	InitialD int
	// MaxD caps the refinement level. Default 12.
	MaxD int
	// UpdateLogLimit bounds the invalidation log; clients whose epoch falls
	// off the horizon are told to flush. Default 4096 update records.
	UpdateLogLimit int
	// MaxSnapshots caps the tree buffers in the writer's rotation (the
	// published snapshot plus spares being caught up or drained). More
	// buffers let the writer keep publishing while slow readers pin old
	// snapshots, at the cost of one index copy each. Default 3, minimum 2.
	MaxSnapshots int
	// UpdateQueueLen is the capacity of the writer's batch queue. Default 256.
	UpdateQueueLen int
	// UpdateBatchOps caps how many queued operations the writer coalesces
	// into one published snapshot. Default 512.
	UpdateBatchOps int

	// WAL, when set, makes the server durable: the writer goroutine appends
	// every applied batch to it *before* publishing the batch's snapshot
	// (group commit — one append+sync per coalesced batch, never on the
	// query path) and checkpoints through it when it asks. internal/wal
	// satisfies this structurally; the server does not import it. An append
	// failure latches DurabilityErr and disables further logging rather
	// than failing updates — availability over durability, loudly.
	WAL BatchLog
	// OnApplied, when set, observes every applied batch after its snapshot
	// is published and the waiters acked — the replication stream tap.
	// Called on the writer goroutine; ops is valid only during the call.
	OnApplied func(epochBefore uint64, ops []wire.UpdateOp)
}

func (c Config) normalized() Config {
	if c.Form == 0 {
		c.Form = AdaptiveForm
	}
	if c.Sensitivity <= 0 {
		c.Sensitivity = 0.20
	}
	if c.MaxD <= 0 {
		c.MaxD = 12
	}
	if c.InitialD < 0 {
		c.InitialD = 0
	}
	if c.InitialD > c.MaxD {
		c.InitialD = c.MaxD
	}
	if c.UpdateLogLimit <= 0 {
		c.UpdateLogLimit = 4096
	}
	if c.MaxSnapshots <= 0 {
		c.MaxSnapshots = 3
	}
	if c.MaxSnapshots < 2 {
		c.MaxSnapshots = 2
	}
	if c.UpdateQueueLen <= 0 {
		c.UpdateQueueLen = 256
	}
	if c.UpdateBatchOps <= 0 {
		c.UpdateBatchOps = 512
	}
	return c
}

// ObjectSizer reports the payload size in bytes of each data object.
type ObjectSizer func(rtree.ObjectID) int

// ExecInfo reports per-request processing statistics (the basis of the
// server-CPU observations in Section 6.4).
type ExecInfo struct {
	Engine       query.Stats
	VisitedNodes int
	D            int // refinement level used for this client
}

// clientShardCount is the number of independently locked shards the
// per-client adaptive state is spread over. Concurrent requests from
// different clients contend only when their ids hash to the same shard.
const clientShardCount = 32

// clientShard is one lock domain of the per-client state map.
type clientShard struct {
	mu sync.Mutex
	m  map[wire.ClientID]*clientState
}

// Server owns the R*-tree, the binary partition forest, and per-client
// adaptive state.
//
// A Server is safe for concurrent use, and queries never lock the index:
// Execute pins the currently published snapshot (an atomic load plus a
// reader count, see snapshot.go) and runs entirely against that immutable
// version, while all mutation — InsertObject, DeleteObject, MoveObject,
// ApplyUpdates — flows through a single writer goroutine that batches
// operations and publishes a fresh snapshot per batch. Mutators block until
// their batch is published (read-your-writes) but never stall queries.
// Per-client adaptive state lives in a sharded map so feedback from distinct
// clients never serializes on one lock.
type Server struct {
	// cur is the published snapshot queries pin. Only the writer stores it.
	cur    atomic.Pointer[snapshot]
	forest *bpt.ForestArena
	cfg    Config
	shards [clientShardCount]clientShard

	// packed is the read-optimized image of the index (rtree.Packed): flat
	// partition-tree arrays covering everything up to the epoch it was built
	// at. Validity is checked per node by page generation, so an image built
	// from any snapshot is safe against any other — stale nodes are the
	// un-packed delta and fall back to the arena tree. Built synchronously at
	// construction, republished by a background packer once enough pages have
	// drifted (see snapshot.go).
	packed  atomic.Pointer[rtree.Packed]
	packing atomic.Bool // one repack in flight at a time
	// packGate is the earliest time (unix nanos) the next repack may start,
	// set to a multiple of the last pack's duration when it finishes. It
	// bounds the packer's duty cycle so a sustained update stream spends a
	// small fraction of one core (and its GC budget) on image rebuilds
	// instead of packing after every batch.
	packGate atomic.Int64
	// reads counts Execute/ExecuteBatch entries. The background packer
	// consults it and keeps the image unmaintained while nothing is reading:
	// a write-only phase pays zero repack cost (on small machines the packer
	// competes with the writer for the same core), and the first query after
	// such a phase runs on the arena fallback until the next batch notices
	// the read and schedules a rebuild.
	reads atomic.Int64

	// baseSizes reports build-time object sizes; objects inserted after the
	// build overlay it through extraSizes (lock-free reads, writer stores).
	// hasExtras gates the overlay lookup so the common no-insert deployment
	// never pays the sync.Map key boxing on the hot path.
	baseSizes  ObjectSizer
	extraSizes sync.Map // rtree.ObjectID -> int
	hasExtras  atomic.Bool

	// execPool recycles per-request execution state (provider, engine
	// runner, scratch sets); respPool recycles responses returned to the
	// server through ReleaseResponse. Both make a warm Execute effectively
	// allocation-free.
	execPool sync.Pool
	respPool sync.Pool

	// Writer lifecycle (see snapshot.go): started lazily on first update,
	// stopped by Close.
	wmu    sync.Mutex
	wr     *writer
	closed bool

	// durErr latches the first WAL failure (durable.go); once set the
	// writer stops logging and DurabilityErr reports it.
	durErr atomic.Pointer[walFailure]
}

// clientState is the adaptive refinement state of one client, guarded by its
// shard's mutex.
type clientState struct {
	d       int
	lastFMR float64
	hasLast bool
}

// New constructs a server over an existing index. Ownership of the tree
// transfers to the server: once the first update is applied, the tree
// becomes one buffer of the writer's snapshot rotation and is mutated by the
// writer goroutine (use View for safe access to the live index).
func New(tree *rtree.Tree, sizes ObjectSizer, cfg Config) *Server {
	s := &Server{
		forest: bpt.NewForestArena(tree.NodeSpan()),
		cfg:    cfg.normalized(),
	}
	for i := range s.shards {
		s.shards[i].m = make(map[wire.ClientID]*clientState)
	}
	s.baseSizes = sizes
	s.cur.Store(newSnapshot(tree, s.forest.View(), 0, 0, nil))
	s.packed.Store(rtree.Pack(tree))
	return s
}

// Packed exposes the current packed image (diagnostics and tests).
func (s *Server) Packed() *rtree.Packed { return s.packed.Load() }

// sizeOf reports an object's payload size, preferring the post-build overlay.
func (s *Server) sizeOf(id rtree.ObjectID) int {
	if s.hasExtras.Load() {
		if sz, ok := s.extraSizes.Load(id); ok {
			return sz.(int)
		}
	}
	return s.baseSizes(id)
}

// Tree exposes the currently published index version. Callers must treat it
// as read-only and must not hold the result across index mutations: once the
// snapshot it belongs to is retired and drained, the writer reuses the
// buffer. Prefer View for anything that overlaps updates.
func (s *Server) Tree() *rtree.Tree { return s.cur.Load().tree }

// RootRef returns the reference query processing starts from; clients use it
// as their catalog entry for the index root.
func (s *Server) RootRef() query.Ref {
	v := s.pinSnapshot()
	defer v.unpin()
	return rootRef(v)
}

// rootRef builds the root reference of a pinned snapshot.
func rootRef(v *snapshot) query.Ref {
	return query.FromEntry(v.tree.RootEntry())
}

// shard returns the lock domain owning a client's state.
func (s *Server) shard(id wire.ClientID) *clientShard {
	return &s.shards[uint32(id)%clientShardCount]
}

// ClientD returns the current adaptive refinement level for a client.
func (s *Server) ClientD(id wire.ClientID) int {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.stateLocked(id, s.cfg.InitialD).d
}

// stateLocked returns (creating if needed) a client's state. The shard's
// mutex must be held.
func (sh *clientShard) stateLocked(id wire.ClientID, initialD int) *clientState {
	st, ok := sh.m[id]
	if !ok {
		st = &clientState{d: initialD}
		sh.m[id] = st
	}
	return st
}

// feedbackAndD folds the request's false-miss-rate feedback (if any) into
// the client's adaptive state and returns the refinement level to use for
// this request. All clientState access happens under the shard lock here,
// so concurrent requests from the same client serialize only on this small
// critical section, never on query execution.
func (s *Server) feedbackAndD(req *wire.Request) int {
	sh := s.shard(req.Client)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.stateLocked(req.Client, s.cfg.InitialD)
	if req.HasFMR {
		s.applyFeedback(st, req.FMR)
	}
	return st.d
}

// applyFeedback implements the adaptive rule of Section 4.3: a false-miss
// rate more than s percent above the last reported one means the cached
// index is too coarse (raise d); more than s percent below means it is
// finer than needed (lower d). The caller must hold the state's shard lock.
func (s *Server) applyFeedback(st *clientState, fmr float64) {
	if !st.hasLast {
		st.lastFMR, st.hasLast = fmr, true
		return
	}
	switch {
	case fmr > st.lastFMR*(1+s.cfg.Sensitivity):
		if st.d < s.cfg.MaxD {
			st.d++
		}
	case fmr < st.lastFMR*(1-s.cfg.Sensitivity):
		if st.d > 0 {
			st.d--
		}
	}
	st.lastFMR = fmr
}

// execState is the pooled per-request execution state: the query provider,
// the engine runner, and every scratch structure Execute needs. A warm state
// serves a request without allocating. States are owned by exactly one
// request at a time (sync.Pool) and never shared.
type execState struct {
	prov     provider
	runner   query.Runner
	seen     map[rtree.ObjectID]bool // result dedup
	noPay    map[rtree.ObjectID]bool // objects whose payload the client holds
	seenN    map[rtree.NodeID]bool   // invalidation-report node dedup
	seenO    map[rtree.ObjectID]bool // invalidation-report object dedup
	seed     []query.QueuedElem      // rekeyed / root-seeded queue
	nodesBuf []*rtree.Node           // buildIndex ordering scratch
	cutBuf   bpt.Cut                 // frontier scratch
	cutBuf2  bpt.Cut                 // refined-cut scratch
}

// scratchMapLimit bounds retained scratch-set capacity: a pathological
// request (huge CachedIDs list, giant result set) must not pin its buckets
// in the pool forever.
const scratchMapLimit = 4096

func resetScratchMap[K comparable](m map[K]bool) map[K]bool {
	if m == nil || len(m) > scratchMapLimit {
		return make(map[K]bool)
	}
	clear(m)
	return m
}

// getExec borrows a request state from the pool, bound to the pinned
// snapshot v and the packed image pk (callers sharing one image across
// several states must pass the same pointer — the expanded-position bitsets
// are indexed by its spans). forQuery resets the provider and query scratch
// (the visited bitset is sized to v's arena span); catalog and update
// requests skip that and only use the invalidation scratch.
func (s *Server) getExec(v *snapshot, pk *rtree.Packed, partitioned, forQuery bool) *execState {
	st, _ := s.execPool.Get().(*execState)
	if st == nil {
		st = &execState{}
	}
	if forQuery {
		st.prov.reset(v, pk, partitioned)
		st.seen = resetScratchMap(st.seen)
		st.noPay = resetScratchMap(st.noPay)
		st.seed = st.seed[:0]
		st.nodesBuf = st.nodesBuf[:0]
		st.cutBuf = st.cutBuf[:0]
		st.cutBuf2 = st.cutBuf2[:0]
	}
	st.seenN = resetScratchMap(st.seenN)
	st.seenO = resetScratchMap(st.seenO)
	return st
}

func (s *Server) putExec(st *execState) {
	st.runner.Reset() // drop element refs now rather than at next borrow
	// Node pointers reach into the tree arena; a pooled state must not pin
	// a superseded arena generation (the tree may grow between requests).
	// Clear the full capacity: this request may have used fewer slots than
	// an earlier one.
	clear(st.nodesBuf[:cap(st.nodesBuf)])
	s.execPool.Put(st)
}

// acquireResponse returns a zeroed response, recycled when a previous one
// was released.
func (s *Server) acquireResponse() *wire.Response {
	resp, _ := s.respPool.Get().(*wire.Response)
	if resp == nil {
		resp = &wire.Response{}
	}
	return resp
}

// ReleaseResponse returns a response obtained from Execute to the server's
// response pool, retaining its backing slices (including per-NodeRep element
// arrays) for the next request. Callers that release must not touch the
// response afterwards; callers that do not release (in-process simulations
// that integrate the response into a cache) simply leave it to the garbage
// collector. The serving layer releases after encoding a response to the
// wire.
func (s *Server) ReleaseResponse(resp *wire.Response) {
	if resp == nil {
		return
	}
	resp.Objects = resp.Objects[:0]
	resp.Pairs = resp.Pairs[:0]
	resp.Index = resp.Index[:0] // NodeRep.Elems capacity survives past len
	resp.K = 0
	resp.RootID = rtree.InvalidNode
	resp.RootMBR = geom.Rect{}
	resp.Epoch = 0
	resp.FlushAll = false
	resp.InvalidNodes = resp.InvalidNodes[:0] // capacity survives for the next report
	resp.InvalidObjs = resp.InvalidObjs[:0]
	resp.UpdateResults = resp.UpdateResults[:0]
	s.respPool.Put(resp)
}

// Execute processes one request and builds the response. It is safe to call
// from many goroutines at once and takes no lock on the index: it pins the
// currently published snapshot (an atomic load plus a reader count) and runs
// entirely against that immutable version, so neither other queries nor a
// sustained update stream can stall it.
//
// The returned response may be recycled via ReleaseResponse once the caller
// is done with it; see there for the ownership contract.
func (s *Server) Execute(req *wire.Request) (*wire.Response, ExecInfo) {
	s.reads.Add(1)
	return s.executeWithD(req, s.feedbackAndD(req))
}

// executeWithD is Execute after feedback has been folded in; the batch path
// calls it directly so a group abort cannot apply a request's FMR feedback
// twice.
func (s *Server) executeWithD(req *wire.Request, d int) (*wire.Response, ExecInfo) {
	v := s.pinSnapshot()
	defer v.unpin()

	if req.Catalog {
		st := s.getExec(v, nil, false, false)
		defer s.putExec(st)
		root := rootRef(v)
		resp := s.acquireResponse()
		resp.RootID, resp.RootMBR = root.Node, root.MBR
		attachInvalidations(v, st, req, resp)
		return resp, ExecInfo{D: d}
	}

	partitioned := s.cfg.Form != FullForm && !req.NoIndex
	st := s.getExec(v, s.packed.Load(), partitioned, true)
	defer s.putExec(st)

	resp := s.acquireResponse()
	resp.K = req.Q.K
	info := ExecInfo{D: d}

	// Objects the client already holds: no payload bytes for those.
	for _, id := range req.CachedIDs {
		st.noPay[id] = true
	}
	for _, qe := range req.H {
		if qe.Deferred && qe.Elem.IsObjectElem() && !qe.Elem.Pair {
			st.noPay[qe.Elem.A.Obj] = true
		}
	}

	switch {
	case len(req.SemWindows) > 0 && req.Q.Kind == query.Range:
		// Semantic-caching remainder: union of trimmed windows.
		for _, w := range req.SemWindows {
			q := query.NewRange(w)
			st.seed = query.AppendSeedRoot(st.seed[:0], q, rootRef(v))
			out := st.runner.Run(q, &st.prov, st.seed)
			info.Engine.Add(out.Stats)
			for _, r := range out.Results {
				if !st.seen[r.Obj] {
					st.seen[r.Obj] = true
					resp.Objects = append(resp.Objects, s.objectRep(r, st.noPay))
				}
			}
		}
	default:
		seed := req.H
		if len(seed) == 0 {
			st.seed = query.AppendSeedRoot(st.seed[:0], req.Q, rootRef(v))
			seed = st.seed
		} else {
			st.seed = appendRekeyed(st.seed[:0], req.Q, seed)
			seed = st.seed
		}
		// Bound is cluster shard-routing metadata: a router that already
		// holds k candidates tells the shard the global k-th-best distance,
		// so the sub-query stops descending past it.
		out := st.runner.RunBounded(req.Q, &st.prov, seed, req.Bound)
		info.Engine = out.Stats
		for _, r := range out.Results {
			if !st.seen[r.Obj] {
				st.seen[r.Obj] = true
				resp.Objects = append(resp.Objects, s.objectRep(r, st.noPay))
			}
		}
		for _, p := range out.Pairs {
			resp.Pairs = append(resp.Pairs, [2]rtree.ObjectID{p[0].Obj, p[1].Obj})
			for _, r := range p {
				if !st.seen[r.Obj] {
					st.seen[r.Obj] = true
					resp.Objects = append(resp.Objects, s.objectRep(r, st.noPay))
				}
			}
		}
	}

	if !req.NoIndex {
		buildIndexInto(v, resp, st, s.cfg.Form, d)
	}
	root := rootRef(v)
	resp.RootID, resp.RootMBR = root.Node, root.MBR
	attachInvalidations(v, st, req, resp)
	info.VisitedNodes = st.prov.visitedCount
	return resp, info
}

func (s *Server) objectRep(r query.Ref, noPayload map[rtree.ObjectID]bool) wire.ObjectRep {
	return wire.ObjectRep{
		ID:      r.Obj,
		MBR:     r.MBR,
		Size:    s.sizeOf(r.Obj),
		Payload: !noPayload[r.Obj],
	}
}

// appendRekeyed recomputes priorities of handed-over elements from their
// MBRs (the client's keys are not trusted) and copies them, with deferred
// flags, into the request's seed buffer.
func appendRekeyed(dst []query.QueuedElem, q query.Query, h []query.QueuedElem) []query.QueuedElem {
	for _, qe := range h {
		var key float64
		if qe.Elem.Pair {
			key = q.PairKeyFor(qe.Elem.A.MBR, qe.Elem.B.MBR)
		} else {
			key = q.KeyFor(qe.Elem.A.MBR)
		}
		dst = append(dst, query.QueuedElem{Key: key, Elem: qe.Elem, Deferred: qe.Deferred})
	}
	return dst
}

// buildIndexInto assembles Ir directly into resp.Index: one representation
// per node the remainder query accessed, parents before children, in the
// configured form, all against the pinned snapshot. Reps and their element
// slices reuse the pooled response's capacity.
func buildIndexInto(v *snapshot, resp *wire.Response, st *execState, form IndexForm, d int) {
	p := &st.prov
	nodes := st.nodesBuf
	for _, id := range p.visited {
		if n, ok := v.tree.Node(id); ok {
			nodes = append(nodes, n)
		}
	}
	st.nodesBuf = nodes
	slices.SortStableFunc(nodes, func(a, b *rtree.Node) int { return cmp.Compare(b.Level, a.Level) })

	reps := resp.Index
	for _, n := range nodes {
		if len(n.Entries) == 0 {
			continue
		}

		// Extend reps in place so a recycled NodeRep's element array is
		// reused instead of reallocated.
		if len(reps) < cap(reps) {
			reps = reps[:len(reps)+1]
		} else {
			reps = append(reps, wire.NodeRep{})
		}
		rep := &reps[len(reps)-1]
		rep.ID, rep.Level = n.ID, n.Level
		rep.Elems = rep.Elems[:0]

		// Packed nodes emit their cut straight from the flat arrays: the
		// preorder walk yields lexicographic code order, exactly what the
		// forest's cut construction produces, without the intermediate Cut
		// slice or the byCode string-map lookups.
		if sp, ok := p.packedSpan(n); ok {
			rep.Elems = appendPackedCut(rep.Elems, p.packed, sp, p.pexp[n.ID], form, d)
			continue
		}

		pt := v.forest.Get(n)
		cut := st.cutBuf[:0]
		switch form {
		case FullForm:
			cut = pt.FullCutInto(cut)
		case CompactForm:
			cut = pt.FrontierInto(cut, p.expanded[n.ID])
		default: // AdaptiveForm
			st.cutBuf2 = pt.FrontierInto(st.cutBuf2[:0], p.expanded[n.ID])
			cut = pt.ExpandCutInto(cut, st.cutBuf2, d)
		}
		st.cutBuf = cut

		for _, code := range cut {
			pn, ok := pt.Node(code)
			if !ok {
				continue
			}
			elem := wire.CutElem{Code: code, MBR: pn.MBR}
			if pn.Leaf() {
				elem.Child = pn.Entry.Child
				elem.Obj = pn.Entry.Obj
			} else {
				elem.Super = true
			}
			rep.Elems = append(rep.Elems, elem)
		}
	}
	resp.Index = reps
}

// appendPackedCut emits one node's shipped representation from the packed
// image, mirroring the forest path byte-for-byte: the frontier of the
// expanded positions (bits; nil or root-unset collapses to the root cut),
// refined d further levels under AdaptiveForm, or every leaf under FullForm.
func appendPackedCut(dst []wire.CutElem, pk *rtree.Packed, sp rtree.PackedSpan, bits []uint64, form IndexForm, d int) []wire.CutElem {
	expandedBit := func(pos int32) bool {
		if bits == nil {
			return false
		}
		rel := uint32(pos - sp.Off)
		return bits[rel>>6]&(1<<(rel&63)) != 0
	}
	emit := func(pos int32) {
		elem := wire.CutElem{Code: bpt.Code(pk.Code(pos)), MBR: pk.Rect(pos)}
		if pk.IsLeaf(pos) {
			elem.Child = pk.ChildID(pos)
			elem.Obj = pk.ObjID(pos)
		} else {
			elem.Super = true
		}
		dst = append(dst, elem)
	}
	// descend emits the leaves at most depth levels below pos (the d+-level
	// refinement); depth 0 emits pos itself.
	var descend func(pos int32, depth int)
	descend = func(pos int32, depth int) {
		if pk.IsLeaf(pos) || depth == 0 {
			emit(pos)
			return
		}
		descend(pos+1, depth-1)
		descend(pk.Right(pos), depth-1)
	}
	var frontier func(pos int32)
	frontier = func(pos int32) {
		if !pk.IsLeaf(pos) && expandedBit(pos) {
			frontier(pos + 1)
			frontier(pk.Right(pos))
			return
		}
		if form == AdaptiveForm {
			descend(pos, d)
		} else {
			emit(pos)
		}
	}

	switch {
	case form == FullForm:
		descend(sp.Off, int(sp.Count)) // depth bound > height: reaches all leaves
	case !expandedBit(sp.Off):
		// Root not expanded: the cut is the root alone (possibly refined).
		if form == AdaptiveForm {
			descend(sp.Off, d)
		} else {
			emit(sp.Off)
		}
	default:
		frontier(sp.Off)
	}
	return dst
}
