// Package server implements the mobile application server of the proactive
// caching architecture (Figure 3): it resumes remainder queries from the
// client's handed-over priority queue, and ships back the remainder results
// Rr together with the supporting index Ir in full, normal-compact, or
// d+-level compact form (the adaptive scheme of Section 4.3).
package server

import (
	"cmp"
	"slices"
	"sync"

	"repro/internal/bpt"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// IndexForm selects how the supporting index is represented on the wire.
type IndexForm uint8

const (
	// FullForm ships every accessed node with all its entries (FPRO).
	FullForm IndexForm = iota + 1
	// CompactForm ships the normal compact form CF(n, Qr) (CPRO).
	CompactForm
	// AdaptiveForm ships the d+-level compact form with a per-client d
	// driven by false-miss-rate feedback (APRO).
	AdaptiveForm
)

// Config parameterizes a server.
type Config struct {
	// Form selects the supporting-index representation. Default AdaptiveForm.
	Form IndexForm
	// Sensitivity is the adaptive scheme's s parameter (relative fmr change
	// that triggers a d adjustment). Default 0.20 (Table 6.1).
	Sensitivity float64
	// InitialD is the starting refinement level for adaptive clients.
	InitialD int
	// MaxD caps the refinement level. Default 12.
	MaxD int
	// UpdateLogLimit bounds the invalidation log; clients whose epoch falls
	// off the horizon are told to flush. Default 4096 update records.
	UpdateLogLimit int
}

func (c Config) normalized() Config {
	if c.Form == 0 {
		c.Form = AdaptiveForm
	}
	if c.Sensitivity <= 0 {
		c.Sensitivity = 0.20
	}
	if c.MaxD <= 0 {
		c.MaxD = 12
	}
	if c.InitialD < 0 {
		c.InitialD = 0
	}
	if c.InitialD > c.MaxD {
		c.InitialD = c.MaxD
	}
	if c.UpdateLogLimit <= 0 {
		c.UpdateLogLimit = 4096
	}
	return c
}

// ObjectSizer reports the payload size in bytes of each data object.
type ObjectSizer func(rtree.ObjectID) int

// ExecInfo reports per-request processing statistics (the basis of the
// server-CPU observations in Section 6.4).
type ExecInfo struct {
	Engine       query.Stats
	VisitedNodes int
	D            int // refinement level used for this client
}

// clientShardCount is the number of independently locked shards the
// per-client adaptive state is spread over. Concurrent requests from
// different clients contend only when their ids hash to the same shard.
const clientShardCount = 32

// clientShard is one lock domain of the per-client state map.
type clientShard struct {
	mu sync.Mutex
	m  map[wire.ClientID]*clientState
}

// Server owns the R*-tree, the binary partition forest, and per-client
// adaptive state.
//
// A Server is safe for concurrent use. Execute (and the read-only accessors)
// may be called from any number of goroutines; the index mutators
// (InsertObject, DeleteObject, MoveObject) take a write lock and exclude
// queries for their duration. Per-client adaptive state lives in a sharded
// map so feedback from distinct clients never serializes on one lock.
type Server struct {
	// mu guards the tree, the forest's underlying nodes, the update log,
	// and extraSizes. Query execution holds the read side; index mutation
	// holds the write side.
	mu     sync.RWMutex
	tree   *rtree.Tree
	forest *bpt.Forest
	sizes  ObjectSizer
	cfg    Config
	shards [clientShardCount]clientShard

	// execPool recycles per-request execution state (provider, engine
	// runner, scratch sets); respPool recycles responses returned to the
	// server through ReleaseResponse. Both make a warm Execute effectively
	// allocation-free.
	execPool sync.Pool
	respPool sync.Pool

	// Update/invalidation state (see update.go), guarded by mu.
	epoch      uint64
	logFloor   uint64
	updates    []updateRecord
	extraSizes map[rtree.ObjectID]int // sizes of objects inserted post-build
}

// clientState is the adaptive refinement state of one client, guarded by its
// shard's mutex.
type clientState struct {
	d       int
	lastFMR float64
	hasLast bool
}

// New constructs a server over an existing index.
func New(tree *rtree.Tree, sizes ObjectSizer, cfg Config) *Server {
	s := &Server{
		tree:       tree,
		forest:     bpt.NewForest(),
		cfg:        cfg.normalized(),
		extraSizes: make(map[rtree.ObjectID]int),
	}
	for i := range s.shards {
		s.shards[i].m = make(map[wire.ClientID]*clientState)
	}
	s.sizes = func(id rtree.ObjectID) int {
		if sz, ok := s.extraSizes[id]; ok {
			return sz
		}
		return sizes(id)
	}
	return s
}

// Tree exposes the underlying index. Callers must treat it as read-only and
// must not hold the result across calls to the index mutators.
func (s *Server) Tree() *rtree.Tree { return s.tree }

// RootRef returns the reference query processing starts from; clients use it
// as their catalog entry for the index root.
func (s *Server) RootRef() query.Ref {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rootRefLocked()
}

// rootRefLocked is RootRef for callers already holding mu.
func (s *Server) rootRefLocked() query.Ref {
	return query.FromEntry(s.tree.RootEntry())
}

// shard returns the lock domain owning a client's state.
func (s *Server) shard(id wire.ClientID) *clientShard {
	return &s.shards[uint32(id)%clientShardCount]
}

// ClientD returns the current adaptive refinement level for a client.
func (s *Server) ClientD(id wire.ClientID) int {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.stateLocked(id, s.cfg.InitialD).d
}

// stateLocked returns (creating if needed) a client's state. The shard's
// mutex must be held.
func (sh *clientShard) stateLocked(id wire.ClientID, initialD int) *clientState {
	st, ok := sh.m[id]
	if !ok {
		st = &clientState{d: initialD}
		sh.m[id] = st
	}
	return st
}

// feedbackAndD folds the request's false-miss-rate feedback (if any) into
// the client's adaptive state and returns the refinement level to use for
// this request. All clientState access happens under the shard lock here,
// so concurrent requests from the same client serialize only on this small
// critical section, never on query execution.
func (s *Server) feedbackAndD(req *wire.Request) int {
	sh := s.shard(req.Client)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.stateLocked(req.Client, s.cfg.InitialD)
	if req.HasFMR {
		s.applyFeedback(st, req.FMR)
	}
	return st.d
}

// applyFeedback implements the adaptive rule of Section 4.3: a false-miss
// rate more than s percent above the last reported one means the cached
// index is too coarse (raise d); more than s percent below means it is
// finer than needed (lower d). The caller must hold the state's shard lock.
func (s *Server) applyFeedback(st *clientState, fmr float64) {
	if !st.hasLast {
		st.lastFMR, st.hasLast = fmr, true
		return
	}
	switch {
	case fmr > st.lastFMR*(1+s.cfg.Sensitivity):
		if st.d < s.cfg.MaxD {
			st.d++
		}
	case fmr < st.lastFMR*(1-s.cfg.Sensitivity):
		if st.d > 0 {
			st.d--
		}
	}
	st.lastFMR = fmr
}

// execState is the pooled per-request execution state: the query provider,
// the engine runner, and every scratch structure Execute needs. A warm state
// serves a request without allocating. States are owned by exactly one
// request at a time (sync.Pool) and never shared.
type execState struct {
	prov     provider
	runner   query.Runner
	seen     map[rtree.ObjectID]bool // result dedup
	noPay    map[rtree.ObjectID]bool // objects whose payload the client holds
	seed     []query.QueuedElem      // rekeyed / root-seeded queue
	nodesBuf []*rtree.Node           // buildIndex ordering scratch
	cutBuf   bpt.Cut                 // frontier scratch
	cutBuf2  bpt.Cut                 // refined-cut scratch
}

// scratchMapLimit bounds retained scratch-set capacity: a pathological
// request (huge CachedIDs list, giant result set) must not pin its buckets
// in the pool forever.
const scratchMapLimit = 4096

func resetScratchMap(m map[rtree.ObjectID]bool) map[rtree.ObjectID]bool {
	if m == nil || len(m) > scratchMapLimit {
		return make(map[rtree.ObjectID]bool)
	}
	clear(m)
	return m
}

// getExec borrows a request state from the pool. The caller must hold the
// server's read lock (provider reset sizes the visited bitset to the tree).
func (s *Server) getExec(partitioned bool) *execState {
	st, _ := s.execPool.Get().(*execState)
	if st == nil {
		st = &execState{}
	}
	st.prov.reset(s, partitioned)
	st.seen = resetScratchMap(st.seen)
	st.noPay = resetScratchMap(st.noPay)
	st.seed = st.seed[:0]
	st.nodesBuf = st.nodesBuf[:0]
	st.cutBuf = st.cutBuf[:0]
	st.cutBuf2 = st.cutBuf2[:0]
	return st
}

func (s *Server) putExec(st *execState) {
	st.runner.Reset() // drop element refs now rather than at next borrow
	// Node pointers reach into the tree arena; a pooled state must not pin
	// a superseded arena generation (the tree may grow between requests).
	// Clear the full capacity: this request may have used fewer slots than
	// an earlier one.
	clear(st.nodesBuf[:cap(st.nodesBuf)])
	s.execPool.Put(st)
}

// acquireResponse returns a zeroed response, recycled when a previous one
// was released.
func (s *Server) acquireResponse() *wire.Response {
	resp, _ := s.respPool.Get().(*wire.Response)
	if resp == nil {
		resp = &wire.Response{}
	}
	return resp
}

// ReleaseResponse returns a response obtained from Execute to the server's
// response pool, retaining its backing slices (including per-NodeRep element
// arrays) for the next request. Callers that release must not touch the
// response afterwards; callers that do not release (in-process simulations
// that integrate the response into a cache) simply leave it to the garbage
// collector. The serving layer releases after encoding a response to the
// wire.
func (s *Server) ReleaseResponse(resp *wire.Response) {
	if resp == nil {
		return
	}
	resp.Objects = resp.Objects[:0]
	resp.Pairs = resp.Pairs[:0]
	resp.Index = resp.Index[:0] // NodeRep.Elems capacity survives past len
	resp.K = 0
	resp.RootID = rtree.InvalidNode
	resp.RootMBR = geom.Rect{}
	resp.Epoch = 0
	resp.FlushAll = false
	resp.InvalidNodes = nil // invalidation reports are per-request slices
	resp.InvalidObjs = nil
	s.respPool.Put(resp)
}

// Execute processes one request and builds the response. It is safe to call
// from many goroutines at once: requests share the index read lock, so
// queries never block each other — only index mutations exclude them.
//
// The returned response may be recycled via ReleaseResponse once the caller
// is done with it; see there for the ownership contract.
func (s *Server) Execute(req *wire.Request) (*wire.Response, ExecInfo) {
	d := s.feedbackAndD(req)

	s.mu.RLock()
	defer s.mu.RUnlock()

	if req.Catalog {
		root := s.rootRefLocked()
		resp := s.acquireResponse()
		resp.RootID, resp.RootMBR = root.Node, root.MBR
		s.attachInvalidations(req, resp)
		return resp, ExecInfo{D: d}
	}

	partitioned := s.cfg.Form != FullForm && !req.NoIndex
	st := s.getExec(partitioned)
	defer s.putExec(st)

	resp := s.acquireResponse()
	resp.K = req.Q.K
	info := ExecInfo{D: d}

	// Objects the client already holds: no payload bytes for those.
	for _, id := range req.CachedIDs {
		st.noPay[id] = true
	}
	for _, qe := range req.H {
		if qe.Deferred && qe.Elem.IsObjectElem() && !qe.Elem.Pair {
			st.noPay[qe.Elem.A.Obj] = true
		}
	}

	switch {
	case len(req.SemWindows) > 0 && req.Q.Kind == query.Range:
		// Semantic-caching remainder: union of trimmed windows.
		for _, w := range req.SemWindows {
			q := query.NewRange(w)
			st.seed = query.AppendSeedRoot(st.seed[:0], q, s.rootRefLocked())
			out := st.runner.Run(q, &st.prov, st.seed)
			info.Engine.Add(out.Stats)
			for _, r := range out.Results {
				if !st.seen[r.Obj] {
					st.seen[r.Obj] = true
					resp.Objects = append(resp.Objects, s.objectRep(r, st.noPay))
				}
			}
		}
	default:
		seed := req.H
		if len(seed) == 0 {
			st.seed = query.AppendSeedRoot(st.seed[:0], req.Q, s.rootRefLocked())
			seed = st.seed
		} else {
			st.seed = appendRekeyed(st.seed[:0], req.Q, seed)
			seed = st.seed
		}
		out := st.runner.Run(req.Q, &st.prov, seed)
		info.Engine = out.Stats
		for _, r := range out.Results {
			if !st.seen[r.Obj] {
				st.seen[r.Obj] = true
				resp.Objects = append(resp.Objects, s.objectRep(r, st.noPay))
			}
		}
		for _, p := range out.Pairs {
			resp.Pairs = append(resp.Pairs, [2]rtree.ObjectID{p[0].Obj, p[1].Obj})
			for _, r := range p {
				if !st.seen[r.Obj] {
					st.seen[r.Obj] = true
					resp.Objects = append(resp.Objects, s.objectRep(r, st.noPay))
				}
			}
		}
	}

	if !req.NoIndex {
		s.buildIndexInto(resp, st, d)
	}
	root := s.rootRefLocked()
	resp.RootID, resp.RootMBR = root.Node, root.MBR
	s.attachInvalidations(req, resp)
	info.VisitedNodes = st.prov.visitedCount
	return resp, info
}

func (s *Server) objectRep(r query.Ref, noPayload map[rtree.ObjectID]bool) wire.ObjectRep {
	return wire.ObjectRep{
		ID:      r.Obj,
		MBR:     r.MBR,
		Size:    s.sizes(r.Obj),
		Payload: !noPayload[r.Obj],
	}
}

// appendRekeyed recomputes priorities of handed-over elements from their
// MBRs (the client's keys are not trusted) and copies them, with deferred
// flags, into the request's seed buffer.
func appendRekeyed(dst []query.QueuedElem, q query.Query, h []query.QueuedElem) []query.QueuedElem {
	for _, qe := range h {
		var key float64
		if qe.Elem.Pair {
			key = q.PairKeyFor(qe.Elem.A.MBR, qe.Elem.B.MBR)
		} else {
			key = q.KeyFor(qe.Elem.A.MBR)
		}
		dst = append(dst, query.QueuedElem{Key: key, Elem: qe.Elem, Deferred: qe.Deferred})
	}
	return dst
}

// buildIndexInto assembles Ir directly into resp.Index: one representation
// per node the remainder query accessed, parents before children, in the
// configured form. Reps and their element slices reuse the pooled response's
// capacity.
func (s *Server) buildIndexInto(resp *wire.Response, st *execState, d int) {
	p := &st.prov
	nodes := st.nodesBuf
	for _, id := range p.visited {
		if n, ok := s.tree.Node(id); ok {
			nodes = append(nodes, n)
		}
	}
	st.nodesBuf = nodes
	slices.SortStableFunc(nodes, func(a, b *rtree.Node) int { return cmp.Compare(b.Level, a.Level) })

	reps := resp.Index
	for _, n := range nodes {
		if len(n.Entries) == 0 {
			continue
		}
		pt := s.forest.Get(n)
		cut := st.cutBuf[:0]
		switch s.cfg.Form {
		case FullForm:
			cut = pt.FullCutInto(cut)
		case CompactForm:
			cut = pt.FrontierInto(cut, p.expanded[n.ID])
		default: // AdaptiveForm
			st.cutBuf2 = pt.FrontierInto(st.cutBuf2[:0], p.expanded[n.ID])
			cut = pt.ExpandCutInto(cut, st.cutBuf2, d)
		}
		st.cutBuf = cut

		// Extend reps in place so a recycled NodeRep's element array is
		// reused instead of reallocated.
		if len(reps) < cap(reps) {
			reps = reps[:len(reps)+1]
		} else {
			reps = append(reps, wire.NodeRep{})
		}
		rep := &reps[len(reps)-1]
		rep.ID, rep.Level = n.ID, n.Level
		rep.Elems = rep.Elems[:0]
		for _, code := range cut {
			pn, ok := pt.Node(code)
			if !ok {
				continue
			}
			elem := wire.CutElem{Code: code, MBR: pn.MBR}
			if pn.Leaf() {
				elem.Child = pn.Entry.Child
				elem.Obj = pn.Entry.Obj
			} else {
				elem.Super = true
			}
			rep.Elems = append(rep.Elems, elem)
		}
	}
	resp.Index = reps
}
