// Package server implements the mobile application server of the proactive
// caching architecture (Figure 3): it resumes remainder queries from the
// client's handed-over priority queue, and ships back the remainder results
// Rr together with the supporting index Ir in full, normal-compact, or
// d+-level compact form (the adaptive scheme of Section 4.3).
package server

import (
	"sort"

	"repro/internal/bpt"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// IndexForm selects how the supporting index is represented on the wire.
type IndexForm uint8

const (
	// FullForm ships every accessed node with all its entries (FPRO).
	FullForm IndexForm = iota + 1
	// CompactForm ships the normal compact form CF(n, Qr) (CPRO).
	CompactForm
	// AdaptiveForm ships the d+-level compact form with a per-client d
	// driven by false-miss-rate feedback (APRO).
	AdaptiveForm
)

// Config parameterizes a server.
type Config struct {
	// Form selects the supporting-index representation. Default AdaptiveForm.
	Form IndexForm
	// Sensitivity is the adaptive scheme's s parameter (relative fmr change
	// that triggers a d adjustment). Default 0.20 (Table 6.1).
	Sensitivity float64
	// InitialD is the starting refinement level for adaptive clients.
	InitialD int
	// MaxD caps the refinement level. Default 12.
	MaxD int
	// UpdateLogLimit bounds the invalidation log; clients whose epoch falls
	// off the horizon are told to flush. Default 4096 update records.
	UpdateLogLimit int
}

func (c Config) normalized() Config {
	if c.Form == 0 {
		c.Form = AdaptiveForm
	}
	if c.Sensitivity <= 0 {
		c.Sensitivity = 0.20
	}
	if c.MaxD <= 0 {
		c.MaxD = 12
	}
	if c.InitialD < 0 {
		c.InitialD = 0
	}
	if c.InitialD > c.MaxD {
		c.InitialD = c.MaxD
	}
	if c.UpdateLogLimit <= 0 {
		c.UpdateLogLimit = 4096
	}
	return c
}

// ObjectSizer reports the payload size in bytes of each data object.
type ObjectSizer func(rtree.ObjectID) int

// ExecInfo reports per-request processing statistics (the basis of the
// server-CPU observations in Section 6.4).
type ExecInfo struct {
	Engine       query.Stats
	VisitedNodes int
	D            int // refinement level used for this client
}

// Server owns the R*-tree, the binary partition forest, and per-client
// adaptive state.
type Server struct {
	tree    *rtree.Tree
	forest  *bpt.Forest
	sizes   ObjectSizer
	cfg     Config
	clients map[wire.ClientID]*clientState

	// Update/invalidation state (see update.go).
	epoch      uint64
	logFloor   uint64
	updates    []updateRecord
	extraSizes map[rtree.ObjectID]int // sizes of objects inserted post-build
}

type clientState struct {
	d       int
	lastFMR float64
	hasLast bool
}

// New constructs a server over an existing index.
func New(tree *rtree.Tree, sizes ObjectSizer, cfg Config) *Server {
	s := &Server{
		tree:       tree,
		forest:     bpt.NewForest(),
		cfg:        cfg.normalized(),
		clients:    make(map[wire.ClientID]*clientState),
		extraSizes: make(map[rtree.ObjectID]int),
	}
	s.sizes = func(id rtree.ObjectID) int {
		if sz, ok := s.extraSizes[id]; ok {
			return sz
		}
		return sizes(id)
	}
	return s
}

// Tree exposes the underlying index (read-only use).
func (s *Server) Tree() *rtree.Tree { return s.tree }

// RootRef returns the reference query processing starts from; clients use it
// as their catalog entry for the index root.
func (s *Server) RootRef() query.Ref {
	return query.FromEntry(s.tree.RootEntry())
}

// ClientD returns the current adaptive refinement level for a client.
func (s *Server) ClientD(id wire.ClientID) int { return s.state(id).d }

func (s *Server) state(id wire.ClientID) *clientState {
	st, ok := s.clients[id]
	if !ok {
		st = &clientState{d: s.cfg.InitialD}
		s.clients[id] = st
	}
	return st
}

// applyFeedback implements the adaptive rule of Section 4.3: a false-miss
// rate more than s percent above the last reported one means the cached
// index is too coarse (raise d); more than s percent below means it is
// finer than needed (lower d).
func (s *Server) applyFeedback(st *clientState, fmr float64) {
	if !st.hasLast {
		st.lastFMR, st.hasLast = fmr, true
		return
	}
	switch {
	case fmr > st.lastFMR*(1+s.cfg.Sensitivity):
		if st.d < s.cfg.MaxD {
			st.d++
		}
	case fmr < st.lastFMR*(1-s.cfg.Sensitivity):
		if st.d > 0 {
			st.d--
		}
	}
	st.lastFMR = fmr
}

// Execute processes one request and builds the response.
func (s *Server) Execute(req *wire.Request) (*wire.Response, ExecInfo) {
	st := s.state(req.Client)
	if req.HasFMR {
		s.applyFeedback(st, req.FMR)
	}
	if req.Catalog {
		root := s.RootRef()
		resp := &wire.Response{RootID: root.Node, RootMBR: root.MBR}
		s.attachInvalidations(req, resp)
		return resp, ExecInfo{D: st.d}
	}

	partitioned := s.cfg.Form != FullForm && !req.NoIndex
	prov := newProvider(s, partitioned)

	resp := &wire.Response{K: req.Q.K}
	info := ExecInfo{D: st.d}

	// Objects the client already holds: no payload bytes for those.
	noPayload := make(map[rtree.ObjectID]bool)
	for _, id := range req.CachedIDs {
		noPayload[id] = true
	}
	for _, qe := range req.H {
		if qe.Deferred && qe.Elem.IsObjectElem() && !qe.Elem.Pair {
			noPayload[qe.Elem.A.Obj] = true
		}
	}

	switch {
	case len(req.SemWindows) > 0 && req.Q.Kind == query.Range:
		// Semantic-caching remainder: union of trimmed windows.
		seen := make(map[rtree.ObjectID]bool)
		for _, w := range req.SemWindows {
			q := query.NewRange(w)
			out := query.Run(q, prov, query.SeedRoot(q, s.RootRef()))
			info.Engine.Add(out.Stats)
			for _, r := range out.Results {
				if !seen[r.Obj] {
					seen[r.Obj] = true
					resp.Objects = append(resp.Objects, s.objectRep(r, noPayload))
				}
			}
		}
	default:
		seed := req.H
		if len(seed) == 0 {
			seed = query.SeedRoot(req.Q, s.RootRef())
		} else {
			seed = s.rekey(req.Q, seed)
		}
		out := query.Run(req.Q, prov, seed)
		info.Engine = out.Stats
		seen := make(map[rtree.ObjectID]bool)
		for _, r := range out.Results {
			if !seen[r.Obj] {
				seen[r.Obj] = true
				resp.Objects = append(resp.Objects, s.objectRep(r, noPayload))
			}
		}
		for _, p := range out.Pairs {
			resp.Pairs = append(resp.Pairs, [2]rtree.ObjectID{p[0].Obj, p[1].Obj})
			for _, r := range p {
				if !seen[r.Obj] {
					seen[r.Obj] = true
					resp.Objects = append(resp.Objects, s.objectRep(r, noPayload))
				}
			}
		}
	}

	if !req.NoIndex {
		resp.Index = s.buildIndex(prov, st.d)
	}
	root := s.RootRef()
	resp.RootID, resp.RootMBR = root.Node, root.MBR
	s.attachInvalidations(req, resp)
	info.VisitedNodes = len(prov.visited)
	return resp, info
}

func (s *Server) objectRep(r query.Ref, noPayload map[rtree.ObjectID]bool) wire.ObjectRep {
	return wire.ObjectRep{
		ID:      r.Obj,
		MBR:     r.MBR,
		Size:    s.sizes(r.Obj),
		Payload: !noPayload[r.Obj],
	}
}

// rekey recomputes priorities of handed-over elements from their MBRs (the
// client's keys are not trusted) and drops deferred flags into fresh copies.
func (s *Server) rekey(q query.Query, h []query.QueuedElem) []query.QueuedElem {
	out := make([]query.QueuedElem, len(h))
	for i, qe := range h {
		var key float64
		if qe.Elem.Pair {
			key = q.PairKeyFor(qe.Elem.A.MBR, qe.Elem.B.MBR)
		} else {
			key = q.KeyFor(qe.Elem.A.MBR)
		}
		out[i] = query.QueuedElem{Key: key, Elem: qe.Elem, Deferred: qe.Deferred}
	}
	return out
}

// buildIndex assembles Ir: one representation per node the remainder query
// accessed, parents before children, in the configured form.
func (s *Server) buildIndex(p *provider, d int) []wire.NodeRep {
	nodes := make([]*rtree.Node, 0, len(p.visited))
	for _, id := range p.visited {
		if n, ok := s.tree.Node(id); ok {
			nodes = append(nodes, n)
		}
	}
	sort.SliceStable(nodes, func(i, j int) bool { return nodes[i].Level > nodes[j].Level })

	reps := make([]wire.NodeRep, 0, len(nodes))
	for _, n := range nodes {
		if len(n.Entries) == 0 {
			continue
		}
		pt := s.forest.Get(n)
		var cut bpt.Cut
		switch s.cfg.Form {
		case FullForm:
			cut = pt.FullCut()
		case CompactForm:
			cut = pt.Frontier(closeUpward(p.expanded[n.ID]))
		default: // AdaptiveForm
			cut = pt.ExpandCut(pt.Frontier(closeUpward(p.expanded[n.ID])), d)
		}
		rep := wire.NodeRep{ID: n.ID, Level: n.Level}
		for _, code := range cut {
			pn, ok := pt.Node(code)
			if !ok {
				continue
			}
			elem := wire.CutElem{Code: code, MBR: pn.MBR}
			if pn.Leaf() {
				elem.Child = pn.Entry.Child
				elem.Obj = pn.Entry.Obj
			} else {
				elem.Super = true
			}
			rep.Elems = append(rep.Elems, elem)
		}
		reps = append(reps, rep)
	}
	return reps
}

// closeUpward adds every ancestor of each expanded position. A remainder
// query resumed from a client's super entry (n, code) expands only the
// subtree below code; closing the set upward makes the shipped frontier a
// full cover of the node — the unexplored siblings ride along as super
// entries. Shipping partial covers would let a client whose copy of the
// node was just invalidated install a representation that silently hides
// entries, losing results forever.
func closeUpward(expanded map[bpt.Code]bool) map[bpt.Code]bool {
	if len(expanded) == 0 {
		return expanded
	}
	closed := make(map[bpt.Code]bool, 2*len(expanded))
	for code := range expanded {
		closed[code] = true
		for c := code; len(c) > 0; {
			c = c.Parent()
			closed[c] = true
		}
	}
	return closed
}
