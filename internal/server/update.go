package server

import (
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// Update support — the paper's first future-work item ("investigate the
// impact of server updates on proactive caching and devise efficient cache
// invalidation schemes"). The server keeps an epoch-stamped log of the index
// nodes and objects each update touched; clients attach their last-seen
// epoch to requests, and responses piggyback the ids invalidated since then
// (a pull-based invalidation report in the spirit of Xu et al.'s IR
// schemes, adapted to the unicast setting).

// updateRecord is one epoch's worth of invalidations.
type updateRecord struct {
	epoch uint64
	nodes []rtree.NodeID
	objs  []rtree.ObjectID
}

// InsertObject adds an object to the index, assigns it the next epoch, and
// logs every index node the insertion touched. Like all index mutators it
// takes the server's write lock, excluding in-flight queries.
func (s *Server) InsertObject(id rtree.ObjectID, mbr geom.Rect, size int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	touched := s.capture(func() {
		s.tree.Insert(id, mbr)
	})
	s.extraSizes[id] = size
	s.logUpdate(touched, nil)
}

// DeleteObject removes an object. It reports whether the object existed.
func (s *Server) DeleteObject(id rtree.ObjectID, mbr geom.Rect) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ok bool
	touched := s.capture(func() {
		ok = s.tree.Delete(id, mbr)
	})
	if !ok {
		return false
	}
	s.logUpdate(touched, []rtree.ObjectID{id})
	return true
}

// MoveObject relocates an object (delete + insert under one epoch), the
// moving-objects workload of the update experiments.
func (s *Server) MoveObject(id rtree.ObjectID, from, to geom.Rect) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ok bool
	touched := s.capture(func() {
		if ok = s.tree.Delete(id, from); ok {
			s.tree.Insert(id, to)
		}
	})
	if !ok {
		return false
	}
	s.logUpdate(touched, []rtree.ObjectID{id})
	return true
}

// capture runs fn with the touch hook installed and returns the set of
// mutated nodes in first-touch order. Partition trees for touched nodes are
// invalidated so compact forms rebuild against current entries. The caller
// must hold the server's write lock.
func (s *Server) capture(fn func()) []rtree.NodeID {
	seen := make(map[rtree.NodeID]bool)
	var order []rtree.NodeID
	s.tree.SetTouchHook(func(id rtree.NodeID) {
		if !seen[id] {
			seen[id] = true
			order = append(order, id)
		}
	})
	defer s.tree.SetTouchHook(nil)
	fn()
	for _, id := range order {
		s.forest.Invalidate(id)
	}
	return order
}

// logUpdate appends one epoch's invalidation record. The caller must hold
// the server's write lock.
func (s *Server) logUpdate(nodes []rtree.NodeID, objs []rtree.ObjectID) {
	s.epoch++
	s.updates = append(s.updates, updateRecord{epoch: s.epoch, nodes: nodes, objs: objs})
	// Bound the log; clients older than the horizon get a full flush.
	if len(s.updates) > s.cfg.UpdateLogLimit {
		drop := len(s.updates) - s.cfg.UpdateLogLimit
		s.logFloor = s.updates[drop-1].epoch
		s.updates = append(s.updates[:0], s.updates[drop:]...)
	}
}

// Epoch returns the server's current update epoch.
func (s *Server) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// invalidationsSince collects the node/object ids changed after the client's
// epoch. The boolean reports whether the log horizon was exceeded, in which
// case the client must drop its whole cache (FlushAll). The caller must hold
// at least the read side of the server's lock.
func (s *Server) invalidationsSince(epoch uint64) (nodes []rtree.NodeID, objs []rtree.ObjectID, flush bool) {
	if epoch >= s.epoch {
		return nil, nil, false
	}
	if epoch < s.logFloor {
		return nil, nil, true
	}
	seenN := make(map[rtree.NodeID]bool)
	seenO := make(map[rtree.ObjectID]bool)
	for _, rec := range s.updates {
		if rec.epoch <= epoch {
			continue
		}
		for _, id := range rec.nodes {
			if !seenN[id] {
				seenN[id] = true
				nodes = append(nodes, id)
			}
		}
		for _, id := range rec.objs {
			if !seenO[id] {
				seenO[id] = true
				objs = append(objs, id)
			}
		}
	}
	return nodes, objs, false
}

// attachInvalidations stamps the response with the current epoch and the
// invalidation report for the requesting client. The caller must hold at
// least the read side of the server's lock.
func (s *Server) attachInvalidations(req *wire.Request, resp *wire.Response) {
	resp.Epoch = s.epoch
	if s.epoch == 0 {
		return
	}
	nodes, objs, flush := s.invalidationsSince(req.Epoch)
	resp.FlushAll = flush
	resp.InvalidNodes = nodes
	resp.InvalidObjs = objs
}
