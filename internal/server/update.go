package server

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// Update support — the paper's first future-work item ("investigate the
// impact of server updates on proactive caching and devise efficient cache
// invalidation schemes"). The server keeps an epoch-stamped log of the index
// nodes and objects each update touched; clients attach their last-seen
// epoch to requests, and responses piggyback the ids invalidated since then
// (a pull-based invalidation report in the spirit of Xu et al.'s IR
// schemes, adapted to the unicast setting).
//
// All mutation flows through the single-writer queue in snapshot.go: the
// compatibility mutators below enqueue one operation and block until its
// snapshot is published, so their callers observe their own writes exactly
// as under the old write lock — without ever stalling in-flight queries.

// updateRecord is one epoch's worth of invalidations.
type updateRecord struct {
	epoch uint64
	nodes []rtree.NodeID
	objs  []rtree.ObjectID
}

// InsertObject adds an object to the index and blocks until the snapshot
// containing it is published; its epoch logs every index node the insertion
// touched. Queries running concurrently keep their pinned snapshots and are
// never stalled.
func (s *Server) InsertObject(id rtree.ObjectID, mbr geom.Rect, size int) {
	s.applyOne(wire.UpdateOp{Kind: wire.UpdateInsert, Obj: id, To: mbr, Size: size})
}

// DeleteObject removes an object. It reports whether the object existed.
func (s *Server) DeleteObject(id rtree.ObjectID, mbr geom.Rect) bool {
	return s.applyOne(wire.UpdateOp{Kind: wire.UpdateDelete, Obj: id, From: mbr})
}

// MoveObject relocates an object (delete + insert under one epoch), the
// moving-objects workload of the update experiments.
func (s *Server) MoveObject(id rtree.ObjectID, from, to geom.Rect) bool {
	return s.applyOne(wire.UpdateOp{Kind: wire.UpdateMove, Obj: id, From: from, To: to})
}

// Epoch returns the epoch of the currently published snapshot.
func (s *Server) Epoch() uint64 {
	return s.cur.Load().epoch
}

// invalidationsSince collects the node/object ids changed after the client's
// epoch, against the currently published snapshot. The boolean reports
// whether the log horizon was exceeded, in which case the client must drop
// its whole cache (FlushAll). This allocating form exists for tests and
// one-off inspection; the serving path uses appendInvalidations with pooled
// scratch.
func (s *Server) invalidationsSince(epoch uint64) (nodes []rtree.NodeID, objs []rtree.ObjectID, flush bool) {
	v := s.pinSnapshot()
	defer v.unpin()
	var resp wire.Response
	st := &execState{
		seenN: make(map[rtree.NodeID]bool),
		seenO: make(map[rtree.ObjectID]bool),
	}
	appendInvalidations(v, st, epoch, &resp)
	return resp.InvalidNodes, resp.InvalidObjs, resp.FlushAll
}

// reportRecordLimit caps how many log records one invalidation report may
// scan. A client that lags further gets FlushAll instead: past this point
// the report itself (thousands of ids, scanned and deduplicated on every
// request the client makes) costs more than refilling the cache, and an
// epoch-0 client hammering queries must not turn the log walk into the
// serving bottleneck.
const reportRecordLimit = 1024

// appendInvalidations writes the invalidation report for a client at the
// given epoch into resp (InvalidNodes, InvalidObjs, FlushAll), deduplicating
// through the request's pooled scratch sets and appending into the response's
// recycled slices — the warm path allocates nothing. The log is sorted by
// epoch, so the client's window is found by binary search rather than a full
// scan.
func appendInvalidations(v *snapshot, st *execState, epoch uint64, resp *wire.Response) {
	if epoch >= v.epoch {
		return
	}
	if epoch < v.logFloor {
		resp.FlushAll = true
		return
	}
	recs := v.updates
	i := sort.Search(len(recs), func(i int) bool { return recs[i].epoch > epoch })
	recs = recs[i:]
	if len(recs) > reportRecordLimit {
		resp.FlushAll = true
		return
	}
	for _, rec := range recs {
		for _, id := range rec.nodes {
			if !st.seenN[id] {
				st.seenN[id] = true
				resp.InvalidNodes = append(resp.InvalidNodes, id)
			}
		}
		for _, id := range rec.objs {
			if !st.seenO[id] {
				st.seenO[id] = true
				resp.InvalidObjs = append(resp.InvalidObjs, id)
			}
		}
	}
}

// attachInvalidations stamps the response with the snapshot's epoch and the
// invalidation report for the requesting client.
func attachInvalidations(v *snapshot, st *execState, req *wire.Request, resp *wire.Response) {
	resp.Epoch = v.epoch
	if v.epoch == 0 {
		return
	}
	appendInvalidations(v, st, req.Epoch, resp)
}

// ExecuteUpdates serves a batched update request (Request.Updates non-empty):
// the operations go through the writer queue, and the response carries the
// per-operation results, the post-batch epoch and root, and the invalidation
// report the updating client is owed for its own epoch. The returned
// response participates in the server's response pool like any other.
func (s *Server) ExecuteUpdates(req *wire.Request) *wire.Response {
	resp := s.acquireResponse()
	resp.UpdateResults = s.ApplyUpdates(req.Updates, resp.UpdateResults)

	v := s.pinSnapshot()
	defer v.unpin()
	st := s.getExec(v, nil, false, false)
	defer s.putExec(st)
	root := rootRef(v)
	resp.RootID, resp.RootMBR = root.Node, root.MBR
	attachInvalidations(v, st, req, resp)
	return resp
}
