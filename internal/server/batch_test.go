package server

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/wire"
)

// batchRequests builds a mixed workload: mostly groupable fresh range
// queries, with kNN and index-less requests sprinkled in so ExecuteBatch
// exercises its solo fallback alongside the shared traversal.
func batchRequests(r *rand.Rand, n int) []*wire.Request {
	reqs := make([]*wire.Request, n)
	for i := range reqs {
		c := geom.Pt(r.Float64(), r.Float64())
		w := geom.RectFromCenter(c, 0.02+0.2*r.Float64(), 0.02+0.2*r.Float64())
		req := &wire.Request{Client: wire.ClientID(i + 1), Q: query.NewRange(w)}
		switch i % 7 {
		case 3:
			req.Q = query.NewKNN(c, 4)
		case 5:
			req.NoIndex = true
		}
		reqs[i] = req
	}
	return reqs
}

// TestExecuteBatchMatchesSolo pins the batch path to the solo path at wire
// precision: every response of ExecuteBatch must encode to the same bytes as
// Execute's answer for the same request, and the execution accounting must
// agree counter for counter.
func TestExecuteBatchMatchesSolo(t *testing.T) {
	for _, form := range []IndexForm{AdaptiveForm, CompactForm} {
		srv, _ := buildServer(t, 91, 3000, Config{Form: form})
		r := rand.New(rand.NewSource(17))
		// More requests than groupLimit, so chunking is exercised too.
		reqs := batchRequests(r, 150)

		solo := make([][]byte, len(reqs))
		soloInfo := make([]ExecInfo, len(reqs))
		for i, req := range reqs {
			resp, info := srv.Execute(req)
			solo[i] = wire.EncodeResponse(nil, resp)
			soloInfo[i] = info
		}

		resps, infos := srv.ExecuteBatch(reqs)
		for i, resp := range resps {
			if resp == nil {
				t.Fatalf("form %d: request %d got no response", form, i)
			}
			if got := wire.EncodeResponse(nil, resp); !bytes.Equal(got, solo[i]) {
				t.Errorf("form %d: request %d: batch response differs from solo", form, i)
			}
			if infos[i] != soloInfo[i] {
				t.Errorf("form %d: request %d: batch info %+v, solo %+v", form, i, infos[i], soloInfo[i])
			}
		}
	}
}

// TestExecuteBatchAfterUpdatesMatchesSolo dirties part of the index so the
// packed image no longer covers every node (the un-packed delta), forcing
// the grouped traversal's abort-and-replay path, and re-checks equivalence.
func TestExecuteBatchAfterUpdatesMatchesSolo(t *testing.T) {
	srv, items := buildServer(t, 92, 2000, Config{})
	defer srv.Close()

	var ops []wire.UpdateOp
	for i := 0; i < 300; i++ {
		it := items[i]
		to := geom.R(it.MBR.MinX+0.003, it.MBR.MinY-0.002, it.MBR.MaxX+0.003, it.MBR.MaxY-0.002)
		ops = append(ops, wire.UpdateOp{Kind: wire.UpdateMove, Obj: it.Obj, From: it.MBR, To: to})
	}
	srv.ApplyUpdates(ops, nil)

	r := rand.New(rand.NewSource(23))
	reqs := batchRequests(r, 80)
	solo := make([][]byte, len(reqs))
	for i, req := range reqs {
		resp, _ := srv.Execute(req)
		solo[i] = wire.EncodeResponse(nil, resp)
	}
	resps, _ := srv.ExecuteBatch(reqs)
	for i, resp := range resps {
		if got := wire.EncodeResponse(nil, resp); !bytes.Equal(got, solo[i]) {
			t.Errorf("request %d: batch response differs from solo after updates", i)
		}
	}
}
