package server

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// mixedQueries builds a deterministic workload of interleaved range and kNN
// queries scattered over the unit square.
func mixedQueries(seed int64, n int) []query.Query {
	r := rand.New(rand.NewSource(seed))
	qs := make([]query.Query, n)
	for i := range qs {
		p := geom.Pt(r.Float64(), r.Float64())
		if i%2 == 0 {
			qs[i] = query.NewRange(geom.RectFromCenter(p, 0.04, 0.04))
		} else {
			qs[i] = query.NewKNN(p, 1+r.Intn(8))
		}
	}
	return qs
}

func objectIDs(resp *wire.Response) []rtree.ObjectID {
	ids := make([]rtree.ObjectID, len(resp.Objects))
	for i, o := range resp.Objects {
		ids[i] = o.ID
	}
	return ids
}

// TestConcurrentClientsMatchSerial runs many clients issuing mixed range and
// kNN queries against one Server at once and cross-checks every response
// against a single-threaded execution of the same workload. Run under
// -race this is the tentpole regression test for the concurrent serving
// path: sharded client state, the lazily built partition forest, and the
// shared read lock on the index.
func TestConcurrentClientsMatchSerial(t *testing.T) {
	const (
		clients          = 8
		queriesPerClient = 40
	)
	srv, _ := buildServer(t, 80, 2000, Config{Form: AdaptiveForm, InitialD: 2})

	// Serial ground truth on an identically built server. Distinct client
	// ids with no FMR feedback keep d pinned at InitialD, so responses are
	// deterministic functions of the query alone.
	ref, _ := buildServer(t, 80, 2000, Config{Form: AdaptiveForm, InitialD: 2})
	want := make([][][]rtree.ObjectID, clients)
	for c := 0; c < clients; c++ {
		qs := mixedQueries(int64(100+c), queriesPerClient)
		want[c] = make([][]rtree.ObjectID, len(qs))
		for i, q := range qs {
			resp, _ := ref.Execute(&wire.Request{Client: wire.ClientID(c + 1), Q: q})
			want[c][i] = objectIDs(resp)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			qs := mixedQueries(int64(100+c), queriesPerClient)
			for i, q := range qs {
				resp, info := srv.Execute(&wire.Request{Client: wire.ClientID(c + 1), Q: q})
				if info.D != 2 {
					errs <- fmt.Errorf("client %d query %d: d = %d, want 2", c, i, info.D)
					return
				}
				got := objectIDs(resp)
				if len(got) != len(want[c][i]) {
					errs <- fmt.Errorf("client %d query %d: %d objects, want %d", c, i, len(got), len(want[c][i]))
					return
				}
				for j := range got {
					if got[j] != want[c][i][j] {
						errs <- fmt.Errorf("client %d query %d: object %d is %d, want %d", c, i, j, got[j], want[c][i][j])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentFeedbackStaysClamped hammers one client's adaptive state
// from several goroutines; under -race this exercises the shard locking of
// applyFeedback, and the final d must respect [0, MaxD] regardless of the
// interleaving.
func TestConcurrentFeedbackStaysClamped(t *testing.T) {
	srv, _ := buildServer(t, 81, 400, Config{MaxD: 3})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fmr := 0.01
			for i := 0; i < 50; i++ {
				fmr *= 2
				srv.Execute(&wire.Request{
					Client: 7,
					Q:      query.NewKNN(geom.Pt(0.5, 0.5), 2),
					FMR:    fmr,
					HasFMR: true,
				})
			}
		}(g)
	}
	wg.Wait()
	if d := srv.ClientD(7); d < 0 || d > 3 {
		t.Fatalf("d = %d escaped [0, 3]", d)
	}
}

// TestQueriesDuringUpdates runs queries concurrently with index mutations:
// inserts, moves, and deletes all take the write lock, so every query must
// observe a consistent index and a monotonically non-decreasing epoch.
func TestQueriesDuringUpdates(t *testing.T) {
	srv, items := buildServer(t, 82, 1500, Config{})
	var queriers, mutator sync.WaitGroup
	stop := make(chan struct{})

	// Mutator: churn a band of objects.
	mutator.Add(1)
	go func() {
		defer mutator.Done()
		r := rand.New(rand.NewSource(9))
		var lastID rtree.ObjectID
		var lastMBR geom.Rect
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				lastID = rtree.ObjectID(10_000 + i)
				lastMBR = geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01)
				srv.InsertObject(lastID, lastMBR, 500)
			case 1:
				it := items[r.Intn(len(items))]
				to := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01)
				if srv.MoveObject(it.Obj, it.MBR, to) {
					// Move it back so later iterations find it where
					// items says it is.
					srv.MoveObject(it.Obj, to, it.MBR)
				}
			case 2:
				if !srv.DeleteObject(lastID, lastMBR) {
					t.Errorf("delete of freshly inserted object %d failed", lastID)
					return
				}
			}
		}
	}()

	for g := 0; g < 8; g++ {
		queriers.Add(1)
		go func(g int) {
			defer queriers.Done()
			var lastEpoch uint64
			qs := mixedQueries(int64(200+g), 60)
			for i, q := range qs {
				resp, _ := srv.Execute(&wire.Request{Client: wire.ClientID(g + 1), Q: q})
				if resp.Epoch < lastEpoch {
					t.Errorf("client %d query %d: epoch went backwards (%d < %d)", g, i, resp.Epoch, lastEpoch)
					return
				}
				lastEpoch = resp.Epoch
			}
		}(g)
	}

	queriers.Wait()
	close(stop)
	mutator.Wait()
}
