package server

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// mixedQueries builds a deterministic workload of interleaved range and kNN
// queries scattered over the unit square.
func mixedQueries(seed int64, n int) []query.Query {
	r := rand.New(rand.NewSource(seed))
	qs := make([]query.Query, n)
	for i := range qs {
		p := geom.Pt(r.Float64(), r.Float64())
		if i%2 == 0 {
			qs[i] = query.NewRange(geom.RectFromCenter(p, 0.04, 0.04))
		} else {
			qs[i] = query.NewKNN(p, 1+r.Intn(8))
		}
	}
	return qs
}

func objectIDs(resp *wire.Response) []rtree.ObjectID {
	ids := make([]rtree.ObjectID, len(resp.Objects))
	for i, o := range resp.Objects {
		ids[i] = o.ID
	}
	return ids
}

// TestConcurrentClientsMatchSerial runs many clients issuing mixed range and
// kNN queries against one Server at once and cross-checks every response
// against a single-threaded execution of the same workload. Run under
// -race this is the tentpole regression test for the concurrent serving
// path: sharded client state, the lazily built partition forest, and the
// shared read lock on the index.
func TestConcurrentClientsMatchSerial(t *testing.T) {
	const (
		clients          = 8
		queriesPerClient = 40
	)
	srv, _ := buildServer(t, 80, 2000, Config{Form: AdaptiveForm, InitialD: 2})

	// Serial ground truth on an identically built server. Distinct client
	// ids with no FMR feedback keep d pinned at InitialD, so responses are
	// deterministic functions of the query alone.
	ref, _ := buildServer(t, 80, 2000, Config{Form: AdaptiveForm, InitialD: 2})
	want := make([][][]rtree.ObjectID, clients)
	for c := 0; c < clients; c++ {
		qs := mixedQueries(int64(100+c), queriesPerClient)
		want[c] = make([][]rtree.ObjectID, len(qs))
		for i, q := range qs {
			resp, _ := ref.Execute(&wire.Request{Client: wire.ClientID(c + 1), Q: q})
			want[c][i] = objectIDs(resp)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			qs := mixedQueries(int64(100+c), queriesPerClient)
			for i, q := range qs {
				resp, info := srv.Execute(&wire.Request{Client: wire.ClientID(c + 1), Q: q})
				if info.D != 2 {
					errs <- fmt.Errorf("client %d query %d: d = %d, want 2", c, i, info.D)
					return
				}
				got := objectIDs(resp)
				if len(got) != len(want[c][i]) {
					errs <- fmt.Errorf("client %d query %d: %d objects, want %d", c, i, len(got), len(want[c][i]))
					return
				}
				for j := range got {
					if got[j] != want[c][i][j] {
						errs <- fmt.Errorf("client %d query %d: object %d is %d, want %d", c, i, j, got[j], want[c][i][j])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// q32Query quantizes a query's geometry to float32, the resolution of the
// binary wire codec, so a workload produces identical results whether it is
// executed in-process or shipped over the wire.
func q32Query(q query.Query) query.Query {
	q32 := func(v float64) float64 { return float64(float32(v)) }
	r32 := func(r geom.Rect) geom.Rect {
		return geom.Rect{MinX: q32(r.MinX), MinY: q32(r.MinY), MaxX: q32(r.MaxX), MaxY: q32(r.MaxY)}
	}
	q.Window = r32(q.Window)
	q.Center = geom.Point{X: q32(q.Center.X), Y: q32(q.Center.Y)}
	q.JoinWindow = r32(q.JoinWindow)
	q.Dist = q32(q.Dist)
	return q
}

// TestPipelinedClientsMatchSerial is the wire-level sibling of
// TestConcurrentClientsMatchSerial: the same mixed workload, but each client
// talks to a wire.NetServer over a real TCP connection using the binary
// codec, with its queries split across several goroutines pipelining on the
// ONE connection. Responses travel through the full stack — encode, frame,
// out-of-order server completion, correlation — and must still match a
// single-threaded in-process execution query for query. Run under -race
// alongside the in-process test.
func TestPipelinedClientsMatchSerial(t *testing.T) {
	const (
		clients          = 6
		workers          = 4
		queriesPerWorker = 10
	)
	srv, _ := buildServer(t, 80, 2000, Config{Form: AdaptiveForm, InitialD: 2})
	ref, _ := buildServer(t, 80, 2000, Config{Form: AdaptiveForm, InitialD: 2})

	// Serial ground truth, on float32-quantized queries (what the wire
	// carries). No FMR feedback keeps d pinned, so responses are
	// deterministic functions of the query alone.
	workload := func(c, w int) []query.Query {
		qs := mixedQueries(int64(300+c*10+w), queriesPerWorker)
		for i := range qs {
			qs[i] = q32Query(qs[i])
		}
		return qs
	}
	want := make(map[[2]int][][]rtree.ObjectID)
	for c := 0; c < clients; c++ {
		for w := 0; w < workers; w++ {
			qs := workload(c, w)
			ids := make([][]rtree.ObjectID, len(qs))
			for i, q := range qs {
				resp, _ := ref.Execute(&wire.Request{Client: wire.ClientID(c + 1), Q: q})
				ids[i] = objectIDs(resp)
			}
			want[[2]int{c, w}] = ids
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	netSrv := wire.NewNetServer(func(req *wire.Request) (*wire.Response, error) {
		resp, _ := srv.Execute(req)
		return resp, nil
	}, wire.ServeConfig{})
	go func() { _ = netSrv.Serve(ln) }()
	defer netSrv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, clients*workers)
	for c := 0; c < clients; c++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		bc, err := wire.NewBinaryClientConn(conn)
		if err != nil {
			t.Fatal(err)
		}
		defer bc.Close()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(c, w int) {
				defer wg.Done()
				qs := workload(c, w)
				for i, q := range qs {
					resp, err := bc.RoundTrip(&wire.Request{Client: wire.ClientID(c + 1), Q: q})
					if err != nil {
						errs <- fmt.Errorf("client %d worker %d query %d: %w", c, w, i, err)
						return
					}
					got := objectIDs(resp)
					exp := want[[2]int{c, w}][i]
					if len(got) != len(exp) {
						errs <- fmt.Errorf("client %d worker %d query %d: %d objects, want %d", c, w, i, len(got), len(exp))
						return
					}
					for j := range got {
						if got[j] != exp[j] {
							errs <- fmt.Errorf("client %d worker %d query %d: object %d is %d, want %d", c, w, i, j, got[j], exp[j])
							return
						}
					}
				}
			}(c, w)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentFeedbackStaysClamped hammers one client's adaptive state
// from several goroutines; under -race this exercises the shard locking of
// applyFeedback, and the final d must respect [0, MaxD] regardless of the
// interleaving.
func TestConcurrentFeedbackStaysClamped(t *testing.T) {
	srv, _ := buildServer(t, 81, 400, Config{MaxD: 3})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fmr := 0.01
			for i := 0; i < 50; i++ {
				fmr *= 2
				srv.Execute(&wire.Request{
					Client: 7,
					Q:      query.NewKNN(geom.Pt(0.5, 0.5), 2),
					FMR:    fmr,
					HasFMR: true,
				})
			}
		}(g)
	}
	wg.Wait()
	if d := srv.ClientD(7); d < 0 || d > 3 {
		t.Fatalf("d = %d escaped [0, 3]", d)
	}
}

// TestQueriesDuringUpdates runs queries concurrently with index mutations:
// inserts, moves, and deletes all take the write lock, so every query must
// observe a consistent index and a monotonically non-decreasing epoch.
func TestQueriesDuringUpdates(t *testing.T) {
	srv, items := buildServer(t, 82, 1500, Config{})
	var queriers, mutator sync.WaitGroup
	stop := make(chan struct{})

	// Mutator: churn a band of objects.
	mutator.Add(1)
	go func() {
		defer mutator.Done()
		r := rand.New(rand.NewSource(9))
		var lastID rtree.ObjectID
		var lastMBR geom.Rect
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				lastID = rtree.ObjectID(10_000 + i)
				lastMBR = geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01)
				srv.InsertObject(lastID, lastMBR, 500)
			case 1:
				it := items[r.Intn(len(items))]
				to := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01)
				if srv.MoveObject(it.Obj, it.MBR, to) {
					// Move it back so later iterations find it where
					// items says it is.
					srv.MoveObject(it.Obj, to, it.MBR)
				}
			case 2:
				if !srv.DeleteObject(lastID, lastMBR) {
					t.Errorf("delete of freshly inserted object %d failed", lastID)
					return
				}
			}
		}
	}()

	for g := 0; g < 8; g++ {
		queriers.Add(1)
		go func(g int) {
			defer queriers.Done()
			var lastEpoch uint64
			qs := mixedQueries(int64(200+g), 60)
			for i, q := range qs {
				resp, _ := srv.Execute(&wire.Request{Client: wire.ClientID(g + 1), Q: q})
				if resp.Epoch < lastEpoch {
					t.Errorf("client %d query %d: epoch went backwards (%d < %d)", g, i, resp.Epoch, lastEpoch)
					return
				}
				lastEpoch = resp.Epoch
			}
		}(g)
	}

	queriers.Wait()
	close(stop)
	mutator.Wait()
}
