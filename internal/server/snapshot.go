package server

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bpt"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// Snapshot isolation: the server's concurrency model.
//
// Queries never lock the index. Execute pins the current snapshot — an
// immutable (R*-tree arena, partition-forest view, invalidation-log prefix)
// triple — with one atomic pointer load plus a reader-count increment, runs
// entirely against it, and unpins. All mutation flows through a single
// writer goroutine that drains a queue of update batches, applies each
// coalesced run of operations to a spare tree buffer, and publishes the
// result as a fresh snapshot with one atomic pointer store.
//
// The spare buffer is a previous snapshot's tree brought up to date: every
// published batch records its first-touch page set, and CatchUp replays
// exactly those pages onto a retired buffer (O(changed pages), not O(index)).
// A retired snapshot is recycled only after its reader count drains, so a
// query that pinned it keeps an internally consistent view for its whole
// lifetime — the "no torn reads" guarantee the equivalence tests pin down.
// NodeIDs are never reused across snapshots (the arena contract), so the
// client-side staleness checks and the epoch invalidation protocol carry
// over unchanged.

// snapshot is one published version of the index. Immutable once stored in
// Server.cur; the tree buffer underneath is recycled by the writer after the
// snapshot is retired (unpublished) and its reader count drains.
type snapshot struct {
	tree   *rtree.Tree
	forest bpt.ForestView

	// Invalidation state as of this snapshot: the epoch of the last applied
	// update, the log horizon, and a stable prefix view of the update log
	// (the writer appends to its own tail; it never mutates records below
	// this snapshot's length).
	epoch    uint64
	logFloor uint64
	updates  []updateRecord

	// refs counts pins: 1 for being published, +1 per in-flight reader.
	// drained closes when refs first hits zero (only possible after retire),
	// signalling the writer that the tree buffer may be recycled.
	refs    atomic.Int64
	drained chan struct{}
	once    sync.Once
}

func newSnapshot(tree *rtree.Tree, forest bpt.ForestView, epoch, logFloor uint64, updates []updateRecord) *snapshot {
	v := &snapshot{
		tree:     tree,
		forest:   forest,
		epoch:    epoch,
		logFloor: logFloor,
		updates:  updates,
		drained:  make(chan struct{}),
	}
	v.refs.Store(1) // the published reference
	return v
}

// unpin releases one reference; the last release signals the writer.
func (v *snapshot) unpin() {
	if v.refs.Add(-1) == 0 {
		v.once.Do(func() { close(v.drained) })
	}
}

// pinSnapshot returns the current snapshot with a reader reference held.
// Lock-free: an atomic load, an increment, and a validation re-load. The
// validation catches the race where the writer retires the loaded snapshot
// between the load and the increment — the transient reference is dropped
// and the pin retries on the new snapshot. A retired-but-validated pin is
// fine: the writer recycles a buffer only after the count drains.
func (s *Server) pinSnapshot() *snapshot {
	for {
		v := s.cur.Load()
		v.refs.Add(1)
		if s.cur.Load() == v {
			return v
		}
		v.unpin()
	}
}

// View runs f over a pinned snapshot: the tree is guaranteed immutable and
// internally consistent with the given epoch for the duration of the call.
// This is the safe way to inspect the live index from outside the query path
// (stats, debugging); f must not retain the tree.
func (s *Server) View(f func(tree *rtree.Tree, epoch uint64)) {
	v := s.pinSnapshot()
	defer v.unpin()
	f(v.tree, v.epoch)
}

// --------------------------------------------------------------------------
// The writer.

// updateBatch is one enqueued update request: the operations, their results
// (parallel to ops), and a one-shot ack the writer fires after the batch's
// snapshot is published — so a synchronous caller observes its own write on
// the very next query.
type updateBatch struct {
	ops     []wire.UpdateOp
	results []bool
	done    chan struct{} // buffered(1); writer sends exactly one ack
}

var batchPool = sync.Pool{
	New: func() any { return &updateBatch{done: make(chan struct{}, 1)} },
}

// treeBuf is one tree buffer in the writer's rotation, together with the
// snapshot last published from it and the pages it must replay (CatchUp)
// before it can be written again.
type treeBuf struct {
	tree    *rtree.Tree
	snap    *snapshot      // last snapshot published from this buffer; nil for a fresh clone
	pending []rtree.NodeID // first-touch ids of batches published since snap
}

// writer is the single mutation goroutine plus all its reusable scratch:
// per-operation and per-batch first-touch capture, catch-up deduplication,
// and the master invalidation log. Everything here is owned by the writer
// goroutine exclusively; none of it is ever touched by queries.
type writer struct {
	s    *Server
	q    chan *updateBatch
	quit chan struct{}
	done chan struct{}

	bufs    []*treeBuf
	maxBufs int

	epoch    uint64
	logFloor uint64
	log      []updateRecord

	// stale counts pages touched since the packed image was last rebuilt;
	// past the repack threshold the writer kicks an asynchronous repack.
	// lastPackReads remembers Server.reads at the moment the last repack was
	// scheduled: if no query has arrived since, the image has no audience and
	// rebuilding it would be pure overhead on the write path.
	stale         int
	lastPackReads int64

	// Scratch reused across operations and batches (no per-update maps).
	opSeen     map[rtree.NodeID]bool // first-touch dedup within one operation
	opOrder    []rtree.NodeID
	batchSeen  map[rtree.NodeID]bool // union of touches within one published batch
	batchOrder []rtree.NodeID
	syncSeen   map[rtree.NodeID]bool // catch-up id dedup
	syncIDs    []rtree.NodeID
	collected  []*updateBatch
	walOps     []wire.UpdateOp // applied ops of the current publish group
}

// ensureWriter starts the writer goroutine on first use. The server carries
// no background goroutine until the first update arrives, so read-only
// deployments keep the old lifecycle.
func (s *Server) ensureWriter() *writer {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.wr == nil && !s.closed {
		cur := s.cur.Load()
		w := &writer{
			s:    s,
			q:    make(chan *updateBatch, s.cfg.UpdateQueueLen),
			quit: make(chan struct{}),
			done: make(chan struct{}),
			bufs: []*treeBuf{{tree: cur.tree, snap: cur}},
			// A restored server (Restore) publishes its recovered epoch and
			// invalidation log before any writer exists; the writer must
			// continue that history, not restart it at zero.
			epoch:     cur.epoch,
			logFloor:  cur.logFloor,
			log:       cur.updates,
			maxBufs:   s.cfg.MaxSnapshots,
			opSeen:    make(map[rtree.NodeID]bool),
			batchSeen: make(map[rtree.NodeID]bool),
			syncSeen:  make(map[rtree.NodeID]bool),
			// The construction-time image covers everything read so far.
			lastPackReads: s.reads.Load(),
		}
		s.wr = w
		go w.run()
	}
	return s.wr
}

// Close stops the writer goroutine, waiting for queued batches to be applied
// and acknowledged. It is idempotent and safe to call from multiple
// goroutines. Callers must stop issuing updates before closing; an update
// racing Close may be dropped (its waiter is released with all-false
// results). Queries remain valid after Close — the published snapshot stays.
func (s *Server) Close() {
	s.wmu.Lock()
	alreadyClosed := s.closed
	w := s.wr
	s.closed = true
	s.wmu.Unlock()
	if w == nil {
		return
	}
	if alreadyClosed {
		// Idempotent: a second Close just waits for the first to finish.
		<-w.done
		return
	}
	close(w.quit)
	<-w.done
}

// ApplyUpdates applies a batch of operations through the writer queue and
// blocks until the batch's snapshot is published. It returns one result per
// operation, appended into results (pass nil, or a slice to reuse). Safe for
// any number of concurrent callers; batches queued together are applied in
// arrival order and usually coalesce into a single published snapshot.
func (s *Server) ApplyUpdates(ops []wire.UpdateOp, results []bool) []bool {
	results = results[:0]
	if len(ops) == 0 {
		return results
	}
	w := s.ensureWriter()
	if w == nil { // closed: drop with all-false results
		return append(results, make([]bool, len(ops))...)
	}
	b := batchPool.Get().(*updateBatch)
	b.ops = append(b.ops[:0], ops...)
	b.results = append(b.results[:0], make([]bool, len(ops))...)
	select {
	case w.q <- b:
	case <-w.done:
		batchPool.Put(b)
		return append(results, make([]bool, len(ops))...)
	}
	select {
	case <-b.done:
	case <-w.done:
		// The writer exited. It drains the queue on quit, so the batch may
		// still have been applied and acked — when both channels are ready,
		// select picks arbitrarily, and reporting all-false for a published
		// batch would lie about durable state. Only an absent ack means the
		// batch was dropped (and then it cannot be pooled: the writer might
		// still hold it).
		select {
		case <-b.done:
		default:
			return append(results, make([]bool, len(ops))...)
		}
	}
	results = append(results, b.results...)
	batchPool.Put(b)
	return results
}

// applyOne is the synchronous single-operation path behind the compatibility
// mutators (InsertObject, DeleteObject, MoveObject).
func (s *Server) applyOne(op wire.UpdateOp) bool {
	var buf [1]bool
	res := s.ApplyUpdates([]wire.UpdateOp{op}, buf[:0])
	return len(res) == 1 && res[0]
}

// run is the writer loop: block for the first batch, coalesce everything
// else already queued, apply, publish, ack. On quit it drains the queue so
// no properly enqueued waiter is left hanging.
func (w *writer) run() {
	defer close(w.done)
	for {
		select {
		case b := <-w.q:
			w.apply(w.collect(b))
		case <-w.quit:
			for {
				select {
				case b := <-w.q:
					w.apply(w.collect(b))
				default:
					return
				}
			}
		}
	}
}

// collect gathers already-queued batches behind first, up to the configured
// operation budget — the batch coalescer. Every collected batch is applied
// under one catch-up and one published snapshot.
func (w *writer) collect(first *updateBatch) []*updateBatch {
	batches := append(w.collected[:0], first)
	total := len(first.ops)
	for total < w.s.cfg.UpdateBatchOps {
		select {
		case b := <-w.q:
			batches = append(batches, b)
			total += len(b.ops)
		default:
			w.collected = batches
			return batches
		}
	}
	w.collected = batches
	return batches
}

// apply brings a spare buffer up to date, applies every operation of the
// collected batches to it, publishes the buffer as the new snapshot, retires
// the old one, and acks the waiters.
func (w *writer) apply(batches []*updateBatch) {
	cur := w.s.cur.Load()
	buf := w.acquireBuf(cur)
	w.catchUp(buf, cur)

	t := buf.tree
	for _, id := range w.batchOrder {
		delete(w.batchSeen, id)
	}
	w.batchOrder = w.batchOrder[:0]
	w.walOps = w.walOps[:0]
	epochBefore := w.epoch
	t.SetTouchHook(w.observeTouch)
	changed := false
	for _, b := range batches {
		for i, op := range b.ops {
			w.opOrder = w.opOrder[:0]
			ok := w.applyOp(t, op)
			b.results[i] = ok
			for _, id := range w.opOrder {
				delete(w.opSeen, id)
			}
			if !ok {
				continue
			}
			changed = true
			w.walOps = append(w.walOps, op)
			w.epoch++
			rec := updateRecord{epoch: w.epoch, nodes: append([]rtree.NodeID(nil), w.opOrder...)}
			if op.Kind != wire.UpdateInsert {
				rec.objs = []rtree.ObjectID{op.Obj}
			}
			w.log = append(w.log, rec)
			for _, id := range w.opOrder {
				if !w.batchSeen[id] {
					w.batchSeen[id] = true
					w.batchOrder = append(w.batchOrder, id)
				}
			}
		}
	}
	t.SetTouchHook(nil)

	if changed {
		// Group commit: the whole publish group becomes durable in one
		// append+fsync before its snapshot is visible to any reader. A
		// batch is acked only after this returns, so an acked update can
		// never be lost to a crash.
		if wal := w.s.wal(); wal != nil {
			if err := wal.Append(epochBefore, w.walOps); err != nil {
				w.s.failDurability(err)
			}
		}
		w.trimLog()
		w.s.forest.EnsureSpan(t.NodeSpan())
		view := w.s.forest.View()
		nw := newSnapshot(t, view, w.epoch, w.logFloor, w.log)
		for _, b := range w.bufs {
			if b != buf {
				b.pending = append(b.pending, w.batchOrder...)
			}
		}
		buf.snap = nw
		w.s.cur.Store(nw)
		cur.unpin() // retire: drop the published reference of the old snapshot
	}
	for _, b := range batches {
		b.done <- struct{}{}
	}
	if !changed {
		return
	}
	if fn := w.s.cfg.OnApplied; fn != nil {
		fn(epochBefore, w.walOps)
	}
	w.prewarm(buf.tree)
	w.stale += len(w.batchOrder)
	w.maybeRepack()
	// Checkpoint between publish groups, still on the writer goroutine: the
	// published tree is immutable (the next group mutates a spare buffer),
	// and no update is in flight to race the extras overlay.
	if wal := w.s.wal(); wal != nil && wal.ShouldCheckpoint() {
		v := w.s.cur.Load()
		if err := wal.Checkpoint(v.epoch, w.s.checkpointPayload(v)); err != nil {
			w.s.failDurability(err)
		}
	}
}

// repackStaleFloor is the minimum number of touched pages before a repack is
// worth scheduling; below it the arena-delta fallback is cheap enough.
const repackStaleFloor = 64

// packMinInterval is the shortest gap between two repacks, regardless of how
// fast the incremental Repack runs (see the gate in maybeRepack).
const packMinInterval = time.Second

// maybeRepack rebuilds the packed image in the background once enough pages
// have drifted from it — the delta served by the arena fallback stays small
// without the writer paying a full image rebuild per batch. The packer runs
// against a pinned snapshot (immutable by contract), so it never races the
// writer's buffer mutations; one repack is in flight at a time, and because
// packed content is validated per (NodeID, Gen), publishing an image built
// from an already-superseded snapshot is still correct — newer pages just
// stay in the delta until the next repack.
func (w *writer) maybeRepack() {
	s := w.s
	threshold := repackStaleFloor
	if n := w.bufs[0].tree.NodeCount() / 4; n > threshold {
		threshold = n
	}
	if w.stale < threshold || s.packing.Load() {
		return
	}
	// No query has looked at the server since the last repack was scheduled:
	// skip. A write-only phase then pays nothing for image maintenance (on a
	// small machine the packer competes with this goroutine for CPU), and
	// stale keeps accumulating so the batch after the first read repacks.
	reads := s.reads.Load()
	if reads == w.lastPackReads {
		return
	}
	// Duty-cycle the packer: a batch stream that dirties the threshold on
	// every batch must not rebuild the image per batch — packing allocates
	// the whole flat image, and that GC churn is paid by the writer and
	// every reader. Two gates compose: the 24x multiple bounds the packer to
	// ~1/24 of wall time on big trees where a rebuild is slow, and the
	// absolute floor bounds the *frequency* on small trees where Repack is so
	// fast that a pure duty cycle would fire many times a second, each firing
	// allocating a fresh image — the garbage scales with firings, not with
	// pack duration. Sub-4Hz image freshness has no query-visible value: the
	// delta fallback serves stale pages exactly either way.
	if time.Now().UnixNano() < s.packGate.Load() {
		return
	}
	if !s.packing.CompareAndSwap(false, true) {
		return
	}
	w.stale = 0
	w.lastPackReads = reads
	v := s.pinSnapshot()
	go func() {
		defer s.packing.Store(false)
		defer v.unpin()
		start := time.Now()
		// Repack reuses unchanged node spans from the previous image, so the
		// steady-state cost is O(stale pages) split work plus a copy.
		s.packed.Store(rtree.Repack(v.tree, s.packed.Load()))
		wait := 24 * time.Since(start)
		if wait < packMinInterval {
			wait = packMinInterval
		}
	}()
}

// prewarmPageBudget bounds how many touched pages one batch prewarm rebuilds.
// With the paper's 204-entry pages a single partition-tree build costs
// hundreds of microseconds; rebuilding every page a big batch touched would
// turn the writer into a CPU hog that starves queries on small core counts.
// Pages past the budget are rebuilt lazily by the first reader that actually
// visits them (CAS-shared, so the cost is paid once per page either way).
const prewarmPageBudget = 24

// prewarm rebuilds the partition trees of recently touched pages so queries
// find the cache warm. Rebuilding is by far the most expensive consequence
// of an update (O(fanout log² fanout) with sorting), and paying it here —
// on the writer, after the waiters are acked — keeps it off the query path.
// It runs after the publish on purpose: before it, readers of the outgoing
// snapshot would find slot generations newer than their pages and rebuild
// without being able to share, while a reader of the new snapshot that
// beats the writer to a page simply CASes its build in first and the
// prewarm finds the slot warm.
//
// Internal pages come first: every indexed query descends through them, so
// a cold internal page taxes all readers, while a cold leaf taxes only the
// queries whose region it covers. The page budget and the regular yields
// keep the writer's CPU burst bounded regardless of batch size.
func (w *writer) prewarm(t *rtree.Tree) {
	view := w.s.cur.Load().forest
	built := 0
	warm := func(internalPass bool) {
		for _, id := range w.batchOrder {
			if built >= prewarmPageBudget {
				return
			}
			n, ok := t.Node(id)
			if !ok || len(n.Entries) == 0 || (n.Level > 0) != internalPass {
				continue
			}
			view.Get(n)
			built++
			if built%4 == 0 {
				runtime.Gosched() // bound the unpreempted burst
			}
		}
	}
	warm(true)
	warm(false)
}

// observeTouch is the tree's touch hook during operation application: it
// records first-touch order per operation into writer-owned scratch (the
// per-update map allocations of the locked design are gone).
func (w *writer) observeTouch(id rtree.NodeID) {
	if !w.opSeen[id] {
		w.opSeen[id] = true
		w.opOrder = append(w.opOrder, id)
	}
}

// applyOp performs one mutation against the write buffer (the shared core
// lives in durable.go so Restore's replay applies identically).
func (w *writer) applyOp(t *rtree.Tree, op wire.UpdateOp) bool {
	return applyTreeOp(w.s, t, op)
}

// acquireBuf returns a writable tree buffer: a drained retired buffer when
// one is free, a fresh clone while the rotation is below its cap, otherwise
// it blocks until the oldest retired snapshot's readers drain.
func (w *writer) acquireBuf(cur *snapshot) *treeBuf {
	var oldest *treeBuf
	for _, b := range w.bufs {
		if b.snap == cur {
			continue // the published buffer is read-only
		}
		if b.snap == nil {
			return b // fresh clone, never published
		}
		select {
		case <-b.snap.drained:
			w.waitQuiescent(b.snap)
			return b
		default:
		}
		if oldest == nil || b.snap.epoch < oldest.snap.epoch {
			oldest = b
		}
	}
	limit := w.maxBufs
	if w.s.packing.Load() {
		// The packer pins one snapshot for its whole tree walk (tens of
		// milliseconds on a big index). Without slack the rotation would
		// block on that pin for the full pack duration, stalling every
		// queued update. One extra buffer keeps the writer running; the
		// growth happens once and the buffer stays in rotation afterwards,
		// so the steady-state cost is MaxSnapshots+1 buffers, not a leak.
		limit++
	}
	if len(w.bufs) < limit {
		nb := &treeBuf{tree: cur.tree.Clone()}
		w.bufs = append(w.bufs, nb)
		return nb
	}
	<-oldest.snap.drained
	w.waitQuiescent(oldest.snap)
	return oldest
}

// waitQuiescent spins out the tiny pin/validate window: a reader that loaded
// the snapshot pointer just before retirement may still hold a transient
// reference it is about to drop (it never dereferences the snapshot after
// failing validation).
func (w *writer) waitQuiescent(v *snapshot) {
	for v.refs.Load() != 0 {
		runtime.Gosched()
	}
}

// catchUp replays onto buf every page changed since it was last current,
// deduplicated through writer scratch, making it identical to cur's tree.
func (w *writer) catchUp(buf *treeBuf, cur *snapshot) {
	if len(buf.pending) == 0 {
		return
	}
	w.syncIDs = w.syncIDs[:0]
	for _, id := range buf.pending {
		if !w.syncSeen[id] {
			w.syncSeen[id] = true
			w.syncIDs = append(w.syncIDs, id)
		}
	}
	for _, id := range w.syncIDs {
		delete(w.syncSeen, id)
	}
	buf.tree.CatchUp(cur.tree, w.syncIDs)
	buf.pending = buf.pending[:0]
}

// trimLog bounds the invalidation log. The survivors are copied into a fresh
// array: retired snapshots keep stable views of the old one.
func (w *writer) trimLog() {
	limit := w.s.cfg.UpdateLogLimit
	if len(w.log) <= limit {
		return
	}
	drop := len(w.log) - limit
	w.logFloor = w.log[drop-1].epoch
	fresh := make([]updateRecord, 0, limit+limit/4)
	w.log = append(fresh, w.log[drop:]...)
}
