package server

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bpt"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// Durability: the server side of the per-shard WAL + checkpoint scheme
// (docs/DURABILITY.md). The writer goroutine logs each applied batch through
// Config.WAL before publishing its snapshot, and periodically asks the log
// to checkpoint a full serialization of the published state; Restore
// rebuilds a server from checkpoint + replayed tail so it resumes with the
// identical arena, NodeIDs, generations, and epoch it crashed with — which
// is what keeps warm client caches and the cluster's virtual-epoch rings
// valid across the restart.

// BatchLog is the write-ahead log the writer goroutine drives. It is
// satisfied structurally by *wal.Log; the server never imports the wal
// package so simulations and tests stay storage-free.
type BatchLog interface {
	// Append durably logs one applied batch before its snapshot publishes.
	Append(epochBefore uint64, ops []wire.UpdateOp) error
	// ShouldCheckpoint reports whether the log wants a checkpoint.
	ShouldCheckpoint() bool
	// Checkpoint atomically replaces the checkpoint payload (captured at
	// epoch) and truncates the log.
	Checkpoint(epoch uint64, payload []byte) error
}

// ReplayRecord is one recovered WAL record handed to Restore. It mirrors
// wal.Record without importing it (the cluster layer converts).
type ReplayRecord struct {
	EpochBefore uint64
	Ops         []wire.UpdateOp
}

// walFailure wraps the latched first WAL error.
type walFailure struct{ err error }

// DurabilityErr returns the first WAL append/checkpoint failure, or nil
// while the log is healthy. After a failure the server keeps serving and
// applying updates but stops logging: the operator decides whether a
// non-durable shard may keep running.
func (s *Server) DurabilityErr() error {
	if f := s.durErr.Load(); f != nil {
		return f.err
	}
	return nil
}

func (s *Server) failDurability(err error) {
	s.durErr.CompareAndSwap(nil, &walFailure{err: err})
}

// wal returns the configured batch log, nil once durability has failed.
func (s *Server) wal() BatchLog {
	if s.cfg.WAL == nil || s.durErr.Load() != nil {
		return nil
	}
	return s.cfg.WAL
}

// Checkpoint serializes the currently published snapshot through the
// configured WAL. Call it once right after construction (before updates
// flow) so the log has a base image to truncate against; afterwards the
// writer goroutine checkpoints on its own schedule. Concurrent updates
// would race the extras overlay, so Checkpoint must not overlap them.
func (s *Server) Checkpoint() error {
	w := s.wal()
	if w == nil {
		return fmt.Errorf("server: no usable WAL configured")
	}
	v := s.pinSnapshot()
	defer v.unpin()
	if err := w.Checkpoint(v.epoch, s.checkpointPayload(v)); err != nil {
		s.failDurability(err)
		return err
	}
	return nil
}

// Checkpoint payload layout: version, epoch, extras overlay (post-build
// object sizes), then the exact tree image. The epoch rides inside the
// payload as well as in the wal header so the payload is self-describing.
const ckptPayloadVersion = 1

func (s *Server) checkpointPayload(v *snapshot) []byte {
	b := []byte{ckptPayloadVersion}
	b = appendUvarint(b, v.epoch)
	var extras [][2]uint64
	s.extraSizes.Range(func(k, val any) bool {
		extras = append(extras, [2]uint64{uint64(k.(rtree.ObjectID)), uint64(val.(int))})
		return true
	})
	b = appendUvarint(b, uint64(len(extras)))
	for _, e := range extras {
		b = appendUvarint(b, e[0])
		b = appendUvarint(b, e[1])
	}
	return v.tree.AppendImage(b)
}

// Restore rebuilds a server from a checkpoint payload plus the WAL tail that
// followed it. The tail must chain gaplessly from the checkpoint epoch and
// every logged operation must re-apply cleanly — the WAL records only
// operations that succeeded, so any divergence means the log and checkpoint
// disagree and the restore is refused rather than silently wrong.
func Restore(checkpoint []byte, tail []ReplayRecord, sizes ObjectSizer, cfg Config) (*Server, error) {
	epoch, extras, tree, err := decodeCheckpointPayload(checkpoint)
	if err != nil {
		return nil, err
	}
	s := &Server{
		forest: bpt.NewForestArena(tree.NodeSpan()),
		cfg:    cfg.normalized(),
	}
	for i := range s.shards {
		s.shards[i].m = make(map[wire.ClientID]*clientState)
	}
	s.baseSizes = sizes
	for _, e := range extras {
		s.extraSizes.Store(rtree.ObjectID(e[0]), int(e[1]))
	}
	if len(extras) > 0 {
		s.hasExtras.Store(true)
	}

	// Replay the tail exactly as the writer applied it, rebuilding the
	// invalidation log with the same per-epoch first-touch node sets: the
	// tree mutates identically, so the touch stream is identical.
	ckptEpoch := epoch
	var log []updateRecord
	seen := make(map[rtree.NodeID]bool)
	var order []rtree.NodeID
	tree.SetTouchHook(func(id rtree.NodeID) {
		if !seen[id] {
			seen[id] = true
			order = append(order, id)
		}
	})
	for _, rec := range tail {
		if rec.EpochBefore != epoch {
			tree.SetTouchHook(nil)
			return nil, fmt.Errorf("server: replay gap: record at epoch %d, expected %d", rec.EpochBefore, epoch)
		}
		for _, op := range rec.Ops {
			order = order[:0]
			ok := applyTreeOp(s, tree, op)
			for _, id := range order {
				delete(seen, id)
			}
			if !ok {
				tree.SetTouchHook(nil)
				return nil, fmt.Errorf("server: replay diverged at epoch %d: op %v obj %d did not apply", epoch, op.Kind, op.Obj)
			}
			epoch++
			r := updateRecord{epoch: epoch, nodes: append([]rtree.NodeID(nil), order...)}
			if op.Kind != wire.UpdateInsert {
				r.objs = []rtree.ObjectID{op.Obj}
			}
			log = append(log, r)
		}
	}
	tree.SetTouchHook(nil)

	s.forest.EnsureSpan(tree.NodeSpan())
	s.cur.Store(newSnapshot(tree, s.forest.View(), epoch, ckptEpoch, log))
	s.packed.Store(rtree.Pack(tree))
	return s, nil
}

func decodeCheckpointPayload(b []byte) (epoch uint64, extras [][2]uint64, tree *rtree.Tree, err error) {
	fail := func(msg string) (uint64, [][2]uint64, *rtree.Tree, error) {
		return 0, nil, nil, fmt.Errorf("server: malformed checkpoint: %s", msg)
	}
	if len(b) < 1 || b[0] != ckptPayloadVersion {
		return fail("bad version")
	}
	b = b[1:]
	var ok bool
	if epoch, b, ok = readUvarint(b); !ok {
		return fail("truncated epoch")
	}
	n, b, ok := readUvarint(b)
	if !ok || n > uint64(len(b)) {
		return fail("bad extras count")
	}
	extras = make([][2]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		var id, sz uint64
		if id, b, ok = readUvarint(b); !ok {
			return fail("truncated extras")
		}
		if sz, b, ok = readUvarint(b); !ok {
			return fail("truncated extras")
		}
		extras = append(extras, [2]uint64{id, sz})
	}
	tree, terr := rtree.ReadImage(b)
	if terr != nil {
		return 0, nil, nil, fmt.Errorf("server: checkpoint tree: %w", terr)
	}
	return epoch, extras, tree, nil
}

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func readUvarint(b []byte) (uint64, []byte, bool) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, false
	}
	return v, b[n:], true
}

// applyTreeOp performs one mutation against a tree, maintaining the extras
// overlay. Shared by the writer's live path (snapshot.go) and Restore's
// replay so the two can never drift apart.
func applyTreeOp(s *Server, t *rtree.Tree, op wire.UpdateOp) bool {
	switch op.Kind {
	case wire.UpdateInsert:
		t.Insert(op.Obj, op.To)
		size := op.Size
		if size < 0 {
			size = 0
		}
		s.extraSizes.Store(op.Obj, size)
		s.hasExtras.Store(true)
		return true
	case wire.UpdateDelete:
		return t.Delete(op.Obj, op.From)
	case wire.UpdateMove:
		if !t.Delete(op.Obj, op.From) {
			return false
		}
		t.Insert(op.Obj, op.To)
		return true
	default:
		return false
	}
}
