package server

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wire"
)

func updServer(t *testing.T, n int, logLimit int) (*Server, []rtree.Item) {
	t.Helper()
	r := rand.New(rand.NewSource(171))
	items := make([]rtree.Item, n)
	for i := range items {
		items[i] = rtree.Item{
			Obj: rtree.ObjectID(i + 1),
			MBR: geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01),
		}
	}
	tree := rtree.BulkLoad(rtree.Params{MaxEntries: 8}, items, 0.7)
	return New(tree, func(rtree.ObjectID) int { return 1000 }, Config{UpdateLogLimit: logLimit}), items
}

func TestEpochAdvancesPerUpdate(t *testing.T) {
	srv, items := updServer(t, 200, 0)
	if srv.Epoch() != 0 {
		t.Fatalf("initial epoch %d", srv.Epoch())
	}
	srv.InsertObject(1000, geom.R(0.5, 0.5, 0.51, 0.51), 500)
	if srv.Epoch() != 1 {
		t.Fatalf("epoch after insert %d", srv.Epoch())
	}
	if !srv.DeleteObject(items[0].Obj, items[0].MBR) {
		t.Fatal("delete failed")
	}
	if srv.Epoch() != 2 {
		t.Fatalf("epoch after delete %d", srv.Epoch())
	}
	// Deleting a ghost neither succeeds nor advances the epoch.
	if srv.DeleteObject(9999, geom.R(0, 0, 1, 1)) {
		t.Fatal("deleted a ghost")
	}
	if srv.Epoch() != 2 {
		t.Fatalf("ghost delete advanced epoch to %d", srv.Epoch())
	}
	// A failed move does not advance the epoch either.
	if srv.MoveObject(9999, geom.R(0, 0, 1, 1), geom.R(0, 0, 1, 1)) {
		t.Fatal("moved a ghost")
	}
	if srv.Epoch() != 2 {
		t.Fatalf("ghost move advanced epoch to %d", srv.Epoch())
	}
}

func TestInvalidationsSinceWindows(t *testing.T) {
	srv, items := updServer(t, 300, 0)
	// Three updates at epochs 1, 2, 3.
	srv.DeleteObject(items[0].Obj, items[0].MBR)
	srv.DeleteObject(items[1].Obj, items[1].MBR)
	srv.InsertObject(2000, geom.R(0.2, 0.2, 0.21, 0.21), 500)

	// From epoch 0: everything.
	nodes, objs, flush := srv.invalidationsSince(0)
	if flush {
		t.Fatal("unexpected flush")
	}
	if len(nodes) == 0 {
		t.Fatal("no nodes invalidated")
	}
	if len(objs) != 2 {
		t.Fatalf("objs = %v, want the two deletions", objs)
	}

	// From epoch 2: only the insert's touched nodes, no object removals.
	nodes2, objs2, _ := srv.invalidationsSince(2)
	if len(objs2) != 0 {
		t.Fatalf("objs since 2 = %v", objs2)
	}
	if len(nodes2) == 0 || len(nodes2) > len(nodes) {
		t.Fatalf("nodes since 2 = %d, total %d", len(nodes2), len(nodes))
	}

	// Current epoch: nothing.
	n3, o3, f3 := srv.invalidationsSince(srv.Epoch())
	if len(n3) != 0 || len(o3) != 0 || f3 {
		t.Fatal("non-empty report for a current client")
	}
}

func TestLogTrimForcesFlush(t *testing.T) {
	srv, items := updServer(t, 300, 5)
	for i := 0; i < 12; i++ {
		srv.DeleteObject(items[i].Obj, items[i].MBR)
	}
	// A client at epoch 0 fell off the 5-record horizon.
	_, _, flush := srv.invalidationsSince(0)
	if !flush {
		t.Fatal("expected flush for a client beyond the log horizon")
	}
	// A recent client is still served incrementally.
	_, _, flush = srv.invalidationsSince(srv.Epoch() - 2)
	if flush {
		t.Fatal("recent client flushed unnecessarily")
	}
}

func TestResponsesCarryEpochAndInvalidations(t *testing.T) {
	srv, items := updServer(t, 300, 0)
	srv.DeleteObject(items[5].Obj, items[5].MBR)

	resp, _ := srv.Execute(&wire.Request{
		Client: 4,
		Q:      query.NewKNN(geom.Pt(0.5, 0.5), 2),
		Epoch:  0,
	})
	if resp.Epoch != srv.Epoch() {
		t.Fatalf("response epoch %d, server %d", resp.Epoch, srv.Epoch())
	}
	if len(resp.InvalidObjs) != 1 || resp.InvalidObjs[0] != items[5].Obj {
		t.Fatalf("InvalidObjs = %v", resp.InvalidObjs)
	}
	if len(resp.InvalidNodes) == 0 {
		t.Fatal("no invalidated nodes reported")
	}
	// Catalog requests carry the report too.
	cat, _ := srv.Execute(&wire.Request{Client: 4, Catalog: true, Epoch: 0})
	if cat.Epoch != srv.Epoch() || len(cat.InvalidObjs) != 1 {
		t.Fatalf("catalog report incomplete: %+v", cat)
	}
	if cat.RootID != srv.Tree().Root() {
		t.Fatal("catalog root missing")
	}
}

func TestUpdatesKeepQueriesCorrect(t *testing.T) {
	srv, items := updServer(t, 400, 0)
	r := rand.New(rand.NewSource(172))
	live := make(map[rtree.ObjectID]geom.Rect, len(items))
	for _, it := range items {
		live[it.Obj] = it.MBR
	}
	next := rtree.ObjectID(len(items) + 1)

	for round := 0; round < 120; round++ {
		switch r.Intn(3) {
		case 0:
			mbr := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01)
			srv.InsertObject(next, mbr, 700)
			live[next] = mbr
			next++
		case 1:
			for id, mbr := range live {
				srv.DeleteObject(id, mbr)
				delete(live, id)
				break
			}
		default:
			for id, mbr := range live {
				to := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01)
				srv.MoveObject(id, mbr, to)
				live[id] = to
				break
			}
		}
		if err := srv.Tree().Validate(false); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		win := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.2, 0.2)
		resp, _ := srv.Execute(&wire.Request{Q: query.NewRange(win), NoIndex: true})
		want := 0
		for _, mbr := range live {
			if mbr.Intersects(win) {
				want++
			}
		}
		if len(resp.Objects) != want {
			t.Fatalf("round %d: got %d, want %d", round, len(resp.Objects), want)
		}
	}
}

func TestInsertedObjectSizeServed(t *testing.T) {
	srv, _ := updServer(t, 100, 0)
	srv.InsertObject(5000, geom.R(0.9, 0.9, 0.901, 0.901), 4321)
	resp, _ := srv.Execute(&wire.Request{Q: query.NewKNN(geom.Pt(0.9, 0.9), 1), NoIndex: true})
	if len(resp.Objects) != 1 || resp.Objects[0].ID != 5000 {
		t.Fatalf("resp = %+v", resp.Objects)
	}
	if resp.Objects[0].Size != 4321 {
		t.Fatalf("size overlay broken: %d", resp.Objects[0].Size)
	}
}
