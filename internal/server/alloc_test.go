package server

import (
	"testing"

	"repro/internal/wire"
)

// warmExecuteAllocCeiling is the documented per-request allocation budget of
// the warm serving path (see docs/PERF.md): a steady-state Execute over
// pooled state is expected to allocate nothing, but the ceiling leaves
// headroom for a GC emptying the sync.Pools mid-measurement (pool refills
// then show up as allocations) so the assertion stays deterministic — under
// -race with the full suite's GC pressure a refill has been observed to
// cost 25, hence the margin above that.
const warmExecuteAllocCeiling = 32

// TestWarmExecuteAllocBudget pins the tentpole property: a warm query on the
// server is effectively allocation-free. It fails loudly when a regression
// reintroduces per-request garbage (fresh maps, result slices, un-pooled
// responses) anywhere on the Execute path.
func TestWarmExecuteAllocBudget(t *testing.T) {
	srv, _ := buildServer(t, 99, 2000, Config{})
	reqs := poolTestRequests(srv, 64, 100)

	release := func(resp *wire.Response) { srv.ReleaseResponse(resp) }
	for round := 0; round < 3; round++ { // warm pools, forest, and buffers
		for _, req := range reqs {
			resp, _ := srv.Execute(req)
			release(resp)
		}
	}

	i := 0
	allocs := testing.AllocsPerRun(256, func() {
		resp, _ := srv.Execute(reqs[i%len(reqs)])
		release(resp)
		i++
	})
	if allocs > warmExecuteAllocCeiling {
		t.Fatalf("warm Execute allocates %.1f objects per request, budget is %d (docs/PERF.md)",
			allocs, warmExecuteAllocCeiling)
	}
	t.Logf("warm Execute: %.2f allocs per request (budget %d)", allocs, warmExecuteAllocCeiling)
}
