package sim

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/coop"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/wire"
)

// The cooperative-caching experiment quantifies the paper's MANET vision: a
// neighborhood of clients with high query locality shares cached index and
// objects over a cheap local link, trading WAN bytes for LAN bytes. The
// sweep varies group size; members move as a loose cluster and interleave
// queries about the shared area.

// CoopConfig parameterizes one cooperative run.
type CoopConfig struct {
	Objects   int
	Queries   int // per member (each user issues the same workload size)
	Seed      int64
	GroupSize int
	CacheFrac float64 // per member
	// Spread is the cluster radius: member offsets from the shared anchor.
	Spread    float64
	ThinkMean float64
	Speed     float64
	KMax      int
}

func (c CoopConfig) normalized() CoopConfig {
	if c.Objects <= 0 {
		c.Objects = 30_000
	}
	if c.Queries <= 0 {
		c.Queries = 1_500
	}
	if c.GroupSize <= 0 {
		c.GroupSize = 3
	}
	if c.CacheFrac <= 0 {
		c.CacheFrac = 0.01
	}
	if c.Spread <= 0 {
		c.Spread = 0.01
	}
	if c.ThinkMean <= 0 {
		c.ThinkMean = 50
	}
	if c.Speed <= 0 {
		c.Speed = 1e-4
	}
	if c.KMax <= 0 {
		c.KMax = 5
	}
	return c
}

// CoopResult summarizes one cooperative run.
type CoopResult struct {
	GroupSize int

	Queries        int
	WANUplink      int64
	WANDownlink    int64
	LANBytes       int64
	ServerContacts int
	PeerBytes      int64
	OwnBytes       int64
	ResultBytes    int64
	RespSum        float64
}

// WANPerQuery returns mean WAN downlink bytes per query.
func (r *CoopResult) WANPerQuery() float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.WANDownlink) / float64(r.Queries)
}

// LANPerQuery returns mean LAN bytes per query.
func (r *CoopResult) LANPerQuery() float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.LANBytes) / float64(r.Queries)
}

// ContactRate returns the fraction of queries that used the WAN.
func (r *CoopResult) ContactRate() float64 {
	if r.Queries == 0 {
		return 0
	}
	return float64(r.ServerContacts) / float64(r.Queries)
}

// NeighborhoodHitRate returns (own + peer) bytes over all result bytes.
func (r *CoopResult) NeighborhoodHitRate() float64 {
	if r.ResultBytes == 0 {
		return 0
	}
	return float64(r.OwnBytes+r.PeerBytes) / float64(r.ResultBytes)
}

// MeanResp returns mean response time in seconds.
func (r *CoopResult) MeanResp() float64 {
	if r.Queries == 0 {
		return 0
	}
	return r.RespSum / float64(r.Queries)
}

// RunCoop executes one cooperative-group simulation against env.
func RunCoop(env *Environment, cfg CoopConfig) (*CoopResult, error) {
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed))
	rngMove := rand.New(rand.NewSource(cfg.Seed + 7919))

	srv := server.New(env.Tree, env.DS.SizeOf, server.Config{})
	transport := wire.TransportFunc(func(req *wire.Request) (*wire.Response, error) {
		resp, _ := srv.Execute(req)
		return resp, nil
	})

	capacity := int(cfg.CacheFrac * float64(env.DS.TotalBytes))
	members := make([]*coop.Client, cfg.GroupSize)
	offsets := make([]geom.Point, cfg.GroupSize)
	for i := range members {
		members[i] = coop.NewClient(coop.Config{
			ID:   wire.ClientID(i + 1),
			Root: srv.RootRef(),
		}, capacity, transport)
		angle := float64(i) / float64(cfg.GroupSize) * 2 * math.Pi
		offsets[i] = geom.Pt(cfg.Spread*math.Cos(angle), cfg.Spread*math.Sin(angle))
	}
	coop.NewGroup(members...)

	anchor := mobility.NewRandomWaypoint(mobility.Config{Speed: cfg.Speed, PauseMean: cfg.ThinkMean}, rngMove)

	res := &CoopResult{GroupSize: cfg.GroupSize}
	total := cfg.Queries * cfg.GroupSize
	base := anchor.Position()
	for i := 0; i < total; i++ {
		// The cluster walks together: the anchor advances once per round,
		// then each member issues its query from its offset position.
		m := i % cfg.GroupSize
		if m == 0 {
			think := rng.ExpFloat64() * cfg.ThinkMean
			base = anchor.Advance(think)
		}
		pos := geom.Pt(clamp01(base.X+offsets[m].X), clamp01(base.Y+offsets[m].Y))
		members[m].SetPosition(pos)

		var q query.Query
		switch rng.Intn(3) {
		case 0:
			side := 0.002 + rng.Float64()*0.002
			q = query.NewRange(geom.RectFromCenter(pos, side, side))
		case 1:
			q = query.NewKNN(pos, 1+rng.Intn(cfg.KMax))
		default:
			q = query.NewJoin(geom.RectFromCenter(pos, 0.004, 0.004), 5e-5)
		}
		rep, err := members[m].Query(q)
		if err != nil {
			return nil, fmt.Errorf("sim: coop query %d: %w", i, err)
		}
		res.Queries++
		res.WANUplink += int64(rep.WANUplink)
		res.WANDownlink += int64(rep.WANDownlink)
		res.LANBytes += int64(rep.LANBytes)
		res.PeerBytes += int64(rep.PeerBytes)
		res.OwnBytes += int64(rep.OwnBytes)
		res.ResultBytes += int64(rep.ResultBytes)
		res.RespSum += rep.RespTime
		if rep.ServerContact {
			res.ServerContacts++
		}
	}
	return res, nil
}

// CoopSweep compares group sizes (1 = no cooperation).
func CoopSweep(env *Environment, queries int, seed int64, groupSizes []int) ([]*CoopResult, error) {
	var out []*CoopResult
	for _, gs := range groupSizes {
		res, err := RunCoop(env, CoopConfig{
			Objects:   env.DS.Len(),
			Queries:   queries,
			Seed:      seed,
			GroupSize: gs,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// FprintCoopSweep renders the cooperative sweep.
func FprintCoopSweep(w io.Writer, rows []*CoopResult) {
	fmt.Fprintln(w, "Extension: cooperative caching (cluster of clients, shared neighborhood)")
	fmt.Fprintf(w, "%6s %12s %12s %10s %10s %10s\n",
		"group", "WAN B/q", "LAN B/q", "contact", "nbr-hit", "resp s")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %12.1f %12.1f %9.1f%% %9.1f%% %10.3f\n",
			r.GroupSize, r.WANPerQuery(), r.LANPerQuery(),
			r.ContactRate()*100, r.NeighborhoodHitRate()*100, r.MeanResp())
	}
}
