package sim

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/wire"
)

// Multi-client throughput mode: instead of simulating one mobile client's
// byte budget, hammer a single shared Server from many goroutine clients at
// once and measure real wall-clock serving capacity. This is the measurable
// side of the concurrent serving layer — queries share the index read lock,
// so throughput should scale with cores until the memory bus saturates.

// ThroughputResult is one row of the multi-client scaling sweep.
type ThroughputResult struct {
	Clients int
	Queries int           // total across all clients
	Elapsed time.Duration // wall clock
	QPS     float64
	Mean    time.Duration // per-query service time (client side, real time)
	P50     time.Duration
	P99     time.Duration
}

// Throughput runs `clients` concurrent proactive-caching clients, each
// issuing queriesPerClient mixed range/kNN queries against one shared
// server, and reports wall-clock throughput with latency quantiles. Every
// client owns a private cache and rng; only the server is shared.
func Throughput(env *Environment, clients, queriesPerClient int, seed int64) (ThroughputResult, error) {
	return ThroughputSharded(env, 1, clients, queriesPerClient, seed)
}

// ThroughputSharded is Throughput over a spatially sharded backend: with
// shards > 1 the dataset is KD-partitioned into that many single-node
// servers behind a cluster router (internal/cluster), and every client
// query scatter-gathers; shards <= 1 measures the plain shared server.
func ThroughputSharded(env *Environment, shards, clients, queriesPerClient int, seed int64) (ThroughputResult, error) {
	var transport wire.Transport
	if shards > 1 {
		backend, err := clusterBackend(env, shards)
		if err != nil {
			return ThroughputResult{}, err
		}
		defer backend.Close()
		transport = backend.Router
	} else {
		srv := server.New(env.Tree, env.DS.SizeOf, server.Config{})
		defer srv.Close()
		transport = wire.TransportFunc(func(req *wire.Request) (*wire.Response, error) {
			resp, _ := srv.Execute(req)
			return resp, nil
		})
	}
	sizes := wire.DefaultSizeModel()
	cat, err := transport.RoundTrip(&wire.Request{Catalog: true})
	if err != nil {
		return ThroughputResult{}, fmt.Errorf("catalog: %w", err)
	}
	root := query.NodeRef(cat.RootID, cat.RootMBR)

	var hist metrics.Histogram
	errCh := make(chan error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed + int64(c)))
			cache := core.NewCache(1<<20, core.GRD3, sizes)
			cl := core.NewClient(core.ClientConfig{
				ID:        wire.ClientID(c + 1),
				Root:      root,
				Sizes:     sizes,
				FMRPeriod: 25,
			}, cache, transport)
			for i := 0; i < queriesPerClient; i++ {
				p := geom.Pt(r.Float64(), r.Float64())
				var q query.Query
				if i%2 == 0 {
					q = query.NewRange(geom.RectFromCenter(p, 0.02, 0.02))
				} else {
					q = query.NewKNN(p, 1+r.Intn(8))
				}
				t0 := time.Now()
				if _, err := cl.Query(q); err != nil {
					errCh <- fmt.Errorf("client %d query %d: %w", c, i, err)
					return
				}
				hist.Observe(time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		return ThroughputResult{}, err
	}

	total := clients * queriesPerClient
	return ThroughputResult{
		Clients: clients,
		Queries: total,
		Elapsed: elapsed,
		QPS:     float64(total) / elapsed.Seconds(),
		Mean:    hist.Mean(),
		P50:     hist.Quantile(0.50),
		P99:     hist.Quantile(0.99),
	}, nil
}

// ThroughputSweep measures Throughput at each client count.
func ThroughputSweep(env *Environment, clientCounts []int, queriesPerClient int, seed int64) ([]ThroughputResult, error) {
	return ThroughputSweepSharded(env, 1, clientCounts, queriesPerClient, seed)
}

// ThroughputSweepSharded sweeps client counts over a sharded backend
// (procsim -fig throughput -cluster N).
func ThroughputSweepSharded(env *Environment, shards int, clientCounts []int, queriesPerClient int, seed int64) ([]ThroughputResult, error) {
	rows := make([]ThroughputResult, 0, len(clientCounts))
	for _, c := range clientCounts {
		r, err := ThroughputSharded(env, shards, c, queriesPerClient, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// clusterBackend builds an in-process sharded backend over the
// environment's dataset, mirroring the environment's tree shape.
func clusterBackend(env *Environment, shards int) (*cluster.InProcess, error) {
	return cluster.NewInProcess(env.DS.Objects, cluster.InProcessConfig{
		Shards: shards,
		Tree:   rtree.Params{MaxEntries: env.Tree.Params().MaxEntries},
		Sizer:  env.DS.SizeOf,
	})
}

// FprintThroughput renders the scaling sweep, with speedup relative to the
// first row.
func FprintThroughput(w io.Writer, rows []ThroughputResult) {
	fmt.Fprintln(w, "Multi-client serving throughput (shared server, per-goroutine clients)")
	fmt.Fprintf(w, "%8s %9s %10s %10s %9s %9s %9s %8s\n",
		"clients", "queries", "elapsed", "qps", "mean", "p50", "p99", "speedup")
	var base float64
	for i, r := range rows {
		if i == 0 {
			base = r.QPS
		}
		speedup := 0.0
		if base > 0 {
			speedup = r.QPS / base
		}
		fmt.Fprintf(w, "%8d %9d %10v %10.0f %9v %9v %9v %7.2fx\n",
			r.Clients, r.Queries, r.Elapsed.Round(time.Millisecond), r.QPS,
			r.Mean.Round(time.Microsecond), r.P50, r.P99, speedup)
	}
}
