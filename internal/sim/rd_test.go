package sim

import "testing"

// TestRDEnvironmentShape: the paper's footnote 6 reports that RD results
// mirror NE's; verify the headline ordering holds on road-segment data too.
func TestRDEnvironmentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("RD environment build is slow")
	}
	env := NewRDEnvironment(Scale{Objects: 8_000, Queries: 300, Seed: 2})
	if env.DS.Name != "RD" {
		t.Fatalf("dataset name %q", env.DS.Name)
	}
	if err := env.Tree.Validate(false); err != nil {
		t.Fatal(err)
	}

	resp := map[Model]float64{}
	hitc := map[Model]float64{}
	for _, m := range []Model{PAG, APRO} {
		cfg := DefaultConfig(env)
		cfg.Model = m
		cfg.Queries = 300
		cfg.Seed = 2
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		resp[m] = res.Sum.MeanResp()
		hitc[m] = res.Sum.HitC()
	}
	if !(resp[APRO] < resp[PAG]) {
		t.Errorf("APRO %.3f should beat PAG %.3f on RD", resp[APRO], resp[PAG])
	}
	if hitc[PAG] != 0 || hitc[APRO] == 0 {
		t.Errorf("hit rates wrong on RD: PAG %.3f APRO %.3f", hitc[PAG], hitc[APRO])
	}
}
