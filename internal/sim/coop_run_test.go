package sim

import "testing"

func TestCoopSweepSavesWAN(t *testing.T) {
	rows, err := CoopSweep(sharedEnv, 400, 9, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	solo, group := rows[0], rows[1]
	if solo.GroupSize != 1 || group.GroupSize != 4 {
		t.Fatal("row order")
	}
	if solo.LANBytes != 0 {
		t.Errorf("solo run used the LAN: %d bytes", solo.LANBytes)
	}
	if group.LANBytes == 0 {
		t.Error("group run never used the LAN")
	}
	// Cooperation must reduce the WAN load per query.
	if group.WANPerQuery() >= solo.WANPerQuery() {
		t.Errorf("no WAN savings: group %.0f B/q vs solo %.0f B/q",
			group.WANPerQuery(), solo.WANPerQuery())
	}
	// And raise the neighborhood hit rate.
	if group.NeighborhoodHitRate() <= solo.NeighborhoodHitRate() {
		t.Errorf("no hit-rate gain: group %.3f vs solo %.3f",
			group.NeighborhoodHitRate(), solo.NeighborhoodHitRate())
	}
}

func TestCoopDeterministic(t *testing.T) {
	a, err := RunCoop(sharedEnv, CoopConfig{Queries: 150, Seed: 10, GroupSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCoop(sharedEnv, CoopConfig{Queries: 150, Seed: 10, GroupSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("same seed, different coop outcomes:\n%+v\n%+v", a, b)
	}
}
