package sim

import (
	"io"
	"testing"

	"repro/internal/core"
)

// sharedEnv is built once; tests only read it.
var sharedEnv = NewNEEnvironment(TestScale())

func run(t *testing.T, mutate func(*Config)) *Result {
	t.Helper()
	cfg := DefaultConfig(sharedEnv)
	cfg.Queries = TestScale().Queries
	cfg.Seed = 42
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunBasics(t *testing.T) {
	res := run(t, nil)
	if res.Sum.Queries != TestScale().Queries {
		t.Fatalf("ran %d queries", res.Sum.Queries)
	}
	if res.Sum.MeanResp() < 0 {
		t.Error("negative response time")
	}
	if res.SimulatedTime <= 0 {
		t.Error("clock did not advance")
	}
	if res.FinalCacheUsed <= 0 {
		t.Error("proactive cache stayed empty")
	}
	if res.FinalIndexBytes <= 0 {
		t.Error("no index was cached under APRO")
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, nil)
	b := run(t, nil)
	if a.Sum != b.Sum {
		t.Errorf("same seed, different outcomes:\n%+v\n%+v", a.Sum, b.Sum)
	}
	c := run(t, func(cfg *Config) { cfg.Seed = 43 })
	if a.Sum == c.Sum {
		t.Error("different seeds produced identical outcomes")
	}
}

func TestModelsProduceSensibleMetrics(t *testing.T) {
	for _, m := range []Model{APRO, FPRO, CPRO, SEM, PAG} {
		res := run(t, func(cfg *Config) { cfg.Model = m })
		s := res.Sum
		if s.HitC() < 0 || s.HitC() > 1 || s.HitB() < s.HitC() {
			t.Errorf("%v: hit rates inconsistent: hitc=%.3f hitb=%.3f", m, s.HitC(), s.HitB())
		}
		if m == PAG && s.HitC() != 0 {
			t.Errorf("PAG hitc = %.3f, must be 0", s.HitC())
		}
		if m != PAG && m != SEM && s.HitC() == 0 {
			t.Errorf("%v: proactive model never hit", m)
		}
	}
}

// TestFigure6Shape asserts the paper's headline ordering at test scale:
// PAG has the highest uplink and zero hitc; APRO has the best response time
// and the highest hitc.
func TestFigure6Shape(t *testing.T) {
	rows, err := Figure6(sharedEnv, TestScale())
	if err != nil {
		t.Fatal(err)
	}
	byModel := map[Model]Fig6Row{}
	for _, r := range rows {
		byModel[r.Model] = r
	}
	pag, sem, apro := byModel[PAG], byModel[SEM], byModel[APRO]

	if !(pag.Uplink > sem.Uplink && pag.Uplink > apro.Uplink) {
		t.Errorf("PAG should pay the most uplink: PAG=%.0f SEM=%.0f APRO=%.0f", pag.Uplink, sem.Uplink, apro.Uplink)
	}
	if pag.HitC != 0 {
		t.Errorf("PAG hitc = %.3f", pag.HitC)
	}
	if !(apro.HitC > sem.HitC) {
		t.Errorf("APRO hitc %.3f should beat SEM %.3f", apro.HitC, sem.HitC)
	}
	if !(apro.Resp < pag.Resp && apro.Resp < sem.Resp) {
		t.Errorf("APRO resp %.3f should be best (PAG %.3f, SEM %.3f)", apro.Resp, pag.Resp, sem.Resp)
	}
	FprintFigure6(io.Discard, rows)
}

// TestFigure7Shape: RAN has better locality than DIR, so response times are
// lower under RAN; APRO's false miss rate stays nearly flat across models.
// The locality gap needs a longer horizon than the other shape tests.
func TestFigure7Shape(t *testing.T) {
	sc := TestScale()
	sc.Queries = 1200
	rows, err := Figure7(sharedEnv, sc)
	if err != nil {
		t.Fatal(err)
	}
	var apro Fig7Row
	for _, r := range rows {
		if r.Model == APRO {
			apro = r
		}
		// At test scale the RAN/DIR gap is small; assert it does not invert
		// grossly (full-scale runs in EXPERIMENTS.md show the clean gap).
		if r.Model != PAG && r.RespRAN > r.RespDIR*1.25 {
			t.Errorf("%v: RAN resp %.3f should not exceed DIR %.3f by >25%%", r.Model, r.RespRAN, r.RespDIR)
		}
	}
	if apro.FMRDIR > apro.FMRRAN+0.25 {
		t.Errorf("APRO fmr should be mobility-stable: RAN %.3f DIR %.3f", apro.FMRRAN, apro.FMRDIR)
	}
	FprintFigure7(io.Discard, rows)
}

// TestFigure8Shape: PAG's uplink grows with |C| so its response time stops
// improving; APRO keeps improving with more cache.
func TestFigure8Shape(t *testing.T) {
	rows, err := Figure8and9(sharedEnv, TestScale())
	if err != nil {
		t.Fatal(err)
	}
	resp := map[Model]map[float64]float64{}
	cpu := map[Model]map[float64]float64{}
	for _, r := range rows {
		if resp[r.Model] == nil {
			resp[r.Model] = map[float64]float64{}
			cpu[r.Model] = map[float64]float64{}
		}
		resp[r.Model][r.CacheFrac] = r.Resp
		cpu[r.Model][r.CacheFrac] = r.CPUms
	}
	// APRO: biggest cache should beat the smallest cache clearly.
	if !(resp[APRO][0.05] < resp[APRO][0.001]) {
		t.Errorf("APRO should improve with cache: 0.1%%=%.3f 5%%=%.3f", resp[APRO][0.001], resp[APRO][0.05])
	}
	// PAG at 5% should NOT be meaningfully better than at 1% (uplink cost).
	if resp[PAG][0.05] < resp[PAG][0.01]*0.9 {
		t.Errorf("PAG 5%% resp %.3f improved too much over 1%% %.3f", resp[PAG][0.05], resp[PAG][0.01])
	}
	// Figure 9 shape: PAG CPU grows with cache size; APRO CPU stays flatter.
	pagGrowth := cpu[PAG][0.05] / (cpu[PAG][0.001] + 1e-9)
	aproGrowth := cpu[APRO][0.05] / (cpu[APRO][0.001] + 1e-9)
	if pagGrowth < aproGrowth {
		t.Errorf("PAG CPU growth %.2fx should exceed APRO's %.2fx", pagGrowth, aproGrowth)
	}
	FprintFigure8and9(io.Discard, rows)
}

// TestFigure10Shape: MRU is always the worst replacement policy.
func TestFigure10Shape(t *testing.T) {
	rows, err := Figure10(sharedEnv, TestScale())
	if err != nil {
		t.Fatal(err)
	}
	var mru, grd3 Fig10Row
	for _, r := range rows {
		switch r.Policy {
		case core.MRU:
			mru = r
		case core.GRD3:
			grd3 = r
		}
	}
	if !(mru.RespRAN >= grd3.RespRAN && mru.RespDIR >= grd3.RespDIR) {
		t.Errorf("MRU (%.3f/%.3f) should not beat GRD3 (%.3f/%.3f)",
			mru.RespRAN, mru.RespDIR, grd3.RespRAN, grd3.RespDIR)
	}
	FprintFigure10(io.Discard, rows)
}

// TestFigure11Shape: CPRO ships the least index (lowest i/c), FPRO the most;
// CPRO's false miss rate exceeds FPRO's.
func TestFigure11Shape(t *testing.T) {
	series, err := Figure11(sharedEnv, TestScale(), 50)
	if err != nil {
		t.Fatal(err)
	}
	agg := map[Model]*struct{ fmr, ic float64 }{}
	for _, s := range series {
		a := &struct{ fmr, ic float64 }{}
		for _, p := range s.Points {
			a.fmr += p.FMR
			a.ic += p.IndexFrac
		}
		n := float64(len(s.Points))
		a.fmr /= n
		a.ic /= n
		agg[s.Model] = a
	}
	if !(agg[FPRO].ic > agg[CPRO].ic) {
		t.Errorf("FPRO i/c %.3f should exceed CPRO %.3f", agg[FPRO].ic, agg[CPRO].ic)
	}
	if !(agg[CPRO].fmr > agg[FPRO].fmr) {
		t.Errorf("CPRO fmr %.3f should exceed FPRO %.3f", agg[CPRO].fmr, agg[FPRO].fmr)
	}
	// APRO's index share sits between the two static extremes (or near them).
	if agg[APRO].ic > agg[FPRO].ic+0.05 {
		t.Errorf("APRO i/c %.3f above FPRO %.3f", agg[APRO].ic, agg[FPRO].ic)
	}
	FprintFigure11(io.Discard, series)
}

func TestAblationPartitionCost(t *testing.T) {
	rows, err := AblationPartitionCost(sharedEnv, TestScale())
	if err != nil {
		t.Fatal(err)
	}
	var full, adaptive int64
	for _, r := range rows {
		if r.Model == FPRO {
			full = r.ServerEngineOps
		} else {
			adaptive = r.ServerEngineOps
		}
	}
	if full == 0 || adaptive == 0 {
		t.Fatal("no server work recorded")
	}
	// Section 4.2 bounds partition navigation at 2x the node accesses, and
	// Section 6.4 observes that in practice it is *cheaper* than full-form
	// expansion (only a small part of each partition tree is visited, while
	// full form enumerates every entry). Assert the generous upper bound.
	if ratio := float64(adaptive) / float64(full); ratio > 3.0 {
		t.Errorf("partition navigation ratio %.2f exceeds bound", ratio)
	}
}

func TestAblationGRD2vsGRD3Agree(t *testing.T) {
	rows, err := AblationGRD2vsGRD3(sharedEnv, TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("want 2 rows")
	}
	// Equivalent policies: hit rates within a small tolerance of each other.
	if d := rows[0].HitC - rows[1].HitC; d > 0.1 || d < -0.1 {
		t.Errorf("GRD2 hitc %.3f vs GRD3 %.3f diverge", rows[0].HitC, rows[1].HitC)
	}
}

func TestKScheduleDrivesK(t *testing.T) {
	res := run(t, func(cfg *Config) {
		cfg.Mix = [3]float64{0, 1, 0}
		cfg.KSchedule = func(i int) float64 { return 10 }
		cfg.WindowSize = 50
	})
	if res.Sum.Queries == 0 || len(res.Windows) == 0 {
		t.Fatal("no windows recorded")
	}
}

func TestStaticDAblation(t *testing.T) {
	rows, adaptive, err := AblationStaticD(sharedEnv, Scale{Objects: 0, Queries: 150, Seed: 5}, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || adaptive.Resp <= 0 {
		t.Fatalf("unexpected ablation output: %+v %+v", rows, adaptive)
	}
}
