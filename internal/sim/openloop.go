package sim

import (
	"io"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/load"
	"repro/internal/server"
	"repro/internal/wire"
)

// OpenLoop bridges the simulation environment to the open-loop load
// harness (internal/load): it stands up an in-process backend over the
// environment's dataset — a single shared server for shards <= 1, a
// KD-sharded cluster behind a scatter-gather router otherwise — and drives
// it with the scenario at the target rate. Unlike ThroughputSharded (a
// closed-loop lockstep of real cached clients), OpenLoop measures what the
// paper's serving story claims at fleet scale: a paced arrival schedule
// over a hash-derived user population (procsim -fig load).
func OpenLoop(env *Environment, shards int, spec load.Spec, qps float64, dur time.Duration, users, workers int, seed int64) (*load.Result, error) {
	var (
		transport   wire.Transport
		release     func(*wire.Response)
		shardErrors atomic.Int64
	)
	if shards > 1 {
		backend, err := cluster.NewInProcess(env.DS.Objects, cluster.InProcessConfig{
			Shards:       shards,
			Tree:         env.Tree.Params(),
			Sizer:        env.DS.SizeOf,
			OnShardError: func(int, error) { shardErrors.Add(1) },
		})
		if err != nil {
			return nil, err
		}
		defer backend.Close()
		transport = backend.Router
		release = backend.Router.ReleaseResponse
	} else {
		srv := server.New(env.Tree, env.DS.SizeOf, server.Config{})
		defer srv.Close()
		transport = wire.TransportFunc(func(req *wire.Request) (*wire.Response, error) {
			if len(req.Updates) > 0 {
				return srv.ExecuteUpdates(req), nil
			}
			resp, _ := srv.Execute(req)
			return resp, nil
		})
		release = srv.ReleaseResponse
	}
	return load.Run(load.Config{
		Spec:         spec,
		TargetQPS:    qps,
		Duration:     dur,
		Users:        users,
		Workers:      workers,
		Seed:         seed,
		NewTransport: func(int) (wire.Transport, error) { return transport, nil },
		Release:      release,
		ShardErrors:  shardErrors.Load,
	})
}

// FprintLoad renders scenario results as the procsim text report.
func FprintLoad(w io.Writer, results []*load.Result) {
	for _, r := range results {
		r.Fprint(w)
	}
}
