package sim

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
)

// Scale bundles the knobs that trade fidelity for runtime: the paper's full
// scale (123,593 objects, 10,000 queries) versus reduced scales for tests
// and benchmarks. The shapes of all figures survive scaling down; absolute
// byte counts shrink with the dataset.
type Scale struct {
	Objects int
	Queries int
	Seed    int64
}

// FullScale reproduces the paper's NE setting.
func FullScale() Scale { return Scale{Objects: dataset.NECardinality, Queries: 10_000, Seed: 1} }

// BenchScale keeps go test -bench runs in tens of seconds.
func BenchScale() Scale { return Scale{Objects: 30_000, Queries: 1_500, Seed: 1} }

// TestScale keeps unit tests fast.
func TestScale() Scale { return Scale{Objects: 6_000, Queries: 250, Seed: 1} }

// NewNEEnvironment generates the NE-like dataset at the given scale and
// indexes it.
func NewNEEnvironment(sc Scale) *Environment {
	return NewEnvironment(dataset.GenerateNE(dataset.Params{N: sc.Objects, Seed: sc.Seed}))
}

// NewRDEnvironment generates the RD-like dataset at the given scale and
// indexes it.
func NewRDEnvironment(sc Scale) *Environment {
	return NewEnvironment(dataset.GenerateRD(dataset.Params{N: sc.Objects, Seed: sc.Seed}))
}

// ---------------------------------------------------------------------------
// Figure 6: overall comparison, DIR mobility, |C| = 1%.

// Fig6Row is one caching model's bar group in Figure 6.
type Fig6Row struct {
	Model    Model
	Uplink   float64 // bytes/query
	Downlink float64 // bytes/query
	HitC     float64
	HitB     float64
	Resp     float64 // seconds
}

// Figure6 runs PAG, SEM and APRO under the Figure 6 setting.
func Figure6(env *Environment, sc Scale) ([]Fig6Row, error) {
	var rows []Fig6Row
	for _, m := range []Model{PAG, SEM, APRO} {
		cfg := DefaultConfig(env)
		cfg.Model = m
		cfg.Mobility = DIR
		cfg.Queries = sc.Queries
		cfg.Seed = sc.Seed
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig6Row{
			Model:    m,
			Uplink:   res.Sum.MeanUplink(),
			Downlink: res.Sum.MeanDownlink(),
			HitC:     res.Sum.HitC(),
			HitB:     res.Sum.HitB(),
			Resp:     res.Sum.MeanResp(),
		})
	}
	return rows, nil
}

// FprintFigure6 renders Figure 6 rows as a table.
func FprintFigure6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintf(w, "Figure 6: overall comparison (DIR, |C|=1%%)\n")
	fmt.Fprintf(w, "%-6s %12s %14s %8s %8s %10s\n", "model", "uplink B/q", "downlink B/q", "hitc", "hitb", "resp s")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %12.1f %14.1f %8.3f %8.3f %10.3f\n",
			r.Model, r.Uplink, r.Downlink, r.HitC, r.HitB, r.Resp)
	}
}

// ---------------------------------------------------------------------------
// Figure 7: mobility models.

// Fig7Row is one model's pair of bars in Figures 7(a) and 7(b).
type Fig7Row struct {
	Model   Model
	RespRAN float64
	RespDIR float64
	FMRRAN  float64 // meaningful for SEM and APRO only
	FMRDIR  float64
	HasFMR  bool
}

// Figure7 measures response time and false miss rate under both mobility
// models.
func Figure7(env *Environment, sc Scale) ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, m := range []Model{PAG, SEM, APRO} {
		row := Fig7Row{Model: m, HasFMR: m != PAG}
		for _, mob := range []MobilityKind{RAN, DIR} {
			cfg := DefaultConfig(env)
			cfg.Model = m
			cfg.Mobility = mob
			cfg.Queries = sc.Queries
			cfg.Seed = sc.Seed
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			if mob == RAN {
				row.RespRAN, row.FMRRAN = res.Sum.MeanResp(), res.Sum.FMR()
			} else {
				row.RespDIR, row.FMRDIR = res.Sum.MeanResp(), res.Sum.FMR()
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintFigure7 renders Figure 7 rows.
func FprintFigure7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintf(w, "Figure 7(a): response time (s) under mobility models\n")
	fmt.Fprintf(w, "%-6s %10s %10s\n", "model", "RAN", "DIR")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %10.3f %10.3f\n", r.Model, r.RespRAN, r.RespDIR)
	}
	fmt.Fprintf(w, "Figure 7(b): false miss rate under mobility models\n")
	fmt.Fprintf(w, "%-6s %10s %10s\n", "model", "RAN", "DIR")
	for _, r := range rows {
		if r.HasFMR {
			fmt.Fprintf(w, "%-6s %10.3f %10.3f\n", r.Model, r.FMRRAN, r.FMRDIR)
		}
	}
}

// ---------------------------------------------------------------------------
// Figures 8 and 9: cache-size sweep (response time and client CPU).

// SweepRow is one (model, cache size) cell of Figures 8 and 9.
type SweepRow struct {
	Model     Model
	CacheFrac float64
	Resp      float64
	CPUms     float64
}

// CacheFracs is the paper's |C| sweep.
var CacheFracs = []float64{0.001, 0.005, 0.01, 0.05}

// Figure8and9 sweeps cache sizes under RAN for all three models; the same
// runs yield both the response-time curves (Fig. 8) and the client CPU
// curves (Fig. 9).
func Figure8and9(env *Environment, sc Scale) ([]SweepRow, error) {
	var rows []SweepRow
	for _, m := range []Model{PAG, SEM, APRO} {
		for _, frac := range CacheFracs {
			cfg := DefaultConfig(env)
			cfg.Model = m
			cfg.Mobility = RAN
			cfg.CacheFrac = frac
			cfg.Queries = sc.Queries
			cfg.Seed = sc.Seed
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, SweepRow{Model: m, CacheFrac: frac, Resp: res.Sum.MeanResp(), CPUms: res.Sum.MeanCPU()})
		}
	}
	return rows, nil
}

// FprintFigure8and9 renders the sweep as the two figures' tables.
func FprintFigure8and9(w io.Writer, rows []SweepRow) {
	fmt.Fprintf(w, "Figure 8: response time (s) vs cache size (RAN)\n")
	fprintSweep(w, rows, func(r SweepRow) float64 { return r.Resp }, "%10.3f")
	fmt.Fprintf(w, "Figure 9: client CPU (ms) vs cache size (RAN)\n")
	fprintSweep(w, rows, func(r SweepRow) float64 { return r.CPUms }, "%10.2f")
}

func fprintSweep(w io.Writer, rows []SweepRow, pick func(SweepRow) float64, cell string) {
	fmt.Fprintf(w, "%-6s", "model")
	for _, f := range CacheFracs {
		fmt.Fprintf(w, "%9.1f%%", f*100)
	}
	fmt.Fprintln(w)
	for _, m := range []Model{PAG, SEM, APRO} {
		fmt.Fprintf(w, "%-6s", m)
		for _, f := range CacheFracs {
			for _, r := range rows {
				if r.Model == m && r.CacheFrac == f {
					fmt.Fprintf(w, cell, pick(r))
				}
			}
		}
		fmt.Fprintln(w)
	}
}

// ---------------------------------------------------------------------------
// Figure 10: replacement schemes for APRO.

// Fig10Row is one replacement policy's bar pair.
type Fig10Row struct {
	Policy  core.Policy
	RespRAN float64
	RespDIR float64
}

// Figure10 compares replacement policies for adaptive proactive caching.
// MRU is included so the "always the worst" remark is checkable.
func Figure10(env *Environment, sc Scale) ([]Fig10Row, error) {
	var rows []Fig10Row
	for _, pol := range []core.Policy{core.LRU, core.FAR, core.GRD3, core.MRU} {
		row := Fig10Row{Policy: pol}
		for _, mob := range []MobilityKind{RAN, DIR} {
			cfg := DefaultConfig(env)
			cfg.Model = APRO
			cfg.Policy = pol
			cfg.Mobility = mob
			cfg.Queries = sc.Queries
			cfg.Seed = sc.Seed
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			if mob == RAN {
				row.RespRAN = res.Sum.MeanResp()
			} else {
				row.RespDIR = res.Sum.MeanResp()
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintFigure10 renders Figure 10 rows.
func FprintFigure10(w io.Writer, rows []Fig10Row) {
	fmt.Fprintf(w, "Figure 10: APRO response time (s) by replacement scheme\n")
	fmt.Fprintf(w, "%-6s %10s %10s\n", "policy", "RAN", "DIR")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %10.3f %10.3f\n", r.Policy, r.RespRAN, r.RespDIR)
	}
}

// ---------------------------------------------------------------------------
// Figure 11: adaptive vs non-adaptive time series.

// Fig11Series is one model's three curves over the query sequence.
type Fig11Series struct {
	Model  Model
	Points []WindowPoint
}

// Figure11 runs the kNN-only drifting-k workload (average k falls 10 -> 1
// over the first half, then rises back) for FPRO, CPRO and APRO with a
// small cache (0.1%) under RAN, sampling every windowSize queries.
func Figure11(env *Environment, sc Scale, windowSize int) ([]Fig11Series, error) {
	if windowSize <= 0 {
		windowSize = sc.Queries / 20
		if windowSize == 0 {
			windowSize = 1
		}
	}
	half := float64(sc.Queries) / 2
	schedule := func(i int) float64 {
		fi := float64(i)
		if fi < half {
			return 10 - 9*fi/half
		}
		return 1 + 9*(fi-half)/half
	}
	var out []Fig11Series
	for _, m := range []Model{FPRO, CPRO, APRO} {
		cfg := DefaultConfig(env)
		cfg.Model = m
		cfg.Mobility = RAN
		cfg.CacheFrac = 0.001
		cfg.Queries = sc.Queries
		cfg.Seed = sc.Seed
		cfg.Mix = [3]float64{0, 1, 0} // kNN only
		cfg.KSchedule = schedule
		cfg.WindowSize = windowSize
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig11Series{Model: m, Points: res.Windows})
	}
	return out, nil
}

// FprintFigure11 renders the three series side by side.
func FprintFigure11(w io.Writer, series []Fig11Series) {
	fmt.Fprintf(w, "Figure 11: kNN drift series (|C|=0.1%%, RAN); columns per model: fmr, i/c, resp(s)\n")
	fmt.Fprintf(w, "%8s", "query")
	for _, s := range series {
		fmt.Fprintf(w, " |%6s fmr   i/c  resp", s.Model)
	}
	fmt.Fprintln(w)
	if len(series) == 0 {
		return
	}
	for i := range series[0].Points {
		fmt.Fprintf(w, "%8d", series[0].Points[i].EndQuery)
		for _, s := range series {
			p := s.Points[i]
			fmt.Fprintf(w, " |%10.3f %5.2f %5.2f", p.FMR, p.IndexFrac, p.Resp)
		}
		fmt.Fprintln(w)
	}
}

// ---------------------------------------------------------------------------
// Ablations beyond the paper's figures.

// AblationStaticD pins the refinement level d (feedback disabled) to isolate
// the adaptive scheme's contribution: APRO should track the best static d.
type StaticDRow struct {
	D    int
	Resp float64
	FMR  float64
	HitC float64
}

// AblationStaticD sweeps fixed d values plus the adaptive scheme.
func AblationStaticD(env *Environment, sc Scale, ds []int) ([]StaticDRow, StaticDRow, error) {
	var rows []StaticDRow
	for _, d := range ds {
		cfg := DefaultConfig(env)
		cfg.Model = APRO
		cfg.Queries = sc.Queries
		cfg.Seed = sc.Seed
		cfg.InitialD = d
		cfg.FMRPeriod = sc.Queries + 1 // never report: d stays pinned
		res, err := Run(cfg)
		if err != nil {
			return nil, StaticDRow{}, err
		}
		rows = append(rows, StaticDRow{D: d, Resp: res.Sum.MeanResp(), FMR: res.Sum.FMR(), HitC: res.Sum.HitC()})
	}
	cfg := DefaultConfig(env)
	cfg.Model = APRO
	cfg.Queries = sc.Queries
	cfg.Seed = sc.Seed
	res, err := Run(cfg)
	if err != nil {
		return nil, StaticDRow{}, err
	}
	adaptive := StaticDRow{D: -1, Resp: res.Sum.MeanResp(), FMR: res.Sum.FMR(), HitC: res.Sum.HitC()}
	return rows, adaptive, nil
}

// GRD2vsGRD3Row compares the reference and efficient replacement algorithms.
type GRD2vsGRD3Row struct {
	Policy   core.Policy
	Resp     float64
	HitC     float64
	CacheOps float64 // mean cache ops per query (GRD2 pays the recursion)
}

// AblationGRD2vsGRD3 confirms the Theorem 5.5 equivalence operationally:
// nearly identical hit rates and response times, different maintenance cost.
func AblationGRD2vsGRD3(env *Environment, sc Scale) ([]GRD2vsGRD3Row, error) {
	var rows []GRD2vsGRD3Row
	for _, pol := range []core.Policy{core.GRD2, core.GRD3} {
		cfg := DefaultConfig(env)
		cfg.Model = APRO
		cfg.Policy = pol
		cfg.Queries = sc.Queries
		cfg.Seed = sc.Seed
		cfg.CacheFrac = 0.005 // small cache: replacement actually runs
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, GRD2vsGRD3Row{
			Policy:   pol,
			Resp:     res.Sum.MeanResp(),
			HitC:     res.Sum.HitC(),
			CacheOps: res.Sum.MeanCPU(),
		})
	}
	return rows, nil
}

// PartitionCostRow quantifies the Section 4.2 claim that partition-tree
// navigation at most doubles node accesses: server engine ops under
// compact/adaptive shipping vs full-form shipping.
type PartitionCostRow struct {
	Model           Model
	ServerEngineOps int64
}

// AblationPartitionCost measures server-side engine work with and without
// partition-tree navigation.
func AblationPartitionCost(env *Environment, sc Scale) ([]PartitionCostRow, error) {
	var rows []PartitionCostRow
	for _, m := range []Model{FPRO, APRO} {
		cfg := DefaultConfig(env)
		cfg.Model = m
		cfg.Queries = sc.Queries
		cfg.Seed = sc.Seed
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PartitionCostRow{Model: m, ServerEngineOps: res.ServerEngineOps})
	}
	return rows, nil
}
