// Package sim is the simulation harness of Section 6: a mobile client moves
// through the unit square (RAN or DIR), thinks for an exponential period,
// issues spatial queries about its neighborhood (range / kNN / windowed
// distance self-join), and processes them through one of the caching models
// (APRO/FPRO/CPRO proactive variants, the SEM semantic baseline, or the PAG
// page baseline) against a simulated 384 Kbps wireless channel.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/pagecache"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/semcache"
	"repro/internal/server"
	"repro/internal/wire"
)

// Model selects the caching model under test.
type Model uint8

const (
	// APRO is adaptive proactive caching (the paper's proposal).
	APRO Model = iota + 1
	// FPRO is proactive caching with full-form index shipping.
	FPRO
	// CPRO is proactive caching with normal-compact-form shipping.
	CPRO
	// SEM is the semantic caching baseline.
	SEM
	// PAG is the page caching baseline.
	PAG
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case APRO:
		return "APRO"
	case FPRO:
		return "FPRO"
	case CPRO:
		return "CPRO"
	case SEM:
		return "SEM"
	case PAG:
		return "PAG"
	default:
		return "Model(?)"
	}
}

// MobilityKind selects the movement model.
type MobilityKind uint8

const (
	// RAN is the random waypoint model.
	RAN MobilityKind = iota + 1
	// DIR is the directed movement model.
	DIR
)

// String implements fmt.Stringer.
func (m MobilityKind) String() string {
	if m == DIR {
		return "DIR"
	}
	return "RAN"
}

// Environment is the immutable world shared by runs: the dataset and its
// server-side index.
type Environment struct {
	DS   *dataset.Dataset
	Tree *rtree.Tree
}

// NewEnvironment bulk-loads the index for a dataset with the paper's page
// parameters (4 KB pages, ~70% fill).
func NewEnvironment(ds *dataset.Dataset) *Environment {
	return &Environment{DS: ds, Tree: ds.BuildTree(rtree.DefaultParams(), 0.7)}
}

// Config collects the Table 6.1 parameters plus the run controls.
type Config struct {
	Env      *Environment
	Model    Model
	Policy   core.Policy // replacement for the proactive models
	Mobility MobilityKind

	Queries   int
	CacheFrac float64 // |C| as a fraction of total dataset bytes

	ThinkMean   float64 // mean thinking time, seconds
	Speed       float64 // spd, units/second
	AreaWnd     float64 // mean range window area
	DistJoin    float64 // distance-join threshold
	JoinWndSide float64 // side of the join neighborhood window
	KMax        int     // k drawn uniformly from 1..KMax
	Sensitivity float64 // adaptive s
	FMRPeriod   int     // queries between fmr reports
	InitialD    int     // starting d for adaptive clients

	BandwidthBps float64 // wireless bandwidth, bits/second
	LatencySec   float64 // fixed per-message channel latency

	// Mix weights the query kinds (range, kNN, join).
	Mix [3]float64

	// KSchedule overrides the average k per query index (Figure 11's
	// controlled drift); nil means uniform 1..KMax.
	KSchedule func(i int) float64

	// WindowSize batches the time series of Figure 11 (0 disables).
	WindowSize int

	// CPUPerOpMicros converts operation counts (engine pops/pushes/expands
	// plus cache operations) into the client CPU milliseconds of Figure 9.
	CPUPerOpMicros float64

	Seed int64
}

// DefaultConfig returns the Table 6.1 settings for an environment.
func DefaultConfig(env *Environment) Config {
	return Config{
		Env:            env,
		Model:          APRO,
		Policy:         core.GRD3,
		Mobility:       RAN,
		Queries:        10_000,
		CacheFrac:      0.01,
		ThinkMean:      50,
		Speed:          1e-4,
		AreaWnd:        1e-6,
		DistJoin:       5e-5,
		JoinWndSide:    0.004,
		KMax:           5,
		Sensitivity:    0.20,
		FMRPeriod:      50,
		BandwidthBps:   384_000,
		LatencySec:     0.15,
		Mix:            [3]float64{1, 1, 1},
		CPUPerOpMicros: 2.0,
		Seed:           1,
	}
}

func (c Config) normalized() (Config, error) {
	if c.Env == nil {
		return c, fmt.Errorf("sim: Config.Env is required")
	}
	if c.Model == 0 {
		c.Model = APRO
	}
	if c.Policy == 0 {
		c.Policy = core.GRD3
	}
	if c.Mobility == 0 {
		c.Mobility = RAN
	}
	if c.Queries <= 0 {
		c.Queries = 10_000
	}
	if c.CacheFrac <= 0 {
		c.CacheFrac = 0.01
	}
	if c.ThinkMean <= 0 {
		c.ThinkMean = 50
	}
	if c.Speed <= 0 {
		c.Speed = 1e-4
	}
	if c.AreaWnd <= 0 {
		c.AreaWnd = 1e-6
	}
	if c.DistJoin <= 0 {
		c.DistJoin = 5e-5
	}
	if c.JoinWndSide <= 0 {
		c.JoinWndSide = 0.004
	}
	if c.KMax <= 0 {
		c.KMax = 5
	}
	if c.Sensitivity <= 0 {
		c.Sensitivity = 0.20
	}
	if c.FMRPeriod <= 0 {
		c.FMRPeriod = 50
	}
	if c.BandwidthBps <= 0 {
		c.BandwidthBps = 384_000
	}
	if c.Mix == ([3]float64{}) {
		c.Mix = [3]float64{1, 1, 1}
	}
	if c.CPUPerOpMicros <= 0 {
		c.CPUPerOpMicros = 2.0
	}
	return c, nil
}

// WindowPoint is one time-series sample (Figure 11).
type WindowPoint struct {
	EndQuery  int
	FMR       float64
	IndexFrac float64 // index bytes / cache bytes (i/c)
	Resp      float64 // mean response time in the window, seconds
}

// Result is the outcome of one simulation run.
type Result struct {
	Model    Model
	Mobility MobilityKind
	Policy   core.Policy

	Sum     metrics.Summary
	Windows []WindowPoint

	// ServerEngineOps accumulates the server-side engine work (ablation
	// diagnostics for the Section 6.4 server-CPU observation).
	ServerEngineOps int64

	FinalCacheUsed  int
	FinalIndexBytes int
	SimulatedTime   float64 // seconds of simulated clock
}

// agent is the common surface of the three client implementations.
type agent interface {
	Query(q query.Query) (core.Report, error)
	SetPosition(p geom.Point)
}

// Run executes one simulation.
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	env := cfg.Env
	rngQuery := rand.New(rand.NewSource(cfg.Seed))
	rngMove := rand.New(rand.NewSource(cfg.Seed + 7919))

	form := server.AdaptiveForm
	switch cfg.Model {
	case FPRO:
		form = server.FullForm
	case CPRO:
		form = server.CompactForm
	}
	srv := server.New(env.Tree, env.DS.SizeOf, server.Config{
		Form:        form,
		Sensitivity: cfg.Sensitivity,
		InitialD:    cfg.InitialD,
	})

	res := &Result{Model: cfg.Model, Mobility: cfg.Mobility, Policy: cfg.Policy}
	transport := wire.TransportFunc(func(req *wire.Request) (*wire.Response, error) {
		resp, info := srv.Execute(req)
		res.ServerEngineOps += int64(info.Engine.Total())
		return resp, nil
	})

	sizes := wire.DefaultSizeModel()
	channel := wire.Channel{BytesPerSec: cfg.BandwidthBps / 8, Latency: cfg.LatencySec}
	capacity := int(cfg.CacheFrac * float64(env.DS.TotalBytes))

	var cl agent
	var proCache *core.Cache
	switch cfg.Model {
	case SEM:
		cl = semcache.New(semcache.Config{ID: 1, Capacity: capacity, Sizes: sizes, Channel: channel}, transport)
	case PAG:
		cl = pagecache.New(1, capacity, transport, sizes, channel)
	default:
		proCache = core.NewCache(capacity, cfg.Policy, sizes)
		cl = core.NewClient(core.ClientConfig{
			ID:        1,
			Root:      srv.RootRef(),
			Sizes:     sizes,
			Channel:   channel,
			FMRPeriod: cfg.FMRPeriod,
		}, proCache, transport)
	}

	// RAN pauses at waypoints (its source of revisit locality); DIR models
	// on-purpose movement and keeps going.
	var mob mobility.Model
	if cfg.Mobility == DIR {
		mob = mobility.NewDirected(mobility.Config{Speed: cfg.Speed}, rngMove)
	} else {
		mob = mobility.NewRandomWaypoint(mobility.Config{Speed: cfg.Speed, PauseMean: cfg.ThinkMean}, rngMove)
	}

	var clock float64
	var win metrics.Summary
	for i := 0; i < cfg.Queries; i++ {
		think := rngQuery.ExpFloat64() * cfg.ThinkMean
		clock += think
		pos := mob.Advance(think)
		cl.SetPosition(pos)

		q := cfg.genQuery(rngQuery, pos, i)
		rep, err := cl.Query(q)
		if err != nil {
			return nil, fmt.Errorf("sim: query %d: %w", i, err)
		}

		ops := rep.EngineStats.Total() + rep.CacheOps
		cpuMS := float64(ops) * cfg.CPUPerOpMicros / 1000
		res.Sum.Add(rep.UplinkBytes, rep.DownlinkBytes, rep.ResultBytes, rep.SavedBytes,
			rep.FalseMissBytes, rep.RespTime, cpuMS, rep.LocalOnly)
		win.Add(rep.UplinkBytes, rep.DownlinkBytes, rep.ResultBytes, rep.SavedBytes,
			rep.FalseMissBytes, rep.RespTime, cpuMS, rep.LocalOnly)

		clock += rep.TotalTime
		mob.Advance(rep.TotalTime)

		if cfg.WindowSize > 0 && (i+1)%cfg.WindowSize == 0 {
			point := WindowPoint{EndQuery: i + 1, FMR: win.FMR(), Resp: win.MeanResp()}
			if proCache != nil && proCache.Used() > 0 {
				point.IndexFrac = float64(proCache.IndexBytes()) / float64(proCache.Used())
			}
			res.Windows = append(res.Windows, point)
			win = metrics.Summary{}
		}
	}

	if proCache != nil {
		res.FinalCacheUsed = proCache.Used()
		res.FinalIndexBytes = proCache.IndexBytes()
	}
	res.SimulatedTime = clock
	return res, nil
}

// genQuery draws the i-th query around the client position.
func (c Config) genQuery(rng *rand.Rand, pos geom.Point, i int) query.Query {
	kind := pickKind(rng, c.Mix)
	switch kind {
	case query.Range:
		area := c.AreaWnd * (0.5 + rng.Float64()) // mean AreaWnd
		aspect := 0.5 + rng.Float64()*1.5
		w := math.Sqrt(area * aspect)
		h := area / w
		return query.NewRange(geom.RectFromCenter(pos, w, h))
	case query.KNN:
		k := 1 + rng.Intn(c.KMax)
		if c.KSchedule != nil {
			avg := c.KSchedule(i)
			jitter := 1 + (rng.Float64()*2-1)*0.3
			k = int(math.Round(avg * jitter))
			if k < 1 {
				k = 1
			}
		}
		return query.NewKNN(pos, k)
	default:
		win := geom.RectFromCenter(pos, c.JoinWndSide, c.JoinWndSide)
		return query.NewJoin(win, c.DistJoin)
	}
}

func pickKind(rng *rand.Rand, mix [3]float64) query.Kind {
	total := mix[0] + mix[1] + mix[2]
	pick := rng.Float64() * total
	if pick < mix[0] {
		return query.Range
	}
	if pick < mix[0]+mix[1] {
		return query.KNN
	}
	return query.Join
}
