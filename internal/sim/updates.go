package sim

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/wire"
)

// The update experiment exercises the paper's first future-work item: how do
// server-side updates (moving, appearing and disappearing objects) affect
// proactive caching, and what does epoch-based invalidation cost? Each run
// owns a private mutable world, applies updates between queries at a
// configured rate, and measures — besides the usual metrics — the retry
// rate, the invalidation traffic, and the staleness of locally answered
// queries against live ground truth.

// UpdateConfig parameterizes one update-workload run.
type UpdateConfig struct {
	Objects   int
	Queries   int
	Seed      int64
	CacheFrac float64

	// UpdateRate is the expected number of server updates per query.
	UpdateRate float64
	// MoveFrac / InsertFrac / DeleteFrac weight the update mix (defaults
	// 0.7/0.15/0.15). Moves drift by MoveSigma around the old position.
	MoveFrac, InsertFrac, DeleteFrac float64
	MoveSigma                        float64

	// SyncEvery issues a consistency heartbeat every n queries (0 = never;
	// clients then learn of updates only when a remainder query contacts
	// the server).
	SyncEvery int

	ThinkMean float64
	Speed     float64
	KMax      int
}

func (c UpdateConfig) normalized() UpdateConfig {
	if c.Objects <= 0 {
		c.Objects = 30_000
	}
	if c.Queries <= 0 {
		c.Queries = 1_500
	}
	if c.CacheFrac <= 0 {
		c.CacheFrac = 0.01
	}
	if c.MoveFrac+c.InsertFrac+c.DeleteFrac == 0 {
		c.MoveFrac, c.InsertFrac, c.DeleteFrac = 0.7, 0.15, 0.15
	}
	if c.MoveSigma <= 0 {
		c.MoveSigma = 0.01
	}
	if c.ThinkMean <= 0 {
		c.ThinkMean = 50
	}
	if c.Speed <= 0 {
		c.Speed = 1e-4
	}
	if c.KMax <= 0 {
		c.KMax = 5
	}
	return c
}

// UpdateResult summarizes one update-workload run.
type UpdateResult struct {
	UpdateRate float64
	SyncEvery  int

	Sum metrics.Summary

	Updates         int
	Retries         int
	Invalidated     int
	SyncBytes       int64 // uplink+downlink spent on heartbeats
	LocalQueries    int
	StaleLocal      int // locally answered queries that disagreed with live truth
	InvalidationIDs int // ids carried in invalidation reports
}

// StaleLocalRate returns the fraction of local answers that were stale.
func (r *UpdateResult) StaleLocalRate() float64 {
	if r.LocalQueries == 0 {
		return 0
	}
	return float64(r.StaleLocal) / float64(r.LocalQueries)
}

// RunUpdates executes one update-workload simulation with a private world.
func RunUpdates(cfg UpdateConfig) (*UpdateResult, error) {
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed))
	rngMove := rand.New(rand.NewSource(cfg.Seed + 7919))

	ds := dataset.GenerateNE(dataset.Params{N: cfg.Objects, Seed: cfg.Seed})
	tree := ds.BuildTree(rtree.DefaultParams(), 0.7)

	// Live ground truth, maintained alongside server updates.
	live := make(map[rtree.ObjectID]geom.Rect, ds.Len())
	sizes := make(map[rtree.ObjectID]int, ds.Len())
	for _, o := range ds.Objects {
		live[o.ID] = o.MBR
		sizes[o.ID] = o.Size
	}
	nextID := rtree.ObjectID(ds.Len() + 1)

	srv := server.New(tree, func(id rtree.ObjectID) int { return sizes[id] }, server.Config{})

	res := &UpdateResult{UpdateRate: cfg.UpdateRate, SyncEvery: cfg.SyncEvery}
	transport := wire.TransportFunc(func(req *wire.Request) (*wire.Response, error) {
		resp, _ := srv.Execute(req)
		return resp, nil
	})

	sm := wire.DefaultSizeModel()
	capacity := int(cfg.CacheFrac * float64(ds.TotalBytes))
	cache := core.NewCache(capacity, core.GRD3, sm)
	cl := core.NewClient(core.ClientConfig{ID: 1, Root: srv.RootRef(), Sizes: sm, FMRPeriod: 50},
		cache, transport)

	mob := mobility.NewRandomWaypoint(mobility.Config{Speed: cfg.Speed, PauseMean: cfg.ThinkMean}, rngMove)

	// liveIDs mirrors the live map as a slice for deterministic O(1)
	// victim selection (swap-remove on delete).
	liveIDs := make([]rtree.ObjectID, 0, ds.Len())
	liveIdx := make(map[rtree.ObjectID]int, ds.Len())
	for _, o := range ds.Objects {
		liveIdx[o.ID] = len(liveIDs)
		liveIDs = append(liveIDs, o.ID)
	}
	addLive := func(id rtree.ObjectID) {
		liveIdx[id] = len(liveIDs)
		liveIDs = append(liveIDs, id)
	}
	dropLive := func(id rtree.ObjectID) {
		i := liveIdx[id]
		last := len(liveIDs) - 1
		liveIDs[i] = liveIDs[last]
		liveIdx[liveIDs[i]] = i
		liveIDs = liveIDs[:last]
		delete(liveIdx, id)
	}
	pickLive := func() (rtree.ObjectID, bool) {
		if len(liveIDs) == 0 {
			return 0, false
		}
		return liveIDs[rng.Intn(len(liveIDs))], true
	}

	applyUpdate := func() {
		res.Updates++
		w := rng.Float64() * (cfg.MoveFrac + cfg.InsertFrac + cfg.DeleteFrac)
		switch {
		case w < cfg.MoveFrac:
			id, ok := pickLive()
			if !ok {
				return
			}
			from := live[id]
			c := from.Center()
			to := geom.RectFromCenter(geom.Pt(
				clamp01(c.X+rng.NormFloat64()*cfg.MoveSigma),
				clamp01(c.Y+rng.NormFloat64()*cfg.MoveSigma)),
				from.Width(), from.Height())
			srv.MoveObject(id, from, to)
			live[id] = to
		case w < cfg.MoveFrac+cfg.InsertFrac:
			id := nextID
			nextID++
			mbr := geom.RectFromCenter(geom.Pt(rng.Float64(), rng.Float64()), 3e-4, 3e-4)
			srv.InsertObject(id, mbr, 10*1024)
			live[id] = mbr
			sizes[id] = 10 * 1024
			addLive(id)
		default:
			id, ok := pickLive()
			if !ok {
				return
			}
			srv.DeleteObject(id, live[id])
			delete(live, id)
			dropLive(id)
		}
	}

	bruteRange := func(win geom.Rect) map[rtree.ObjectID]bool {
		out := make(map[rtree.ObjectID]bool)
		for id, mbr := range live {
			if mbr.Intersects(win) {
				out[id] = true
			}
		}
		return out
	}

	for i := 0; i < cfg.Queries; i++ {
		// Server-side churn between queries.
		for u := cfg.UpdateRate; u > 0; u-- {
			if u >= 1 || rng.Float64() < u {
				applyUpdate()
			}
		}

		think := rng.ExpFloat64() * cfg.ThinkMean
		pos := mob.Advance(think)
		cl.SetPosition(pos)

		if cfg.SyncEvery > 0 && i > 0 && i%cfg.SyncEvery == 0 {
			req := &wire.Request{Client: 1, Catalog: true}
			res.SyncBytes += int64(sm.RequestBytes(req)) + int64(sm.MsgHeader)
			if _, err := cl.Sync(); err != nil {
				return nil, err
			}
		}

		// Range-only workload keeps live ground truth checks exact.
		side := 0.01 + rng.Float64()*0.02
		q := query.NewRange(geom.RectFromCenter(pos, side, side))
		rep, err := cl.Query(q)
		if err != nil {
			return nil, fmt.Errorf("sim: update run query %d: %w", i, err)
		}

		res.Retries += rep.Retries
		res.Invalidated += rep.Invalidated
		res.Sum.Add(rep.UplinkBytes, rep.DownlinkBytes, rep.ResultBytes, rep.SavedBytes,
			rep.FalseMissBytes, rep.RespTime, 0, rep.LocalOnly)

		if rep.LocalOnly {
			res.LocalQueries++
			want := bruteRange(q.Window)
			stale := len(want) != len(rep.Results)
			if !stale {
				for _, id := range rep.Results {
					if !want[id] {
						stale = true
						break
					}
				}
			}
			if stale {
				res.StaleLocal++
			}
		}
	}
	return res, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// UpdateSweep runs the update experiment across update rates.
func UpdateSweep(objects, queries int, seed int64, rates []float64, syncEvery int) ([]*UpdateResult, error) {
	var out []*UpdateResult
	for _, rate := range rates {
		res, err := RunUpdates(UpdateConfig{
			Objects:    objects,
			Queries:    queries,
			Seed:       seed,
			UpdateRate: rate,
			SyncEvery:  syncEvery,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// FprintUpdateSweep renders the update sweep.
func FprintUpdateSweep(w io.Writer, rows []*UpdateResult) {
	fmt.Fprintln(w, "Extension: server updates and cache invalidation (APRO, range workload)")
	fmt.Fprintf(w, "%10s %8s %8s %9s %9s %12s %11s\n",
		"upd/query", "hitc", "resp s", "retries", "inval", "stale-local", "local")
	for _, r := range rows {
		fmt.Fprintf(w, "%10.2f %8.3f %8.3f %9d %9d %11.1f%% %11d\n",
			r.UpdateRate, r.Sum.HitC(), r.Sum.MeanResp(), r.Retries, r.Invalidated,
			r.StaleLocalRate()*100, r.LocalQueries)
	}
}
