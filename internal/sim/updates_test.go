package sim

import "testing"

func TestRunUpdatesNoChurnIsClean(t *testing.T) {
	res, err := RunUpdates(UpdateConfig{Objects: 4000, Queries: 150, Seed: 3, UpdateRate: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates != 0 || res.Retries != 0 || res.Invalidated != 0 {
		t.Errorf("no-churn run recorded churn: %+v", res)
	}
	if res.StaleLocal != 0 {
		t.Errorf("stale local answers without updates: %d", res.StaleLocal)
	}
	if res.Sum.Queries != 150 {
		t.Errorf("ran %d queries", res.Sum.Queries)
	}
}

func TestRunUpdatesChurnInvalidates(t *testing.T) {
	res, err := RunUpdates(UpdateConfig{Objects: 4000, Queries: 200, Seed: 4, UpdateRate: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Updates == 0 {
		t.Fatal("no updates applied")
	}
	if res.Invalidated == 0 {
		t.Error("churn produced no invalidations")
	}
}

func TestSyncReducesStaleness(t *testing.T) {
	base := UpdateConfig{Objects: 4000, Queries: 300, Seed: 5, UpdateRate: 2.0}
	noSync, err := RunUpdates(base)
	if err != nil {
		t.Fatal(err)
	}
	withSync := base
	withSync.SyncEvery = 5
	synced, err := RunUpdates(withSync)
	if err != nil {
		t.Fatal(err)
	}
	if synced.StaleLocalRate() > noSync.StaleLocalRate() && synced.StaleLocal > noSync.StaleLocal+2 {
		t.Errorf("heartbeats increased staleness: %.3f (sync) vs %.3f (none)",
			synced.StaleLocalRate(), noSync.StaleLocalRate())
	}
}

func TestUpdateSweepMonotonicChurn(t *testing.T) {
	rows, err := UpdateSweep(4000, 150, 6, []float64{0, 1.0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatal("want 2 rows")
	}
	if rows[0].Invalidated > 0 {
		t.Error("rate-0 run invalidated items")
	}
	if rows[1].Invalidated == 0 {
		t.Error("rate-1 run invalidated nothing")
	}
	// Churn should not improve the hit rate.
	if rows[1].Sum.HitC() > rows[0].Sum.HitC()+0.05 {
		t.Errorf("hitc rose under churn: %.3f vs %.3f", rows[1].Sum.HitC(), rows[0].Sum.HitC())
	}
}
