package sim

import "testing"

func TestThroughputRuns(t *testing.T) {
	env := NewNEEnvironment(TestScale())
	res, err := Throughput(env, 4, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 80 {
		t.Errorf("queries = %d, want 80", res.Queries)
	}
	if res.QPS <= 0 {
		t.Errorf("qps = %f", res.QPS)
	}
	if res.P99 < res.P50 {
		t.Errorf("p99 %v < p50 %v", res.P99, res.P50)
	}
}

func TestThroughputSweep(t *testing.T) {
	env := NewNEEnvironment(TestScale())
	rows, err := ThroughputSweep(env, []int{1, 2}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Clients != 1 || rows[1].Clients != 2 {
		t.Fatalf("rows = %+v", rows)
	}
}
