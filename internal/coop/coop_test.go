package coop

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/wire"
)

type world struct {
	items []rtree.Item
	srv   *server.Server
}

func newWorld(seed int64, n int) *world {
	r := rand.New(rand.NewSource(seed))
	w := &world{}
	for i := 0; i < n; i++ {
		c := geom.Pt(r.Float64(), r.Float64())
		w.items = append(w.items, rtree.Item{
			Obj: rtree.ObjectID(i + 1),
			MBR: geom.RectFromCenter(c, 0.01, 0.01),
		})
	}
	tree := rtree.BulkLoad(rtree.Params{MaxEntries: 16}, w.items, 0.7)
	w.srv = server.New(tree, func(rtree.ObjectID) int { return 1000 }, server.Config{})
	return w
}

func (w *world) transport() wire.Transport {
	return wire.TransportFunc(func(req *wire.Request) (*wire.Response, error) {
		resp, _ := w.srv.Execute(req)
		return resp, nil
	})
}

func (w *world) member(id wire.ClientID, capacity int) *Client {
	return NewClient(Config{ID: id, Root: w.srv.RootRef()}, capacity, w.transport())
}

func (w *world) bruteRange(win geom.Rect) map[rtree.ObjectID]bool {
	out := map[rtree.ObjectID]bool{}
	for _, it := range w.items {
		if it.MBR.Intersects(win) {
			out[it.Obj] = true
		}
	}
	return out
}

func TestPeerCacheServesNeighbor(t *testing.T) {
	w := newWorld(61, 1000)
	a := w.member(1, 1<<22)
	b := w.member(2, 1<<22)
	NewGroup(a, b)

	win := geom.RectFromCenter(geom.Pt(0.5, 0.5), 0.1, 0.1)
	q := query.NewRange(win)

	// A warms the area over the WAN.
	repA, err := a.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !repA.ServerContact {
		t.Fatal("cold query must contact the server")
	}

	// B's identical query should be answered by A's cache over the LAN.
	repB, err := b.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if repB.ServerContact {
		t.Error("neighborhood should have answered without the server")
	}
	if repB.PeerBytes == 0 || repB.PeersUsed != 1 {
		t.Errorf("peer contribution missing: %+v", repB)
	}
	if repB.WANUplink != 0 || repB.WANDownlink != 0 {
		t.Error("WAN bytes spent despite peer answer")
	}
	if repB.LANBytes == 0 {
		t.Error("no LAN traffic accounted")
	}
	if len(repB.Results) != len(repA.Results) {
		t.Errorf("peer-served results differ: %d vs %d", len(repB.Results), len(repA.Results))
	}
	// Peer answers are far faster than WAN answers.
	if repB.RespTime >= repA.RespTime {
		t.Errorf("LAN answer (%.4fs) not faster than WAN (%.4fs)", repB.RespTime, repA.RespTime)
	}
}

func TestCoopCorrectnessMixedWorkload(t *testing.T) {
	w := newWorld(62, 800)
	a := w.member(1, 200_000)
	b := w.member(2, 200_000)
	c := w.member(3, 200_000)
	NewGroup(a, b, c)
	members := []*Client{a, b, c}

	r := rand.New(rand.NewSource(63))
	for i := 0; i < 90; i++ {
		m := members[i%3]
		p := geom.Pt(0.4+r.Float64()*0.2, 0.4+r.Float64()*0.2) // shared neighborhood
		win := geom.RectFromCenter(p, 0.06, 0.06)
		rep, err := m.Query(query.NewRange(win))
		if err != nil {
			t.Fatal(err)
		}
		want := w.bruteRange(win)
		got := map[rtree.ObjectID]bool{}
		for _, id := range rep.Results {
			got[id] = true
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d, want %d", i, len(got), len(want))
		}
		for id := range got {
			if !want[id] {
				t.Fatalf("query %d: ghost %d", i, id)
			}
		}
	}
}

func TestCoopKNNCorrect(t *testing.T) {
	w := newWorld(64, 900)
	a := w.member(1, 1<<21)
	b := w.member(2, 1<<21)
	NewGroup(a, b)

	center := geom.Pt(0.3, 0.7)
	if _, err := a.Query(query.NewRange(geom.RectFromCenter(center, 0.1, 0.1))); err != nil {
		t.Fatal(err)
	}
	rep, err := b.Query(query.NewKNN(center, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Verify distances against brute force.
	var all []float64
	for _, it := range w.items {
		all = append(all, geom.MinDist(center, it.MBR))
	}
	sort.Float64s(all)
	if len(rep.Results) != 5 {
		t.Fatalf("got %d results", len(rep.Results))
	}
	var gotD []float64
	for _, id := range rep.Results {
		gotD = append(gotD, geom.MinDist(center, w.items[int(id)-1].MBR))
	}
	sort.Float64s(gotD)
	for i := 0; i < 5; i++ {
		if gotD[i] != all[i] {
			t.Fatalf("dist[%d] = %v, want %v", i, gotD[i], all[i])
		}
	}
	if rep.PeerBytes == 0 {
		t.Error("kNN should have reused the peer's range results (cross-client, cross-type)")
	}
}

func TestSoloClientNoGroup(t *testing.T) {
	w := newWorld(65, 500)
	solo := w.member(9, 1<<20)
	rep, err := solo.Query(query.NewRange(geom.RectFromCenter(geom.Pt(0.5, 0.5), 0.1, 0.1)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeerBytes != 0 || rep.LANBytes != 0 || rep.PeersUsed != 0 {
		t.Error("groupless client recorded peer traffic")
	}
	if !rep.ServerContact {
		t.Error("cold solo query must reach the server")
	}
}

func TestGroupMembership(t *testing.T) {
	w := newWorld(66, 100)
	a := w.member(1, 1<<20)
	b := w.member(2, 1<<20)
	g := NewGroup(a)
	g.Join(b)
	if len(g.Members()) != 2 {
		t.Errorf("members = %d", len(g.Members()))
	}
}
