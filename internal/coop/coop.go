// Package coop implements the paper's second future-work item: sharing the
// proactive cache "not only among various types of queries on the same
// client, but also among various clients in the neighborhood", the mobile
// ad-hoc scenario where local links are much cheaper than the wireless WAN.
//
// A Group is a neighborhood of clients. A member processes a query against
// the union of its own cache and its peers' caches (own cache first):
// whatever the neighborhood can confirm never touches the server, paying
// only cheap LAN transfer for peer-supplied objects and node representations.
// Only the residual execution state goes up the expensive WAN link.
package coop

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// Config parameterizes a cooperative client.
type Config struct {
	ID     wire.ClientID
	Root   query.Ref
	Sizes  wire.SizeModel
	WAN    wire.Channel // to the server (the paper's 384 Kbps link)
	LAN    wire.Channel // to neighborhood peers (fast, near-free)
	Policy core.Policy
}

func (c Config) normalized() Config {
	if c.Sizes == (wire.SizeModel{}) {
		c.Sizes = wire.DefaultSizeModel()
	}
	if c.WAN == (wire.Channel{}) {
		c.WAN = wire.DefaultChannel()
	}
	if c.LAN == (wire.Channel{}) {
		// 11 Mbps local link with 5 ms latency.
		c.LAN = wire.Channel{BytesPerSec: 11_000_000 / 8, Latency: 0.005}
	}
	if c.Policy == 0 {
		c.Policy = core.GRD3
	}
	return c
}

// Client is a proactive-caching client that consults its neighborhood
// before the server.
type Client struct {
	cfg       Config
	cache     *core.Cache
	transport wire.Transport
	group     *Group
}

// NewClient builds a cooperative client with its own cache.
func NewClient(cfg Config, cacheBytes int, transport wire.Transport) *Client {
	cfg = cfg.normalized()
	return &Client{
		cfg:       cfg,
		cache:     core.NewCache(cacheBytes, cfg.Policy, cfg.Sizes),
		transport: transport,
	}
}

// Cache exposes the member's own cache.
func (c *Client) Cache() *core.Cache { return c.cache }

// SetPosition updates the client position (FAR policy).
func (c *Client) SetPosition(p geom.Point) { c.cache.SetPosition(p) }

// Group is a neighborhood of cooperating clients.
type Group struct {
	members []*Client
}

// NewGroup forms a neighborhood from clients (they are joined in order;
// peers are consulted in join order).
func NewGroup(members ...*Client) *Group {
	g := &Group{}
	for _, m := range members {
		g.Join(m)
	}
	return g
}

// Join adds a member to the group.
func (g *Group) Join(c *Client) {
	g.members = append(g.members, c)
	c.group = g
}

// Members returns the current membership.
func (g *Group) Members() []*Client { return g.members }

// Report summarizes one cooperative query.
type Report struct {
	Results []rtree.ObjectID
	Pairs   [][2]rtree.ObjectID

	// ResultBytes partitions into own-cache, peer-supplied and
	// server-supplied bytes.
	ResultBytes int
	OwnBytes    int
	PeerBytes   int
	ServerBytes int

	// WANUplink/WANDownlink are the expensive-link bytes; LANBytes is the
	// neighborhood traffic (peer objects and node representations).
	WANUplink   int
	WANDownlink int
	LANBytes    int

	// ServerContact reports whether the WAN was used at all.
	ServerContact bool
	// PeersUsed counts peers that contributed cache content.
	PeersUsed int

	RespTime  float64
	TotalTime float64
}

// HitRate is the neighborhood cache hit rate: (own + peer) / all bytes.
func (r Report) HitRate() float64 {
	if r.ResultBytes == 0 {
		return 0
	}
	return float64(r.OwnBytes+r.PeerBytes) / float64(r.ResultBytes)
}

// Query processes q against the member's own cache, then the neighborhood,
// then the server.
func (c *Client) Query(q query.Query) (Report, error) {
	c.cache.BeginQuery()
	var rep Report

	prov := newUnionProvider(c)
	out := query.Run(q, prov, query.SeedRoot(q, c.cfg.Root))

	// Attribute confirmed objects to their source.
	seen := make(map[rtree.ObjectID]bool)
	account := func(id rtree.ObjectID) {
		if seen[id] {
			return
		}
		seen[id] = true
		rep.Results = append(rep.Results, id)
		if size, fromPeer := prov.peerObjects[id]; fromPeer {
			rep.PeerBytes += size
			rep.LANBytes += size + c.cfg.Sizes.ObjHeader
		} else if it, ok := c.cache.Object(id); ok {
			rep.OwnBytes += it.Size
		}
	}
	for _, r := range out.Results {
		account(r.Obj)
	}
	for _, p := range out.Pairs {
		rep.Pairs = append(rep.Pairs, [2]rtree.ObjectID{p[0].Obj, p[1].Obj})
		account(p[0].Obj)
		account(p[1].Obj)
	}
	rep.LANBytes += prov.peerExpandBytes
	rep.PeersUsed = prov.peersUsed()

	// Neighborhood delivery time: peer bytes stream over the LAN.
	lanTime := 0.0
	if rep.LANBytes > 0 {
		lanTime = c.cfg.LAN.TransferTime(rep.LANBytes)
	}

	if out.Complete {
		rep.ResultBytes = rep.OwnBytes + rep.PeerBytes
		if rep.ResultBytes > 0 {
			rep.RespTime = lanTime * float64(rep.PeerBytes) / float64(rep.ResultBytes)
		}
		rep.TotalTime = lanTime
		return rep, nil
	}

	// Residual execution state up the WAN.
	reqQ := q
	if q.Kind == query.KNN {
		reqQ.K = q.K - len(out.Results)
	}
	req := &wire.Request{Client: c.cfg.ID, Q: reqQ, H: out.Remainder}
	rep.WANUplink = c.cfg.Sizes.RequestBytes(req)
	rep.ServerContact = true

	resp, err := c.transport.RoundTrip(req)
	if err != nil {
		return rep, fmt.Errorf("coop: %w", err)
	}
	rep.WANDownlink = c.cfg.Sizes.ResponseBytes(resp)

	for _, o := range resp.Objects {
		if !seen[o.ID] {
			seen[o.ID] = true
			rep.Results = append(rep.Results, o.ID)
			rep.ServerBytes += o.Size
		}
	}
	rep.Pairs = append(rep.Pairs, resp.Pairs...)
	rep.ResultBytes = rep.OwnBytes + rep.PeerBytes + rep.ServerBytes

	objDone, total := c.cfg.Sizes.ResponseTimeline(c.cfg.WAN, rep.WANUplink, resp)
	rep.TotalTime = lanTime + total
	if rep.ResultBytes > 0 {
		weighted := lanTime * float64(rep.PeerBytes)
		for i, o := range resp.Objects {
			weighted += float64(o.Size) * (lanTime + objDone[i])
		}
		rep.RespTime = weighted / float64(rep.ResultBytes)
	} else {
		rep.RespTime = rep.TotalTime
	}

	c.cache.InsertResponse(resp)
	return rep, nil
}

// unionProvider chains the member's own cache with its peers'.
type unionProvider struct {
	owner *Client
	own   query.Provider
	peers []*Client

	peerExpandBytes int
	peerObjects     map[rtree.ObjectID]int
	contributed     map[*Client]bool
}

func newUnionProvider(c *Client) *unionProvider {
	u := &unionProvider{
		owner:       c,
		own:         c.cache.Provider(),
		peerObjects: make(map[rtree.ObjectID]int),
		contributed: make(map[*Client]bool),
	}
	if c.group != nil {
		for _, m := range c.group.members {
			if m != c {
				u.peers = append(u.peers, m)
			}
		}
	}
	return u
}

func (u *unionProvider) peersUsed() int { return len(u.contributed) }

// Expand implements query.Provider: own cache first, then peers; a peer hit
// costs the representation's size on the LAN.
func (u *unionProvider) Expand(ref query.Ref) ([]query.Ref, bool) {
	if refs, ok := u.own.Expand(ref); ok {
		return refs, true
	}
	if ref.Kind != query.RefNode {
		return nil, false
	}
	for _, p := range u.peers {
		if refs, ok := p.cache.Provider().Expand(ref); ok {
			if it, found := p.cache.Node(ref.Node); found {
				u.peerExpandBytes += it.Size
			}
			u.contributed[p] = true
			return refs, true
		}
	}
	return nil, false
}

// HaveObject implements query.Provider, attributing peer payloads.
func (u *unionProvider) HaveObject(id rtree.ObjectID) bool {
	if u.own.HaveObject(id) {
		return true
	}
	for _, p := range u.peers {
		if it, ok := p.cache.Object(id); ok {
			if _, counted := u.peerObjects[id]; !counted {
				u.peerObjects[id] = it.Size
			}
			u.contributed[p] = true
			return true
		}
	}
	return false
}
