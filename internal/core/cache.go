// Package core implements the paper's primary contribution: the proactive
// cache (Section 3.2), the client-side query processor of Algorithm 1, the
// false-miss accounting behind the adaptive scheme (Section 4), and the
// GRD3-family cache replacement algorithms (Section 5).
//
// The cache holds two kinds of items — index nodes (as partition-tree cuts)
// and data objects — linked into a forest by parent pointers. The definition
// of proactive caching imposes the constrained-knapsack eviction rule: an
// item can only be dropped together with all its cached descendants, because
// a node that is unreachable from above can never support a query again.
package core

import (
	"fmt"

	"repro/internal/bpt"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// ItemKey identifies a cached item: exactly one of Node or Obj is set.
type ItemKey struct {
	Node rtree.NodeID
	Obj  rtree.ObjectID
}

// NodeKey returns the key of an index-node item.
func NodeKey(id rtree.NodeID) ItemKey { return ItemKey{Node: id} }

// ObjKey returns the key of an object item.
func ObjKey(id rtree.ObjectID) ItemKey { return ItemKey{Obj: id} }

// IsNode reports whether the key names an index node.
func (k ItemKey) IsNode() bool { return k.Node != rtree.InvalidNode }

// String implements fmt.Stringer.
func (k ItemKey) String() string {
	if k.IsNode() {
		return fmt.Sprintf("node:%d", k.Node)
	}
	return fmt.Sprintf("obj:%d", k.Obj)
}

// Item is one cached unit together with the metadata GRD3 needs
// (Section 5.2: address, size, insertion time, hit count, parent, cached
// children).
type Item struct {
	Key    ItemKey
	Parent ItemKey // zero for parentless items (the index root)

	Size       int
	InsertedAt uint64 // query sequence id at insertion
	Hits       int    // number of distinct queries that used the item
	LastUsed   uint64 // query sequence id of the last use (LRU/MRU)

	CachedChildren int

	// Node items: the cached representation (a partition-tree cut) and the
	// wire elements backing each cut position.
	Level int
	Cut   bpt.Cut
	Elems map[bpt.Code]wire.CutElem

	// Region is the MBR of the item's contents (FAR policy distance).
	Region geom.Rect

	lastHitQuery uint64
}

// Prob estimates the item's access probability: hits over the number of
// queries it has lived through (Section 5.2).
func (it *Item) Prob(now uint64) float64 {
	age := now - it.InsertedAt
	if age < 1 {
		age = 1
	}
	return float64(it.Hits) / float64(age)
}

// Cache is the proactive cache.
type Cache struct {
	capacity int
	used     int
	items    map[ItemKey]*Item
	policy   Policy
	sizes    wire.SizeModel

	// Static structural knowledge accumulated from shipped representations:
	// it maps children to the nodes whose entries reference them. Entries
	// persist across evictions (the index is immutable during a run).
	nodeParent map[rtree.NodeID]rtree.NodeID
	objParent  map[rtree.ObjectID]rtree.NodeID

	querySeq uint64
	position geom.Point // client location, consulted by the FAR policy

	// Ops counts cache operations (lookups, insertions, eviction steps) for
	// the client CPU cost model of Figure 9.
	Ops int
}

// NewCache builds a cache with the given byte capacity and policy.
func NewCache(capacity int, policy Policy, sizes wire.SizeModel) *Cache {
	return &Cache{
		capacity:   capacity,
		items:      make(map[ItemKey]*Item),
		policy:     policy,
		sizes:      sizes,
		nodeParent: make(map[rtree.NodeID]rtree.NodeID),
		objParent:  make(map[rtree.ObjectID]rtree.NodeID),
	}
}

// Capacity returns the configured byte capacity.
func (c *Cache) Capacity() int { return c.capacity }

// ShrinkTo lowers the capacity and immediately evicts down to it
// (administrative resizing; also exercised by the eviction benchmarks).
func (c *Cache) ShrinkTo(n int) {
	if n < 0 {
		n = 0
	}
	c.capacity = n
	c.evictToCapacity()
}

// Used returns the occupied bytes.
func (c *Cache) Used() int { return c.used }

// Len returns the number of cached items.
func (c *Cache) Len() int { return len(c.items) }

// IndexBytes returns the bytes occupied by index-node items (the i/c metric
// of Figure 11 is IndexBytes over Used).
func (c *Cache) IndexBytes() int {
	n := 0
	for _, it := range c.items {
		if it.Key.IsNode() {
			n += it.Size
		}
	}
	return n
}

// BeginQuery advances the query clock and returns the new sequence id.
func (c *Cache) BeginQuery() uint64 {
	c.querySeq++
	return c.querySeq
}

// Now returns the current query sequence id.
func (c *Cache) Now() uint64 { return c.querySeq }

// SetPosition records the client's current location for the FAR policy.
func (c *Cache) SetPosition(p geom.Point) { c.position = p }

// Node returns a cached node item.
func (c *Cache) Node(id rtree.NodeID) (*Item, bool) {
	c.Ops++
	it, ok := c.items[NodeKey(id)]
	return it, ok
}

// Object returns a cached object item.
func (c *Cache) Object(id rtree.ObjectID) (*Item, bool) {
	c.Ops++
	it, ok := c.items[ObjKey(id)]
	return it, ok
}

// HasObject reports whether an object payload is cached, without counting a
// hit.
func (c *Cache) HasObject(id rtree.ObjectID) bool {
	_, ok := c.items[ObjKey(id)]
	return ok
}

// touch records a use of the item by the current query. Hit counts increase
// at most once per query (metadata 4 counts hit queries, not accesses).
func (c *Cache) touch(it *Item) {
	it.LastUsed = c.querySeq
	if it.lastHitQuery != c.querySeq {
		it.lastHitQuery = c.querySeq
		it.Hits++
	}
}

func (c *Cache) nodeItemSize(cut bpt.Cut) int {
	return c.sizes.NodeHeader + len(cut)*c.sizes.Entry
}

// InsertResponse integrates a server response: index representations first
// (parents before children, as shipped), then result objects, then eviction
// back to capacity. The response must be accounted (false-miss checks)
// before calling this, because insertion changes cache membership.
func (c *Cache) InsertResponse(resp *wire.Response) {
	for i := range resp.Index {
		c.insertNodeRep(&resp.Index[i])
	}
	for _, o := range resp.Objects {
		if o.Payload {
			c.insertObject(o)
		}
	}
	c.evictToCapacity()
}

// insertNodeRep merges a shipped node representation into the cache.
func (c *Cache) insertNodeRep(rep *wire.NodeRep) {
	c.Ops++
	if len(rep.Elems) == 0 {
		return
	}
	key := NodeKey(rep.ID)
	incoming := make(bpt.Cut, 0, len(rep.Elems))
	for _, e := range rep.Elems {
		incoming = append(incoming, e.Code)
	}

	it, exists := c.items[key]
	if !exists {
		it = &Item{
			Key:          key,
			InsertedAt:   c.querySeq,
			LastUsed:     c.querySeq,
			Hits:         1,
			Level:        rep.Level,
			Elems:        make(map[bpt.Code]wire.CutElem, len(rep.Elems)),
			lastHitQuery: c.querySeq,
		}
		c.linkParent(it)
		c.items[key] = it
	}

	// Merge to the finest common refinement and rebuild the element map.
	merged := bpt.MergeCuts(it.Cut, incoming)
	newElems := make(map[bpt.Code]wire.CutElem, len(merged))
	for _, e := range rep.Elems {
		newElems[e.Code] = e
	}
	for _, code := range merged {
		if _, ok := newElems[code]; !ok {
			if old, ok := it.Elems[code]; ok {
				newElems[code] = old
			}
		}
	}
	// Drop positions not in the merged cut (replaced by finer elements).
	for code := range newElems {
		if !merged.Contains(code) {
			delete(newElems, code)
		}
	}

	oldSize := it.Size
	it.Cut = merged
	it.Elems = newElems
	it.Size = c.nodeItemSize(merged)
	it.Region = regionOf(newElems)
	c.used += it.Size - oldSize

	// Record structural knowledge exposed by real entries.
	for _, e := range newElems {
		if e.Super {
			continue
		}
		if e.Child != rtree.InvalidNode {
			c.nodeParent[e.Child] = rep.ID
		} else {
			c.objParent[e.Obj] = rep.ID
		}
	}
	c.Ops += len(rep.Elems)
}

func regionOf(elems map[bpt.Code]wire.CutElem) geom.Rect {
	first := true
	var r geom.Rect
	for _, e := range elems {
		if first {
			r, first = e.MBR, false
			continue
		}
		r = r.Union(e.MBR)
	}
	return r
}

// insertObject caches a result object's payload.
func (c *Cache) insertObject(o wire.ObjectRep) {
	c.Ops++
	key := ObjKey(o.ID)
	if _, exists := c.items[key]; exists {
		return
	}
	it := &Item{
		Key:          key,
		Size:         o.Size,
		InsertedAt:   c.querySeq,
		LastUsed:     c.querySeq,
		Hits:         1,
		Region:       o.MBR,
		lastHitQuery: c.querySeq,
	}
	c.linkParent(it)
	c.items[key] = it
	c.used += it.Size
}

// linkParent attaches it beneath its structural parent when that parent is
// cached and its current cut actually exposes a real entry for it (the
// exposure check guards against structural knowledge that predates index
// updates).
func (c *Cache) linkParent(it *Item) {
	pk, ok := c.parentKeyOf(it.Key)
	if !ok {
		return
	}
	parent, cached := c.items[pk]
	if !cached || !parentExposes(parent, it.Key) {
		return
	}
	it.Parent = pk
	parent.CachedChildren++
}

// parentExposes reports whether parent's cut holds a real entry for key.
func parentExposes(parent *Item, key ItemKey) bool {
	for _, e := range parent.Elems {
		if e.Super {
			continue
		}
		if key.IsNode() && e.Child == key.Node {
			return true
		}
		if !key.IsNode() && e.Child == rtree.InvalidNode && e.Obj == key.Obj {
			return true
		}
	}
	return false
}

// remove deletes an item and, per the constrained-knapsack rule, all of its
// cached descendants. It returns the number of items removed.
func (c *Cache) remove(key ItemKey) int {
	it, ok := c.items[key]
	if !ok {
		return 0
	}
	removed := 0
	// Remove descendants first.
	if it.Key.IsNode() && it.CachedChildren > 0 {
		for _, e := range it.Elems {
			if e.Super {
				continue
			}
			if e.Child != rtree.InvalidNode {
				removed += c.remove(NodeKey(e.Child))
			} else {
				removed += c.remove(ObjKey(e.Obj))
			}
			if it.CachedChildren == 0 {
				break
			}
		}
	}
	delete(c.items, key)
	c.used -= it.Size
	removed++
	c.Ops++
	if it.Parent != (ItemKey{}) {
		if parent, ok := c.items[it.Parent]; ok {
			parent.CachedChildren--
		}
	}
	return removed
}

// Items iterates over cached items in unspecified order.
func (c *Cache) Items(fn func(*Item) bool) {
	for _, it := range c.items {
		if !fn(it) {
			return
		}
	}
}

// Validate checks the cache's structural invariants (tests only).
func (c *Cache) Validate() error {
	var used int
	children := make(map[ItemKey]int)
	for key, it := range c.items {
		if key != it.Key {
			return fmt.Errorf("core: item %v keyed as %v", it.Key, key)
		}
		used += it.Size
		if it.Parent != (ItemKey{}) {
			parent, ok := c.items[it.Parent]
			if !ok {
				return fmt.Errorf("core: item %v has evicted parent %v", key, it.Parent)
			}
			if !parent.Key.IsNode() {
				return fmt.Errorf("core: item %v parented by object %v", key, it.Parent)
			}
			// The parent's cut must expose a real entry for this item.
			found := false
			for _, e := range parent.Elems {
				if e.Super {
					continue
				}
				if (key.IsNode() && e.Child == key.Node) || (!key.IsNode() && e.Obj == key.Obj) {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("core: parent %v does not expose %v", it.Parent, key)
			}
			children[it.Parent]++
		}
		if key.IsNode() {
			if want := c.nodeItemSize(it.Cut); it.Size != want {
				return fmt.Errorf("core: node %v size %d, want %d", key, it.Size, want)
			}
			if len(it.Cut) != len(it.Elems) {
				return fmt.Errorf("core: node %v cut/elems mismatch", key)
			}
		}
	}
	for key, n := range children {
		if c.items[key].CachedChildren != n {
			return fmt.Errorf("core: %v CachedChildren %d, want %d", key, c.items[key].CachedChildren, n)
		}
	}
	for key, it := range c.items {
		if _, counted := children[key]; !counted && it.CachedChildren != 0 {
			return fmt.Errorf("core: %v CachedChildren %d, want 0", key, it.CachedChildren)
		}
	}
	if used != c.used {
		return fmt.Errorf("core: used %d, items sum to %d", c.used, used)
	}
	if c.used > c.capacity {
		return fmt.Errorf("core: used %d exceeds capacity %d", c.used, c.capacity)
	}
	return nil
}
