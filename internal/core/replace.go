package core

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/pq"
)

// Policy selects the cache replacement scheme (Section 5 and Figure 10).
type Policy uint8

const (
	// GRD3 is the paper's efficient 2-approximation for the constrained
	// knapsack problem: evict leaf items with the lowest access probability.
	GRD3 Policy = iota + 1
	// GRD2 is the reference EBRS-based greedy GRD3 is proved equivalent to;
	// it is kept for the equivalence tests and ablations.
	GRD2
	// LRU evicts the least recently used item (with its descendants).
	LRU
	// MRU evicts the most recently used item (always the worst; Figure 10).
	MRU
	// FAR evicts the item whose region is farthest from the client's
	// current position (Ren & Dunham's location-dependent policy).
	FAR
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case GRD3:
		return "GRD3"
	case GRD2:
		return "GRD2"
	case LRU:
		return "LRU"
	case MRU:
		return "MRU"
	case FAR:
		return "FAR"
	default:
		return "Policy(?)"
	}
}

// evictToCapacity brings the cache back under its byte capacity using the
// configured policy. Every policy honors the constrained-knapsack rule:
// evicting an item evicts its cached descendants.
func (c *Cache) evictToCapacity() {
	if c.used <= c.capacity {
		return
	}
	switch c.policy {
	case GRD2:
		c.evictGRD2()
	case LRU:
		c.evictScan(func(it *Item) float64 { return float64(it.LastUsed) }, false)
	case MRU:
		c.evictScan(func(it *Item) float64 { return float64(it.LastUsed) }, true)
	case FAR:
		c.evictScan(func(it *Item) float64 {
			return geom.MinDist(c.position, it.Region)
		}, true)
	default:
		c.evictGRD3()
	}
}

// evictGRD3 implements Definition 5.1. Leaf items (no cached children) sit
// in a priority queue keyed by access probability; removing a parent's last
// child promotes the parent into the queue. The final step is the standard
// knapsack greedy correction.
func (c *Cache) evictGRD3() {
	now := c.querySeq

	// Step 1: discard items that can never fit.
	var oversized []ItemKey
	for key, it := range c.items {
		if it.Size > c.capacity {
			oversized = append(oversized, key)
		}
	}
	for _, key := range oversized {
		c.remove(key)
	}

	// Step 2: queue the leaf items by prob (deterministic order: prob, key).
	var leaves []ItemKey
	for key, it := range c.items {
		if it.CachedChildren == 0 {
			leaves = append(leaves, key)
		}
	}
	sort.Slice(leaves, func(i, j int) bool {
		pi, pj := c.items[leaves[i]].Prob(now), c.items[leaves[j]].Prob(now)
		if pi != pj {
			return pi < pj
		}
		return keyLess(leaves[i], leaves[j])
	})
	var g pq.Queue[ItemKey]
	for _, key := range leaves {
		g.Push(c.items[key].Prob(now), key)
	}

	// Steps 3-5: pop, remove, promote parents.
	var last *Item
	for c.used > c.capacity && g.Len() > 0 {
		_, key := g.Pop()
		it, ok := c.items[key]
		if !ok || it.CachedChildren != 0 {
			continue
		}
		parentKey := it.Parent
		snapshot := *it
		last = &snapshot
		c.remove(key)
		if parentKey != (ItemKey{}) {
			if parent, ok := c.items[parentKey]; ok && parent.CachedChildren == 0 {
				g.Push(parent.Prob(now), parentKey)
			}
		}
	}

	// Step 6: the greedy correction — if the last victim alone is worth
	// more than everything kept, keep it instead (it must fit on its own,
	// since everything else is dropped).
	if last == nil || last.Size > c.capacity {
		return
	}
	var keptBenefit float64
	for _, it := range c.items {
		keptBenefit += it.Prob(now) * float64(it.Size)
	}
	if last.Prob(now)*float64(last.Size) > keptBenefit {
		var all []ItemKey
		for key := range c.items {
			all = append(all, key)
		}
		for _, key := range all {
			c.remove(key)
		}
		c.reinsertSnapshot(last)
	}
}

// reinsertSnapshot restores a previously removed item (GRD3 step 6).
func (c *Cache) reinsertSnapshot(snap *Item) {
	it := *snap
	it.CachedChildren = 0
	it.Parent = ItemKey{}
	c.linkParent(&it)
	c.items[it.Key] = &it
	c.used += it.Size
}

func (c *Cache) parentKeyOf(key ItemKey) (ItemKey, bool) {
	if key.IsNode() {
		if p, ok := c.nodeParent[key.Node]; ok {
			return NodeKey(p), true
		}
		return ItemKey{}, false
	}
	if p, ok := c.objParent[key.Obj]; ok {
		return NodeKey(p), true
	}
	return ItemKey{}, false
}

// evictGRD2 is the EBRS-based reference algorithm: repeatedly remove the
// item with the lowest expected bitwise response-time saving, descendants
// included. Quadratic; used in tests and ablations only.
func (c *Cache) evictGRD2() {
	now := c.querySeq
	for c.used > c.capacity && len(c.items) > 0 {
		// children lists for subtree aggregation
		children := make(map[ItemKey][]ItemKey, len(c.items))
		for key, it := range c.items {
			if it.Parent != (ItemKey{}) {
				children[it.Parent] = append(children[it.Parent], key)
			}
		}
		type agg struct{ benefit, size float64 }
		memo := make(map[ItemKey]agg, len(c.items))
		var subtree func(key ItemKey) agg
		subtree = func(key ItemKey) agg {
			if a, ok := memo[key]; ok {
				return a
			}
			it := c.items[key]
			a := agg{
				benefit: it.Prob(now) * float64(it.Size),
				size:    float64(it.Size),
			}
			for _, ck := range children[key] {
				ca := subtree(ck)
				a.benefit += ca.benefit
				a.size += ca.size
			}
			memo[key] = a
			return a
		}
		var victim ItemKey
		haveVictim := false
		best := math.Inf(1)
		for key := range c.items {
			a := subtree(key)
			ebrs := a.benefit / a.size
			if !haveVictim || ebrs < best || (ebrs == best && keyLess(key, victim)) {
				best, victim, haveVictim = ebrs, key, true
			}
		}
		c.remove(victim)
	}
}

// keyLess deterministically orders item keys for tie-breaking.
func keyLess(a, b ItemKey) bool {
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.Obj < b.Obj
}

// evictScan repeatedly removes the extreme item under score (max when
// highest, else min), cascading to descendants, until the cache fits.
func (c *Cache) evictScan(score func(*Item) float64, highest bool) {
	for c.used > c.capacity && len(c.items) > 0 {
		var victim ItemKey
		haveVictim := false
		best := math.Inf(1)
		if highest {
			best = math.Inf(-1)
		}
		for key, it := range c.items {
			s := score(it)
			better := (highest && s > best) || (!highest && s < best)
			if !haveVictim || better || (s == best && keyLess(key, victim)) {
				best, victim, haveVictim = s, key, true
			}
		}
		c.remove(victim)
	}
}
