package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/wire"
)

// testWorld bundles a synthetic dataset, its index, a server, and ground
// truth helpers.
type testWorld struct {
	items []rtree.Item
	sizes map[rtree.ObjectID]int
	tree  *rtree.Tree
	srv   *server.Server
}

func newWorld(t *testing.T, seed int64, n int, form server.IndexForm) *testWorld {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	w := &testWorld{sizes: make(map[rtree.ObjectID]int)}
	for i := 0; i < n; i++ {
		id := rtree.ObjectID(i + 1)
		c := geom.Pt(r.Float64(), r.Float64())
		mbr := geom.RectFromCenter(c, r.Float64()*0.01, r.Float64()*0.01)
		w.items = append(w.items, rtree.Item{Obj: id, MBR: mbr})
		w.sizes[id] = 500 + r.Intn(2000)
	}
	w.tree = rtree.BulkLoad(rtree.Params{MaxEntries: 16}, w.items, 0.7)
	w.srv = server.New(w.tree, func(id rtree.ObjectID) int { return w.sizes[id] }, server.Config{Form: form})
	return w
}

func (w *testWorld) newClient(capacity int, policy Policy) *Client {
	cache := NewCache(capacity, policy, wire.DefaultSizeModel())
	cfg := ClientConfig{
		ID:        1,
		Root:      w.srv.RootRef(),
		FMRPeriod: 10,
	}
	transport := TransportFunc(func(req *wire.Request) (*wire.Response, error) {
		resp, _ := w.srv.Execute(req)
		return resp, nil
	})
	return NewClient(cfg, cache, transport)
}

func (w *testWorld) bruteRange(win geom.Rect) map[rtree.ObjectID]bool {
	out := make(map[rtree.ObjectID]bool)
	for _, it := range w.items {
		if it.MBR.Intersects(win) {
			out[it.Obj] = true
		}
	}
	return out
}

func (w *testWorld) bruteKNNDists(p geom.Point, k int) []float64 {
	ds := make([]float64, len(w.items))
	for i, it := range w.items {
		ds[i] = geom.MinDist(p, it.MBR)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

func (w *testWorld) bruteJoin(win geom.Rect, dist float64) map[[2]rtree.ObjectID]bool {
	var in []rtree.Item
	for _, it := range w.items {
		if it.MBR.Intersects(win) {
			in = append(in, it)
		}
	}
	out := make(map[[2]rtree.ObjectID]bool)
	for i := 0; i < len(in); i++ {
		for j := i + 1; j < len(in); j++ {
			if geom.RectMinDist(in[i].MBR, in[j].MBR) <= dist {
				a, b := in[i].Obj, in[j].Obj
				if b < a {
					a, b = b, a
				}
				out[[2]rtree.ObjectID{a, b}] = true
			}
		}
	}
	return out
}

func (w *testWorld) mbrOf(id rtree.ObjectID) geom.Rect {
	return w.items[int(id)-1].MBR
}

// randomQuery draws a query of a random kind near a random location.
func randomQuery(r *rand.Rand) query.Query {
	p := geom.Pt(r.Float64(), r.Float64())
	switch r.Intn(3) {
	case 0:
		side := 0.02 + r.Float64()*0.08
		return query.NewRange(geom.RectFromCenter(p, side, side))
	case 1:
		return query.NewKNN(p, 1+r.Intn(8))
	default:
		win := geom.RectFromCenter(p, 0.1, 0.1)
		return query.NewJoin(win, 0.01)
	}
}

// checkQuery verifies a report against brute force.
func (w *testWorld) checkQuery(t *testing.T, q query.Query, rep Report, tag string) {
	t.Helper()
	switch q.Kind {
	case query.Range:
		want := w.bruteRange(q.Window)
		if len(rep.Results) != len(want) {
			t.Fatalf("%s range: got %d results, want %d", tag, len(rep.Results), len(want))
		}
		for _, id := range rep.Results {
			if !want[id] {
				t.Fatalf("%s range: unexpected result %d", tag, id)
			}
		}
	case query.KNN:
		wantD := w.bruteKNNDists(q.Center, q.K)
		if len(rep.Results) != len(wantD) {
			t.Fatalf("%s knn: got %d results, want %d", tag, len(rep.Results), len(wantD))
		}
		gotD := make([]float64, len(rep.Results))
		for i, id := range rep.Results {
			gotD[i] = geom.MinDist(q.Center, w.mbrOf(id))
		}
		sort.Float64s(gotD)
		for i := range wantD {
			if math.Abs(gotD[i]-wantD[i]) > 1e-12 {
				t.Fatalf("%s knn: dist[%d] = %v, want %v", tag, i, gotD[i], wantD[i])
			}
		}
	case query.Join:
		want := w.bruteJoin(q.JoinWindow, q.Dist)
		got := make(map[[2]rtree.ObjectID]bool)
		for _, p := range rep.Pairs {
			a, b := p[0], p[1]
			if b < a {
				a, b = b, a
			}
			key := [2]rtree.ObjectID{a, b}
			if got[key] {
				t.Fatalf("%s join: duplicate pair %v", tag, key)
			}
			got[key] = true
		}
		if len(got) != len(want) {
			t.Fatalf("%s join: got %d pairs, want %d", tag, len(got), len(want))
		}
		for key := range got {
			if !want[key] {
				t.Fatalf("%s join: unexpected pair %v", tag, key)
			}
		}
	}
}

// TestClientServerEquivalence is the central correctness property: for every
// index form and a mixed query stream, the proactive-caching pipeline must
// return exactly the same answers as direct evaluation, regardless of what
// is or is not cached.
func TestClientServerEquivalence(t *testing.T) {
	forms := map[string]server.IndexForm{
		"full":     server.FullForm,
		"compact":  server.CompactForm,
		"adaptive": server.AdaptiveForm,
	}
	for name, form := range forms {
		t.Run(name, func(t *testing.T) {
			w := newWorld(t, 101, 800, form)
			cl := w.newClient(1<<20, GRD3)
			r := rand.New(rand.NewSource(202))
			for i := 0; i < 150; i++ {
				q := randomQuery(r)
				rep, err := cl.Query(q)
				if err != nil {
					t.Fatalf("query %d: %v", i, err)
				}
				w.checkQuery(t, q, rep, name)
				if i%25 == 0 {
					if err := cl.Cache().Validate(); err != nil {
						t.Fatalf("query %d: %v", i, err)
					}
				}
			}
		})
	}
}

// TestTinyCacheCorrectness forces constant eviction under every policy; the
// cache may thrash but answers must stay exact.
func TestTinyCacheCorrectness(t *testing.T) {
	for _, policy := range []Policy{GRD3, GRD2, LRU, MRU, FAR} {
		t.Run(policy.String(), func(t *testing.T) {
			w := newWorld(t, 303, 500, server.AdaptiveForm)
			cl := w.newClient(20_000, policy) // ~15 objects worth of space
			r := rand.New(rand.NewSource(404))
			for i := 0; i < 80; i++ {
				q := randomQuery(r)
				cl.Cache().SetPosition(geom.Pt(r.Float64(), r.Float64()))
				rep, err := cl.Query(q)
				if err != nil {
					t.Fatalf("query %d: %v", i, err)
				}
				w.checkQuery(t, q, rep, policy.String())
				if err := cl.Cache().Validate(); err != nil {
					t.Fatalf("query %d: %v", i, err)
				}
				if cl.Cache().Used() > cl.Cache().Capacity() {
					t.Fatalf("query %d: over capacity", i)
				}
			}
		})
	}
}

// TestRepeatQueryServedLocally: spatial locality is the whole point — the
// same query twice must hit the cache entirely the second time.
func TestRepeatQueryServedLocally(t *testing.T) {
	w := newWorld(t, 505, 800, server.AdaptiveForm)
	cl := w.newClient(1<<22, GRD3)
	q := query.NewRange(geom.RectFromCenter(geom.Pt(0.4, 0.6), 0.08, 0.08))

	first, err := cl.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.LocalOnly {
		t.Fatal("cold query cannot be local")
	}
	second, err := cl.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !second.LocalOnly {
		t.Error("repeat query was not served locally")
	}
	if second.RespTime != 0 {
		t.Errorf("local query response time = %v", second.RespTime)
	}
	if len(second.Results) != len(first.Results) {
		t.Errorf("repeat results %d != %d", len(second.Results), len(first.Results))
	}
	if second.HitRate() != 1 {
		t.Errorf("repeat hit rate = %v, want 1", second.HitRate())
	}
}

// TestCrossTypeReuse reproduces Example 1.2/1.3: a range query caches
// objects and index; a following kNN at the same spot reuses them so the
// remainder shrinks (or disappears).
func TestCrossTypeReuse(t *testing.T) {
	w := newWorld(t, 606, 1000, server.AdaptiveForm)
	cl := w.newClient(1<<22, GRD3)
	center := geom.Pt(0.5, 0.5)

	rangeRep, err := cl.Query(query.NewRange(geom.RectFromCenter(center, 0.2, 0.2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rangeRep.Results) < 3 {
		t.Skip("degenerate dataset region")
	}
	knnRep, err := cl.Query(query.NewKNN(center, 3))
	if err != nil {
		t.Fatal(err)
	}
	if knnRep.SavedBytes == 0 {
		t.Error("kNN reused nothing from the range query (semantic-cache behavior, not proactive)")
	}
	w.checkQuery(t, query.NewKNN(center, 3), knnRep, "cross")
}

// TestFalseMissAccounting: with a full-form index the false-miss rate must
// be (near) zero for repeated locality; with root-only knowledge it is high.
func TestFalseMissAccounting(t *testing.T) {
	w := newWorld(t, 707, 600, server.FullForm)
	cl := w.newClient(1<<22, GRD3)
	r := rand.New(rand.NewSource(808))
	center := geom.Pt(0.5, 0.5)
	var falseMiss, cached int
	for i := 0; i < 40; i++ {
		p := geom.Pt(center.X+r.Float64()*0.05, center.Y+r.Float64()*0.05)
		rep, err := cl.Query(query.NewKNN(p, 4))
		if err != nil {
			t.Fatal(err)
		}
		falseMiss += rep.FalseMissBytes
		cached += rep.SavedBytes + rep.FalseMissBytes
	}
	if cached == 0 {
		t.Fatal("no cached results at all")
	}
	fmr := float64(falseMiss) / float64(cached)
	if fmr > 0.2 {
		t.Errorf("full-form fmr = %.3f, want near zero", fmr)
	}
}

// TestReportInvariants: byte accounting must be internally consistent.
func TestReportInvariants(t *testing.T) {
	w := newWorld(t, 909, 700, server.AdaptiveForm)
	cl := w.newClient(200_000, GRD3)
	r := rand.New(rand.NewSource(1010))
	for i := 0; i < 100; i++ {
		q := randomQuery(r)
		rep, err := cl.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if rep.SavedBytes > rep.ResultBytes {
			t.Fatalf("saved %d > result %d", rep.SavedBytes, rep.ResultBytes)
		}
		if rep.SavedBytes+rep.FalseMissBytes > rep.ResultBytes {
			t.Fatalf("hitb numerator exceeds result bytes")
		}
		if hr := rep.HitRate(); hr < 0 || hr > 1 {
			t.Fatalf("hit rate %v out of range", hr)
		}
		if rep.LocalOnly && (rep.UplinkBytes != 0 || rep.DownlinkBytes != 0) {
			t.Fatal("local query with wire bytes")
		}
		if !rep.LocalOnly && rep.UplinkBytes == 0 {
			t.Fatal("remote query without uplink")
		}
		if rep.RespTime < 0 || rep.TotalTime < rep.RespTime-1e-9 {
			t.Fatalf("timeline inconsistent: resp %v total %v", rep.RespTime, rep.TotalTime)
		}
	}
}

// TestAdaptiveDReactsToFeedback: reported false-miss rates must move the
// server's per-client refinement level in the right direction.
func TestAdaptiveDReactsToFeedback(t *testing.T) {
	w := newWorld(t, 111, 300, server.AdaptiveForm)
	var st *server.Server = w.srv

	req := func(fmr float64) {
		r := &wire.Request{Client: 9, Q: query.NewKNN(geom.Pt(0.5, 0.5), 2), FMR: fmr, HasFMR: true}
		st.Execute(r)
	}
	req(0.10) // first report just records
	if d := st.ClientD(9); d != 0 {
		t.Fatalf("initial d = %d", d)
	}
	req(0.20) // +100% >> s: finer
	if d := st.ClientD(9); d != 1 {
		t.Fatalf("d after rise = %d, want 1", d)
	}
	req(0.05) // -75% << s: coarser
	if d := st.ClientD(9); d != 0 {
		t.Fatalf("d after drop = %d, want 0", d)
	}
	req(0.05) // within band: unchanged
	if d := st.ClientD(9); d != 0 {
		t.Fatalf("d after stable = %d, want 0", d)
	}
}

// TestGRD3EquivalentToGRD2 checks Theorem 5.5's premise: on identical
// forests with distinct probabilities both algorithms keep the same items.
func TestGRD3EquivalentToGRD2(t *testing.T) {
	r := rand.New(rand.NewSource(1212))
	for trial := 0; trial < 30; trial++ {
		a := buildRandomForest(r, GRD3)
		b := cloneForest(a, GRD2)

		a.evictToCapacity()
		b.evictToCapacity()

		if a.Len() != b.Len() {
			t.Fatalf("trial %d: GRD3 kept %d, GRD2 kept %d", trial, a.Len(), b.Len())
		}
		a.Items(func(it *Item) bool {
			if _, ok := b.items[it.Key]; !ok {
				t.Errorf("trial %d: %v kept by GRD3 only", trial, it.Key)
			}
			return true
		})
	}
}

// buildRandomForest constructs a cache holding a random item forest with
// distinct access probabilities that respect Lemma 5.3 (descendants are no
// more probable than their ancestors — the premise under which GRD2 and
// GRD3 coincide) and a capacity that forces eviction.
func buildRandomForest(r *rand.Rand, policy Policy) *Cache {
	c := NewCache(0, policy, wire.DefaultSizeModel())
	c.querySeq = 1000
	n := 20 + r.Intn(30)
	var keys []ItemKey
	total := 0
	hits := 100_000 // strictly decreasing along creation order => along paths
	for i := 0; i < n; i++ {
		var key ItemKey
		var parent ItemKey
		if i > 0 && r.Intn(2) == 0 {
			parent = keys[r.Intn(len(keys))]
			// Only node items can be parents.
			if !parent.IsNode() {
				parent = ItemKey{}
			}
		}
		if r.Intn(2) == 0 {
			key = NodeKey(rtree.NodeID(i + 1))
		} else {
			key = ObjKey(rtree.ObjectID(i + 1))
		}
		hits -= 1 + r.Intn(5)
		it := &Item{
			Key:        key,
			Parent:     parent,
			Size:       100 + r.Intn(900),
			InsertedAt: 999, // age 1 for all: prob == Hits, distinct
			Hits:       hits,
			LastUsed:   uint64(900 + r.Intn(100)),
		}
		c.items[key] = it
		if parent != (ItemKey{}) {
			c.items[parent].CachedChildren++
		}
		keys = append(keys, key)
		total += it.Size
	}
	c.used = total
	c.capacity = total / 2
	return c
}

func cloneForest(src *Cache, policy Policy) *Cache {
	c := NewCache(src.capacity, policy, src.sizes)
	c.querySeq = src.querySeq
	c.used = src.used
	for key, it := range src.items {
		cp := *it
		c.items[key] = &cp
	}
	return c
}
