package core

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// Transport aliases wire.Transport; the simulation wires it directly to the
// server, cmd/prodb over TCP (binary protocol with pipelining, gob
// fallback). A Client issues one round trip at a time, but transports are
// safe for concurrent use, so many Clients may share one pipelined
// connection — each round trip is correlated back by request id (see
// wire.BinaryClientConn).
type Transport = wire.Transport

// TransportFunc aliases wire.TransportFunc.
type TransportFunc = wire.TransportFunc

// ClientConfig parameterizes a proactive-caching client.
type ClientConfig struct {
	ID      wire.ClientID
	Root    query.Ref // catalog entry for the index root
	Sizes   wire.SizeModel
	Channel wire.Channel
	// FMRPeriod is how many queries elapse between false-miss-rate reports
	// to the server (the adaptive feedback of Section 4.3). Zero disables
	// reporting.
	FMRPeriod int
}

// Client is a mobile client running Algorithm 1 over its proactive cache.
type Client struct {
	cfg       ClientConfig
	cache     *Cache
	transport Transport

	sinceReport     int
	windowFalseMiss int
	windowCached    int

	// epoch is the last server update epoch this client has seen; requests
	// carry it and responses return invalidations accumulated since.
	epoch uint64
}

// NewClient assembles a client around an existing cache and transport.
func NewClient(cfg ClientConfig, cache *Cache, transport Transport) *Client {
	if cfg.Sizes == (wire.SizeModel{}) {
		cfg.Sizes = wire.DefaultSizeModel()
	}
	if cfg.Channel == (wire.Channel{}) {
		cfg.Channel = wire.DefaultChannel()
	}
	return &Client{cfg: cfg, cache: cache, transport: transport}
}

// Cache exposes the client's cache.
func (c *Client) Cache() *Cache { return c.cache }

// SetPosition forwards the client's current location to the cache (used by
// the FAR replacement policy).
func (c *Client) SetPosition(p geom.Point) { c.cache.SetPosition(p) }

// Report summarizes the processing of one query (the per-query metrics of
// Section 6.1).
type Report struct {
	LocalOnly bool

	UplinkBytes   int
	DownlinkBytes int

	// ResultBytes is |R| in bytes; SavedBytes is |Rs| (locally confirmed);
	// FalseMissBytes are cached result objects the index failed to confirm.
	ResultBytes    int
	SavedBytes     int
	FalseMissBytes int

	// RespTime is the size-weighted mean delivery time of result bytes
	// (Section 4.1); TotalTime is when the full response (index included)
	// finished arriving.
	RespTime  float64
	TotalTime float64

	Results []rtree.ObjectID
	Pairs   [][2]rtree.ObjectID

	EngineStats query.Stats
	CacheOps    int

	// Retries counts stale re-executions: attempts whose local results
	// consumed cache items the server had invalidated in the meantime.
	Retries int
	// Invalidated counts cache items dropped by this query's responses.
	Invalidated int
}

// HitRate returns the cache hit rate hitc = |Rs| / |R| of the query.
func (r Report) HitRate() float64 {
	if r.ResultBytes == 0 {
		return 0
	}
	return float64(r.SavedBytes) / float64(r.ResultBytes)
}

// ByteHitRate returns hitb = |R ∩ C| / |R| of the query.
func (r Report) ByteHitRate() float64 {
	if r.ResultBytes == 0 {
		return 0
	}
	return float64(r.SavedBytes+r.FalseMissBytes) / float64(r.ResultBytes)
}

// Query runs one spatial query through the proactive caching pipeline:
// local processing (stage 1), remainder to the server (stage 2), and result
// merging plus cache insertion (stage 3). When the server's invalidation
// report shows the attempt consumed stale cache items, the query re-executes
// against the pruned cache (bounded retries); the wasted round trips stay in
// the byte and time accounting.
func (c *Client) Query(q query.Query) (Report, error) {
	c.sinceReport++
	var upCost, downCost, invalidated int
	var waitCost float64
	for attempt := 0; ; attempt++ {
		rep, stale, err := c.attempt(q)
		if err != nil {
			return rep, err
		}
		rep.Invalidated += invalidated
		if !stale || attempt >= 2 {
			rep.UplinkBytes += upCost
			rep.DownlinkBytes += downCost
			rep.RespTime += waitCost
			rep.TotalTime += waitCost
			rep.Retries = attempt
			c.windowFalseMiss += rep.FalseMissBytes
			c.windowCached += rep.SavedBytes + rep.FalseMissBytes
			return rep, nil
		}
		// The stale attempt's answers are discarded but the user still paid
		// for its communication.
		upCost += rep.UplinkBytes
		downCost += rep.DownlinkBytes
		waitCost += rep.TotalTime
		invalidated = rep.Invalidated
	}
}

// attempt executes the three-stage pipeline once. stale reports that the
// response invalidated cache items this very query had relied on.
func (c *Client) attempt(q query.Query) (Report, bool, error) {
	c.cache.BeginQuery()
	opsStart := c.cache.Ops
	var rep Report

	out := query.Run(q, cacheProvider{c.cache}, query.SeedRoot(q, c.cfg.Root))
	rep.EngineStats = out.Stats

	// Locally confirmed result objects (Rs).
	saved := make(map[rtree.ObjectID]int) // id -> size
	for _, r := range out.Results {
		rep.Results = append(rep.Results, r.Obj)
		saved[r.Obj] = c.objectSize(r.Obj)
	}
	for _, p := range out.Pairs {
		rep.Pairs = append(rep.Pairs, [2]rtree.ObjectID{p[0].Obj, p[1].Obj})
		for _, ref := range p {
			if _, ok := saved[ref.Obj]; !ok {
				saved[ref.Obj] = c.objectSize(ref.Obj)
				rep.Results = append(rep.Results, ref.Obj)
			}
		}
	}
	for _, size := range saved {
		rep.SavedBytes += size
	}

	if out.Complete {
		rep.LocalOnly = true
		rep.ResultBytes = rep.SavedBytes
		rep.CacheOps = c.cache.Ops - opsStart
		return rep, false, nil
	}

	// Stage 2: hand the execution state to the server.
	reqQ := q
	if q.Kind == query.KNN {
		reqQ.K = q.K - len(out.Results)
	}
	req := &wire.Request{Client: c.cfg.ID, Q: reqQ, H: out.Remainder, Epoch: c.epoch}
	if c.cfg.FMRPeriod > 0 && c.sinceReport >= c.cfg.FMRPeriod {
		req.FMR = c.WindowFMR()
		req.HasFMR = true
		c.sinceReport = 0
		c.windowFalseMiss, c.windowCached = 0, 0
	}
	rep.UplinkBytes = c.cfg.Sizes.RequestBytes(req)

	resp, err := c.transport.RoundTrip(req)
	if err != nil {
		return rep, false, fmt.Errorf("core: remainder query failed: %w", err)
	}
	rep.DownlinkBytes = c.cfg.Sizes.ResponseBytes(resp)

	// Consistency first: apply the invalidation report, learn whether this
	// attempt's local results stood on stale items, track the root.
	stale := c.absorbConsistency(resp, &rep)
	if stale {
		_, total := c.cfg.Sizes.ResponseTimeline(c.cfg.Channel, rep.UplinkBytes, resp)
		rep.TotalTime = total
		rep.CacheOps = c.cache.Ops - opsStart
		c.cache.InsertResponse(resp)
		return rep, true, nil
	}

	// Accounting must precede insertion: cache membership still reflects
	// the state the query ran against.
	remoteBytes := 0
	for _, o := range resp.Objects {
		if _, ok := saved[o.ID]; ok {
			continue // join overlap: already confirmed locally
		}
		remoteBytes += o.Size
		if c.cache.HasObject(o.ID) {
			rep.FalseMissBytes += o.Size
		}
	}
	rep.ResultBytes = rep.SavedBytes + remoteBytes

	objDone, total := c.cfg.Sizes.ResponseTimeline(c.cfg.Channel, rep.UplinkBytes, resp)
	rep.TotalTime = total
	if rep.ResultBytes > 0 {
		weighted := 0.0
		for i, o := range resp.Objects {
			if _, ok := saved[o.ID]; ok {
				continue
			}
			weighted += float64(o.Size) * objDone[i]
		}
		rep.RespTime = weighted / float64(rep.ResultBytes)
	} else {
		// No result bytes at all: the user waits for the empty answer.
		rep.RespTime = total
	}

	for _, o := range resp.Objects {
		if _, ok := saved[o.ID]; !ok {
			rep.Results = append(rep.Results, o.ID)
		}
	}
	rep.Pairs = append(rep.Pairs, resp.Pairs...)

	c.cache.InsertResponse(resp)
	rep.CacheOps = c.cache.Ops - opsStart
	return rep, false, nil
}

// absorbConsistency applies a response's epoch, root and invalidation
// payload, returning whether the current attempt used now-stale items.
func (c *Client) absorbConsistency(resp *wire.Response, rep *Report) bool {
	if resp.RootID != rtree.InvalidNode {
		c.cfg.Root = query.NodeRef(resp.RootID, resp.RootMBR)
	}
	before := c.cache.Len()
	stale := c.cache.applyInvalidations(resp)
	if rep != nil {
		rep.Invalidated += before - c.cache.Len()
	}
	c.epoch = resp.Epoch
	return stale
}

// Sync pulls the server's invalidation report without running a query — a
// lightweight consistency heartbeat for clients that mostly answer locally.
// It returns the number of cache items dropped.
func (c *Client) Sync() (int, error) {
	resp, err := c.transport.RoundTrip(&wire.Request{Client: c.cfg.ID, Catalog: true, Epoch: c.epoch})
	if err != nil {
		return 0, fmt.Errorf("core: sync: %w", err)
	}
	before := c.cache.Len()
	c.absorbConsistency(resp, nil)
	return before - c.cache.Len(), nil
}

// Epoch returns the last server update epoch the client has seen.
func (c *Client) Epoch() uint64 { return c.epoch }

// WindowFMR returns the false-miss rate accumulated since the last report:
// P(o not in Rs | o in R and cached), byte-weighted.
func (c *Client) WindowFMR() float64 {
	if c.windowCached == 0 {
		return 0
	}
	return float64(c.windowFalseMiss) / float64(c.windowCached)
}

// objectSize returns the payload size of a cached object (0 if missing).
func (c *Client) objectSize(id rtree.ObjectID) int {
	if it, ok := c.cache.items[ObjKey(id)]; ok {
		return it.Size
	}
	return 0
}

// Provider returns a query.Provider view of the cache. The cooperative
// caching extension uses it to consult neighborhood peers' caches with the
// same machinery that serves the local one.
func (c *Cache) Provider() query.Provider { return cacheProvider{c} }

// cacheProvider adapts the proactive cache to the query engine: nodes expand
// into their cached cut elements, super entries are opaque (missing), and
// object availability is payload presence. Every successful access counts a
// hit for replacement metadata.
type cacheProvider struct{ c *Cache }

// Expand implements query.Provider.
func (p cacheProvider) Expand(ref query.Ref) ([]query.Ref, bool) {
	if ref.Kind != query.RefNode {
		return nil, false // super entries cannot be refined locally
	}
	it, ok := p.c.Node(ref.Node)
	if !ok {
		return nil, false
	}
	p.c.touch(it)
	out := make([]query.Ref, 0, len(it.Cut))
	for _, code := range it.Cut {
		out = append(out, it.Elems[code].Ref(ref.Node))
	}
	return out, true
}

// HaveObject implements query.Provider.
func (p cacheProvider) HaveObject(id rtree.ObjectID) bool {
	it, ok := p.c.Object(id)
	if ok {
		p.c.touch(it)
	}
	return ok
}
