package core

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/wire"
)

// updWorld is a mutable world: items tracks server-side ground truth as
// updates are applied.
type updWorld struct {
	live  map[rtree.ObjectID]geom.Rect
	sizes map[rtree.ObjectID]int
	srv   *server.Server
	next  rtree.ObjectID
}

func newUpdWorld(t *testing.T, seed int64, n int) *updWorld {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	w := &updWorld{
		live:  make(map[rtree.ObjectID]geom.Rect),
		sizes: make(map[rtree.ObjectID]int),
	}
	items := make([]rtree.Item, n)
	for i := 0; i < n; i++ {
		id := rtree.ObjectID(i + 1)
		mbr := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01)
		items[i] = rtree.Item{Obj: id, MBR: mbr}
		w.live[id] = mbr
		w.sizes[id] = 1000
	}
	w.next = rtree.ObjectID(n + 1)
	tree := rtree.BulkLoad(rtree.Params{MaxEntries: 8}, items, 0.7)
	w.srv = server.New(tree, func(id rtree.ObjectID) int { return w.sizes[id] }, server.Config{})
	return w
}

func (w *updWorld) client(capacity int) *Client {
	cache := NewCache(capacity, GRD3, wire.DefaultSizeModel())
	return NewClient(ClientConfig{ID: 1, Root: w.srv.RootRef(), FMRPeriod: 10},
		cache, TransportFunc(func(req *wire.Request) (*wire.Response, error) {
			resp, _ := w.srv.Execute(req)
			return resp, nil
		}))
}

func (w *updWorld) insert(r *rand.Rand) {
	id := w.next
	w.next++
	mbr := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01)
	w.srv.InsertObject(id, mbr, 1000)
	w.live[id] = mbr
	w.sizes[id] = 1000
}

// pickLive deterministically selects a live object: the k-th smallest id.
func (w *updWorld) pickLive(r *rand.Rand) (rtree.ObjectID, bool) {
	if len(w.live) == 0 {
		return 0, false
	}
	ids := make([]rtree.ObjectID, 0, len(w.live))
	for id := range w.live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids[r.Intn(len(ids))], true
}

func (w *updWorld) deleteRandom(r *rand.Rand) {
	id, ok := w.pickLive(r)
	if !ok {
		return
	}
	w.srv.DeleteObject(id, w.live[id])
	delete(w.live, id)
}

func (w *updWorld) moveRandom(r *rand.Rand) {
	id, ok := w.pickLive(r)
	if !ok {
		return
	}
	to := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01)
	w.srv.MoveObject(id, w.live[id], to)
	w.live[id] = to
}

func (w *updWorld) bruteRange(win geom.Rect) map[rtree.ObjectID]bool {
	out := make(map[rtree.ObjectID]bool)
	for id, mbr := range w.live {
		if mbr.Intersects(win) {
			out[id] = true
		}
	}
	return out
}

// TestUpdatesInvalidationCorrectness is the end-to-end property of the
// update extension: with arbitrary inserts/deletes/moves interleaved between
// queries, every query that reaches the server returns current answers.
func TestUpdatesInvalidationCorrectness(t *testing.T) {
	w := newUpdWorld(t, 81, 400)
	cl := w.client(1 << 20)
	r := rand.New(rand.NewSource(82))

	for i := 0; i < 200; i++ {
		// Mutate the server between queries.
		switch r.Intn(4) {
		case 0:
			w.insert(r)
		case 1:
			w.deleteRandom(r)
		case 2:
			w.moveRandom(r)
		}

		win := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.15, 0.15)
		rep, err := cl.Query(query.NewRange(win))
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if rep.LocalOnly {
			// Local answers may be stale between contacts by design; skip
			// ground-truth comparison but force a sync so staleness cannot
			// compound unboundedly in this test.
			if _, err := cl.Sync(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want := w.bruteRange(win)
		got := make(map[rtree.ObjectID]bool)
		for _, id := range rep.Results {
			got[id] = true
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d results, want %d (retries=%d)", i, len(got), len(want), rep.Retries)
		}
		for id := range got {
			if !want[id] {
				t.Fatalf("query %d: ghost result %d", i, id)
			}
		}
		if err := cl.Cache().Validate(); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
}

// TestSyncDropsStaleItems: a client that cached an area must lose exactly the
// updated items on its next heartbeat.
func TestSyncDropsStaleItems(t *testing.T) {
	w := newUpdWorld(t, 83, 300)
	cl := w.client(1 << 20)

	win := geom.R(0.2, 0.2, 0.8, 0.8)
	if _, err := cl.Query(query.NewRange(win)); err != nil {
		t.Fatal(err)
	}
	if cl.Cache().Len() == 0 {
		t.Fatal("nothing cached")
	}

	// Delete an object the client certainly cached.
	var victim rtree.ObjectID
	for id, mbr := range w.live {
		if mbr.Intersects(win) && cl.Cache().HasObject(id) {
			victim = id
			w.srv.DeleteObject(id, mbr)
			delete(w.live, id)
			break
		}
	}
	if victim == 0 {
		t.Skip("no cached object in window")
	}

	dropped, err := cl.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Error("sync dropped nothing despite a deletion")
	}
	if cl.Cache().HasObject(victim) {
		t.Error("deleted object still cached after sync")
	}
	if cl.Epoch() != w.srv.Epoch() {
		t.Errorf("client epoch %d, server %d", cl.Epoch(), w.srv.Epoch())
	}
	if err := cl.Cache().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestStaleRetryHappens: a query whose local confirmation used items
// invalidated by a concurrent update must be retried and corrected.
func TestStaleRetryHappens(t *testing.T) {
	w := newUpdWorld(t, 84, 300)
	cl := w.client(1 << 20)
	r := rand.New(rand.NewSource(85))

	// Warm a window, then move objects inside it without telling the client.
	win := geom.R(0.4, 0.4, 0.6, 0.6)
	if _, err := cl.Query(query.NewRange(win)); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for id, mbr := range w.live {
		if mbr.Intersects(win) && cl.Cache().HasObject(id) {
			to := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01)
			w.srv.MoveObject(id, mbr, to)
			w.live[id] = to
			moved++
			if moved == 3 {
				break
			}
		}
	}
	if moved == 0 {
		t.Skip("nothing to move")
	}

	// A wider query: part local (stale), part remainder -> server detects.
	wide := geom.R(0.3, 0.3, 0.7, 0.7)
	rep, err := cl.Query(query.NewRange(wide))
	if err != nil {
		t.Fatal(err)
	}
	want := w.bruteRange(wide)
	got := map[rtree.ObjectID]bool{}
	for _, id := range rep.Results {
		got[id] = true
	}
	if len(got) != len(want) {
		t.Fatalf("got %d, want %d (retries=%d, invalidated=%d)", len(got), len(want), rep.Retries, rep.Invalidated)
	}
	if rep.Invalidated == 0 {
		t.Error("no invalidations recorded despite moves")
	}
}

// TestFlushAllOnLogHorizon: a client far behind the update log gets a flush.
func TestFlushAllOnLogHorizon(t *testing.T) {
	r := rand.New(rand.NewSource(86))
	w := newUpdWorldWithLimit(t, 87, 200, 8)
	cl := w.client(1 << 20)

	if _, err := cl.Query(query.NewRange(geom.R(0.2, 0.2, 0.8, 0.8))); err != nil {
		t.Fatal(err)
	}
	if cl.Cache().Len() == 0 {
		t.Fatal("nothing cached")
	}
	// Blow past the log limit.
	for i := 0; i < 30; i++ {
		w.insert(r)
	}
	if _, err := cl.Sync(); err != nil {
		t.Fatal(err)
	}
	if cl.Cache().Len() != 0 {
		t.Errorf("cache not flushed after log horizon: %d items", cl.Cache().Len())
	}
}

func newUpdWorldWithLimit(t *testing.T, seed int64, n, limit int) *updWorld {
	t.Helper()
	w := newUpdWorld(t, seed, n)
	// Rebuild the server with a tiny update log.
	r := rand.New(rand.NewSource(seed))
	items := make([]rtree.Item, 0, len(w.live))
	for id, mbr := range w.live {
		items = append(items, rtree.Item{Obj: id, MBR: mbr})
	}
	_ = r
	tree := rtree.BulkLoad(rtree.Params{MaxEntries: 8}, items, 0.7)
	w.srv = server.New(tree, func(id rtree.ObjectID) int { return w.sizes[id] }, server.Config{UpdateLogLimit: limit})
	return w
}

// TestInvalidateCascades: invalidating a node drops its cached descendants.
func TestInvalidateCascades(t *testing.T) {
	w := newUpdWorld(t, 88, 300)
	cl := w.client(1 << 20)
	if _, err := cl.Query(query.NewRange(geom.R(0.3, 0.3, 0.7, 0.7))); err != nil {
		t.Fatal(err)
	}
	cache := cl.Cache()
	// Find a cached node item with cached children.
	var target rtree.NodeID
	cache.Items(func(it *Item) bool {
		if it.Key.IsNode() && it.CachedChildren > 0 {
			target = it.Key.Node
			return false
		}
		return true
	})
	if target == 0 {
		t.Skip("no parent item cached")
	}
	before := cache.Len()
	removed, _ := cache.Invalidate([]rtree.NodeID{target}, nil)
	if removed < 2 {
		t.Errorf("cascade removed %d items, want >= 2", removed)
	}
	if cache.Len() != before-removed {
		t.Error("length bookkeeping broken")
	}
	if err := cache.Validate(); err != nil {
		t.Fatal(err)
	}
}
