package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/server"
)

// Property: after any random prefix of a mixed query stream, under any
// replacement policy, the cache invariants hold and capacity is respected.
func TestQuickCacheInvariants(t *testing.T) {
	w := newWorld(t, 1401, 600, server.AdaptiveForm)
	policies := []Policy{GRD3, GRD2, LRU, MRU, FAR}

	f := func(seed int64, polIdx uint8, capKB uint16) bool {
		policy := policies[int(polIdx)%len(policies)]
		capacity := 30_000 + int(capKB)%200_000
		cl := w.newClient(capacity, policy)
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(30)
		for i := 0; i < n; i++ {
			cl.Cache().SetPosition(geom.Pt(r.Float64(), r.Float64()))
			if _, err := cl.Query(randomQuery(r)); err != nil {
				t.Logf("query error: %v", err)
				return false
			}
		}
		if err := cl.Cache().Validate(); err != nil {
			t.Logf("invariant violation (policy %v, cap %d): %v", policy, capacity, err)
			return false
		}
		return cl.Cache().Used() <= cl.Cache().Capacity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: invalidating arbitrary subsets of cached items always preserves
// the invariants (never orphans children, never corrupts byte accounting).
func TestQuickInvalidationInvariants(t *testing.T) {
	w := newWorld(t, 1402, 600, server.AdaptiveForm)

	f := func(seed int64) bool {
		cl := w.newClient(1<<20, GRD3)
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 10; i++ {
			if _, err := cl.Query(randomQuery(r)); err != nil {
				return false
			}
		}
		cache := cl.Cache()
		// Collect a random subset of item keys to invalidate.
		var keys []ItemKey
		cache.Items(func(it *Item) bool {
			if r.Intn(3) == 0 {
				keys = append(keys, it.Key)
			}
			return true
		})
		for _, k := range keys {
			if k.IsNode() {
				cache.Invalidate([]rtree.NodeID{k.Node}, nil)
			} else {
				cache.Invalidate(nil, []rtree.ObjectID{k.Obj})
			}
		}
		return cache.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: the client pipeline is idempotent for repeated queries — a
// repeat of any query yields the same result set and never more bytes.
func TestQuickRepeatMonotonicity(t *testing.T) {
	w := newWorld(t, 1403, 500, server.AdaptiveForm)

	f := func(seed int64) bool {
		cl := w.newClient(1<<22, GRD3)
		r := rand.New(rand.NewSource(seed))
		q := randomQuery(r)
		first, err := cl.Query(q)
		if err != nil {
			return false
		}
		second, err := cl.Query(q)
		if err != nil {
			return false
		}
		if len(second.Results) != len(first.Results) || len(second.Pairs) != len(first.Pairs) {
			return false
		}
		return second.DownlinkBytes <= first.DownlinkBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: hit-rate bounds hold for every query under every index form.
func TestQuickReportBounds(t *testing.T) {
	for _, form := range []server.IndexForm{server.FullForm, server.CompactForm, server.AdaptiveForm} {
		w := newWorld(t, 1404, 400, form)
		cl := w.newClient(200_000, GRD3)
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			rep, err := cl.Query(randomQuery(r))
			if err != nil {
				return false
			}
			hitc, hitb := rep.HitRate(), rep.ByteHitRate()
			return hitc >= 0 && hitc <= 1 && hitb >= hitc && hitb <= 1 &&
				rep.SavedBytes+rep.FalseMissBytes <= rep.ResultBytes
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("form %d: %v", form, err)
		}
	}
}

// Property: ShrinkTo always lands under the new capacity and keeps
// invariants, for arbitrary shrink sequences.
func TestQuickShrinkTo(t *testing.T) {
	w := newWorld(t, 1405, 500, server.AdaptiveForm)

	f := func(seed int64, steps uint8) bool {
		cl := w.newClient(1<<22, GRD3)
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 8; i++ {
			if _, err := cl.Query(randomQuery(r)); err != nil {
				return false
			}
		}
		cache := cl.Cache()
		for s := 0; s < int(steps)%5+1; s++ {
			target := cache.Used() * (1 + r.Intn(3)) / 4
			cache.ShrinkTo(target)
			if cache.Used() > target {
				return false
			}
			if err := cache.Validate(); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
