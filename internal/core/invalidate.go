package core

import (
	"repro/internal/rtree"
	"repro/internal/wire"
)

// Cache invalidation — the client half of the update extension. The server
// guarantees that every index node whose entries changed since the client's
// epoch appears in the invalidation report, so dropping those items (and,
// per the constrained-knapsack rule, their cached descendants) before
// integrating a response restores the invariant that cached cuts always
// describe the current version of their node.

// Invalidate removes the listed nodes and objects together with their cached
// descendants. It returns the number of items dropped and whether any
// dropped item had been used by the current query — the signal that the
// query's local results may be stale and must be recomputed.
func (c *Cache) Invalidate(nodes []rtree.NodeID, objs []rtree.ObjectID) (removed int, usedNow bool) {
	for _, id := range nodes {
		r, u := c.invalidateKey(NodeKey(id))
		removed += r
		usedNow = usedNow || u
	}
	for _, id := range objs {
		r, u := c.invalidateKey(ObjKey(id))
		removed += r
		usedNow = usedNow || u
	}
	return removed, usedNow
}

func (c *Cache) invalidateKey(key ItemKey) (int, bool) {
	it, ok := c.items[key]
	if !ok {
		return 0, false
	}
	used := it.lastHitQuery == c.querySeq
	// Descendant usage also counts: collect before the cascade removes them.
	if !used {
		used = c.subtreeUsedNow(it)
	}
	return c.remove(key), used
}

// subtreeUsedNow reports whether any cached descendant of it was used by the
// current query.
func (c *Cache) subtreeUsedNow(it *Item) bool {
	if !it.Key.IsNode() || it.CachedChildren == 0 {
		return false
	}
	for _, e := range it.Elems {
		if e.Super {
			continue
		}
		var child *Item
		var ok bool
		if e.Child != rtree.InvalidNode {
			child, ok = c.items[NodeKey(e.Child)]
		} else {
			child, ok = c.items[ObjKey(e.Obj)]
		}
		if !ok {
			continue
		}
		if child.lastHitQuery == c.querySeq || c.subtreeUsedNow(child) {
			return true
		}
	}
	return false
}

// Flush drops the entire cache (the server's response when a client's epoch
// fell off the update-log horizon). Structural knowledge maps are cleared
// too: they may describe a reorganized index.
func (c *Cache) Flush() {
	c.items = make(map[ItemKey]*Item)
	c.nodeParent = make(map[rtree.NodeID]rtree.NodeID)
	c.objParent = make(map[rtree.ObjectID]rtree.NodeID)
	c.used = 0
	c.Ops++
}

// applyInvalidations processes the consistency portion of a response.
// It returns true when the current query consumed items that are now known
// stale, meaning its local results cannot be trusted.
func (c *Cache) applyInvalidations(resp *wire.Response) bool {
	if resp.FlushAll {
		hadItems := len(c.items) > 0
		c.Flush()
		return hadItems
	}
	if len(resp.InvalidNodes) == 0 && len(resp.InvalidObjs) == 0 {
		return false
	}
	_, usedNow := c.Invalidate(resp.InvalidNodes, resp.InvalidObjs)
	return usedNow
}
