package core

import (
	"fmt"
	"testing"

	"repro/internal/bpt"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// buildCache assembles a cache directly from item specs (same-package test
// constructor bypassing the wire path).
type itemSpec struct {
	key    ItemKey
	parent ItemKey
	size   int
	hits   int
	age    uint64 // queries lived
	last   uint64
}

func buildCache(capacity int, policy Policy, now uint64, specs []itemSpec) *Cache {
	c := NewCache(capacity, policy, wire.DefaultSizeModel())
	c.querySeq = now
	for _, s := range specs {
		it := &Item{
			Key:        s.key,
			Parent:     s.parent,
			Size:       s.size,
			InsertedAt: now - s.age,
			Hits:       s.hits,
			LastUsed:   s.last,
		}
		if s.key.IsNode() {
			it.Elems = make(map[bpt.Code]wire.CutElem)
		}
		c.items[s.key] = it
		c.used += s.size
		if s.parent != (ItemKey{}) {
			parent := c.items[s.parent]
			parent.CachedChildren++
			// Expose a real entry so cascade removal can find the child.
			code := bpt.Code(fmt.Sprintf("%0*d", parent.CachedChildren, 0))
			elem := wire.CutElem{Code: code}
			if s.key.IsNode() {
				elem.Child = s.key.Node
			} else {
				elem.Obj = s.key.Obj
			}
			parent.Elems[code] = elem
			parent.Cut = append(parent.Cut, code)
		}
	}
	return c
}

// TestGRD3LeafOrderByProb: victims leave in ascending access probability,
// parents only after their last child.
func TestGRD3LeafOrderByProb(t *testing.T) {
	// Parent P with children A (prob 0.1) and B (prob 0.9); loner L (0.5).
	c := buildCache(0, GRD3, 100, []itemSpec{
		{key: NodeKey(1), size: 100, hits: 80, age: 100},                    // P: prob 0.8
		{key: ObjKey(1), parent: NodeKey(1), size: 100, hits: 10, age: 100}, // A: 0.1
		{key: ObjKey(2), parent: NodeKey(1), size: 100, hits: 90, age: 100}, // B: 0.9
		{key: ObjKey(3), size: 100, hits: 50, age: 100},                     // L: 0.5
	})

	c.ShrinkTo(300) // evict exactly one: lowest-prob leaf A
	if _, ok := c.items[ObjKey(1)]; ok {
		t.Error("lowest-prob leaf A should have gone first")
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}

	c.ShrinkTo(200) // next: loner L (0.5) — B (0.9) survives
	if _, ok := c.items[ObjKey(3)]; ok {
		t.Error("L should have gone before B")
	}
	if _, ok := c.items[ObjKey(2)]; !ok {
		t.Error("B evicted too early")
	}

	c.ShrinkTo(100)
	// B (prob 0.9) is the only leaf and gets popped, but Definition 5.1's
	// step 6 notices that B alone is worth more than the kept P (0.8) and
	// swaps them back.
	if _, ok := c.items[ObjKey(2)]; !ok {
		t.Error("step 6 should have kept high-benefit B")
	}
	if _, ok := c.items[NodeKey(1)]; ok {
		t.Error("step 6 should have dropped P")
	}
}

// TestGRD3NeverPicksNonLeaf: a parent with a cached child is not a victim
// candidate even at the lowest probability.
func TestGRD3NeverPicksNonLeaf(t *testing.T) {
	c := buildCache(0, GRD3, 100, []itemSpec{
		{key: NodeKey(1), size: 100, hits: 1, age: 100},                     // P: prob 0.01 (lowest!)
		{key: ObjKey(1), parent: NodeKey(1), size: 100, hits: 99, age: 100}, // child: 0.99
		{key: ObjKey(2), size: 100, hits: 50, age: 100},                     // loner: 0.5
	})
	c.ShrinkTo(250)
	if _, ok := c.items[NodeKey(1)]; !ok {
		t.Error("GRD3 evicted a non-leaf item")
	}
	if _, ok := c.items[ObjKey(2)]; ok {
		t.Error("expected the loner leaf to be the victim")
	}
}

// TestGRD3CorrectionStep: Definition 5.1 step 6 — when the last victim alone
// is worth more than everything kept, keep it instead.
func TestGRD3CorrectionStep(t *testing.T) {
	c := buildCache(0, GRD3, 100, []itemSpec{
		{key: NodeKey(1), size: 500, hits: 1, age: 100},                   // A: prob 0.01, benefit 5
		{key: ObjKey(7), parent: NodeKey(1), size: 900, hits: 99, age: 1}, // B: prob 99, benefit huge
	})
	// Capacity 1000: B (the only leaf) is popped; A alone fits, but B's
	// benefit dwarfs A's, so the correction swaps them.
	c.ShrinkTo(1000)
	if _, ok := c.items[ObjKey(7)]; !ok {
		t.Fatal("correction step should have kept B")
	}
	if _, ok := c.items[NodeKey(1)]; ok {
		t.Fatal("correction step should have dropped A")
	}
	if c.Used() != 900 {
		t.Errorf("used = %d", c.Used())
	}
}

// TestLRUCascades: evicting a node under LRU removes its cached subtree.
func TestLRUCascades(t *testing.T) {
	c := buildCache(0, LRU, 100, []itemSpec{
		{key: NodeKey(1), size: 100, hits: 1, age: 10, last: 5}, // stale parent
		{key: ObjKey(1), parent: NodeKey(1), size: 100, hits: 1, age: 10, last: 99},
		{key: ObjKey(2), size: 100, hits: 1, age: 10, last: 98},
	})
	c.ShrinkTo(150)
	// The LRU victim is the parent (last=5); its child must cascade even
	// though the child was recently used.
	if _, ok := c.items[NodeKey(1)]; ok {
		t.Error("LRU victim not evicted")
	}
	if _, ok := c.items[ObjKey(1)]; ok {
		t.Error("descendant survived its ancestor's eviction")
	}
	if _, ok := c.items[ObjKey(2)]; !ok {
		t.Error("unrelated item evicted")
	}
}

// TestMRUPicksNewest: MRU removes the most recently used first.
func TestMRUPicksNewest(t *testing.T) {
	c := buildCache(0, MRU, 100, []itemSpec{
		{key: ObjKey(1), size: 100, hits: 1, age: 10, last: 1},
		{key: ObjKey(2), size: 100, hits: 1, age: 10, last: 50},
		{key: ObjKey(3), size: 100, hits: 1, age: 10, last: 99},
	})
	c.ShrinkTo(200)
	if _, ok := c.items[ObjKey(3)]; ok {
		t.Error("MRU kept the most recent item")
	}
	if _, ok := c.items[ObjKey(1)]; !ok {
		t.Error("MRU evicted the oldest item")
	}
}

// TestOversizedItemDiscarded: GRD3 step 1 drops items that can never fit.
func TestOversizedItemDiscarded(t *testing.T) {
	c := buildCache(0, GRD3, 100, []itemSpec{
		{key: ObjKey(1), size: 5000, hits: 100, age: 1}, // hot but huge
		{key: ObjKey(2), size: 100, hits: 1, age: 100},  // cold but small
	})
	c.ShrinkTo(1000)
	if _, ok := c.items[ObjKey(1)]; ok {
		t.Error("oversized item must be discarded regardless of probability")
	}
	if _, ok := c.items[ObjKey(2)]; !ok {
		t.Error("fitting item should survive")
	}
}

// TestProbEstimator: prob = hits / queries lived, floored at one query.
func TestProbEstimator(t *testing.T) {
	it := &Item{Hits: 10, InsertedAt: 90}
	if got := it.Prob(100); got != 1.0 {
		t.Errorf("prob = %v, want 1.0", got)
	}
	if got := it.Prob(90); got != 10.0 {
		t.Errorf("zero-age prob = %v, want hits/1", got)
	}
}

// TestItemKeyString covers the diagnostic formatting.
func TestItemKeyString(t *testing.T) {
	if NodeKey(5).String() != "node:5" || ObjKey(7).String() != "obj:7" {
		t.Error("ItemKey.String broken")
	}
	if NodeKey(5) == ObjKey(5) {
		t.Error("node and object keys must differ")
	}
	_ = rtree.InvalidNode
}
