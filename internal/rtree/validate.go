package rtree

import "fmt"

// Validate checks the tree's structural invariants: reachability of every
// registered node, parent pointers, level consistency, entry-MBR containment
// and capacity bounds. strictFill additionally enforces the R*-tree minimum
// fill on non-root nodes (bulk-loaded trees may legitimately violate it on
// their trailing pages).
func (t *Tree) Validate(strictFill bool) error {
	root, ok := t.Node(t.root)
	if !ok {
		return fmt.Errorf("rtree: root %d not registered", t.root)
	}
	if root.Parent != InvalidNode {
		return fmt.Errorf("rtree: root has parent %d", root.Parent)
	}
	if root.Level != t.height-1 {
		return fmt.Errorf("rtree: root level %d but height %d", root.Level, t.height)
	}

	seen := make(map[NodeID]bool, t.live)
	objects := 0
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if seen[n.ID] {
			return fmt.Errorf("rtree: node %d reached twice", n.ID)
		}
		seen[n.ID] = true
		if len(n.Entries) == 0 && n.ID != t.root {
			return fmt.Errorf("rtree: empty non-root node %d", n.ID)
		}
		if len(n.Entries) > t.params.MaxEntries {
			return fmt.Errorf("rtree: node %d overflows: %d > %d", n.ID, len(n.Entries), t.params.MaxEntries)
		}
		if strictFill && n.ID != t.root && len(n.Entries) < t.params.MinEntries {
			return fmt.Errorf("rtree: node %d underfull: %d < %d", n.ID, len(n.Entries), t.params.MinEntries)
		}
		for _, e := range n.Entries {
			if n.Leaf() {
				if e.Child != InvalidNode {
					return fmt.Errorf("rtree: leaf %d holds child entry %d", n.ID, e.Child)
				}
				objects++
				continue
			}
			if e.Child == InvalidNode {
				return fmt.Errorf("rtree: intermediate node %d holds object entry", n.ID)
			}
			child, ok := t.Node(e.Child)
			if !ok {
				return fmt.Errorf("rtree: node %d references missing child %d", n.ID, e.Child)
			}
			if child.Parent != n.ID {
				return fmt.Errorf("rtree: child %d parent pointer %d, want %d", child.ID, child.Parent, n.ID)
			}
			if child.Level != n.Level-1 {
				return fmt.Errorf("rtree: child %d level %d under node level %d", child.ID, child.Level, n.Level)
			}
			if len(child.Entries) > 0 && !e.MBR.Contains(child.MBR()) {
				return fmt.Errorf("rtree: entry MBR %v does not contain child %d MBR %v", e.MBR, child.ID, child.MBR())
			}
			if e.MBR != child.MBR() {
				return fmt.Errorf("rtree: entry MBR %v is not tight for child %d (%v)", e.MBR, child.ID, child.MBR())
			}
			if err := walk(child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return err
	}
	if len(seen) != t.live {
		return fmt.Errorf("rtree: %d nodes registered but %d reachable", t.live, len(seen))
	}
	if objects != t.size {
		return fmt.Errorf("rtree: size %d but %d leaf entries", t.size, objects)
	}
	return nil
}

// Stats summarizes tree shape.
type Stats struct {
	Height        int
	Nodes         int
	Leaves        int
	Objects       int
	AvgFill       float64 // mean entries-per-node divided by MaxEntries
	NodesPerLevel []int
}

// Stats computes summary statistics by walking all nodes.
func (t *Tree) Stats() Stats {
	s := Stats{Height: t.height, Objects: t.size, NodesPerLevel: make([]int, t.height)}
	var entries int
	t.Nodes(func(n *Node) bool {
		s.Nodes++
		if n.Leaf() {
			s.Leaves++
		}
		if n.Level < len(s.NodesPerLevel) {
			s.NodesPerLevel[n.Level]++
		}
		entries += len(n.Entries)
		return true
	})
	if s.Nodes > 0 {
		s.AvgFill = float64(entries) / float64(s.Nodes) / float64(t.params.MaxEntries)
	}
	return s
}
