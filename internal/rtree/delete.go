package rtree

import "repro/internal/geom"

// Delete removes the object with the given id and bounding rectangle.
// It reports whether the object was found. Underfull nodes are dissolved and
// their entries re-inserted (the condense-tree step), and the root collapses
// when it has a single child.
func (t *Tree) Delete(obj ObjectID, mbr geom.Rect) bool {
	leaf := t.findLeaf(t.node(t.root), obj, mbr)
	if leaf == nil {
		return false
	}
	for i, e := range leaf.Entries {
		if e.Obj == obj && e.MBR == mbr {
			leaf.Entries = append(leaf.Entries[:i], leaf.Entries[i+1:]...)
			t.touch(leaf.ID)
			break
		}
	}
	t.size--
	t.condense(leaf)
	return true
}

// findLeaf locates the leaf containing the (obj, mbr) entry.
func (t *Tree) findLeaf(n *Node, obj ObjectID, mbr geom.Rect) *Node {
	if n.Leaf() {
		for _, e := range n.Entries {
			if e.Obj == obj && e.MBR == mbr {
				return n
			}
		}
		return nil
	}
	for _, e := range n.Entries {
		if e.MBR.Contains(mbr) {
			if found := t.findLeaf(t.node(e.Child), obj, mbr); found != nil {
				return found
			}
		}
	}
	return nil
}

// condense dissolves underfull nodes on the path from n to the root,
// collecting their surviving entries for re-insertion, then shrinks the root.
func (t *Tree) condense(n *Node) {
	type orphan struct {
		e     Entry
		level int
	}
	var orphans []orphan

	for n.ID != t.root {
		parent := t.node(n.Parent)
		if len(n.Entries) < t.params.MinEntries {
			i := parentEntryIndex(parent, n.ID)
			parent.Entries = append(parent.Entries[:i], parent.Entries[i+1:]...)
			t.touch(parent.ID)
			for _, e := range n.Entries {
				orphans = append(orphans, orphan{e, n.Level})
			}
			id := n.ID
			t.freeNode(id) // invalidates n; parent slot is untouched
			t.touch(id)
		} else {
			t.adjustPathMBRs(n)
		}
		n = parent
	}

	// Re-insert orphaned entries at their original levels.
	for _, o := range orphans {
		reinserted := make([]bool, t.height)
		t.insertEntry(o.e, o.level, reinserted)
	}

	// Shrink the root while it is a single-child intermediate node.
	root := t.node(t.root)
	for !root.Leaf() && len(root.Entries) == 1 {
		child := t.node(root.Entries[0].Child)
		id := root.ID
		t.freeNode(id) // invalidates root; child slot is untouched
		t.touch(id)
		child.Parent = InvalidNode
		t.root = child.ID
		t.height--
		root = child
	}
}
