package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

// smallParams keeps nodes tiny so tests exercise splits and reinserts deeply.
var smallParams = Params{MaxEntries: 8}

func randItems(r *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		c := geom.Pt(r.Float64(), r.Float64())
		w, h := r.Float64()*0.01, r.Float64()*0.01
		items[i] = Item{Obj: ObjectID(i + 1), MBR: geom.RectFromCenter(c, w, h)}
	}
	return items
}

func buildDynamic(t *testing.T, items []Item, p Params) *Tree {
	t.Helper()
	tr := New(p)
	for _, it := range items {
		tr.Insert(it.Obj, it.MBR)
	}
	return tr
}

// bruteRange computes ground truth for range queries.
func bruteRange(items []Item, w geom.Rect) map[ObjectID]bool {
	out := make(map[ObjectID]bool)
	for _, it := range items {
		if it.MBR.Intersects(w) {
			out[it.Obj] = true
		}
	}
	return out
}

// bruteKNN computes ground truth for kNN by min distance to MBR.
func bruteKNN(items []Item, p geom.Point, k int) []float64 {
	ds := make([]float64, len(items))
	for i, it := range items {
		ds[i] = geom.MinDist(p, it.MBR)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

func TestEmptyTree(t *testing.T) {
	tr := New(smallParams)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if got := tr.RangeQuery(geom.R(0, 0, 1, 1)); len(got) != 0 {
		t.Errorf("range on empty = %v", got)
	}
	if got := tr.KNN(geom.Pt(0.5, 0.5), 3); len(got) != 0 {
		t.Errorf("knn on empty = %v", got)
	}
	if err := tr.Validate(true); err != nil {
		t.Errorf("empty tree invalid: %v", err)
	}
}

func TestInsertValidate(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	items := randItems(r, 500)
	tr := buildDynamic(t, items, smallParams)
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(true); err != nil {
		t.Fatalf("invalid after inserts: %v", err)
	}
	if tr.Height() < 3 {
		t.Errorf("height %d suspiciously small for 500 items with M=8", tr.Height())
	}
}

func TestRangeQueryMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	items := randItems(r, 400)
	tr := buildDynamic(t, items, smallParams)
	for i := 0; i < 50; i++ {
		w := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), r.Float64()*0.3, r.Float64()*0.3)
		want := bruteRange(items, w)
		got := tr.RangeQuery(w)
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d results, want %d", i, len(got), len(want))
		}
		for _, e := range got {
			if !want[e.Obj] {
				t.Fatalf("query %d: unexpected object %d", i, e.Obj)
			}
		}
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	items := randItems(r, 300)
	tr := buildDynamic(t, items, smallParams)
	for i := 0; i < 50; i++ {
		p := geom.Pt(r.Float64(), r.Float64())
		k := 1 + r.Intn(10)
		got := tr.KNN(p, k)
		want := bruteKNN(items, p, k)
		if len(got) != len(want) {
			t.Fatalf("knn %d: got %d, want %d", i, len(got), len(want))
		}
		for j, e := range got {
			d := geom.MinDist(p, e.MBR)
			if math.Abs(d-want[j]) > 1e-12 {
				t.Fatalf("knn %d result %d: dist %v, want %v", i, j, d, want[j])
			}
		}
	}
}

func TestKNNOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	items := randItems(r, 200)
	tr := buildDynamic(t, items, smallParams)
	p := geom.Pt(0.5, 0.5)
	got := tr.KNN(p, 25)
	for j := 1; j < len(got); j++ {
		if geom.MinDist(p, got[j].MBR) < geom.MinDist(p, got[j-1].MBR)-1e-12 {
			t.Fatalf("knn results not in ascending distance at %d", j)
		}
	}
}

func TestDeleteAndValidate(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	items := randItems(r, 300)
	tr := buildDynamic(t, items, smallParams)

	perm := r.Perm(len(items))
	for i, pi := range perm {
		it := items[pi]
		if !tr.Delete(it.Obj, it.MBR) {
			t.Fatalf("delete %d: object %d not found", i, it.Obj)
		}
		if tr.Len() != len(items)-i-1 {
			t.Fatalf("Len = %d after %d deletes", tr.Len(), i+1)
		}
		if i%37 == 0 {
			if err := tr.Validate(false); err != nil {
				t.Fatalf("invalid after %d deletes: %v", i+1, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("tree not empty: %d", tr.Len())
	}
	if err := tr.Validate(true); err != nil {
		t.Errorf("empty tree invalid: %v", err)
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := New(smallParams)
	tr.Insert(1, geom.R(0, 0, 0.1, 0.1))
	if tr.Delete(2, geom.R(0, 0, 0.1, 0.1)) {
		t.Error("deleted nonexistent object")
	}
	if tr.Delete(1, geom.R(0.5, 0.5, 0.6, 0.6)) {
		t.Error("deleted with wrong MBR")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestInterleavedInsertDelete(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	tr := New(smallParams)
	live := make(map[ObjectID]geom.Rect)
	next := ObjectID(1)
	for op := 0; op < 2000; op++ {
		if len(live) == 0 || r.Intn(3) > 0 {
			mbr := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01)
			tr.Insert(next, mbr)
			live[next] = mbr
			next++
		} else {
			// Delete a random live object.
			var id ObjectID
			for k := range live {
				id = k
				break
			}
			if !tr.Delete(id, live[id]) {
				t.Fatalf("op %d: delete failed for %d", op, id)
			}
			delete(live, id)
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(live))
	}
	if err := tr.Validate(false); err != nil {
		t.Fatalf("invalid after interleaving: %v", err)
	}
	// All live objects findable.
	for id, mbr := range live {
		found := false
		for _, e := range tr.RangeQuery(mbr) {
			if e.Obj == id {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("object %d unreachable", id)
		}
	}
}

func TestBulkLoadValidateAndQuery(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	items := randItems(r, 5000)
	tr := BulkLoad(Params{MaxEntries: 50}, items, 0.7)
	if tr.Len() != 5000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(false); err != nil {
		t.Fatalf("bulk tree invalid: %v", err)
	}
	for i := 0; i < 20; i++ {
		w := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.1, 0.1)
		want := bruteRange(items, w)
		got := tr.RangeQuery(w)
		if len(got) != len(want) {
			t.Fatalf("bulk range: got %d, want %d", len(got), len(want))
		}
	}
	st := tr.Stats()
	if st.AvgFill < 0.5 || st.AvgFill > 0.85 {
		t.Errorf("bulk fill = %.2f, want ~0.7", st.AvgFill)
	}
}

func TestBulkLoadEmptyAndTiny(t *testing.T) {
	tr := BulkLoad(smallParams, nil, 0.7)
	if tr.Len() != 0 {
		t.Errorf("empty bulk Len = %d", tr.Len())
	}
	tr = BulkLoad(smallParams, randItems(rand.New(rand.NewSource(1)), 3), 0.7)
	if tr.Len() != 3 || tr.Height() != 1 {
		t.Errorf("tiny bulk Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if err := tr.Validate(false); err != nil {
		t.Errorf("tiny bulk invalid: %v", err)
	}
}

func TestSplitEntriesProperties(t *testing.T) {
	r := rand.New(rand.NewSource(18))
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(40)
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{
				MBR: geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), r.Float64()*0.1, r.Float64()*0.1),
				Obj: ObjectID(i + 1),
			}
		}
		minFill := 1 + r.Intn(n/2+1)
		if minFill > n/2 {
			minFill = n / 2
		}
		if minFill < 1 {
			minFill = 1
		}
		l, rt := SplitEntries(entries, minFill)
		if len(l)+len(rt) != n {
			t.Fatalf("split lost entries: %d+%d != %d", len(l), len(rt), n)
		}
		if len(l) < minFill || len(rt) < minFill {
			t.Fatalf("split violates minFill %d: %d/%d", minFill, len(l), len(rt))
		}
		// Every object appears exactly once.
		seen := make(map[ObjectID]int)
		for _, e := range append(append([]Entry{}, l...), rt...) {
			seen[e.Obj]++
		}
		for id, c := range seen {
			if c != 1 {
				t.Fatalf("object %d appears %d times after split", id, c)
			}
		}
	}
}

func TestDistanceWithinMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	items := randItems(r, 300)
	tr := buildDynamic(t, items, smallParams)
	for i := 0; i < 20; i++ {
		p := geom.Pt(r.Float64(), r.Float64())
		d := r.Float64() * 0.2
		got := tr.DistanceWithin(p, d)
		want := 0
		for _, it := range items {
			if geom.MinDist(p, it.MBR) <= d {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("DistanceWithin: got %d, want %d", len(got), want)
		}
	}
}

func TestRootEntryCoversTree(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	items := randItems(r, 100)
	tr := buildDynamic(t, items, smallParams)
	re := tr.RootEntry()
	for _, it := range items {
		if !re.MBR.Contains(it.MBR) {
			t.Fatalf("root entry %v does not cover %v", re.MBR, it.MBR)
		}
	}
}

func TestStats(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	tr := buildDynamic(t, randItems(r, 200), smallParams)
	st := tr.Stats()
	if st.Objects != 200 || st.Nodes == 0 || st.Leaves == 0 || st.Height != tr.Height() {
		t.Errorf("stats = %+v", st)
	}
	sum := 0
	for _, c := range st.NodesPerLevel {
		sum += c
	}
	if sum != st.Nodes {
		t.Errorf("NodesPerLevel sums to %d, want %d", sum, st.Nodes)
	}
}
