package rtree

import "fmt"

// Snapshot-rotation support: the server's snapshot-isolated concurrency model
// (internal/server) keeps two or three Tree buffers in rotation — one
// published as the immutable read snapshot, the others being caught up and
// mutated by a single writer goroutine. Clone creates a new buffer; CatchUp
// replays the pages another buffer changed since this one was last synced, so
// a retired buffer becomes identical to the current one in O(changed pages)
// instead of O(index size).

// Clone returns a deep copy of the tree: the arena, every entry list, and the
// free list are copied, so mutations of the clone never alias the original.
// The touch hook is not copied.
func (t *Tree) Clone() *Tree {
	c := &Tree{
		params: t.params,
		nodes:  make([]Node, len(t.nodes)),
		free:   append([]NodeID(nil), t.free...),
		live:   t.live,
		root:   t.root,
		height: t.height,
		size:   t.size,
	}
	copy(c.nodes, t.nodes)
	for i := range c.nodes {
		if len(t.nodes[i].Entries) > 0 {
			c.nodes[i].Entries = append([]Entry(nil), t.nodes[i].Entries...)
		} else {
			c.nodes[i].Entries = nil
		}
	}
	return c
}

// CatchUp makes t identical to src by copying the pages listed in dirty
// (every node whose entries, MBRs, parentage, or liveness changed since t and
// src last matched — the first-touch sets logged per update batch, plus the
// ids of created and freed nodes) and the tree-level metadata. Entry storage
// already owned by t is reused, so a warm catch-up allocates only for pages
// that grew past their old capacity.
//
// The caller must guarantee that no reader is using t (the snapshot built on
// it has fully drained) and that dirty really covers every page that differs;
// both trees must descend from the same original. Parent pointers of the
// children of every dirty intermediate page are refreshed from the copied
// entry lists, which covers the only way a child's Parent can change without
// the child itself being touched.
func (t *Tree) CatchUp(src *Tree, dirty []NodeID) {
	if t.params != src.params {
		panic(fmt.Sprintf("rtree: CatchUp across params %+v vs %+v", t.params, src.params))
	}
	// Extend the arena to cover pages created since the last sync. The zero
	// Node in new slots is overwritten below (created pages are dirty).
	if len(t.nodes) < len(src.nodes) {
		t.nodes = append(t.nodes, make([]Node, len(src.nodes)-len(t.nodes))...)
	}
	for _, id := range dirty {
		if int(id) >= len(src.nodes) {
			continue
		}
		dst := &t.nodes[id]
		reuse := dst.Entries[:0]
		*dst = src.nodes[id]
		dst.Entries = append(reuse, src.nodes[id].Entries...)
	}
	// Refresh the parent pointers of every dirty page's children: a split or
	// a condense re-homes children whose own slots are never touched.
	for _, id := range dirty {
		if int(id) >= len(t.nodes) {
			continue
		}
		n := &t.nodes[id]
		if n.ID != id || n.Level == 0 {
			continue // tombstone or leaf
		}
		for _, e := range n.Entries {
			t.nodes[e.Child].Parent = id
		}
	}
	t.free = append(t.free[:0], src.free...)
	t.live = src.live
	t.root = src.root
	t.height = src.height
	t.size = src.size
	if t.root != InvalidNode {
		t.nodes[t.root].Parent = InvalidNode
	}
}
