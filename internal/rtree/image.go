package rtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
)

// Tree image: an exact, self-contained serialization of a tree's arena used
// by durable-shard checkpoints (internal/wal, docs/DURABILITY.md). Exactness
// is the whole point — the proactive-caching contract promises clients that
// NodeIDs are never reused and that (ID, Gen) identifies page content, so a
// restored shard must resume with the identical arena layout, identical
// generation counters, and the identical free list a crashed one would have
// had. The image therefore records tombstone positions (as gaps) and the
// free-list order verbatim, and stores coordinates as float64 bits: the
// in-memory tree holds full-precision rectangles and replayed updates match
// them exactly (the delete contract).

const imageVersion = 1

var errImage = errors.New("rtree: malformed tree image")

// AppendImage appends an exact serialization of the tree to dst and returns
// the extended slice. The tree must be quiescent for the duration of the
// call (the snapshot writer serializes its published trees).
func (t *Tree) AppendImage(dst []byte) []byte {
	b := append(dst, imageVersion)
	b = binary.AppendUvarint(b, uint64(t.params.MaxEntries))
	b = binary.AppendUvarint(b, uint64(t.params.MinEntries))
	b = binary.AppendUvarint(b, uint64(t.params.ReinsertCount))
	b = binary.AppendUvarint(b, uint64(t.root))
	b = binary.AppendUvarint(b, uint64(t.height))
	b = binary.AppendUvarint(b, uint64(t.size))
	b = binary.AppendUvarint(b, uint64(len(t.nodes)))
	b = binary.AppendUvarint(b, uint64(len(t.free)))
	for _, id := range t.free {
		b = binary.AppendUvarint(b, uint64(id))
	}
	b = binary.AppendUvarint(b, uint64(t.live))
	for i := 1; i < len(t.nodes); i++ {
		n := &t.nodes[i]
		if n.ID == InvalidNode {
			continue // tombstone or sentinel: reconstructed as a zero slot
		}
		b = binary.AppendUvarint(b, uint64(n.ID))
		b = binary.AppendUvarint(b, uint64(n.Level))
		b = binary.AppendUvarint(b, uint64(n.Parent))
		b = binary.AppendUvarint(b, uint64(n.Gen))
		b = binary.AppendUvarint(b, uint64(len(n.Entries)))
		for _, e := range n.Entries {
			b = binary.AppendUvarint(b, uint64(e.Child))
			b = binary.AppendUvarint(b, uint64(e.Obj))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.MBR.MinX))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.MBR.MinY))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.MBR.MaxX))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(e.MBR.MaxY))
		}
	}
	return b
}

// imgDec is a sticky-error decoder over an image body; like the wire codec
// it never panics and bounds every allocation by the input size.
type imgDec struct {
	b   []byte
	err error
}

func (d *imgDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{errImage}, args...)...)
	}
}

func (d *imgDec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *imgDec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

// count reads a collection length, bounded by minBytes per element of
// remaining input.
func (d *imgDec) count(minBytes int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > uint64(len(d.b))/uint64(minBytes) {
		d.fail("count %d exceeds %d remaining bytes", n, len(d.b))
		return 0
	}
	return int(n)
}

// ReadImage reconstructs a tree from an AppendImage serialization. Malformed
// input (truncation, corruption, internal inconsistency) returns an error;
// decoding never panics.
func ReadImage(body []byte) (*Tree, error) {
	d := &imgDec{b: body}
	if len(body) < 1 {
		return nil, fmt.Errorf("%w: empty image", errImage)
	}
	if v := body[0]; v != imageVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", errImage, v)
	}
	d.b = body[1:]

	t := &Tree{}
	t.params.MaxEntries = int(d.uvarint())
	t.params.MinEntries = int(d.uvarint())
	t.params.ReinsertCount = int(d.uvarint())
	t.root = NodeID(d.uvarint())
	t.height = int(d.uvarint())
	t.size = int(d.uvarint())
	span := d.uvarint()
	nfree := d.count(1)
	t.free = make([]NodeID, 0, nfree)
	for i := 0; i < nfree && d.err == nil; i++ {
		id := NodeID(d.uvarint())
		if uint64(id) >= span {
			d.fail("free id %d out of span %d", id, span)
		}
		t.free = append(t.free, id)
	}
	live := d.count(5) // id + level + parent + gen + count, one byte each min
	if d.err != nil {
		return nil, d.err
	}
	// NodeIDs are never reused, so tombstoned slots (frees whose entry
	// storage was since recycled off the free list) legitimately outnumber
	// the free list: the span only has to cover the sentinel plus every
	// live node, and stay under the arena's id-width ceiling so a corrupt
	// header cannot demand an absurd allocation.
	const maxImageSpan = 1 << 26
	if span < 1+uint64(live) || span > maxImageSpan {
		return nil, fmt.Errorf("%w: implausible span %d for %d live nodes",
			errImage, span, live)
	}
	t.live = live
	t.nodes = make([]Node, span)
	for i := 0; i < live && d.err == nil; i++ {
		id := NodeID(d.uvarint())
		if d.err != nil {
			break
		}
		if uint64(id) >= span || id == InvalidNode {
			d.fail("node id %d out of span %d", id, span)
			break
		}
		n := &t.nodes[id]
		if n.ID != InvalidNode {
			d.fail("duplicate node id %d", id)
			break
		}
		n.ID = id
		n.Level = int(d.uvarint())
		n.Parent = NodeID(d.uvarint())
		n.Gen = uint32(d.uvarint())
		ecount := d.count(2 + 32) // child + obj + four float64
		if ecount > 0 {
			n.Entries = make([]Entry, 0, ecount)
			for j := 0; j < ecount && d.err == nil; j++ {
				e := Entry{
					Child: NodeID(d.uvarint()),
					Obj:   ObjectID(d.uvarint()),
				}
				e.MBR = geom.Rect{MinX: d.f64(), MinY: d.f64(), MaxX: d.f64(), MaxY: d.f64()}
				if e.Child != InvalidNode && uint64(e.Child) >= span {
					d.fail("entry child %d out of span %d", e.Child, span)
				}
				n.Entries = append(n.Entries, e)
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", errImage, len(d.b))
	}
	if uint64(t.root) >= span {
		return nil, fmt.Errorf("%w: root %d out of span %d", errImage, t.root, span)
	}
	if t.root != InvalidNode && t.nodes[t.root].ID != t.root {
		return nil, fmt.Errorf("%w: root %d is not a live node", errImage, t.root)
	}
	return t, nil
}
