package rtree

import (
	"repro/internal/geom"
	"repro/internal/pq"
)

// RangeQuery returns the leaf entries whose MBRs intersect window, in
// unspecified order. This is the direct (server-local) evaluation path; the
// cache-aware evaluation lives in package query.
func (t *Tree) RangeQuery(window geom.Rect) []Entry {
	var out []Entry
	t.searchNode(t.node(t.root), window, &out)
	return out
}

func (t *Tree) searchNode(n *Node, window geom.Rect, out *[]Entry) {
	for _, e := range n.Entries {
		if !e.MBR.Intersects(window) {
			continue
		}
		if n.Leaf() {
			*out = append(*out, e)
		} else {
			t.searchNode(t.node(e.Child), window, out)
		}
	}
}

// KNN returns the k leaf entries nearest to p in ascending distance order
// using best-first search (Hjaltason & Samet). Fewer than k entries are
// returned when the tree holds fewer objects.
func (t *Tree) KNN(p geom.Point, k int) []Entry {
	if k <= 0 || t.size == 0 {
		return nil
	}
	var h pq.Queue[Entry]
	h.Push(0, t.RootEntry())
	out := make([]Entry, 0, k)
	for h.Len() > 0 && len(out) < k {
		_, e := h.Pop()
		if e.IsLeafEntry() {
			out = append(out, e)
			continue
		}
		node := t.node(e.Child)
		for _, c := range node.Entries {
			h.Push(geom.MinDist(p, c.MBR), c)
		}
	}
	return out
}

// DistanceWithin returns the leaf entries whose MBR lies within dist of p.
// It is used by validity-region computation in the semantic-caching baseline.
func (t *Tree) DistanceWithin(p geom.Point, dist float64) []Entry {
	var out []Entry
	var h pq.Queue[Entry]
	h.Push(0, t.RootEntry())
	for h.Len() > 0 {
		d, e := h.Pop()
		if d > dist {
			break
		}
		if e.IsLeafEntry() {
			out = append(out, e)
			continue
		}
		node := t.node(e.Child)
		for _, c := range node.Entries {
			if md := geom.MinDist(p, c.MBR); md <= dist {
				h.Push(md, c)
			}
		}
	}
	return out
}
