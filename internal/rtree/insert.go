package rtree

import (
	"sort"

	"repro/internal/geom"
)

// Insert adds an object with the given bounding rectangle.
func (t *Tree) Insert(obj ObjectID, mbr geom.Rect) {
	reinserted := make([]bool, t.height)
	t.insertEntry(Entry{MBR: mbr, Obj: obj}, 0, reinserted)
	t.size++
}

// insertEntry places e into a node at the given level (0 = leaf), handling
// overflow via forced reinsertion (once per level per top-level operation,
// tracked by reinserted) and R* splits.
func (t *Tree) insertEntry(e Entry, level int, reinserted []bool) {
	n := t.chooseSubtree(e.MBR, level)
	n.Entries = append(n.Entries, e)
	t.touch(n.ID)
	if e.Child != InvalidNode {
		t.node(e.Child).Parent = n.ID
	}
	t.adjustPathMBRs(n)
	if len(n.Entries) > t.params.MaxEntries {
		t.overflow(n, reinserted)
	}
}

// chooseSubtree descends from the root to the node at the target level using
// the R* criteria: minimum overlap enlargement when the children are leaves,
// minimum area enlargement otherwise (ties broken by smaller area).
func (t *Tree) chooseSubtree(mbr geom.Rect, level int) *Node {
	n := t.node(t.root)
	for n.Level > level {
		var best int
		if n.Level == 1 {
			best = chooseLeastOverlapEnlargement(n.Entries, mbr)
		} else {
			best = chooseLeastAreaEnlargement(n.Entries, mbr)
		}
		n = t.node(n.Entries[best].Child)
	}
	return n
}

func chooseLeastAreaEnlargement(entries []Entry, mbr geom.Rect) int {
	best := 0
	bestEnl := entries[0].MBR.Enlargement(mbr)
	bestArea := entries[0].MBR.Area()
	for i := 1; i < len(entries); i++ {
		enl := entries[i].MBR.Enlargement(mbr)
		area := entries[i].MBR.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// chooseLeastOverlapEnlargement picks the entry whose overlap with its
// siblings grows least when extended to cover mbr.
func chooseLeastOverlapEnlargement(entries []Entry, mbr geom.Rect) int {
	best := 0
	bestOverlapEnl := overlapEnlargement(entries, 0, mbr)
	bestAreaEnl := entries[0].MBR.Enlargement(mbr)
	bestArea := entries[0].MBR.Area()
	for i := 1; i < len(entries); i++ {
		oEnl := overlapEnlargement(entries, i, mbr)
		aEnl := entries[i].MBR.Enlargement(mbr)
		area := entries[i].MBR.Area()
		if oEnl < bestOverlapEnl ||
			(oEnl == bestOverlapEnl && (aEnl < bestAreaEnl ||
				(aEnl == bestAreaEnl && area < bestArea))) {
			best, bestOverlapEnl, bestAreaEnl, bestArea = i, oEnl, aEnl, area
		}
	}
	return best
}

func overlapEnlargement(entries []Entry, idx int, mbr geom.Rect) float64 {
	old := entries[idx].MBR
	grown := old.Union(mbr)
	var delta float64
	for i, e := range entries {
		if i == idx {
			continue
		}
		delta += grown.OverlapArea(e.MBR) - old.OverlapArea(e.MBR)
	}
	return delta
}

// overflow applies R* overflow treatment to n: forced reinsertion the first
// time a level overflows during one top-level insert, a split afterwards.
func (t *Tree) overflow(n *Node, reinserted []bool) {
	if n.ID != t.root && n.Level < len(reinserted) && !reinserted[n.Level] {
		reinserted[n.Level] = true
		t.reinsert(n, reinserted)
		return
	}
	t.splitNode(n, reinserted)
}

// reinsert removes the ReinsertCount entries whose centers are farthest from
// the node's MBR center and re-inserts them (closest first), which lets the
// tree escape locally bad groupings without a split.
func (t *Tree) reinsert(n *Node, reinserted []bool) {
	center := n.MBR().Center()
	type distEntry struct {
		d float64
		e Entry
	}
	des := make([]distEntry, len(n.Entries))
	for i, e := range n.Entries {
		des[i] = distEntry{geom.DistSq(center, e.MBR.Center()), e}
	}
	sort.SliceStable(des, func(i, j int) bool { return des[i].d < des[j].d })

	keep := len(des) - t.params.ReinsertCount
	n.Entries = n.Entries[:0]
	for _, de := range des[:keep] {
		n.Entries = append(n.Entries, de.e)
	}
	t.touch(n.ID)
	t.adjustPathMBRs(n)

	level := n.Level
	for _, de := range des[keep:] { // close reinsert: nearest first
		t.insertEntry(de.e, level, reinserted)
	}
}

// splitNode splits an overflowing node and propagates upward. Node pointers
// are re-fetched by id after every newNode call: growing the arena may
// relocate the whole node slice.
func (t *Tree) splitNode(n *Node, reinserted []bool) {
	left, right := SplitEntries(n.Entries, t.params.MinEntries)

	nID, level := n.ID, n.Level
	n.Entries = left
	nnID := t.newNode(level).ID
	n = t.node(nID)
	nn := t.node(nnID)
	nn.Entries = right
	t.touch(nID)
	t.touch(nnID)
	if level > 0 {
		for _, e := range nn.Entries {
			t.node(e.Child).Parent = nnID
		}
	}

	if nID == t.root {
		rootID := t.newNode(level + 1).ID
		n, nn = t.node(nID), t.node(nnID)
		t.node(rootID).Entries = []Entry{
			{MBR: n.MBR(), Child: nID},
			{MBR: nn.MBR(), Child: nnID},
		}
		n.Parent = rootID
		nn.Parent = rootID
		t.root = rootID
		t.height++
		t.touch(rootID)
		return
	}

	parent := t.node(n.Parent)
	i := parentEntryIndex(parent, nID)
	parent.Entries[i].MBR = n.MBR()
	parent.Entries = append(parent.Entries, Entry{MBR: nn.MBR(), Child: nnID})
	t.touch(parent.ID)
	nn.Parent = parent.ID
	t.adjustPathMBRs(parent)
	if len(parent.Entries) > t.params.MaxEntries {
		t.overflow(parent, reinserted)
	}
}
