package rtree

import (
	"math"

	"repro/internal/geom"
)

// Packed is a read-optimized, pointer-free image of a tree: for every live
// node it flattens the node's binary partition tree (the same deterministic
// recursive R*-split used by bpt.Build) into contiguous global arrays laid
// out for traversal speed:
//
//	heads  [NodeID]      → {gen, level, off, count}     (count 0 = not covered)
//	planes minX..maxY    → float32 MBRs, rounded outward (branchless prefilter)
//	rects  []geom.Rect   → exact float64 MBRs (result and key construction)
//	right  []int32       → preorder topology: left child = i+1, right = right[i],
//	                       0 = leaf (index 0 is always a root, never a right child)
//	parent []int32       → ancestor closure for frontier marking, -1 at roots
//	codes  []string      → prebuilt partition codes ("", "0", "01", ...)
//	child  []NodeID      → leaf position: child node (InvalidNode for objects)
//	obj    []ObjectID    → leaf position: object id
//
// Every per-position array is indexed by the same global position index; a
// node's positions occupy the contiguous range [off, off+count) in preorder
// (root first, left subtree, then right subtree), which is also lexicographic
// code order.
//
// A Packed image is immutable and keyed by page generation: position data for
// (id, gen) is valid against any snapshot whose node id carries the same gen,
// because a (NodeID, Gen) pair names immutable page content (the arena
// contract). Nodes touched after the image was built simply miss the gen
// check and fall back to the arena tree — they are the un-packed delta.
type Packed struct {
	heads []packedHead

	minX, minY, maxX, maxY []float32
	rects                  []geom.Rect
	right                  []int32
	parent                 []int32
	codes                  []string
	child                  []NodeID
	obj                    []ObjectID
}

// packedHead locates one node's positions inside the global arrays.
type packedHead struct {
	gen   uint32
	level int32
	off   int32
	count int32
}

// PackedSpan addresses one node's position range inside a Packed image.
type PackedSpan struct {
	Off   int32
	Count int32
}

// Pack builds the packed image of every live, non-empty node of t. The tree
// must not be mutated during the call (pack from a pinned snapshot). Position
// topology, codes, and exact MBRs reproduce bpt.Build bit-for-bit: the same
// split algorithm runs over the same entry lists, so a cut emitted from the
// packed image is byte-identical to one emitted from the partition forest.
func Pack(t *Tree) *Packed { return Repack(t, nil) }

// Repack builds a fresh packed image of t, reusing prev where it can: a node
// whose (ID, Gen) is still covered by prev has byte-identical position data,
// so its span is copied (memcpy plus an index rebase) instead of re-split.
// With the default repack threshold at most a quarter of the pages are stale,
// so a steady-state repack does O(delta) split work plus O(total) copying —
// the difference keeps repack cost off the writer's update throughput.
// Passing a nil prev rebuilds everything.
func Repack(t *Tree, prev *Packed) *Packed {
	p := &Packed{heads: make([]packedHead, t.NodeSpan())}

	// Size the arrays up front: a node with E entries has 2E-1 positions.
	total := 0
	t.Nodes(func(n *Node) bool {
		if len(n.Entries) > 0 {
			total += 2*len(n.Entries) - 1
		}
		return true
	})
	p.minX = make([]float32, 0, total)
	p.minY = make([]float32, 0, total)
	p.maxX = make([]float32, 0, total)
	p.maxY = make([]float32, 0, total)
	p.rects = make([]geom.Rect, 0, total)
	p.right = make([]int32, 0, total)
	p.parent = make([]int32, 0, total)
	p.codes = make([]string, 0, total)
	p.child = make([]NodeID, 0, total)
	p.obj = make([]ObjectID, 0, total)

	pk := packer{p: p}
	t.Nodes(func(n *Node) bool {
		if len(n.Entries) == 0 {
			return true
		}
		off := int32(len(p.rects))
		if sp, ok := coveredBy(prev, n.ID, n.Gen); ok {
			copySpan(p, prev, sp)
		} else {
			if cap(pk.work) < len(n.Entries) {
				pk.work = make([]Entry, 0, len(n.Entries)*2)
				pk.scratch = NewSplitScratch(cap(pk.work))
			}
			pk.work = append(pk.work[:0], n.Entries...)
			pk.code = pk.code[:0]
			pk.build(pk.work, -1)
		}
		p.heads[n.ID] = packedHead{
			gen:   n.Gen,
			level: int32(n.Level),
			off:   off,
			count: int32(len(p.rects)) - off,
		}
		return true
	})
	return p
}

// coveredBy is Covers with a nil-image guard for the full-rebuild path.
func coveredBy(prev *Packed, id NodeID, gen uint32) (PackedSpan, bool) {
	if prev == nil {
		return PackedSpan{}, false
	}
	return prev.Covers(id, gen)
}

// copySpan appends one node's positions from prev to the image under
// construction. Within a span every right/parent index points inside the same
// span (each node's partition tree is self-contained), so rebasing by the
// offset delta is the only fixup; the right-child leaf sentinel 0 and the
// parent root sentinel -1 are preserved as-is. Code strings are interned, so
// copying them shares storage rather than duplicating it.
func copySpan(p *Packed, prev *Packed, sp PackedSpan) {
	delta := int32(len(p.rects)) - sp.Off
	end := sp.Off + sp.Count
	p.minX = append(p.minX, prev.minX[sp.Off:end]...)
	p.minY = append(p.minY, prev.minY[sp.Off:end]...)
	p.maxX = append(p.maxX, prev.maxX[sp.Off:end]...)
	p.maxY = append(p.maxY, prev.maxY[sp.Off:end]...)
	p.rects = append(p.rects, prev.rects[sp.Off:end]...)
	p.codes = append(p.codes, prev.codes[sp.Off:end]...)
	p.child = append(p.child, prev.child[sp.Off:end]...)
	p.obj = append(p.obj, prev.obj[sp.Off:end]...)
	for i := sp.Off; i < end; i++ {
		r := prev.right[i]
		if r != 0 {
			r += delta
		}
		p.right = append(p.right, r)
		pa := prev.parent[i]
		if pa >= 0 {
			pa += delta
		}
		p.parent = append(p.parent, pa)
	}
}

// packer carries the per-node build scratch.
type packer struct {
	p       *Packed
	work    []Entry
	code    []byte
	scratch *SplitScratch
}

// build emits the partition tree over entries in preorder and returns the
// global index of the emitted root. It mirrors bpt's recursive construction:
// Split permutes entries in place and returns the left-half length.
func (pk *packer) build(entries []Entry, parentIdx int32) int32 {
	p := pk.p
	idx := int32(len(p.rects))
	p.codes = append(p.codes, internCode(pk.code))
	p.parent = append(p.parent, parentIdx)
	// Placeholders; filled in below once children (and the MBR) are known.
	p.right = append(p.right, 0)
	p.rects = append(p.rects, geom.Rect{})
	p.minX = append(p.minX, 0)
	p.minY = append(p.minY, 0)
	p.maxX = append(p.maxX, 0)
	p.maxY = append(p.maxY, 0)
	p.child = append(p.child, InvalidNode)
	p.obj = append(p.obj, 0)

	var mbr geom.Rect
	if len(entries) == 1 {
		mbr = entries[0].MBR
		p.child[idx] = entries[0].Child
		p.obj[idx] = entries[0].Obj
	} else {
		k := pk.scratch.Split(entries, 1)
		pk.code = append(pk.code, '0')
		left := pk.build(entries[:k], idx)
		pk.code[len(pk.code)-1] = '1'
		r := pk.build(entries[k:], idx)
		pk.code = pk.code[:len(pk.code)-1]
		p.right[idx] = r
		mbr = p.rects[left].Union(p.rects[r])
	}
	p.rects[idx] = mbr
	p.minX[idx] = f32Down(mbr.MinX)
	p.minY[idx] = f32Down(mbr.MinY)
	p.maxX[idx] = f32Up(mbr.MaxX)
	p.maxY[idx] = f32Up(mbr.MaxY)
	return idx
}

// internDepth bounds the code lengths covered by the shared intern table.
// Splits are near-balanced, so 12 bits covers every position of any page the
// arena produces in practice; pathological codes just fall back to allocating.
const internDepth = 12

// internedCodes holds one canonical string per binary partition code of up to
// internDepth bits, shared by every packed image. Pack emits ~2 positions per
// entry and a fresh string per position was the bulk of a repack's garbage —
// under a sustained update stream that garbage landed as GC pressure on the
// writer. Codes of length L occupy table indexes [2^L-1, 2^(L+1)-2] in value
// order.
var internedCodes = func() []string {
	t := make([]string, 1<<(internDepth+1)-1)
	buf := make([]byte, internDepth)
	for l := 1; l <= internDepth; l++ {
		base := 1<<l - 1
		for v := 0; v < 1<<l; v++ {
			for k := 0; k < l; k++ {
				buf[k] = '0' + byte(v>>(l-1-k)&1)
			}
			t[base+v] = string(buf[:l])
		}
	}
	return t
}()

// internCode returns the canonical shared string for a partition code.
func internCode(code []byte) string {
	if len(code) > internDepth {
		return string(code)
	}
	v := 0
	for _, c := range code {
		v = v<<1 | int(c&1)
	}
	return internedCodes[1<<len(code)-1+v]
}

// f32Down converts v to the nearest float32 not greater than v.
func f32Down(v float64) float32 {
	f := float32(v)
	if float64(f) > v {
		f = math.Nextafter32(f, float32(math.Inf(-1)))
	}
	return f
}

// f32Up converts v to the nearest float32 not less than v.
func f32Up(v float64) float32 {
	f := float32(v)
	if float64(f) < v {
		f = math.Nextafter32(f, float32(math.Inf(1)))
	}
	return f
}

// Covers returns the position span of node id if the image was built from
// page generation gen — i.e. if the packed content is the node's current
// content. A miss means the node belongs to the un-packed delta and the
// caller must walk the arena tree instead.
func (p *Packed) Covers(id NodeID, gen uint32) (PackedSpan, bool) {
	if int(id) >= len(p.heads) {
		return PackedSpan{}, false
	}
	h := p.heads[id]
	if h.count == 0 || h.gen != gen {
		return PackedSpan{}, false
	}
	return PackedSpan{Off: h.off, Count: h.count}, true
}

// NodeCount returns how many nodes the image covers (diagnostics).
func (p *Packed) NodeCount() int {
	n := 0
	for _, h := range p.heads {
		if h.count > 0 {
			n++
		}
	}
	return n
}

// Positions returns the total number of packed positions (diagnostics).
func (p *Packed) Positions() int { return len(p.rects) }

// FindCode resolves a partition code to its global position index by walking
// the packed topology bit by bit — the pointer-free replacement for the
// forest's byCode string map.
func (p *Packed) FindCode(sp PackedSpan, code string) (int32, bool) {
	i := sp.Off
	for k := 0; k < len(code); k++ {
		r := p.right[i]
		if r == 0 {
			return 0, false // descended past a leaf: stale or foreign code
		}
		if code[k] == '1' {
			i = r
		} else {
			i++
		}
	}
	return i, true
}

// IsLeaf reports whether position i stands for a single real entry.
func (p *Packed) IsLeaf(i int32) bool { return p.right[i] == 0 }

// Right returns the right-child position of i (left child is always i+1);
// zero for leaves.
func (p *Packed) Right(i int32) int32 { return p.right[i] }

// Parent returns the parent position of i, or -1 at a node root.
func (p *Packed) Parent(i int32) int32 { return p.parent[i] }

// Rect returns the exact MBR of position i.
func (p *Packed) Rect(i int32) geom.Rect { return p.rects[i] }

// Code returns the partition code of position i.
func (p *Packed) Code(i int32) string { return p.codes[i] }

// ChildID returns the child node a leaf position references (InvalidNode for
// object entries).
func (p *Packed) ChildID(i int32) NodeID { return p.child[i] }

// ObjID returns the object a leaf position references.
func (p *Packed) ObjID(i int32) ObjectID { return p.obj[i] }

// Window32 is a query window widened to float32 planes, for the branchless
// conservative prefilter against the packed MBR planes.
type Window32 struct {
	MinX, MinY, MaxX, MaxY float32
}

// MakeWindow32 widens w outward to float32.
func MakeWindow32(w geom.Rect) Window32 {
	return Window32{
		MinX: f32Down(w.MinX),
		MinY: f32Down(w.MinY),
		MaxX: f32Up(w.MaxX),
		MaxY: f32Up(w.MaxY),
	}
}

// MayIntersect reports whether position i's MBR may intersect the window:
// false is definite (the planes are outward-rounded covers of the exact
// MBRs), true must be confirmed against the exact rect. The comparison chain
// compiles to branch-predictable compares over four contiguous float32
// arrays.
func (p *Packed) MayIntersect(i int32, w Window32) bool {
	return p.minX[i] <= w.MaxX && w.MinX <= p.maxX[i] &&
		p.minY[i] <= w.MaxY && w.MinY <= p.maxY[i]
}
