package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// treeFingerprint captures everything CatchUp promises to reproduce: per-page
// identity, level, parentage, generation, and entry lists, plus the tree
// metadata.
type nodeFP struct {
	level, parent int
	gen           uint32
	entries       []Entry
}

func fingerprint(t *Tree) (map[NodeID]nodeFP, [4]int) {
	m := make(map[NodeID]nodeFP)
	t.Nodes(func(n *Node) bool {
		m[n.ID] = nodeFP{
			level:   n.Level,
			parent:  int(n.Parent),
			gen:     n.Gen,
			entries: append([]Entry(nil), n.Entries...),
		}
		return true
	})
	return m, [4]int{int(t.Root()), t.Height(), t.Len(), t.NodeCount()}
}

func assertTreesEqual(t *testing.T, want, got *Tree) {
	t.Helper()
	wm, wmeta := fingerprint(want)
	gm, gmeta := fingerprint(got)
	if wmeta != gmeta {
		t.Fatalf("metadata differs: want %v, got %v", wmeta, gmeta)
	}
	if len(wm) != len(gm) {
		t.Fatalf("live node count differs: want %d, got %d", len(wm), len(gm))
	}
	for id, wn := range wm {
		gn, ok := gm[id]
		if !ok {
			t.Fatalf("node %d missing from caught-up tree", id)
		}
		if wn.level != gn.level || wn.parent != gn.parent || wn.gen != gn.gen {
			t.Fatalf("node %d header differs: want %+v, got %+v", id, wn, gn)
		}
		if len(wn.entries) != len(gn.entries) {
			t.Fatalf("node %d entry count differs: want %d, got %d", id, len(wn.entries), len(gn.entries))
		}
		for i := range wn.entries {
			if wn.entries[i] != gn.entries[i] {
				t.Fatalf("node %d entry %d differs: want %+v, got %+v", id, i, wn.entries[i], gn.entries[i])
			}
		}
	}
	if err := got.Validate(false); err != nil {
		t.Fatalf("caught-up tree invalid: %v", err)
	}
}

func randomItems(r *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Obj: ObjectID(i + 1),
			MBR: geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01),
		}
	}
	return items
}

func TestCloneDeepCopies(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	src := BulkLoad(Params{MaxEntries: 8}, randomItems(r, 500), 0.7)
	c := src.Clone()
	assertTreesEqual(t, src, c)

	// Mutating the clone must not leak into the source.
	before, beforeMeta := fingerprint(src)
	for i := 0; i < 50; i++ {
		c.Insert(ObjectID(10_000+i), geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01))
	}
	after, afterMeta := fingerprint(src)
	if beforeMeta != afterMeta || len(before) != len(after) {
		t.Fatal("mutating the clone changed the source tree")
	}
	for id, b := range before {
		a := after[id]
		if a.gen != b.gen || len(a.entries) != len(b.entries) {
			t.Fatalf("node %d of the source changed under clone mutation", id)
		}
		for i := range b.entries {
			if a.entries[i] != b.entries[i] {
				t.Fatalf("node %d entry %d of the source changed under clone mutation", id, i)
			}
		}
	}
}

// TestCatchUpReplaysMutations is the buffer-rotation contract: a lagging
// clone, given only the first-touch page sets of the operations it missed,
// becomes identical to the mutated source — including parent pointers of
// re-homed children (splits, condenses, root changes), tombstones, and the
// free list.
func TestCatchUpReplaysMutations(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	src := BulkLoad(Params{MaxEntries: 8}, randomItems(r, 800), 0.7)
	live := make(map[ObjectID]geom.Rect)
	src.Nodes(func(n *Node) bool {
		if n.Leaf() {
			for _, e := range n.Entries {
				live[e.Obj] = e.MBR
			}
		}
		return true
	})

	lag := src.Clone()
	next := ObjectID(100_000)

	seen := make(map[NodeID]bool)
	var dirty []NodeID
	src.SetTouchHook(func(id NodeID) {
		if !seen[id] {
			seen[id] = true
			dirty = append(dirty, id)
		}
	})
	defer src.SetTouchHook(nil)

	for round := 0; round < 30; round++ {
		// A burst of mutations between catch-ups, heavy enough to force
		// splits, condenses, and root growth/shrink.
		for op := 0; op < 40; op++ {
			switch r.Intn(3) {
			case 0:
				mbr := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01)
				src.Insert(next, mbr)
				live[next] = mbr
				next++
			case 1:
				for id, mbr := range live {
					if !src.Delete(id, mbr) {
						t.Fatalf("delete of live object %d failed", id)
					}
					delete(live, id)
					break
				}
			default:
				for id, mbr := range live {
					if !src.Delete(id, mbr) {
						t.Fatalf("move-delete of live object %d failed", id)
					}
					to := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01)
					src.Insert(id, to)
					live[id] = to
					break
				}
			}
		}
		lag.CatchUp(src, dirty)
		dirty = dirty[:0]
		clear(seen)
		assertTreesEqual(t, src, lag)
	}
}

// TestCatchUpAlternating rotates two buffers like the writer does: each
// buffer misses every other burst and catches up on the union of the touch
// sets it missed.
func TestCatchUpAlternating(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	a := BulkLoad(Params{MaxEntries: 8}, randomItems(r, 400), 0.7)
	b := a.Clone()
	trees := [2]*Tree{a, b}
	pending := [2][]NodeID{}

	next := ObjectID(200_000)
	for round := 0; round < 20; round++ {
		wi := round % 2
		write, read := trees[wi], trees[1-wi]

		// Catch the write buffer up on everything it missed.
		write.CatchUp(read, pending[wi])
		pending[wi] = pending[wi][:0]
		assertTreesEqual(t, read, write)

		seen := make(map[NodeID]bool)
		var burst []NodeID
		write.SetTouchHook(func(id NodeID) {
			if !seen[id] {
				seen[id] = true
				burst = append(burst, id)
			}
		})
		for op := 0; op < 25; op++ {
			write.Insert(next, geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.005, 0.005))
			next++
		}
		write.SetTouchHook(nil)
		pending[1-wi] = append(pending[1-wi], burst...)
	}
}
