// Package rtree implements an R*-tree (Beckmann et al., SIGMOD 1990): the
// spatial index the paper's server maintains and whose nodes the proactive
// cache ships to mobile clients.
//
// The tree is a page registry: every node has a stable NodeID (the "physical
// address" of the paper's (MBR, p) entries), and clients refer to nodes by
// that id when constructing remainder queries. Dynamic inserts use the full
// R* algorithm (ChooseSubtree with overlap minimization, forced reinsertion,
// margin/overlap-driven splits); bulk construction uses Sort-Tile-Recursive
// packing with a configurable fill factor so index sizes match the paper's
// reported R*-tree sizes.
//
// Nodes live by value in a dense slice arena indexed by NodeID, so a
// root-to-leaf descent walks contiguous memory instead of chasing heap
// pointers through a map, and the GC never scans per-node allocations.
// NodeIDs are never reused: a deleted page leaves a tombstone slot whose
// lookup fails forever (the liveness check clients' dangling references
// depend on), while its entry storage goes on a free list for the next
// created node to recycle.
package rtree

import (
	"fmt"

	"repro/internal/geom"
)

// ObjectID identifies a data object in the underlying dataset.
type ObjectID uint32

// NodeID identifies an index node (a disk page in the paper's model).
// The zero NodeID is never a valid node.
type NodeID uint32

// InvalidNode is the NodeID zero value, used where "no node" is meant.
const InvalidNode NodeID = 0

// Entry is one slot of a node: a child pointer for intermediate nodes or an
// object reference for leaf nodes, together with its minimum bounding
// rectangle.
type Entry struct {
	MBR   geom.Rect
	Child NodeID   // nonzero iff this entry belongs to an intermediate node
	Obj   ObjectID // object id iff this entry belongs to a leaf node
}

// IsLeafEntry reports whether the entry references a data object.
func (e Entry) IsLeafEntry() bool { return e.Child == InvalidNode }

// Node is an index page. Level 0 nodes are leaves whose entries reference
// objects; higher levels reference child nodes. The node's own MBR is not
// stored but derived from its entries (see Node.MBR).
type Node struct {
	ID     NodeID
	Level  int
	Parent NodeID // InvalidNode for the root
	// Gen counts content changes of this page: it is bumped on every touch
	// (entry list or entry-MBR mutation). Two snapshots of the same tree hold
	// the same (ID, Gen) pair exactly when the page content is identical, so
	// per-node derived structures (partition trees) can be cached keyed by
	// generation and shared across snapshots without invalidation traffic.
	Gen     uint32
	Entries []Entry
}

// Leaf reports whether the node is at leaf level.
func (n *Node) Leaf() bool { return n.Level == 0 }

// MBR returns the minimum bounding rectangle of all entries.
// It must not be called on an empty node.
func (n *Node) MBR() geom.Rect {
	mbr := n.Entries[0].MBR
	for _, e := range n.Entries[1:] {
		mbr = mbr.Union(e.MBR)
	}
	return mbr
}

// Params configures tree shape.
type Params struct {
	// MaxEntries is the page capacity M. MinEntries defaults to 40% of M,
	// ReinsertCount to 30% of M (the R*-tree recommendations).
	MaxEntries    int
	MinEntries    int
	ReinsertCount int
}

// DefaultParams mirrors the paper's 4 KB pages with 20-byte entries
// (16 bytes of float32 coordinates plus a 4-byte pointer), M = 204.
func DefaultParams() Params {
	return Params{MaxEntries: 204}
}

func (p Params) normalized() Params {
	if p.MaxEntries < 4 {
		p.MaxEntries = 4
	}
	if p.MinEntries <= 0 {
		p.MinEntries = p.MaxEntries * 2 / 5
	}
	if p.MinEntries < 2 {
		p.MinEntries = 2
	}
	if p.MinEntries > p.MaxEntries/2 {
		p.MinEntries = p.MaxEntries / 2
	}
	if p.ReinsertCount <= 0 {
		p.ReinsertCount = p.MaxEntries * 3 / 10
	}
	if p.ReinsertCount < 1 {
		p.ReinsertCount = 1
	}
	if p.ReinsertCount > p.MaxEntries-p.MinEntries {
		p.ReinsertCount = p.MaxEntries - p.MinEntries
	}
	return p
}

// Tree is an R*-tree. It is not safe for concurrent mutation; concurrent
// reads are safe once construction is complete.
//
// Node pointers returned by Node, Nodes, or internal lookups point into the
// arena and stay valid only until the next mutation (Insert, Delete,
// BulkLoad); creating a node may grow the arena and relocate every Node.
// Mutating code must therefore re-fetch by id after any call that can
// allocate a node.
type Tree struct {
	params Params
	nodes  []Node   // arena indexed by NodeID; slot 0 is the InvalidNode sentinel
	free   []NodeID // tombstone slots whose entry storage newNode recycles
	live   int      // number of live nodes
	root   NodeID
	height int // number of levels; 1 = root is a leaf
	size   int // number of stored objects

	// onTouch, when set, observes every node whose entry list or entry
	// MBRs change (including node creation and removal). The update /
	// cache-invalidation extension hangs off this hook.
	onTouch func(NodeID)
}

// SetTouchHook installs fn to observe node mutations; nil disables.
func (t *Tree) SetTouchHook(fn func(NodeID)) { t.onTouch = fn }

func (t *Tree) touch(id NodeID) {
	t.nodes[id].Gen++
	if t.onTouch != nil {
		t.onTouch(id)
	}
}

// New returns an empty tree with the given parameters.
func New(p Params) *Tree {
	t := &Tree{
		params: p.normalized(),
		nodes:  make([]Node, 1, 64), // slot 0 reserved for InvalidNode
	}
	root := t.newNode(0)
	t.root = root.ID
	t.height = 1
	return t
}

// newNode allocates the next arena slot. Entry storage is recycled from the
// free list when a deleted page left some behind. The returned pointer is
// valid until the next newNode call.
func (t *Tree) newNode(level int) *Node {
	var recycled []Entry
	if k := len(t.free); k > 0 {
		dead := t.free[k-1]
		t.free = t.free[:k-1]
		recycled = t.nodes[dead].Entries[:0]
		t.nodes[dead].Entries = nil
	}
	id := NodeID(len(t.nodes))
	t.nodes = append(t.nodes, Node{ID: id, Level: level, Entries: recycled})
	t.live++
	return &t.nodes[id]
}

// freeNode tombstones a slot: the id never resolves again, and the entry
// storage is parked on the free list for the next newNode. The caller must
// have copied out any entries it still needs.
func (t *Tree) freeNode(id NodeID) {
	t.nodes[id] = Node{Entries: t.nodes[id].Entries[:0]}
	t.free = append(t.free, id)
	t.live--
}

// node returns the arena slot for a live id. It is the trusted internal
// lookup: the id must be valid.
func (t *Tree) node(id NodeID) *Node {
	return &t.nodes[id]
}

// Root returns the id of the root node.
func (t *Tree) Root() NodeID { return t.root }

// RootEntry returns a synthetic entry referencing the root node, which is how
// query processing seeds its priority queue. The MBR covers the whole tree;
// for an empty tree it is the zero Rect.
func (t *Tree) RootEntry() Entry {
	root := t.node(t.root)
	e := Entry{Child: t.root}
	if len(root.Entries) > 0 {
		e.MBR = root.MBR()
	}
	return e
}

// Node returns the node with the given id, or false when no such page exists.
// Deleted ids keep failing forever (ids are never reused), which is the
// staleness check remainder queries over dangling client references rely on.
// The pointer is valid until the next tree mutation.
func (t *Tree) Node(id NodeID) (*Node, bool) {
	if id == InvalidNode || int(id) >= len(t.nodes) {
		return nil, false
	}
	n := &t.nodes[id]
	if n.ID != id { // tombstone
		return nil, false
	}
	return n, true
}

// Height returns the number of levels (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// Len returns the number of stored objects.
func (t *Tree) Len() int { return t.size }

// NodeCount returns the number of live index nodes.
func (t *Tree) NodeCount() int { return t.live }

// NodeSpan returns an exclusive upper bound on all NodeIDs ever issued.
// Callers use it to size dense per-node scratch structures (visited bitsets)
// indexed by NodeID.
func (t *Tree) NodeSpan() NodeID { return NodeID(len(t.nodes)) }

// Params returns the tree's normalized parameters.
func (t *Tree) Params() Params { return t.params }

// Nodes iterates over all live nodes in unspecified order.
func (t *Tree) Nodes(fn func(*Node) bool) {
	for i := 1; i < len(t.nodes); i++ {
		n := &t.nodes[i]
		if n.ID == InvalidNode {
			continue // tombstone
		}
		if !fn(n) {
			return
		}
	}
}

// parentEntryIndex locates the slot of child within parent's entry list.
func parentEntryIndex(parent *Node, child NodeID) int {
	for i, e := range parent.Entries {
		if e.Child == child {
			return i
		}
	}
	return -1
}

// adjustPathMBRs recomputes parent entry MBRs along the path from n to the
// root after n's entries changed.
func (t *Tree) adjustPathMBRs(n *Node) {
	for n.Parent != InvalidNode {
		parent := t.node(n.Parent)
		i := parentEntryIndex(parent, n.ID)
		if i < 0 {
			panic(fmt.Sprintf("rtree: node %d missing from parent %d", n.ID, parent.ID))
		}
		mbr := n.MBR()
		if parent.Entries[i].MBR == mbr {
			return // no change propagates further
		}
		parent.Entries[i].MBR = mbr
		t.touch(parent.ID)
		n = parent
	}
}
