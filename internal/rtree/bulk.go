package rtree

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// Item is an (object, rectangle) pair for bulk loading.
type Item struct {
	Obj ObjectID
	MBR geom.Rect
}

// BulkLoad builds a tree from items using Sort-Tile-Recursive packing.
// fill in (0,1] controls the page fill factor; the paper's R*-trees exhibit
// roughly 70% occupancy, so 0.7 reproduces their index sizes. A fill of 0
// defaults to 0.7.
func BulkLoad(p Params, items []Item, fill float64) *Tree {
	t := New(p)
	if len(items) == 0 {
		return t
	}
	if fill <= 0 {
		fill = 0.7
	}
	if fill > 1 {
		fill = 1
	}
	perNode := int(math.Round(float64(t.params.MaxEntries) * fill))
	if perNode < 2 {
		perNode = 2
	}

	entries := make([]Entry, len(items))
	for i, it := range items {
		entries[i] = Entry{MBR: it.MBR, Obj: it.Obj}
	}
	t.size = len(items)

	level := 0
	for {
		nodeIDs := t.packLevel(entries, level, perNode)
		if len(nodeIDs) == 1 {
			// Replace the initial empty root with the packed root.
			t.freeNode(t.root)
			t.root = nodeIDs[0]
			t.node(t.root).Parent = InvalidNode
			t.height = level + 1
			return t
		}
		next := make([]Entry, len(nodeIDs))
		for i, id := range nodeIDs {
			next[i] = Entry{MBR: t.node(id).MBR(), Child: id}
		}
		entries = next
		level++
	}
}

// packLevel tiles entries into nodes of the given level using STR: sort by
// x-center into vertical slabs, then each slab by y-center into runs of
// perNode entries.
func (t *Tree) packLevel(entries []Entry, level, perNode int) []NodeID {
	n := len(entries)
	pages := (n + perNode - 1) / perNode
	slabs := int(math.Ceil(math.Sqrt(float64(pages))))
	slabSize := slabs * perNode

	sort.SliceStable(entries, func(i, j int) bool {
		return entries[i].MBR.Center().X < entries[j].MBR.Center().X
	})

	var ids []NodeID
	for s := 0; s < n; s += slabSize {
		end := s + slabSize
		if end > n {
			end = n
		}
		slab := entries[s:end]
		sort.SliceStable(slab, func(i, j int) bool {
			return slab[i].MBR.Center().Y < slab[j].MBR.Center().Y
		})
		for o := 0; o < len(slab); o += perNode {
			oend := o + perNode
			if oend > len(slab) {
				oend = len(slab)
			}
			node := t.newNode(level)
			node.Entries = append(node.Entries, slab[o:oend]...)
			t.touch(node.ID)
			if level > 0 {
				id := node.ID
				for _, e := range node.Entries {
					t.node(e.Child).Parent = id
				}
			}
			ids = append(ids, node.ID)
		}
	}
	return ids
}
