package rtree

import (
	"cmp"
	"math"
	"slices"

	"repro/internal/geom"
)

// SplitEntries partitions entries into two groups using the R*-tree split
// algorithm: the split axis is chosen by minimum margin sum over all
// candidate distributions, the split index by minimum overlap area (ties by
// minimum total area). Each group receives at least minFill entries.
//
// It is exported because the paper reuses exactly this algorithm to build the
// binary partition trees of Section 4.2 ("the partitioning uses the R-tree
// node splitting algorithm to assure minimal overlap"), where minFill is 1.
func SplitEntries(entries []Entry, minFill int) (left, right []Entry) {
	sorted := append([]Entry(nil), entries...)
	k := NewSplitScratch(len(entries)).Split(sorted, minFill)
	// Fresh arrays for both halves: callers treat the groups as independent
	// entry storage for two nodes.
	left = sorted[:k:k]
	right = append([]Entry(nil), sorted[k:]...)
	return left, right
}

// SplitScratch holds the reusable buffers of the R*-tree split computation,
// letting a caller that splits many entry lists in a row (partition-tree
// construction, which recursively splits down to single entries) run the
// whole recursion with two rectangle buffers and one backup list instead of
// five fresh allocations per split.
type SplitScratch struct {
	prefix []geom.Rect
	suffix []geom.Rect
	orig   []Entry
}

// NewSplitScratch returns scratch sized for splitting up to n entries.
func NewSplitScratch(n int) *SplitScratch {
	return &SplitScratch{
		prefix: make([]geom.Rect, n),
		suffix: make([]geom.Rect, n),
		orig:   make([]Entry, n),
	}
}

// Split reorders entries in place so that entries[:k] and entries[k:] are
// the two groups the R*-tree split algorithm chooses, and returns k. The
// result is exactly SplitEntries' grouping: each axis evaluation stably
// sorts the ORIGINAL entry order (restored from the scratch backup), so tie
// handling matches the copying implementation bit for bit.
func (s *SplitScratch) Split(entries []Entry, minFill int) int {
	n := len(entries)
	if n < 2 {
		panic("rtree: SplitEntries needs at least two entries")
	}
	if minFill < 1 {
		minFill = 1
	}
	if minFill > n/2 {
		minFill = n / 2
	}
	if len(s.orig) < n {
		*s = *NewSplitScratch(n)
	}
	prefix, suffix := s.prefix[:n], s.suffix[:n]
	copy(s.orig, entries)

	// evalAxis evaluates one axis: entries sorted by (min, max) along the
	// axis, margin summed over all legal distributions. It leaves entries in
	// the axis ordering and prefix/suffix holding its running MBRs.
	evalAxis := func(byX bool) float64 {
		copy(entries, s.orig[:n])
		if byX {
			slices.SortStableFunc(entries, func(a, b Entry) int {
				if c := cmp.Compare(a.MBR.MinX, b.MBR.MinX); c != 0 {
					return c
				}
				return cmp.Compare(a.MBR.MaxX, b.MBR.MaxX)
			})
		} else {
			slices.SortStableFunc(entries, func(a, b Entry) int {
				if c := cmp.Compare(a.MBR.MinY, b.MBR.MinY); c != 0 {
					return c
				}
				return cmp.Compare(a.MBR.MaxY, b.MBR.MaxY)
			})
		}
		runningMBRsInto(prefix, suffix, entries)
		var marginSum float64
		for k := minFill; k <= n-minFill; k++ {
			marginSum += prefix[k-1].Margin() + suffix[k].Margin()
		}
		return marginSum
	}

	mx := evalAxis(true)
	my := evalAxis(false)
	if mx <= my {
		evalAxis(true) // re-sort by the winning axis
	}

	// Choose the split index on the winning axis ordering.
	bestK := minFill
	bestOverlap := math.Inf(1)
	bestArea := math.Inf(1)
	for k := minFill; k <= n-minFill; k++ {
		l, r := prefix[k-1], suffix[k]
		overlap := l.OverlapArea(r)
		area := l.Area() + r.Area()
		if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
			bestK, bestOverlap, bestArea = k, overlap, area
		}
	}
	return bestK
}

// runningMBRsInto fills prefix[i] = MBR of entries[0..i] and
// suffix[i] = MBR of entries[i..n-1].
func runningMBRsInto(prefix, suffix []geom.Rect, entries []Entry) {
	n := len(entries)
	prefix[0] = entries[0].MBR
	for i := 1; i < n; i++ {
		prefix[i] = prefix[i-1].Union(entries[i].MBR)
	}
	suffix[n-1] = entries[n-1].MBR
	for i := n - 2; i >= 0; i-- {
		suffix[i] = suffix[i+1].Union(entries[i].MBR)
	}
}
