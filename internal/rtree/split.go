package rtree

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// SplitEntries partitions entries into two groups using the R*-tree split
// algorithm: the split axis is chosen by minimum margin sum over all
// candidate distributions, the split index by minimum overlap area (ties by
// minimum total area). Each group receives at least minFill entries.
//
// It is exported because the paper reuses exactly this algorithm to build the
// binary partition trees of Section 4.2 ("the partitioning uses the R-tree
// node splitting algorithm to assure minimal overlap"), where minFill is 1.
func SplitEntries(entries []Entry, minFill int) (left, right []Entry) {
	n := len(entries)
	if n < 2 {
		panic("rtree: SplitEntries needs at least two entries")
	}
	if minFill < 1 {
		minFill = 1
	}
	if minFill > n/2 {
		minFill = n / 2
	}

	sorted := make([]Entry, n)

	// chooseAxis evaluates one axis: entries sorted by (min, max) along the
	// axis, margin summed over all legal distributions. Returns the margin
	// sum and leaves `sorted` holding the axis ordering.
	evalAxis := func(byX bool) float64 {
		copy(sorted, entries)
		sort.SliceStable(sorted, func(i, j int) bool {
			a, b := sorted[i].MBR, sorted[j].MBR
			if byX {
				if a.MinX != b.MinX {
					return a.MinX < b.MinX
				}
				return a.MaxX < b.MaxX
			}
			if a.MinY != b.MinY {
				return a.MinY < b.MinY
			}
			return a.MaxY < b.MaxY
		})
		var marginSum float64
		prefix, suffix := runningMBRs(sorted)
		for k := minFill; k <= n-minFill; k++ {
			marginSum += prefix[k-1].Margin() + suffix[k].Margin()
		}
		return marginSum
	}

	mx := evalAxis(true)
	my := evalAxis(false)
	if mx <= my {
		evalAxis(true) // re-sort by the winning axis
	}

	// Choose the split index on the winning axis ordering.
	prefix, suffix := runningMBRs(sorted)
	bestK := minFill
	bestOverlap := math.Inf(1)
	bestArea := math.Inf(1)
	for k := minFill; k <= n-minFill; k++ {
		l, r := prefix[k-1], suffix[k]
		overlap := l.OverlapArea(r)
		area := l.Area() + r.Area()
		if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
			bestK, bestOverlap, bestArea = k, overlap, area
		}
	}

	left = append([]Entry(nil), sorted[:bestK]...)
	right = append([]Entry(nil), sorted[bestK:]...)
	return left, right
}

// runningMBRs returns prefix[i] = MBR of entries[0..i] and
// suffix[i] = MBR of entries[i..n-1].
func runningMBRs(entries []Entry) (prefix, suffix []geom.Rect) {
	n := len(entries)
	prefix = make([]geom.Rect, n)
	suffix = make([]geom.Rect, n)
	prefix[0] = entries[0].MBR
	for i := 1; i < n; i++ {
		prefix[i] = prefix[i-1].Union(entries[i].MBR)
	}
	suffix[n-1] = entries[n-1].MBR
	for i := n - 2; i >= 0; i-- {
		suffix[i] = suffix[i+1].Union(entries[i].MBR)
	}
	return prefix, suffix
}
