package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// packedEqual reports whether two packed images are identical position by
// position, head by head.
func packedEqual(t *testing.T, a, b *Packed) {
	t.Helper()
	if len(a.heads) != len(b.heads) || len(a.rects) != len(b.rects) {
		t.Fatalf("image shape differs: %d/%d heads, %d/%d positions",
			len(a.heads), len(b.heads), len(a.rects), len(b.rects))
	}
	for id := range a.heads {
		if a.heads[id] != b.heads[id] {
			t.Fatalf("node %d: head %+v vs %+v", id, a.heads[id], b.heads[id])
		}
	}
	for i := range a.rects {
		if a.rects[i] != b.rects[i] || a.codes[i] != b.codes[i] ||
			a.right[i] != b.right[i] || a.parent[i] != b.parent[i] ||
			a.child[i] != b.child[i] || a.obj[i] != b.obj[i] ||
			a.minX[i] != b.minX[i] || a.minY[i] != b.minY[i] ||
			a.maxX[i] != b.maxX[i] || a.maxY[i] != b.maxY[i] {
			t.Fatalf("position %d differs between images", i)
		}
	}
}

// TestRepackMatchesPack pins the incremental repack to the from-scratch
// build: after any mix of inserts, deletes, and moves, Repack(t, prev) must
// produce exactly the image Pack(t) does — the span-copy fast path may not
// change a single byte of position data.
func TestRepackMatchesPack(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	items := randItems(r, 1500)
	tr := buildDynamic(t, items, Params{MaxEntries: 16})
	prev := Pack(tr)

	next := ObjectID(len(items) + 1)
	for round := 0; round < 5; round++ {
		// Mutate a slice of the tree so part of it is stale against prev.
		for i := 0; i < 120; i++ {
			j := r.Intn(len(items))
			switch r.Intn(3) {
			case 0: // move
				to := items[j].MBR.Union(geom.RectFromCenter(
					geom.Pt(r.Float64(), r.Float64()), 0.005, 0.005))
				if !tr.Delete(items[j].Obj, items[j].MBR) {
					t.Fatalf("round %d: delete %d failed", round, items[j].Obj)
				}
				tr.Insert(items[j].Obj, to)
				items[j].MBR = to
			case 1: // churn: delete then re-insert under a fresh id
				if !tr.Delete(items[j].Obj, items[j].MBR) {
					t.Fatalf("round %d: delete %d failed", round, items[j].Obj)
				}
				items[j].Obj = next
				next++
				tr.Insert(items[j].Obj, items[j].MBR)
			default: // grow
				it := Item{Obj: next, MBR: geom.RectFromCenter(
					geom.Pt(r.Float64(), r.Float64()), 0.003, 0.003)}
				next++
				tr.Insert(it.Obj, it.MBR)
				items = append(items, it)
			}
		}
		inc := Repack(tr, prev)
		full := Pack(tr)
		packedEqual(t, inc, full)
		prev = inc
	}
}

// TestRepackInternsCodes checks that the shared code table actually dedups:
// the same code at different positions must be the same string header, not a
// fresh allocation per position.
func TestRepackInternsCodes(t *testing.T) {
	if c := internCode([]byte("0110")); c != "0110" {
		t.Fatalf("internCode(0110) = %q", c)
	}
	// Canonical storage: interned lookups serve the table entries themselves.
	if internCode([]byte("1")) != internedCodes[2] {
		t.Fatal("code 1 not served from the intern table")
	}
	deep := make([]byte, internDepth+3)
	for i := range deep {
		deep[i] = '0' + byte(i%2)
	}
	if got := internCode(deep); got != string(deep) {
		t.Fatalf("deep code fallback: got %q want %q", got, deep)
	}
}
