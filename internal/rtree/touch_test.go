package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// snapshotEntries deep-copies every live node's entry list.
func snapshotEntries(t *Tree) map[NodeID][]Entry {
	snap := make(map[NodeID][]Entry, t.NodeCount())
	t.Nodes(func(n *Node) bool {
		snap[n.ID] = append([]Entry(nil), n.Entries...)
		return true
	})
	return snap
}

func entriesEqual(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTouchHookCoversAllMutations: every node whose entry list changed
// during an operation must be reported by the hook — the soundness property
// the invalidation protocol depends on.
func TestTouchHookCoversAllMutations(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	tr := New(Params{MaxEntries: 8})
	live := make(map[ObjectID]geom.Rect)
	next := ObjectID(1)

	for op := 0; op < 1500; op++ {
		before := snapshotEntries(tr)
		touched := make(map[NodeID]bool)
		tr.SetTouchHook(func(id NodeID) { touched[id] = true })

		if len(live) == 0 || r.Intn(3) > 0 {
			mbr := geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01)
			tr.Insert(next, mbr)
			live[next] = mbr
			next++
		} else {
			var id ObjectID
			for k := range live {
				id = k
				break
			}
			tr.Delete(id, live[id])
			delete(live, id)
		}
		tr.SetTouchHook(nil)

		// Changed, created, or removed nodes must all be in the touched set.
		for id, oldEntries := range before {
			n, exists := tr.Node(id)
			switch {
			case !exists:
				if !touched[id] {
					t.Fatalf("op %d: removed node %d not touched", op, id)
				}
			case !entriesEqual(oldEntries, n.Entries):
				if !touched[id] {
					t.Fatalf("op %d: changed node %d not touched", op, id)
				}
			}
		}
		tr.Nodes(func(n *Node) bool {
			if _, existed := before[n.ID]; !existed && !touched[n.ID] {
				t.Fatalf("op %d: new node %d not touched", op, n.ID)
			}
			return true
		})
	}
}

// TestTouchHookSilentOnReads: queries must not report mutations.
func TestTouchHookSilentOnReads(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	tr := New(Params{MaxEntries: 8})
	for i := 0; i < 300; i++ {
		tr.Insert(ObjectID(i+1), geom.RectFromCenter(geom.Pt(r.Float64(), r.Float64()), 0.01, 0.01))
	}
	fired := 0
	tr.SetTouchHook(func(NodeID) { fired++ })
	tr.RangeQuery(geom.R(0.2, 0.2, 0.8, 0.8))
	tr.KNN(geom.Pt(0.5, 0.5), 10)
	tr.DistanceWithin(geom.Pt(0.5, 0.5), 0.1)
	if fired != 0 {
		t.Errorf("read operations fired the touch hook %d times", fired)
	}
}
