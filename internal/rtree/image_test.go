package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// mutatedTree builds a tree with a history of inserts and deletes so the
// arena carries tombstones, a non-trivial free list, and advanced Gen
// counters — everything an image must preserve exactly.
func mutatedTree(seed int64) *Tree {
	rng := rand.New(rand.NewSource(seed))
	t := New(Params{MaxEntries: 8})
	type obj struct {
		id ObjectID
		r  geom.Rect
	}
	var livePool []obj
	next := ObjectID(1)
	for i := 0; i < 600; i++ {
		if len(livePool) > 50 && rng.Float64() < 0.35 {
			j := rng.Intn(len(livePool))
			o := livePool[j]
			livePool[j] = livePool[len(livePool)-1]
			livePool = livePool[:len(livePool)-1]
			if !t.Delete(o.id, o.r) {
				panic("delete of a live object failed")
			}
			continue
		}
		x, y := rng.Float64(), rng.Float64()
		r := geom.Rect{MinX: x, MinY: y, MaxX: x + 0.01, MaxY: y + 0.01}
		t.Insert(next, r)
		livePool = append(livePool, obj{next, r})
		next++
	}
	return t
}

// sameTree compares every piece of state the image round-trips, tolerating
// only the nil-vs-empty entry-slice difference of reconstructed tombstones
// (their recycled capacity is a performance detail, not state).
func sameTree(t *testing.T, a, b *Tree) {
	t.Helper()
	if a.params != b.params {
		t.Fatalf("params %+v != %+v", a.params, b.params)
	}
	if a.root != b.root || a.height != b.height || a.size != b.size || a.live != b.live {
		t.Fatalf("header (root %d h %d size %d live %d) != (root %d h %d size %d live %d)",
			a.root, a.height, a.size, a.live, b.root, b.height, b.size, b.live)
	}
	if len(a.nodes) != len(b.nodes) {
		t.Fatalf("span %d != %d", len(a.nodes), len(b.nodes))
	}
	if len(a.free) != len(b.free) {
		t.Fatalf("free list length %d != %d", len(a.free), len(b.free))
	}
	for i := range a.free {
		if a.free[i] != b.free[i] {
			t.Fatalf("free[%d]: %d != %d", i, a.free[i], b.free[i])
		}
	}
	for i := range a.nodes {
		na, nb := &a.nodes[i], &b.nodes[i]
		if na.ID != nb.ID {
			t.Fatalf("slot %d: id %d != %d", i, na.ID, nb.ID)
		}
		if na.ID == InvalidNode {
			continue // tombstone/sentinel: only the gap matters
		}
		if na.Level != nb.Level || na.Parent != nb.Parent || na.Gen != nb.Gen {
			t.Fatalf("node %d: (level %d parent %d gen %d) != (level %d parent %d gen %d)",
				na.ID, na.Level, na.Parent, na.Gen, nb.Level, nb.Parent, nb.Gen)
		}
		if len(na.Entries) != len(nb.Entries) {
			t.Fatalf("node %d: %d entries != %d", na.ID, len(na.Entries), len(nb.Entries))
		}
		for j := range na.Entries {
			if na.Entries[j] != nb.Entries[j] {
				t.Fatalf("node %d entry %d: %+v != %+v", na.ID, j, na.Entries[j], nb.Entries[j])
			}
		}
	}
}

func TestImageRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		tr := mutatedTree(seed)
		if err := tr.Validate(false); err != nil {
			t.Fatalf("seed %d: source tree invalid: %v", seed, err)
		}
		img := tr.AppendImage(nil)
		got, err := ReadImage(img)
		if err != nil {
			t.Fatalf("seed %d: ReadImage: %v", seed, err)
		}
		sameTree(t, tr, got)
		if err := got.Validate(false); err != nil {
			t.Fatalf("seed %d: restored tree invalid: %v", seed, err)
		}
		// A restored tree must keep mutating exactly like the original:
		// recycle the same free slots, allocate the same fresh ids.
		for i := 0; i < 64; i++ {
			id := ObjectID(1 << 20)
			r := geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2}
			tr.Insert(id+ObjectID(i), r)
			got.Insert(id+ObjectID(i), r)
		}
		sameTree(t, tr, got)
	}
}

func TestImageRoundTripBulk(t *testing.T) {
	items := make([]Item, 500)
	rng := rand.New(rand.NewSource(9))
	for i := range items {
		x, y := rng.Float64(), rng.Float64()
		items[i] = Item{Obj: ObjectID(i + 1), MBR: geom.Rect{MinX: x, MinY: y, MaxX: x, MaxY: y}}
	}
	tr := BulkLoad(Params{MaxEntries: 16}, items, 0.7)
	got, err := ReadImage(tr.AppendImage(nil))
	if err != nil {
		t.Fatal(err)
	}
	sameTree(t, tr, got)
}

func TestImageEmptyTree(t *testing.T) {
	tr := New(Params{MaxEntries: 8})
	got, err := ReadImage(tr.AppendImage(nil))
	if err != nil {
		t.Fatal(err)
	}
	sameTree(t, tr, got)
}

// TestImageRejectsMalformed flips, truncates, and extends image bytes: every
// corruption must come back as an error or a still-consistent tree — never a
// panic (checkpoint files are read back after crashes, possibly torn).
func TestImageRejectsMalformed(t *testing.T) {
	img := mutatedTree(4).AppendImage(nil)
	if _, err := ReadImage(nil); err == nil {
		t.Error("nil image decoded")
	}
	if _, err := ReadImage([]byte{99}); err == nil {
		t.Error("bad version decoded")
	}
	for cut := 1; cut < len(img); cut += 97 {
		if _, err := ReadImage(img[:cut]); err == nil {
			// Some truncations can still parse when they land on a
			// boundary; the decode must simply not panic. But a cut that
			// drops live nodes must fail the span check.
			if cut < len(img)/2 {
				t.Errorf("truncation at %d decoded without error", cut)
			}
		}
	}
	for i := 0; i < len(img); i += 53 {
		mut := append([]byte(nil), img...)
		mut[i] ^= 0x40
		_, _ = ReadImage(mut) // must not panic; error or not
	}
	if _, err := ReadImage(append(append([]byte(nil), img...), 0)); err == nil {
		t.Error("trailing byte decoded")
	}
}
