package elastic

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/metrics"
)

// fakeCluster scripts a topology: slots, sibling pairs, and counters the
// tests can set directly.
type fakeCluster struct {
	live     []int
	siblings map[int]int // t -> s (and s -> t)
	stats    *metrics.ClusterStats
	nextSlot int

	splitErr error
	splits   []int
	merges   [][2]int
}

func newFakeCluster(n int) *fakeCluster {
	f := &fakeCluster{
		siblings: map[int]int{},
		stats:    metrics.NewClusterStats(n),
		nextSlot: n,
	}
	for s := 0; s < n; s++ {
		f.live = append(f.live, s)
	}
	return f
}

func (f *fakeCluster) LiveShards() []int { return append([]int(nil), f.live...) }
func (f *fakeCluster) SiblingOf(s int) (int, bool) {
	t, ok := f.siblings[s]
	return t, ok
}
func (f *fakeCluster) Stats() *metrics.ClusterStats { return f.stats }

func (f *fakeCluster) SplitShard(s int) error {
	if f.splitErr != nil {
		return f.splitErr
	}
	t := f.nextSlot
	f.nextSlot++
	f.live = append(f.live, t)
	f.siblings[s], f.siblings[t] = t, s
	f.stats.Grow(t + 1)
	// Halve the gauge like a real split would.
	half := f.stats.Shard(s).Objects.Load() / 2
	f.stats.Shard(s).Objects.Add(-half)
	f.stats.Shard(t).Objects.Store(half)
	f.splits = append(f.splits, s)
	return nil
}

func (f *fakeCluster) MergeShards(s, t int) error {
	if f.siblings[t] != s {
		return fmt.Errorf("fake: %d and %d not siblings", s, t)
	}
	out := f.live[:0]
	for _, x := range f.live {
		if x != t {
			out = append(out, x)
		}
	}
	f.live = out
	delete(f.siblings, s)
	delete(f.siblings, t)
	f.stats.Shard(s).Objects.Add(f.stats.Shard(t).Objects.Load())
	f.stats.Shard(t).Objects.Store(0)
	f.merges = append(f.merges, [2]int{s, t})
	return nil
}

func TestRebalancerConfigValidation(t *testing.T) {
	f := newFakeCluster(2)
	if _, err := New(nil, Config{SplitObjects: 10}); err == nil {
		t.Fatal("nil cluster accepted")
	}
	if _, err := New(f, Config{}); err == nil {
		t.Fatal("no split trigger accepted")
	}
	if _, err := New(f, Config{SplitObjects: 100, MergeObjects: 80}); err == nil {
		t.Fatal("flapping MergeObjects accepted")
	}
	if _, err := New(f, Config{SplitQPS: 100, MergeQPS: 80}); err == nil {
		t.Fatal("flapping MergeQPS accepted")
	}
	if _, err := New(f, Config{SplitObjects: 100, MergeObjects: 20, SplitQPS: 50, MergeQPS: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestRebalancerSplitsOnObjects(t *testing.T) {
	f := newFakeCluster(2)
	f.stats.Shard(0).Objects.Store(90)
	f.stats.Shard(1).Objects.Store(500)
	var events []Event
	rb, err := New(f, Config{
		SplitObjects: 200,
		Cooldown:     10 * time.Second,
		OnEvent:      func(ev Event) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	if err := rb.Step(now); err != nil {
		t.Fatal(err)
	}
	if len(f.splits) != 1 || f.splits[0] != 1 {
		t.Fatalf("splits = %v, want [1]", f.splits)
	}
	if len(events) != 1 || events[0].Kind != "split" || events[0].Shard != 1 || events[0].Objects != 500 {
		t.Fatalf("events = %+v", events)
	}
	// Inside the cooldown nothing else happens, even though shard 1 halved
	// to 250 and still sits over the trigger.
	if err := rb.Step(now.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(f.splits) != 1 {
		t.Fatalf("cooldown violated: splits = %v", f.splits)
	}
	// After the cooldown the remaining pressure splits again.
	if err := rb.Step(now.Add(11 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(f.splits) != 2 {
		t.Fatalf("splits = %v, want two", f.splits)
	}
	if rb.Splits() != 2 {
		t.Fatalf("Splits() = %d", rb.Splits())
	}
}

func TestRebalancerQPSTriggerAndGauge(t *testing.T) {
	f := newFakeCluster(2)
	rb, err := New(f, Config{SplitQPS: 100, Cooldown: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(2000, 0)
	// First tick only baselines the counters.
	if err := rb.Step(now); err != nil {
		t.Fatal(err)
	}
	if len(f.splits) != 0 {
		t.Fatal("split without any rate measured")
	}
	// 2000 sub-queries in 10 seconds = 200 qps on shard 0.
	f.stats.Shard(0).SubQueries.Add(2000)
	f.stats.Shard(1).SubQueries.Add(100)
	if err := rb.Step(now.Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(f.splits) != 1 || f.splits[0] != 0 {
		t.Fatalf("splits = %v, want [0]", f.splits)
	}
	if got := f.stats.Shard(0).QPSMilli.Load(); got != 200_000 {
		t.Fatalf("QPSMilli gauge = %d, want 200000", got)
	}
	if got := f.stats.Shard(1).QPSMilli.Load(); got != 10_000 {
		t.Fatalf("QPSMilli gauge = %d, want 10000", got)
	}
}

func TestRebalancerMergesColdSiblings(t *testing.T) {
	f := newFakeCluster(2)
	f.stats.Shard(0).Objects.Store(600)
	rb, err := New(f, Config{SplitObjects: 500, MergeObjects: 100, Cooldown: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(3000, 0)
	if err := rb.Step(now); err != nil {
		t.Fatal(err)
	}
	if len(f.splits) != 1 {
		t.Fatalf("splits = %v", f.splits)
	}
	// The split pair (0, 2) cools down to a combined 60 objects: merge.
	f.stats.Shard(0).Objects.Store(30)
	f.stats.Shard(2).Objects.Store(30)
	if err := rb.Step(now.Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(f.merges) != 1 || f.merges[0] != [2]int{0, 2} {
		t.Fatalf("merges = %v, want [[0 2]]", f.merges)
	}
	if rb.Merges() != 1 {
		t.Fatalf("Merges() = %d", rb.Merges())
	}
	// Nothing left to do: pair retired, shard 1 empty but rootless sibling.
	if err := rb.Step(now.Add(4 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(f.merges) != 1 || len(f.splits) != 1 {
		t.Fatalf("extra ops: splits=%v merges=%v", f.splits, f.merges)
	}
}

func TestRebalancerMinShardsFloor(t *testing.T) {
	f := newFakeCluster(2)
	f.siblings[0], f.siblings[1] = 1, 0 // root pair, mergeable
	rb, err := New(f, Config{SplitObjects: 1 << 40, MergeObjects: 100, MinShards: 2, Cooldown: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := rb.Step(time.Unix(4000, 0)); err != nil {
		t.Fatal(err)
	}
	if len(f.merges) != 0 {
		t.Fatalf("merged below MinShards: %v", f.merges)
	}
}

func TestRebalancerSurfacesErrors(t *testing.T) {
	f := newFakeCluster(1)
	f.stats.Shard(0).Objects.Store(1000)
	f.splitErr = errors.New("boom")
	var events []Event
	rb, err := New(f, Config{SplitObjects: 100, OnEvent: func(ev Event) { events = append(events, ev) }})
	if err != nil {
		t.Fatal(err)
	}
	if err := rb.Step(time.Unix(5000, 0)); err == nil {
		t.Fatal("split error swallowed")
	}
	if len(events) != 1 || events[0].Err == nil {
		t.Fatalf("events = %+v", events)
	}
	if rb.Splits() != 0 {
		t.Fatal("failed split counted")
	}
}
