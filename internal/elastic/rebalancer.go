// Package elastic implements the load-driven rebalancer over the cluster's
// online split/merge primitives: it watches per-shard object counts and
// sub-query rates, splits shards that run hot, and folds cold sibling pairs
// back together (docs/ELASTIC.md).
//
// The rebalancer is deliberately a policy layer only — every mechanism
// (split plane selection, bulk transfer, the epoch-fenced cutover) lives in
// internal/cluster, so the same policies drive an in-process cluster, the
// prodb facade, and tests with a scripted fake.
package elastic

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/metrics"
)

// Cluster is the topology surface the rebalancer drives. cluster.InProcess
// and the repro.ClusterServer facade implement it.
type Cluster interface {
	// LiveShards returns the slots currently owning a region.
	LiveShards() []int
	// SiblingOf returns s's KD sibling when both are mergeable leaves.
	SiblingOf(s int) (int, bool)
	// SplitShard splits s online into itself and a fresh slot.
	SplitShard(s int) error
	// MergeShards folds t back into its sibling s and retires t.
	MergeShards(s, t int) error
	// Stats exposes the router counters the decisions read (Objects,
	// SubQueries) and the QPSMilli gauge the rebalancer writes back.
	Stats() *metrics.ClusterStats
}

// Config tunes the rebalancer. The zero value is not runnable: at least one
// split trigger (SplitObjects or SplitQPS) must be positive.
type Config struct {
	// SplitObjects splits a shard whose object count reaches it (0 disables
	// the size trigger).
	SplitObjects int64
	// SplitQPS splits a shard whose sub-query rate (per second, over the
	// rebalancer's own tick window) reaches it (0 disables the rate trigger).
	SplitQPS float64

	// MergeObjects and MergeQPS fold a sibling leaf pair whose combined
	// object count AND combined rate sit below both (0 disables merging).
	// Keep them well under the split thresholds: a merge flushes every
	// client, so the bands between merge and split are the hysteresis that
	// prevents flapping. Values above half the split thresholds are rejected
	// — a merged pair would immediately re-trigger a split.
	MergeObjects int64
	MergeQPS     float64

	// MinShards and MaxShards bound the live shard count (defaults 1 and
	// cluster.MaxShards-ish 255; merging stops at MinShards, splitting at
	// MaxShards).
	MinShards int
	MaxShards int

	// Cooldown is the minimum time between topology operations (default 5s).
	// Splits and merges move data and — for merges — flush clients; the
	// cooldown keeps the rebalancer from thrashing while gauges settle.
	Cooldown time.Duration

	// Interval is Run's tick period (default 1s). Step may also be called
	// manually at any cadence; rates are computed from real elapsed time.
	Interval time.Duration

	// OnEvent, when set, receives every attempted topology operation.
	OnEvent func(Event)
}

// Event describes one attempted topology operation.
type Event struct {
	Kind    string // "split" or "merge"
	Shard   int    // the shard split, or the merge survivor
	Target  int    // the merge victim (unset for splits)
	Objects int64  // trigger reading: shard objects (split) or combined (merge)
	QPS     float64
	Err     error // nil on success
}

// Rebalancer drives one Cluster. Not safe for concurrent Step calls; Run
// serializes them on one goroutine.
type Rebalancer struct {
	cfg Config
	cl  Cluster

	lastTick time.Time
	lastSub  map[int]int64 // per-shard SubQueries at the previous tick
	qps      map[int]float64
	lastOp   time.Time

	splits, merges int
}

// New validates cfg and builds a rebalancer.
func New(cl Cluster, cfg Config) (*Rebalancer, error) {
	if cl == nil {
		return nil, errors.New("elastic: Cluster is required")
	}
	if cfg.SplitObjects <= 0 && cfg.SplitQPS <= 0 {
		return nil, errors.New("elastic: at least one split trigger (SplitObjects or SplitQPS) must be positive")
	}
	if cfg.SplitObjects > 0 && cfg.MergeObjects > cfg.SplitObjects/2 {
		return nil, fmt.Errorf("elastic: MergeObjects %d above half of SplitObjects %d would flap", cfg.MergeObjects, cfg.SplitObjects)
	}
	if cfg.SplitQPS > 0 && cfg.MergeQPS > cfg.SplitQPS/2 {
		return nil, fmt.Errorf("elastic: MergeQPS %g above half of SplitQPS %g would flap", cfg.MergeQPS, cfg.SplitQPS)
	}
	if cfg.MinShards <= 0 {
		cfg.MinShards = 1
	}
	if cfg.MaxShards <= 0 {
		cfg.MaxShards = 255
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	return &Rebalancer{
		cfg:     cfg,
		cl:      cl,
		lastSub: make(map[int]int64),
		qps:     make(map[int]float64),
	}, nil
}

// Splits and Merges report how many operations this rebalancer has executed
// successfully.
func (rb *Rebalancer) Splits() int { return rb.splits }
func (rb *Rebalancer) Merges() int { return rb.merges }

// Step takes one decision at the given instant: refresh per-shard rates,
// then execute at most one topology operation — the hottest shard over a
// split trigger, else the coldest sibling pair under both merge thresholds.
// One operation per step keeps each cutover's gauge movement observable
// before the next decision.
func (rb *Rebalancer) Step(now time.Time) error {
	live := rb.cl.LiveShards()
	stats := rb.cl.Stats()
	rb.tickRates(now, live, stats)

	if !rb.lastOp.IsZero() && now.Sub(rb.lastOp) < rb.cfg.Cooldown {
		return nil
	}

	// Split: pick the live shard most over its trigger, scored by how far
	// past either threshold it sits.
	if len(live) < rb.cfg.MaxShards {
		best, bestScore := -1, 1.0
		for _, s := range live {
			score := rb.pressure(stats.Shard(s).Objects.Load(), rb.qps[s])
			if score > bestScore {
				best, bestScore = s, score
			}
		}
		if best >= 0 {
			objs, q := stats.Shard(best).Objects.Load(), rb.qps[best]
			err := rb.cl.SplitShard(best)
			rb.finishOp(now, Event{Kind: "split", Shard: best, Objects: objs, QPS: q, Err: err})
			if err == nil {
				rb.splits++
			}
			return err
		}
	}

	// Merge: the coldest sibling pair with both combined readings under the
	// merge thresholds. Merging flushes clients, so only clearly cold pairs
	// qualify and only one merges per step.
	if rb.cfg.MergeObjects > 0 || rb.cfg.MergeQPS > 0 {
		bestS, bestT, bestLoad := -1, -1, 0.0
		for _, t := range live {
			s, ok := rb.cl.SiblingOf(t)
			if !ok || s == t {
				continue
			}
			objs := stats.Shard(s).Objects.Load() + stats.Shard(t).Objects.Load()
			q := rb.qps[s] + rb.qps[t]
			if rb.cfg.MergeObjects > 0 && objs > rb.cfg.MergeObjects {
				continue
			}
			if rb.cfg.MergeQPS > 0 && q > rb.cfg.MergeQPS {
				continue
			}
			load := float64(objs) + q
			if bestS < 0 || load < bestLoad {
				// Retire the younger slot: merging into the longer-lived
				// sibling keeps region churn local to the pair either way.
				if t < s {
					s, t = t, s
				}
				bestS, bestT, bestLoad = s, t, load
			}
		}
		if bestS >= 0 && len(live) > rb.cfg.MinShards {
			objs := stats.Shard(bestS).Objects.Load() + stats.Shard(bestT).Objects.Load()
			q := rb.qps[bestS] + rb.qps[bestT]
			err := rb.cl.MergeShards(bestS, bestT)
			rb.finishOp(now, Event{Kind: "merge", Shard: bestS, Target: bestT, Objects: objs, QPS: q, Err: err})
			if err == nil {
				rb.merges++
			}
			return err
		}
	}
	return nil
}

// pressure scores a shard against the split triggers: >1 means some trigger
// fired, and the magnitude ranks candidates.
func (rb *Rebalancer) pressure(objects int64, qps float64) float64 {
	score := 0.0
	if rb.cfg.SplitObjects > 0 {
		score = float64(objects) / float64(rb.cfg.SplitObjects)
	}
	if rb.cfg.SplitQPS > 0 {
		if s := qps / rb.cfg.SplitQPS; s > score {
			score = s
		}
	}
	return score
}

// tickRates refreshes the per-shard sub-query rates from counter deltas and
// publishes them through the QPSMilli gauges (what prodb -stats renders).
func (rb *Rebalancer) tickRates(now time.Time, live []int, stats *metrics.ClusterStats) {
	dt := now.Sub(rb.lastTick).Seconds()
	first := rb.lastTick.IsZero()
	rb.lastTick = now
	for _, s := range live {
		sub := stats.Shard(s).SubQueries.Load()
		if !first && dt > 0 {
			if prev, ok := rb.lastSub[s]; ok {
				rb.qps[s] = float64(sub-prev) / dt
				stats.Shard(s).QPSMilli.Store(int64(rb.qps[s] * 1000))
			}
		}
		rb.lastSub[s] = sub
	}
}

func (rb *Rebalancer) finishOp(now time.Time, ev Event) {
	if ev.Err == nil {
		rb.lastOp = now
	}
	if rb.cfg.OnEvent != nil {
		rb.cfg.OnEvent(ev)
	}
}

// Run ticks Step every cfg.Interval until stop closes. Step errors are
// reported through OnEvent (they carry the failed operation); Run itself
// only stops on stop.
func (rb *Rebalancer) Run(stop <-chan struct{}) {
	ticker := time.NewTicker(rb.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-ticker.C:
			_ = rb.Step(now)
		}
	}
}
