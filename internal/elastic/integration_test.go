package elastic_test

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/elastic"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// TestRebalancerOverInProcess drives the real cluster: skewed growth in one
// corner pushes that shard over the object trigger and the rebalancer splits
// it; deleting the hotspot cools the pair and the rebalancer merges it back.
func TestRebalancerOverInProcess(t *testing.T) {
	objs := dataset.GenerateNE(dataset.Params{N: 1200, Seed: 9}).Objects
	sizes := make(map[rtree.ObjectID]int, len(objs))
	for _, o := range objs {
		sizes[o.ID] = o.Size
	}
	p, err := cluster.NewInProcess(objs, cluster.InProcessConfig{
		Shards: 2,
		Tree:   rtree.Params{MaxEntries: 16},
		Sizer:  func(id rtree.ObjectID) int { return sizes[id] },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var events []elastic.Event
	rb, err := elastic.New(p, elastic.Config{
		SplitObjects: 1500,
		MergeObjects: 700,
		Cooldown:     time.Millisecond,
		OnEvent:      func(ev elastic.Event) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(10000, 0)
	step := func() {
		t.Helper()
		now = now.Add(time.Second)
		if err := rb.Step(now); err != nil {
			t.Fatal(err)
		}
	}

	step() // below every trigger: nothing happens
	if len(p.LiveShards()) != 2 {
		t.Fatalf("premature topology change: %v", p.LiveShards())
	}

	// Skewed growth: 1200 inserts into one corner. Whichever shard owns the
	// corner crosses the 1500-object trigger.
	hot := p.Router.Partition().Locate(geom.Pt(0.05, 0.05))
	var hotIDs []rtree.ObjectID
	for i := 0; i < 1200; i += 100 {
		ops := make([]wire.UpdateOp, 0, 100)
		for j := 0; j < 100; j++ {
			id := rtree.ObjectID(1<<22 + i + j)
			rc := geom.RectFromCenter(geom.Pt(0.02+0.0001*float64(i+j), 0.02), 0.001, 0.001)
			ops = append(ops, wire.UpdateOp{Kind: wire.UpdateInsert, Obj: id, To: rc, Size: 64})
			hotIDs = append(hotIDs, id)
		}
		if _, err := p.Router.RoundTrip(&wire.Request{Client: 1, Updates: ops}); err != nil {
			t.Fatal(err)
		}
	}

	step()
	if len(p.LiveShards()) != 3 {
		t.Fatalf("no split after skewed growth: live=%v events=%+v", p.LiveShards(), events)
	}
	if len(events) != 1 || events[0].Kind != "split" || events[0].Shard != hot {
		t.Fatalf("events = %+v, want one split of shard %d", events, hot)
	}

	// Query routing still correct after the split.
	resp, err := p.Router.RoundTrip(&wire.Request{Client: 2, Q: query.NewRange(geom.R(-1, -1, 2, 2)), NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Objects) != 1200+1200 {
		t.Fatalf("full range sees %d objects, want %d", len(resp.Objects), 2400)
	}

	// Cool the hotspot down: delete the skewed inserts; the split pair's
	// combined count falls under MergeObjects and the pair folds back.
	for i := 0; i < len(hotIDs); i += 100 {
		ops := make([]wire.UpdateOp, 0, 100)
		for _, id := range hotIDs[i : i+100] {
			rc := geom.RectFromCenter(geom.Pt(0.02+0.0001*float64(int(id)-1<<22), 0.02), 0.001, 0.001)
			ops = append(ops, wire.UpdateOp{Kind: wire.UpdateDelete, Obj: id, From: rc})
		}
		resp, err := p.Router.RoundTrip(&wire.Request{Client: 1, Updates: ops})
		if err != nil {
			t.Fatal(err)
		}
		for j, ok := range resp.UpdateResults {
			if !ok {
				t.Fatalf("delete %d of chunk at %d missed", j, i)
			}
		}
	}

	step()
	if len(p.LiveShards()) != 2 {
		t.Fatalf("no merge after cooldown: live=%v events=%+v", p.LiveShards(), events)
	}
	last := events[len(events)-1]
	if last.Kind != "merge" || last.Err != nil {
		t.Fatalf("last event = %+v, want clean merge", last)
	}

	resp, err = p.Router.RoundTrip(&wire.Request{Client: 2, Q: query.NewRange(geom.R(-1, -1, 2, 2)), NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Objects) != 1200 {
		t.Fatalf("full range sees %d objects after merge, want 1200", len(resp.Objects))
	}
}
