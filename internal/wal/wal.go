// Package wal is the per-shard durability layer: a write-ahead log of the
// update batches a shard's snapshot writer actually applied, plus an
// atomically replaced checkpoint file holding a full tree image. A shard
// appends one CRC-framed record per published batch — group commit, one
// fsync per batch, never on the query path — and on restart replays
// checkpoint + log tail to resume with the identical arena, epochs, and
// NodeIDs it crashed with (docs/DURABILITY.md).
//
// Record framing is [length u32le][crc32 u32le][payload]: the length bounds
// the read, the CRC (Castagnoli, over the payload) rejects torn or corrupt
// tails. Recovery stops silently at the first frame that fails either test —
// a torn tail is the normal crash artifact, not an error — but refuses logs
// whose surviving records do not chain gaplessly from the checkpoint epoch.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/wire"
)

// File layout inside a shard's WAL directory.
const (
	logName  = "wal.log"
	ckptName = "checkpoint"
	tmpName  = "checkpoint.tmp"
)

const frameHeader = 8 // u32 length + u32 crc

// crcTable is Castagnoli, the CRC32 polynomial with hardware support.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a log.
type Options struct {
	// CheckpointBytes is the log size past which ShouldCheckpoint reports
	// true; default 1 MiB. Checkpoint cost is proportional to tree size,
	// replay cost to log size — this knob trades one against the other.
	CheckpointBytes int64
	// NoSync skips fsync on append and checkpoint (tests, throwaway runs).
	NoSync bool
}

// Record is one recovered log record: the operations of one applied batch
// and the epoch the shard was at before applying them.
type Record struct {
	EpochBefore uint64
	Ops         []wire.UpdateOp
}

// Recovery is what Open found on disk: the newest checkpoint (nil when none
// was ever written) and the log records that follow it.
type Recovery struct {
	// Checkpoint is the opaque payload handed to Log.Checkpoint (the server
	// layer serializes its tree + extras into it). Nil means cold start.
	Checkpoint []byte
	// CheckpointEpoch is the epoch the checkpoint captured.
	CheckpointEpoch uint64
	// Tail are the records to replay on top, in append order. The first
	// record's EpochBefore equals CheckpointEpoch and each next record
	// continues where the previous left off.
	Tail []Record
}

// Log is one shard's write-ahead log. Append/ShouldCheckpoint/Checkpoint are
// called from the shard's single writer goroutine; Log does no locking.
type Log struct {
	dir  string
	opts Options

	f        *os.File // wal.log, opened for append
	logBytes int64

	// lastEpoch is the epoch after the newest appended (or recovered)
	// record; Checkpoint refuses to truncate past it.
	lastEpoch uint64
	hasEpoch  bool

	recovered Recovery

	frame []byte // scratch for one framed record
}

// Open opens (creating if needed) the WAL in dir, scans any existing
// checkpoint and log into Recovered(), and leaves the log ready for appends.
func Open(dir string, opts Options) (*Log, error) {
	if opts.CheckpointBytes <= 0 {
		opts.CheckpointBytes = 1 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts}

	ckpt, err := os.ReadFile(filepath.Join(dir, ckptName))
	switch {
	case err == nil:
		epoch, payload, derr := decodeCheckpoint(ckpt)
		if derr != nil {
			return nil, fmt.Errorf("wal: checkpoint in %s: %w", dir, derr)
		}
		l.recovered.Checkpoint = payload
		l.recovered.CheckpointEpoch = epoch
		l.lastEpoch, l.hasEpoch = epoch, true
	case errors.Is(err, os.ErrNotExist):
		// Cold start.
	default:
		return nil, fmt.Errorf("wal: %w", err)
	}

	logPath := filepath.Join(dir, logName)
	valid := 0
	if data, err := os.ReadFile(logPath); err == nil && len(data) > 0 {
		var recs []Record
		recs, valid = DecodeRecords(data)
		tail, lastEpoch, err := chainFrom(recs, l.recovered.CheckpointEpoch, l.recovered.Checkpoint != nil)
		if err != nil {
			return nil, fmt.Errorf("wal: log in %s: %w", dir, err)
		}
		l.recovered.Tail = tail
		if len(tail) > 0 {
			l.lastEpoch, l.hasEpoch = lastEpoch, true
		}
	} else if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("wal: %w", err)
	}

	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	// Drop any torn tail before appending: a new record written after torn
	// bytes would be unreachable to the next recovery scan.
	if st, err := f.Stat(); err == nil && st.Size() > int64(valid) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: drop torn tail: %w", err)
		}
	}
	l.logBytes = int64(valid)
	l.f = f
	return l, nil
}

// chainFrom filters decoded records down to the replay tail: records from
// before the checkpoint (leftovers of a crash between checkpoint write and
// log truncation) are skipped, and the survivors must continue gaplessly
// from the checkpoint epoch.
func chainFrom(recs []Record, ckptEpoch uint64, hasCkpt bool) ([]Record, uint64, error) {
	next := ckptEpoch
	if !hasCkpt && len(recs) > 0 {
		// No checkpoint: the log must narrate from its own first record.
		next = recs[0].EpochBefore
	}
	var tail []Record
	for _, r := range recs {
		end := r.EpochBefore + uint64(len(r.Ops))
		if end <= next {
			continue // fully covered by the checkpoint
		}
		if r.EpochBefore != next {
			return nil, 0, fmt.Errorf("epoch gap: record at %d, expected %d", r.EpochBefore, next)
		}
		tail = append(tail, r)
		next = end
	}
	return tail, next, nil
}

// Recovered returns what Open found on disk. The caller replays it once at
// startup; the slices are owned by the caller afterwards.
func (l *Log) Recovered() *Recovery { return &l.recovered }

// Append logs one applied batch — epochBefore is the shard epoch before the
// batch, ops the operations in applied order — and syncs it to stable
// storage (group commit: the writer calls this once per published batch,
// before the snapshot becomes visible).
func (l *Log) Append(epochBefore uint64, ops []wire.UpdateOp) error {
	payload := wire.AppendWALPayload(l.frame[:0], epochBefore, ops)
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.f.Write(payload); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	l.frame = payload
	l.logBytes += int64(frameHeader + len(payload))
	l.lastEpoch, l.hasEpoch = epochBefore+uint64(len(ops)), true
	return nil
}

// ShouldCheckpoint reports whether the log has grown past the checkpoint
// threshold.
func (l *Log) ShouldCheckpoint() bool {
	return l.logBytes >= l.opts.CheckpointBytes
}

// Checkpoint durably replaces the checkpoint file with payload (captured at
// epoch) and truncates the log: write to a temp file, fsync, rename over the
// old checkpoint, then truncate wal.log. A crash between rename and truncate
// leaves stale records the next Open skips by epoch. Checkpointing behind
// the newest logged epoch is refused — truncation would lose acked updates.
func (l *Log) Checkpoint(epoch uint64, payload []byte) error {
	if l.hasEpoch && epoch < l.lastEpoch {
		return fmt.Errorf("wal: checkpoint at epoch %d behind log end %d", epoch, l.lastEpoch)
	}
	tmp := filepath.Join(l.dir, tmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	enc := encodeCheckpoint(epoch, payload)
	if _, err := f.Write(enc); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if !l.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: checkpoint sync: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, ckptName)); err != nil {
		return fmt.Errorf("wal: checkpoint publish: %w", err)
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	l.logBytes = 0
	l.lastEpoch, l.hasEpoch = epoch, true
	return nil
}

// Close closes the log file. The log can be reopened with Open.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// DecodeRecords parses framed records from b, stopping at the first torn or
// corrupt frame. It returns the valid prefix and how many bytes it consumed;
// it never fails and never panics — tolerating a ragged tail is the recovery
// contract (FuzzWALReplay holds it under arbitrary corruption).
func DecodeRecords(b []byte) ([]Record, int) {
	var recs []Record
	off := 0
	for {
		rest := b[off:]
		if len(rest) < frameHeader {
			return recs, off
		}
		n := int(binary.LittleEndian.Uint32(rest[0:4]))
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n < 0 || n > len(rest)-frameHeader {
			return recs, off
		}
		payload := rest[frameHeader : frameHeader+n]
		if crc32.Checksum(payload, crcTable) != sum {
			return recs, off
		}
		epoch, ops, err := wire.DecodeWALPayload(payload)
		if err != nil {
			return recs, off
		}
		recs = append(recs, Record{EpochBefore: epoch, Ops: ops})
		off += frameHeader + n
	}
}

// Checkpoint file layout: magic, epoch, payload length, payload, CRC over
// everything before it. The CRC matters even though the rename is atomic —
// the file is read back after crashes on storage we do not control.
var ckptMagic = [4]byte{'p', 'r', 'c', '1'}

func encodeCheckpoint(epoch uint64, payload []byte) []byte {
	b := make([]byte, 0, len(ckptMagic)+8+4+len(payload)+4)
	b = append(b, ckptMagic[:]...)
	b = binary.LittleEndian.AppendUint64(b, epoch)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, crcTable))
}

func decodeCheckpoint(b []byte) (epoch uint64, payload []byte, err error) {
	const head = 4 + 8 + 4
	if len(b) < head+4 {
		return 0, nil, io.ErrUnexpectedEOF
	}
	if [4]byte(b[0:4]) != ckptMagic {
		return 0, nil, errors.New("bad magic")
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.Checksum(body, crcTable) != sum {
		return 0, nil, errors.New("checksum mismatch")
	}
	epoch = binary.LittleEndian.Uint64(b[4:12])
	n := int(binary.LittleEndian.Uint32(b[12:16]))
	if n != len(body)-head {
		return 0, nil, errors.New("length mismatch")
	}
	return epoch, body[head : head+n], nil
}
