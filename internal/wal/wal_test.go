package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/wire"
)

func op(kind wire.UpdateKind, obj uint32, x float64) wire.UpdateOp {
	r := geom.Rect{MinX: x, MinY: x, MaxX: x + 0.01, MaxY: x + 0.01}
	u := wire.UpdateOp{Kind: kind, Obj: rtree.ObjectID(obj)}
	switch kind {
	case wire.UpdateInsert:
		u.To, u.Size = r, 64
	case wire.UpdateMove:
		u.From = r
		u.To = geom.Rect{MinX: x + 0.1, MinY: x + 0.1, MaxX: x + 0.11, MaxY: x + 0.11}
	default:
		u.From = r
	}
	return u
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec := l.Recovered(); rec.Checkpoint != nil || len(rec.Tail) != 0 {
		t.Fatalf("cold open recovered state: %+v", rec)
	}
	batches := []Record{
		{EpochBefore: 0, Ops: []wire.UpdateOp{op(wire.UpdateInsert, 1, 0.1), op(wire.UpdateInsert, 2, 0.2)}},
		{EpochBefore: 2, Ops: []wire.UpdateOp{op(wire.UpdateMove, 1, 0.1)}},
		{EpochBefore: 3, Ops: []wire.UpdateOp{op(wire.UpdateDelete, 2, 0.2)}},
	}
	for _, b := range batches {
		if err := l.Append(b.EpochBefore, b.Ops); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rec := l2.Recovered()
	if rec.Checkpoint != nil {
		t.Fatal("checkpoint appeared from nowhere")
	}
	if !reflect.DeepEqual(rec.Tail, batches) {
		t.Fatalf("recovered tail\n got %+v\nwant %+v", rec.Tail, batches)
	}
}

func TestCheckpointTruncatesAndSkipsStale(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(0, []wire.UpdateOp{op(wire.UpdateInsert, 1, 0.1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(1, []byte("tree-at-1")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, []wire.UpdateOp{op(wire.UpdateInsert, 2, 0.2)}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rec := l2.Recovered()
	if string(rec.Checkpoint) != "tree-at-1" || rec.CheckpointEpoch != 1 {
		t.Fatalf("checkpoint: %q at %d", rec.Checkpoint, rec.CheckpointEpoch)
	}
	if len(rec.Tail) != 1 || rec.Tail[0].EpochBefore != 1 {
		t.Fatalf("tail: %+v", rec.Tail)
	}
}

// TestCheckpointCrashBeforeTruncate models a crash between the checkpoint
// rename and the log truncation: the log still holds pre-checkpoint records,
// which recovery must skip by epoch rather than double-replay.
func TestCheckpointCrashBeforeTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(0, []wire.UpdateOp{op(wire.UpdateInsert, 1, 0.1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, []wire.UpdateOp{op(wire.UpdateInsert, 2, 0.2)}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	logBytes, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}

	l, err = Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(2, []byte("tree-at-2")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Undo the truncation: put the old records back under the new checkpoint.
	if err := os.WriteFile(filepath.Join(dir, logName), logBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rec := l2.Recovered()
	if rec.CheckpointEpoch != 2 || len(rec.Tail) != 0 {
		t.Fatalf("stale records not skipped: ckpt=%d tail=%+v", rec.CheckpointEpoch, rec.Tail)
	}
}

func TestCheckpointRefusesRewind(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(0, []wire.UpdateOp{op(wire.UpdateInsert, 1, 0.1), op(wire.UpdateInsert, 2, 0.2)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(1, []byte("early")); err == nil {
		t.Fatal("checkpoint behind the log end was accepted; truncation would lose an acked update")
	}
	if err := l.Checkpoint(2, []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestEpochGapIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(0, []wire.UpdateOp{op(wire.UpdateInsert, 1, 0.1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(5, []wire.UpdateOp{op(wire.UpdateInsert, 2, 0.2)}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := Open(dir, Options{NoSync: true}); err == nil {
		t.Fatal("gapped log opened without error")
	}
}

func TestTornTailIsSilentlyDropped(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(0, []wire.UpdateOp{op(wire.UpdateInsert, 1, 0.1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, []wire.UpdateOp{op(wire.UpdateInsert, 2, 0.2)}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-frame.
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if tail := l2.Recovered().Tail; len(tail) != 1 || tail[0].EpochBefore != 0 {
		t.Fatalf("torn tail: recovered %+v", tail)
	}
	// The shard can keep appending after the torn record is dropped.
	if err := l2.Append(1, []wire.UpdateOp{op(wire.UpdateInsert, 3, 0.3)}); err != nil {
		t.Fatal(err)
	}
}
