package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// fuzzSeedLog builds a small valid log image for the corpus.
func fuzzSeedLog() []byte {
	dir, err := os.MkdirTemp("", "walfuzz")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		panic(err)
	}
	r := func(x float64) geom.Rect {
		return geom.Rect{MinX: x, MinY: x, MaxX: x + 0.01, MaxY: x + 0.01}
	}
	_ = l.Append(0, []wire.UpdateOp{
		{Kind: wire.UpdateInsert, Obj: rtree.ObjectID(1), To: r(0.1), Size: 64},
		{Kind: wire.UpdateInsert, Obj: rtree.ObjectID(2), To: r(0.2), Size: 64},
	})
	_ = l.Append(2, []wire.UpdateOp{
		{Kind: wire.UpdateMove, Obj: rtree.ObjectID(1), From: r(0.1), To: r(0.5)},
	})
	l.Close()
	data, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		panic(err)
	}
	return data
}

// FuzzWALReplay throws arbitrary bytes at the recovery scan: DecodeRecords
// must never panic, must stop at the last valid record, and its reported
// consumed offset must re-decode to the identical prefix (the truncate-on-
// open step depends on that).
func FuzzWALReplay(f *testing.F) {
	seed := fuzzSeedLog()
	f.Add(seed)
	f.Add(seed[:len(seed)-5])             // torn tail
	f.Add([]byte{})                       // empty log
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // garbage
	if len(seed) > 10 {
		mut := append([]byte(nil), seed...)
		mut[9] ^= 0x01 // corrupt first payload byte: CRC must reject
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, off := DecodeRecords(data)
		if off < 0 || off > len(data) {
			t.Fatalf("consumed %d of %d bytes", off, len(data))
		}
		recs2, off2 := DecodeRecords(data[:off])
		if off2 != off || len(recs2) != len(recs) {
			t.Fatalf("valid prefix unstable: %d/%d records, %d/%d bytes",
				len(recs2), len(recs), off2, off)
		}
		// Epoch chaining over the decoded records must never be trusted
		// blindly; chainFrom rejects gaps without panicking.
		_, _, _ = chainFrom(recs, 0, false)
	})
}
