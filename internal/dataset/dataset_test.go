package dataset

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
)

func TestGenerateNEShape(t *testing.T) {
	d := GenerateNE(Params{N: 20_000, Seed: 1})
	if d.Len() != 20_000 {
		t.Fatalf("Len = %d", d.Len())
	}
	unit := geom.R(0, 0, 1, 1)
	for i, o := range d.Objects {
		if o.ID != rtree.ObjectID(i+1) {
			t.Fatalf("object %d has id %d", i, o.ID)
		}
		if !unit.Contains(o.MBR) {
			t.Fatalf("object %d MBR %v outside unit square", i, o.MBR)
		}
		if o.Size < 256 {
			t.Fatalf("object %d size %d below floor", i, o.Size)
		}
	}
	mean := float64(d.TotalBytes) / float64(d.Len())
	if mean < 7_000 || mean > 14_000 {
		t.Errorf("mean object size %.0f, want ~10KB", mean)
	}
}

func TestGenerateNEClustered(t *testing.T) {
	d := GenerateNE(Params{N: 30_000, Seed: 2})
	// Clustered data: occupancy over a 20x20 grid should be very uneven
	// (coefficient of variation well above a uniform scatter's).
	var grid [400]int
	for _, o := range d.Objects {
		c := o.MBR.Center()
		gx := int(c.X * 20)
		gy := int(c.Y * 20)
		if gx > 19 {
			gx = 19
		}
		if gy > 19 {
			gy = 19
		}
		grid[gy*20+gx]++
	}
	mean := float64(d.Len()) / 400
	var varSum float64
	for _, n := range grid {
		dev := float64(n) - mean
		varSum += dev * dev
	}
	cv := math.Sqrt(varSum/400) / mean
	if cv < 1.0 {
		t.Errorf("grid occupancy CV = %.2f; clustered data should exceed 1", cv)
	}
}

func TestGenerateRDShape(t *testing.T) {
	d := GenerateRD(Params{N: 25_000, Seed: 3})
	if d.Len() != 25_000 {
		t.Fatalf("Len = %d", d.Len())
	}
	unit := geom.R(0, 0, 1, 1)
	elongated := 0
	for _, o := range d.Objects {
		if !unit.Contains(o.MBR) {
			t.Fatalf("MBR %v outside unit square", o.MBR)
		}
		w, h := o.MBR.Width(), o.MBR.Height()
		if w > 2.5*h || h > 2.5*w {
			elongated++
		}
	}
	if frac := float64(elongated) / float64(d.Len()); frac < 0.3 {
		t.Errorf("only %.0f%% elongated segments; road data should skew long", frac*100)
	}
}

func TestZipfSkew(t *testing.T) {
	d := GenerateNE(Params{N: 50_000, Seed: 4})
	// Median far below mean is the signature of the skewed size mix.
	sizes := make([]int, d.Len())
	for i, o := range d.Objects {
		sizes[i] = o.Size
	}
	mean := float64(d.TotalBytes) / float64(d.Len())
	below := 0
	for _, s := range sizes {
		if float64(s) < mean {
			below++
		}
	}
	if frac := float64(below) / float64(len(sizes)); frac < 0.6 {
		t.Errorf("only %.0f%% below mean; Zipf sizes should be majority-small", frac*100)
	}
}

func TestBuildTree(t *testing.T) {
	d := GenerateNE(Params{N: 10_000, Seed: 5})
	tr := d.BuildTree(rtree.DefaultParams(), 0.7)
	if tr.Len() != d.Len() {
		t.Fatalf("tree holds %d, want %d", tr.Len(), d.Len())
	}
	if err := tr.Validate(false); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := GenerateNE(Params{N: 1000, Seed: 6})
	path := filepath.Join(t.TempDir(), "ne.gob")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() || back.TotalBytes != d.TotalBytes || back.Name != d.Name {
		t.Error("round trip changed dataset summary")
	}
	for i := range d.Objects {
		if d.Objects[i] != back.Objects[i] {
			t.Fatalf("object %d changed in round trip", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := GenerateNE(Params{N: 5000, Seed: 7})
	b := GenerateNE(Params{N: 5000, Seed: 7})
	for i := range a.Objects {
		if a.Objects[i] != b.Objects[i] {
			t.Fatalf("object %d differs across same-seed generations", i)
		}
	}
	c := GenerateNE(Params{N: 5000, Seed: 8})
	same := 0
	for i := range a.Objects {
		if a.Objects[i].MBR == c.Objects[i].MBR {
			same++
		}
	}
	if same == len(a.Objects) {
		t.Error("different seeds produced identical data")
	}
}

func TestSizeOfBounds(t *testing.T) {
	d := GenerateNE(Params{N: 100, Seed: 9})
	if d.SizeOf(0) != 0 || d.SizeOf(101) != 0 {
		t.Error("out-of-range ids must return 0")
	}
	if d.SizeOf(1) != d.Objects[0].Size {
		t.Error("SizeOf(1) mismatch")
	}
}
