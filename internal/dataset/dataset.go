// Package dataset provides the synthetic stand-ins for the paper's two
// evaluation datasets (rtreeportal.org Tiger data, unavailable offline):
//
//   - NE: 123,593 postal zones of New York, Philadelphia and Boston —
//     modeled as small rectangles drawn from Gaussian clusters (urban
//     centers) plus a uniform background.
//   - RD: 594,103 railroad/road segments of the US, Canada and Mexico —
//     modeled as thin elongated rectangles along random-walk polylines.
//
// Both are normalized to the unit square. Object payload sizes follow the
// paper's Zipf distribution (skew theta = 0.8) with a 10 KB mean. What the
// caching experiments are sensitive to — spatial skew, density, size
// distribution — is preserved; see DESIGN.md for the substitution argument.
package dataset

import (
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"os"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// Object is one spatial data object: identifier, bounding rectangle, and
// payload size in bytes.
type Object struct {
	ID   rtree.ObjectID
	MBR  geom.Rect
	Size int
}

// Dataset is an immutable collection of objects with ids 1..N.
type Dataset struct {
	Name       string
	Objects    []Object
	TotalBytes int64
}

// Len returns the number of objects.
func (d *Dataset) Len() int { return len(d.Objects) }

// SizeOf returns the payload size of an object (0 for unknown ids).
func (d *Dataset) SizeOf(id rtree.ObjectID) int {
	if id < 1 || int(id) > len(d.Objects) {
		return 0
	}
	return d.Objects[id-1].Size
}

// MBROf returns the bounding rectangle of an object.
func (d *Dataset) MBROf(id rtree.ObjectID) geom.Rect {
	return d.Objects[id-1].MBR
}

// Items converts the dataset to R-tree bulk-load items.
func (d *Dataset) Items() []rtree.Item {
	items := make([]rtree.Item, len(d.Objects))
	for i, o := range d.Objects {
		items[i] = rtree.Item{Obj: o.ID, MBR: o.MBR}
	}
	return items
}

// BuildTree bulk-loads an R*-tree over the dataset.
func (d *Dataset) BuildTree(p rtree.Params, fill float64) *rtree.Tree {
	return rtree.BulkLoad(p, d.Items(), fill)
}

// Params configures synthetic generation.
type Params struct {
	N    int
	Seed int64
	// AvgObjectBytes is the mean payload size (paper: 10 KB).
	AvgObjectBytes int
	// ZipfTheta is the size-distribution skew (paper: 0.8).
	ZipfTheta float64
	// Clusters is the number of urban clusters for NE-like data.
	Clusters int
}

func (p Params) normalized(defaultN int) Params {
	if p.N <= 0 {
		p.N = defaultN
	}
	if p.AvgObjectBytes <= 0 {
		p.AvgObjectBytes = 10 * 1024
	}
	if p.ZipfTheta <= 0 {
		p.ZipfTheta = 0.8
	}
	if p.Clusters <= 0 {
		p.Clusters = 64
	}
	return p
}

// NECardinality and RDCardinality are the paper's dataset sizes.
const (
	NECardinality = 123_593
	RDCardinality = 594_103
)

// GenerateNE builds the NE-like clustered zone dataset.
func GenerateNE(p Params) *Dataset {
	p = p.normalized(NECardinality)
	rng := rand.New(rand.NewSource(p.Seed))
	d := &Dataset{Name: "NE", Objects: make([]Object, 0, p.N)}

	type cluster struct {
		center geom.Point
		sigma  float64
		weight float64
	}
	clusters := make([]cluster, p.Clusters)
	totalW := 0.0
	for i := range clusters {
		clusters[i] = cluster{
			center: geom.Pt(rng.Float64(), rng.Float64()),
			sigma:  0.005 + rng.Float64()*0.04,
			weight: math.Pow(rng.Float64(), 2) + 0.05, // few dominant cities
		}
		totalW += clusters[i].weight
	}

	sizes := zipfSizes(rng, p.N, p.AvgObjectBytes, p.ZipfTheta)
	for i := 0; i < p.N; i++ {
		var c geom.Point
		if rng.Float64() < 0.85 { // clustered
			pick := rng.Float64() * totalW
			for _, cl := range clusters {
				pick -= cl.weight
				if pick <= 0 {
					c = geom.Pt(
						clamp(cl.center.X+rng.NormFloat64()*cl.sigma),
						clamp(cl.center.Y+rng.NormFloat64()*cl.sigma),
					)
					break
				}
			}
		} else { // rural background
			c = geom.Pt(rng.Float64(), rng.Float64())
		}
		// Postal zones are small area patches.
		w := 1e-4 + rng.Float64()*4e-4
		h := 1e-4 + rng.Float64()*4e-4
		mbr, _ := geom.RectFromCenter(c, w, h).Clip(geom.R(0, 0, 1, 1))
		d.Objects = append(d.Objects, Object{ID: rtree.ObjectID(i + 1), MBR: mbr, Size: sizes[i]})
		d.TotalBytes += int64(sizes[i])
	}
	return d
}

// GenerateRD builds the RD-like road-segment dataset: random-walk polylines
// whose segments become thin elongated rectangles.
func GenerateRD(p Params) *Dataset {
	p = p.normalized(RDCardinality)
	rng := rand.New(rand.NewSource(p.Seed))
	d := &Dataset{Name: "RD", Objects: make([]Object, 0, p.N)}
	sizes := zipfSizes(rng, p.N, p.AvgObjectBytes, p.ZipfTheta)

	id := 0
	for id < p.N {
		// One road: a random walk of segments.
		pos := geom.Pt(rng.Float64(), rng.Float64())
		heading := rng.Float64() * 2 * math.Pi
		segs := 20 + rng.Intn(180)
		for s := 0; s < segs && id < p.N; s++ {
			length := 5e-4 + rng.Float64()*3e-3
			heading += (rng.Float64() - 0.5) * math.Pi / 4
			next := geom.Pt(
				clamp(pos.X+length*math.Cos(heading)),
				clamp(pos.Y+length*math.Sin(heading)),
			)
			mbr := geom.R(
				math.Min(pos.X, next.X), math.Min(pos.Y, next.Y),
				math.Max(pos.X, next.X), math.Max(pos.Y, next.Y),
			)
			d.Objects = append(d.Objects, Object{ID: rtree.ObjectID(id + 1), MBR: mbr, Size: sizes[id]})
			d.TotalBytes += int64(sizes[id])
			id++
			pos = next
		}
	}
	return d
}

// zipfSizes draws n payload sizes from a discrete Zipf distribution over 100
// size classes (P(class c) proportional to c^-theta, size proportional to
// c), scaled so the mean matches avg.
func zipfSizes(rng *rand.Rand, n, avg int, theta float64) []int {
	const classes = 100
	weights := make([]float64, classes)
	var wSum, expectation float64
	for c := 1; c <= classes; c++ {
		w := math.Pow(float64(c), -theta)
		weights[c-1] = w
		wSum += w
		expectation += w * float64(c)
	}
	expectation /= wSum
	unit := float64(avg) / expectation

	sizes := make([]int, n)
	for i := range sizes {
		pick := rng.Float64() * wSum
		class := classes
		for c, w := range weights {
			pick -= w
			if pick <= 0 {
				class = c + 1
				break
			}
		}
		s := int(unit * float64(class))
		if s < 256 {
			s = 256
		}
		sizes[i] = s
	}
	return sizes
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Save writes the dataset to a gob file.
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(d); err != nil {
		return fmt.Errorf("dataset: encode %s: %w", path, err)
	}
	return nil
}

// Load reads a dataset from a gob file.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	var d Dataset
	if err := gob.NewDecoder(f).Decode(&d); err != nil {
		return nil, fmt.Errorf("dataset: decode %s: %w", path, err)
	}
	return &d, nil
}
