package load

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
)

// TestRepGridFootprint pins the footprint-based filing contract: a ref
// wider than one grid cell must be gatherable from any window its MBR
// overlaps — including windows nowhere near its center — exactly once, and
// near-root refs (footprint >= refCellMax cells per axis) are not cached
// at all.
func TestRepGridFootprint(t *testing.T) {
	var g repGrid
	// ~2.5 cells wide (cell side 1/32), centered at (0.5, 0.5).
	wide := cachedRef{ref: query.NodeRef(7, geom.R(0.46, 0.46, 0.54, 0.54))}
	g.insert(wide)

	// A window overlapping only the MBR's left edge: its grid span does not
	// include the center cell, which is where the old center-cell filing
	// put the only copy.
	win := geom.R(0.455, 0.50, 0.465, 0.51)
	if got := g.gather(win, nil); len(got) != 1 {
		t.Fatalf("edge window gathered %d refs, want 1", len(got))
	}

	// A window spanning the whole MBR crosses several cells the ref is
	// filed under; the handover must still carry it once.
	if got := g.gather(geom.R(0.40, 0.40, 0.60, 0.60), nil); len(got) != 1 {
		t.Fatalf("spanning window gathered %d refs, want 1 (dedup)", len(got))
	}

	// A window that misses the MBR gathers nothing.
	if got := g.gather(geom.R(0.70, 0.70, 0.72, 0.72), nil); len(got) != 0 {
		t.Fatalf("disjoint window gathered %d refs, want 0", len(got))
	}

	// Near-root refs are rejected: footprint >= refCellMax cells per axis.
	g.clear()
	g.insert(cachedRef{ref: query.NodeRef(9, geom.R(0.1, 0.1, 0.9, 0.9))})
	if g.size() != 0 {
		t.Fatalf("near-root ref was cached (size %d), want dropped", g.size())
	}
}

// TestRepGridEviction pins per-cell capacity handling under footprint
// filing: a full cell evicts its oldest ref, and re-inserting a known id
// refreshes its rectangle instead of duplicating it.
func TestRepGridEviction(t *testing.T) {
	var g repGrid
	small := func(id uint32, x, y float64) cachedRef {
		return cachedRef{ref: query.NodeRef(rtree.NodeID(id), geom.R(x, y, x+0.002, y+0.002))}
	}
	// Five tiny refs in one cell: capacity is cellCap=4, oldest goes.
	for i := uint32(1); i <= 5; i++ {
		g.insert(small(i, 0.101, 0.101))
	}
	win := geom.R(0.10, 0.10, 0.11, 0.11)
	got := g.gather(win, nil)
	if len(got) != cellCap {
		t.Fatalf("gathered %d refs from a full cell, want %d", len(got), cellCap)
	}
	// Re-inserting id 3 with a moved rectangle updates in place.
	g.insert(cachedRef{ref: query.NodeRef(3, geom.R(0.102, 0.102, 0.106, 0.106))})
	if n := len(g.gather(win, nil)); n != cellCap {
		t.Fatalf("refresh duplicated a ref: gathered %d, want %d", n, cellCap)
	}
}
