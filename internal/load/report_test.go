package load

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleResult() *Result {
	r := &Result{
		Scenario:    "steady",
		TargetQPS:   1000,
		AchievedQPS: 990,
		Duration:    2 * time.Second,
		Users:       100_000,
		Workers:     4,
		Scheduled:   2000, Local: 500, WireSent: 1500, WireOK: 1500,
		FullHit: 500, PartialHit: 600, Miss: 300, Updates: 100,
		Retries: 3, Failovers: 1, Redials: 2,
		BytesUp: 50_000, BytesDown: 4_000_000,
		Mean: time.Millisecond, P50: time.Millisecond,
		P99: 4 * time.Millisecond, P999: 8 * time.Millisecond,
		SLO: defaultSLO,
	}
	r.Violations = r.CheckSLO()
	return r
}

// TestReportRoundTrip pins the JSON contract end to end: marshal passes
// the schema validator, and the values survive the trip.
func TestReportRoundTrip(t *testing.T) {
	data, err := MarshalReports([]*Result{sampleResult()})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateReport(data); err != nil {
		t.Fatalf("self-produced report fails validation: %v", err)
	}
	var fr FileReport
	if err := json.Unmarshal(data, &fr); err != nil {
		t.Fatal(err)
	}
	sc := fr.Scenarios[0]
	if sc.Scenario != "steady" || sc.WireOK != 1500 || sc.P999US != 8000 || !sc.SLOPass {
		t.Fatalf("round trip mangled values: %+v", sc)
	}
	if sc.Retries != 3 || sc.Failovers != 1 || sc.Redials != 2 {
		t.Fatalf("failover counters mangled: %+v", sc)
	}
}

// TestValidateReportRejects walks the failure modes the CI schema gate
// must catch.
func TestValidateReportRejects(t *testing.T) {
	good, err := MarshalReports([]*Result{sampleResult()})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		errPart string
	}{
		{"not json", func(b []byte) []byte { return []byte("{") }, "valid JSON"},
		{"no scenarios", func(b []byte) []byte { return []byte(`{"scenarios": []}`) }, "no scenarios"},
		{"missing key", func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"p999_us"`), []byte(`"p999_gone"`), 1)
		}, `missing key "p999_us"`},
		{"negative counter", func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"wire_ok": 1500`), []byte(`"wire_ok": -1`), 1)
		}, "negative"},
		{"missing failover key", func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"failovers"`), []byte(`"failovers_gone"`), 1)
		}, `missing key "failovers"`},
		{"negative failover counter", func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"redials": 2`), []byte(`"redials": -2`), 1)
		}, "negative"},
		{"quantile order", func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"p999_us": 8000`), []byte(`"p999_us": 1`), 1)
		}, "out of order"},
		{"empty name", func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"scenario": "steady"`), []byte(`"scenario": ""`), 1)
		}, "empty name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateReport(tc.mutate(append([]byte(nil), good...)))
			if err == nil {
				t.Fatalf("validator accepted a report with %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Fatalf("error %q does not mention %q", err, tc.errPart)
			}
		})
	}
}

// TestCheckSLO pins each envelope dimension independently.
func TestCheckSLO(t *testing.T) {
	base := func() *Result {
		r := sampleResult()
		r.Violations = nil
		return r
	}
	if r := base(); len(r.CheckSLO()) != 0 {
		t.Fatalf("healthy result violates SLO: %v", r.CheckSLO())
	}
	r := base()
	r.AchievedQPS = 100
	if v := r.CheckSLO(); len(v) == 0 || !strings.Contains(v[0], "target") {
		t.Errorf("under-achieved rate not caught: %v", v)
	}
	r = base()
	r.Errors = 10
	if v := r.CheckSLO(); len(v) == 0 || !strings.Contains(v[0], "errors") {
		t.Errorf("errors not caught: %v", v)
	}
	r = base()
	r.Shed = 500
	if v := r.CheckSLO(); len(v) == 0 || !strings.Contains(v[0], "shed") {
		t.Errorf("shedding not caught: %v", v)
	}
	r = base()
	r.P99 = time.Minute
	r.P999 = time.Minute
	if v := r.CheckSLO(); len(v) != 2 {
		t.Errorf("latency blowup caught %d violations, want 2: %v", len(v), v)
	}
}

// TestFprint smoke-checks the human rendering (it must never divide by a
// zero target or drop violations).
func TestFprint(t *testing.T) {
	r := sampleResult()
	r.Violations = []string{"synthetic violation"}
	var buf bytes.Buffer
	r.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "synthetic violation") {
		t.Fatalf("rendering lost the failure: %s", out)
	}
}
