package load

import (
	"sort"
	"time"
)

// Chaos injection. A fault scenario is an ordinary Spec plus a schedule of
// shard-level faults fired at fixed fractions of the run; the harness keeps
// driving its open-loop schedule straight through them, so the SLO envelope
// judges exactly what a fleet of mobile users would experience while a
// shard dies: the router's retry/failover path either absorbs the fault or
// the error and latency counters say it didn't.

// FaultKind is what one scheduled fault does to a shard.
type FaultKind uint8

const (
	// FaultKillShard crash-stops the shard and leaves it down. Only
	// survivable with a warm replica the router can promote.
	FaultKillShard FaultKind = iota
	// FaultRestartShard restarts a previously killed shard from its WAL.
	FaultRestartShard
	// FaultCrashRestart kills the shard and immediately restarts it from
	// its WAL — the tightest crash-recovery window the harness can drive.
	FaultCrashRestart
)

func (k FaultKind) String() string {
	switch k {
	case FaultKillShard:
		return "kill"
	case FaultRestartShard:
		return "restart"
	case FaultCrashRestart:
		return "crash-restart"
	default:
		return "unknown"
	}
}

// FaultEvent schedules one fault: at AtFrac of the run duration, Kind fires
// against Shard.
type FaultEvent struct {
	AtFrac float64
	Kind   FaultKind
	Shard  int
}

// Injector is the backend's chaos surface; cluster.InProcess satisfies it
// directly. Kill must be safe to call on an already-dead shard and Restart
// on a live one (both are no-ops there).
type Injector interface {
	Kill(shard int)
	Restart(shard int) error
}

// injectFaults runs the fault schedule against the injector, sleeping until
// each event's offset into the run. It returns when the schedule is done or
// stop closes. Restart errors are reported through onErr (they count as
// harness errors: a shard that cannot recover fails the scenario's zero-
// error SLO via the queries that keep failing).
func injectFaults(events []FaultEvent, inj Injector, dur time.Duration,
	start time.Time, stop <-chan struct{}, onErr func(error)) {
	sorted := append([]FaultEvent(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].AtFrac < sorted[j].AtFrac })
	for _, ev := range sorted {
		at := time.Duration(ev.AtFrac * float64(dur))
		if d := at - time.Since(start); d > 0 {
			select {
			case <-time.After(d):
			case <-stop:
				return
			}
		}
		switch ev.Kind {
		case FaultKillShard:
			inj.Kill(ev.Shard)
		case FaultRestartShard:
			if err := inj.Restart(ev.Shard); err != nil && onErr != nil {
				onErr(err)
			}
		case FaultCrashRestart:
			inj.Kill(ev.Shard)
			if err := inj.Restart(ev.Shard); err != nil && onErr != nil {
				onErr(err)
			}
		}
	}
}

// FaultMatrix returns the chaos scenarios. They live outside Matrix() —
// "-scenario all" and the benchmark harness run fault-free — and require a
// backend that exposes an Injector (proload -inprocess). Names are stable:
// CI's chaos smoke gate refers to them.
func FaultMatrix() []Spec {
	specs := []Spec{
		{
			Name:        "shard-crash-recovery",
			Description: "a shard crash-restarts from its WAL twice mid-run; retries ride it out with zero errors",
			RangeFrac:   0.45, KNNFrac: 0.35, JoinFrac: 0.05, UpdateFrac: 0.15,
			FullHitFrac: 0.20, PartialHitFrac: 0.40,
			Poisson: true, Shape: ShapeUniform, UpdateBatch: 4,
			Faults: []FaultEvent{
				{AtFrac: 0.30, Kind: FaultCrashRestart, Shard: 1},
				{AtFrac: 0.60, Kind: FaultCrashRestart, Shard: 2},
			},
			SLO: SLO{
				MinAchievedFrac: 0.85,
				MaxErrorFrac:    0,
				MaxShedFrac:     0.05,
				// Queries in flight across the crash window block on the
				// retry/redial path; the tail envelope absorbs that, the
				// error envelope does not budge.
				MaxP99:  1 * time.Second,
				MaxP999: 3 * time.Second,
			},
		},
		{
			Name:        "replica-failover",
			Description: "a primary dies for good at 40%; the router promotes the warm replica with zero errors",
			RangeFrac:   0.50, KNNFrac: 0.35, JoinFrac: 0.05, UpdateFrac: 0.10,
			FullHitFrac: 0.20, PartialHitFrac: 0.40,
			Poisson: true, Shape: ShapeUniform, UpdateBatch: 4,
			Faults: []FaultEvent{
				{AtFrac: 0.40, Kind: FaultKillShard, Shard: 1},
			},
			SLO: SLO{
				MinAchievedFrac: 0.85,
				MaxErrorFrac:    0,
				MaxShedFrac:     0.05,
				MaxP99:          1 * time.Second,
				MaxP999:         3 * time.Second,
			},
		},
	}
	for i := range specs {
		specs[i] = specs[i].normalized()
	}
	return specs
}
