package load

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// Config parameterizes one open-loop run.
type Config struct {
	// Spec is the scenario to run.
	Spec Spec
	// TargetQPS is the aggregate arrival rate across all workers.
	TargetQPS float64
	// Duration is the run length.
	Duration time.Duration
	// Users is the simulated population size (hash-derived; memory-free).
	Users int
	// Workers is the number of pacing loops / connections; default 4. Each
	// worker is one wire client (ClientID worker+1) so server-side per-
	// client state stays bounded no matter how large Users is.
	Workers int
	// Seed makes the operation streams deterministic.
	Seed int64
	// Timeout is the latency above which a completed operation is also
	// counted as a timeout; default 2s.
	Timeout time.Duration
	// MaxOutstanding bounds in-flight operations per worker; arrivals that
	// find the budget exhausted are shed (counted, never blocked on —
	// blocking would turn the harness closed-loop). Default 1024.
	MaxOutstanding int

	// NewTransport connects worker w to the system under test. Required.
	// Transports implementing io.Closer are closed at the end of the run
	// and redialed after wire errors (a poisoned pipelined connection
	// fails every outstanding request; the harness counts those and moves
	// on, it never aborts).
	NewTransport func(worker int) (wire.Transport, error)
	// Release, when set, recycles responses back to the server's pool
	// (in-process transports only).
	Release func(*wire.Response)
	// OnEvent observes per-operation errors (logging hook). May be nil.
	OnEvent func(worker int, err error)
	// ShardErrors, when set, is sampled at the end of the run to fill
	// Result.ShardErrors (wire it to a cluster.Config.OnShardError
	// counter).
	ShardErrors func() int64

	// Injector is the chaos surface Spec.Faults fires against (cluster
	// backends: *cluster.InProcess satisfies it). Required when the spec
	// schedules faults; fault-free specs ignore it.
	Injector Injector
	// FailoverStats, when set, is sampled at the end of the run to fill
	// Result.Retries/Failovers/Redials (wire it to the router's
	// metrics.ClusterStats snapshot).
	FailoverStats func() (retries, failovers, redials int64)
	// EdgeStats, when set, is sampled before and after the run to fill
	// Result.EdgeHits/EdgeMisses/EdgeForwards with this run's deltas (wire
	// it to the edge tier's metrics.EdgeStats snapshot).
	EdgeStats func() metrics.EdgeSnapshot
	// ElasticStats, when set, is sampled before and after the run to fill
	// Result.Splits/Merges/Handover with this run's topology-operation
	// deltas (wire it to the router's metrics.ClusterStats counters).
	ElasticStats func() (splits, merges, handoverNanos int64)
}

func (c Config) withDefaults() (Config, error) {
	if c.NewTransport == nil {
		return c, fmt.Errorf("load: Config.NewTransport is required")
	}
	c.Spec = c.Spec.normalized()
	if len(c.Spec.Faults) > 0 && c.Injector == nil {
		return c, fmt.Errorf("load: scenario %q schedules faults but Config.Injector is nil (chaos needs an in-process cluster backend)", c.Spec.Name)
	}
	if c.TargetQPS <= 0 {
		c.TargetQPS = 1000
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Users < 1 {
		c.Users = 1
	}
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.MaxOutstanding < 1 {
		c.MaxOutstanding = 1024
	}
	return c, nil
}

// counters is the run-wide atomic counter set workers write into.
type counters struct {
	scheduled atomic.Int64
	local     atomic.Int64
	wireSent  atomic.Int64
	wireOK    atomic.Int64
	errors    atomic.Int64
	timeouts  atomic.Int64
	shed      atomic.Int64

	fullHit    atomic.Int64
	partialHit atomic.Int64
	partialDeg atomic.Int64
	miss       atomic.Int64
	updates    atomic.Int64
	updateRej  atomic.Int64

	bytesUp   atomic.Int64
	bytesDown atomic.Int64

	lat metrics.Histogram
}

// Run executes the scenario open-loop: Workers pacing loops each issue
// operations at their share of TargetQPS on a fixed schedule, regardless of
// how long earlier operations take. Latency is measured from the scheduled
// arrival time, not the send time, so queueing delay under overload is
// visible instead of silently omitted (the coordinated-omission trap of
// closed-loop drivers).
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	var (
		cnt   counters
		wg    sync.WaitGroup
		sizer = wire.DefaultSizeModel()
		dur   = cfg.Duration.Seconds()

		edgeBase metrics.EdgeSnapshot

		splitBase, mergeBase, handBase int64
	)
	if cfg.EdgeStats != nil {
		edgeBase = cfg.EdgeStats()
	}
	if cfg.ElasticStats != nil {
		splitBase, mergeBase, handBase = cfg.ElasticStats()
	}
	workers := make([]*worker, cfg.Workers)
	for i := range workers {
		tr, err := cfg.NewTransport(i)
		if err != nil {
			// A worker that cannot connect at all still runs: its wire
			// operations fail and are counted, and redial keeps trying.
			// This is the harness contract for partially-down clusters.
			if cfg.OnEvent != nil {
				cfg.OnEvent(i, err)
			}
		}
		workers[i] = &worker{
			cfg:   &cfg,
			cnt:   &cnt,
			sizer: sizer,
			id:    i,
			gen:   NewGen(cfg.Spec, cfg.Seed+int64(i)*7919, cfg.Users, dur),
			sched: newArrivals(cfg.TargetQPS/float64(cfg.Workers), cfg.Spec.Poisson,
				rand.New(rand.NewSource(cfg.Seed^int64(i)<<20))),
			sem:  make(chan struct{}, cfg.MaxOutstanding),
			urng: rand.New(rand.NewSource(cfg.Seed ^ (int64(i)+1)*104729)),
		}
		workers[i].tr.Store(&trGen{tr: tr})
	}

	start := time.Now()
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run(start, dur)
		}(w)
	}
	var (
		faultStop chan struct{}
		faultDone chan struct{}
	)
	if len(cfg.Spec.Faults) > 0 {
		faultStop = make(chan struct{})
		faultDone = make(chan struct{})
		go func() {
			defer close(faultDone)
			injectFaults(cfg.Spec.Faults, cfg.Injector, cfg.Duration, start,
				faultStop, func(err error) {
					cnt.errors.Add(1)
					if cfg.OnEvent != nil {
						cfg.OnEvent(-1, err)
					}
				})
		}()
	}
	wg.Wait()
	if faultStop != nil {
		close(faultStop)
		<-faultDone
	}
	elapsed := time.Since(start)
	for _, w := range workers {
		w.close()
	}

	res := &Result{
		Scenario:  cfg.Spec.Name,
		TargetQPS: cfg.TargetQPS,
		Duration:  elapsed,
		Users:     cfg.Users,
		Workers:   cfg.Workers,

		Scheduled: cnt.scheduled.Load(),
		Local:     cnt.local.Load(),
		WireSent:  cnt.wireSent.Load(),
		WireOK:    cnt.wireOK.Load(),
		Errors:    cnt.errors.Load(),
		Timeouts:  cnt.timeouts.Load(),
		Shed:      cnt.shed.Load(),

		FullHit:         cnt.fullHit.Load(),
		PartialHit:      cnt.partialHit.Load(),
		PartialDegraded: cnt.partialDeg.Load(),
		Miss:            cnt.miss.Load(),
		Updates:         cnt.updates.Load(),
		UpdateRejects:   cnt.updateRej.Load(),

		BytesUp:   cnt.bytesUp.Load(),
		BytesDown: cnt.bytesDown.Load(),

		Mean: cnt.lat.Mean(),
		P50:  cnt.lat.Quantile(0.50),
		P99:  cnt.lat.Quantile(0.99),
		P999: cnt.lat.Quantile(0.999),

		SLO: cfg.Spec.SLO,
	}
	if cfg.ShardErrors != nil {
		res.ShardErrors = cfg.ShardErrors()
	}
	if cfg.FailoverStats != nil {
		res.Retries, res.Failovers, res.Redials = cfg.FailoverStats()
	}
	if cfg.EdgeStats != nil {
		now := cfg.EdgeStats()
		res.EdgeTier = true
		res.EdgeHits = now.Hits - edgeBase.Hits
		res.EdgeMisses = now.Misses - edgeBase.Misses
		res.EdgeForwards = now.Forwards - edgeBase.Forwards
	}
	if cfg.ElasticStats != nil {
		splits, merges, hand := cfg.ElasticStats()
		res.Elastic = true
		res.Splits = splits - splitBase
		res.Merges = merges - mergeBase
		res.Handover = time.Duration(hand - handBase)
	}
	// Achieved rate is completions over the offered window, not over
	// elapsed-including-drain: every operation was *scheduled* inside
	// cfg.Duration, and how late the stragglers ran is exactly what the
	// scheduled-time latency quantiles report. Dividing by drain time
	// would double-count lateness as lost throughput.
	res.AchievedQPS = float64(res.Local+res.WireOK) / dur
	res.Violations = res.CheckSLO()
	return res, nil
}

// trGen pairs a transport with a generation number so concurrent failures
// of one poisoned connection trigger a single redial.
type trGen struct {
	tr wire.Transport
	n  int
}

// worker owns one pacing loop, one wire identity, and one harvested-state
// grid shared by its slice of the user population.
type worker struct {
	cfg   *Config
	cnt   *counters
	sizer wire.SizeModel
	id    int
	gen   *Gen
	sched *arrivals
	sem   chan struct{}

	tr      atomic.Pointer[trGen]
	dialing atomic.Bool

	epoch atomic.Uint64

	mu    sync.Mutex // guards grid, urng, and the update bookkeeping below
	grid  repGrid
	urng  *rand.Rand // update-placement jitter (gen.rng belongs to the pacing loop)
	owned []ownedObj
	inext uint32

	issued sync.WaitGroup
}

// ownedObj is a moving object this worker inserted and now owns: the rect
// is the exact wire-precision rectangle the server stores, which the next
// move must echo (the R-tree delete contract, docs/UPDATES.md).
type ownedObj struct {
	id   rtree.ObjectID
	rect geom.Rect
}

// ownedTarget is the steady-state moving-object pool per worker: below it
// update batches insert, at it they move.
const ownedTarget = 256

// run is the open-loop pacing loop: pop the next scheduled arrival, sleep
// until it is due (never sleeping past the next arrival keeps the loop
// self-correcting — after an oversleep it issues every overdue arrival
// back-to-back and catches up), generate the operation, and dispatch it
// without waiting for completion.
func (w *worker) run(start time.Time, dur float64) {
	w.bootstrap()
	for {
		at := w.sched.Next()
		if at >= dur {
			break
		}
		if d := at - time.Since(start).Seconds(); d > 0 {
			time.Sleep(time.Duration(d * float64(time.Second)))
		}
		op := w.gen.Next(at)
		w.cnt.scheduled.Add(1)
		w.dispatch(op, start.Add(time.Duration(at*float64(time.Second))))
	}
	// Drain, but never hang on a dead backend: operations still in flight
	// past the timeout stay in WireSent without a completion counter —
	// visible as WireSent - WireOK - Errors.
	done := make(chan struct{})
	go func() { w.issued.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(w.cfg.Timeout + 500*time.Millisecond):
	}
}

// bootstrap performs the catalog round-trip every real client starts with
// (root descriptor + current epoch). Uncounted; failure is fine — the
// first query then behaves like a cold client.
func (w *worker) bootstrap() {
	g := w.tr.Load()
	if g.tr == nil {
		w.redial(g)
		return
	}
	req := &wire.Request{Client: wire.ClientID(w.id + 1), Catalog: true}
	resp, err := g.tr.RoundTrip(req)
	if err != nil {
		return
	}
	w.epochMax(resp.Epoch)
	w.release(resp)
}

// dispatch runs the operation in its own goroutine under the outstanding
// budget; arrivals that find the budget full are shed and counted.
func (w *worker) dispatch(op Op, scheduled time.Time) {
	if op.Kind == OpLocal {
		w.cnt.local.Add(1)
		w.cnt.fullHit.Add(1)
		return
	}
	select {
	case w.sem <- struct{}{}:
	default:
		w.cnt.shed.Add(1)
		return
	}
	w.issued.Add(1)
	go func() {
		defer func() { <-w.sem; w.issued.Done() }()
		w.roundTrip(op, scheduled)
	}()
}

// roundTrip builds, sends, and accounts one wire operation.
func (w *worker) roundTrip(op Op, scheduled time.Time) {
	req := &wire.Request{
		Client: wire.ClientID(w.id + 1),
		Epoch:  w.epoch.Load(),
	}
	var isQuery bool
	switch op.Kind {
	case OpUpdate:
		w.mu.Lock()
		req.Updates = w.buildUpdates(op)
		w.mu.Unlock()
		w.cnt.updates.Add(1)
		if len(req.Updates) == 0 {
			return
		}
	default:
		isQuery = true
		req.Q = op.Q
		switch op.Class {
		case ClassPartial:
			w.mu.Lock()
			req.H = w.grid.gather(queryWindow(op), nil)
			w.mu.Unlock()
			if len(req.H) > 0 {
				w.cnt.partialHit.Add(1)
			} else {
				// Nothing harvested overlaps: the partial hit degrades to
				// a cold miss (counted so scenarios like cache-thrash show
				// their harvest-defeat rate).
				w.cnt.partialDeg.Add(1)
			}
		default:
			w.cnt.miss.Add(1)
		}
	}

	w.cnt.wireSent.Add(1)
	w.cnt.bytesUp.Add(int64(w.sizer.RequestBytes(req)))

	g := w.tr.Load()
	if g.tr == nil {
		w.fail(g, fmt.Errorf("load: worker %d has no connection", w.id))
		return
	}
	resp, err := g.tr.RoundTrip(req)
	if err != nil {
		w.fail(g, err)
		return
	}

	lat := time.Since(scheduled)
	w.cnt.lat.Observe(lat)
	if lat > w.cfg.Timeout {
		w.cnt.timeouts.Add(1)
	}
	w.cnt.wireOK.Add(1)
	w.cnt.bytesDown.Add(int64(w.sizer.ResponseBytes(resp)))
	w.epochMax(resp.Epoch)

	w.mu.Lock()
	if op.Kind == OpUpdate {
		w.settleUpdates(req.Updates, resp.UpdateResults)
	} else if resp.FlushAll {
		w.grid.clear()
	}
	if isQuery && len(resp.Index) > 0 {
		w.grid.harvest(resp)
	}
	w.mu.Unlock()
	w.release(resp)
}

// fail counts a wire error and kicks off a redial when the worker holds a
// real (closable) connection — a poisoned pipelined conn fails everything
// outstanding, so many fail() calls race here; the generation check makes
// them one redial.
func (w *worker) fail(g *trGen, err error) {
	w.cnt.errors.Add(1)
	if w.cfg.OnEvent != nil {
		w.cfg.OnEvent(w.id, err)
	}
	if w.cfg.NewTransport == nil {
		return
	}
	if _, closable := g.tr.(io.Closer); g.tr != nil && !closable {
		return // in-process handler errors are application-level; keep it
	}
	if w.tr.Load() != g || !w.dialing.CompareAndSwap(false, true) {
		return
	}
	go w.redialLoop(g)
}

// redialLoop replaces a dead transport, backing off between attempts until
// the run ends or a dial succeeds.
func (w *worker) redialLoop(g *trGen) {
	defer w.dialing.Store(false)
	backoff := 50 * time.Millisecond
	for attempt := 0; attempt < 8; attempt++ {
		if w.redial(g) {
			return
		}
		time.Sleep(backoff)
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

func (w *worker) redial(g *trGen) bool {
	tr, err := w.cfg.NewTransport(w.id)
	if err != nil {
		if w.cfg.OnEvent != nil {
			w.cfg.OnEvent(w.id, err)
		}
		return false
	}
	if old := g.tr; old != nil {
		if c, ok := old.(io.Closer); ok {
			c.Close()
		}
	}
	w.tr.Store(&trGen{tr: tr, n: g.n + 1})
	return true
}

func (w *worker) close() {
	g := w.tr.Load()
	if c, ok := g.tr.(io.Closer); ok {
		c.Close()
	}
}

func (w *worker) release(resp *wire.Response) {
	if w.cfg.Release != nil {
		w.cfg.Release(resp)
	}
}

// epochMax advances the worker's last-seen epoch monotonically (pipelined
// responses complete out of order).
func (w *worker) epochMax(e uint64) {
	for {
		cur := w.epoch.Load()
		if e <= cur || w.epoch.CompareAndSwap(cur, e) {
			return
		}
	}
}

// buildUpdates assembles one batched update request: inserts while the
// worker's moving-object pool is below target, moves of pooled objects
// after. Objects are removed from the pool while their update is in flight
// (single outstanding mutation per object) and returned by settleUpdates,
// so pipelined batches never race on one object's rectangle. Caller holds
// w.mu.
func (w *worker) buildUpdates(op Op) []wire.UpdateOp {
	n := op.UpdateN
	if n < 1 {
		n = 1
	}
	ops := make([]wire.UpdateOp, 0, n)
	for i := 0; i < n; i++ {
		to := quantRect(geom.RectFromCenter(
			jitter(op.Center, 0.02, w.urng), 0.002, 0.002))
		if w.cfg.Spec.GrowUpdates {
			// Growth workload: every mutation is a fresh insert, in its own
			// wider id namespace (24-bit serial) so long runs never wrap into
			// the steady-state pool's ids.
			id := rtree.ObjectID(1<<31 | uint32(w.id&0x7f)<<24 | w.inext&0xffffff)
			w.inext++
			ops = append(ops, wire.UpdateOp{
				Kind: wire.UpdateInsert, Obj: id, To: to, Size: 128,
			})
			continue
		}
		if len(w.owned) < ownedTarget || len(w.owned) == 0 {
			// Worker-unique id namespace: high bit set, worker in the
			// middle, serial low — never collides with dataset ids.
			id := rtree.ObjectID(1<<30 | uint32(w.id)<<16 | w.inext&0xffff)
			w.inext++
			ops = append(ops, wire.UpdateOp{
				Kind: wire.UpdateInsert, Obj: id, To: to, Size: 128,
			})
			continue
		}
		// Pop a pooled object and move it toward the operation center.
		last := len(w.owned) - 1
		o := w.owned[last]
		w.owned = w.owned[:last]
		ops = append(ops, wire.UpdateOp{
			Kind: wire.UpdateMove, Obj: o.id, From: o.rect, To: to,
		})
	}
	return ops
}

// settleUpdates returns acknowledged objects to the pool at their new
// rectangles. Rejected operations (rare: an exactly coincident concurrent
// mutation) drop the object and are counted — never fatal. Caller holds
// w.mu.
func (w *worker) settleUpdates(ops []wire.UpdateOp, results []bool) {
	for i, o := range ops {
		applied := i < len(results) && results[i]
		switch o.Kind {
		case wire.UpdateInsert, wire.UpdateMove:
			if applied {
				w.owned = append(w.owned, ownedObj{id: o.Obj, rect: o.To})
			} else {
				w.cnt.updateRej.Add(1)
			}
		}
	}
}

// queryWindow is the spatial region a partial hit gathers cached state
// for: the range/join window, or a neighborhood around a kNN center.
func queryWindow(op Op) geom.Rect {
	if op.Kind == OpKNN {
		return geom.RectFromCenter(op.Center, 0.05, 0.05)
	}
	return op.Q.Window
}

// quantRect rounds a rectangle to float32 wire precision so the rectangle
// a worker echoes in a later move matches the stored entry bit-for-bit
// whether the transport is in-process (float64 preserved) or binary TCP
// (float32 on the wire).
func quantRect(r geom.Rect) geom.Rect {
	return geom.Rect{
		MinX: float64(float32(r.MinX)), MinY: float64(float32(r.MinY)),
		MaxX: float64(float32(r.MaxX)), MaxY: float64(float32(r.MaxY)),
	}
}
