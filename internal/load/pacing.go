package load

import "math/rand"

// arrivals generates one worker's open-loop arrival schedule: offsets in
// seconds from the run start at which operations are *due*, independent of
// how long earlier operations take. Poisson mode draws exponential
// inter-arrival gaps (the superposition of many independent users); fixed
// mode spaces arrivals evenly. Not safe for concurrent use.
type arrivals struct {
	rate    float64 // arrivals per second
	poisson bool
	rng     *rand.Rand
	next    float64
}

// newArrivals builds a schedule at rate ops/sec. A fixed-rate worker is
// phase-shifted by a random fraction of one gap so that multiple workers
// don't fire in lockstep.
func newArrivals(rate float64, poisson bool, rng *rand.Rand) *arrivals {
	a := &arrivals{rate: rate, poisson: poisson, rng: rng}
	if a.rate <= 0 {
		a.rate = 1
	}
	if poisson {
		a.next = rng.ExpFloat64() / a.rate
	} else {
		a.next = rng.Float64() / a.rate
	}
	return a
}

// Next returns the next scheduled arrival offset and advances the schedule.
func (a *arrivals) Next() float64 {
	t := a.next
	if a.poisson {
		a.next += a.rng.ExpFloat64() / a.rate
	} else {
		a.next += 1 / a.rate
	}
	return t
}
