package load

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Result is one scenario run's outcome.
type Result struct {
	Scenario    string
	TargetQPS   float64
	AchievedQPS float64 // (Local + WireOK) / Duration
	Duration    time.Duration
	Users       int
	Workers     int

	Scheduled int64 // arrivals generated on schedule
	Local     int64 // full hits answered without wire traffic
	WireSent  int64 // wire requests issued
	WireOK    int64 // wire requests answered without error
	Errors    int64 // wire requests that failed
	Timeouts  int64 // answered, but past Config.Timeout (subset of WireOK)
	Shed      int64 // arrivals dropped at the outstanding budget

	FullHit         int64
	PartialHit      int64
	PartialDegraded int64 // partial hits with nothing harvested to hand over
	Miss            int64
	Updates         int64 // update batches (not individual mutations)
	UpdateRejects   int64 // individual mutations the server rejected
	ShardErrors     int64 // per-shard sub-query failures (cluster only)

	Retries   int64 // shard round trips the router retried (cluster only)
	Failovers int64 // replica promotions (cluster only)
	Redials   int64 // shard reconnects after failure (cluster only)

	EdgeTier     bool  // the run went through an edge cache tier
	EdgeHits     int64 // queries the edge answered without touching the cluster
	EdgeMisses   int64 // cacheable queries the edge had to forward
	EdgeForwards int64 // all requests the edge relayed upstream

	Elastic  bool          // topology-op counters were sampled (cluster only)
	Splits   int64         // online shard splits during the run
	Merges   int64         // online shard merges during the run
	Handover time.Duration // total time spent inside topology cutovers

	BytesUp   int64
	BytesDown int64

	Mean time.Duration
	P50  time.Duration
	P99  time.Duration
	P999 time.Duration

	SLO        SLO
	Violations []string
}

// CheckSLO evaluates the result against its SLO envelope and returns the
// violations (empty means the scenario passed).
func (r *Result) CheckSLO() []string {
	var v []string
	slo := r.SLO
	if slo.MinAchievedFrac > 0 && r.TargetQPS > 0 {
		if frac := r.AchievedQPS / r.TargetQPS; frac < slo.MinAchievedFrac {
			v = append(v, fmt.Sprintf("achieved %.0f qps is %.2f of the %.0f target (min %.2f)",
				r.AchievedQPS, frac, r.TargetQPS, slo.MinAchievedFrac))
		}
	}
	if r.WireSent > 0 {
		if frac := float64(r.Errors) / float64(r.WireSent); frac > slo.MaxErrorFrac {
			v = append(v, fmt.Sprintf("%d/%d wire errors (max frac %.3f)",
				r.Errors, r.WireSent, slo.MaxErrorFrac))
		}
	}
	if r.Scheduled > 0 {
		if frac := float64(r.Shed) / float64(r.Scheduled); frac > slo.MaxShedFrac {
			v = append(v, fmt.Sprintf("%d/%d arrivals shed (max frac %.3f)",
				r.Shed, r.Scheduled, slo.MaxShedFrac))
		}
	}
	if slo.MaxP99 > 0 && r.P99 > slo.MaxP99 {
		v = append(v, fmt.Sprintf("p99 %v exceeds %v", r.P99, slo.MaxP99))
	}
	if slo.MaxP999 > 0 && r.P999 > slo.MaxP999 {
		v = append(v, fmt.Sprintf("p999 %v exceeds %v", r.P999, slo.MaxP999))
	}
	return v
}

// Pass reports whether the run met its SLO.
func (r *Result) Pass() bool { return len(r.Violations) == 0 }

// ScenarioReport is the machine-readable form of a Result: flat keys,
// integer microseconds, stable names — the schema CI validates.
type ScenarioReport struct {
	Scenario    string  `json:"scenario"`
	TargetQPS   float64 `json:"target_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	DurationSec float64 `json:"duration_sec"`
	Users       int     `json:"users"`
	Workers     int     `json:"workers"`

	Scheduled int64 `json:"scheduled"`
	Local     int64 `json:"local"`
	WireSent  int64 `json:"wire_sent"`
	WireOK    int64 `json:"wire_ok"`
	Errors    int64 `json:"errors"`
	Timeouts  int64 `json:"timeouts"`
	Shed      int64 `json:"shed"`

	FullHit         int64 `json:"full_hit"`
	PartialHit      int64 `json:"partial_hit"`
	PartialDegraded int64 `json:"partial_degraded"`
	Miss            int64 `json:"miss"`
	Updates         int64 `json:"updates"`
	UpdateRejects   int64 `json:"update_rejects"`
	ShardErrors     int64 `json:"shard_errors"`

	Retries   int64 `json:"retries"`
	Failovers int64 `json:"failovers"`
	Redials   int64 `json:"redials"`

	EdgeTier     bool  `json:"edge_tier"`
	EdgeHits     int64 `json:"edge_hits"`
	EdgeMisses   int64 `json:"edge_misses"`
	EdgeForwards int64 `json:"edge_forwards"`

	Elastic    bool  `json:"elastic"`
	Splits     int64 `json:"splits"`
	Merges     int64 `json:"merges"`
	HandoverUS int64 `json:"handover_us"`

	BytesUp   int64 `json:"bytes_up"`
	BytesDown int64 `json:"bytes_down"`

	MeanUS int64 `json:"mean_us"`
	P50US  int64 `json:"p50_us"`
	P99US  int64 `json:"p99_us"`
	P999US int64 `json:"p999_us"`

	SLOPass    bool     `json:"slo_pass"`
	Violations []string `json:"violations"`
}

// Report converts the result to its JSON schema form.
func (r *Result) Report() ScenarioReport {
	us := func(d time.Duration) int64 { return d.Microseconds() }
	v := r.Violations
	if v == nil {
		v = []string{}
	}
	return ScenarioReport{
		Scenario:    r.Scenario,
		TargetQPS:   r.TargetQPS,
		AchievedQPS: r.AchievedQPS,
		DurationSec: r.Duration.Seconds(),
		Users:       r.Users,
		Workers:     r.Workers,

		Scheduled: r.Scheduled,
		Local:     r.Local,
		WireSent:  r.WireSent,
		WireOK:    r.WireOK,
		Errors:    r.Errors,
		Timeouts:  r.Timeouts,
		Shed:      r.Shed,

		FullHit:         r.FullHit,
		PartialHit:      r.PartialHit,
		PartialDegraded: r.PartialDegraded,
		Miss:            r.Miss,
		Updates:         r.Updates,
		UpdateRejects:   r.UpdateRejects,
		ShardErrors:     r.ShardErrors,

		Retries:   r.Retries,
		Failovers: r.Failovers,
		Redials:   r.Redials,

		EdgeTier:     r.EdgeTier,
		EdgeHits:     r.EdgeHits,
		EdgeMisses:   r.EdgeMisses,
		EdgeForwards: r.EdgeForwards,

		Elastic:    r.Elastic,
		Splits:     r.Splits,
		Merges:     r.Merges,
		HandoverUS: us(r.Handover),

		BytesUp:   r.BytesUp,
		BytesDown: r.BytesDown,

		MeanUS: us(r.Mean),
		P50US:  us(r.P50),
		P99US:  us(r.P99),
		P999US: us(r.P999),

		SLOPass:    r.Pass(),
		Violations: v,
	}
}

// FileReport is the top-level JSON document proload emits: one entry per
// scenario run, in run order.
type FileReport struct {
	Scenarios []ScenarioReport `json:"scenarios"`
}

// MarshalReports renders runs as the proload JSON document.
func MarshalReports(results []*Result) ([]byte, error) {
	fr := FileReport{Scenarios: make([]ScenarioReport, 0, len(results))}
	for _, r := range results {
		fr.Scenarios = append(fr.Scenarios, r.Report())
	}
	return json.MarshalIndent(fr, "", "  ")
}

// requiredKeys is the scenario-report schema the CI check enforces: every
// key must be present (renaming a field silently breaks downstream
// tooling, so the contract is explicit).
var requiredKeys = []string{
	"scenario", "target_qps", "achieved_qps", "duration_sec",
	"users", "workers",
	"scheduled", "local", "wire_sent", "wire_ok", "errors", "timeouts", "shed",
	"full_hit", "partial_hit", "partial_degraded", "miss",
	"updates", "update_rejects", "shard_errors",
	"retries", "failovers", "redials",
	"edge_tier", "edge_hits", "edge_misses", "edge_forwards",
	"elastic", "splits", "merges", "handover_us",
	"bytes_up", "bytes_down",
	"mean_us", "p50_us", "p99_us", "p999_us",
	"slo_pass", "violations",
}

// ValidateReport checks a proload JSON document against the schema: the
// scenarios array exists and is non-empty, every entry carries every
// required key, counters are non-negative, and the latency quantiles are
// ordered p50 <= p99 <= p999.
func ValidateReport(data []byte) error {
	var doc struct {
		Scenarios []map[string]json.RawMessage `json:"scenarios"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("load: report is not valid JSON: %w", err)
	}
	if len(doc.Scenarios) == 0 {
		return fmt.Errorf("load: report has no scenarios")
	}
	for i, sc := range doc.Scenarios {
		for _, k := range requiredKeys {
			if _, ok := sc[k]; !ok {
				return fmt.Errorf("load: scenario %d missing key %q", i, k)
			}
		}
		var r ScenarioReport
		raw, _ := json.Marshal(sc)
		if err := json.Unmarshal(raw, &r); err != nil {
			return fmt.Errorf("load: scenario %d malformed: %w", i, err)
		}
		if r.Scenario == "" {
			return fmt.Errorf("load: scenario %d has an empty name", i)
		}
		for _, c := range []struct {
			name string
			v    int64
		}{
			{"scheduled", r.Scheduled}, {"local", r.Local},
			{"wire_sent", r.WireSent}, {"wire_ok", r.WireOK},
			{"errors", r.Errors}, {"timeouts", r.Timeouts}, {"shed", r.Shed},
			{"retries", r.Retries}, {"failovers", r.Failovers},
			{"redials", r.Redials},
			{"edge_hits", r.EdgeHits}, {"edge_misses", r.EdgeMisses},
			{"edge_forwards", r.EdgeForwards},
			{"splits", r.Splits}, {"merges", r.Merges},
			{"handover_us", r.HandoverUS},
			{"bytes_up", r.BytesUp}, {"bytes_down", r.BytesDown},
			{"mean_us", r.MeanUS}, {"p50_us", r.P50US},
			{"p99_us", r.P99US}, {"p999_us", r.P999US},
		} {
			if c.v < 0 {
				return fmt.Errorf("load: scenario %q: %s is negative", r.Scenario, c.name)
			}
		}
		if r.P50US > r.P99US || r.P99US > r.P999US {
			return fmt.Errorf("load: scenario %q: quantiles out of order (p50=%d p99=%d p999=%d)",
				r.Scenario, r.P50US, r.P99US, r.P999US)
		}
		if r.TargetQPS < 0 || r.AchievedQPS < 0 || r.DurationSec < 0 {
			return fmt.Errorf("load: scenario %q: negative rate or duration", r.Scenario)
		}
	}
	return nil
}

// Fprint writes the human-readable run summary.
func (r *Result) Fprint(w io.Writer) {
	status := "PASS"
	if !r.Pass() {
		status = "FAIL"
	}
	fmt.Fprintf(w, "scenario %-20s %s\n", r.Scenario, status)
	fmt.Fprintf(w, "  target %.0f qps  achieved %.0f qps (%.1f%%)  %v  users=%d workers=%d\n",
		r.TargetQPS, r.AchievedQPS, 100*r.AchievedQPS/r.TargetQPS,
		r.Duration.Round(time.Millisecond), r.Users, r.Workers)
	fmt.Fprintf(w, "  ops: scheduled=%d local=%d wire=%d ok=%d errors=%d timeouts=%d shed=%d shard_errors=%d\n",
		r.Scheduled, r.Local, r.WireSent, r.WireOK, r.Errors, r.Timeouts, r.Shed, r.ShardErrors)
	fmt.Fprintf(w, "  mix: full=%d partial=%d degraded=%d miss=%d updates=%d rejects=%d\n",
		r.FullHit, r.PartialHit, r.PartialDegraded, r.Miss, r.Updates, r.UpdateRejects)
	if r.Retries > 0 || r.Failovers > 0 || r.Redials > 0 {
		fmt.Fprintf(w, "  failover: retries=%d promotions=%d redials=%d\n",
			r.Retries, r.Failovers, r.Redials)
	}
	if r.Elastic && (r.Splits > 0 || r.Merges > 0) {
		fmt.Fprintf(w, "  elastic: splits=%d merges=%d handover=%v\n",
			r.Splits, r.Merges, r.Handover.Round(time.Microsecond))
	}
	if r.EdgeTier {
		rate := 0.0
		if t := r.EdgeHits + r.EdgeMisses; t > 0 {
			rate = float64(r.EdgeHits) / float64(t)
		}
		fmt.Fprintf(w, "  edge: hits=%d misses=%d (%.1f%%) forwarded=%d upstream_cut=%.1f%%\n",
			r.EdgeHits, r.EdgeMisses, 100*rate,
			r.EdgeForwards, 100*(1-float64(r.EdgeForwards)/float64(max64(r.WireSent, 1))))
	}
	fmt.Fprintf(w, "  latency: mean=%v p50=%v p99=%v p999=%v  bytes: up=%d down=%d\n",
		r.Mean.Round(time.Microsecond), r.P50, r.P99, r.P999, r.BytesUp, r.BytesDown)
	for _, v := range r.Violations {
		fmt.Fprintf(w, "  SLO violation: %s\n", v)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
