package load

import (
	"math"
	"math/rand"
	"testing"
)

// TestMatrixWellFormed pins the matrix invariants the rest of the harness
// assumes: unique stable names, normalized mixes, an SLO on everything.
func TestMatrixWellFormed(t *testing.T) {
	specs := Matrix()
	if len(specs) < 11 {
		t.Fatalf("matrix has %d scenarios, want >= 11", len(specs))
	}
	seen := map[string]bool{}
	for _, sp := range specs {
		if sp.Name == "" || seen[sp.Name] {
			t.Fatalf("scenario name %q empty or duplicated", sp.Name)
		}
		seen[sp.Name] = true
		sum := sp.RangeFrac + sp.KNNFrac + sp.JoinFrac + sp.UpdateFrac
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: mix sums to %g, want 1", sp.Name, sum)
		}
		if hs := sp.FullHitFrac + sp.PartialHitFrac; hs > 1+1e-9 {
			t.Errorf("%s: hit fractions sum to %g > 1", sp.Name, hs)
		}
		if sp.SLO.MinAchievedFrac <= 0 || sp.SLO.MaxShedFrac <= 0 {
			t.Errorf("%s: SLO not fully set: %+v", sp.Name, sp.SLO)
		}
		if _, err := Lookup(sp.Name); err != nil {
			t.Errorf("Lookup(%q): %v", sp.Name, err)
		}
	}
	if _, err := Lookup("no-such-scenario"); err == nil {
		t.Error("Lookup of unknown scenario did not fail")
	}
}

// TestGenMixPinned verifies, for every scenario, that the generated
// operation mix and the per-user cached-state sampling land on the spec's
// fractions. Joins always run cold, so the expected local/partial
// fractions apply to the range+kNN share only.
func TestGenMixPinned(t *testing.T) {
	const n = 20000
	const tol = 0.02 // ~6 sigma at n=20000
	for _, sp := range Matrix() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			g := NewGen(sp, 99, 1_000_000, 10)
			var kind [5]int
			var class [4]int
			for i := 0; i < n; i++ {
				op := g.Next(10 * float64(i) / n)
				kind[op.Kind]++
				class[op.Class]++
			}
			frac := func(c int) float64 { return float64(c) / n }

			if got, want := frac(kind[OpUpdate]), sp.UpdateFrac; math.Abs(got-want) > tol {
				t.Errorf("update frac %.3f, want %.3f", got, want)
			}
			if got, want := frac(kind[OpJoin]), sp.JoinFrac; math.Abs(got-want) > tol {
				t.Errorf("join frac %.3f, want %.3f", got, want)
			}
			// CrowdCold scenarios route every hotspot query to ClassMiss, so
			// warmth sampling applies only to the background share. The
			// flash-crowd ramp (3t/dur capped at 1) averages 5/6 over a run.
			hotShare := 0.0
			if sp.CrowdCold {
				hotShare = sp.HotFrac
				if sp.Shape == ShapeFlashCrowd {
					hotShare *= 5.0 / 6
				}
			}
			qf := sp.RangeFrac + sp.KNNFrac // the share warmth sampling applies to
			coldQF := qf * (1 - hotShare)
			if got, want := frac(class[ClassLocal]), coldQF*sp.FullHitFrac; math.Abs(got-want) > tol {
				t.Errorf("full-hit frac %.3f, want %.3f", got, want)
			}
			if got, want := frac(class[ClassPartial]), coldQF*sp.PartialHitFrac; math.Abs(got-want) > tol {
				t.Errorf("partial-hit frac %.3f, want %.3f", got, want)
			}
			wantMiss := coldQF*(1-sp.FullHitFrac-sp.PartialHitFrac) + qf*hotShare + sp.JoinFrac
			if got := frac(class[ClassMiss]); math.Abs(got-wantMiss) > tol {
				t.Errorf("miss frac %.3f, want %.3f", got, wantMiss)
			}
		})
	}
}

// TestGenDeterministic pins that the same (spec, seed, users, duration)
// reproduces the identical operation stream — the property CI regression
// comparisons rest on.
func TestGenDeterministic(t *testing.T) {
	for _, name := range []string{"steady", "commute-wave", "cache-thrash"} {
		sp, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		a := NewGen(sp, 7, 100_000, 5)
		b := NewGen(sp, 7, 100_000, 5)
		for i := 0; i < 2000; i++ {
			at := 5 * float64(i) / 2000
			oa, ob := a.Next(at), b.Next(at)
			if oa.Kind != ob.Kind || oa.Class != ob.Class || oa.User != ob.User ||
				oa.Center != ob.Center || oa.Q != ob.Q {
				t.Fatalf("%s: op %d diverged: %+v vs %+v", name, i, oa, ob)
			}
		}
	}
}

// TestUserAttributesStable pins the hash-derived population: a user's home
// and warmth never change, and the warmth distribution is uniform enough
// to make the spec fractions meaningful.
func TestUserAttributesStable(t *testing.T) {
	for u := uint64(0); u < 1000; u++ {
		if homeOf(3, u) != homeOf(3, u) {
			t.Fatalf("user %d home not stable", u)
		}
		h := homeOf(3, u)
		if h.X < 0 || h.X >= 1 || h.Y < 0 || h.Y >= 1 {
			t.Fatalf("user %d home %v outside unit square", u, h)
		}
	}
	// Different seeds relocate the population.
	if homeOf(3, 42) == homeOf(4, 42) {
		t.Error("seed does not affect user placement")
	}
}

// TestArrivalsPoissonChiSquared is the arrival-process sanity bound: the
// inter-arrival gaps of a Poisson schedule, pushed through the exponential
// CDF, must be uniform. Twenty equal-probability bins, df=19; 50 is past
// the 99.99th percentile, so a real distribution bug fails loudly while
// seed-to-seed noise never does.
func TestArrivalsPoissonChiSquared(t *testing.T) {
	const (
		rate = 1000.0
		n    = 20000
		bins = 20
	)
	a := newArrivals(rate, true, rand.New(rand.NewSource(11)))
	prev := 0.0
	var counts [bins]int
	for i := 0; i < n; i++ {
		at := a.Next()
		gap := at - prev
		prev = at
		u := 1 - math.Exp(-rate*gap) // exponential CDF -> uniform
		b := int(u * bins)
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	exp := float64(n) / bins
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - exp
		chi2 += d * d / exp
	}
	if chi2 > 50 {
		t.Fatalf("chi-squared %.1f exceeds 50 (df=19): gaps are not exponential; counts=%v", chi2, counts)
	}
	// And the realized rate matches the schedule.
	if got := float64(n) / prev; math.Abs(got-rate)/rate > 0.05 {
		t.Fatalf("realized rate %.0f, want ~%.0f", got, rate)
	}
}

// TestArrivalsFixed pins the fixed-rate schedule: constant gaps of 1/rate
// after the randomized phase offset.
func TestArrivalsFixed(t *testing.T) {
	const rate = 500.0
	a := newArrivals(rate, false, rand.New(rand.NewSource(5)))
	first := a.Next()
	if first < 0 || first >= 1/rate {
		t.Fatalf("phase offset %g outside [0, %g)", first, 1/rate)
	}
	prev := first
	for i := 0; i < 1000; i++ {
		at := a.Next()
		if math.Abs((at-prev)-1/rate) > 1e-12 {
			t.Fatalf("gap %g, want exactly %g", at-prev, 1/rate)
		}
		prev = at
	}
}

// TestShapeCenters spot-checks the population dynamics: commute centers
// swing with the phase, flash crowds concentrate late, thrash scatters.
func TestShapeCenters(t *testing.T) {
	sp, _ := Lookup("flash-crowd")
	g := NewGen(sp, 21, 1_000_000, 10)
	hot := regionCenter(21, 0)
	near := func(gen *Gen, tm float64, samples int) int {
		n := 0
		for i := 0; i < samples; i++ {
			op := gen.Next(tm)
			dx, dy := op.Center.X-hot.X, op.Center.Y-hot.Y
			if math.Hypot(dx, dy) < 3*sp.HotRadius {
				n++
			}
		}
		return n
	}
	early := near(g, 0.1, 2000)
	late := near(g, 9.9, 2000)
	if late <= early+200 {
		t.Fatalf("flash crowd did not ramp: %d hot early, %d hot late", early, late)
	}
}
