package load

import (
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/wire"
)

// The simulated population is hash-derived: a user is nothing but an
// integer, and every per-user attribute (home point, work point, cache
// warmth class) is a pure function of (seed, user, salt). That is what
// makes millions of users free — the harness stores zero bytes per user.

// hash64 is a splitmix64-style mix of the seed, a user id, and a salt.
func hash64(seed, user, salt uint64) uint64 {
	z := seed ^ (user * 0x9e3779b97f4a7c15) ^ (salt * 0xbf58476d1ce4e5b9)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hash01 maps the hash to [0, 1).
func hash01(seed, user, salt uint64) float64 {
	return float64(hash64(seed, user, salt)>>11) / (1 << 53)
}

// homeOf and workOf are the user's anchor points in the unit square.
func homeOf(seed int64, user uint64) geom.Point {
	return geom.Pt(hash01(uint64(seed), user, 0x686f6d&0xffff), hash01(uint64(seed), user, 0x686f6d))
}

func workOf(seed int64, user uint64) geom.Point {
	return geom.Pt(hash01(uint64(seed), user, 0x776f726b&0xffff), hash01(uint64(seed), user, 0x776f726b))
}

// regionCenter seeds the scenario's hotspot/churn region centers.
func regionCenter(seed int64, idx uint64) geom.Point {
	return geom.Pt(
		0.1+0.8*hash01(uint64(seed), idx, 0x726567),
		0.1+0.8*hash01(uint64(seed), idx, 0x696f6e),
	)
}

// cachedRef is one harvested index reference — a child-node ref or a
// super-entry (partition-tree) ref — ready to hand back to the server as
// mid-tree state. Identity is query.Ref.Same (kind, node, code); the MBR
// rides along for spatial filing.
type cachedRef struct {
	ref query.Ref
}

// repGrid is a worker's stand-in for its users' caches: a coarse spatial
// grid of index-node references harvested from earlier responses. Handing
// a query's overlapping refs back as H is exactly what a warm proactive-
// caching client does — the server resumes from those nodes instead of the
// root. References can go stale after updates; that is safe by design: node
// ids are never reused, and the server expands an unknown id to nothing, so
// a stale handover degrades to a (counted) colder query rather than an
// error.
type repGrid struct {
	cells [gridDim * gridDim][]cachedRef
	n     int
}

const (
	gridDim      = 32
	cellCap      = 4  // refs kept per cell (newest win)
	harvestReps  = 16 // NodeReps harvested per response
	harvestElems = 16 // child refs harvested per NodeRep
	handoverMax  = 16 // refs handed over per query
	// refCellMax drops refs whose MBR covers more than this many grid cells
	// per axis: a node that wide sits just under the root, handing it over
	// saves almost no descent, and replicating it across its whole footprint
	// would crowd the deeper refs out of every cell it touches.
	refCellMax = 8
)

// harvest records child-node references from a response's supporting index.
func (g *repGrid) harvest(resp *wire.Response) {
	if resp.FlushAll {
		g.clear()
	}
	reps := resp.Index
	if len(reps) > harvestReps {
		reps = reps[:harvestReps]
	}
	for _, rep := range reps {
		elems := rep.Elems
		if len(elems) > harvestElems {
			elems = elems[:harvestElems]
		}
		for _, e := range elems {
			if !e.Super && e.Child == rtree.InvalidNode {
				continue // object entry: results, not resumable index state
			}
			// Super (partition-tree) entries are harvested too: they are
			// the deeper, smaller fragments adaptive node shipping favors —
			// skipping them starved the grid of exactly the refs most
			// likely to sit inside a later query's window.
			g.insert(cachedRef{ref: e.Ref(rep.ID)})
		}
	}
}

// insert files the ref under every grid cell its MBR overlaps — not just
// the center cell. Harvested node MBRs are typically wider than a cell (and
// much wider than a query window), so center-cell filing made most
// gather() probes miss refs that genuinely overlap the window: the steady
// scenario degraded over half of its partial hits to cold misses before
// this was made footprint-based.
func (g *repGrid) insert(r cachedRef) {
	x0, x1 := gridSpan(r.ref.MBR.MinX, r.ref.MBR.MaxX)
	y0, y1 := gridSpan(r.ref.MBR.MinY, r.ref.MBR.MaxY)
	if x1-x0 >= refCellMax || y1-y0 >= refCellMax {
		return // near-root node: not worth caching or replicating
	}
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			g.insertCell(y*gridDim+x, r)
		}
	}
}

func (g *repGrid) insertCell(c int, r cachedRef) {
	cell := g.cells[c]
	for i := range cell {
		if cell[i].ref.Same(r.ref) {
			cell[i].ref = r.ref
			return
		}
	}
	if len(cell) < cellCap {
		g.cells[c] = append(cell, r)
		g.n++
		return
	}
	// Evict the oldest (front) ref; newest knowledge wins.
	copy(cell, cell[1:])
	cell[len(cell)-1] = r
}

// gather appends up to handoverMax queued node references overlapping the
// window, the handed-over H of a partial-hit query. A ref filed under
// several spanned cells is handed over once. Returns dst unchanged when
// nothing overlaps (the query degrades to a cold miss).
func (g *repGrid) gather(window geom.Rect, dst []query.QueuedElem) []query.QueuedElem {
	x0, x1 := gridSpan(window.MinX, window.MaxX)
	y0, y1 := gridSpan(window.MinY, window.MaxY)
	start := len(dst)
	var seen [handoverMax]query.Ref
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
		refs:
			for _, r := range g.cells[y*gridDim+x] {
				if !r.ref.MBR.Intersects(window) {
					continue
				}
				for _, s := range seen[:len(dst)-start] {
					if s.Same(r.ref) {
						continue refs
					}
				}
				seen[len(dst)-start] = r.ref
				dst = append(dst, query.QueuedElem{
					Key:  0,
					Elem: query.Single(r.ref),
				})
				if len(dst)-start >= handoverMax {
					return dst
				}
			}
		}
	}
	return dst
}

func gridSpan(lo, hi float64) (int, int) {
	a := int(lo * gridDim)
	b := int(hi * gridDim)
	if a < 0 {
		a = 0
	}
	if b >= gridDim {
		b = gridDim - 1
	}
	if b < a {
		b = a
	}
	return a, b
}

func (g *repGrid) clear() {
	for i := range g.cells {
		g.cells[i] = g.cells[i][:0]
	}
	g.n = 0
}

// size reports how many refs the grid holds (diagnostics and tests).
func (g *repGrid) size() int { return g.n }
