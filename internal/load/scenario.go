// Package load is the open-loop distributed load harness: it drives a
// server or cluster endpoint at a *target* arrival rate — queries keep
// arriving on schedule whether or not earlier ones have finished, the way
// independent mobile users behave — multiplexing millions of lightweight
// simulated users over a bounded pool of pipelined connections and
// reporting SLO-style latency quantiles, achieved-vs-target throughput,
// error counts, and byte accounting (docs/LOAD.md).
//
// The scenario matrix names the workload shapes the system must survive:
// controllable full-hit/partial-hit/miss ratios, commute waves, flash
// crowds, region churn, update and invalidation storms, hotness shifts,
// and adversarial cache-thrash. Every scenario is a deterministic
// generator: the same seed produces the same operation stream, so CI can
// gate on scenario-level regressions the way it gates on microbenchmarks.
package load

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/query"
)

// OpKind is what one scheduled user operation does on the wire.
type OpKind uint8

const (
	// OpLocal is a full cache hit: the user answers from its own cache and
	// the server never hears about it. The harness counts it toward the
	// arrival rate but sends nothing.
	OpLocal OpKind = iota
	// OpRange, OpKNN, OpJoin are remainder queries of the respective kind.
	OpRange
	OpKNN
	OpJoin
	// OpUpdate is a batched index-update request (moving-object feed).
	OpUpdate
)

// Class is the cached-state class sampled for a query operation.
type Class uint8

const (
	// ClassLocal is a full hit (no wire traffic).
	ClassLocal Class = iota
	// ClassPartial is a partial hit: the request hands over a mid-tree
	// priority queue built from index fragments harvested off earlier
	// responses, so the server resumes instead of starting from the root.
	ClassPartial
	// ClassMiss is a cold miss: an empty handover, the server seeds from
	// its root and ships the full remainder plus supporting index.
	ClassMiss
	// ClassUpdate marks update operations.
	ClassUpdate
)

// Op is one generated user operation.
type Op struct {
	Kind   OpKind
	Class  Class
	User   uint64
	Q      query.Query
	Center geom.Point
	// UpdateN is how many mutations an OpUpdate batches into one request
	// (update storms ship large batches).
	UpdateN int
}

// Shape selects the population dynamics of a scenario: where query centers
// come from as simulated time advances.
type Shape uint8

const (
	// ShapeUniform spreads users over the unit square; a tracked cohort
	// moves under the DIR mobility model so consecutive queries from the
	// same user exhibit the paper's spatial locality.
	ShapeUniform Shape = iota
	// ShapeCommute oscillates the whole population between per-user home
	// and work points with period Spec.Period (the morning/evening wave).
	ShapeCommute
	// ShapeFlashCrowd ramps a single hotspot from nothing to Spec.HotFrac
	// of all traffic over the run (a stadium filling up).
	ShapeFlashCrowd
	// ShapeChurn rotates the hotspot among Spec.Regions seeded regions
	// every Spec.Period seconds. Regions == 1 is a static hotspot.
	ShapeChurn
	// ShapeHotShift serves Spec.HotFrac of traffic from one region for the
	// first half of the run, then abruptly switches to another.
	ShapeHotShift
	// ShapeThrash walks query centers across disjoint cold cells in a
	// pattern designed to defeat any admission or locality heuristic.
	ShapeThrash
)

// SLO is the per-scenario service-level envelope the run is judged against.
// Zero-valued duration fields are unchecked.
type SLO struct {
	// MinAchievedFrac is the floor on achieved/target operation rate.
	MinAchievedFrac float64
	// MaxErrorFrac caps protocol errors as a fraction of wire requests.
	MaxErrorFrac float64
	// MaxShedFrac caps arrivals dropped because the outstanding-request
	// budget was exhausted (the open-loop overload signal).
	MaxShedFrac float64
	// MaxP99 / MaxP999 bound the open-loop latency quantiles (measured
	// from the scheduled arrival, so queueing delay counts).
	MaxP99  time.Duration
	MaxP999 time.Duration
}

// Spec is one scenario of the matrix: an operation mix, a cached-state
// distribution, an arrival process, and population dynamics.
type Spec struct {
	Name        string
	Description string

	// Operation mix; normalized to sum to 1.
	RangeFrac  float64
	KNNFrac    float64
	JoinFrac   float64
	UpdateFrac float64

	// Cached-state distribution over the user population: a user whose
	// identity hashes below FullHitFrac answers locally, the next
	// PartialHitFrac hand over mid-tree state, the rest miss cold. Joins
	// always miss (remainder handover for pairs is not modeled).
	FullHitFrac    float64
	PartialHitFrac float64

	// Poisson selects exponential inter-arrival gaps (independent users);
	// false means a fixed-rate schedule.
	Poisson bool

	// Population dynamics.
	Shape     Shape
	HotFrac   float64 // fraction of traffic drawn into the hotspot
	HotRadius float64 // hotspot radius
	Regions   int     // ShapeChurn: number of rotating regions
	Period    float64 // seconds per commute/churn cycle

	// Query geometry.
	WindowSide float64 // range window side (also the kNN/join neighborhood)
	KMax       int     // kNN k is uniform in [1, KMax]
	JoinDist   float64 // join distance threshold

	// UpdateBatch is how many mutations one OpUpdate request carries.
	UpdateBatch int

	// GrowUpdates makes update batches insert fresh objects for the whole
	// run instead of settling into the move steady-state: the dataset keeps
	// growing wherever the updates land. Combined with a static hotspot this
	// concentrates growth into one KD cell — the shard-skew workload the
	// elastic rebalancer exists to absorb.
	GrowUpdates bool

	// TileQuant, when positive, snaps hotspot query centers to a TileQuant x
	// TileQuant grid — the map-tile querying pattern of production mobile
	// apps, where clients in one area request canonical tiles rather than
	// per-user windows. Identical hot queries are what a shared cache tier
	// in front of the cluster can absorb.
	TileQuant int
	// CrowdCold forces hotspot operations to query cold (ClassMiss, no local
	// answer, no handover): a flash crowd is new arrivals whose caches hold
	// nothing about the place they just converged on.
	CrowdCold bool

	// Faults is the chaos schedule: shard kills and restarts fired at fixed
	// fractions of the run (fault scenarios only; needs Config.Injector).
	Faults []FaultEvent

	// SLO is the envelope CI gates on for this scenario.
	SLO SLO
}

// normalized fills defaults and normalizes the operation mix.
func (s Spec) normalized() Spec {
	sum := s.RangeFrac + s.KNNFrac + s.JoinFrac + s.UpdateFrac
	if sum <= 0 {
		s.RangeFrac, s.KNNFrac, sum = 0.5, 0.5, 1
	}
	s.RangeFrac /= sum
	s.KNNFrac /= sum
	s.JoinFrac /= sum
	s.UpdateFrac /= sum
	if s.FullHitFrac < 0 {
		s.FullHitFrac = 0
	}
	if s.PartialHitFrac < 0 {
		s.PartialHitFrac = 0
	}
	if hs := s.FullHitFrac + s.PartialHitFrac; hs > 1 {
		s.FullHitFrac /= hs
		s.PartialHitFrac /= hs
	}
	if s.WindowSide <= 0 {
		s.WindowSide = 0.02
	}
	if s.KMax <= 0 {
		s.KMax = 8
	}
	if s.JoinDist <= 0 {
		s.JoinDist = 0.004
	}
	if s.HotRadius <= 0 {
		s.HotRadius = 0.04
	}
	if s.HotFrac <= 0 {
		s.HotFrac = 0.8
	}
	if s.Regions <= 0 {
		s.Regions = 8
	}
	if s.Period <= 0 {
		s.Period = 10
	}
	if s.UpdateBatch <= 0 {
		s.UpdateBatch = 1
	}
	if s.SLO.MinAchievedFrac <= 0 {
		s.SLO.MinAchievedFrac = 0.85
	}
	if s.SLO.MaxShedFrac <= 0 {
		s.SLO.MaxShedFrac = 0.05
	}
	return s
}

// defaultSLO is the envelope most scenarios share: the schedule must be
// sustained, protocol errors are never acceptable, and tail latency stays
// within CI-hardware slack (the generous bounds absorb shared-runner noise;
// per-PR latency *regressions* are caught by comparing BENCH_<pr>.json).
var defaultSLO = SLO{
	MinAchievedFrac: 0.90,
	MaxErrorFrac:    0,
	MaxShedFrac:     0.02,
	MaxP99:          500 * time.Millisecond,
	MaxP999:         2 * time.Second,
}

// Matrix returns the scenario matrix in presentation order. Names are
// stable: CI job definitions and docs/SCENARIOS.md refer to them.
func Matrix() []Spec {
	specs := []Spec{
		{
			Name:        "steady",
			Description: "mixed realistic traffic, mobility-model locality, Poisson arrivals",
			RangeFrac:   0.45, KNNFrac: 0.40, JoinFrac: 0.05, UpdateFrac: 0.10,
			FullHitFrac: 0.30, PartialHitFrac: 0.45,
			Poisson: true, Shape: ShapeUniform,
			SLO: defaultSLO,
		},
		{
			Name:        "full-hit",
			Description: "warm fleet: 90% of users answer locally, server sees a trickle",
			RangeFrac:   0.5, KNNFrac: 0.5,
			FullHitFrac: 0.90, PartialHitFrac: 0.10,
			Poisson: true, Shape: ShapeUniform,
			SLO: defaultSLO,
		},
		{
			Name:        "partial-hit",
			Description: "remainder-dominated: most queries hand over mid-tree state",
			RangeFrac:   0.55, KNNFrac: 0.45,
			FullHitFrac: 0.10, PartialHitFrac: 0.70,
			Poisson: true, Shape: ShapeUniform,
			SLO: defaultSLO,
		},
		{
			Name:        "cold-miss",
			Description: "every query starts from the root: maximal result and index shipping",
			RangeFrac:   0.55, KNNFrac: 0.45,
			Poisson: true, Shape: ShapeUniform,
			SLO: defaultSLO,
		},
		{
			Name:        "commute-wave",
			Description: "population oscillates between home and work clusters each period",
			RangeFrac:   0.45, KNNFrac: 0.45, UpdateFrac: 0.10,
			FullHitFrac: 0.25, PartialHitFrac: 0.45,
			Poisson: true, Shape: ShapeCommute, Period: 8,
			SLO: defaultSLO,
		},
		{
			Name:        "flash-crowd",
			Description: "a hotspot ramps to 85% of traffic in the first third of the run and holds; crowd members arrive cold and query canonical map tiles while the ambient update feed ships batched",
			RangeFrac:   0.50, KNNFrac: 0.45, UpdateFrac: 0.01,
			FullHitFrac: 0.20, PartialHitFrac: 0.40,
			Poisson: true, Shape: ShapeFlashCrowd, HotFrac: 0.85, HotRadius: 0.03,
			TileQuant: 32, CrowdCold: true, UpdateBatch: 4,
			SLO: defaultSLO,
		},
		{
			Name:        "region-churn",
			Description: "the hotspot jumps among regions every period: caches never settle",
			RangeFrac:   0.50, KNNFrac: 0.40, UpdateFrac: 0.10,
			FullHitFrac: 0.15, PartialHitFrac: 0.40,
			Poisson: true, Shape: ShapeChurn, Regions: 16, Period: 2, HotFrac: 0.6,
			SLO: defaultSLO,
		},
		{
			Name:        "update-storm",
			Description: "half the arrivals are batched moving-object updates",
			RangeFrac:   0.30, KNNFrac: 0.20, UpdateFrac: 0.50,
			FullHitFrac: 0.10, PartialHitFrac: 0.30,
			Poisson: true, Shape: ShapeUniform, UpdateBatch: 16,
			SLO: defaultSLO,
		},
		{
			Name:        "invalidation-storm",
			Description: "updates and partial-hit queries share one static hotspot: handed-over state goes stale as fast as it is harvested",
			RangeFrac:   0.40, KNNFrac: 0.30, UpdateFrac: 0.30,
			FullHitFrac: 0.05, PartialHitFrac: 0.65,
			Poisson: true, Shape: ShapeChurn, Regions: 1, HotFrac: 0.9, HotRadius: 0.05,
			UpdateBatch: 8,
			SLO:         defaultSLO,
		},
		{
			Name:        "hotness-shift",
			Description: "the hot region switches abruptly at half-time",
			RangeFrac:   0.50, KNNFrac: 0.40, UpdateFrac: 0.10,
			FullHitFrac: 0.20, PartialHitFrac: 0.45,
			Poisson: true, Shape: ShapeHotShift, HotFrac: 0.8, HotRadius: 0.05,
			SLO: defaultSLO,
		},
		{
			Name:        "edge-hotspot",
			Description: "a static crowd pinned inside one partition cell queries canonical tiles: the showcase for an edge cache absorbing a hotspot",
			RangeFrac:   0.57, KNNFrac: 0.42, UpdateFrac: 0.01,
			FullHitFrac: 0.15, PartialHitFrac: 0.35,
			Poisson: true, Shape: ShapeChurn, Regions: 1, HotFrac: 0.92, HotRadius: 0.02,
			TileQuant: 32, CrowdCold: true, UpdateBatch: 4,
			SLO: defaultSLO,
		},
		{
			Name:        "cache-thrash",
			Description: "adversarial: every query lands on a freshly cold cell, updates chase the scan front",
			RangeFrac:   0.50, KNNFrac: 0.35, UpdateFrac: 0.15,
			PartialHitFrac: 0.80, // requested, but the scan defeats harvesting
			Poisson:        true, Shape: ShapeThrash, UpdateBatch: 4,
			SLO: defaultSLO,
		},
		// shard-skew runs last: it deliberately saturates a shard's writer,
		// so its run ends with seconds of backlogged in-flight operations
		// still draining (plus a dropped grown dataset for the collector) —
		// wreckage no scenario scheduled after it should have to absorb.
		{
			Name:        "shard-skew",
			Description: "growth concentrated in one KD cell: insert-heavy updates pile into a static hotspot until one shard's single-writer apply loop becomes the queue — the workload the elastic rebalancer absorbs by splitting the hot shard",
			RangeFrac:   0.20, KNNFrac: 0.20, UpdateFrac: 0.60,
			FullHitFrac: 0.10, PartialHitFrac: 0.30,
			Poisson: true, Shape: ShapeChurn, Regions: 1, HotFrac: 0.90, HotRadius: 0.03,
			WindowSide:  0.008,
			UpdateBatch: 8, GrowUpdates: true,
			// Past the hot writer's knee a static cluster can no longer hold
			// the offered rate — its single apply loop backlogs and achieved
			// throughput sags below 85% — while the rebalancer splits the hot
			// shard onto extra writers and keeps pace. MinAchievedFrac is the
			// envelope's differentiator; the latency bounds only fence off
			// collapse, and the sharp gate is the A/B in scripts/bench.sh:
			// elastic p99 must beat static-N in the BENCH snapshot.
			SLO: SLO{
				MinAchievedFrac: 0.85,
				MaxErrorFrac:    0,
				MaxShedFrac:     0.02,
				MaxP99:          10 * time.Second,
				MaxP999:         18 * time.Second,
			},
		},
	}
	for i := range specs {
		specs[i] = specs[i].normalized()
	}
	return specs
}

// Lookup finds a scenario by name, searching the regular matrix and the
// chaos matrix.
func Lookup(name string) (Spec, error) {
	for _, s := range Matrix() {
		if s.Name == name {
			return s, nil
		}
	}
	for _, s := range FaultMatrix() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("load: unknown scenario %q", name)
}

// cohortSize bounds the per-generator mobility-model cohort: users beyond
// it share walkers modulo the cohort, keeping memory O(cohort) while every
// user still moves.
const cohortSize = 512

// Gen produces one worker's slice of a scenario's operation stream. It is
// deterministic in (spec, seed, users, duration) and not safe for
// concurrent use: each worker owns one.
type Gen struct {
	spec  Spec
	seed  int64
	users uint64
	dur   float64
	rng   *rand.Rand

	walkers  []mobility.Model
	walkerAt []float64
}

// NewGen builds a generator. users is the simulated population size; dur is
// the run length in seconds (flash crowds and hotness shifts scale to it).
func NewGen(spec Spec, seed int64, users int, dur float64) *Gen {
	spec = spec.normalized()
	if users < 1 {
		users = 1
	}
	if dur <= 0 {
		dur = 1
	}
	g := &Gen{
		spec:  spec,
		seed:  seed,
		users: uint64(users),
		dur:   dur,
		rng:   rand.New(rand.NewSource(seed)),
	}
	if spec.Shape == ShapeUniform {
		n := cohortSize
		if users < n {
			n = users
		}
		g.walkers = make([]mobility.Model, n)
		g.walkerAt = make([]float64, n)
		mcfg := mobility.Config{Speed: 0.01, PauseMean: 1}
		for i := range g.walkers {
			g.walkers[i] = mobility.NewDirected(mcfg, rand.New(rand.NewSource(seed+int64(i)+1)))
		}
	}
	return g
}

// Spec returns the generator's normalized scenario.
func (g *Gen) Spec() Spec { return g.spec }

// Next generates the operation scheduled at t seconds into the run.
func (g *Gen) Next(t float64) Op {
	user := uint64(g.rng.Int63n(int64(g.users)))
	center, hot := g.center(t, user)
	if hot && g.spec.TileQuant > 0 {
		center = tileSnap(center, g.spec.TileQuant)
	}
	op := Op{User: user, Center: center}

	x := g.rng.Float64()
	switch {
	case x < g.spec.UpdateFrac:
		op.Kind = OpUpdate
		op.Class = ClassUpdate
		op.UpdateN = g.spec.UpdateBatch
		if hot && g.spec.CrowdCold {
			// The update stream is the ambient moving-object fleet; crowd
			// members converge to watch, not to move objects. Without this,
			// the update feed would concentrate into the hotspot with the
			// crowd, which no moving-object workload does.
			op.Center = homeOf(g.seed, user)
		}
		return op
	case x < g.spec.UpdateFrac+g.spec.JoinFrac:
		// Joins always run cold: handing over pair state is not modeled.
		op.Kind = OpJoin
		op.Class = ClassMiss
		side := g.spec.WindowSide * 2
		op.Q = query.NewJoin(geom.RectFromCenter(op.Center, side, side), g.spec.JoinDist)
		return op
	case x < g.spec.UpdateFrac+g.spec.JoinFrac+g.spec.KNNFrac:
		op.Kind = OpKNN
		k := 1 + int(hash64(uint64(g.seed), user, 0x6b6e)%uint64(g.spec.KMax))
		if hot && g.spec.TileQuant > 0 {
			// Tiled crowd queries are canonical per tile, not per user: k
			// derives from the tile so everyone standing on it asks the
			// identical question.
			k = 1 + int(hash64(uint64(g.seed), tileIndex(op.Center, g.spec.TileQuant), 0x6b6e)%uint64(g.spec.KMax))
		}
		op.Q = query.NewKNN(op.Center, k)
	default:
		op.Kind = OpRange
		op.Q = query.NewRange(geom.RectFromCenter(op.Center, g.spec.WindowSide, g.spec.WindowSide))
	}

	if hot && g.spec.CrowdCold {
		// Crowd members just arrived: nothing in their caches covers the
		// hotspot, so every crowd query goes to the wire cold.
		op.Class = ClassMiss
		return op
	}

	// Per-user cached-state sampling: a user's warmth is a deterministic
	// function of its identity, so the population-wide full/partial/miss
	// ratio equals the spec while any one user stays consistently warm or
	// cold across its own queries.
	switch warmth := hash01(uint64(g.seed), user, 0x7761726d); {
	case warmth < g.spec.FullHitFrac:
		op.Kind = OpLocal
		op.Class = ClassLocal
	case warmth < g.spec.FullHitFrac+g.spec.PartialHitFrac:
		op.Class = ClassPartial
	default:
		op.Class = ClassMiss
	}
	return op
}

// tileSnap moves p to the center of its map tile on a q x q grid.
func tileSnap(p geom.Point, q int) geom.Point {
	fq := float64(q)
	snap := func(v float64) float64 {
		i := math.Floor(v * fq)
		if i >= fq {
			i = fq - 1
		}
		if i < 0 {
			i = 0
		}
		return (i + 0.5) / fq
	}
	return geom.Pt(snap(p.X), snap(p.Y))
}

// tileIndex identifies p's tile on a q x q grid.
func tileIndex(p geom.Point, q int) uint64 {
	fq := float64(q)
	ix := int(math.Floor(p.X * fq))
	iy := int(math.Floor(p.Y * fq))
	if ix >= q {
		ix = q - 1
	}
	if iy >= q {
		iy = q - 1
	}
	if ix < 0 {
		ix = 0
	}
	if iy < 0 {
		iy = 0
	}
	return uint64(iy*q + ix)
}

// center places the operation according to the scenario's shape. The second
// return reports hotspot membership: whether this operation was drawn into
// the scenario's crowd (TileQuant and CrowdCold apply to those only).
func (g *Gen) center(t float64, user uint64) (geom.Point, bool) {
	s := g.spec
	switch s.Shape {
	case ShapeCommute:
		// Everyone commutes in phase: home at t=0, work at t=Period/2.
		phase := 0.5 - 0.5*math.Cos(2*math.Pi*t/s.Period)
		home := homeOf(g.seed, user)
		work := workOf(g.seed, user)
		return jitter(geom.Pt(
			home.X+(work.X-home.X)*phase,
			home.Y+(work.Y-home.Y)*phase,
		), 0.01, g.rng), false
	case ShapeFlashCrowd:
		// The stadium fills over the first third of the run, then stays
		// full: flash crowds spike fast and persist, they don't build
		// linearly forever.
		ramp := 3 * t / g.dur
		if ramp > 1 {
			ramp = 1
		}
		if g.rng.Float64() < s.HotFrac*ramp {
			return jitter(regionCenter(g.seed, 0), s.HotRadius, g.rng), true
		}
		return homeOf(g.seed, user), false
	case ShapeChurn:
		idx := uint64(t/s.Period) % uint64(s.Regions)
		if g.rng.Float64() < s.HotFrac {
			return jitter(regionCenter(g.seed, idx), s.HotRadius, g.rng), true
		}
		return homeOf(g.seed, user), false
	case ShapeHotShift:
		idx := uint64(0)
		if t >= g.dur/2 {
			idx = 1
		}
		if g.rng.Float64() < s.HotFrac {
			return jitter(regionCenter(g.seed, idx), s.HotRadius, g.rng), true
		}
		return homeOf(g.seed, user), false
	case ShapeThrash:
		// March a cold front across a coarse grid: every operation lands
		// one cell further, so no cell stays warm long enough to matter.
		const cells = 64
		c := g.rng.Uint64() % cells
		cx := float64(c%8)/8 + 1.0/16
		cy := float64(c/8)/8 + 1.0/16
		return jitter(geom.Pt(cx, cy), 0.01, g.rng), false
	default: // ShapeUniform
		if len(g.walkers) > 0 {
			i := int(user % uint64(len(g.walkers)))
			dt := t - g.walkerAt[i]
			if dt < 0 {
				dt = 0
			}
			g.walkerAt[i] = t
			return g.walkers[i].Advance(dt), false
		}
		return homeOf(g.seed, user), false
	}
}

// jitter displaces p by up to r in each axis, clamped to the unit square.
func jitter(p geom.Point, r float64, rng *rand.Rand) geom.Point {
	return geom.Pt(
		clamp01(p.X+(rng.Float64()*2-1)*r),
		clamp01(p.Y+(rng.Float64()*2-1)*r),
	)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
