package load

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/wire"
)

func testCluster(t *testing.T, shards, objects int) *cluster.InProcess {
	t.Helper()
	ds := dataset.GenerateNE(dataset.Params{N: objects, Seed: 7})
	cl, err := cluster.NewInProcess(ds.Objects, cluster.InProcessConfig{
		Shards: shards,
		Sizer:  ds.SizeOf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// TestLoadHarnessSmoke is the ISSUE's satellite check: a short open-loop
// run against an in-process 2-shard cluster (run under -race in CI),
// asserting the schedule was sustained within tolerance and that not a
// single protocol error occurred.
func TestLoadHarnessSmoke(t *testing.T) {
	cl := testCluster(t, 2, 4000)
	sp, err := Lookup("steady")
	if err != nil {
		t.Fatal(err)
	}
	const target = 500.0
	res, err := Run(Config{
		Spec:         sp,
		TargetQPS:    target,
		Duration:     time.Second,
		Users:        100_000,
		Workers:      4,
		Seed:         42,
		NewTransport: func(int) (wire.Transport, error) { return cl.Router, nil },
		Release:      cl.Router.ReleaseResponse,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d protocol errors in a healthy run", res.Errors)
	}
	if res.Shed != 0 {
		t.Fatalf("%d arrivals shed at a trivial rate", res.Shed)
	}
	// Generous tolerance: -race on shared CI hardware is slow, and the
	// quantiles — not this smoke — are where regressions are judged.
	if frac := res.AchievedQPS / target; frac < 0.70 || frac > 1.40 {
		t.Fatalf("achieved %.0f qps, %.2f of the %.0f target (want 0.70..1.40)",
			res.AchievedQPS, frac, target)
	}
	if res.Local == 0 || res.WireOK == 0 {
		t.Fatalf("degenerate mix: local=%d wireOK=%d", res.Local, res.WireOK)
	}
	if res.PartialHit == 0 {
		t.Error("no partial hits: rep harvesting is not feeding handovers")
	}
	// Degrades must stay the minority: most partial-class queries find
	// overlapping harvested refs once the grid warms up. The footprint-based
	// ref filing keeps this around a quarter; before it, over half of all
	// partial hits degraded (the center-cell filing bug).
	if res.PartialDegraded >= res.PartialHit {
		t.Errorf("partial degrades (%d) outnumber partial hits (%d): the ref grid is not feeding handovers",
			res.PartialDegraded, res.PartialHit)
	}
	if res.BytesUp == 0 || res.BytesDown == 0 {
		t.Errorf("byte accounting missing: up=%d down=%d", res.BytesUp, res.BytesDown)
	}
	if res.P50 > res.P99 || res.P99 > res.P999 {
		t.Errorf("quantiles out of order: %v %v %v", res.P50, res.P99, res.P999)
	}
}

// TestLoadHarnessTCP drives the harness over a real pipelined TCP
// connection to a served cluster endpoint — the transport cmd/proload
// uses against live shards.
func TestLoadHarnessTCP(t *testing.T) {
	cl := testCluster(t, 2, 2000)
	srv := wire.NewNetServer(func(req *wire.Request) (*wire.Response, error) {
		return cl.Router.RoundTrip(req)
	}, wire.ServeConfig{Release: cl.Router.ReleaseResponse})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	sp, _ := Lookup("partial-hit")
	res, err := Run(Config{
		Spec:      sp,
		TargetQPS: 300,
		Duration:  time.Second,
		Users:     50_000,
		Workers:   2,
		Seed:      3,
		NewTransport: func(int) (wire.Transport, error) {
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				return nil, err
			}
			return wire.NewBinaryClientConn(conn)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors over TCP", res.Errors)
	}
	if res.WireOK == 0 {
		t.Fatal("nothing completed over TCP")
	}
}

// TestLoadUpdatesApplied checks the moving-object feed: an update-heavy
// run applies its mutations (the server acks them) without rejects, and
// they survive the exact-rectangle echo contract.
func TestLoadUpdatesApplied(t *testing.T) {
	cl := testCluster(t, 2, 2000)
	sp, _ := Lookup("update-storm")
	res, err := Run(Config{
		Spec:         sp,
		TargetQPS:    300,
		Duration:     time.Second,
		Users:        10_000,
		Workers:      2,
		Seed:         9,
		NewTransport: func(int) (wire.Transport, error) { return cl.Router, nil },
		Release:      cl.Router.ReleaseResponse,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if res.Updates == 0 {
		t.Fatal("update storm sent no updates")
	}
	if res.UpdateRejects != 0 {
		t.Fatalf("%d update rejects: rectangle echo does not match stored entries", res.UpdateRejects)
	}
}

// TestLoadSurvivesConnectFailure pins the harness contract for broken
// backends: a worker that cannot connect keeps running, its operations
// fail as counted events, and Run returns normally — it never aborts.
func TestLoadSurvivesConnectFailure(t *testing.T) {
	var events atomic.Int64
	sp, _ := Lookup("cold-miss")
	res, err := Run(Config{
		Spec:      sp,
		TargetQPS: 200,
		Duration:  500 * time.Millisecond,
		Users:     1000,
		Workers:   2,
		Seed:      1,
		NewTransport: func(int) (wire.Transport, error) {
			return nil, errors.New("synthetic dial failure")
		},
		OnEvent: func(int, error) { events.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Fatal("no errors counted against a dead backend")
	}
	if res.WireOK != 0 {
		t.Fatalf("%d operations succeeded against a dead backend", res.WireOK)
	}
	if events.Load() == 0 {
		t.Fatal("OnEvent never observed the failures")
	}
	if res.Pass() {
		t.Fatal("SLO passed against a dead backend")
	}
}

// TestLoadShardErrorsCounted wires the router's OnShardError hook to the
// harness counter: a shard that dies mid-run surfaces as counted shard
// errors and query failures, not a harness abort (the cluster.Dial
// unsafe-failure fix of PR 6).
func TestLoadShardErrorsCounted(t *testing.T) {
	ds := dataset.GenerateNE(dataset.Params{N: 2000, Seed: 7})
	var shardErrs atomic.Int64
	var kill atomic.Bool
	cl, err := cluster.NewInProcess(ds.Objects, cluster.InProcessConfig{
		Shards:       2,
		Sizer:        ds.SizeOf,
		OnShardError: func(int, error) { shardErrs.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	// Wrap shard 0 so it starts failing halfway through the run.
	inner := cl.Router
	flaky := wire.TransportFunc(func(req *wire.Request) (*wire.Response, error) {
		if kill.Load() {
			// Simulate the dead-shard path: the router-level query fails
			// after counting per-shard errors. Here the whole endpoint
			// fails, which the harness must also absorb.
			return nil, errors.New("shard down")
		}
		return inner.RoundTrip(req)
	})
	go func() {
		time.Sleep(250 * time.Millisecond)
		kill.Store(true)
	}()
	sp, _ := Lookup("cold-miss")
	res, err := Run(Config{
		Spec:         sp,
		TargetQPS:    400,
		Duration:     500 * time.Millisecond,
		Users:        1000,
		Workers:      2,
		Seed:         1,
		NewTransport: func(int) (wire.Transport, error) { return flaky, nil },
		Release:      cl.Router.ReleaseResponse,
		ShardErrors:  shardErrs.Load,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WireOK == 0 {
		t.Fatal("nothing succeeded before the failure")
	}
	if res.Errors == 0 {
		t.Fatal("mid-run failures were not counted")
	}
}
