package load

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/wal"
	"repro/internal/wire"
)

// durableCluster builds the chaos-capable backend the fault scenarios need:
// per-shard WALs for crash recovery, optional warm replicas, and a hair
// trigger on the router's failover so a kill is absorbed within one query.
func durableCluster(t *testing.T, replicas bool) *cluster.InProcess {
	t.Helper()
	ds := dataset.GenerateNE(dataset.Params{N: 4000, Seed: 7})
	cl, err := cluster.NewInProcess(ds.Objects, cluster.InProcessConfig{
		Shards:        4,
		Sizer:         ds.SizeOf,
		WALDir:        t.TempDir(),
		WAL:           wal.Options{NoSync: true, CheckpointBytes: 64 << 10},
		Replicas:      replicas,
		RetryAttempts: 4,
		RetryBackoff:  2 * time.Millisecond,
		FailThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func runFaultScenario(t *testing.T, name string, cl *cluster.InProcess) *Result {
	t.Helper()
	sp, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Spec:         sp,
		TargetQPS:    400,
		Duration:     time.Second,
		Users:        50_000,
		Workers:      2,
		Seed:         11,
		NewTransport: func(int) (wire.Transport, error) { return cl.Router, nil },
		Release:      cl.Router.ReleaseResponse,
		Injector:     cl,
		FailoverStats: func() (int64, int64, int64) {
			snap := cl.Router.Stats().Snapshot()
			return snap.Retries(), snap.Failovers(), snap.Redials()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestLoadChaosCrashRecovery drives the shard-crash-recovery scenario end
// to end: two shards crash-restart from their WALs mid-run and the router's
// retry/redial path absorbs both — zero protocol errors reach a user.
func TestLoadChaosCrashRecovery(t *testing.T) {
	cl := durableCluster(t, false)
	res := runFaultScenario(t, "shard-crash-recovery", cl)
	if res.Errors != 0 {
		t.Fatalf("%d protocol errors leaked through the crash-restarts", res.Errors)
	}
	if res.WireOK == 0 {
		t.Fatal("nothing completed")
	}
	if res.Redials == 0 {
		t.Fatal("no redials counted: the faults did not fire or the router never noticed")
	}
	if res.Failovers != 0 {
		t.Fatalf("%d replica promotions in a replica-less cluster", res.Failovers)
	}
}

// TestLoadChaosReplicaFailover kills a primary for good mid-run: the warm
// replica is promoted and the schedule finishes with zero errors.
func TestLoadChaosReplicaFailover(t *testing.T) {
	cl := durableCluster(t, true)
	res := runFaultScenario(t, "replica-failover", cl)
	if res.Errors != 0 {
		t.Fatalf("%d protocol errors leaked through the failover", res.Errors)
	}
	if res.Failovers == 0 {
		t.Fatal("no replica promotion counted: the kill did not fire or the router never failed over")
	}
}

// TestLoadFaultSpecNeedsInjector pins the config contract: a fault schedule
// without a chaos backend is a setup error, not a silently fault-free run.
func TestLoadFaultSpecNeedsInjector(t *testing.T) {
	sp, err := Lookup("shard-crash-recovery")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Config{
		Spec:         sp,
		NewTransport: func(int) (wire.Transport, error) { return nil, nil },
	})
	if err == nil {
		t.Fatal("Run accepted a fault schedule without an Injector")
	}
}

// TestFaultMatrixDisjoint keeps the chaos scenarios out of the regular
// matrix ("-scenario all" and the benchmark harness must stay fault-free)
// while Lookup still resolves them.
func TestFaultMatrixDisjoint(t *testing.T) {
	for _, s := range Matrix() {
		if len(s.Faults) > 0 {
			t.Fatalf("regular scenario %q schedules faults", s.Name)
		}
	}
	for _, s := range FaultMatrix() {
		if len(s.Faults) == 0 {
			t.Fatalf("fault scenario %q schedules no faults", s.Name)
		}
		got, err := Lookup(s.Name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", s.Name, err)
		}
		if got.Name != s.Name || len(got.Faults) != len(s.Faults) {
			t.Fatalf("Lookup(%q) returned a different spec", s.Name)
		}
		if s.SLO.MaxErrorFrac != 0 {
			t.Fatalf("fault scenario %q tolerates errors (MaxErrorFrac=%v); failover must be invisible",
				s.Name, s.SLO.MaxErrorFrac)
		}
	}
}
