package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/rtree"
)

func genObjects(n int, seed int64) []dataset.Object {
	return dataset.GenerateNE(dataset.Params{N: n, Seed: seed}).Objects
}

func TestPartitionBalance(t *testing.T) {
	objs := genObjects(4000, 7)
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		part, err := MakePartition(objs, n)
		if err != nil {
			t.Fatal(err)
		}
		split := part.Split(objs)
		if len(split) != n {
			t.Fatalf("n=%d: %d slices", n, len(split))
		}
		total := 0
		for s, objsS := range split {
			total += len(objsS)
			// Count balance: every shard within 3x of the ideal share.
			ideal := len(objs) / n
			if len(objsS) < ideal/3 || len(objsS) > ideal*3 {
				t.Errorf("n=%d shard %d: %d objects, ideal %d", n, s, len(objsS), ideal)
			}
		}
		if total != len(objs) {
			t.Fatalf("n=%d: split loses objects: %d != %d", n, total, len(objs))
		}
	}
}

func TestPartitionLocateDeterministic(t *testing.T) {
	objs := genObjects(1000, 3)
	part, err := MakePartition(objs, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		p := geom.Pt(r.Float64()*2-0.5, r.Float64()*2-0.5) // inside and outside the data
		s1 := part.Locate(p)
		s2 := part.Locate(p)
		if s1 != s2 || s1 < 0 || s1 >= 5 {
			t.Fatalf("Locate(%v) = %d, %d", p, s1, s2)
		}
	}
}

func TestPartitionSplitMatchesLocate(t *testing.T) {
	objs := genObjects(2000, 11)
	part, err := MakePartition(objs, 4)
	if err != nil {
		t.Fatal(err)
	}
	split := part.Split(objs)
	for s, objsS := range split {
		for _, o := range objsS {
			if got := part.LocateRect(o.MBR); got != s {
				t.Fatalf("object %d split to %d but Locate says %d", o.ID, s, got)
			}
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := MakePartition(nil, 0); err == nil {
		t.Fatal("0 shards accepted")
	}
	if _, err := MakePartition(nil, MaxShards+1); err == nil {
		t.Fatal("too many shards accepted")
	}
	// No objects at all still yields a usable plane split.
	part, err := MakePartition(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s := part.Locate(geom.Pt(0.5, 0.5)); s < 0 || s >= 4 {
		t.Fatalf("Locate on empty partition = %d", s)
	}
}

func TestVirtualNodeRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		shard int
		local rtree.NodeID
	}{{0, 1}, {3, 12345}, {254, MaxLocalNodes}} {
		vid, ok := virtualNode(tc.shard, tc.local)
		if !ok {
			t.Fatalf("virtualNode(%d, %d) overflow", tc.shard, tc.local)
		}
		if vid == VirtualRoot || vid == rtree.InvalidNode {
			t.Fatalf("virtualNode(%d, %d) = reserved id %d", tc.shard, tc.local, vid)
		}
		s, l, ok := splitVirtual(vid, 255)
		if !ok || s != tc.shard || l != tc.local {
			t.Fatalf("splitVirtual(%d) = (%d, %d, %v), want (%d, %d)", vid, s, l, ok, tc.shard, tc.local)
		}
	}
	if _, ok := virtualNode(0, MaxLocalNodes+1); ok {
		t.Fatal("local id overflow accepted")
	}
	if _, _, ok := splitVirtual(VirtualRoot, 4); ok {
		t.Fatal("virtual root decoded as shard node")
	}
	if _, _, ok := splitVirtual(0, 4); ok {
		t.Fatal("invalid node decoded")
	}
	// A shard ordinal past the cluster size must not decode.
	vid, _ := virtualNode(7, 9)
	if _, _, ok := splitVirtual(vid, 4); ok {
		t.Fatal("out-of-range shard decoded")
	}
}

func TestEpochTableFlow(t *testing.T) {
	tab := newEpochTable(2, 4, 0)
	vec := make([]uint64, 2)
	roots := make([]rtree.NodeID, 2)

	// Zero state: epoch 0 round trips without registering anything.
	if got, _ := tab.commit(1, 0, []uint64{0, 0}, []rtree.NodeID{1, 1}, tab.generation()); got != 0 {
		t.Fatalf("all-zero commit = %d", got)
	}
	if tab.lookup(1, 0, vec, roots) {
		t.Fatal("all-zero commit registered state")
	}

	// First real advancement registers and is retrievable.
	v1, _ := tab.commit(1, 0, []uint64{3, 0}, []rtree.NodeID{1, 1}, tab.generation())
	if v1 == 0 {
		t.Fatal("nonzero vector got virtual 0")
	}
	if !tab.lookup(1, v1, vec, roots) || vec[0] != 3 || vec[1] != 0 {
		t.Fatalf("lookup(%d) = %v", v1, vec)
	}

	// Identical vector reuses the entry.
	if v, _ := tab.commit(1, v1, []uint64{3, 0}, []rtree.NodeID{1, 1}, tab.generation()); v != v1 {
		t.Fatalf("identical commit moved epoch %d -> %d", v1, v)
	}

	// Advancement from the base yields a strictly larger epoch.
	v2, _ := tab.commit(1, v1, []uint64{3, 5}, []rtree.NodeID{1, 1}, tab.generation())
	if v2 <= v1 {
		t.Fatalf("v2 = %d <= v1 = %d", v2, v1)
	}

	// Ring trims: push enough distinct vectors to evict v1.
	last := v2
	for i := uint64(1); i <= 6; i++ {
		last, _ = tab.commit(1, last, []uint64{3 + i, 5}, []rtree.NodeID{1, 1}, tab.generation())
	}
	if tab.lookup(1, v1, vec, roots) {
		t.Fatal("v1 survived ring trim")
	}
	if !tab.lookup(1, last, vec, roots) {
		t.Fatal("latest epoch missing")
	}

	// Unknown clients and unknown epochs miss.
	if tab.lookup(99, 1, vec, roots) {
		t.Fatal("unknown client hit")
	}
	if tab.lookup(1, 99999, vec, roots) {
		t.Fatal("unknown epoch hit")
	}
}

func TestEpochTableEviction(t *testing.T) {
	tab := newEpochTable(1, 4, 1) // one tracked client per lock shard
	// Clients 0 and 32 share lock shard 0.
	v, _ := tab.commit(0, 0, []uint64{1}, []rtree.NodeID{1}, tab.generation())
	if v == 0 {
		t.Fatal("commit did not register")
	}
	tab.commit(32, 0, []uint64{2}, []rtree.NodeID{1}, tab.generation())
	vec := make([]uint64, 1)
	roots := make([]rtree.NodeID, 1)
	if tab.lookup(0, v, vec, roots) {
		t.Fatal("client 0 survived eviction")
	}
}

// TestPartitionSplitMergeCycles drives a long randomized sequence of
// SplitLeaf/MergeLeaves cycles and holds the plane-covering invariants at
// every step: Locate always lands on a live leaf, center ownership
// (LocateRect == Locate of the center) never breaks, and unwinding the whole
// stack restores the original routing exactly.
func TestPartitionSplitMergeCycles(t *testing.T) {
	objs := genObjects(2000, 7)
	orig, err := MakePartition(objs, 4)
	if err != nil {
		t.Fatal(err)
	}
	cur := orig
	rng := rand.New(rand.NewSource(123))

	checkInvariants := func(step string) {
		t.Helper()
		live := map[int]bool{}
		for _, s := range cur.LiveShards() {
			live[s] = true
		}
		for i := 0; i < 400; i++ {
			pt := geom.Pt(rng.Float64()*3-1, rng.Float64()*3-1)
			s := cur.Locate(pt)
			if !live[s] {
				t.Fatalf("%s: Locate(%v) = %d, a dead slot", step, pt, s)
			}
			rc := geom.RectFromCenter(pt, 0.01+rng.Float64()*0.1, 0.01+rng.Float64()*0.1)
			if got := cur.LocateRect(rc); got != cur.Locate(rc.Center()) {
				t.Fatalf("%s: center ownership broken: LocateRect=%d Locate(center)=%d", step, got, cur.Locate(rc.Center()))
			}
		}
	}

	type splitOp struct{ s, t int }
	var stack []splitOp
	next := 4
	for cycle := 0; cycle < 60; cycle++ {
		if rng.Intn(2) == 0 || len(stack) == 0 {
			live := cur.LiveShards()
			s := live[rng.Intn(len(live))]
			region := cur.LeafRegion(s)
			axis := rng.Intn(2)
			var lo, hi float64
			if axis == 0 {
				lo, hi = region.MinX, region.MaxX
			} else {
				lo, hi = region.MinY, region.MaxY
			}
			if hi-lo < 1e-9 {
				continue // degenerate display region; skip this cycle
			}
			cut := lo + (0.25+0.5*rng.Float64())*(hi-lo)
			q, err := cur.SplitLeaf(s, next, axis, cut)
			if err != nil {
				t.Fatalf("cycle %d: SplitLeaf(%d,%d,axis=%d,cut=%v): %v", cycle, s, next, axis, cut, err)
			}
			// The split must be invisible to routing except inside s's old
			// cell: points previously owned by other shards keep their owner.
			for i := 0; i < 200; i++ {
				pt := geom.Pt(rng.Float64()*3-1, rng.Float64()*3-1)
				before := cur.Locate(pt)
				after := q.Locate(pt)
				if before != s && after != before {
					t.Fatalf("cycle %d: split of %d moved a point owned by %d to %d", cycle, s, before, after)
				}
				if before == s && after != s && after != next {
					t.Fatalf("cycle %d: split of %d sent a point to unrelated shard %d", cycle, s, after)
				}
			}
			// The new pair must be siblings both ways.
			if sib, ok := q.SiblingOf(next); !ok || sib != s {
				t.Fatalf("cycle %d: SiblingOf(%d) = %d,%v want %d", cycle, next, sib, ok, s)
			}
			cur = q
			stack = append(stack, splitOp{s, next})
			next++
		} else {
			op := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			q, err := cur.MergeLeaves(op.s, op.t)
			if err != nil {
				t.Fatalf("cycle %d: MergeLeaves(%d,%d): %v", cycle, op.s, op.t, err)
			}
			if q.Live(op.t) {
				t.Fatalf("cycle %d: slot %d still live after merge", cycle, op.t)
			}
			cur = q
		}
		if got, want := len(cur.LiveShards()), 4+len(stack); got != want {
			t.Fatalf("cycle %d: %d live shards, want %d", cycle, got, want)
		}
		checkInvariants(fmt.Sprintf("cycle %d", cycle))
	}

	// Unwind: merging every split back must restore the original routing.
	for len(stack) > 0 {
		op := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		q, err := cur.MergeLeaves(op.s, op.t)
		if err != nil {
			t.Fatalf("unwind MergeLeaves(%d,%d): %v", op.s, op.t, err)
		}
		cur = q
	}
	for i := 0; i < 3000; i++ {
		pt := geom.Pt(rng.Float64()*3-1, rng.Float64()*3-1)
		if got, want := cur.Locate(pt), orig.Locate(pt); got != want {
			t.Fatalf("unwound partition routes %v to %d, original to %d", pt, got, want)
		}
	}
}

// TestPartitionSplitLeafErrors pins SplitLeaf's validation.
func TestPartitionSplitLeafErrors(t *testing.T) {
	objs := genObjects(500, 9)
	part, err := MakePartition(objs, 2)
	if err != nil {
		t.Fatal(err)
	}
	region := part.LeafRegion(0)
	cut := (region.MinX + region.MaxX) / 2
	if _, err := part.SplitLeaf(0, 1, 0, cut); err == nil {
		t.Fatal("splitting into a live slot succeeded")
	}
	if _, err := part.SplitLeaf(0, 5, 0, cut); err == nil {
		t.Fatal("splitting into a non-contiguous slot succeeded")
	}
	if _, err := part.SplitLeaf(0, 2, 0, region.MaxX+100); err == nil {
		t.Fatal("cut outside the leaf cell succeeded")
	}
	q, err := part.SplitLeaf(0, 2, 0, cut)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.MergeLeaves(1, 2); err == nil {
		t.Fatal("MergeLeaves of non-siblings succeeded")
	}
	// Either sibling may survive: retiring slot 0 with slot 2 surviving is
	// legal at the partition level.
	m, err := q.MergeLeaves(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Live(0) || !m.Live(2) {
		t.Fatalf("after MergeLeaves(2,0): live = %v", m.LiveShards())
	}
}
