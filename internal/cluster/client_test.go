package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/wire"
)

// Client-level equivalence: a real proactive-caching client — cache cuts,
// remainder handover, deferred objects, epoch tracking — run against the
// cluster must report the same query results as an identical client run
// against a single-node server, across warm caches and a live update
// stream. This is the strongest protocol test: every remainder query hands
// the router virtual node references from the client's own cache.

func newTestClient(t *testing.T, tr wire.Transport, id wire.ClientID) *core.Client {
	t.Helper()
	cat, err := tr.RoundTrip(&wire.Request{Client: id, Catalog: true})
	if err != nil {
		t.Fatalf("catalog: %v", err)
	}
	sizes := wire.DefaultSizeModel()
	return core.NewClient(core.ClientConfig{
		ID:        id,
		Root:      query.NodeRef(cat.RootID, cat.RootMBR),
		Sizes:     sizes,
		Channel:   wire.DefaultChannel(),
		FMRPeriod: 50,
	}, core.NewCache(1<<20, core.GRD3, sizes), tr)
}

func singleTransport(sh *server.Server) wire.Transport {
	return wire.TransportFunc(func(req *wire.Request) (*wire.Response, error) {
		if len(req.Updates) > 0 {
			return sh.ExecuteUpdates(req), nil
		}
		resp, _ := sh.Execute(req)
		return resp, nil
	})
}

func sortedIDs(ids []rtree.ObjectID) []rtree.ObjectID {
	out := append([]rtree.ObjectID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestClientOverClusterMatchesSingleNode(t *testing.T) {
	nObj := 2500
	if testing.Short() {
		nObj = 800
	}
	objs := genObjects(nObj, 5)
	single, router, cleanup := buildBoth(t, objs, 4)
	defer cleanup()

	clSingle := newTestClient(t, singleTransport(single), 7)
	clCluster := newTestClient(t, router, 7)

	rng := rand.New(rand.NewSource(123))
	upd := newUpdateStream(55, objs)

	// A hotspot that drifts: queries revisit warm regions (cache hits and
	// partial hits with remainder handover) and wander into cold ones.
	hot := geom.Pt(0.5, 0.5)
	for step := 0; step < 60; step++ {
		if step%10 == 9 {
			ops := upd.batch(30)
			single.ExecuteUpdates(&wire.Request{Client: 900, Updates: ops})
			if _, err := router.RoundTrip(&wire.Request{Client: 900, Updates: ops}); err != nil {
				t.Fatalf("step %d: cluster updates: %v", step, err)
			}
		}
		hot = geom.Pt(
			clamp01(hot.X+(rng.Float64()-0.5)*0.15),
			clamp01(hot.Y+(rng.Float64()-0.5)*0.15),
		)
		var q query.Query
		switch step % 3 {
		case 0:
			q = query.NewRange(geom.RectFromCenter(hot, 0.05, 0.05))
		case 1:
			q = query.NewKNN(hot, 6)
		default:
			q = query.NewJoin(geom.RectFromCenter(hot, 0.12, 0.12), 0.004)
		}
		tag := fmt.Sprintf("step %d (%s)", step, q.Kind)

		repS, err := clSingle.Query(q)
		if err != nil {
			t.Fatalf("%s: single: %v", tag, err)
		}
		repC, err := clCluster.Query(q)
		if err != nil {
			t.Fatalf("%s: cluster: %v", tag, err)
		}

		wantIDs, gotIDs := sortedIDs(repS.Results), sortedIDs(repC.Results)
		if len(wantIDs) != len(gotIDs) {
			t.Fatalf("%s: %d results, want %d\n got %v\nwant %v", tag, len(gotIDs), len(wantIDs), gotIDs, wantIDs)
		}
		if q.Kind != query.KNN {
			// kNN distance ties may legitimately pick different ids; exact
			// sets are required for the other kinds.
			for i := range wantIDs {
				if wantIDs[i] != gotIDs[i] {
					t.Fatalf("%s: result %d = %d, want %d", tag, i, gotIDs[i], wantIDs[i])
				}
			}
		}
		if q.Kind == query.Join {
			wp := normClientPairs(repS.Pairs)
			gp := normClientPairs(repC.Pairs)
			if len(wp) != len(gp) {
				t.Fatalf("%s: %d pairs, want %d", tag, len(gp), len(wp))
			}
			for i := range wp {
				if wp[i] != gp[i] {
					t.Fatalf("%s: pair %d = %v, want %v", tag, i, gp[i], wp[i])
				}
			}
		}
	}

	// Sync must pull cluster-wide invalidations without a query.
	ops := upd.batch(20)
	single.ExecuteUpdates(&wire.Request{Client: 900, Updates: ops})
	if _, err := router.RoundTrip(&wire.Request{Client: 900, Updates: ops}); err != nil {
		t.Fatal(err)
	}
	if _, err := clCluster.Sync(); err != nil {
		t.Fatalf("cluster sync: %v", err)
	}
	if _, err := clSingle.Sync(); err != nil {
		t.Fatalf("single sync: %v", err)
	}
	q := query.NewRange(geom.RectFromCenter(hot, 0.08, 0.08))
	repS, err := clSingle.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	repC, err := clCluster.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	w, g := sortedIDs(repS.Results), sortedIDs(repC.Results)
	if len(w) != len(g) {
		t.Fatalf("post-sync: %d results, want %d", len(g), len(w))
	}
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("post-sync: result %d = %d, want %d", i, g[i], w[i])
		}
	}
}

func clamp01(v float64) float64 {
	if v < 0.05 {
		return 0.05
	}
	if v > 0.95 {
		return 0.95
	}
	return v
}

func normClientPairs(pairs [][2]rtree.ObjectID) [][2]rtree.ObjectID {
	out := make([][2]rtree.ObjectID, 0, len(pairs))
	for _, p := range pairs {
		if p[1] < p[0] {
			p[0], p[1] = p[1], p[0]
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// TestClusterRootSplitInvalidatesVirtualRoot drives one shard's root page
// through a split and checks the router invalidates the synthesized
// virtual root inside the client's epoch window, so cached virtual-root
// cuts can never silently hide the new sibling subtree.
func TestClusterRootSplitInvalidatesVirtualRoot(t *testing.T) {
	objs := genObjects(600, 9)
	_, router, cleanup := buildBoth(t, objs, 2)
	defer cleanup()

	// Establish a client epoch baseline with one query.
	resp, err := router.RoundTrip(&wire.Request{Client: 3, Q: query.NewRange(geom.R(0, 0, 1, 1))})
	if err != nil {
		t.Fatal(err)
	}
	base := resp.Epoch

	// Find shard 0's region and flood it with inserts until its root id
	// changes (testMaxEntries=16 keeps that cheap).
	rootBefore := routerShardRoot(router, 0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40 && routerShardRoot(router, 0) == rootBefore; i++ {
		ops := make([]wire.UpdateOp, 0, 64)
		for j := 0; j < 64; j++ {
			c := randPointIn(rng, router.part.Regions[0])
			ops = append(ops, wire.UpdateOp{
				Kind: wire.UpdateInsert,
				Obj:  rtree.ObjectID(2<<20 + i*64 + j),
				To:   geom.RectFromCenter(c, 0.001, 0.001),
				Size: 100,
			})
		}
		if _, err := router.RoundTrip(&wire.Request{Client: 900, Updates: ops}); err != nil {
			t.Fatal(err)
		}
		// A query refreshes the router's view of the shard root.
		if _, err := router.RoundTrip(&wire.Request{Client: 901, Q: query.NewRange(router.part.Regions[0])}); err != nil {
			t.Fatal(err)
		}
	}
	if routerShardRoot(router, 0) == rootBefore {
		t.Skip("could not provoke a root split")
	}

	resp, err = router.RoundTrip(&wire.Request{Client: 3, Epoch: base, Q: query.NewRange(geom.R(0, 0, 1, 1))})
	if err != nil {
		t.Fatal(err)
	}
	if resp.FlushAll {
		return // a flush drops the cached virtual root too: safe
	}
	for _, id := range resp.InvalidNodes {
		if id == VirtualRoot {
			return
		}
	}
	t.Fatalf("root split inside the client window did not invalidate the virtual root (invalid nodes: %v)", resp.InvalidNodes)
}

// TestClusterRootGrowthInvalidatesVirtualRoot covers the subtler root
// hazard: an insert into a gap inside a shard's KD region but outside its
// current root rectangle grows the root's MBR without changing its id. The
// cached virtual-root cut then carries a stale element MBR that would prune
// the grown region, so the router must invalidate VirtualRoot whenever the
// shard root's content changes inside the client's window — detected by the
// root id appearing in the shard's own invalidation report.
func TestClusterRootGrowthInvalidatesVirtualRoot(t *testing.T) {
	// Two tight clusters with a wide gap: the KD cut lands between them.
	var objs []dataset.Object
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		objs = append(objs, dataset.Object{
			ID:   rtree.ObjectID(i + 1),
			MBR:  geom.RectFromCenter(geom.Pt(0.1*rng.Float64()+0.05, 0.1*rng.Float64()+0.05), 0.002, 0.002),
			Size: 100,
		})
	}
	for i := 0; i < 100; i++ {
		objs = append(objs, dataset.Object{
			ID:   rtree.ObjectID(i + 101),
			MBR:  geom.RectFromCenter(geom.Pt(0.1*rng.Float64()+0.85, 0.1*rng.Float64()+0.85), 0.002, 0.002),
			Size: 100,
		})
	}
	single, router, cleanup := buildBoth(t, objs, 2)
	defer cleanup()
	_ = single

	// Prime the epoch machinery (all-zero epochs register no client state)
	// and give the client a tracked baseline.
	prime := []wire.UpdateOp{{Kind: wire.UpdateInsert, Obj: 5000,
		To: geom.RectFromCenter(geom.Pt(0.9, 0.9), 0.001, 0.001), Size: 64}}
	if _, err := router.RoundTrip(&wire.Request{Client: 900, Updates: prime}); err != nil {
		t.Fatal(err)
	}
	resp, err := router.RoundTrip(&wire.Request{Client: 3, Q: query.NewRange(geom.R(0, 0, 1, 1))})
	if err != nil {
		t.Fatal(err)
	}
	base := resp.Epoch
	if base == 0 {
		t.Fatal("expected a nonzero virtual epoch after priming")
	}

	// Grow shard 0's root MBR: the gap point is inside its KD region but
	// far outside its current root rectangle. The root id must not change.
	gapShard := router.part.Locate(geom.Pt(0.45, 0.1))
	rootBefore := routerShardRoot(router, gapShard)
	grow := []wire.UpdateOp{{Kind: wire.UpdateInsert, Obj: 5001,
		To: geom.RectFromCenter(geom.Pt(0.45, 0.1), 0.001, 0.001), Size: 64}}
	if _, err := router.RoundTrip(&wire.Request{Client: 900, Updates: grow}); err != nil {
		t.Fatal(err)
	}
	// Refresh the router's view of the shard root.
	if _, err := router.RoundTrip(&wire.Request{Client: 901, Q: query.NewRange(geom.R(0, 0, 1, 1))}); err != nil {
		t.Fatal(err)
	}
	if routerShardRoot(router, gapShard) != rootBefore {
		t.Skip("insert split the shard root; the id-change path covers that case")
	}

	resp, err = router.RoundTrip(&wire.Request{Client: 3, Epoch: base, Q: query.NewRange(geom.R(0.8, 0.8, 1, 1))})
	if err != nil {
		t.Fatal(err)
	}
	if resp.FlushAll {
		return // a flush drops the cached virtual root too: safe
	}
	for _, id := range resp.InvalidNodes {
		if id == VirtualRoot {
			return
		}
	}
	t.Fatalf("root MBR growth inside the client window did not invalidate the virtual root (invalid nodes: %v)", resp.InvalidNodes)
}

func routerShardRoot(r *Router, s int) rtree.NodeID {
	m := r.meta[s]
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rootID
}

func randPointIn(rng *rand.Rand, rc geom.Rect) geom.Point {
	return geom.Pt(
		rc.MinX+rng.Float64()*(rc.MaxX-rc.MinX),
		rc.MinY+rng.Float64()*(rc.MaxY-rc.MinY),
	)
}
