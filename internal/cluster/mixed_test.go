package cluster

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/wire"
)

// funcShard is an in-process shard whose transport binding can be killed
// like a dropped connection: a kill invalidates every outstanding binding
// (they fail from then on, state intact), and only a Redial after restart
// yields a working one — the same generation semantics boundTransport gives
// NewInProcess clusters.
type funcShard struct {
	srv  *server.Server
	gen  atomic.Int64
	down atomic.Bool
}

func (fs *funcShard) bind() wire.Transport {
	g := fs.gen.Load()
	return wire.TransportFunc(func(req *wire.Request) (*wire.Response, error) {
		if fs.down.Load() || fs.gen.Load() != g {
			return nil, errShardDown
		}
		if len(req.Updates) > 0 {
			return fs.srv.ExecuteUpdates(req), nil
		}
		resp, _ := fs.srv.Execute(req)
		return resp, nil
	})
}

func (fs *funcShard) redial() (wire.Transport, error) {
	if fs.down.Load() {
		return nil, errShardDown
	}
	return fs.bind(), nil
}

func (fs *funcShard) kill()    { fs.down.Store(true); fs.gen.Add(1) }
func (fs *funcShard) restart() { fs.down.Store(false) }

// TestMixedTransportFailoverCycle routes one cluster over heterogeneous
// shard transports — three func-transport shards and one shard served over
// real TCP (wire.NetServer on loopback, gob codec so coordinates stay
// float64 and results compare bit-for-bit against the in-process single
// node) — and bounces each transport kind through a failover cycle. The
// router must ride both out through its retry/redial path with answers and
// update acks equal to the uninterrupted single-node twin throughout.
func TestMixedTransportFailoverCycle(t *testing.T) {
	objs := genObjects(1600, 33)
	sizes := make(map[rtree.ObjectID]int, len(objs))
	for _, o := range objs {
		sizes[o.ID] = o.Size
	}
	single := buildServer(objs, sizes)
	defer single.Close()

	part, err := MakePartition(objs, 4)
	if err != nil {
		t.Fatal(err)
	}
	split := part.Split(objs)
	shards := make([]Shard, 4)

	var fss [3]*funcShard
	for s := 0; s < 3; s++ {
		if len(split[s]) == 0 {
			t.Fatalf("shard %d empty", s)
		}
		fs := &funcShard{srv: buildServer(split[s], sizes)}
		defer fs.srv.Close()
		fss[s] = fs
		shards[s] = Shard{T: fs.bind(), Release: fs.srv.ReleaseResponse, Redial: fs.redial}
	}

	// Shard 3 is a real network process: a NetServer over loopback whose
	// bounce closes the listener and every connection, then rebinds the same
	// shard state on a fresh port — the router's redial must chase the move.
	sh3 := buildServer(split[3], sizes)
	defer sh3.Close()
	var addr atomic.Value
	startNS := func() *wire.NetServer {
		ns := wire.NewNetServer(func(req *wire.Request) (*wire.Response, error) {
			if len(req.Updates) > 0 {
				return sh3.ExecuteUpdates(req), nil
			}
			resp, _ := sh3.Execute(req)
			return resp, nil
		}, wire.ServeConfig{Release: sh3.ReleaseResponse})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr.Store(ln.Addr().String())
		go func() { _ = ns.Serve(ln) }()
		return ns
	}
	dialGob := func() (wire.Transport, error) {
		conn, err := net.Dial("tcp", addr.Load().(string))
		if err != nil {
			return nil, err
		}
		return wire.NewClientConn(conn), nil
	}
	ns := startNS()
	t3, err := dialGob()
	if err != nil {
		t.Fatal(err)
	}
	shards[3] = Shard{T: t3, Redial: dialGob}

	router, err := New(shards, Config{
		Part:          part,
		Sizer:         func(id rtree.ObjectID) int { return sizes[id] },
		RetryAttempts: 4,
		RetryBackoff:  time.Millisecond,
		FailThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	upd := newUpdateStream(55, objs)
	step := func(phase string) {
		ops := upd.batch(30)
		sResp := single.ExecuteUpdates(&wire.Request{Client: 900, Updates: ops})
		cResp, err := router.RoundTrip(&wire.Request{Client: 900, Updates: ops})
		if err != nil {
			t.Fatalf("%s: updates: %v", phase, err)
		}
		for i := range sResp.UpdateResults {
			if sResp.UpdateResults[i] != cResp.UpdateResults[i] {
				t.Fatalf("%s: op %d ack %v, want %v", phase, i, cResp.UpdateResults[i], sResp.UpdateResults[i])
			}
		}
		// One query aimed into every shard's region plus a full scatter, so
		// each transport kind answers in every phase.
		for s := 0; s <= 4; s++ {
			var q query.Query
			if s < 4 {
				reg := part.Regions[s]
				q = query.NewRange(geom.RectFromCenter(reg.Center(), reg.Width()/3, reg.Height()/3))
			} else {
				q = query.NewRange(geom.R(0, 0, 1, 1))
			}
			tag := fmt.Sprintf("%s: query shard=%d", phase, s)
			sResp, _ := single.Execute(&wire.Request{Client: wire.ClientID(s + 1), Q: q})
			cResp, err := router.RoundTrip(&wire.Request{Client: wire.ClientID(s + 1), Q: q})
			if err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			compareRange(t, tag, sResp, cResp)
		}
	}

	step("mixed baseline")

	// Failover cycle on the TCP shard: listener and connections die, the
	// same state comes back on a new port.
	ns.Close()
	ns = startNS()
	defer ns.Close()
	step("tcp shard bounced")

	// Failover cycle on a func shard: the binding generation turns over.
	fss[1].kill()
	fss[1].restart()
	step("func shard bounced")

	snap := router.Stats().Snapshot()
	if snap.Redials() == 0 {
		t.Fatal("no redials counted across two transport bounces")
	}
	if snap.PerShard[3].Redials == 0 {
		t.Fatal("TCP shard bounce never redialed")
	}
	if snap.PerShard[1].Redials == 0 {
		t.Fatal("func shard bounce never redialed")
	}
}
