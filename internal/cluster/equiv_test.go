package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/server"
	"repro/internal/wire"
)

// The cluster's correctness contract: over the same dataset and the same
// update history, the router's merged responses carry exactly the objects
// and pairs a single-node server returns — for every query kind, with the
// index re-keyed but the results identical. These tests build both backends
// side by side, stream identical updates into each, and compare normalized
// results round after round.

const testMaxEntries = 16 // small pages: more tree structure per object

func buildServer(objs []dataset.Object, sizes map[rtree.ObjectID]int) *server.Server {
	items := make([]rtree.Item, len(objs))
	for i, o := range objs {
		items[i] = rtree.Item{Obj: o.ID, MBR: o.MBR}
	}
	tree := rtree.BulkLoad(rtree.Params{MaxEntries: testMaxEntries}, items, 0.7)
	return server.New(tree, func(id rtree.ObjectID) int { return sizes[id] }, server.Config{})
}

// buildBoth stands up a single-node server and an n-shard cluster (via the
// shared NewInProcess builder) over the same objects.
func buildBoth(t testing.TB, objs []dataset.Object, n int) (*server.Server, *Router, func()) {
	t.Helper()
	sizes := make(map[rtree.ObjectID]int, len(objs))
	for _, o := range objs {
		sizes[o.ID] = o.Size
	}
	single := buildServer(objs, sizes)
	p, err := NewInProcess(objs, InProcessConfig{
		Shards: n,
		Tree:   rtree.Params{MaxEntries: testMaxEntries},
		Sizer:  func(id rtree.ObjectID) int { return sizes[id] },
	})
	if err != nil {
		t.Fatal(err)
	}
	return single, p.Router, func() {
		single.Close()
		p.Close()
	}
}

type objKey struct {
	id      rtree.ObjectID
	mbr     geom.Rect
	size    int
	payload bool
}

func normObjects(resp *wire.Response) []objKey {
	out := make([]objKey, 0, len(resp.Objects))
	for _, o := range resp.Objects {
		out = append(out, objKey{o.ID, o.MBR, o.Size, o.Payload})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func normPairs(resp *wire.Response) [][2]rtree.ObjectID {
	out := make([][2]rtree.ObjectID, 0, len(resp.Pairs))
	for _, p := range resp.Pairs {
		if p[1] < p[0] {
			p[0], p[1] = p[1], p[0]
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func compareRange(t *testing.T, tag string, want, got *wire.Response) {
	t.Helper()
	w, g := normObjects(want), normObjects(got)
	if len(w) != len(g) {
		t.Fatalf("%s: %d objects, want %d", tag, len(g), len(w))
	}
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("%s: object %d = %+v, want %+v", tag, i, g[i], w[i])
		}
	}
}

// compareKNN checks count and the exact multiset of result distances, and
// id-for-id equality below the k-th distance (ties at the boundary may be
// broken differently by the two backends).
func compareKNN(t *testing.T, tag string, q query.Query, want, got *wire.Response) {
	t.Helper()
	if len(want.Objects) != len(got.Objects) {
		t.Fatalf("%s: %d results, want %d", tag, len(got.Objects), len(want.Objects))
	}
	n := len(want.Objects)
	if n == 0 {
		return
	}
	wd := make([]float64, n)
	gd := make([]float64, n)
	for i := 0; i < n; i++ {
		wd[i] = q.KeyFor(want.Objects[i].MBR)
		gd[i] = q.KeyFor(got.Objects[i].MBR)
	}
	sort.Float64s(wd)
	sort.Float64s(gd)
	for i := range wd {
		if wd[i] != gd[i] {
			t.Fatalf("%s: distance[%d] = %v, want %v", tag, i, gd[i], wd[i])
		}
	}
	boundary := wd[n-1]
	wids := map[rtree.ObjectID]bool{}
	gids := map[rtree.ObjectID]bool{}
	for i := 0; i < n; i++ {
		if q.KeyFor(want.Objects[i].MBR) < boundary {
			wids[want.Objects[i].ID] = true
		}
		if q.KeyFor(got.Objects[i].MBR) < boundary {
			gids[got.Objects[i].ID] = true
		}
	}
	for id := range wids {
		if !gids[id] {
			t.Fatalf("%s: inner result %d missing from cluster", tag, id)
		}
	}
	// The cluster must also return its kNN objects in ascending distance.
	for i := 1; i < n; i++ {
		if q.KeyFor(got.Objects[i].MBR) < q.KeyFor(got.Objects[i-1].MBR) {
			t.Fatalf("%s: cluster results out of distance order at %d", tag, i)
		}
	}
}

func compareJoin(t *testing.T, tag string, want, got *wire.Response) {
	t.Helper()
	wp, gp := normPairs(want), normPairs(got)
	if len(wp) != len(gp) {
		t.Fatalf("%s: %d pairs, want %d", tag, len(gp), len(wp))
	}
	for i := range wp {
		if wp[i] != gp[i] {
			t.Fatalf("%s: pair %d = %v, want %v", tag, i, gp[i], wp[i])
		}
	}
	compareRange(t, tag+" (pair objects)", want, got)
}

// updateStream owns a set of live object rectangles and generates identical
// mixed update batches for both backends.
type updateStream struct {
	rng    *rand.Rand
	rects  map[rtree.ObjectID]geom.Rect
	ids    []rtree.ObjectID
	nextID rtree.ObjectID
}

func newUpdateStream(seed int64, objs []dataset.Object) *updateStream {
	u := &updateStream{
		rng:    rand.New(rand.NewSource(seed)),
		rects:  make(map[rtree.ObjectID]geom.Rect, len(objs)),
		nextID: 1 << 20,
	}
	for _, o := range objs {
		u.rects[o.ID] = o.MBR
		u.ids = append(u.ids, o.ID)
	}
	return u
}

func (u *updateStream) randRect() geom.Rect {
	c := geom.Pt(u.rng.Float64(), u.rng.Float64())
	return geom.RectFromCenter(c, 0.002+u.rng.Float64()*0.01, 0.002+u.rng.Float64()*0.01)
}

func (u *updateStream) batch(n int) []wire.UpdateOp {
	ops := make([]wire.UpdateOp, 0, n)
	for i := 0; i < n; i++ {
		switch k := u.rng.Intn(10); {
		case k < 5 && len(u.ids) > 0: // move (the dominant op of a mobile feed)
			id := u.ids[u.rng.Intn(len(u.ids))]
			to := u.randRect()
			ops = append(ops, wire.UpdateOp{Kind: wire.UpdateMove, Obj: id, From: u.rects[id], To: to})
			u.rects[id] = to
		case k < 7: // insert
			id := u.nextID
			u.nextID++
			to := u.randRect()
			ops = append(ops, wire.UpdateOp{Kind: wire.UpdateInsert, Obj: id, To: to, Size: 100 + u.rng.Intn(4000)})
			u.rects[id] = to
			u.ids = append(u.ids, id)
		case k < 8 && len(u.ids) > 1: // delete
			i := u.rng.Intn(len(u.ids))
			id := u.ids[i]
			ops = append(ops, wire.UpdateOp{Kind: wire.UpdateDelete, Obj: id, From: u.rects[id]})
			delete(u.rects, id)
			u.ids[i] = u.ids[len(u.ids)-1]
			u.ids = u.ids[:len(u.ids)-1]
		default: // a move whose From does not match: both backends must reject it
			id := u.nextID + 1<<24 // never inserted
			ops = append(ops, wire.UpdateOp{Kind: wire.UpdateMove, Obj: id, From: u.randRect(), To: u.randRect()})
		}
	}
	return ops
}

// TestClusterEquivalence is the core property test: randomized datasets,
// mixed range/kNN/join queries, and a live (synchronous) update stream —
// after every batch the router's results over 4 shards must match the
// single-node server's.
func TestClusterEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			nObj := 3000
			if testing.Short() {
				nObj = 800
			}
			objs := genObjects(nObj, seed)
			single, router, cleanup := buildBoth(t, objs, 4)
			defer cleanup()

			rng := rand.New(rand.NewSource(seed * 77))
			upd := newUpdateStream(seed*31, objs)

			rounds := 6
			if testing.Short() {
				rounds = 3
			}
			for round := 0; round < rounds; round++ {
				if round > 0 {
					ops := upd.batch(40)
					sResp := single.ExecuteUpdates(&wire.Request{Client: 900, Updates: ops})
					cResp, err := router.RoundTrip(&wire.Request{Client: 900, Updates: ops})
					if err != nil {
						t.Fatalf("round %d: cluster updates: %v", round, err)
					}
					if len(sResp.UpdateResults) != len(cResp.UpdateResults) {
						t.Fatalf("round %d: %d acks, want %d", round, len(cResp.UpdateResults), len(sResp.UpdateResults))
					}
					for i := range sResp.UpdateResults {
						if sResp.UpdateResults[i] != cResp.UpdateResults[i] {
							t.Fatalf("round %d: op %d (%+v) ack %v, want %v",
								round, i, ops[i], cResp.UpdateResults[i], sResp.UpdateResults[i])
						}
					}
				}
				for qi := 0; qi < 15; qi++ {
					c := geom.Pt(rng.Float64(), rng.Float64())
					var q query.Query
					switch qi % 3 {
					case 0:
						q = query.NewRange(geom.RectFromCenter(c, 0.02+rng.Float64()*0.2, 0.02+rng.Float64()*0.2))
					case 1:
						q = query.NewKNN(c, 1+rng.Intn(20))
					default:
						q = query.NewJoin(geom.RectFromCenter(c, 0.1+rng.Float64()*0.2, 0.1+rng.Float64()*0.2), 0.002+rng.Float64()*0.01)
					}
					tag := fmt.Sprintf("round %d query %d (%s)", round, qi, q.Kind)
					sReq := wire.Request{Client: wire.ClientID(qi + 1), Q: q}
					cReq := wire.Request{Client: wire.ClientID(qi + 1), Q: q}
					sResp, _ := single.Execute(&sReq)
					cResp, err := router.RoundTrip(&cReq)
					if err != nil {
						t.Fatalf("%s: %v", tag, err)
					}
					switch q.Kind {
					case query.Range:
						compareRange(t, tag, sResp, cResp)
					case query.KNN:
						compareKNN(t, tag, q, sResp, cResp)
					default:
						compareJoin(t, tag, sResp, cResp)
					}
				}
			}
		})
	}
}

// TestClusterEquivalenceConcurrent runs the same comparison after a phase
// of genuinely concurrent queries and update batches (exercised under
// -race in CI): during the storm both backends serve without errors, and
// once the stream drains their contents are identical again.
func TestClusterEquivalenceConcurrent(t *testing.T) {
	objs := genObjects(1500, 42)
	single, router, cleanup := buildBoth(t, objs, 4)
	defer cleanup()

	upd := newUpdateStream(99, objs)
	batches := make([][]wire.UpdateOp, 20)
	for i := range batches {
		batches[i] = upd.batch(24)
	}

	var wg sync.WaitGroup
	// One updater streams the identical batch sequence into both backends.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, ops := range batches {
			single.ExecuteUpdates(&wire.Request{Client: 901, Updates: ops})
			if _, err := router.RoundTrip(&wire.Request{Client: 901, Updates: ops}); err != nil {
				t.Errorf("cluster updates: %v", err)
				return
			}
		}
	}()
	// Query workers hammer both backends while updates land.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 60; i++ {
				c := geom.Pt(rng.Float64(), rng.Float64())
				var q query.Query
				if i%2 == 0 {
					q = query.NewRange(geom.RectFromCenter(c, 0.05, 0.05))
				} else {
					q = query.NewKNN(c, 5)
				}
				if _, err := router.RoundTrip(&wire.Request{Client: wire.ClientID(100 + w), Q: q}); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				single.Execute(&wire.Request{Client: wire.ClientID(100 + w), Q: q})
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesced: full-space range and a spread of kNNs must agree exactly.
	rng := rand.New(rand.NewSource(7))
	q := query.NewRange(geom.R(0, 0, 1, 1))
	sResp, _ := single.Execute(&wire.Request{Client: 1, Q: q})
	cResp, err := router.RoundTrip(&wire.Request{Client: 1, Q: q})
	if err != nil {
		t.Fatal(err)
	}
	compareRange(t, "final full range", sResp, cResp)
	for i := 0; i < 20; i++ {
		c := geom.Pt(rng.Float64(), rng.Float64())
		kq := query.NewKNN(c, 8)
		sResp, _ := single.Execute(&wire.Request{Client: 2, Q: kq})
		cResp, err := router.RoundTrip(&wire.Request{Client: 2, Q: kq})
		if err != nil {
			t.Fatal(err)
		}
		compareKNN(t, fmt.Sprintf("final knn %d", i), kq, sResp, cResp)
	}
}
